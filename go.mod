module fttt

go 1.22
