package fttt_test

import (
	"path/filepath"
	"testing"

	"fttt"
	"fttt/internal/faults"
	"fttt/internal/fsx"
)

// goldenByzantineConfig pins the adversarial end-to-end scenario of the
// Byzantine golden fixtures: the 16-node grid with the corridor-nearest
// coalition {0, 5, 10} colluding from t=0 on a phantom position beyond
// the field's south-east corner (the sweep scenario of
// internal/experiments.Byzantine, DESIGN.md §15). defended arms the
// byz defense; malicious=false drops the coalition (the honest
// byte-identity scenario).
func goldenByzantineConfig(t *testing.T, defended, malicious bool) fttt.Config {
	t.Helper()
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployGrid(field, 16)
	cfg := fttt.DefaultConfig(dep)
	cfg.CellSize = 2
	if malicious {
		script, err := faults.Parse("collude at=0 nodes=0,5,10 x=130 y=-30")
		if err != nil {
			t.Fatal(err)
		}
		cfg.FaultScript = script
		cfg.FaultSeed = 7
	}
	if defended {
		cfg.Defense = &fttt.DefenseConfig{Enabled: true}
	}
	return cfg
}

// goldenByzantineTrace is the pinned target route: the slow diagonal
// patrol between (25,25) and (75,75) that keeps the target in each
// node's range for several consecutive rounds — the regime where the
// coalition gets to repeat its lie and the defense accumulates the
// evidence to convict it.
func goldenByzantineTrace() (pts []fttt.Point, times []float64) {
	a, b := fttt.Pt(25, 25), fttt.Pt(75, 75)
	mob := fttt.Waypoints([]fttt.Point{a, b, a, b, a}, 2)
	return fttt.SampleTrace(mob, 60, 2)
}

func goldenByzantineTrack(t *testing.T, defended, malicious bool) []fttt.TrackedPoint {
	t.Helper()
	trace, times := goldenByzantineTrace()
	tracked, err := fttt.Track(goldenByzantineConfig(t, defended, malicious), trace, times, 424242)
	if err != nil {
		t.Fatal(err)
	}
	return tracked
}

// TestGoldenByzantineDefended pins the defended tracker's point-wise
// behaviour under the colluding coalition against
// results/golden/byzantine_defended.csv: any change to the evidence
// rules, the plausibility gate, quorum voting or trust dynamics shows
// up as a trace diff, not just a shifted mean.
func TestGoldenByzantineDefended(t *testing.T) {
	replayGoldenByzantine(t, "byzantine_defended.csv", true)
}

// TestGoldenByzantineUndefended pins the vanilla tracker under the
// identical attack against results/golden/byzantine_undefended.csv —
// the undefended half of the differential pair, so fixture diffs
// separate "the attack changed" from "the defense changed".
func TestGoldenByzantineUndefended(t *testing.T) {
	replayGoldenByzantine(t, "byzantine_undefended.csv", false)
}

func replayGoldenByzantine(t *testing.T, name string, defended bool) {
	got := goldenCSV(goldenByzantineTrack(t, defended, true))
	if *updateGolden {
		writeGolden(t, name, got)
		return
	}
	compareGoldenCSV(t, name, got)
}

// TestGoldenByzantineHonestByteIdentity is the 0%-malicious contract:
// with no coalition scripted, the defended tracker's rendered trace is
// byte-for-byte the vanilla tracker's — the defense must be a strict
// no-op on honest runs, not merely close.
func TestGoldenByzantineHonestByteIdentity(t *testing.T) {
	def := goldenCSV(goldenByzantineTrack(t, true, false))
	van := goldenCSV(goldenByzantineTrack(t, false, false))
	if def != van {
		t.Fatal("defended honest replay differs from vanilla at the byte level")
	}
}

// TestGoldenByzantineWorkerInvariance replays the defended adversarial
// scenario through TrackParallel at several worker counts and demands
// byte-identical traces: the defense's per-clone state (trust, evidence,
// plausibility flags) must not leak across lanes or depend on
// scheduling.
func TestGoldenByzantineWorkerInvariance(t *testing.T) {
	cfg := goldenByzantineConfig(t, true, true)
	trace, times := goldenByzantineTrace()
	const copies = 4
	traces := make([][]fttt.Point, copies)
	tms := make([][]float64, copies)
	for i := range traces {
		traces[i] = trace
		tms[i] = times
	}
	render := func(workers int) string {
		tracked, err := fttt.TrackParallel(cfg, traces, tms, 424242, workers)
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, tr := range tracked {
			out += goldenCSV(tr)
		}
		return out
	}
	serial := render(1)
	for _, workers := range []int{2, 4, 8} {
		if got := render(workers); got != serial {
			t.Fatalf("defended TrackParallel with %d workers differs from serial", workers)
		}
	}
}

// writeGolden writes one fixture under results/golden (the
// -update-golden path).
func writeGolden(t *testing.T, name, content string) {
	t.Helper()
	path := filepath.Join(goldenDir, name)
	if err := fsx.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("rewrote %s", path)
}
