package fsx

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileCreatesParents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results", "perf", "profiles", "out.json")
	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatalf("WriteFile into missing dirs: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "x" {
		t.Fatalf("read back: %q, %v", got, err)
	}
	// Overwriting through the now-existing chain must also work.
	if err := WriteFile(path, []byte("y"), 0o644); err != nil {
		t.Fatalf("WriteFile into existing dirs: %v", err)
	}
}

func TestCreateCreatesParents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a", "b", "c.svg")
	f, err := Create(path)
	if err != nil {
		t.Fatalf("Create into missing dirs: %v", err)
	}
	if _, err := f.WriteString("svg"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("stat after Create: %v", err)
	}
}

func TestCreateBareName(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
	if err := WriteFile("bare.txt", []byte("ok"), 0o644); err != nil {
		t.Fatalf("WriteFile with no directory component: %v", err)
	}
}

func TestWriteFileParentIsFile(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(filepath.Join(blocker, "x.txt"), []byte("x"), 0o644); err == nil {
		t.Fatal("WriteFile under a regular file succeeded, want error")
	}
}
