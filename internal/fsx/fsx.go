// Package fsx holds the small filesystem helpers shared by the CLI
// tools and results writers: Create and WriteFile variants that make
// any missing parent directories first, so dumping CSV series, SVG
// renders, .prom telemetry snapshots or perf baselines into a nested
// results/ path works on a fresh checkout without a manual mkdir. The
// invariant callers rely on: a successful call means both the directory
// chain and the file exist; a failed MkdirAll is reported before the
// file is touched.
package fsx

import (
	"os"
	"path/filepath"
)

// ensureParent creates path's parent directory chain if it is missing.
func ensureParent(path string) error {
	dir := filepath.Dir(path)
	if dir == "" || dir == "." {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}

// Create is os.Create preceded by MkdirAll on the parent directory.
func Create(path string) (*os.File, error) {
	if err := ensureParent(path); err != nil {
		return nil, err
	}
	return os.Create(path)
}

// WriteFile is os.WriteFile preceded by MkdirAll on the parent
// directory.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	if err := ensureParent(path); err != nil {
		return err
	}
	return os.WriteFile(path, data, perm)
}
