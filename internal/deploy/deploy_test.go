package deploy

import (
	"math"
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
)

var field = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

func TestGrid(t *testing.T) {
	for _, n := range []int{1, 4, 9, 10, 16, 25, 40} {
		d := Grid(field, n)
		if d.N() != n {
			t.Fatalf("Grid(%d) placed %d nodes", n, d.N())
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("Grid(%d): %v", n, err)
		}
	}
	// A perfect square grid is evenly spaced.
	d := Grid(field, 4)
	want := []geom.Point{{X: 25, Y: 25}, {X: 75, Y: 25}, {X: 25, Y: 75}, {X: 75, Y: 75}}
	for i, w := range want {
		if !d.Nodes[i].Pos.Eq(w) {
			t.Errorf("grid node %d at %v, want %v", i, d.Nodes[i].Pos, w)
		}
	}
}

func TestGridEmpty(t *testing.T) {
	d := Grid(field, 0)
	if d.N() != 0 {
		t.Errorf("Grid(0) placed %d nodes", d.N())
	}
	if !math.IsInf(d.MinSeparation(), 1) {
		t.Error("empty deployment MinSeparation should be +Inf")
	}
}

func TestRandom(t *testing.T) {
	d := Random(field, 30, randx.New(1))
	if d.N() != 30 {
		t.Fatalf("placed %d nodes", d.N())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic under the same seed.
	d2 := Random(field, 30, randx.New(1))
	for i := range d.Nodes {
		if d.Nodes[i].Pos != d2.Nodes[i].Pos {
			t.Fatal("Random not reproducible")
		}
	}
	// Roughly uniform: mean position near the centre.
	c := geom.Centroid(d.Positions())
	if c.Dist(field.Center()) > 20 {
		t.Errorf("centroid %v far from field centre", c)
	}
}

func TestCrossLayout(t *testing.T) {
	d := Cross(field, 9, 30)
	if d.N() != 9 {
		t.Fatalf("placed %d nodes", d.N())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	c := field.Center()
	if !d.Nodes[0].Pos.Eq(c) {
		t.Errorf("node 0 should be at centre, got %v", d.Nodes[0].Pos)
	}
	// Every node lies on one of the two axes through the centre.
	for _, n := range d.Nodes {
		onX := math.Abs(n.Pos.Y-c.Y) < 1e-9
		onY := math.Abs(n.Pos.X-c.X) < 1e-9
		if !onX && !onY {
			t.Errorf("node %d at %v off both axes", n.ID, n.Pos)
		}
	}
	// Outermost nodes reach the arm radius.
	maxDist := 0.0
	for _, n := range d.Nodes {
		if dist := n.Pos.Dist(c); dist > maxDist {
			maxDist = dist
		}
	}
	if math.Abs(maxDist-30) > 1e-9 {
		t.Errorf("arm radius = %v, want 30", maxDist)
	}
}

func TestCrossOddCounts(t *testing.T) {
	for _, n := range []int{1, 2, 5, 7, 13} {
		d := Cross(field, n, 40)
		if d.N() != n {
			t.Errorf("Cross(%d) placed %d", n, d.N())
		}
		if err := d.Validate(); err != nil {
			t.Errorf("Cross(%d): %v", n, err)
		}
	}
}

func TestPoissonDisk(t *testing.T) {
	d := PoissonDisk(field, 25, 10, randx.New(2))
	if d.N() == 0 {
		t.Fatal("no nodes placed")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if sep := d.MinSeparation(); sep < 10 {
		t.Errorf("min separation %v < 10", sep)
	}
}

func TestPoissonDiskImpossible(t *testing.T) {
	// Separation larger than the field diagonal: at most one node fits.
	d := PoissonDisk(field, 5, 1000, randx.New(3))
	if d.N() > 1 {
		t.Errorf("placed %d nodes with impossible separation", d.N())
	}
}

func TestInRange(t *testing.T) {
	d := Grid(field, 4) // nodes at (25,25),(75,25),(25,75),(75,75)
	ids := d.InRange(geom.Pt(25, 25), 1)
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("InRange tight = %v, want [0]", ids)
	}
	ids = d.InRange(geom.Pt(50, 50), 40)
	if len(ids) != 4 {
		t.Errorf("InRange wide = %v, want all 4", ids)
	}
	ids = d.InRange(geom.Pt(-100, -100), 10)
	if len(ids) != 0 {
		t.Errorf("InRange far = %v, want none", ids)
	}
}

func TestValidateCatchesBadID(t *testing.T) {
	d := Grid(field, 3)
	d.Nodes[1].ID = 7
	if err := d.Validate(); err == nil {
		t.Error("bad ID should fail validation")
	}
}

func TestValidateCatchesOutside(t *testing.T) {
	d := Grid(field, 3)
	d.Nodes[2].Pos = geom.Pt(500, 500)
	if err := d.Validate(); err == nil {
		t.Error("outside node should fail validation")
	}
}

func TestCoverageFullAndEmpty(t *testing.T) {
	d := Grid(field, 25)
	// Sensing range larger than the field diagonal: everything covered.
	if got := d.Coverage(200, 1, 5); got != 1 {
		t.Errorf("huge range coverage = %v, want 1", got)
	}
	// Tiny range: almost nothing covered.
	if got := d.Coverage(1, 1, 5); got > 0.05 {
		t.Errorf("tiny range coverage = %v, want ≈0", got)
	}
	// Degenerate inputs.
	if d.Coverage(0, 1, 5) != 0 || d.Coverage(10, 1, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestCoverageMonotone(t *testing.T) {
	rng := randx.New(7)
	small := Random(field, 8, rng.Split("a"))
	// Coverage grows with n, with r, and shrinks with kMin.
	big := Deployment{Field: field, Nodes: append([]Node(nil), small.Nodes...)}
	extra := Random(field, 8, rng.Split("b"))
	for i, n := range extra.Nodes {
		n.ID = len(big.Nodes) + i - i // keep IDs; Coverage ignores them
		big.Nodes = append(big.Nodes, Node{ID: len(big.Nodes), Pos: n.Pos})
	}
	if small.Coverage(30, 1, 5) > big.Coverage(30, 1, 5) {
		t.Error("coverage should not shrink when adding nodes")
	}
	if small.Coverage(20, 1, 5) > small.Coverage(40, 1, 5) {
		t.Error("coverage should grow with range")
	}
	if small.Coverage(30, 3, 5) > small.Coverage(30, 1, 5) {
		t.Error("k-coverage should not exceed 1-coverage")
	}
}

func TestMeanDegree(t *testing.T) {
	d := Random(field, 20, randx.New(9))
	got := d.MeanDegree(40, 5)
	// Expectation ≈ n·πR²/area clipped by boundary: 20·π·1600/10000 ≈ 10,
	// boundary clipping pulls it down ~25-35%.
	if got < 5 || got > 11 {
		t.Errorf("MeanDegree = %v, expected 5-11", got)
	}
	if d.MeanDegree(0, 5) != 0 || d.MeanDegree(40, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestMinSeparationGrid(t *testing.T) {
	d := Grid(field, 4)
	if got := d.MinSeparation(); math.Abs(got-50) > 1e-9 {
		t.Errorf("MinSeparation = %v, want 50", got)
	}
}
