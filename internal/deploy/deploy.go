// Package deploy generates sensor-node deployments over the monitor field.
//
// The paper evaluates a regular grid and a uniform random deployment
// (Fig. 10), and its outdoor system uses 9 motes in a cross "+" layout
// (Fig. 13). Poisson-disk placement is provided as a practical extra for
// users who need a minimum separation.
package deploy

import (
	"fmt"
	"math"

	"fttt/internal/geom"
	"fttt/internal/randx"
)

// Node is a deployed sensor node.
type Node struct {
	// ID is the node's index; pair enumeration (Def. 5/6) orders nodes by
	// ascending ID.
	ID int
	// Pos is the node's location in the field.
	Pos geom.Point
}

// Deployment is an ordered set of nodes inside a field.
type Deployment struct {
	Field geom.Rect
	Nodes []Node
}

// Positions returns the node positions in ID order.
func (d Deployment) Positions() []geom.Point {
	pts := make([]geom.Point, len(d.Nodes))
	for i, n := range d.Nodes {
		pts[i] = n.Pos
	}
	return pts
}

// N returns the number of nodes.
func (d Deployment) N() int { return len(d.Nodes) }

// Validate checks IDs are 0..n-1 in order and every node is in the field.
func (d Deployment) Validate() error {
	for i, n := range d.Nodes {
		if n.ID != i {
			return fmt.Errorf("deploy: node %d has ID %d, want %d", i, n.ID, i)
		}
		if !d.Field.Contains(n.Pos) {
			return fmt.Errorf("deploy: node %d at %v outside field", i, n.Pos)
		}
	}
	return nil
}

// MinSeparation returns the smallest pairwise distance, or +Inf for fewer
// than two nodes.
func (d Deployment) MinSeparation() float64 {
	min := math.Inf(1)
	for i := range d.Nodes {
		for j := i + 1; j < len(d.Nodes); j++ {
			if dist := d.Nodes[i].Pos.Dist(d.Nodes[j].Pos); dist < min {
				min = dist
			}
		}
	}
	return min
}

// InRange returns the IDs of nodes within sensing range r of p, in
// ascending ID order.
func (d Deployment) InRange(p geom.Point, r float64) []int {
	var ids []int
	for _, n := range d.Nodes {
		if n.Pos.Dist(p) <= r {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Coverage reports what fraction of the field is sensed by at least
// kMin nodes with sensing range r, probed on a grid of the given step.
// FTTT needs several nodes (ideally ≥ 3-4) to hear the target for a
// discriminative sampling vector; the coverage curve explains the knee
// in the error-versus-n plots (Fig. 11(b)).
func (d Deployment) Coverage(r float64, kMin int, step float64) float64 {
	if step <= 0 || r <= 0 {
		return 0
	}
	covered, total := 0, 0
	for y := d.Field.Min.Y + step/2; y < d.Field.Max.Y; y += step {
		for x := d.Field.Min.X + step/2; x < d.Field.Max.X; x += step {
			total++
			p := geom.Pt(x, y)
			c := 0
			for _, n := range d.Nodes {
				if n.Pos.Dist(p) <= r {
					c++
					if c >= kMin {
						break
					}
				}
			}
			if c >= kMin {
				covered++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// MeanDegree returns the average number of nodes sensing a field point
// (probed on a grid of the given step) — n·πR²/area in expectation for
// uniform random deployments, clipped by the field boundary.
func (d Deployment) MeanDegree(r float64, step float64) float64 {
	if step <= 0 || r <= 0 {
		return 0
	}
	sum, total := 0, 0
	for y := d.Field.Min.Y + step/2; y < d.Field.Max.Y; y += step {
		for x := d.Field.Min.X + step/2; x < d.Field.Max.X; x += step {
			total++
			p := geom.Pt(x, y)
			for _, n := range d.Nodes {
				if n.Pos.Dist(p) <= r {
					sum++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(sum) / float64(total)
}

// Grid places n nodes on the most-square grid that fits n, spread evenly
// with a half-cell margin, matching the regular deployment of Fig. 10(a,b).
// If n is not a perfect rectangle the last row is left partially filled.
func Grid(field geom.Rect, n int) Deployment {
	if n <= 0 {
		return Deployment{Field: field}
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	dx := field.Width() / float64(cols)
	dy := field.Height() / float64(rows)
	nodes := make([]Node, 0, n)
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		p := geom.Pt(
			field.Min.X+(float64(c)+0.5)*dx,
			field.Min.Y+(float64(r)+0.5)*dy,
		)
		nodes = append(nodes, Node{ID: i, Pos: p})
	}
	return Deployment{Field: field, Nodes: nodes}
}

// Random places n nodes independently and uniformly at random in the
// field, matching the random deployment of Fig. 10(c,d) and the
// performance simulations of Sec. 7.2.
func Random(field geom.Rect, n int, rng *randx.Stream) Deployment {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			ID: i,
			Pos: geom.Pt(
				rng.Uniform(field.Min.X, field.Max.X),
				rng.Uniform(field.Min.Y, field.Max.Y),
			),
		}
	}
	return Deployment{Field: field, Nodes: nodes}
}

// Cross places n nodes in a "+" shape centred in the field — the outdoor
// layout of Fig. 13 used 9 motes this way: one at the centre and the rest
// along the two axes at spacing arm/((n-1)/4) out to radius arm. For n
// not of the form 4k+1 the remaining nodes continue filling arms in
// round-robin order.
func Cross(field geom.Rect, n int, arm float64) Deployment {
	if n <= 0 {
		return Deployment{Field: field}
	}
	c := field.Center()
	nodes := make([]Node, 0, n)
	nodes = append(nodes, Node{ID: 0, Pos: c})
	dirs := []geom.Vec{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}
	ring := 1
	steps := int(math.Ceil(float64(n-1) / 4))
	if steps < 1 {
		steps = 1
	}
	spacing := arm / float64(steps)
	for len(nodes) < n {
		for _, dir := range dirs {
			if len(nodes) >= n {
				break
			}
			p := field.Clamp(c.Add(dir.Scale(spacing * float64(ring))))
			nodes = append(nodes, Node{ID: len(nodes), Pos: p})
		}
		ring++
	}
	return Deployment{Field: field, Nodes: nodes}
}

// PoissonDisk places up to n nodes uniformly at random subject to a
// minimum pairwise separation, by dart throwing with maxTries attempts per
// node. It returns fewer than n nodes if the field cannot accommodate the
// separation within the try budget.
func PoissonDisk(field geom.Rect, n int, minSep float64, rng *randx.Stream) Deployment {
	const maxTries = 200
	nodes := make([]Node, 0, n)
placing:
	for len(nodes) < n {
		for try := 0; try < maxTries; try++ {
			p := geom.Pt(
				rng.Uniform(field.Min.X, field.Max.X),
				rng.Uniform(field.Min.Y, field.Max.Y),
			)
			ok := true
			for _, m := range nodes {
				if m.Pos.Dist(p) < minSep {
					ok = false
					break
				}
			}
			if ok {
				nodes = append(nodes, Node{ID: len(nodes), Pos: p})
				continue placing
			}
		}
		break // budget exhausted
	}
	return Deployment{Field: field, Nodes: nodes}
}
