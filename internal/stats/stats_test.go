package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almostEq(got, 2.5) {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := StdDev([]float64{5}); !almostEq(got, 0) {
		t.Errorf("StdDev single = %v, want 0", got)
	}
	if !math.IsNaN(StdDev(nil)) {
		t.Error("StdDev(nil) should be NaN")
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{3, 4}); !almostEq(got, math.Sqrt(12.5)) {
		t.Errorf("RMSE = %v", got)
	}
	if !math.IsNaN(RMSE(nil)) {
		t.Error("RMSE(nil) should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v", got)
	}
	// Interpolation.
	if got := Percentile([]float64{0, 10}, 25); !almostEq(got, 2.5) {
		t.Errorf("interp P25 = %v, want 2.5", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
	// Percentile must not mutate its input.
	xs2 := []float64{5, 1, 3}
	Percentile(xs2, 50)
	if xs2[0] != 5 || xs2[1] != 1 || xs2[2] != 3 {
		t.Error("Percentile mutated input")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("Median = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almostEq(s.Mean, 3) || !almostEq(s.Median, 3) ||
		s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if !almostEq(w.Mean(), Mean(xs)) {
		t.Errorf("Welford mean %v vs batch %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.StdDev()-StdDev(xs)) > 1e-9 {
		t.Errorf("Welford sd %v vs batch %v", w.StdDev(), StdDev(xs))
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.StdDev()) {
		t.Error("empty Welford should report NaN")
	}
}

func TestMeanSeries(t *testing.T) {
	out := MeanSeries([][]float64{{1, 2, 3}, {3, 4, 5}})
	want := []float64{2, 3, 4}
	for i := range want {
		if !almostEq(out[i], want[i]) {
			t.Errorf("MeanSeries[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if MeanSeries(nil) != nil {
		t.Error("MeanSeries(nil) should be nil")
	}
}

func TestMeanSeriesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched series should panic")
		}
	}()
	MeanSeries([][]float64{{1, 2}, {1}})
}

func TestMeanBounds(t *testing.T) {
	f := func(a, b, c float64) bool {
		xs := []float64{a, b, c}
		for _, x := range xs {
			if math.Abs(x) > 1e100 { // avoid sum overflow in the oracle
				return true
			}
		}
		m := Mean(xs)
		tol := 1e-9 * (1 + math.Abs(Min(xs)) + math.Abs(Max(xs)))
		return m >= Min(xs)-tol && m <= Max(xs)+tol
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 5 {
		v := Percentile(xs, p)
		if v < prev-1e-9 {
			t.Fatalf("percentile not monotone at p=%v", p)
		}
		prev = v
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 10
	}
	next := func(n int) int { return rng.Intn(n) }
	lo, hi := BootstrapCI(xs, 0.95, 2000, next)
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Errorf("CI [%v, %v] should bracket the mean %v", lo, hi, m)
	}
	// 95% CI of a N(10, 2²) mean over 200 samples ≈ ±0.28.
	if hi-lo < 0.2 || hi-lo > 1.5 {
		t.Errorf("CI width %v implausible", hi-lo)
	}
	// Wider level → wider interval.
	lo99, hi99 := BootstrapCI(xs, 0.99, 2000, next)
	if hi99-lo99 <= hi-lo {
		t.Errorf("99%% CI (%v) should be wider than 95%% (%v)", hi99-lo99, hi-lo)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	next := func(n int) int { return 0 }
	if lo, hi := BootstrapCI(nil, 0.95, 100, next); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("empty sample should give NaNs")
	}
	lo, hi := BootstrapCI([]float64{7}, 0.95, 100, next)
	if lo != 7 || hi != 7 {
		t.Errorf("single sample CI = [%v, %v], want [7, 7]", lo, hi)
	}
	// Bad level falls back to 0.95 without panicking.
	lo, hi = BootstrapCI([]float64{1, 2, 3}, 2, 100, next)
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Error("bad level should fall back, not NaN")
	}
}
