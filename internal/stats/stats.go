// Package stats provides the summary statistics used by the evaluation
// harness: means, standard deviations, percentiles and per-trial series
// aggregation for the error plots of Sec. 7.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or NaN for an
// empty slice.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// RMSE returns the root mean square of xs (the RMS error when xs are
// per-point tracking errors), or NaN for an empty slice.
func RMSE(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x * x
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Min returns the smallest element, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics, or NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics of one sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	RMSE   float64
	Min    float64
	Median float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		RMSE:   RMSE(xs),
		Min:    Min(xs),
		Median: Median(xs),
		P90:    Percentile(xs, 90),
		Max:    Max(xs),
	}
}

// Welford accumulates mean and variance in one pass without retaining the
// sample. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN before any observation).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// StdDev returns the running population standard deviation (NaN before
// any observation).
func (w *Welford) StdDev() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95), using resamples
// drawn from the deterministic source next (a func returning uniform
// ints in [0, n), e.g. from a seeded randx.Stream). It returns NaNs for
// an empty sample and the point mean twice for a single observation.
func BootstrapCI(xs []float64, level float64, resamples int, next func(n int) int) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	if len(xs) == 1 || resamples < 2 {
		m := Mean(xs)
		return m, m
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	means := make([]float64, resamples)
	for b := 0; b < resamples; b++ {
		var sum float64
		for i := 0; i < len(xs); i++ {
			sum += xs[next(len(xs))]
		}
		means[b] = sum / float64(len(xs))
	}
	alpha := (1 - level) / 2 * 100
	return Percentile(means, alpha), Percentile(means, 100-alpha)
}

// MeanSeries averages several equal-length series point-wise: result[i] is
// the mean of series[trial][i] over trials. It panics on length mismatch.
func MeanSeries(series [][]float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0])
	out := make([]float64, n)
	for _, s := range series {
		if len(s) != n {
			panic("stats: series length mismatch")
		}
		for i, x := range s {
			out[i] += x
		}
	}
	for i := range out {
		out[i] /= float64(len(series))
	}
	return out
}
