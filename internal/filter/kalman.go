// Package filter provides model-based post-smoothers for tracker
// estimates: a constant-velocity Kalman filter and a bootstrap particle
// filter. The paper's related work (Sec. 2) contrasts FTTT with
// model-based tracking built on exactly these filters [16][18][19]; here
// they are offered as optional output stages — FTTT (or any tracker)
// produces raw per-localization estimates, and a filter turns them into
// a smoothed trajectory, trading latency and model assumptions for lower
// error deviation. The SmoothingExperiment compares FTTT+Kalman and
// FTTT+particle against the extended FTTT variant, which achieves its
// smoothing without any mobility model.
package filter

import (
	"fmt"

	"fttt/internal/geom"
)

// Kalman is a constant-velocity Kalman filter over the state
// [x, y, vx, vy], with position-only measurements. The zero value is not
// usable; construct with NewKalman.
type Kalman struct {
	// q is the process-noise spectral density (m²/s³): how much the
	// constant-velocity assumption is allowed to bend.
	q float64
	// r is the measurement-noise variance (m²) of the tracker estimates.
	r float64

	initialized bool
	// state: position and velocity.
	x, y, vx, vy float64
	// p is the 4×4 state covariance, row-major.
	p [16]float64
}

// NewKalman builds a filter. processNoise (q) is the acceleration
// spectral density in m²/s³; measurementStd is the tracker's typical
// error in metres (its square becomes the measurement variance).
func NewKalman(processNoise, measurementStd float64) (*Kalman, error) {
	if processNoise <= 0 {
		return nil, fmt.Errorf("filter: process noise must be positive, got %v", processNoise)
	}
	if measurementStd <= 0 {
		return nil, fmt.Errorf("filter: measurement std must be positive, got %v", measurementStd)
	}
	return &Kalman{q: processNoise, r: measurementStd * measurementStd}, nil
}

// Reset forgets all state; the next Update re-initialises.
func (k *Kalman) Reset() { k.initialized = false }

// State returns the current position and velocity estimates.
func (k *Kalman) State() (pos geom.Point, vel geom.Vec) {
	return geom.Pt(k.x, k.y), geom.Vec{X: k.vx, Y: k.vy}
}

// Update advances the filter by dt seconds and fuses the measurement z,
// returning the filtered position. The first call initialises the state
// at z with zero velocity and a diffuse covariance.
func (k *Kalman) Update(z geom.Point, dt float64) geom.Point {
	if !k.initialized {
		k.x, k.y, k.vx, k.vy = z.X, z.Y, 0, 0
		for i := range k.p {
			k.p[i] = 0
		}
		// Diffuse prior: large position and velocity uncertainty.
		k.p[0], k.p[5] = k.r*10, k.r*10
		k.p[10], k.p[15] = 100, 100
		k.initialized = true
		return z
	}
	if dt < 0 {
		dt = 0
	}
	k.predict(dt)
	k.correct(z)
	return geom.Pt(k.x, k.y)
}

// predict applies the constant-velocity transition
// F = [1 0 dt 0; 0 1 0 dt; 0 0 1 0; 0 0 0 1] and the white-acceleration
// process noise Q.
func (k *Kalman) predict(dt float64) {
	k.x += k.vx * dt
	k.y += k.vy * dt

	// P ← F P Fᵀ + Q, written out for the block structure: the x/vx and
	// y/vy blocks are independent and identical in form.
	dt2 := dt * dt
	dt3 := dt2 * dt / 2
	dt4 := dt2 * dt2 / 4

	// Helper indices: p[r*4+c].
	idx := func(r, c int) int { return r*4 + c }
	// x block: rows/cols {0, 2}; y block: rows/cols {1, 3}.
	for _, blk := range [][2]int{{0, 2}, {1, 3}} {
		pi, vi := blk[0], blk[1]
		ppp := k.p[idx(pi, pi)]
		ppv := k.p[idx(pi, vi)]
		pvp := k.p[idx(vi, pi)]
		pvv := k.p[idx(vi, vi)]
		k.p[idx(pi, pi)] = ppp + dt*(ppv+pvp) + dt2*pvv + k.q*dt4
		k.p[idx(pi, vi)] = ppv + dt*pvv + k.q*dt3
		k.p[idx(vi, pi)] = pvp + dt*pvv + k.q*dt3
		k.p[idx(vi, vi)] = pvv + k.q*dt2
	}
	// Cross x-y blocks propagate too, but with H observing x and y
	// directly and Q diagonal per block, any initial zeros stay zero; we
	// keep them untouched (they remain zero throughout).
}

// correct fuses a position measurement with H = [1 0 0 0; 0 1 0 0] and
// R = r·I₂. With the cross x-y covariance zero, the update decouples
// into two independent 2-state corrections.
func (k *Kalman) correct(z geom.Point) {
	idx := func(r, c int) int { return r*4 + c }
	for _, blk := range []struct {
		pi, vi int
		innov  float64
	}{
		{0, 2, z.X - k.x},
		{1, 3, z.Y - k.y},
	} {
		pi, vi := blk.pi, blk.vi
		s := k.p[idx(pi, pi)] + k.r
		kp := k.p[idx(pi, pi)] / s // gain for position
		kv := k.p[idx(vi, pi)] / s // gain for velocity
		switch pi {
		case 0:
			k.x += kp * blk.innov
			k.vx += kv * blk.innov
		default:
			k.y += kp * blk.innov
			k.vy += kv * blk.innov
		}
		// Joseph-free covariance update (standard form).
		ppp := k.p[idx(pi, pi)]
		ppv := k.p[idx(pi, vi)]
		pvp := k.p[idx(vi, pi)]
		k.p[idx(pi, pi)] = (1 - kp) * ppp
		k.p[idx(pi, vi)] = (1 - kp) * ppv
		k.p[idx(vi, pi)] = pvp - kv*ppp
		k.p[idx(vi, vi)] -= kv * ppv
	}
}

// SmoothTrack runs the filter over a whole estimate series with the
// given timestamps and returns the filtered positions.
func (k *Kalman) SmoothTrack(estimates []geom.Point, times []float64) []geom.Point {
	out := make([]geom.Point, len(estimates))
	prevT := 0.0
	for i, z := range estimates {
		dt := 0.0
		if i > 0 {
			dt = times[i] - prevT
		}
		prevT = times[i]
		out[i] = k.Update(z, dt)
	}
	return out
}
