package filter

import (
	"fmt"
	"math"

	"fttt/internal/geom"
	"fttt/internal/randx"
)

// Particle is a bootstrap (sequential importance resampling) particle
// filter over a near-constant-velocity motion model with position-only
// measurements — the classic tracking filter of [19], provided as an
// alternative smoother to the Kalman filter for multimodal error
// distributions (FTTT's face-matching errors are discrete jumps, not
// Gaussian blur).
type Particle struct {
	field geom.Rect
	// accel is the random-walk acceleration std dev (m/s²).
	accel float64
	// measStd is the measurement noise std dev (m).
	measStd float64
	rng     *randx.Stream

	px, py, vx, vy, w []float64
	initialized       bool
}

// NewParticle builds a filter with n particles confined to the field.
func NewParticle(field geom.Rect, n int, accel, measStd float64, rng *randx.Stream) (*Particle, error) {
	if n < 10 {
		return nil, fmt.Errorf("filter: need at least 10 particles, got %d", n)
	}
	if accel <= 0 || measStd <= 0 {
		return nil, fmt.Errorf("filter: accel and measStd must be positive (got %v, %v)", accel, measStd)
	}
	if rng == nil {
		return nil, fmt.Errorf("filter: nil rng")
	}
	return &Particle{
		field:   field,
		accel:   accel,
		measStd: measStd,
		rng:     rng,
		px:      make([]float64, n),
		py:      make([]float64, n),
		vx:      make([]float64, n),
		vy:      make([]float64, n),
		w:       make([]float64, n),
	}, nil
}

// N returns the particle count.
func (f *Particle) N() int { return len(f.px) }

// Reset forgets all particles; the next Update re-initialises.
func (f *Particle) Reset() { f.initialized = false }

// Update advances the filter by dt seconds, weights particles against the
// measurement z, resamples, and returns the weighted mean position.
func (f *Particle) Update(z geom.Point, dt float64) geom.Point {
	n := len(f.px)
	if !f.initialized {
		for i := 0; i < n; i++ {
			f.px[i] = z.X + f.rng.Normal(0, f.measStd)
			f.py[i] = z.Y + f.rng.Normal(0, f.measStd)
			f.vx[i] = f.rng.Normal(0, 2)
			f.vy[i] = f.rng.Normal(0, 2)
			f.w[i] = 1 / float64(n)
		}
		f.initialized = true
		return z
	}
	if dt < 0 {
		dt = 0
	}
	// Propagate with random acceleration.
	for i := 0; i < n; i++ {
		ax := f.rng.Normal(0, f.accel)
		ay := f.rng.Normal(0, f.accel)
		f.vx[i] += ax * dt
		f.vy[i] += ay * dt
		f.px[i] += f.vx[i] * dt
		f.py[i] += f.vy[i] * dt
		// Reflect at the field boundary: targets do not leave the
		// monitor area.
		if f.px[i] < f.field.Min.X {
			f.px[i] = 2*f.field.Min.X - f.px[i]
			f.vx[i] = -f.vx[i]
		}
		if f.px[i] > f.field.Max.X {
			f.px[i] = 2*f.field.Max.X - f.px[i]
			f.vx[i] = -f.vx[i]
		}
		if f.py[i] < f.field.Min.Y {
			f.py[i] = 2*f.field.Min.Y - f.py[i]
			f.vy[i] = -f.vy[i]
		}
		if f.py[i] > f.field.Max.Y {
			f.py[i] = 2*f.field.Max.Y - f.py[i]
			f.vy[i] = -f.vy[i]
		}
	}
	// Weight by the Gaussian measurement likelihood.
	inv2s2 := 1 / (2 * f.measStd * f.measStd)
	var wsum float64
	for i := 0; i < n; i++ {
		dx := f.px[i] - z.X
		dy := f.py[i] - z.Y
		f.w[i] = math.Exp(-(dx*dx + dy*dy) * inv2s2)
		wsum += f.w[i]
	}
	if wsum <= 1e-300 {
		// Degenerate: every particle far from the measurement (e.g. a
		// face-matching jump). Re-seed around z rather than divide by ~0.
		f.initialized = false
		return f.Update(z, 0)
	}
	// Estimate = weighted mean.
	var ex, ey float64
	for i := 0; i < n; i++ {
		f.w[i] /= wsum
		ex += f.w[i] * f.px[i]
		ey += f.w[i] * f.py[i]
	}
	f.resample()
	return f.field.Clamp(geom.Pt(ex, ey))
}

// resample performs systematic resampling, which keeps particle diversity
// with O(n) work.
func (f *Particle) resample() {
	n := len(f.px)
	npx := make([]float64, n)
	npy := make([]float64, n)
	nvx := make([]float64, n)
	nvy := make([]float64, n)
	step := 1 / float64(n)
	u := f.rng.Float64() * step
	var cum float64
	j := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for cum+f.w[j] < target && j < n-1 {
			cum += f.w[j]
			j++
		}
		npx[i], npy[i] = f.px[j], f.py[j]
		nvx[i], nvy[i] = f.vx[j], f.vy[j]
	}
	copy(f.px, npx)
	copy(f.py, npy)
	copy(f.vx, nvx)
	copy(f.vy, nvy)
	for i := range f.w {
		f.w[i] = step
	}
}

// SmoothTrack runs the filter over a whole estimate series with the
// given timestamps and returns the filtered positions.
func (f *Particle) SmoothTrack(estimates []geom.Point, times []float64) []geom.Point {
	out := make([]geom.Point, len(estimates))
	prevT := 0.0
	for i, z := range estimates {
		dt := 0.0
		if i > 0 {
			dt = times[i] - prevT
		}
		prevT = times[i]
		out[i] = f.Update(z, dt)
	}
	return out
}

// Smoother is the interface both filters satisfy; the smoothing
// experiment runs any Smoother over a tracked series.
type Smoother interface {
	Update(z geom.Point, dt float64) geom.Point
	Reset()
}

var (
	_ Smoother = (*Kalman)(nil)
	_ Smoother = (*Particle)(nil)
)
