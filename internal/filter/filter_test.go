package filter

import (
	"math"
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/stats"
)

var field = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

// noisyLine generates a constant-velocity truth with Gaussian measurement
// noise: the regime where a CV Kalman filter must beat raw measurements.
func noisyLine(n int, dt, noise float64, seed uint64) (truth, meas []geom.Point, times []float64) {
	rng := randx.New(seed)
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		p := geom.Pt(10+0.8*t, 20+0.5*t) // stays inside the 100×100 field
		truth = append(truth, p)
		meas = append(meas, geom.Pt(p.X+rng.Normal(0, noise), p.Y+rng.Normal(0, noise)))
		times = append(times, t)
	}
	return truth, meas, times
}

func meanErr(est, truth []geom.Point) float64 {
	errs := make([]float64, len(est))
	for i := range est {
		errs[i] = est[i].Dist(truth[i])
	}
	return stats.Mean(errs)
}

func TestNewKalmanValidation(t *testing.T) {
	if _, err := NewKalman(0, 1); err == nil {
		t.Error("q=0 should fail")
	}
	if _, err := NewKalman(1, 0); err == nil {
		t.Error("r=0 should fail")
	}
	if _, err := NewKalman(1, 1); err != nil {
		t.Errorf("valid kalman rejected: %v", err)
	}
}

func TestKalmanReducesNoise(t *testing.T) {
	truth, meas, times := noisyLine(200, 0.5, 4, 1)
	k, _ := NewKalman(0.5, 4)
	smoothed := k.SmoothTrack(meas, times)
	raw := meanErr(meas, truth)
	flt := meanErr(smoothed[20:], truth[20:]) // skip convergence
	if flt >= raw {
		t.Errorf("Kalman error %.2f should beat raw %.2f", flt, raw)
	}
}

func TestKalmanFirstUpdateReturnsMeasurement(t *testing.T) {
	k, _ := NewKalman(1, 2)
	z := geom.Pt(5, 7)
	if got := k.Update(z, 0); got != z {
		t.Errorf("first update = %v, want %v", got, z)
	}
}

func TestKalmanEstimatesVelocity(t *testing.T) {
	truth, meas, times := noisyLine(300, 0.5, 2, 2)
	// Small process noise: the target really is constant-velocity, so a
	// stiff filter gives a tight velocity estimate.
	k, _ := NewKalman(0.02, 2)
	k.SmoothTrack(meas, times)
	_, vel := k.State()
	if math.Abs(vel.X-0.8) > 0.3 || math.Abs(vel.Y-0.5) > 0.3 {
		t.Errorf("velocity estimate %v, want ≈(0.8,0.5)", vel)
	}
	_ = truth
}

func TestKalmanTracksTurn(t *testing.T) {
	// The filter must not diverge on a 90° turn; it lags but recovers.
	rng := randx.New(3)
	var truth, meas []geom.Point
	var times []float64
	for i := 0; i < 200; i++ {
		t := float64(i) * 0.5
		var p geom.Point
		if i < 100 {
			p = geom.Pt(10+1.5*t, 20)
		} else {
			p = geom.Pt(10+1.5*float64(99)*0.5, 20+1.5*(t-49.5))
		}
		truth = append(truth, p)
		meas = append(meas, geom.Pt(p.X+rng.Normal(0, 3), p.Y+rng.Normal(0, 3)))
		times = append(times, t)
	}
	k, _ := NewKalman(2, 3)
	sm := k.SmoothTrack(meas, times)
	if e := meanErr(sm[150:], truth[150:]); e > 5 {
		t.Errorf("post-turn error %.2f too large", e)
	}
}

func TestKalmanReset(t *testing.T) {
	k, _ := NewKalman(1, 2)
	k.Update(geom.Pt(5, 5), 0)
	k.Update(geom.Pt(6, 5), 1)
	k.Reset()
	z := geom.Pt(90, 90)
	if got := k.Update(z, 1); got != z {
		t.Errorf("after Reset the first update should return z, got %v", got)
	}
}

func TestKalmanNegativeDtClamped(t *testing.T) {
	k, _ := NewKalman(1, 2)
	k.Update(geom.Pt(5, 5), 0)
	got := k.Update(geom.Pt(6, 5), -10)
	if math.IsNaN(got.X) || math.IsNaN(got.Y) {
		t.Error("negative dt produced NaN")
	}
}

func TestNewParticleValidation(t *testing.T) {
	rng := randx.New(1)
	if _, err := NewParticle(field, 5, 1, 1, rng); err == nil {
		t.Error("too few particles should fail")
	}
	if _, err := NewParticle(field, 100, 0, 1, rng); err == nil {
		t.Error("accel=0 should fail")
	}
	if _, err := NewParticle(field, 100, 1, 0, rng); err == nil {
		t.Error("measStd=0 should fail")
	}
	if _, err := NewParticle(field, 100, 1, 1, nil); err == nil {
		t.Error("nil rng should fail")
	}
	pf, err := NewParticle(field, 100, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pf.N() != 100 {
		t.Errorf("N = %d", pf.N())
	}
}

func TestParticleReducesNoise(t *testing.T) {
	truth, meas, times := noisyLine(200, 0.5, 4, 4)
	pf, _ := NewParticle(field, 500, 2, 4, randx.New(5))
	smoothed := pf.SmoothTrack(meas, times)
	raw := meanErr(meas, truth)
	flt := meanErr(smoothed[20:], truth[20:])
	if flt >= raw {
		t.Errorf("particle error %.2f should beat raw %.2f", flt, raw)
	}
}

func TestParticleStaysInField(t *testing.T) {
	pf, _ := NewParticle(field, 200, 3, 3, randx.New(6))
	rng := randx.New(7)
	for i := 0; i < 100; i++ {
		z := geom.Pt(rng.Uniform(0, 100), rng.Uniform(0, 100))
		est := pf.Update(z, 0.5)
		if !field.Contains(est) {
			t.Fatalf("estimate %v left the field", est)
		}
	}
}

func TestParticleSurvivesJump(t *testing.T) {
	// A face-matching jump teleports the measurement across the field;
	// the degenerate-weight rescue must keep the filter alive.
	pf, _ := NewParticle(field, 200, 1, 2, randx.New(8))
	pf.Update(geom.Pt(10, 10), 0)
	for i := 0; i < 5; i++ {
		pf.Update(geom.Pt(10+float64(i), 10), 0.5)
	}
	est := pf.Update(geom.Pt(90, 90), 0.5)
	if math.IsNaN(est.X) || math.IsNaN(est.Y) {
		t.Fatal("jump produced NaN")
	}
	// After a few updates at the new location the filter relocks.
	for i := 0; i < 10; i++ {
		est = pf.Update(geom.Pt(90, 90), 0.5)
	}
	if est.Dist(geom.Pt(90, 90)) > 5 {
		t.Errorf("filter failed to relock after jump: %v", est)
	}
}

func TestParticleReset(t *testing.T) {
	pf, _ := NewParticle(field, 100, 1, 2, randx.New(9))
	pf.Update(geom.Pt(10, 10), 0)
	pf.Reset()
	z := geom.Pt(80, 20)
	if got := pf.Update(z, 1); got != z {
		t.Errorf("after Reset first update should return z, got %v", got)
	}
}

func TestParticleDeterministic(t *testing.T) {
	run := func() geom.Point {
		pf, _ := NewParticle(field, 100, 1, 2, randx.New(10))
		var est geom.Point
		for i := 0; i < 20; i++ {
			est = pf.Update(geom.Pt(float64(10+i), 30), 0.5)
		}
		return est
	}
	if run() != run() {
		t.Error("particle filter not reproducible under the same seed")
	}
}

func TestSmootherInterface(t *testing.T) {
	var smoothers []Smoother
	k, _ := NewKalman(1, 2)
	pf, _ := NewParticle(field, 50, 1, 2, randx.New(11))
	smoothers = append(smoothers, k, pf)
	for _, s := range smoothers {
		s.Update(geom.Pt(1, 1), 0)
		s.Reset()
	}
}
