package match

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/vector"
)

var fieldRect = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

func buildDivision(t testing.TB, n int, cell float64) *field.Division {
	t.Helper()
	div, _ := buildDivisionClassifier(t, n, cell)
	return div
}

func buildDivisionClassifier(t testing.TB, n int, cell float64) (*field.Division, *field.RatioClassifier) {
	t.Helper()
	d := deploy.Grid(fieldRect, n)
	c := rf.Default().UncertaintyC(1)
	rc, err := field.NewRatioClassifier(d.Positions(), c)
	if err != nil {
		t.Fatal(err)
	}
	div, err := field.Divide(fieldRect, rc, cell)
	if err != nil {
		t.Fatal(err)
	}
	return div, rc
}

func TestExhaustiveFindsExactSignature(t *testing.T) {
	div := buildDivision(t, 4, 2)
	m := &Exhaustive{Div: div}
	for _, f := range div.Faces[:minInt(20, len(div.Faces))] {
		r := m.Match(f.Signature, nil)
		if !math.IsInf(r.Similarity, 1) {
			t.Fatalf("face %d: exact signature similarity = %v, want +Inf", f.ID, r.Similarity)
		}
		if r.Tied == 1 && r.Face.ID != f.ID {
			t.Fatalf("face %d: matched %d instead", f.ID, r.Face.ID)
		}
	}
}

func TestExhaustiveVisitsAll(t *testing.T) {
	div := buildDivision(t, 4, 2)
	m := &Exhaustive{Div: div}
	r := m.Match(div.Faces[0].Signature, nil)
	if r.Visited != div.NumFaces() {
		t.Errorf("Visited = %d, want %d", r.Visited, div.NumFaces())
	}
}

func TestExhaustiveNearestForPerturbed(t *testing.T) {
	// Perturb one component of a face signature; the original face should
	// still be among the best (distance 1).
	div := buildDivision(t, 4, 2)
	m := &Exhaustive{Div: div}
	f := &div.Faces[div.NumFaces()/2]
	v := f.Signature.Clone()
	// Flip a certain component to uncertain (distance 1 from original).
	flipped := false
	for k := range v {
		if v[k] != vector.Flipped {
			v[k] = vector.Flipped
			flipped = true
			break
		}
	}
	if !flipped {
		t.Skip("face has all-flipped signature")
	}
	r := m.Match(v, nil)
	if r.Similarity < 1 { // distance must be ≤ 1
		t.Errorf("similarity = %v, want ≥ 1", r.Similarity)
	}
}

func TestTieEstimateIsMeanOfCentroids(t *testing.T) {
	// Craft a division-like tie using the real matcher: find two faces at
	// equal distance from a probe vector.
	div := buildDivision(t, 4, 2)
	m := &Exhaustive{Div: div}
	// Probe with an impossible all-star-free vector far from everything:
	// all zeros is plausible; just assert the invariant Estimate == mean
	// of tied centroids whenever Tied > 1.
	r := m.Match(vector.New(4), nil)
	if r.Tied > 1 {
		if !fieldRect.Contains(r.Estimate) {
			t.Errorf("tied estimate %v outside field", r.Estimate)
		}
	}
	_ = r
}

func TestHeuristicConvergesToExhaustiveNearPrev(t *testing.T) {
	// When warm-started at the true face, the heuristic must return a
	// face at least as similar as the start.
	div := buildDivision(t, 9, 2)
	h := &Heuristic{Div: div}
	rng := randx.New(1)
	for trial := 0; trial < 100; trial++ {
		p := geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
		f := div.FaceAt(p)
		r := h.Match(f.Signature, f)
		if !math.IsInf(r.Similarity, 1) {
			t.Fatalf("warm start at exact face should match exactly, got sim %v", r.Similarity)
		}
	}
}

func TestHeuristicVisitsFewerThanExhaustive(t *testing.T) {
	div := buildDivision(t, 9, 2)
	ex := &Exhaustive{Div: div}
	h := &Heuristic{Div: div}
	rng := randx.New(2)
	sumEx, sumH := 0, 0
	for trial := 0; trial < 50; trial++ {
		p := geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
		f := div.FaceAt(p)
		// Probe with the face's own signature warm-started nearby.
		q := geom.Pt(p.X+3, p.Y)
		prev := div.FaceAt(fieldRect.Clamp(q))
		sumEx += ex.Match(f.Signature, nil).Visited
		sumH += h.Match(f.Signature, prev).Visited
	}
	if sumH >= sumEx {
		t.Errorf("heuristic visited %d ≥ exhaustive %d", sumH, sumEx)
	}
}

func TestHeuristicColdStart(t *testing.T) {
	div := buildDivision(t, 4, 2)
	h := &Heuristic{Div: div}
	r := h.Match(div.Faces[0].Signature, nil)
	if r.Face == nil {
		t.Fatal("nil face")
	}
	if r.Rounds < 1 {
		t.Errorf("Rounds = %d, want ≥ 1", r.Rounds)
	}
}

func TestHeuristicFallback(t *testing.T) {
	div := buildDivision(t, 9, 2)
	noFB := &Heuristic{Div: div}
	fb := &Heuristic{Div: div, Fallback: true, FallbackBelow: math.Inf(1)}
	// With an infinite threshold the fallback always fires, so the result
	// must equal the exhaustive answer.
	ex := &Exhaustive{Div: div}
	rng := randx.New(3)
	for trial := 0; trial < 30; trial++ {
		p := geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
		v := div.FaceAt(p).Signature
		want := ex.Match(v, nil)
		got := fb.Match(v, nil)
		if got.Similarity != want.Similarity {
			t.Fatalf("fallback similarity %v != exhaustive %v", got.Similarity, want.Similarity)
		}
		// When the climb already matched exactly (+Inf) the fallback does
		// not fire; otherwise the fallback scan adds to Visited.
		if !math.IsInf(got.Similarity, 1) && got.Visited <= want.Visited {
			t.Fatalf("fallback should visit more than exhaustive alone")
		}
		_ = noFB
	}
}

func TestHeuristicEstimateInsideField(t *testing.T) {
	div := buildDivision(t, 9, 2)
	h := &Heuristic{Div: div}
	rng := randx.New(4)
	for trial := 0; trial < 50; trial++ {
		p := geom.Pt(rng.Uniform(0, 100), rng.Uniform(0, 100))
		r := h.Match(div.FaceAt(p).Signature, nil)
		if !fieldRect.Contains(r.Estimate) {
			t.Fatalf("estimate %v outside field", r.Estimate)
		}
	}
}

func TestMatchersAgreeOnExactSignatures(t *testing.T) {
	// For exact face signatures, heuristic warm-started at a neighbor
	// should land on a face with infinite similarity (the face itself or
	// an identical-signature face).
	div := buildDivision(t, 9, 2)
	h := &Heuristic{Div: div}
	for i := range div.Faces[:minInt(30, len(div.Faces))] {
		f := &div.Faces[i]
		if len(f.Neighbors) == 0 {
			continue
		}
		prev := &div.Faces[f.Neighbors[0]]
		r := h.Match(f.Signature, prev)
		if !math.IsInf(r.Similarity, 1) {
			// A one-step climb can stall on plateaus; allow distance 1.
			if r.Similarity < 1 {
				t.Errorf("face %d from neighbor: sim %v too low", f.ID, r.Similarity)
			}
		}
	}
}

func TestWeightedTopMOneEqualsExhaustive(t *testing.T) {
	div := buildDivision(t, 9, 2)
	ex := &Exhaustive{Div: div}
	w1 := &WeightedTopM{Div: div, M: 1}
	rng := randx.New(7)
	for trial := 0; trial < 40; trial++ {
		p := geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
		v := div.FaceAt(p).Signature
		re := ex.Match(v, nil)
		rw := w1.Match(v, nil)
		if re.Face.ID != rw.Face.ID && re.Tied == 1 {
			t.Fatalf("M=1 winner %d != exhaustive %d", rw.Face.ID, re.Face.ID)
		}
	}
}

func TestWeightedTopMExactMatchAveragesOnlyExact(t *testing.T) {
	div := buildDivision(t, 4, 2)
	w := &WeightedTopM{Div: div, M: 5}
	f := &div.Faces[div.NumFaces()/3]
	r := w.Match(f.Signature, nil)
	if !math.IsInf(r.Similarity, 1) {
		t.Fatalf("exact signature should match with +Inf, got %v", r.Similarity)
	}
	// With a unique exact match the estimate is that face's centroid.
	if r.Tied == 1 && !r.Estimate.Eq(f.Centroid) {
		t.Errorf("estimate %v, want centroid %v", r.Estimate, f.Centroid)
	}
}

func TestWeightedTopMEstimateInField(t *testing.T) {
	div := buildDivision(t, 9, 2)
	w := &WeightedTopM{Div: div, M: 8}
	rng := randx.New(8)
	for trial := 0; trial < 40; trial++ {
		// Perturbed vector: flip a few components.
		p := geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
		v := div.FaceAt(p).Signature.Clone()
		for j := 0; j < 3; j++ {
			v[rng.Intn(len(v))] = vector.Flipped
		}
		r := w.Match(v, nil)
		if !fieldRect.Contains(r.Estimate) {
			t.Fatalf("estimate %v outside field", r.Estimate)
		}
	}
}

func TestWeightedTopMDefaultsM(t *testing.T) {
	div := buildDivision(t, 4, 2)
	w := &WeightedTopM{Div: div} // M unset → 1
	r := w.Match(div.Faces[0].Signature, nil)
	if r.Face == nil {
		t.Fatal("nil face")
	}
	if r.Visited != div.NumFaces() {
		t.Errorf("Visited = %d, want all", r.Visited)
	}
}

func TestIncrementalMatchesFull(t *testing.T) {
	div := buildDivision(t, 16, 2)
	full := &Heuristic{Div: div}
	inc := &Heuristic{Div: div, Incremental: true}
	rng := randx.New(21)
	var prevF, prevI *field.Face
	for trial := 0; trial < 200; trial++ {
		// Noisy probe vectors, including stars.
		p := geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
		v := div.FaceAt(p).Signature.Clone()
		for j := 0; j < 4; j++ {
			k := rng.Intn(len(v))
			switch rng.Intn(3) {
			case 0:
				v[k] = vector.Flipped
			case 1:
				v[k] = vector.Nearer
			default:
				v[k] = vector.Star
			}
		}
		rf := full.Match(v, prevF)
		ri := inc.Match(v, prevI)
		prevF, prevI = rf.Face, ri.Face
		if rf.Face.ID != ri.Face.ID {
			// Heap ties can break differently under float drift; accept
			// equal-distance winners.
			df := vector.Distance(v, rf.Face.Signature)
			di := vector.Distance(v, ri.Face.Signature)
			if math.Abs(df-di) > 1e-9 {
				t.Fatalf("trial %d: incremental face %d (d=%v) != full %d (d=%v)",
					trial, ri.Face.ID, di, rf.Face.ID, df)
			}
		}
	}
}

func TestIncrementalExactMatch(t *testing.T) {
	div := buildDivision(t, 9, 2)
	inc := &Heuristic{Div: div, Incremental: true}
	for i := 0; i < minInt(20, div.NumFaces()); i++ {
		f := &div.Faces[i]
		if len(f.Neighbors) == 0 {
			continue
		}
		prev := &div.Faces[f.Neighbors[0]]
		r := inc.Match(f.Signature, prev)
		if r.Similarity < 1 {
			t.Errorf("face %d from neighbor: similarity %v too low", f.ID, r.Similarity)
		}
	}
}

func TestNeighborDiffsConsistent(t *testing.T) {
	div := buildDivision(t, 9, 2)
	for _, f := range div.Faces {
		if len(f.NeighborDiffs) != len(f.Neighbors) {
			t.Fatalf("face %d: %d diffs for %d neighbors", f.ID, len(f.NeighborDiffs), len(f.Neighbors))
		}
		for ni, nb := range f.Neighbors {
			nbSig := div.Faces[nb].Signature
			// Every listed component differs, every unlisted matches.
			listed := map[int]bool{}
			for _, k := range f.NeighborDiffs[ni] {
				listed[k] = true
				if f.Signature[k] == nbSig[k] {
					t.Fatalf("face %d↔%d: component %d listed but equal", f.ID, nb, k)
				}
			}
			for k := range f.Signature {
				if !listed[k] && f.Signature[k] != nbSig[k] {
					t.Fatalf("face %d↔%d: component %d differs but unlisted", f.ID, nb, k)
				}
			}
		}
	}
}

func BenchmarkHeuristicFull(b *testing.B) {
	benchHeuristic(b, false)
}

func BenchmarkHeuristicIncremental(b *testing.B) {
	benchHeuristic(b, true)
}

func benchHeuristic(b *testing.B, incremental bool) {
	d := deploy.Grid(fieldRect, 36)
	c := rf.Default().UncertaintyC(1)
	rc, err := field.NewRatioClassifier(d.Positions(), c)
	if err != nil {
		b.Fatal(err)
	}
	div, err := field.Divide(fieldRect, rc, 2)
	if err != nil {
		b.Fatal(err)
	}
	h := &Heuristic{Div: div, Incremental: incremental}
	rng := randx.New(5)
	v := div.FaceAt(geom.Pt(47, 53)).Signature.Clone()
	for j := 0; j < 10; j++ {
		v[rng.Intn(len(v))] = vector.Flipped
	}
	prev := div.FaceAt(geom.Pt(50, 50))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := h.Match(v, prev)
		prev = r.Face
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestWeightedTopMTieCountMatchesExhaustive(t *testing.T) {
	// WeightedTopM used to hardcode Tied: 1; it must report the true
	// number of maximum-similarity faces, exactly like Exhaustive.
	div, rc := buildDivisionClassifier(t, 9, 2)
	ex := &Exhaustive{Div: div}
	w := &WeightedTopM{Div: div, M: 3}
	rng := randx.New(11)
	sawTie := false
	for trial := 0; trial < 200; trial++ {
		p := geom.Pt(rng.Uniform(-5, 105), rng.Uniform(-5, 105))
		v := field.Signature(rc, fieldRect.Clamp(p))
		// Perturb some components to provoke inexact, tie-prone probes.
		if trial%2 == 0 {
			for k := 0; k < len(v); k += 7 {
				v[k] = vector.Flipped
			}
		}
		want := ex.Match(v, nil).Tied
		got := w.Match(v, nil).Tied
		if got != want {
			t.Fatalf("trial %d: WeightedTopM Tied = %d, Exhaustive Tied = %d", trial, got, want)
		}
		if want > 1 {
			sawTie = true
		}
	}
	if !sawTie {
		t.Error("no trial produced a tie; test exercises nothing")
	}
}

func TestHeuristicScratchReuseDeterministic(t *testing.T) {
	// A matcher reused across many calls (epoch-stamped visited slice,
	// recycled frontier heap) must return exactly what a fresh matcher
	// returns on every call.
	div, rc := buildDivisionClassifier(t, 9, 2)
	reused := &Heuristic{Div: div}
	rng := randx.New(12)
	var prev *field.Face
	for trial := 0; trial < 300; trial++ {
		p := geom.Pt(rng.Uniform(2, 98), rng.Uniform(2, 98))
		v := field.Signature(rc, p)
		if trial%5 == 0 {
			prev = nil // exercise cold starts amid warm ones
		}
		fresh := &Heuristic{Div: div}
		a := reused.Match(v, prev)
		b := fresh.Match(v, prev)
		if a.Face.ID != b.Face.ID || a.Similarity != b.Similarity ||
			a.Estimate != b.Estimate || a.Tied != b.Tied ||
			a.Visited != b.Visited || a.Rounds != b.Rounds {
			t.Fatalf("trial %d: reused %+v vs fresh %+v", trial, a, b)
		}
		prev = a.Face
	}
}

func TestHeuristicPerGoroutineOverSharedDivision(t *testing.T) {
	// The documented concurrency model: one Heuristic per goroutine, all
	// sharing one immutable Division. Run under -race; also check each
	// goroutine's results equal the serial reference.
	div, rc := buildDivisionClassifier(t, 9, 2)
	const goroutines, probes = 8, 60

	type probe struct {
		v    vector.Vector
		prev *field.Face
	}
	mkProbes := func(seed uint64) []probe {
		rng := randx.New(seed)
		ps := make([]probe, probes)
		for i := range ps {
			p := geom.Pt(rng.Uniform(2, 98), rng.Uniform(2, 98))
			ps[i].v = field.Signature(rc, p)
			if i%3 != 0 {
				ps[i].prev = div.FaceAt(p)
			}
		}
		return ps
	}
	serial := func(ps []probe) []Result {
		h := &Heuristic{Div: div}
		out := make([]Result, len(ps))
		for i, pr := range ps {
			out[i] = h.Match(pr.v, pr.prev)
		}
		return out
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ps := mkProbes(uint64(100 + g))
			want := serial(ps)
			h := &Heuristic{Div: div}
			for i, pr := range ps {
				got := h.Match(pr.v, pr.prev)
				if got.Face.ID != want[i].Face.ID || got.Estimate != want[i].Estimate {
					errs <- fmt.Errorf("goroutine %d probe %d: %+v vs %+v", g, i, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
