package match

import (
	"math"
	"sync"
	"testing"

	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/vector"
)

// fuzzDiv lazily builds one small shared division for the matcher fuzz
// target (divisions are immutable, so sharing across iterations is safe).
var fuzzDiv = sync.OnceValue(func() *field.Division {
	nodes := []geom.Point{
		geom.Pt(8, 8), geom.Pt(32, 8), geom.Pt(20, 20),
		geom.Pt(8, 32), geom.Pt(32, 32), geom.Pt(20, 36),
	}
	cls, err := field.NewRatioClassifier(nodes, 1.2)
	if err != nil {
		panic(err)
	}
	div, err := field.Divide(geom.NewRect(geom.Pt(0, 0), geom.Pt(40, 40)), cls, 2)
	if err != nil {
		panic(err)
	}
	return div
})

// decodeValue maps one fuzz byte onto a legal sampling-vector value
// (ternary, Star, or a Def. 10 fractional).
func decodeValue(b byte) vector.Value {
	switch b % 6 {
	case 0:
		return vector.Farther
	case 1:
		return vector.Flipped
	case 2:
		return vector.Nearer
	case 3:
		return vector.Star
	default:
		return vector.Value(float64(b)/127.5 - 1)
	}
}

// FuzzMatchBatchEquivalence is the batch matcher's differential fuzz
// target: arbitrary legal sampling vectors (ternary, Star and Def. 10
// fractional values), arbitrary warm starts, batch sizes and split
// points must produce results byte-identical to the serial matchers —
// same face IDs, bitwise-equal similarity and estimate, same search
// statistics — in both heuristic and exhaustive modes.
func FuzzMatchBatchEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5, 0, 1, 2}, uint16(0), uint8(4), false)
	f.Add([]byte{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3}, uint16(7), uint8(1), true)
	f.Add([]byte{4, 5, 4, 5, 4, 5, 4, 5, 4, 5, 4, 5, 4, 5, 4}, uint16(99), uint8(3), false)
	f.Fuzz(func(t *testing.T, data []byte, warm uint16, nlanes uint8, exhaustive bool) {
		div := fuzzDiv()
		dim := vector.NumPairs(6)
		lanes := 1 + int(nlanes)%8
		vs := make([]vector.Vector, lanes)
		prevs := make([]*field.Face, lanes)
		for l := 0; l < lanes; l++ {
			v := make(vector.Vector, dim)
			for k := 0; k < dim; k++ {
				idx := l*dim + k
				if idx < len(data) {
					v[k] = decodeValue(data[idx])
				} else {
					v[k] = decodeValue(byte(idx) * 31)
				}
			}
			vs[l] = v
			if l%2 == 0 {
				prevs[l] = &div.Faces[(int(warm)+l)%div.NumFaces()]
			}
		}

		want := make([]Result, lanes)
		if exhaustive {
			ex := &Exhaustive{Div: div}
			for l := range vs {
				want[l] = ex.Match(vs[l], prevs[l])
			}
		} else {
			serial := &Heuristic{Div: div, Incremental: true}
			for l := range vs {
				want[l] = serial.Match(vs[l], prevs[l])
			}
		}

		b := &Batch{Div: div, Incremental: true, Exhaustive: exhaustive}
		// One whole-batch pass plus a split at a data-derived point:
		// regrouping the same lanes must not change a single bit.
		split := 1 + int(warm)%lanes
		for _, bounds := range [][2]int{{0, lanes}, {0, split}, {split, lanes}} {
			lo, hi := bounds[0], bounds[1]
			if lo == hi {
				continue
			}
			got := b.MatchBatch(nil, vs[lo:hi], prevs[lo:hi])
			for l := range got {
				w, g := want[lo+l], got[l]
				if w.Face != g.Face ||
					math.Float64bits(w.Similarity) != math.Float64bits(g.Similarity) ||
					math.Float64bits(w.Estimate.X) != math.Float64bits(g.Estimate.X) ||
					math.Float64bits(w.Estimate.Y) != math.Float64bits(g.Estimate.Y) ||
					w.Tied != g.Tied || w.Visited != g.Visited ||
					w.Rounds != g.Rounds || w.FellBack != g.FellBack {
					t.Fatalf("lane %d (of [%d:%d], exhaustive=%v): batch %+v, serial %+v",
						lo+l, lo, hi, exhaustive, g, w)
				}
			}
		}
	})
}

// FuzzHeuristicMatch checks Algorithm 2's bounded best-first search
// against the exhaustive ground truth on arbitrary sampling vectors and
// warm starts: it never panics, always returns an in-division face, is
// never better than the global optimum, and — warm-started at the
// exhaustive winner — always attains it.
func FuzzHeuristicMatch(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5, 0, 1, 2}, uint16(0), false)
	f.Add([]byte{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3}, uint16(7), true)
	f.Add([]byte{2, 2, 2, 2, 2}, uint16(999), true)
	f.Fuzz(func(t *testing.T, data []byte, warm uint16, incremental bool) {
		div := fuzzDiv()
		dim := vector.NumPairs(6)
		v := make(vector.Vector, dim)
		for k := 0; k < dim; k++ {
			if k < len(data) {
				v[k] = decodeValue(data[k])
			} else {
				v[k] = vector.Flipped
			}
		}

		ex := (&Exhaustive{Div: div}).Match(v, nil)
		if ex.Face == nil || ex.Face.ID < 0 || ex.Face.ID >= div.NumFaces() {
			t.Fatalf("exhaustive returned face %+v", ex.Face)
		}

		start := &div.Faces[int(warm)%div.NumFaces()]
		h := &Heuristic{Div: div, Incremental: incremental}
		got := h.Match(v, start)
		if got.Face == nil || got.Face.ID < 0 || got.Face.ID >= div.NumFaces() {
			t.Fatalf("heuristic returned face %+v", got.Face)
		}
		if math.IsNaN(got.Similarity) || got.Similarity < 0 {
			t.Fatalf("heuristic similarity = %v", got.Similarity)
		}
		if !div.Field.Contains(got.Estimate) {
			t.Fatalf("estimate %v outside the field", got.Estimate)
		}
		// The local search can converge short of the global optimum but
		// never beyond it (small slack for incremental-update rounding).
		if got.Similarity > ex.Similarity*(1+1e-9)+1e-12 && !math.IsInf(ex.Similarity, 1) {
			t.Fatalf("heuristic similarity %v beats exhaustive %v", got.Similarity, ex.Similarity)
		}
		// Soundness anchor: warm-started at the exhaustive winner the
		// search cannot lose it — the start face is always in the frontier.
		anchored := h.Match(v, ex.Face)
		as, es := anchored.Similarity, ex.Similarity
		if math.IsInf(es, 1) {
			if !math.IsInf(as, 1) {
				t.Fatalf("anchored search lost the exact match: %v", as)
			}
		} else if as < es*(1-1e-9)-1e-12 {
			t.Fatalf("anchored similarity %v below exhaustive %v", as, es)
		}
	})
}
