package match

import (
	"fmt"
	"testing"

	"fttt/internal/faults"
	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
	"fttt/internal/vector"
)

// trustProbes builds a deterministic adversarial workload: vectors
// sampled through a fault scheduler running the full Byzantine behavior
// set (spoof, invert, collude on top of the benign crash/drain kinds),
// paired with per-lane trust weight vectors — nil, all-ones, floored
// low-trust, and uniformly random — the §15 differential domain.
func trustProbes(t *testing.T, div *field.Division, nodes []geom.Point, seed uint64, n int) ([]vector.Vector, []*field.Face, [][]float64) {
	t.Helper()
	script, err := faults.Parse(`
		spoof   at=0 nodes=1 bias=12
		invert  at=0 nodes=3,7
		collude at=0 frac=0.2 x=80 y=15
		crash   at=4 nodes=5
	`)
	if err != nil {
		t.Fatal(err)
	}
	sched := faults.New(*script, len(nodes), seed)
	sched.SetGeometry(nodes, rf.Default())
	s := &sampling.Sampler{Model: rf.Default(), Nodes: nodes, Range: 40, Epsilon: 1, Faults: sched}
	rng := randx.New(seed)
	wrng := randx.New(seed ^ 0x5eed)
	vs := make([]vector.Vector, n)
	prevs := make([]*field.Face, n)
	ws := make([][]float64, n)
	for i := range vs {
		sched.Seek(float64(i % 8))
		p := geom.Pt(rng.Uniform(2, 98), rng.Uniform(2, 98))
		g := s.Sample(p, 5, rng.SplitN("probe", i))
		if i%3 == 1 {
			vs[i] = g.ExtendedVector()
		} else {
			vs[i] = g.Vector()
		}
		if i%2 == 0 {
			prevs[i] = div.FaceAt(p)
		}
		switch i % 4 {
		case 0: // nil: the unweighted kernels
		case 1: // all-ones: must also equal the unweighted kernels bitwise
			w := make([]float64, len(vs[i]))
			for k := range w {
				w[k] = 1
			}
			ws[i] = w
		case 2: // floored low trust on a node's pairs, like a flagged suspect
			w := make([]float64, len(vs[i]))
			for k := range w {
				a, b := vector.PairAt(k, len(nodes))
				if a == i%len(nodes) || b == i%len(nodes) {
					w[k] = 0.05
				} else {
					w[k] = 1
				}
			}
			ws[i] = w
		default: // arbitrary trust vector
			w := make([]float64, len(vs[i]))
			for k := range w {
				w[k] = wrng.Uniform(0.05, 1)
			}
			ws[i] = w
		}
	}
	return vs, prevs, ws
}

// TestMatchWeightedBatchEquivalent is the trust-weighted differential:
// MatchBatchWeighted must be byte-identical to the serial MatchWeighted
// for every lane — heuristic and exhaustive, incremental on and off,
// any batch split — under adversarial vectors and any trust vector.
func TestMatchWeightedBatchEquivalent(t *testing.T) {
	div := buildDivision(t, 16, 2)
	if div.SoA() == nil {
		t.Fatal("division has no SoA store")
	}
	nodes := gridNodes(t, 16)
	vs, prevs, ws := trustProbes(t, div, nodes, 99, 48)
	for _, incremental := range []bool{false, true} {
		t.Run(fmt.Sprintf("heuristic/incremental=%v", incremental), func(t *testing.T) {
			serial := &Heuristic{Div: div, Incremental: incremental}
			want := make([]Result, len(vs))
			for i := range vs {
				want[i] = serial.MatchWeighted(vs[i], prevs[i], ws[i])
			}
			b := &Batch{Div: div, Incremental: incremental}
			for _, split := range []int{len(vs), 1, 7} {
				var got []Result
				for lo := 0; lo < len(vs); lo += split {
					hi := min(lo+split, len(vs))
					got = b.MatchBatchWeighted(got, vs[lo:hi], prevs[lo:hi], ws[lo:hi])
				}
				for i := range vs {
					requireIdenticalResult(t, fmt.Sprintf("split=%d lane=%d", split, i), want[i], got[i])
				}
			}
		})
	}
	t.Run("exhaustive", func(t *testing.T) {
		ex := &Exhaustive{Div: div}
		b := &Batch{Div: div, Exhaustive: true}
		got := b.MatchBatchWeighted(nil, vs, prevs, ws)
		for i := range vs {
			want := ex.MatchWeighted(vs[i], prevs[i], ws[i])
			requireIdenticalResult(t, fmt.Sprintf("lane=%d", i), want, got[i])
		}
	})
}

// TestMatchWeightedAllOnesIsUnweighted pins the degenerate case the byz
// honest-fleet contract leans on: an all-ones trust vector produces the
// unweighted matcher's results bit for bit (×1.0 is IEEE-exact), and a
// nil weight slice delegates outright.
func TestMatchWeightedAllOnesIsUnweighted(t *testing.T) {
	div := buildDivision(t, 16, 2)
	nodes := gridNodes(t, 16)
	vs, prevs, _ := trustProbes(t, div, nodes, 5, 24)
	ones := make([]float64, len(vs[0]))
	for k := range ones {
		ones[k] = 1
	}
	serial := &Heuristic{Div: div, Incremental: true}
	ex := &Exhaustive{Div: div}
	for i := range vs {
		want := serial.Match(vs[i], prevs[i])
		requireIdenticalResult(t, fmt.Sprintf("heuristic ones lane=%d", i),
			want, serial.MatchWeighted(vs[i], prevs[i], ones))
		requireIdenticalResult(t, fmt.Sprintf("heuristic nil lane=%d", i),
			want, serial.MatchWeighted(vs[i], prevs[i], nil))
		exWant := ex.Match(vs[i], prevs[i])
		requireIdenticalResult(t, fmt.Sprintf("exhaustive ones lane=%d", i),
			exWant, ex.MatchWeighted(vs[i], prevs[i], ones))
	}
}

// TestMatchWeightedFallbackEquivalent forces the weighted below-
// threshold exhaustive rescan on both paths.
func TestMatchWeightedFallbackEquivalent(t *testing.T) {
	div := buildDivision(t, 16, 2)
	nodes := gridNodes(t, 16)
	vs, prevs, ws := trustProbes(t, div, nodes, 13, 24)
	serial := &Heuristic{Div: div, Incremental: true, Fallback: true, FallbackBelow: 1e9}
	b := &Batch{Div: div, Incremental: true, Fallback: true, FallbackBelow: 1e9}
	got := b.MatchBatchWeighted(nil, vs, prevs, ws)
	fellBack := 0
	for i := range vs {
		want := serial.MatchWeighted(vs[i], prevs[i], ws[i])
		if want.FellBack {
			fellBack++
		}
		requireIdenticalResult(t, fmt.Sprintf("lane=%d", i), want, got[i])
	}
	if fellBack == 0 {
		t.Fatal("no lane fell back under the 1e9 threshold; weighted rescan untested")
	}
}

// TestMatchWeightedNoSoAFallsBackToSerial pins the AoS escape hatch for
// weighted lanes.
func TestMatchWeightedNoSoAFallsBackToSerial(t *testing.T) {
	div, err := field.Divide(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)), fracClassifier{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := vector.Vector{0.25}
	w := []float64{0.4}
	serial := &Heuristic{Div: div}
	want := serial.MatchWeighted(v, nil, w)
	b := &Batch{Div: div}
	got := b.MatchBatchWeighted(nil, []vector.Vector{v}, nil, [][]float64{w})
	requireIdenticalResult(t, "aos-weighted-fallback", want, got[0])
}
