package match

import (
	"math"
	"math/bits"

	"fttt/internal/field"
	"fttt/internal/vector"
)

// Batch scores many sampling vectors per pass against the division's
// quantized structure-of-arrays signature store (field.SigSoA) and is
// proven byte-identical to running the serial matchers lane by lane:
// every lane reproduces Heuristic.Match (or Exhaustive.Match with
// Exhaustive set) bit for bit — same face, same similarity, same
// estimate, same Visited/Rounds/Tied/FellBack statistics — for any
// batch size and any split of the same lanes across calls.
//
// Why it is faster than N serial matches: the hot operation is the
// Def. 8 squared modified distance, and for the ternary/Star queries of
// the Basic variant (the common case) the store's bitplanes collapse it
// from a C(n,2)-iteration float64 loop to a handful of AND/OR/popcount
// words — each component difference is 0, 1 or 4, so
//
//	d² = 4·|sign flips| + 1·|one-sided zeros|
//
// counted 64 pairs at a time, and the float64 sum the serial matcher
// computes is exactly this integer (all partial sums are small integers,
// which float64 represents exactly regardless of association order).
// Fractional (Def. 10) query lanes take a float path that replays the
// serial operation order verbatim — no speedup, same bits.
//
// Like Heuristic, a Batch owns reusable scratch and is single-goroutine;
// the Division (and its SoA store) is immutable and may be shared. Div
// must not be reassigned after the first MatchBatch call.
type Batch struct {
	Div *field.Division
	// Patience, Incremental, Fallback, FallbackBelow mirror Heuristic's
	// knobs and must be set identically to the serial matcher a caller
	// wants batch results to agree with.
	Patience      int
	Incremental   bool
	Fallback      bool
	FallbackBelow float64
	// Exhaustive selects per-lane Exhaustive.Match semantics (full face
	// scan with tie averaging) instead of the Algorithm 2 search.
	Exhaustive bool

	// soa caches Div.SoA(); nil after the first call means the division
	// has no quantized store and every lane defers to the serial AoS
	// matchers (identical by definition).
	soa      *field.SigSoA
	soaReady bool
	serial   *Heuristic

	// Per-lane heuristic search scratch, exactly Heuristic's shape.
	seen     []uint32
	epoch    uint32
	frontier faceHeap
	// Query bitplanes for the ternary integer kernel. qAny and qZero are
	// derived per lane (qAny = qPos|qNeg, qZero = qMask&^qAny) so the hot
	// loop does not recompute them per face.
	qPos, qNeg, qMask, qAny, qZero []uint64
	// ties is the exhaustive-mode tie scratch.
	ties []*field.Face
}

// MatchBatch scores vs[i] warm-started from prevs[i] (nil for a cold
// start; prevs itself may be nil for all-cold batches) and appends one
// Result per lane to dst, which is returned. Lanes are independent:
// result i depends only on (vs[i], prevs[i]), so any regrouping of the
// same lanes across calls produces identical bytes. Steady-state the
// call performs zero heap allocations when dst has capacity (heuristic
// mode; exhaustive tie averaging allocates like the serial matcher
// does).
func (b *Batch) MatchBatch(dst []Result, vs []vector.Vector, prevs []*field.Face) []Result {
	if !b.soaReady {
		b.soa = b.Div.SoA()
		b.soaReady = true
	}
	for i := range vs {
		var prev *field.Face
		if prevs != nil {
			prev = prevs[i]
		}
		dst = append(dst, b.matchOne(vs[i], prev))
	}
	return dst
}

// matchOne scores a single lane.
func (b *Batch) matchOne(v vector.Vector, prev *field.Face) Result {
	if b.soa == nil {
		// No quantized store (exotic classifier values): the serial
		// matchers are the batch semantics.
		if b.Exhaustive {
			return (&Exhaustive{Div: b.Div}).Match(v, prev)
		}
		if b.serial == nil {
			b.serial = &Heuristic{
				Div: b.Div, Patience: b.Patience, Incremental: b.Incremental,
				Fallback: b.Fallback, FallbackBelow: b.FallbackBelow,
			}
		}
		return b.serial.Match(v, prev)
	}
	ternary := b.prepTernary(v)
	if b.Exhaustive {
		return b.matchExhaustive(v, ternary)
	}
	return b.matchHeuristic(v, prev, ternary)
}

// prepTernary classifies the lane: when every component is ternary or
// Star and the store carries bitplanes, it fills the query bitplanes
// and selects the integer kernel. Fractional components (Def. 10) or a
// bitplane-less store select the float kernel.
func (b *Batch) prepTernary(v vector.Vector) bool {
	soa := b.soa
	if soa.PosBits == nil {
		return false
	}
	words := soa.Words
	if cap(b.qPos) < words {
		b.qPos = make([]uint64, words)
		b.qNeg = make([]uint64, words)
		b.qMask = make([]uint64, words)
		b.qAny = make([]uint64, words)
		b.qZero = make([]uint64, words)
	}
	qp := b.qPos[:words]
	qn := b.qNeg[:words]
	qm := b.qMask[:words]
	for w := 0; w < words; w++ {
		qp[w], qn[w], qm[w] = 0, 0, 0
	}
	for k, x := range v {
		switch {
		case x.IsStar():
		case x == vector.Nearer:
			qm[k/64] |= 1 << (k % 64)
			qp[k/64] |= 1 << (k % 64)
		case x == vector.Farther:
			qm[k/64] |= 1 << (k % 64)
			qn[k/64] |= 1 << (k % 64)
		case x == vector.Flipped:
			qm[k/64] |= 1 << (k % 64)
		default:
			return false
		}
	}
	qa := b.qAny[:words]
	qz := b.qZero[:words]
	for w := 0; w < words; w++ {
		a := qp[w] | qn[w]
		qa[w] = a
		qz[w] = qm[w] &^ a
	}
	return true
}

// intD2 is the bitplane kernel: the squared modified distance of the
// prepared ternary query against face f. Components where either side
// is Star (or outside the query mask) contribute 0; a +1/−1 sign flip
// contributes 4; a one-sided zero contributes 1. The result is an
// integer, and equals the serial float64 accumulation bit for bit.
func (b *Batch) intD2(f int) float64 {
	soa := b.soa
	base := f * soa.Words
	pos := soa.PosBits[base : base+soa.Words]
	neg := soa.NegBits[base : base+soa.Words]
	qp := b.qPos[:soa.Words]
	qn := b.qNeg[:soa.Words]
	qa := b.qAny[:soa.Words]
	qz := b.qZero[:soa.Words]
	var c4, c1 int
	for w := range pos {
		sp, sn := pos[w], neg[w]
		c4 += bits.OnesCount64((qp[w] & sn) | (qn[w] & sp))
		s := sp | sn
		c1 += bits.OnesCount64((qz[w] & s) | (qa[w] &^ s))
	}
	return float64(4*c4 + c1)
}

// sigVal decodes component k of face f's stored signature — bitwise
// equal to the AoS Face.Signature value (the codec is lossless).
func (b *Batch) sigVal(f, k int) vector.Value {
	return vector.Dequantize(b.soa.Rows[f*b.soa.Dim+k], b.soa.Denom)
}

// floatD2 is the float kernel: the serial dist2 loop (ascending pair
// order, Star components skipped, one float64 accumulator) reading the
// quantized store. Used for fractional-query lanes, where bitwise
// identity requires replaying the serial operation order exactly.
func (b *Batch) floatD2(v vector.Vector, f int) float64 {
	var sum float64
	for k := range v {
		sv := b.sigVal(f, k)
		if v[k].IsStar() || sv.IsStar() {
			continue
		}
		d := float64(v[k] - sv)
		sum += d * d
	}
	return sum
}

// laneD2 dispatches the full-distance computation for the lane's kernel.
func (b *Batch) laneD2(v vector.Vector, f int, ternary bool) float64 {
	if ternary {
		return b.intD2(f)
	}
	return b.floatD2(v, f)
}

// matchHeuristic replays Heuristic.Match over the SoA store: identical
// control flow (best-first frontier, patience stall counter, epoch-
// stamped seen marks, neighbor expansion order), with the distance
// computations swapped for the lane's kernel.
//
// Integer lanes recompute each neighbor's d² with the bitplane kernel
// even when Incremental is set: the serial incremental patch is exact
// integer arithmetic there (every term and partial sum is a small
// integer), so patched and recomputed values agree bit for bit. Float
// lanes replay the serial incremental patch — including its clamp of
// rounding noise below zero — term by term.
func (b *Batch) matchHeuristic(v vector.Vector, prev *field.Face, ternary bool) Result {
	div := b.Div
	start := prev
	if start == nil {
		start = div.FaceAt(div.Field.Center())
	}
	patience := b.Patience
	if patience <= 0 {
		patience = 24
	}

	if len(b.seen) != len(div.Faces) {
		b.seen = make([]uint32, len(div.Faces))
		b.epoch = 0
	}
	b.epoch++
	if b.epoch == 0 { // epoch wrapped: clear the stale marks once
		for i := range b.seen {
			b.seen[i] = 0
		}
		b.epoch = 1
	}
	epoch := b.epoch
	b.seen[start.ID] = epoch

	var best faceEntry
	var visited, rounds int
	if ternary {
		best, visited, rounds = b.searchTernary(start, patience, epoch)
	} else {
		best, visited, rounds = b.searchFloat(v, start, patience, epoch)
	}
	curSim := math.Inf(1)
	if best.d2 > 0 {
		curSim = 1 / math.Sqrt(best.d2)
	}
	if b.Fallback && curSim < b.FallbackBelow {
		r := b.matchExhaustive(v, ternary)
		r.Visited += visited
		r.Rounds = rounds
		r.FellBack = true
		return r
	}
	return finish(&div.Faces[best.id], nil, curSim, visited, rounds)
}

// searchTernary is the Algorithm 2 frontier loop specialized for the
// bitplane kernel: slice headers and query planes are hoisted out of the
// loop and the popcount distance is written inline at both evaluation
// sites (the inliner refuses function bodies with loops on this hot
// path). Control flow is exactly searchFloat's — same frontier, same
// patience, same seen marks — so results stay bitwise serial-identical.
func (b *Batch) searchTernary(start *field.Face, patience int, epoch uint32) (best faceEntry, visited, rounds int) {
	div := b.Div
	soa := b.soa
	words := soa.Words
	posAll, negAll := soa.PosBits, soa.NegBits
	qp := b.qPos[:words]
	qn := b.qNeg[:words]
	qa := b.qAny[:words]
	qz := b.qZero[:words]
	seen := b.seen

	base := start.ID * words
	pos := posAll[base : base+words]
	neg := negAll[base : base+words]
	var c4, c1 int
	for w := range pos {
		sp, sn := pos[w], neg[w]
		c4 += bits.OnesCount64((qp[w] & sn) | (qn[w] & sp))
		s := sp | sn
		c1 += bits.OnesCount64((qz[w] & s) | (qa[w] &^ s))
	}

	h := b.frontier[:0]
	h = h.push(faceEntry{d2: float64(4*c4 + c1), id: start.ID})
	best = h[0]
	visited = 1
	stall := 0
	for len(h) > 0 && stall < patience {
		var e faceEntry
		h, e = h.pop()
		rounds++
		if e.d2 < best.d2 {
			best = e
			stall = 0
		} else {
			stall++
		}
		if best.d2 == 0 {
			break // exact match cannot be beaten
		}
		for _, nb := range div.Faces[e.id].Neighbors {
			if seen[nb] == epoch {
				continue
			}
			seen[nb] = epoch
			visited++
			base := nb * words
			pos := posAll[base : base+words]
			neg := negAll[base : base+words]
			var c4, c1 int
			for w := range pos {
				sp, sn := pos[w], neg[w]
				c4 += bits.OnesCount64((qp[w] & sn) | (qn[w] & sp))
				s := sp | sn
				c1 += bits.OnesCount64((qz[w] & s) | (qa[w] &^ s))
			}
			h = h.push(faceEntry{d2: float64(4*c4 + c1), id: nb})
		}
	}
	b.frontier = h[:0] // retain the grown backing array for the next lane
	return best, visited, rounds
}

// searchFloat is the frontier loop for fractional (Def. 10) query lanes:
// it replays the serial operation order verbatim — full-store distance
// for cold evaluations, the incremental per-link patch (with its clamp
// of rounding noise below zero) when enabled — so float lanes agree with
// the serial matcher bit for bit.
func (b *Batch) searchFloat(v vector.Vector, start *field.Face, patience int, epoch uint32) (best faceEntry, visited, rounds int) {
	div := b.Div
	h := b.frontier[:0]
	h = h.push(faceEntry{d2: b.floatD2(v, start.ID), id: start.ID})
	best = h[0]
	visited = 1
	stall := 0
	for len(h) > 0 && stall < patience {
		var e faceEntry
		h, e = h.pop()
		rounds++
		if e.d2 < best.d2 {
			best = e
			stall = 0
		} else {
			stall++
		}
		if best.d2 == 0 {
			break // exact match cannot be beaten
		}
		face := &div.Faces[e.id]
		for ni, nb := range face.Neighbors {
			if b.seen[nb] == epoch {
				continue
			}
			b.seen[nb] = epoch
			visited++
			var d2 float64
			if b.Incremental && face.NeighborDiffs != nil {
				// The serial per-link patch, replayed with store reads.
				d2 = e.d2
				for _, k := range face.NeighborDiffs[ni] {
					d2 += term(v[k], b.sigVal(nb, k)) - term(v[k], b.sigVal(e.id, k))
				}
				if d2 < 0 { // guard against rounding just below zero
					d2 = 0
				}
			} else {
				d2 = b.floatD2(v, nb)
			}
			h = h.push(faceEntry{d2: d2, id: nb})
		}
	}
	b.frontier = h[:0] // retain the grown backing array for the next lane
	return best, visited, rounds
}

// matchExhaustive replays Exhaustive.Match over the store: for each
// face the Def. 7 similarity is 1/√d², computed from the lane kernel's
// d² — which equals the serial ordered float sum bit for bit — so the
// winner, the tie set and the averaged estimate are all identical.
func (b *Batch) matchExhaustive(v vector.Vector, ternary bool) Result {
	div := b.Div
	best := math.Inf(-1)
	var winner *field.Face
	ties := b.ties[:0]
	for i := range div.Faces {
		d := math.Sqrt(b.laneD2(v, i, ternary))
		s := math.Inf(1)
		if d != 0 {
			s = 1 / d
		}
		switch {
		case s > best:
			best = s
			winner = &div.Faces[i]
			ties = ties[:0]
		case s == best:
			ties = append(ties, &div.Faces[i])
		}
	}
	r := finish(winner, ties, best, len(div.Faces), 0)
	b.ties = ties[:0] // retain the backing array across lanes
	return r
}
