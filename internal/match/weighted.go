package match

import (
	"math"

	"fttt/internal/field"
	"fttt/internal/vector"
)

// Trust-weighted matching (DESIGN.md §15): the Byzantine defense layer
// reweights the Def. 8 squared modified distance by a per-pair trust
// weight before the Algorithm 2 search,
//
//	d²(v, sig; w) = Σ_k w[k]·(v[k] − sig[k])²   (stars contribute 0),
//
// so pairs involving distrusted nodes count less toward the face
// decision. A nil weight slice selects the unweighted matcher verbatim
// — the byz.Defense fast path under an honest fleet — and because an
// all-ones weight vector multiplies every term by exactly 1.0 (IEEE
// multiplication by 1 is exact), the weighted path degenerates to the
// unweighted sum bit for bit in that case too.
//
// Weighted distances lose the small-integer structure the bitplane
// kernel exploits, so weighted batch lanes always take a float path
// that replays the serial operation order verbatim (ascending pair
// order, Star skip, the incremental per-link patch with its clamp of
// rounding noise below zero) reading the lossless quantized store —
// which is why MatchBatchWeighted stays byte-identical to the serial
// MatchWeighted under ANY trust vector, the §15 differential contract.

// dist2w is the trust-weighted squared modified distance. The iteration
// order and Star handling are exactly dist2's; each component term is
// scaled by w[k] before accumulation.
func dist2w(v, sig vector.Vector, w []float64) float64 {
	var sum float64
	for k := range v {
		if v[k].IsStar() || sig[k].IsStar() {
			continue
		}
		d := float64(v[k] - sig[k])
		sum += w[k] * (d * d)
	}
	return sum
}

// termw is one component's contribution to dist2w.
func termw(a, b vector.Value, wk float64) float64 {
	if a.IsStar() || b.IsStar() {
		return 0
	}
	d := float64(a - b)
	return wk * (d * d)
}

// simOf converts a squared distance to the Def. 7 similarity (+Inf on
// an exact match). Both the serial and batch weighted paths funnel
// through this one expression so the bits agree.
func simOf(d2 float64) float64 {
	if d2 > 0 {
		return 1 / math.Sqrt(d2)
	}
	return math.Inf(1)
}

// MatchWeighted is Match with a per-pair trust weight vector. A nil w
// delegates to the unweighted Match.
func (m *Exhaustive) MatchWeighted(v vector.Vector, prev *field.Face, w []float64) Result {
	if w == nil {
		return m.Match(v, prev)
	}
	best := math.Inf(-1)
	var winner *field.Face
	var ties []*field.Face
	for i := range m.Div.Faces {
		f := &m.Div.Faces[i]
		s := simOf(dist2w(v, f.Signature, w))
		switch {
		case s > best:
			best = s
			winner = f
			ties = ties[:0]
		case s == best:
			ties = append(ties, f)
		}
	}
	return finish(winner, ties, best, len(m.Div.Faces), 0)
}

// MatchWeighted is Match with a per-pair trust weight vector: the same
// bounded best-first search over the same frontier scratch, with every
// distance evaluation — cold and incremental — weighted by w. A nil w
// delegates to the unweighted Match.
func (m *Heuristic) MatchWeighted(v vector.Vector, prev *field.Face, w []float64) Result {
	if w == nil {
		return m.Match(v, prev)
	}
	start := prev
	if start == nil {
		start = m.Div.FaceAt(m.Div.Field.Center())
	}
	patience := m.Patience
	if patience <= 0 {
		patience = 24
	}

	if len(m.seen) != len(m.Div.Faces) {
		m.seen = make([]uint32, len(m.Div.Faces))
		m.epoch = 0
	}
	m.epoch++
	if m.epoch == 0 { // epoch wrapped: clear the stale marks once
		for i := range m.seen {
			m.seen[i] = 0
		}
		m.epoch = 1
	}
	epoch := m.epoch
	m.seen[start.ID] = epoch

	h := m.frontier[:0]
	h = h.push(faceEntry{d2: dist2w(v, start.Signature, w), id: start.ID})
	best := h[0]
	visited := 1
	rounds := 0
	stall := 0
	for len(h) > 0 && stall < patience {
		var e faceEntry
		h, e = h.pop()
		rounds++
		if e.d2 < best.d2 {
			best = e
			stall = 0
		} else {
			stall++
		}
		if best.d2 == 0 {
			break // exact match cannot be beaten
		}
		face := &m.Div.Faces[e.id]
		for ni, nb := range face.Neighbors {
			if m.seen[nb] == epoch {
				continue
			}
			m.seen[nb] = epoch
			visited++
			var d2 float64
			if m.Incremental && face.NeighborDiffs != nil {
				// Patch only the components that differ across the link.
				d2 = e.d2
				nbSig := m.Div.Faces[nb].Signature
				for _, k := range face.NeighborDiffs[ni] {
					d2 += termw(v[k], nbSig[k], w[k]) - termw(v[k], face.Signature[k], w[k])
				}
				if d2 < 0 { // guard against rounding just below zero
					d2 = 0
				}
			} else {
				d2 = dist2w(v, m.Div.Faces[nb].Signature, w)
			}
			h = h.push(faceEntry{d2: d2, id: nb})
		}
	}
	m.frontier = h[:0] // retain the grown backing array for the next call
	curSim := simOf(best.d2)
	if m.Fallback && curSim < m.FallbackBelow {
		ex := Exhaustive{Div: m.Div}
		r := ex.MatchWeighted(v, nil, w)
		r.Visited += visited
		r.Rounds = rounds
		r.FellBack = true
		return r
	}
	// The search returns a single face; ties among distant faces are not
	// visible to the local search, matching Algorithm 2.
	return finish(&m.Div.Faces[best.id], nil, curSim, visited, rounds)
}

// MatchBatchWeighted is MatchBatch with one trust weight vector per
// lane (ws itself, or any lane, may be nil — those lanes run the
// unweighted kernels). Weighted lanes score on a float path that
// replays the serial MatchWeighted operation order over the lossless
// quantized store, so every lane is byte-identical to the serial
// weighted matcher for any trust vector.
func (b *Batch) MatchBatchWeighted(dst []Result, vs []vector.Vector, prevs []*field.Face, ws [][]float64) []Result {
	if !b.soaReady {
		b.soa = b.Div.SoA()
		b.soaReady = true
	}
	for i := range vs {
		var prev *field.Face
		if prevs != nil {
			prev = prevs[i]
		}
		var w []float64
		if ws != nil {
			w = ws[i]
		}
		if w == nil {
			dst = append(dst, b.matchOne(vs[i], prev))
			continue
		}
		dst = append(dst, b.matchOneWeighted(vs[i], prev, w))
	}
	return dst
}

// matchOneWeighted scores a single weighted lane.
func (b *Batch) matchOneWeighted(v vector.Vector, prev *field.Face, w []float64) Result {
	if b.soa == nil {
		// No quantized store: the serial weighted matchers are the batch
		// semantics, exactly as matchOne defers for unweighted lanes.
		if b.Exhaustive {
			return (&Exhaustive{Div: b.Div}).MatchWeighted(v, prev, w)
		}
		if b.serial == nil {
			b.serial = &Heuristic{
				Div: b.Div, Patience: b.Patience, Incremental: b.Incremental,
				Fallback: b.Fallback, FallbackBelow: b.FallbackBelow,
			}
		}
		return b.serial.MatchWeighted(v, prev, w)
	}
	if b.Exhaustive {
		return b.matchExhaustiveWeighted(v, w)
	}
	return b.matchHeuristicWeighted(v, prev, w)
}

// floatD2W is dist2w replayed over the quantized store: same ascending
// order, same Star skips, reading bitwise-equal dequantized signature
// values.
func (b *Batch) floatD2W(v vector.Vector, f int, w []float64) float64 {
	var sum float64
	for k := range v {
		sv := b.sigVal(f, k)
		if v[k].IsStar() || sv.IsStar() {
			continue
		}
		d := float64(v[k] - sv)
		sum += w[k] * (d * d)
	}
	return sum
}

// matchHeuristicWeighted replays Heuristic.MatchWeighted over the SoA
// store: identical control flow, weighted float distances throughout.
func (b *Batch) matchHeuristicWeighted(v vector.Vector, prev *field.Face, w []float64) Result {
	div := b.Div
	start := prev
	if start == nil {
		start = div.FaceAt(div.Field.Center())
	}
	patience := b.Patience
	if patience <= 0 {
		patience = 24
	}

	if len(b.seen) != len(div.Faces) {
		b.seen = make([]uint32, len(div.Faces))
		b.epoch = 0
	}
	b.epoch++
	if b.epoch == 0 { // epoch wrapped: clear the stale marks once
		for i := range b.seen {
			b.seen[i] = 0
		}
		b.epoch = 1
	}
	epoch := b.epoch
	b.seen[start.ID] = epoch

	h := b.frontier[:0]
	h = h.push(faceEntry{d2: b.floatD2W(v, start.ID, w), id: start.ID})
	best := h[0]
	visited := 1
	rounds := 0
	stall := 0
	for len(h) > 0 && stall < patience {
		var e faceEntry
		h, e = h.pop()
		rounds++
		if e.d2 < best.d2 {
			best = e
			stall = 0
		} else {
			stall++
		}
		if best.d2 == 0 {
			break // exact match cannot be beaten
		}
		face := &div.Faces[e.id]
		for ni, nb := range face.Neighbors {
			if b.seen[nb] == epoch {
				continue
			}
			b.seen[nb] = epoch
			visited++
			var d2 float64
			if b.Incremental && face.NeighborDiffs != nil {
				// The serial weighted per-link patch, with store reads.
				d2 = e.d2
				for _, k := range face.NeighborDiffs[ni] {
					d2 += termw(v[k], b.sigVal(nb, k), w[k]) - termw(v[k], b.sigVal(e.id, k), w[k])
				}
				if d2 < 0 { // guard against rounding just below zero
					d2 = 0
				}
			} else {
				d2 = b.floatD2W(v, nb, w)
			}
			h = h.push(faceEntry{d2: d2, id: nb})
		}
	}
	b.frontier = h[:0] // retain the grown backing array for the next lane
	curSim := simOf(best.d2)
	if b.Fallback && curSim < b.FallbackBelow {
		r := b.matchExhaustiveWeighted(v, w)
		r.Visited += visited
		r.Rounds = rounds
		r.FellBack = true
		return r
	}
	return finish(&div.Faces[best.id], nil, curSim, visited, rounds)
}

// matchExhaustiveWeighted replays Exhaustive.MatchWeighted over the
// store: per-face weighted d² through the same simOf expression, so the
// winner, tie set and averaged estimate are identical.
func (b *Batch) matchExhaustiveWeighted(v vector.Vector, w []float64) Result {
	div := b.Div
	best := math.Inf(-1)
	var winner *field.Face
	ties := b.ties[:0]
	for i := range div.Faces {
		s := simOf(b.floatD2W(v, i, w))
		switch {
		case s > best:
			best = s
			winner = &div.Faces[i]
			ties = ties[:0]
		case s == best:
			ties = append(ties, &div.Faces[i])
		}
	}
	r := finish(winner, ties, best, len(div.Faces), 0)
	b.ties = ties[:0] // retain the backing array across lanes
	return r
}
