package match

import (
	"fmt"
	"math"
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
	"fttt/internal/vector"
)

// requireIdenticalResult asserts two Results agree bit for bit — the
// MatchBatch contract. Similarity and the estimate coordinates are
// compared through Float64bits so a "same value, different rounding
// path" drift cannot hide behind ==.
func requireIdenticalResult(t *testing.T, label string, want, got Result) {
	t.Helper()
	if want.Face != got.Face {
		t.Fatalf("%s: face %v, want %v", label, faceID(got.Face), faceID(want.Face))
	}
	if math.Float64bits(want.Similarity) != math.Float64bits(got.Similarity) {
		t.Fatalf("%s: similarity %v (bits %x), want %v (bits %x)", label,
			got.Similarity, math.Float64bits(got.Similarity),
			want.Similarity, math.Float64bits(want.Similarity))
	}
	if math.Float64bits(want.Estimate.X) != math.Float64bits(got.Estimate.X) ||
		math.Float64bits(want.Estimate.Y) != math.Float64bits(got.Estimate.Y) {
		t.Fatalf("%s: estimate %v, want %v (bitwise)", label, got.Estimate, want.Estimate)
	}
	if want.Tied != got.Tied || want.Visited != got.Visited ||
		want.Rounds != got.Rounds || want.FellBack != got.FellBack {
		t.Fatalf("%s: stats (tied %d visited %d rounds %d fellback %v), want (%d %d %d %v)", label,
			got.Tied, got.Visited, got.Rounds, got.FellBack,
			want.Tied, want.Visited, want.Rounds, want.FellBack)
	}
}

func faceID(f *field.Face) int {
	if f == nil {
		return -1
	}
	return f.ID
}

// batchProbes builds a deterministic mixed workload over the division:
// sampled Basic (ternary/Star) and Extended (Def. 10 fractional)
// vectors plus hand-made corner cases, with a mix of cold and warm
// starts.
func batchProbes(t *testing.T, div *field.Division, nodes []geom.Point, seed uint64, n int) ([]vector.Vector, []*field.Face) {
	t.Helper()
	s := &sampling.Sampler{Model: rf.Default(), Nodes: nodes, Range: 40, Epsilon: 1, ReportLoss: 0.2}
	rng := randx.New(seed)
	vs := make([]vector.Vector, n)
	prevs := make([]*field.Face, n)
	for i := range vs {
		p := geom.Pt(rng.Uniform(2, 98), rng.Uniform(2, 98))
		g := s.Sample(p, 5, rng.SplitN("probe", i))
		switch i % 3 {
		case 0:
			vs[i] = g.Vector()
		case 1:
			vs[i] = g.ExtendedVector()
		default:
			// An exact face signature, sometimes star-punched: exercises
			// exact matches (d² == 0) and the early-exit path.
			vs[i] = div.Faces[i%div.NumFaces()].Signature.Clone()
			if i%4 == 3 {
				vs[i][i%len(vs[i])] = vector.Star
			}
		}
		if i%2 == 0 {
			prevs[i] = div.FaceAt(p)
		}
	}
	return vs, prevs
}

// TestMatchBatchEquivalentHeuristic is the headline differential: batch
// results must be byte-identical to the serial Heuristic across warm
// starts, incremental on/off, and every way of splitting the same lanes
// into batches.
func TestMatchBatchEquivalentHeuristic(t *testing.T) {
	div := buildDivision(t, 16, 2)
	if div.SoA() == nil {
		t.Fatal("division has no SoA store")
	}
	nodes := gridNodes(t, 16)
	vs, prevs := batchProbes(t, div, nodes, 42, 48)
	for _, incremental := range []bool{false, true} {
		t.Run(fmt.Sprintf("incremental=%v", incremental), func(t *testing.T) {
			serial := &Heuristic{Div: div, Incremental: incremental}
			want := make([]Result, len(vs))
			for i := range vs {
				want[i] = serial.Match(vs[i], prevs[i])
			}
			b := &Batch{Div: div, Incremental: incremental}
			for _, split := range []int{len(vs), 1, 7} {
				var got []Result
				for lo := 0; lo < len(vs); lo += split {
					hi := min(lo+split, len(vs))
					got = b.MatchBatch(got, vs[lo:hi], prevs[lo:hi])
				}
				for i := range vs {
					requireIdenticalResult(t, fmt.Sprintf("split=%d lane=%d", split, i), want[i], got[i])
				}
			}
		})
	}
}

// TestMatchBatchEquivalentExhaustive covers the Exhaustive lane
// semantics, including maximum-similarity ties and their averaged
// estimates.
func TestMatchBatchEquivalentExhaustive(t *testing.T) {
	div := buildDivision(t, 16, 2)
	nodes := gridNodes(t, 16)
	vs, prevs := batchProbes(t, div, nodes, 7, 48)
	ex := &Exhaustive{Div: div}
	b := &Batch{Div: div, Exhaustive: true}
	got := b.MatchBatch(nil, vs, prevs)
	sawTie := false
	for i := range vs {
		want := ex.Match(vs[i], prevs[i])
		requireIdenticalResult(t, fmt.Sprintf("lane=%d", i), want, got[i])
		if want.Tied > 1 {
			sawTie = true
		}
	}
	if !sawTie {
		t.Error("workload produced no similarity tie; tie averaging untested")
	}
}

// TestMatchBatchEquivalentFallback forces the below-threshold
// exhaustive rescan and checks the combined statistics match.
func TestMatchBatchEquivalentFallback(t *testing.T) {
	div := buildDivision(t, 16, 2)
	nodes := gridNodes(t, 16)
	vs, prevs := batchProbes(t, div, nodes, 11, 24)
	serial := &Heuristic{Div: div, Incremental: true, Fallback: true, FallbackBelow: 1e9}
	b := &Batch{Div: div, Incremental: true, Fallback: true, FallbackBelow: 1e9}
	got := b.MatchBatch(nil, vs, prevs)
	fellBack := 0
	for i := range vs {
		want := serial.Match(vs[i], prevs[i])
		if want.FellBack {
			fellBack++ // exact-signature lanes (+Inf similarity) never fall back
		}
		requireIdenticalResult(t, fmt.Sprintf("lane=%d", i), want, got[i])
	}
	if fellBack == 0 {
		t.Fatal("no lane fell back under the 1e9 threshold; rescan path untested")
	}
}

// TestMatchBatchNoSoAFallsBackToSerial pins the AoS escape hatch: a
// division without a quantized store still batch-matches, via the
// serial matchers.
func TestMatchBatchNoSoAFallsBackToSerial(t *testing.T) {
	div, err := field.Divide(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)), fracClassifier{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if div.SoA() != nil {
		t.Fatal("expected an unquantizable division")
	}
	v := vector.Vector{0.25}
	serial := &Heuristic{Div: div}
	want := serial.Match(v, nil)
	b := &Batch{Div: div}
	got := b.MatchBatch(nil, []vector.Vector{v}, nil)
	requireIdenticalResult(t, "aos-fallback", want, got[0])
}

// fracClassifier emits a value no int8 denominator represents, so the
// division carries no SoA store.
type fracClassifier struct{}

func (fracClassifier) NumNodes() int { return 2 }
func (fracClassifier) Classify(p geom.Point, i, j int) vector.Value {
	return vector.Value(0.123456789)
}

// TestMatchBatchStarSignatureFloatPath covers divisions whose signatures
// contain Star: the store carries no bitplanes (a stored Star would
// alias 0 in the integer kernel), so every lane — even pure-ternary
// queries — must take the float kernel and still agree with the serial
// matchers bit for bit.
func TestMatchBatchStarSignatureFloatPath(t *testing.T) {
	div, err := field.Divide(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)), starSigClassifier{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s := div.SoA(); s == nil || s.PosBits != nil {
		t.Fatalf("want a plane-less SoA store, got %+v", s)
	}
	vs := []vector.Vector{
		{vector.Nearer, vector.Farther, vector.Flipped},
		{vector.Star, vector.Nearer, vector.Nearer},
		{vector.Farther, vector.Star, vector.Flipped},
	}
	prevs := []*field.Face{nil, &div.Faces[0], nil}
	for _, exhaustive := range []bool{false, true} {
		b := &Batch{Div: div, Incremental: true, Exhaustive: exhaustive}
		got := b.MatchBatch(nil, vs, prevs)
		for i := range vs {
			var want Result
			if exhaustive {
				want = (&Exhaustive{Div: div}).Match(vs[i], prevs[i])
			} else {
				want = (&Heuristic{Div: div, Incremental: true}).Match(vs[i], prevs[i])
			}
			requireIdenticalResult(t, fmt.Sprintf("exhaustive=%v lane=%d", exhaustive, i), want, got[i])
		}
	}
}

// starSigClassifier emits one Star pair amid position-dependent ternary
// values (3 nodes → 3 pairs).
type starSigClassifier struct{}

func (starSigClassifier) NumNodes() int { return 3 }
func (starSigClassifier) Classify(p geom.Point, i, j int) vector.Value {
	if i == 0 && j == 1 {
		return vector.Star
	}
	if p.X < 5 {
		return vector.Nearer
	}
	return vector.Farther
}

// gridNodes returns the node positions buildDivision used.
func gridNodes(t *testing.T, n int) []geom.Point {
	t.Helper()
	return deploy.Grid(fieldRect, n).Positions()
}

// BenchmarkMatchBatch64 prices one MatchBatch pass over 64 ternary
// lanes on the paper-sized fixture; compare per-vector against
// BenchmarkMatchSerial64 (the same 64 lanes, serial Heuristic) for the
// layout speedup the perfbench match/heuristic-batch64 scenario gates.
func BenchmarkMatchBatch64(b *testing.B) {
	vs, prevs, div := benchLanes64(b)
	m := &Batch{Div: div, Incremental: true}
	out := m.MatchBatch(nil, vs, prevs) // warm scratch + result capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = m.MatchBatch(out[:0], vs, prevs)
	}
	sink = out
}

// BenchmarkMatchSerial64 runs the same 64 lanes through the default
// serial Heuristic (the match/heuristic perfbench configuration);
// BenchmarkMatchSerialIncr64 through the incremental variant. The
// batch-vs-serial per-vector ratio these report is the >4× layout claim
// in EXPERIMENTS.md.
func BenchmarkMatchSerial64(b *testing.B) {
	benchSerial64(b, false)
}

func BenchmarkMatchSerialIncr64(b *testing.B) {
	benchSerial64(b, true)
}

func benchSerial64(b *testing.B, incremental bool) {
	vs, prevs, div := benchLanes64(b)
	m := &Heuristic{Div: div, Incremental: incremental}
	var last Result
	for i := range vs {
		last = m.Match(vs[i], prevs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range vs {
			last = m.Match(vs[j], prevs[j])
		}
	}
	b.StopTimer()
	sink = last
}

var sink any

func benchLanes64(b *testing.B) ([]vector.Vector, []*field.Face, *field.Division) {
	b.Helper()
	d := deploy.Random(fieldRect, 20, randx.New(6))
	rc, err := field.NewRatioClassifier(d.Positions(), rf.Default().UncertaintyC(1))
	if err != nil {
		b.Fatal(err)
	}
	div, err := field.Divide(fieldRect, rc, 2)
	if err != nil {
		b.Fatal(err)
	}
	s := &sampling.Sampler{Model: rf.Default(), Nodes: d.Positions(), Range: 40, Epsilon: 1}
	rng := randx.New(9)
	vs := make([]vector.Vector, 64)
	prevs := make([]*field.Face, 64)
	for i := range vs {
		p := geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
		vs[i] = s.Sample(p, 5, rng.SplitN("probe", i)).Vector()
		if i%3 != 0 {
			prevs[i] = div.FaceAt(p)
		}
	}
	return vs, prevs, div
}

// TestMatchBatchResultSliceReuse pins the append contract: reusing dst
// across calls must not corrupt earlier results.
func TestMatchBatchResultSliceReuse(t *testing.T) {
	div := buildDivision(t, 9, 2)
	nodes := gridNodes(t, 9)
	vs, prevs := batchProbes(t, div, nodes, 3, 8)
	b := &Batch{Div: div, Incremental: true}
	first := b.MatchBatch(nil, vs, prevs)
	snapshot := make([]Result, len(first))
	copy(snapshot, first)
	_ = b.MatchBatch(first[:0], vs, prevs)
	again := b.MatchBatch(nil, vs, prevs)
	for i := range again {
		requireIdenticalResult(t, fmt.Sprintf("lane=%d", i), snapshot[i], again[i])
	}
}
