// Package match locates the face whose signature vector best matches a
// sampling vector — the maximum-likelihood matching of Sec. 4.4.
//
// Two matchers are provided. Exhaustive scans every face, the O(n⁴)
// ergodic process the paper starts from. Heuristic implements
// Algorithm 2: hill-climb along neighbor-face links from a warm-start
// face (the previous localization during continuous tracking), which the
// paper shows drops the time complexity to O(n²). Both report search
// statistics so the benches can reproduce the complexity comparison.
//
// Concurrency: a Division is immutable after construction and may be
// shared freely. Exhaustive and WeightedTopM are stateless and safe for
// concurrent use; Heuristic owns per-matcher search scratch and is
// single-goroutine — give each goroutine (each Tracker) its own instance.
package match

import (
	"math"

	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/vector"
)

// Result is the outcome of one matching operation.
type Result struct {
	// Face is the best-matching face.
	Face *field.Face
	// Similarity is the Def. 7 similarity of the winning face (may be
	// +Inf on an exact match).
	Similarity float64
	// Estimate is the reported target location. For a unique winner it is
	// the face centroid; when several faces tie at the maximum similarity
	// the estimate is the mean of their centroids (Sec. 6).
	Estimate geom.Point
	// Tied is the number of faces sharing the maximum similarity.
	Tied int
	// Visited is the number of faces whose similarity was evaluated.
	Visited int
	// Rounds is the number of hill-climbing rounds (heuristic only).
	Rounds int
	// FellBack reports that the heuristic search converged below its
	// FallbackBelow threshold and rescanned exhaustively.
	FellBack bool
}

// Matcher locates the best face for a sampling vector.
type Matcher interface {
	// Match finds the face best matching v. prev is the face returned by
	// the previous localization, or nil for the first one; matchers may
	// use it as a warm start.
	Match(v vector.Vector, prev *field.Face) Result
}

// Exhaustive scans all faces of the division. It is stateless and safe
// for concurrent use over a shared Division.
type Exhaustive struct {
	Div *field.Division
}

// Match implements Matcher.
func (m *Exhaustive) Match(v vector.Vector, _ *field.Face) Result {
	best := math.Inf(-1)
	var winner *field.Face
	var ties []*field.Face
	for i := range m.Div.Faces {
		f := &m.Div.Faces[i]
		s := vector.Similarity(v, f.Signature)
		switch {
		case s > best:
			best = s
			winner = f
			ties = ties[:0]
		case s == best:
			ties = append(ties, f)
		}
	}
	return finish(winner, ties, best, len(m.Div.Faces), 0)
}

// Heuristic searches along neighbor-face links from a warm start
// (Algorithm 2). Instead of the paper's strictly-improving hill climb —
// which stalls on the similarity plateaus that flipped components create —
// it runs a bounded best-first search: faces are expanded in decreasing
// similarity order, and the search stops once Patience consecutive
// expansions fail to improve on the best face seen. This keeps the local,
// O(n²)-per-localization character of Algorithm 2 while tolerating
// plateaus; Patience = 0 selects a default of 24.
//
// A Heuristic owns reusable search scratch (a visited-epoch slice and the
// frontier heap), so Match performs no heap allocations after the first
// call. That makes a Heuristic single-goroutine: give each goroutine its
// own matcher (the Division it points at may be shared — matchers only
// read it).
type Heuristic struct {
	Div *field.Division
	// Patience is how many consecutive non-improving expansions the
	// search tolerates before stopping.
	Patience int
	// Incremental updates a neighbor's match distance from its parent's
	// using the per-link signature diffs (Face.NeighborDiffs): O(|diff|)
	// per hop instead of O(C(n,2)) — Theorem 1 says |diff| is usually 1.
	// Results are identical up to floating-point association order.
	Incremental bool
	// Fallback, when true, reruns an exhaustive scan whenever the search
	// converges on a face whose similarity is below FallbackBelow. The
	// paper's algorithm has no such escape; it is provided for the
	// ablation study of DESIGN.md §5.
	Fallback bool
	// FallbackBelow is the similarity threshold that triggers the
	// fallback; a face that matches at least this well is accepted.
	FallbackBelow float64

	// seen[id] == epoch marks face id as visited in the current Match;
	// bumping epoch invalidates the whole slice in O(1), so the scratch
	// never needs clearing between calls.
	seen  []uint32
	epoch uint32
	// frontier is the reusable best-first heap storage.
	frontier faceHeap
}

// faceHeap is a min-heap of (squared distance, faceID) entries ordered by
// d2. Push/pop are open-coded (no container/heap) to avoid the interface
// boxing allocation on every operation; the sift rules replicate
// container/heap exactly (strict-less comparisons), so expansion order —
// and therefore plateau tie-breaking — is unchanged.
type faceHeap []faceEntry

type faceEntry struct {
	d2 float64
	id int
}

// push appends e and sifts it up.
func (h faceHeap) push(e faceEntry) faceHeap {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].d2 <= h[i].d2 {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

// pop removes and returns the minimum entry.
func (h faceHeap) pop() (faceHeap, faceEntry) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		smallest := i
		if l := 2*i + 1; l < len(h) && h[l].d2 < h[smallest].d2 {
			smallest = l
		}
		if r := 2*i + 2; r < len(h) && h[r].d2 < h[smallest].d2 {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return h, top
}

// dist2 is the squared modified distance of Def. 8 (stars contribute 0).
func dist2(v, sig vector.Vector) float64 {
	var sum float64
	for k := range v {
		if v[k].IsStar() || sig[k].IsStar() {
			continue
		}
		d := float64(v[k] - sig[k])
		sum += d * d
	}
	return sum
}

// term is one component's contribution to dist2.
func term(a, b vector.Value) float64 {
	if a.IsStar() || b.IsStar() {
		return 0
	}
	d := float64(a - b)
	return d * d
}

// Match implements Matcher. With a nil prev it starts from the division's
// middle face (Algorithm 2's Initialization()).
func (m *Heuristic) Match(v vector.Vector, prev *field.Face) Result {
	start := prev
	if start == nil {
		start = m.Div.FaceAt(m.Div.Field.Center())
	}
	patience := m.Patience
	if patience <= 0 {
		patience = 24
	}

	if len(m.seen) != len(m.Div.Faces) {
		m.seen = make([]uint32, len(m.Div.Faces))
		m.epoch = 0
	}
	m.epoch++
	if m.epoch == 0 { // epoch wrapped: clear the stale marks once
		for i := range m.seen {
			m.seen[i] = 0
		}
		m.epoch = 1
	}
	epoch := m.epoch
	m.seen[start.ID] = epoch

	h := m.frontier[:0]
	h = h.push(faceEntry{d2: dist2(v, start.Signature), id: start.ID})
	best := h[0]
	visited := 1
	rounds := 0
	stall := 0
	for len(h) > 0 && stall < patience {
		var e faceEntry
		h, e = h.pop()
		rounds++
		if e.d2 < best.d2 {
			best = e
			stall = 0
		} else {
			stall++
		}
		if best.d2 == 0 {
			break // exact match cannot be beaten
		}
		face := &m.Div.Faces[e.id]
		for ni, nb := range face.Neighbors {
			if m.seen[nb] == epoch {
				continue
			}
			m.seen[nb] = epoch
			visited++
			var d2 float64
			if m.Incremental && face.NeighborDiffs != nil {
				// Patch only the components that differ across the link.
				d2 = e.d2
				nbSig := m.Div.Faces[nb].Signature
				for _, k := range face.NeighborDiffs[ni] {
					d2 += term(v[k], nbSig[k]) - term(v[k], face.Signature[k])
				}
				if d2 < 0 { // guard against rounding just below zero
					d2 = 0
				}
			} else {
				d2 = dist2(v, m.Div.Faces[nb].Signature)
			}
			h = h.push(faceEntry{d2: d2, id: nb})
		}
	}
	m.frontier = h[:0] // retain the grown backing array for the next call
	curSim := math.Inf(1)
	if best.d2 > 0 {
		curSim = 1 / math.Sqrt(best.d2)
	}
	if m.Fallback && curSim < m.FallbackBelow {
		ex := Exhaustive{Div: m.Div}
		r := ex.Match(v, nil)
		r.Visited += visited
		r.Rounds = rounds
		r.FellBack = true
		return r
	}
	// The search returns a single face; ties among distant faces are not
	// visible to the local search, matching Algorithm 2.
	return finish(&m.Div.Faces[best.id], nil, curSim, visited, rounds)
}

// WeightedTopM scans all faces like Exhaustive but estimates the target
// position as the similarity-weighted mean of the M best faces'
// centroids instead of the single argmax. Face-matching errors are
// discrete jumps between candidate faces; averaging over the top
// candidates trades a little bias for much less jump variance — the
// estimator ablation of DESIGN.md §5 quantifies the effect against the
// paper's plain maximum-likelihood rule.
type WeightedTopM struct {
	Div *field.Division
	// M is how many of the best faces contribute (≥ 1).
	M int
}

// Match implements Matcher.
func (m *WeightedTopM) Match(v vector.Vector, _ *field.Face) Result {
	mm := m.M
	if mm < 1 {
		mm = 1
	}
	// Maintain the top-M faces by similarity in a small insertion list.
	type cand struct {
		sim float64
		id  int
	}
	top := make([]cand, 0, mm)
	// Track how many faces share the maximum similarity, so Tied reports
	// the true tie count like Exhaustive does.
	best := math.Inf(-1)
	ties := 0
	for i := range m.Div.Faces {
		s := vector.Similarity(v, m.Div.Faces[i].Signature)
		switch {
		case s > best:
			best, ties = s, 1
		case s == best:
			ties++
		}
		if len(top) < mm {
			top = append(top, cand{s, i})
			for a := len(top) - 1; a > 0 && top[a].sim > top[a-1].sim; a-- {
				top[a], top[a-1] = top[a-1], top[a]
			}
			continue
		}
		if s <= top[mm-1].sim {
			continue
		}
		top[mm-1] = cand{s, i}
		for a := mm - 1; a > 0 && top[a].sim > top[a-1].sim; a-- {
			top[a], top[a-1] = top[a-1], top[a]
		}
	}
	// Exact matches (+Inf similarity) dominate: average only those (at
	// most M of them; Tied still reports the full tie count).
	if math.IsInf(top[0].sim, 1) {
		var pts []geom.Point
		for _, c := range top {
			if math.IsInf(c.sim, 1) {
				pts = append(pts, m.Div.Faces[c.id].Centroid)
			}
		}
		return Result{
			Face:       &m.Div.Faces[top[0].id],
			Similarity: top[0].sim,
			Estimate:   geom.Centroid(pts),
			Tied:       ties,
			Visited:    len(m.Div.Faces),
		}
	}
	var sx, sy, sw float64
	for _, c := range top {
		w := c.sim
		sx += w * m.Div.Faces[c.id].Centroid.X
		sy += w * m.Div.Faces[c.id].Centroid.Y
		sw += w
	}
	est := m.Div.Faces[top[0].id].Centroid
	if sw > 0 {
		est = geom.Pt(sx/sw, sy/sw)
	}
	return Result{
		Face:       &m.Div.Faces[top[0].id],
		Similarity: top[0].sim,
		Estimate:   est,
		Tied:       ties,
		Visited:    len(m.Div.Faces),
	}
}

func finish(winner *field.Face, ties []*field.Face, sim float64, visited, rounds int) Result {
	r := Result{
		Face:       winner,
		Similarity: sim,
		Estimate:   winner.Centroid,
		Tied:       1 + len(ties),
		Visited:    visited,
		Rounds:     rounds,
	}
	if len(ties) > 0 {
		pts := make([]geom.Point, 0, len(ties)+1)
		pts = append(pts, winner.Centroid)
		for _, f := range ties {
			pts = append(pts, f.Centroid)
		}
		r.Estimate = geom.Centroid(pts)
	}
	return r
}
