// Package wsnnet simulates the wireless sensor network substrate that
// carried FTTT's reports in the paper's outdoor system (Fig. 13): motes
// sample the target's signal, build report packets and forward them hop
// by hop to a base station over a unit-disk radio graph with per-hop
// delay, loss and a first-order radio energy model.
//
// This package is the documented substitution for the Crossbow IRIS +
// MIB520 hardware (DESIGN.md §2): the tracking algorithms only ever see
// which reports reached the base station and what RSS values they carry,
// which is exactly what CollectRound reproduces.
package wsnnet

import (
	"fmt"
	"math"

	"fttt/internal/desim"
	"fttt/internal/geom"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
)

// Config parameterises the network substrate.
type Config struct {
	// Nodes are the sensor positions in ID order.
	Nodes []geom.Point
	// BaseStation is where reports are collected.
	BaseStation geom.Point
	// Model generates the target-signal RSS (eq. 1).
	Model rf.Model
	// SensingRange is R: nodes farther from the target do not hear it.
	// Zero disables the limit.
	SensingRange float64
	// CommRange is the radio range between motes (and to the base
	// station); it defines the unit-disk forwarding graph.
	CommRange float64
	// HopLoss is the probability that one hop's transmission is lost.
	HopLoss float64
	// HopDelay is the per-hop forwarding latency in seconds.
	HopDelay float64
	// ReportBits is the payload size of one report packet in bits.
	ReportBits float64
	// Epsilon is the motes' sensing resolution ε, copied into every
	// collected Group.
	Epsilon float64
	// InitialEnergy is each mote's starting battery in joules; 0 means
	// unmetered (energy is tracked but never exhausts).
	InitialEnergy float64
	// ContentionSlots models a slotted contention MAC: every reporting
	// node picks a uniform slot in [0, ContentionSlots); two nodes on
	// the same slot within interference range (2·CommRange) collide and
	// both rounds' reports are lost. 0 disables contention (ideal MAC).
	// Clustered collection gives cluster members TDMA slots (collision
	// free) with only heads contending — the clustering benefit [28].
	ContentionSlots int
	// Obs, when non-nil, receives the substrate's metrics (reports
	// heard/delivered/lost, hop counts, delivery latency, collisions,
	// energy drained per mote, dead motes — DESIGN.md §"Telemetry").
	Obs *obs.Registry
	// Tracer, when non-nil, receives a span per collection round and an
	// event per lost/unroutable/collided report.
	Tracer obs.Tracer
	// Faults, when non-nil, injects scripted failures into every
	// collection round (nil-is-off, like Obs): crash/revive and battery
	// drain at round start, burst loss per hop, calibration drift per
	// sample. internal/faults provides the deterministic scenario-script
	// implementation (DESIGN.md §9).
	Faults FaultInjector
}

// FaultInjector intercepts the substrate's failure processes; it is
// consulted only when Config.Faults is non-nil.
type FaultInjector interface {
	// BeginRound runs once per collection round at virtual time now,
	// before any sensing: crash or revive motes, rescale batteries.
	BeginRound(n *Network, now float64)
	// HopLost decides whether the transmission tx→rx is lost; rx is -1
	// when the receiver is the base station. base is the configured
	// HopLoss and rng the round's loss substream — implementations
	// without an opinion must return rng.Bernoulli(base) so the draw
	// sequence stays aligned with the uninjected run.
	HopLost(tx, rx int, base float64, rng *randx.Stream) bool
	// PerturbRSS adjusts mote node's raw RSS sample (calibration drift,
	// clock-skew slew).
	PerturbRSS(node int, rss float64) float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Nodes) < 1 {
		return fmt.Errorf("wsnnet: need at least one node")
	}
	if c.CommRange <= 0 {
		return fmt.Errorf("wsnnet: CommRange must be positive, got %v", c.CommRange)
	}
	if c.HopLoss < 0 || c.HopLoss >= 1 {
		return fmt.Errorf("wsnnet: HopLoss must be in [0,1), got %v", c.HopLoss)
	}
	if c.HopDelay < 0 {
		return fmt.Errorf("wsnnet: HopDelay must be non-negative, got %v", c.HopDelay)
	}
	return c.Model.Validate()
}

// First-order radio energy model constants (per bit and per bit·m²),
// the standard values used throughout the WSN literature, plus the
// sensing cost of one RSS sample.
const (
	elecEnergyPerBit = 50e-9   // J/bit for TX/RX electronics
	ampEnergyPerBit  = 100e-12 // J/(bit·m²) for the TX amplifier
	sampleEnergy     = 2e-6    // J per RSS sample (ADC + radio listen)
)

// Network is a ready-to-run substrate instance.
type Network struct {
	cfg    Config
	engine *desim.Engine
	// Energy[i] is node i's consumed energy in joules.
	Energy []float64
	// Alive[i] reports whether node i still has battery (always true
	// when InitialEnergy == 0).
	Alive []bool
	// nextHop[i] is the precomputed greedy-geographic next hop of node i
	// toward the base station: -1 means deliver directly (BS in range),
	// -2 means stuck in a greedy routing void.
	nextHop []int
	// bfsNext[i] is the rescue next hop from a BFS (shortest-hop) tree
	// rooted at the base station over the full unit-disk graph: when the
	// greedy rule voids, forwarding falls back to this tree — the
	// route-discovery detour real stacks perform. -1 delivers directly,
	// -2 means truly disconnected.
	bfsNext []int
	// energyScale[i] multiplies node i's energy debits (1 = nominal);
	// fault injection uses it for accelerated battery depletion. Nil
	// until SetEnergyScale first deviates from nominal.
	energyScale []float64
	metrics     *netMetrics
	tracer      obs.Tracer
}

// netMetrics caches the substrate metric handles, resolved once at New.
type netMetrics struct {
	rounds     *obs.Counter
	heard      *obs.Counter
	delivered  *obs.Counter
	lostHops   *obs.Counter
	voids      *obs.Counter
	deadRelays *obs.Counter
	collisions *obs.Counter
	asleep     *obs.Counter
	deadSkips  *obs.Counter
	hops       *obs.Histogram
	latency    *obs.Histogram
	energy     *obs.Counter
	deadMotes  *obs.Gauge
	// moteEnergy[i] mirrors Energy[i] as a labelled gauge series.
	moteEnergy []*obs.Gauge
}

func newNetMetrics(r *obs.Registry, n int) *netMetrics {
	m := &netMetrics{
		rounds:     r.Counter("fttt_net_rounds_total"),
		heard:      r.Counter("fttt_net_reports_heard_total"),
		delivered:  r.Counter("fttt_net_reports_delivered_total"),
		lostHops:   r.Counter("fttt_net_reports_lost_total"),
		voids:      r.Counter("fttt_net_reports_void_total"),
		deadRelays: r.Counter("fttt_net_reports_dead_relay_total"),
		collisions: r.Counter("fttt_net_collisions_total"),
		asleep:     r.Counter("fttt_net_reports_asleep_total"),
		deadSkips:  r.Counter("fttt_net_reports_dead_total"),
		hops:       r.Histogram("fttt_net_report_hops", obs.LinearBuckets(1, 1, 12)),
		latency:    r.Histogram("fttt_net_delivery_latency_seconds", obs.ExpBuckets(1e-4, 2, 16)),
		energy:     r.Counter("fttt_net_energy_joules_total"),
		deadMotes:  r.Gauge("fttt_net_dead_motes"),
		moteEnergy: make([]*obs.Gauge, n),
	}
	for i := range m.moteEnergy {
		m.moteEnergy[i] = r.Gauge(fmt.Sprintf("fttt_net_mote_energy_joules{mote=%q}", fmt.Sprint(i)))
	}
	return m
}

// New validates the config and precomputes the forwarding graph.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		cfg:    cfg,
		engine: &desim.Engine{},
		Energy: make([]float64, len(cfg.Nodes)),
		Alive:  make([]bool, len(cfg.Nodes)),
	}
	for i := range n.Alive {
		n.Alive[i] = true
	}
	n.nextHop = make([]int, len(cfg.Nodes))
	for i, p := range cfg.Nodes {
		n.nextHop[i] = n.greedyNextHop(i, p)
	}
	n.buildBFSTree()
	if cfg.Obs != nil {
		n.metrics = newNetMetrics(cfg.Obs, len(cfg.Nodes))
	}
	n.tracer = cfg.Tracer
	return n, nil
}

// buildBFSTree computes shortest-hop rescue routes from every node to the
// base station over the unit-disk graph.
func (n *Network) buildBFSTree() {
	nn := len(n.cfg.Nodes)
	n.bfsNext = make([]int, nn)
	for i := range n.bfsNext {
		n.bfsNext[i] = -2
	}
	// Frontier 0: nodes hearing the BS directly.
	var frontier []int
	for i, p := range n.cfg.Nodes {
		if p.Dist(n.cfg.BaseStation) <= n.cfg.CommRange {
			n.bfsNext[i] = -1
			frontier = append(frontier, i)
		}
	}
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for v, q := range n.cfg.Nodes {
				if n.bfsNext[v] != -2 || v == u {
					continue
				}
				if q.Dist(n.cfg.Nodes[u]) <= n.cfg.CommRange {
					n.bfsNext[v] = u
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
}

// greedyNextHop picks the neighbor strictly closer to the base station,
// preferring the closest; -1 delivers directly; -2 marks a void.
func (n *Network) greedyNextHop(i int, p geom.Point) int {
	bs := n.cfg.BaseStation
	if p.Dist(bs) <= n.cfg.CommRange {
		return -1
	}
	best, bestDist := -2, p.Dist(bs)
	for j, q := range n.cfg.Nodes {
		if j == i || p.Dist(q) > n.cfg.CommRange {
			continue
		}
		if d := q.Dist(bs); d < bestDist {
			best, bestDist = j, d
		}
	}
	return best
}

// Engine exposes the virtual clock for callers that interleave other
// events.
func (n *Network) Engine() *desim.Engine { return n.engine }

// PathTo returns the forwarding path from node i to the base station as a
// node-ID list (excluding the BS), and ok=false if i is disconnected.
// Greedy geographic forwarding is used while it makes progress; when it
// voids, the remainder of the path follows the BFS rescue tree.
func (n *Network) PathTo(i int) (path []int, ok bool) {
	rescued := false
	for hop := i; ; {
		path = append(path, hop)
		next := n.nextHop[hop]
		if rescued || next == -2 {
			rescued = true
			next = n.bfsNext[hop]
		}
		switch next {
		case -1:
			return path, true
		case -2:
			return path, false
		}
		if len(path) > len(n.cfg.Nodes) {
			return path, false // defensive: cycle
		}
		hop = next
	}
}

// RoundStats summarises one collection round.
type RoundStats struct {
	// Heard is how many nodes sensed the target.
	Heard int
	// Delivered is how many reports reached the base station.
	Delivered int
	// LostHops is how many reports died to per-hop loss.
	LostHops int
	// Voids is how many reports could not be routed to the base station:
	// greedy+BFS routing dead ends, plus reports stranded at a relay
	// that died after the forwarding trees were built (the DeadRelays
	// subset).
	Voids int
	// DeadRelays is how many of the Voids were reports dropped at a
	// dead relay mid-path.
	DeadRelays int
	// Dead is how many sensing nodes had exhausted batteries.
	Dead int
	// Asleep is how many in-range nodes were duty-cycled off this round
	// (CollectRoundFocused only).
	Asleep int
	// Collisions is how many reports died to MAC contention.
	Collisions int
	// MaxLatency is the slowest delivered report's network latency in
	// seconds.
	MaxLatency float64
	// EnergySpent is the total energy consumed this round in joules.
	EnergySpent float64
}

// Accumulate folds another round's stats into s (counters add,
// MaxLatency takes the maximum) — used when a degraded round's
// re-collection retry merges two collections into one Update.
func (s *RoundStats) Accumulate(o RoundStats) {
	s.Heard += o.Heard
	s.Delivered += o.Delivered
	s.LostHops += o.LostHops
	s.Voids += o.Voids
	s.DeadRelays += o.DeadRelays
	s.Dead += o.Dead
	s.Asleep += o.Asleep
	s.Collisions += o.Collisions
	if o.MaxLatency > s.MaxLatency {
		s.MaxLatency = o.MaxLatency
	}
	s.EnergySpent += o.EnergySpent
}

// CollectRound runs one localization round at the current virtual time:
// every alive node within sensing range of target samples k RSS values
// and forwards a report to the base station. The returned Group contains
// exactly the reports that arrived — lost or unroutable reports leave
// their node in N̄_r, feeding FTTT's fault-tolerance rules (eq. 6).
func (n *Network) CollectRound(target geom.Point, k int, rng *randx.Stream) (*sampling.Group, RoundStats) {
	return n.collectRound(target, k, rng, nil)
}

// CollectRoundFocused is CollectRound with duty cycling: only nodes
// within wakeRadius of the focus point (typically the previous location
// estimate inflated by the target's maximum displacement) stay awake;
// the rest sleep through the round, spending nothing but also not
// reporting. Tracking-driven wake-up is the standard energy lever in
// target-tracking WSNs; the DutyCycling experiment quantifies the
// energy/accuracy trade.
func (n *Network) CollectRoundFocused(target, focus geom.Point, wakeRadius float64, k int, rng *randx.Stream) (*sampling.Group, RoundStats) {
	awake := func(i int) bool {
		return n.cfg.Nodes[i].Dist(focus) <= wakeRadius
	}
	return n.collectRound(target, k, rng, awake)
}

func (n *Network) collectRound(target geom.Point, k int, rng *randx.Stream, awake func(i int) bool) (*sampling.Group, RoundStats) {
	endSpan := obs.StartSpan(n.tracer, "wsnnet", "collect_round")
	if f := n.cfg.Faults; f != nil {
		f.BeginRound(n, n.engine.Now())
	}
	nn := len(n.cfg.Nodes)
	g := &sampling.Group{
		RSS:      make([][]float64, k),
		Reported: make([]bool, nn),
		Epsilon:  n.cfg.Epsilon,
	}
	for t := range g.RSS {
		g.RSS[t] = make([]float64, nn)
	}
	var stats RoundStats
	energyBefore := total(n.Energy)
	loss := rng.Split("hop-loss")
	collided := n.contention(target, awake, rng)

	for i, p := range n.cfg.Nodes {
		if n.cfg.SensingRange > 0 && p.Dist(target) > n.cfg.SensingRange {
			continue
		}
		stats.Heard++
		if awake != nil && !awake(i) {
			stats.Asleep++
			continue
		}
		if !n.Alive[i] {
			stats.Dead++
			continue
		}
		if collided[i] {
			// The report was transmitted (energy spent) but destroyed by
			// a same-slot neighbor.
			n.spend(i, sampleEnergy*float64(k)+txEnergy(n.cfg.ReportBits, n.cfg.CommRange))
			stats.Collisions++
			obs.Emit(n.tracer, "wsnnet", "report_collided", float64(i))
			continue
		}
		// Sample the target's signal (shadowing constant within the
		// group, fast noise per instant — see rf.Model.FastFraction).
		nodeRng := rng.SplitN("node-noise", i)
		d := p.Dist(target)
		n.spend(i, sampleEnergy*float64(k))
		mean := n.cfg.Model.MeanRSS(d) + nodeRng.Normal(0, n.cfg.Model.SigmaSlow())
		sf := n.cfg.Model.SigmaFast()
		samples := make([]float64, k)
		for t := 0; t < k; t++ {
			samples[t] = mean + nodeRng.Normal(0, sf)
		}
		if f := n.cfg.Faults; f != nil {
			for t := range samples {
				samples[t] = f.PerturbRSS(i, samples[t])
			}
		}
		// Forward the report hop by hop.
		path, routable := n.PathTo(i)
		if !routable {
			stats.Voids++
			obs.Emit(n.tracer, "wsnnet", "report_void", float64(i))
			continue
		}
		outcome, latency := n.forward(path, n.cfg.ReportBits, loss)
		switch outcome {
		case fwdDeadRelay:
			stats.Voids++
			stats.DeadRelays++
			obs.Emit(n.tracer, "wsnnet", "report_dead_relay", float64(i))
			continue
		case fwdLostHop:
			stats.LostHops++
			obs.Emit(n.tracer, "wsnnet", "report_lost", float64(i))
			continue
		}
		stats.Delivered++
		if m := n.metrics; m != nil {
			m.hops.Observe(float64(len(path)))
			m.latency.Observe(latency)
		}
		if latency > stats.MaxLatency {
			stats.MaxLatency = latency
		}
		g.Reported[i] = true
		for t := 0; t < k; t++ {
			g.RSS[t][i] = samples[t]
		}
	}
	// Advance the virtual clock past the slowest delivery.
	if stats.MaxLatency > 0 {
		n.engine.ScheduleIn(stats.MaxLatency, func() {})
		n.engine.Run()
	}
	stats.EnergySpent = total(n.Energy) - energyBefore
	n.recordRound(stats)
	endSpan()
	return g, stats
}

// fwdOutcome is the fate of one packet pushed along a forwarding path.
type fwdOutcome int

const (
	fwdDelivered fwdOutcome = iota
	fwdLostHop
	fwdDeadRelay
)

// forward pushes one packet of bits along path hop by hop, debiting
// TX/RX energy, accumulating per-hop latency and drawing per-hop
// losses. Relay liveness is re-checked at every hop: the forwarding
// trees are precomputed in New, so a path may pass through motes that
// have since died (battery exhaustion or Kill) — a dead relay cannot
// receive or retransmit, and the packet dies there. path[0] is the
// source, which the caller has already checked alive.
func (n *Network) forward(path []int, bits float64, loss *randx.Stream) (fwdOutcome, float64) {
	latency := 0.0
	for hi, hop := range path {
		if hi > 0 && !n.Alive[hop] {
			return fwdDeadRelay, latency
		}
		rx := -1
		rxPos := n.cfg.BaseStation
		if hi+1 < len(path) {
			rx = path[hi+1]
			rxPos = n.cfg.Nodes[rx]
		}
		n.spend(hop, txEnergy(bits, n.cfg.Nodes[hop].Dist(rxPos)))
		if rx >= 0 && n.Alive[rx] {
			n.spend(rx, rxEnergy(bits))
		}
		latency += n.cfg.HopDelay
		if n.hopLost(hop, rx, loss) {
			return fwdLostHop, latency
		}
	}
	return fwdDelivered, latency
}

// hopLost draws one hop's loss, delegating to the fault injector when
// one is attached.
func (n *Network) hopLost(tx, rx int, loss *randx.Stream) bool {
	if f := n.cfg.Faults; f != nil {
		return f.HopLost(tx, rx, n.cfg.HopLoss, loss)
	}
	return loss.Bernoulli(n.cfg.HopLoss)
}

// recordRound folds one round's aggregate stats into the metrics; no-op
// without a registry.
func (n *Network) recordRound(stats RoundStats) {
	m := n.metrics
	if m == nil {
		return
	}
	m.rounds.Inc()
	m.heard.Add(float64(stats.Heard))
	m.delivered.Add(float64(stats.Delivered))
	m.lostHops.Add(float64(stats.LostHops))
	m.voids.Add(float64(stats.Voids))
	m.deadRelays.Add(float64(stats.DeadRelays))
	m.collisions.Add(float64(stats.Collisions))
	m.asleep.Add(float64(stats.Asleep))
	m.deadSkips.Add(float64(stats.Dead))
	m.energy.Add(stats.EnergySpent)
	m.deadMotes.Set(float64(len(n.cfg.Nodes) - n.AliveCount()))
	for i, mg := range m.moteEnergy {
		mg.Set(n.Energy[i])
	}
}

// contention simulates the slotted MAC for one round and returns the set
// of transmitters destroyed by collisions. Nil when contention is off.
func (n *Network) contention(target geom.Point, awake func(i int) bool, rng *randx.Stream) map[int]bool {
	if n.cfg.ContentionSlots <= 0 {
		return nil
	}
	mac := rng.Split("mac")
	type tx struct {
		id   int
		slot int
	}
	var txs []tx
	for i, p := range n.cfg.Nodes {
		if n.cfg.SensingRange > 0 && p.Dist(target) > n.cfg.SensingRange {
			continue
		}
		if awake != nil && !awake(i) {
			continue
		}
		if !n.Alive[i] {
			continue
		}
		txs = append(txs, tx{id: i, slot: mac.Intn(n.cfg.ContentionSlots)})
	}
	collided := make(map[int]bool)
	interference := 2 * n.cfg.CommRange
	for a := 0; a < len(txs); a++ {
		for b := a + 1; b < len(txs); b++ {
			if txs[a].slot != txs[b].slot {
				continue
			}
			if n.cfg.Nodes[txs[a].id].Dist(n.cfg.Nodes[txs[b].id]) <= interference {
				collided[txs[a].id] = true
				collided[txs[b].id] = true
			}
		}
	}
	return collided
}

// spend debits energy from node i and kills it when the battery empties.
func (n *Network) spend(i int, joules float64) {
	if n.energyScale != nil {
		joules *= n.energyScale[i]
	}
	n.Energy[i] += joules
	if n.cfg.InitialEnergy > 0 && n.Energy[i] >= n.cfg.InitialEnergy {
		n.Alive[i] = false
	}
}

// SetEnergyScale sets node i's energy-drain multiplier (1 = nominal);
// fault injection uses it for accelerated battery depletion. The scale
// slice is only materialised once a scale deviates from nominal, so
// unfaulted runs pay nothing.
func (n *Network) SetEnergyScale(i int, scale float64) {
	if n.energyScale == nil {
		if scale == 1 {
			return
		}
		n.energyScale = make([]float64, len(n.cfg.Nodes))
		for j := range n.energyScale {
			n.energyScale[j] = 1
		}
	}
	n.energyScale[i] = scale
}

// Kill marks node i dead regardless of battery — fault injection for the
// fault-tolerance experiments.
func (n *Network) Kill(i int) { n.Alive[i] = false }

// Revive restores node i (its consumed energy is kept).
func (n *Network) Revive(i int) {
	if n.cfg.InitialEnergy == 0 || n.Energy[i] < n.cfg.InitialEnergy {
		n.Alive[i] = true
	}
}

// AliveCount returns how many nodes are alive.
func (n *Network) AliveCount() int {
	c := 0
	for _, a := range n.Alive {
		if a {
			c++
		}
	}
	return c
}

func txEnergy(bits, dist float64) float64 {
	return elecEnergyPerBit*bits + ampEnergyPerBit*bits*dist*dist
}

func rxEnergy(bits float64) float64 { return elecEnergyPerBit * bits }

func total(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// HopCount returns the number of hops from node i to the base station
// (1 = direct), and ok=false for voids.
func (n *Network) HopCount(i int) (int, bool) {
	path, ok := n.PathTo(i)
	if !ok {
		return 0, false
	}
	return len(path), true
}

// MeanHopCount averages HopCount over all routable nodes; NaN when none
// are routable.
func (n *Network) MeanHopCount() float64 {
	sum, cnt := 0, 0
	for i := range n.cfg.Nodes {
		if h, ok := n.HopCount(i); ok {
			sum += h
			cnt++
		}
	}
	if cnt == 0 {
		return math.NaN()
	}
	return float64(sum) / float64(cnt)
}
