package wsnnet

import (
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
)

// lineConfig builds a two-node line: node 1 can only reach the base
// station by relaying through node 0.
//
//	BS(0,0) ←45→ node0(30,0) ←40→ node1(70,0)
func lineConfig() Config {
	return Config{
		Nodes:        []geom.Point{geom.Pt(30, 0), geom.Pt(70, 0)},
		BaseStation:  geom.Pt(0, 0),
		Model:        rf.Default(),
		SensingRange: 20,
		CommRange:    45,
		HopDelay:     0.002,
		ReportBits:   256,
	}
}

// TestDeadRelayDropsReport is the regression test for the forwarding
// bug where precomputed paths never re-checked relay liveness: killing
// the only relay used to leave reports "delivered" through a dead mote.
// Post-fix the report must die at the relay and be counted as a void
// (DeadRelays subset), never as delivered.
func TestDeadRelayDropsReport(t *testing.T) {
	n, err := New(lineConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: node 1's only path relays through node 0.
	path, ok := n.PathTo(1)
	if !ok || len(path) != 2 || path[0] != 1 || path[1] != 0 {
		t.Fatalf("want path [1 0], got %v ok=%v", path, ok)
	}

	n.Kill(0)
	target := geom.Pt(70, 0) // only node 1 senses it
	g, stats := n.CollectRound(target, 3, randx.New(7))

	if stats.Delivered != 0 {
		t.Errorf("report relayed through a dead mote: Delivered = %d, want 0", stats.Delivered)
	}
	if stats.Voids != 1 || stats.DeadRelays != 1 {
		t.Errorf("dead relay not accounted: Voids = %d, DeadRelays = %d, want 1, 1", stats.Voids, stats.DeadRelays)
	}
	if stats.LostHops != 0 {
		t.Errorf("LostHops = %d, want 0 (HopLoss is zero)", stats.LostHops)
	}
	if g.Reported[1] {
		t.Error("node 1 marked reported despite the dead relay")
	}
	// The source still spent TX energy (it cannot know the relay died),
	// but the dead relay must not be charged RX energy.
	if n.Energy[1] == 0 {
		t.Error("source spent no energy transmitting")
	}
	deadRelayRx := n.Energy[0]
	if deadRelayRx > sampleEnergy { // node 0 never sensed (out of range)
		t.Errorf("dead relay charged %v J RX energy", deadRelayRx)
	}
}

// TestDeadRelayReviveRestoresDelivery closes the loop: reviving the
// relay makes the same round deliver again.
func TestDeadRelayReviveRestoresDelivery(t *testing.T) {
	n, err := New(lineConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.Kill(0)
	n.Revive(0)
	_, stats := n.CollectRound(geom.Pt(70, 0), 3, randx.New(7))
	if stats.Delivered != 1 || stats.DeadRelays != 0 {
		t.Errorf("Delivered = %d, DeadRelays = %d, want 1, 0", stats.Delivered, stats.DeadRelays)
	}
}

// TestDeadRelayClustered exercises the same fix on the clustered path:
// an aggregate dying at a dead relay voids every report it carried.
func TestDeadRelayClustered(t *testing.T) {
	cfg := lineConfig()
	cfg.SensingRange = 120 // both nodes sense
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One cluster headed by node 1: node 0's report goes to the head,
	// whose aggregate path relays through... node 0 itself — so instead
	// head the cluster at node 1 and kill node 0 only after phase 1
	// would use it. Simpler: head = node 1, member = node 0 is within
	// 40 of the head, and the head's path is [1 0]. Killing node 0
	// after clustering leaves the member hop dead too, so build the
	// cluster with both alive and kill just before collection.
	cl := &Clusters{Heads: []int{1}, HeadOf: []int{1, 1}, AggregationFactor: 0.25}
	n.Kill(0)
	_, stats := n.CollectRoundClustered(geom.Pt(70, 0), 3, cl, randx.New(7))
	// Node 0 is dead (counted Dead); node 1's aggregate dies at relay 0.
	if stats.Delivered != 0 {
		t.Errorf("Delivered = %d, want 0", stats.Delivered)
	}
	if stats.DeadRelays != 1 {
		t.Errorf("DeadRelays = %d, want 1", stats.DeadRelays)
	}
	if stats.Dead != 1 {
		t.Errorf("Dead = %d, want 1", stats.Dead)
	}
}

// fakeInjector counts hook invocations and can force hop loss.
type fakeInjector struct {
	rounds   int
	hops     int
	perturbs int
	loseAll  bool
	rssBias  float64
}

func (f *fakeInjector) BeginRound(n *Network, now float64) { f.rounds++ }

func (f *fakeInjector) HopLost(tx, rx int, base float64, rng *randx.Stream) bool {
	f.hops++
	if f.loseAll {
		return true
	}
	return rng.Bernoulli(base)
}

func (f *fakeInjector) PerturbRSS(node int, rss float64) float64 {
	f.perturbs++
	return rss + f.rssBias
}

// TestFaultHooksConsulted wires a fake injector and checks every hook
// fires, and that a draw-preserving injector reproduces the nil run.
func TestFaultHooksConsulted(t *testing.T) {
	cfg := testConfig(16)
	base, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := geom.Pt(50, 50)
	gWant, sWant := base.CollectRound(target, 3, randx.New(11))

	fi := &fakeInjector{}
	cfg2 := testConfig(16)
	cfg2.Faults = fi
	inj, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	gGot, sGot := inj.CollectRound(target, 3, randx.New(11))

	if fi.rounds != 1 {
		t.Errorf("BeginRound fired %d times, want 1", fi.rounds)
	}
	if fi.hops == 0 || fi.perturbs == 0 {
		t.Errorf("hooks unfired: hops=%d perturbs=%d", fi.hops, fi.perturbs)
	}
	if sGot != sWant {
		t.Errorf("draw-preserving injector changed stats: %+v vs %+v", sGot, sWant)
	}
	for i := range gWant.Reported {
		if gWant.Reported[i] != gGot.Reported[i] {
			t.Fatalf("node %d reported mismatch", i)
		}
		if !gWant.Reported[i] {
			continue
		}
		for tt := range gWant.RSS {
			if gWant.RSS[tt][i] != gGot.RSS[tt][i] {
				t.Fatalf("RSS[%d][%d] drifted without a bias", tt, i)
			}
		}
	}
}

// TestFaultInjectorLosesHops checks the HopLost hook actually decides
// loss: an always-lose injector delivers nothing.
func TestFaultInjectorLosesHops(t *testing.T) {
	cfg := testConfig(16)
	cfg.Faults = &fakeInjector{loseAll: true}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, stats := n.CollectRound(geom.Pt(50, 50), 3, randx.New(3))
	if stats.Delivered != 0 {
		t.Errorf("Delivered = %d with an always-lose channel", stats.Delivered)
	}
	if stats.LostHops == 0 {
		t.Error("no hops recorded lost")
	}
}

// TestSetEnergyScaleAcceleratesDrain verifies the Drain lever: a 3×
// scale triples a node's debits, and nominal scales stay lazy.
func TestSetEnergyScaleAcceleratesDrain(t *testing.T) {
	n, err := New(testConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	n.SetEnergyScale(0, 1)
	if n.energyScale != nil {
		t.Error("nominal scale materialised the slice")
	}
	n.SetEnergyScale(0, 3)
	n.spend(0, 1)
	n.spend(1, 1)
	if n.Energy[0] != 3 {
		t.Errorf("scaled node spent %v, want 3", n.Energy[0])
	}
	if n.Energy[1] != 1 {
		t.Errorf("unscaled node spent %v, want 1", n.Energy[1])
	}
}

// TestRoundStatsAccumulate pins the merge used by re-collection
// retries: counters add, MaxLatency takes the max.
func TestRoundStatsAccumulate(t *testing.T) {
	a := RoundStats{Heard: 2, Delivered: 1, LostHops: 1, Voids: 1, DeadRelays: 1, MaxLatency: 0.01, EnergySpent: 1}
	a.Accumulate(RoundStats{Heard: 3, Delivered: 2, Dead: 1, Asleep: 1, Collisions: 1, MaxLatency: 0.004, EnergySpent: 2})
	want := RoundStats{Heard: 5, Delivered: 3, LostHops: 1, Voids: 1, DeadRelays: 1, Dead: 1, Asleep: 1, Collisions: 1, MaxLatency: 0.01, EnergySpent: 3}
	if a != want {
		t.Errorf("Accumulate = %+v, want %+v", a, want)
	}
}
