package wsnnet

import (
	"math"
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
)

func TestFormClustersValidation(t *testing.T) {
	n, _ := New(testConfig(9))
	if _, err := n.FormClusters(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := n.FormClusters(10); err == nil {
		t.Error("k>n should fail")
	}
	cl, err := n.FormClusters(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Heads) != 3 {
		t.Fatalf("got %d heads", len(cl.Heads))
	}
}

func TestClusterMembershipNearestHead(t *testing.T) {
	n, _ := New(testConfig(16))
	cl, _ := n.FormClusters(4)
	for i, h := range cl.HeadOf {
		di := n.cfg.Nodes[i].Dist(n.cfg.Nodes[h])
		for _, other := range cl.Heads {
			if d := n.cfg.Nodes[i].Dist(n.cfg.Nodes[other]); d < di-1e-9 {
				t.Fatalf("node %d assigned head %d but head %d is nearer", i, h, other)
			}
		}
	}
	// Every head is its own head.
	for _, h := range cl.Heads {
		if cl.HeadOf[h] != h {
			t.Errorf("head %d assigned to %d", h, cl.HeadOf[h])
		}
	}
}

func TestFormClustersDeterministic(t *testing.T) {
	n1, _ := New(testConfig(16))
	n2, _ := New(testConfig(16))
	c1, _ := n1.FormClusters(4)
	c2, _ := n2.FormClusters(4)
	for i := range c1.Heads {
		if c1.Heads[i] != c2.Heads[i] {
			t.Fatal("head selection not deterministic")
		}
	}
}

func TestClusteredRoundDelivers(t *testing.T) {
	n, _ := New(testConfig(16))
	cl, _ := n.FormClusters(4)
	g, stats := n.CollectRoundClustered(geom.Pt(50, 50), 5, cl, randx.New(1))
	if stats.Heard == 0 || stats.Delivered == 0 {
		t.Fatalf("nothing delivered: %+v", stats)
	}
	if g.NumReported() != stats.Delivered {
		t.Errorf("group reports %d != delivered %d", g.NumReported(), stats.Delivered)
	}
	if stats.EnergySpent <= 0 {
		t.Error("round should consume energy")
	}
}

func TestClusteredRoundReproducible(t *testing.T) {
	run := func() []bool {
		cfg := testConfig(16)
		cfg.HopLoss = 0.3
		n, _ := New(cfg)
		cl, _ := n.FormClusters(4)
		g, _ := n.CollectRoundClustered(geom.Pt(42, 58), 5, cl, randx.New(6))
		return g.Reported
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("clustered round not reproducible")
		}
	}
}

func TestClusteringSavesEnergyOverManyRounds(t *testing.T) {
	// With aggregation the clustered topology should spend less total
	// energy than per-report greedy forwarding (BS in a corner → long
	// multihop paths dominate).
	runDirect := func() float64 {
		n, _ := New(testConfig(25))
		rng := randx.New(2)
		for round := 0; round < 50; round++ {
			n.CollectRound(geom.Pt(60, 60), 5, rng.SplitN("r", round))
		}
		return total(n.Energy)
	}
	runClustered := func() float64 {
		n, _ := New(testConfig(25))
		cl, _ := n.FormClusters(5)
		rng := randx.New(2)
		for round := 0; round < 50; round++ {
			n.CollectRoundClustered(geom.Pt(60, 60), 5, cl, rng.SplitN("r", round))
		}
		return total(n.Energy)
	}
	d, c := runDirect(), runClustered()
	if c >= d {
		t.Errorf("clustered energy %.3e should be below direct %.3e", c, d)
	}
}

func TestClusteredAggregateLossDropsWholeCluster(t *testing.T) {
	// With certain hop loss on the head path, every member report dies
	// together. Force it with HopLoss close to 1.
	cfg := testConfig(16)
	cfg.HopLoss = 0.95
	n, _ := New(cfg)
	cl, _ := n.FormClusters(2)
	g, stats := n.CollectRoundClustered(geom.Pt(50, 50), 3, cl, randx.New(3))
	if g.NumReported() > stats.Delivered {
		t.Error("reported more than delivered")
	}
	if stats.LostHops == 0 {
		t.Error("expected heavy losses at 95% hop loss")
	}
}

func TestClockModelValidation(t *testing.T) {
	n, _ := New(testConfig(9))
	if _, err := NewClockModel(nil, 1, 1, 1e-5, randx.New(1)); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := NewClockModel(n, -1, 1, 1e-5, randx.New(1)); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := NewClockModel(n, 0.01, 50, 5e-5, randx.New(1)); err != nil {
		t.Errorf("valid clock model rejected: %v", err)
	}
}

func TestClockDrift(t *testing.T) {
	n, _ := New(testConfig(9))
	cm, _ := NewClockModel(n, 0, 100, 1e-5, randx.New(2)) // start perfectly synced
	if cm.MaxAbsOffset() != 0 {
		t.Fatal("offsets should start at 0 with maxOffset=0")
	}
	cm.Advance(1000) // 1000 s at ≤100 ppm → ≤0.1 s
	worst := cm.MaxAbsOffset()
	if worst == 0 {
		t.Error("clocks should have drifted")
	}
	if worst > 0.1+1e-12 {
		t.Errorf("drift %.4f exceeds 100ppm bound", worst)
	}
}

func TestSynchronizeTightensOffsets(t *testing.T) {
	n, _ := New(testConfig(16))
	cm, _ := NewClockModel(n, 0.5, 50, 5e-5, randx.New(3))
	before := cm.MaxAbsOffset()
	if before < 0.01 {
		t.Fatalf("initial offsets too small to test: %v", before)
	}
	after := cm.Synchronize()
	if after >= before {
		t.Errorf("sync should tighten offsets: %.4f → %.4f", before, after)
	}
	// Post-sync residual scales with hop jitter and hop count (≤ ~4 hops
	// here): a millisecond-scale bound is generous.
	if after > 0.001 {
		t.Errorf("residual offset %.6f too large for 50µs hop jitter", after)
	}
}

func TestSampleTimeError(t *testing.T) {
	n, _ := New(testConfig(9))
	cm, _ := NewClockModel(n, 0.1, 0, 1e-5, randx.New(4))
	for i := range cm.Offsets {
		want := math.Abs(cm.Offsets[i]) * 5
		if got := cm.SampleTimeError(i, 5); math.Abs(got-want) > 1e-12 {
			t.Fatalf("SampleTimeError(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestSyncThenDriftCycle(t *testing.T) {
	// The steady-state of periodic sync: offsets stay bounded by
	// residual + drift over the period.
	n, _ := New(testConfig(16))
	cm, _ := NewClockModel(n, 1, 100, 5e-5, randx.New(5))
	for cycle := 0; cycle < 10; cycle++ {
		cm.Synchronize()
		cm.Advance(60) // 60 s between syncs
	}
	// 100ppm · 60s = 6ms drift + sub-ms residual.
	if worst := cm.MaxAbsOffset(); worst > 0.01 {
		t.Errorf("steady-state offset %.4f too large", worst)
	}
}

func TestContentionDropsReports(t *testing.T) {
	cfg := testConfig(25)
	cfg.ContentionSlots = 2 // brutal contention window
	n, _ := New(cfg)
	totalHeard, totalDelivered, collisions := 0, 0, 0
	rng := randx.New(31)
	for round := 0; round < 30; round++ {
		_, st := n.CollectRound(geom.Pt(50, 50), 3, rng.SplitN("r", round))
		totalHeard += st.Heard
		totalDelivered += st.Delivered
		collisions += st.Collisions
	}
	if collisions == 0 {
		t.Fatal("expected collisions with 2 slots and ~12 transmitters")
	}
	if totalDelivered >= totalHeard {
		t.Error("collisions should reduce delivery")
	}
}

func TestContentionOffIsIdeal(t *testing.T) {
	cfg := testConfig(16) // ContentionSlots 0
	n, _ := New(cfg)
	_, st := n.CollectRound(geom.Pt(50, 50), 3, randx.New(32))
	if st.Collisions != 0 {
		t.Errorf("ideal MAC should have 0 collisions, got %d", st.Collisions)
	}
}

func TestMoreSlotsFewerCollisions(t *testing.T) {
	run := func(slots int) int {
		cfg := testConfig(25)
		cfg.ContentionSlots = slots
		n, _ := New(cfg)
		collisions := 0
		rng := randx.New(33)
		for round := 0; round < 40; round++ {
			_, st := n.CollectRound(geom.Pt(50, 50), 3, rng.SplitN("r", round))
			collisions += st.Collisions
		}
		return collisions
	}
	if tight, wide := run(2), run(64); wide >= tight {
		t.Errorf("64 slots (%d collisions) should beat 2 slots (%d)", wide, tight)
	}
}

func TestClusteredTDMAShieldsMembers(t *testing.T) {
	// Under heavy contention, clustering (members on TDMA) should
	// deliver more than the flat contention MAC.
	mk := func() Config {
		cfg := testConfig(25)
		cfg.ContentionSlots = 3
		return cfg
	}
	flatDelivered := 0
	{
		n, _ := New(mk())
		rng := randx.New(34)
		for round := 0; round < 40; round++ {
			_, st := n.CollectRound(geom.Pt(50, 50), 3, rng.SplitN("r", round))
			flatDelivered += st.Delivered
		}
	}
	clusteredDelivered := 0
	{
		n, _ := New(mk())
		cl, _ := n.FormClusters(5)
		rng := randx.New(34)
		for round := 0; round < 40; round++ {
			_, st := n.CollectRoundClustered(geom.Pt(50, 50), 3, cl, rng.SplitN("r", round))
			clusteredDelivered += st.Delivered
		}
	}
	if clusteredDelivered <= flatDelivered {
		t.Errorf("clustered TDMA delivered %d ≤ flat %d under contention",
			clusteredDelivered, flatDelivered)
	}
}
