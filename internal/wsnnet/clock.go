package wsnnet

import (
	"fmt"
	"math"

	"fttt/internal/randx"
)

// ClockModel simulates per-mote clocks with offset and drift, plus the
// hop-by-hop beacon synchronization of [28]: the base station broadcasts
// its time, each hop re-stamps with a small jitter, and nodes correct
// their offset to the received value. Between sync rounds the offsets
// drift apart again at each node's drift rate.
//
// Imperfect synchronization matters to FTTT because Def. 3 assumes the
// group's samples are "almost synchronous": a residual offset δ means a
// node samples the target at t+δ, when a target moving at v has shifted
// by v·δ. The SyncAccuracy experiment quantifies how much residual
// offset tracking tolerates.
type ClockModel struct {
	// Offsets[i] is node i's current clock offset in seconds.
	Offsets []float64
	// DriftPPM[i] is node i's crystal drift in parts-per-million.
	DriftPPM []float64
	// HopJitterStd is the per-hop re-stamping error of a sync beacon in
	// seconds (typical MAC-layer timestamping: tens of microseconds).
	HopJitterStd float64

	net *Network
	rng *randx.Stream
	// lastSync is the virtual time of the last Synchronize call.
	lastSync float64
}

// NewClockModel draws per-node initial offsets (uniform ±maxOffset) and
// drifts (uniform ±maxDriftPPM).
func NewClockModel(net *Network, maxOffset, maxDriftPPM, hopJitterStd float64, rng *randx.Stream) (*ClockModel, error) {
	if net == nil || rng == nil {
		return nil, fmt.Errorf("wsnnet: clock model needs a network and an rng")
	}
	if maxOffset < 0 || maxDriftPPM < 0 || hopJitterStd < 0 {
		return nil, fmt.Errorf("wsnnet: negative clock parameter")
	}
	nn := len(net.cfg.Nodes)
	cm := &ClockModel{
		Offsets:      make([]float64, nn),
		DriftPPM:     make([]float64, nn),
		HopJitterStd: hopJitterStd,
		net:          net,
		rng:          rng.Split("clock"),
	}
	for i := 0; i < nn; i++ {
		cm.Offsets[i] = cm.rng.Uniform(-maxOffset, maxOffset)
		cm.DriftPPM[i] = cm.rng.Uniform(-maxDriftPPM, maxDriftPPM)
	}
	return cm, nil
}

// Advance drifts every clock forward by dt seconds of true time.
func (cm *ClockModel) Advance(dt float64) {
	for i := range cm.Offsets {
		cm.Offsets[i] += cm.DriftPPM[i] * 1e-6 * dt
	}
}

// Synchronize runs one beacon flood: every routable node receives the
// base station's time over its greedy path (reversed), accumulating one
// jitter draw per hop, and snaps its offset to the received error.
// Unroutable or dead nodes keep their current offset. It returns the
// post-sync maximum absolute offset among synchronized nodes.
func (cm *ClockModel) Synchronize() float64 {
	worst := 0.0
	for i := range cm.Offsets {
		if !cm.net.Alive[i] {
			continue
		}
		path, ok := cm.net.PathTo(i)
		if !ok {
			continue
		}
		// The beacon traverses the same hops in reverse; each hop adds
		// timestamping jitter.
		err := 0.0
		for range path {
			err += cm.rng.Normal(0, cm.HopJitterStd)
		}
		cm.Offsets[i] = err
		if a := math.Abs(err); a > worst {
			worst = a
		}
	}
	cm.lastSync = cm.net.Engine().Now()
	return worst
}

// MaxAbsOffset returns the current maximum |offset| over alive nodes.
func (cm *ClockModel) MaxAbsOffset() float64 {
	worst := 0.0
	for i, o := range cm.Offsets {
		if !cm.net.Alive[i] {
			continue
		}
		if a := math.Abs(o); a > worst {
			worst = a
		}
	}
	return worst
}

// SampleTimeError returns the sampling-position displacement node i's
// clock offset induces for a target moving at speed v (m/s): |offset|·v.
func (cm *ClockModel) SampleTimeError(i int, v float64) float64 {
	return math.Abs(cm.Offsets[i]) * v
}
