package wsnnet

import (
	"fmt"
	"math"

	"fttt/internal/geom"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/sampling"
)

// Clusters is a two-tier topology over a Network: member motes send their
// reports one hop to a cluster head, the head aggregates the round's
// reports into one packet and forwards it to the base station over the
// greedy multihop path. Aggregation is the classic WSN energy lever the
// paper's Sec. 4.3 alludes to ("information is real-time aggregated and
// stored in the base stations or in the cluster heads" [28]).
type Clusters struct {
	// Heads lists the cluster-head node IDs.
	Heads []int
	// HeadOf[i] is node i's cluster head (possibly i itself).
	HeadOf []int
	// AggregationFactor scales the marginal cost of each additional
	// member report inside the aggregate packet: packet bits =
	// ReportBits · (1 + factor·(reports−1)). 1 = no compression,
	// 0 = perfect aggregation. Default 0.25.
	AggregationFactor float64
}

// FormClusters builds k clusters with farthest-point head selection
// (deterministic: the first head is the node nearest the base station,
// each next head maximises its distance to the chosen heads) and
// nearest-head membership. It returns an error if k is out of range.
func (n *Network) FormClusters(k int) (*Clusters, error) {
	nn := len(n.cfg.Nodes)
	if k < 1 || k > nn {
		return nil, fmt.Errorf("wsnnet: cluster count %d out of range [1, %d]", k, nn)
	}
	heads := make([]int, 0, k)
	best, bestD := 0, math.Inf(1)
	for i, p := range n.cfg.Nodes {
		if d := p.Dist(n.cfg.BaseStation); d < bestD {
			best, bestD = i, d
		}
	}
	heads = append(heads, best)
	for len(heads) < k {
		cand, candD := -1, -1.0
		for i, p := range n.cfg.Nodes {
			dmin := math.Inf(1)
			for _, h := range heads {
				if d := p.Dist(n.cfg.Nodes[h]); d < dmin {
					dmin = d
				}
			}
			if dmin > candD {
				cand, candD = i, dmin
			}
		}
		heads = append(heads, cand)
	}
	headOf := make([]int, nn)
	for i, p := range n.cfg.Nodes {
		bh, bd := heads[0], math.Inf(1)
		for _, h := range heads {
			if d := p.Dist(n.cfg.Nodes[h]); d < bd {
				bh, bd = h, d
			}
		}
		headOf[i] = bh
	}
	return &Clusters{Heads: heads, HeadOf: headOf, AggregationFactor: 0.25}, nil
}

// CollectRoundClustered is CollectRound over the two-tier topology:
// members transmit one hop to their head (falling back to the direct
// greedy path when the head is out of comm range), heads aggregate the
// round's reports and forward one packet each. Per-hop loss applies to
// the member hop and to every hop of the head's path; losing the
// aggregate loses every report it carried — the aggregation trade-off.
func (n *Network) CollectRoundClustered(target geom.Point, k int, cl *Clusters, rng *randx.Stream) (*sampling.Group, RoundStats) {
	endSpan := obs.StartSpan(n.tracer, "wsnnet", "collect_round_clustered")
	if f := n.cfg.Faults; f != nil {
		f.BeginRound(n, n.engine.Now())
	}
	nn := len(n.cfg.Nodes)
	g := &sampling.Group{
		RSS:      make([][]float64, k),
		Reported: make([]bool, nn),
		Epsilon:  n.cfg.Epsilon,
	}
	for t := range g.RSS {
		g.RSS[t] = make([]float64, nn)
	}
	var stats RoundStats
	energyBefore := total(n.Energy)
	loss := rng.Split("hop-loss")

	// Phase 1: sensing + member hop to the head.
	type report struct {
		id      int
		samples []float64
	}
	arrived := make(map[int][]report) // head → reports that reached it
	var direct []report               // reports taking the fallback path
	for i, p := range n.cfg.Nodes {
		if n.cfg.SensingRange > 0 && p.Dist(target) > n.cfg.SensingRange {
			continue
		}
		stats.Heard++
		if !n.Alive[i] {
			stats.Dead++
			continue
		}
		nodeRng := rng.SplitN("node-noise", i)
		d := p.Dist(target)
		n.spend(i, sampleEnergy*float64(k))
		mean := n.cfg.Model.MeanRSS(d) + nodeRng.Normal(0, n.cfg.Model.SigmaSlow())
		sf := n.cfg.Model.SigmaFast()
		samples := make([]float64, k)
		for t := 0; t < k; t++ {
			samples[t] = mean + nodeRng.Normal(0, sf)
		}
		if f := n.cfg.Faults; f != nil {
			for t := range samples {
				samples[t] = f.PerturbRSS(i, samples[t])
			}
		}
		rep := report{id: i, samples: samples}
		head := cl.HeadOf[i]
		switch {
		case head == i && n.Alive[head]:
			arrived[head] = append(arrived[head], rep)
		case n.Alive[head] && p.Dist(n.cfg.Nodes[head]) <= n.cfg.CommRange:
			n.spend(i, txEnergy(n.cfg.ReportBits, p.Dist(n.cfg.Nodes[head])))
			n.spend(head, rxEnergy(n.cfg.ReportBits))
			if n.hopLost(i, head, loss) {
				stats.LostHops++
				continue
			}
			arrived[head] = append(arrived[head], rep)
		default:
			direct = append(direct, rep)
		}
	}

	deliver := func(rep report) {
		stats.Delivered++
		g.Reported[rep.id] = true
		for t := 0; t < k; t++ {
			g.RSS[t][rep.id] = rep.samples[t]
		}
	}

	// Under a contention MAC, members transmit on TDMA slots assigned by
	// their head (collision-free); only the heads' aggregate
	// transmissions contend with each other.
	headCollided := map[int]bool{}
	if n.cfg.ContentionSlots > 0 {
		mac := rng.Split("mac-heads")
		slots := make(map[int]int, len(cl.Heads))
		for _, head := range cl.Heads {
			if _, ok := arrived[head]; ok {
				slots[head] = mac.Intn(n.cfg.ContentionSlots)
			}
		}
		interference := 2 * n.cfg.CommRange
		for ai, a := range cl.Heads {
			for _, b := range cl.Heads[ai+1:] {
				sa, oka := slots[a]
				sb, okb := slots[b]
				if !oka || !okb || sa != sb {
					continue
				}
				if n.cfg.Nodes[a].Dist(n.cfg.Nodes[b]) <= interference {
					headCollided[a] = true
					headCollided[b] = true
				}
			}
		}
	}

	// Phase 2: heads forward aggregates along their greedy path.
	// Iterate heads in their stable Clusters order so the loss draws are
	// reproducible (map iteration order is randomised).
	for _, head := range cl.Heads {
		reps, ok := arrived[head]
		if !ok {
			continue
		}
		if headCollided[head] {
			n.spend(head, txEnergy(n.cfg.ReportBits, n.cfg.CommRange))
			stats.Collisions += len(reps)
			continue
		}
		path, routable := n.PathTo(head)
		if !routable {
			stats.Voids += len(reps)
			continue
		}
		bits := n.cfg.ReportBits * (1 + cl.AggregationFactor*float64(len(reps)-1))
		outcome, fwdLatency := n.forward(path, bits, loss)
		switch outcome {
		case fwdDeadRelay:
			stats.Voids += len(reps)
			stats.DeadRelays += len(reps)
			obs.Emit(n.tracer, "wsnnet", "report_dead_relay", float64(head))
			continue
		case fwdLostHop:
			stats.LostHops += len(reps)
			continue
		}
		latency := n.cfg.HopDelay + fwdLatency // member hop + head path
		if latency > stats.MaxLatency {
			stats.MaxLatency = latency
		}
		for _, rep := range reps {
			deliver(rep)
		}
	}

	// Phase 3: fallback reports go the direct greedy way.
	for _, rep := range direct {
		path, routable := n.PathTo(rep.id)
		if !routable {
			stats.Voids++
			continue
		}
		outcome, latency := n.forward(path, n.cfg.ReportBits, loss)
		switch outcome {
		case fwdDeadRelay:
			stats.Voids++
			stats.DeadRelays++
			obs.Emit(n.tracer, "wsnnet", "report_dead_relay", float64(rep.id))
			continue
		case fwdLostHop:
			stats.LostHops++
			continue
		}
		if latency > stats.MaxLatency {
			stats.MaxLatency = latency
		}
		deliver(rep)
	}

	if stats.MaxLatency > 0 {
		n.engine.ScheduleIn(stats.MaxLatency, func() {})
		n.engine.Run()
	}
	stats.EnergySpent = total(n.Energy) - energyBefore
	n.recordRound(stats)
	endSpan()
	return g, stats
}
