package wsnnet

import (
	"strings"
	"testing"

	"fttt/internal/geom"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/rf"
)

// TestCollectRoundTelemetry drives a lossy network with a registry and
// tracer attached and checks the substrate counters add up.
func TestCollectRoundTelemetry(t *testing.T) {
	nodes := []geom.Point{
		geom.Pt(10, 10), geom.Pt(30, 10), geom.Pt(50, 10),
		geom.Pt(10, 30), geom.Pt(30, 30), geom.Pt(50, 30),
	}
	reg := obs.NewRegistry()
	var ct obs.CountingTracer
	n, err := New(Config{
		Nodes:       nodes,
		BaseStation: geom.Pt(0, 0),
		Model:       rf.Default(),
		CommRange:   30,
		HopLoss:     0.4,
		HopDelay:    0.01,
		ReportBits:  256,
		Epsilon:     1,
		Obs:         reg,
		Tracer:      &ct,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(11)
	const rounds = 10
	var heard, delivered int
	for i := 0; i < rounds; i++ {
		g, st := n.CollectRound(geom.Pt(30, 20), 5, rng.SplitN("round", i))
		heard += st.Heard
		delivered += st.Delivered
		if g.NumReported() != st.Delivered {
			t.Fatalf("round %d: reported %d != delivered %d", i, g.NumReported(), st.Delivered)
		}
	}

	if got := reg.Counter("fttt_net_rounds_total").Value(); got != rounds {
		t.Errorf("rounds counter = %v, want %d", got, rounds)
	}
	if got := reg.Counter("fttt_net_reports_heard_total").Value(); got != float64(heard) {
		t.Errorf("heard counter = %v, want %d", got, heard)
	}
	if got := reg.Counter("fttt_net_reports_delivered_total").Value(); got != float64(delivered) {
		t.Errorf("delivered counter = %v, want %d", got, delivered)
	}
	if got := reg.Histogram("fttt_net_report_hops", nil).Count(); got != uint64(delivered) {
		t.Errorf("hops histogram count = %d, want %d", got, delivered)
	}
	if reg.Counter("fttt_net_energy_joules_total").Value() <= 0 {
		t.Error("no energy recorded")
	}
	// 40% hop loss over 10 rounds: some reports must have died, and the
	// tracer must have seen each as an event.
	lost := reg.Counter("fttt_net_reports_lost_total").Value()
	if lost <= 0 {
		t.Error("no lost reports under 40% hop loss")
	}
	if got := ct.Events("wsnnet", "report_lost"); float64(got) != lost {
		t.Errorf("tracer lost events = %d, metrics lost = %v", got, lost)
	}
	if got := ct.Spans("wsnnet", "collect_round"); got != rounds {
		t.Errorf("tracer saw %d round spans, want %d", got, rounds)
	}

	// Per-mote energy gauges mirror Network.Energy.
	var b strings.Builder
	if _, err := reg.Snapshot().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `fttt_net_mote_energy_joules{mote="0"}`) {
		t.Errorf("snapshot missing per-mote energy series:\n%s", b.String())
	}
}

// TestClusteredRoundTelemetry checks the clustered collection path
// records rounds too.
func TestClusteredRoundTelemetry(t *testing.T) {
	nodes := []geom.Point{
		geom.Pt(10, 10), geom.Pt(20, 10), geom.Pt(30, 10),
		geom.Pt(10, 20), geom.Pt(20, 20), geom.Pt(30, 20),
	}
	reg := obs.NewRegistry()
	n, err := New(Config{
		Nodes:       nodes,
		BaseStation: geom.Pt(0, 0),
		Model:       rf.Default(),
		CommRange:   25,
		ReportBits:  256,
		Epsilon:     1,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := n.FormClusters(2)
	if err != nil {
		t.Fatal(err)
	}
	n.CollectRoundClustered(geom.Pt(20, 15), 5, cl, randx.New(8))
	if got := reg.Counter("fttt_net_rounds_total").Value(); got != 1 {
		t.Errorf("rounds counter = %v, want 1", got)
	}
}
