package wsnnet

import (
	"math"
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
)

var fieldRect = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

func testConfig(n int) Config {
	d := deploy.Grid(fieldRect, n)
	return Config{
		Nodes:        d.Positions(),
		BaseStation:  geom.Pt(0, 0),
		Model:        rf.Default(),
		SensingRange: 40,
		CommRange:    45,
		HopDelay:     0.002,
		ReportBits:   256,
	}
}

func TestValidate(t *testing.T) {
	if err := testConfig(9).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	c := testConfig(9)
	c.Nodes = nil
	if err := c.Validate(); err == nil {
		t.Error("no nodes should fail")
	}
	c = testConfig(9)
	c.CommRange = 0
	if err := c.Validate(); err == nil {
		t.Error("zero CommRange should fail")
	}
	c = testConfig(9)
	c.HopLoss = 1
	if err := c.Validate(); err == nil {
		t.Error("HopLoss=1 should fail")
	}
	c = testConfig(9)
	c.HopDelay = -1
	if err := c.Validate(); err == nil {
		t.Error("negative delay should fail")
	}
}

func TestGreedyRoutingReachesBS(t *testing.T) {
	n, err := New(testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.cfg.Nodes {
		path, ok := n.PathTo(i)
		if !ok {
			t.Fatalf("node %d unroutable", i)
		}
		if path[0] != i {
			t.Fatalf("path should start at source, got %v", path)
		}
		// Distances to BS strictly decrease along the path.
		prev := math.Inf(1)
		for _, hop := range path {
			d := n.cfg.Nodes[hop].Dist(n.cfg.BaseStation)
			if d >= prev {
				t.Fatalf("non-decreasing distance along path %v", path)
			}
			prev = d
		}
	}
}

func TestRoutingDisconnected(t *testing.T) {
	// One node far from the BS with nothing in comm range → truly
	// disconnected; even the BFS rescue cannot save it.
	cfg := Config{
		Nodes:       []geom.Point{geom.Pt(5, 5), geom.Pt(90, 90)},
		BaseStation: geom.Pt(0, 0),
		Model:       rf.Default(),
		CommRange:   10,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.PathTo(0); !ok {
		t.Error("node 0 should route directly")
	}
	if _, ok := n.PathTo(1); ok {
		t.Error("node 1 should be disconnected")
	}
}

func TestGreedyVoidRescuedByBFS(t *testing.T) {
	// A "C"-shaped topology: node 3's only neighbor (node 2) is farther
	// from the BS, so greedy voids — the BFS rescue detours through the
	// full chain 3→2→1→0→BS.
	cfg := Config{
		Nodes: []geom.Point{
			geom.Pt(8, 10),  // 0: hears the BS
			geom.Pt(18, 14), // 1
			geom.Pt(30, 14), // 2: farther from BS than 3
			geom.Pt(30, 0),  // 3: greedy void
		},
		BaseStation: geom.Pt(0, 0),
		Model:       rf.Default(),
		CommRange:   15,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.nextHop[3] != -2 {
		t.Fatalf("node 3 should be a greedy void, nextHop=%d", n.nextHop[3])
	}
	path, ok := n.PathTo(3)
	if !ok {
		t.Fatal("BFS rescue should reach the BS")
	}
	want := []int{3, 2, 1, 0}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
	// Rounds from the rescued node actually deliver.
	g, stats := n.CollectRound(geom.Pt(30, 5), 3, randx.New(1))
	if stats.Voids != 0 {
		t.Errorf("no voids expected after rescue, got %d", stats.Voids)
	}
	if !g.Reported[3] {
		t.Error("node 3's report should arrive via the detour")
	}
}

func TestCollectRoundDeliversReports(t *testing.T) {
	n, err := New(testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	g, stats := n.CollectRound(geom.Pt(50, 50), 5, randx.New(1))
	if stats.Heard == 0 {
		t.Fatal("no node heard the target")
	}
	if stats.Delivered != stats.Heard {
		t.Errorf("lossless network delivered %d/%d", stats.Delivered, stats.Heard)
	}
	if g.NumReported() != stats.Delivered {
		t.Errorf("group reports %d != delivered %d", g.NumReported(), stats.Delivered)
	}
	if g.K() != 5 {
		t.Errorf("group K = %d", g.K())
	}
	if stats.EnergySpent <= 0 {
		t.Error("round should consume energy")
	}
	if stats.MaxLatency <= 0 {
		t.Error("multihop delivery should take time")
	}
	if n.Engine().Now() < stats.MaxLatency {
		t.Error("virtual clock should advance past the slowest delivery")
	}
}

func TestCollectRoundRespectsSensingRange(t *testing.T) {
	n, _ := New(testConfig(16))
	// Target at a corner: far nodes must not report.
	g, stats := n.CollectRound(geom.Pt(1, 1), 3, randx.New(2))
	if stats.Heard >= 16 {
		t.Errorf("all nodes heard a corner target with R=40")
	}
	for i, rep := range g.Reported {
		if rep && n.cfg.Nodes[i].Dist(geom.Pt(1, 1)) > 40 {
			t.Errorf("node %d reported from beyond sensing range", i)
		}
	}
}

func TestHopLossDropsReports(t *testing.T) {
	cfg := testConfig(16)
	cfg.HopLoss = 0.5
	n, _ := New(cfg)
	totalHeard, totalDelivered := 0, 0
	rng := randx.New(3)
	for round := 0; round < 50; round++ {
		_, stats := n.CollectRound(geom.Pt(50, 50), 3, rng.SplitN("r", round))
		totalHeard += stats.Heard
		totalDelivered += stats.Delivered
	}
	if totalDelivered >= totalHeard {
		t.Errorf("with 50%% hop loss, delivered %d of %d heard", totalDelivered, totalHeard)
	}
	if totalDelivered == 0 {
		t.Error("some reports should still get through")
	}
}

func TestKillAndRevive(t *testing.T) {
	n, _ := New(testConfig(9))
	if n.AliveCount() != 9 {
		t.Fatalf("AliveCount = %d", n.AliveCount())
	}
	n.Kill(4) // centre node
	if n.AliveCount() != 8 {
		t.Errorf("AliveCount after kill = %d", n.AliveCount())
	}
	g, stats := n.CollectRound(geom.Pt(50, 50), 3, randx.New(4))
	if g.Reported[4] {
		t.Error("dead node reported")
	}
	if stats.Dead == 0 {
		t.Error("round should count the dead sensing node")
	}
	n.Revive(4)
	if n.AliveCount() != 9 {
		t.Errorf("AliveCount after revive = %d", n.AliveCount())
	}
}

func TestBatteryExhaustion(t *testing.T) {
	cfg := testConfig(9)
	cfg.InitialEnergy = 1e-6 // tiny battery: dies within a few rounds
	n, _ := New(cfg)
	rng := randx.New(5)
	for round := 0; round < 200 && n.AliveCount() > 0; round++ {
		n.CollectRound(geom.Pt(50, 50), 3, rng.SplitN("r", round))
	}
	if n.AliveCount() == 9 {
		t.Error("tiny batteries should have exhausted some nodes")
	}
	// A dead node must not revive.
	for i, alive := range n.Alive {
		if !alive {
			n.Revive(i)
			if n.Alive[i] {
				t.Error("Revive should not resurrect an exhausted battery")
			}
			break
		}
	}
}

func TestEnergyAccounting(t *testing.T) {
	// Direct transmission costs grow with distance squared.
	near := txEnergy(256, 10)
	far := txEnergy(256, 40)
	if far <= near {
		t.Error("TX energy should grow with distance")
	}
	if rxEnergy(256) <= 0 {
		t.Error("RX energy should be positive")
	}
	// Farther TX costs at least the amp-term ratio.
	if (far-near)/near < 1 {
		t.Errorf("energy ratio too small: near=%v far=%v", near, far)
	}
}

func TestHopCounts(t *testing.T) {
	n, _ := New(testConfig(16))
	h0, ok := n.HopCount(0) // nearest the BS corner
	if !ok || h0 != 1 {
		t.Errorf("corner node hops = %d,%v, want 1,true", h0, ok)
	}
	h15, ok := n.HopCount(15) // farthest corner
	if !ok || h15 < 2 {
		t.Errorf("far node hops = %d,%v, want ≥2", h15, ok)
	}
	if m := n.MeanHopCount(); m < 1 || math.IsNaN(m) {
		t.Errorf("MeanHopCount = %v", m)
	}
}

func TestCollectRoundFocusedSleepsDistantNodes(t *testing.T) {
	n, _ := New(testConfig(16))
	target := geom.Pt(50, 50)
	// Focus on the target with a tight radius: distant in-range nodes
	// must sleep.
	gFocused, stFocused := n.CollectRoundFocused(target, target, 20, 3, randx.New(11))
	if stFocused.Asleep == 0 {
		t.Fatal("expected some nodes asleep with radius 20")
	}
	for i, rep := range gFocused.Reported {
		if rep && n.cfg.Nodes[i].Dist(target) > 20 {
			t.Errorf("node %d reported from outside the wake zone", i)
		}
	}
	// A huge radius degenerates to the always-on round.
	_, stAll := n.CollectRoundFocused(target, target, 1000, 3, randx.New(11))
	if stAll.Asleep != 0 {
		t.Errorf("radius 1000 should wake everyone, %d asleep", stAll.Asleep)
	}
}

func TestFocusedRoundSavesEnergy(t *testing.T) {
	run := func(radius float64) float64 {
		n, _ := New(testConfig(25))
		rng := randx.New(12)
		for round := 0; round < 30; round++ {
			n.CollectRoundFocused(geom.Pt(50, 50), geom.Pt(50, 50), radius, 5, rng.SplitN("r", round))
		}
		return total(n.Energy)
	}
	if focused, all := run(25), run(1000); focused >= all {
		t.Errorf("focused energy %.3e should be below always-on %.3e", focused, all)
	}
}

func TestSamplingEnergyAccounted(t *testing.T) {
	cfg := testConfig(9)
	cfg.HopLoss = 0
	n, _ := New(cfg)
	_, st := n.CollectRound(geom.Pt(50, 50), 5, randx.New(13))
	// Each sensing node spends at least k·sampleEnergy.
	if st.EnergySpent < float64(st.Delivered)*5*sampleEnergy {
		t.Errorf("energy %.3e below sensing floor", st.EnergySpent)
	}
}

func TestCollectRoundReproducible(t *testing.T) {
	run := func() []bool {
		n, _ := New(testConfig(16))
		g, _ := n.CollectRound(geom.Pt(42, 58), 5, randx.New(6))
		return g.Reported
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("CollectRound not reproducible")
		}
	}
}
