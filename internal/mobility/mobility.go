// Package mobility generates target motion for tracking experiments.
//
// The paper's simulations move the target with the random waypoint model
// (Table 1: velocity 1-5 m/s, 60 s runs); the outdoor system walks a
// square-wave "⊔"-shaped trace at 1-5 m/s (Fig. 13). Both are provided,
// along with simple waypoint paths, as Model implementations that can be
// sampled at the network's sampling rate λ.
package mobility

import (
	"fmt"
	"math"

	"fttt/internal/geom"
	"fttt/internal/randx"
)

// Model yields the target position as a function of time.
type Model interface {
	// At returns the target position at time t seconds (t >= 0).
	At(t float64) geom.Point
}

// TracePoint is one timestamped true target position.
type TracePoint struct {
	T   float64
	Pos geom.Point
}

// Sample evaluates the model every 1/rate seconds over [0, duration] and
// returns the resulting trace (duration·rate + 1 points).
func Sample(m Model, duration, rate float64) []TracePoint {
	if rate <= 0 {
		panic(fmt.Sprintf("mobility: non-positive sampling rate %v", rate))
	}
	steps := int(math.Floor(duration*rate + 1e-9))
	trace := make([]TracePoint, 0, steps+1)
	for k := 0; k <= steps; k++ {
		t := float64(k) / rate
		trace = append(trace, TracePoint{T: t, Pos: m.At(t)})
	}
	return trace
}

// leg is one constant-velocity segment of a precomputed motion.
type leg struct {
	start geom.Point
	end   geom.Point
	t0    float64 // departure time
	t1    float64 // arrival time (t1 >= t0; equality means a pause point)
}

// path is a piecewise-linear motion through timed legs.
type path struct {
	legs []leg
}

func (p *path) At(t float64) geom.Point {
	if len(p.legs) == 0 {
		return geom.Point{}
	}
	if t <= p.legs[0].t0 {
		return p.legs[0].start
	}
	for _, l := range p.legs {
		if t <= l.t1 {
			if l.t1 == l.t0 {
				return l.end
			}
			f := (t - l.t0) / (l.t1 - l.t0)
			return geom.Segment{A: l.start, B: l.end}.At(f)
		}
	}
	return p.legs[len(p.legs)-1].end
}

// RandomWaypoint builds the random waypoint model of [30] as used in
// Sec. 7: the target repeatedly picks a uniform destination in the field
// and a uniform speed in [vMin, vMax], travels there in a straight line,
// and immediately picks the next waypoint (no pause time, matching the
// continuous traces of Fig. 10). Legs are precomputed to cover duration
// seconds, so At is deterministic and O(log legs) amortised.
func RandomWaypoint(field geom.Rect, vMin, vMax, duration float64, rng *randx.Stream) Model {
	if vMin <= 0 || vMax < vMin {
		panic(fmt.Sprintf("mobility: invalid speed range [%v, %v]", vMin, vMax))
	}
	p := &path{}
	cur := geom.Pt(
		rng.Uniform(field.Min.X, field.Max.X),
		rng.Uniform(field.Min.Y, field.Max.Y),
	)
	t := 0.0
	for t < duration {
		dst := geom.Pt(
			rng.Uniform(field.Min.X, field.Max.X),
			rng.Uniform(field.Min.Y, field.Max.Y),
		)
		v := rng.Uniform(vMin, vMax)
		dt := cur.Dist(dst) / v
		if dt < 1e-9 {
			continue
		}
		p.legs = append(p.legs, leg{start: cur, end: dst, t0: t, t1: t + dt})
		cur = dst
		t += dt
	}
	return p
}

// Waypoints builds a constant-speed piecewise-linear motion through the
// given points. It panics for fewer than two points or non-positive speed.
func Waypoints(pts []geom.Point, speed float64) Model {
	if len(pts) < 2 {
		panic("mobility: need at least two waypoints")
	}
	if speed <= 0 {
		panic(fmt.Sprintf("mobility: non-positive speed %v", speed))
	}
	p := &path{}
	t := 0.0
	for i := 1; i < len(pts); i++ {
		dt := pts[i-1].Dist(pts[i]) / speed
		p.legs = append(p.legs, leg{start: pts[i-1], end: pts[i], t0: t, t1: t + dt})
		t += dt
	}
	return p
}

// VariableSpeedWaypoints is Waypoints with a per-leg speed drawn uniformly
// from [vMin, vMax] — the outdoor target of Fig. 13 walked at "changeable
// velocity in 1~5 m/s".
func VariableSpeedWaypoints(pts []geom.Point, vMin, vMax float64, rng *randx.Stream) Model {
	if len(pts) < 2 {
		panic("mobility: need at least two waypoints")
	}
	if vMin <= 0 || vMax < vMin {
		panic(fmt.Sprintf("mobility: invalid speed range [%v, %v]", vMin, vMax))
	}
	p := &path{}
	t := 0.0
	for i := 1; i < len(pts); i++ {
		v := rng.Uniform(vMin, vMax)
		dt := pts[i-1].Dist(pts[i]) / v
		p.legs = append(p.legs, leg{start: pts[i-1], end: pts[i], t0: t, t1: t + dt})
		t += dt
	}
	return p
}

// SquareWave returns the "⊔"-shaped outdoor trace of Fig. 13 as waypoints:
// starting at the top-left of a margin-inset box, the target walks down
// the left side, across the bottom, and up the right side.
func SquareWave(field geom.Rect, margin float64) []geom.Point {
	return []geom.Point{
		geom.Pt(field.Min.X+margin, field.Max.Y-margin),
		geom.Pt(field.Min.X+margin, field.Min.Y+margin),
		geom.Pt(field.Max.X-margin, field.Min.Y+margin),
		geom.Pt(field.Max.X-margin, field.Max.Y-margin),
	}
}

// Static returns a model that never moves — useful for one-shot
// localization tests.
func Static(p geom.Point) Model { return staticModel{p} }

type staticModel struct{ p geom.Point }

func (s staticModel) At(float64) geom.Point { return s.p }

// Duration returns the time at which a Waypoints/VariableSpeedWaypoints/
// RandomWaypoint model reaches its final waypoint, and ok=true; for other
// models it returns 0, false.
func Duration(m Model) (float64, bool) {
	p, ok := m.(*path)
	if !ok || len(p.legs) == 0 {
		return 0, false
	}
	return p.legs[len(p.legs)-1].t1, true
}
