package mobility

import (
	"fmt"
	"math"

	"fttt/internal/geom"
	"fttt/internal/randx"
)

// RandomWaypointPause is the classic random waypoint model with pause
// times: on arriving at each waypoint the target rests for a uniform
// pause in [0, maxPause] before moving on. Pauses stress the trackers
// differently from continuous motion — a stationary target sits in one
// face and exposes pure one-shot localization error.
func RandomWaypointPause(field geom.Rect, vMin, vMax, maxPause, duration float64, rng *randx.Stream) Model {
	if vMin <= 0 || vMax < vMin {
		panic(fmt.Sprintf("mobility: invalid speed range [%v, %v]", vMin, vMax))
	}
	if maxPause < 0 {
		panic(fmt.Sprintf("mobility: negative max pause %v", maxPause))
	}
	p := &path{}
	cur := geom.Pt(
		rng.Uniform(field.Min.X, field.Max.X),
		rng.Uniform(field.Min.Y, field.Max.Y),
	)
	t := 0.0
	for t < duration {
		dst := geom.Pt(
			rng.Uniform(field.Min.X, field.Max.X),
			rng.Uniform(field.Min.Y, field.Max.Y),
		)
		v := rng.Uniform(vMin, vMax)
		dt := cur.Dist(dst) / v
		if dt < 1e-9 {
			continue
		}
		p.legs = append(p.legs, leg{start: cur, end: dst, t0: t, t1: t + dt})
		t += dt
		cur = dst
		if maxPause > 0 {
			pause := rng.Uniform(0, maxPause)
			if pause > 1e-9 {
				p.legs = append(p.legs, leg{start: cur, end: cur, t0: t, t1: t + pause})
				t += pause
			}
		}
	}
	return p
}

// GaussMarkov is the Gauss-Markov mobility model: speed and direction
// evolve as mean-reverting AR(1) processes, producing smooth, temporally
// correlated motion (alpha → 1 is nearly straight-line, alpha → 0 is
// Brownian). The trajectory is precomputed at the given step so At is
// deterministic; the target reflects off the field boundary.
type GaussMarkov struct {
	samples []geom.Point
	step    float64
}

// NewGaussMarkov precomputes a Gauss-Markov trajectory of the given
// duration. meanSpeed is the long-run speed (m/s), alpha ∈ [0, 1) the
// memory parameter, step the integration step in seconds.
func NewGaussMarkov(field geom.Rect, meanSpeed, alpha, duration, step float64, rng *randx.Stream) (*GaussMarkov, error) {
	if meanSpeed <= 0 {
		return nil, fmt.Errorf("mobility: mean speed must be positive, got %v", meanSpeed)
	}
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("mobility: alpha must be in [0,1), got %v", alpha)
	}
	if step <= 0 || duration <= 0 {
		return nil, fmt.Errorf("mobility: step and duration must be positive")
	}
	n := int(duration/step) + 2
	g := &GaussMarkov{samples: make([]geom.Point, 0, n), step: step}

	pos := geom.Pt(
		rng.Uniform(field.Min.X, field.Max.X),
		rng.Uniform(field.Min.Y, field.Max.Y),
	)
	speed := meanSpeed
	dir := rng.Uniform(0, 2*math.Pi)
	meanDir := dir
	speedSigma := meanSpeed * 0.3
	dirSigma := 0.5
	sq := math.Sqrt(1 - alpha*alpha)
	g.samples = append(g.samples, pos)
	for i := 1; i < n; i++ {
		speed = alpha*speed + (1-alpha)*meanSpeed + sq*rng.Normal(0, speedSigma)
		if speed < 0 {
			speed = 0
		}
		dir = alpha*dir + (1-alpha)*meanDir + sq*rng.Normal(0, dirSigma)
		pos = pos.Add(geom.Vec{
			X: speed * math.Cos(dir) * step,
			Y: speed * math.Sin(dir) * step,
		})
		// Reflect at the boundary, flipping direction and its mean so
		// the process heads back into the field.
		if pos.X < field.Min.X || pos.X > field.Max.X {
			dir = math.Pi - dir
			meanDir = math.Pi - meanDir
			pos = field.Clamp(pos)
		}
		if pos.Y < field.Min.Y || pos.Y > field.Max.Y {
			dir = -dir
			meanDir = -meanDir
			pos = field.Clamp(pos)
		}
		g.samples = append(g.samples, pos)
	}
	return g, nil
}

// At implements Model by linear interpolation between precomputed steps.
func (g *GaussMarkov) At(t float64) geom.Point {
	if t <= 0 {
		return g.samples[0]
	}
	pos := t / g.step
	i := int(pos)
	if i >= len(g.samples)-1 {
		return g.samples[len(g.samples)-1]
	}
	frac := pos - float64(i)
	a, b := g.samples[i], g.samples[i+1]
	return geom.Pt(a.X+frac*(b.X-a.X), a.Y+frac*(b.Y-a.Y))
}
