package mobility

import (
	"math"
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
)

func TestRandomWaypointPauseStaysInField(t *testing.T) {
	m := RandomWaypointPause(field, 1, 5, 10, 120, randx.New(1))
	for _, tp := range Sample(m, 120, 5) {
		if !field.Contains(tp.Pos) {
			t.Fatalf("t=%v position %v outside field", tp.T, tp.Pos)
		}
	}
}

func TestRandomWaypointPauseActuallyPauses(t *testing.T) {
	m := RandomWaypointPause(field, 1, 5, 20, 200, randx.New(2))
	trace := Sample(m, 200, 10)
	stationary := 0
	for i := 1; i < len(trace); i++ {
		if trace[i].Pos.Dist(trace[i-1].Pos) < 1e-9 {
			stationary++
		}
	}
	if stationary == 0 {
		t.Error("expected stationary intervals with maxPause=20")
	}
}

func TestRandomWaypointPauseZeroPauseMoves(t *testing.T) {
	m := RandomWaypointPause(field, 1, 5, 0, 60, randx.New(3))
	trace := Sample(m, 60, 10)
	stationary := 0
	for i := 1; i < len(trace); i++ {
		if trace[i].Pos.Dist(trace[i-1].Pos) < 1e-9 {
			stationary++
		}
	}
	// Only waypoint-corner coincidences may look stationary; essentially
	// none should.
	if stationary > len(trace)/50 {
		t.Errorf("%d stationary samples with zero pause", stationary)
	}
}

func TestRandomWaypointPausePanics(t *testing.T) {
	for _, c := range []struct{ vmin, vmax, pause float64 }{
		{0, 5, 1}, {5, 1, 1}, {1, 5, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("params %+v should panic", c)
				}
			}()
			RandomWaypointPause(field, c.vmin, c.vmax, c.pause, 10, randx.New(1))
		}()
	}
}

func TestGaussMarkovValidation(t *testing.T) {
	rng := randx.New(4)
	if _, err := NewGaussMarkov(field, 0, 0.8, 60, 0.1, rng); err == nil {
		t.Error("zero speed should fail")
	}
	if _, err := NewGaussMarkov(field, 3, 1, 60, 0.1, rng); err == nil {
		t.Error("alpha=1 should fail")
	}
	if _, err := NewGaussMarkov(field, 3, -0.1, 60, 0.1, rng); err == nil {
		t.Error("alpha<0 should fail")
	}
	if _, err := NewGaussMarkov(field, 3, 0.8, 60, 0, rng); err == nil {
		t.Error("zero step should fail")
	}
	if _, err := NewGaussMarkov(field, 3, 0.8, 60, 0.1, rng); err != nil {
		t.Errorf("valid GM rejected: %v", err)
	}
}

func TestGaussMarkovStaysInField(t *testing.T) {
	m, err := NewGaussMarkov(field, 3, 0.8, 120, 0.1, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range Sample(m, 120, 10) {
		if !field.Contains(tp.Pos) {
			t.Fatalf("t=%v position %v outside field", tp.T, tp.Pos)
		}
	}
}

func TestGaussMarkovMovesAtRoughlyMeanSpeed(t *testing.T) {
	m, _ := NewGaussMarkov(field, 3, 0.9, 120, 0.1, randx.New(6))
	trace := Sample(m, 120, 10)
	var dist float64
	for i := 1; i < len(trace); i++ {
		dist += trace[i].Pos.Dist(trace[i-1].Pos)
	}
	speed := dist / 120
	if speed < 1 || speed > 6 {
		t.Errorf("empirical speed %.2f m/s far from mean 3", speed)
	}
}

func TestGaussMarkovSmootherThanBrownian(t *testing.T) {
	// Higher alpha → smoother heading: measure mean absolute turn angle.
	turniness := func(alpha float64) float64 {
		m, _ := NewGaussMarkov(field, 3, alpha, 120, 0.1, randx.New(7))
		trace := Sample(m, 120, 2)
		var sum float64
		cnt := 0
		for i := 2; i < len(trace); i++ {
			v1 := trace[i-1].Pos.Sub(trace[i-2].Pos)
			v2 := trace[i].Pos.Sub(trace[i-1].Pos)
			if v1.Len() < 1e-9 || v2.Len() < 1e-9 {
				continue
			}
			d := math.Abs(math.Atan2(v1.Cross(v2), v1.Dot(v2)))
			sum += d
			cnt++
		}
		return sum / float64(cnt)
	}
	if smooth, rough := turniness(0.95), turniness(0.1); smooth >= rough {
		t.Errorf("α=0.95 turniness %.3f should be below α=0.1 %.3f", smooth, rough)
	}
}

func TestGaussMarkovClampsTime(t *testing.T) {
	m, _ := NewGaussMarkov(field, 3, 0.8, 10, 0.1, randx.New(8))
	if p := m.At(-5); !field.Contains(p) {
		t.Error("At(-5) invalid")
	}
	if p := m.At(1e6); !field.Contains(p) {
		t.Error("At(1e6) invalid")
	}
	if m.At(1e6) != m.At(1e7) {
		t.Error("times beyond the horizon should pin to the final sample")
	}
}

func TestGaussMarkovDeterministic(t *testing.T) {
	a, _ := NewGaussMarkov(field, 3, 0.8, 30, 0.1, randx.New(9))
	b, _ := NewGaussMarkov(field, 3, 0.8, 30, 0.1, randx.New(9))
	for _, tt := range []float64{0, 7.3, 29.9} {
		if a.At(tt) != b.At(tt) {
			t.Fatal("GM not reproducible")
		}
	}
}

func TestGeomPointOnSegmentInterp(t *testing.T) {
	// Interpolation sanity for the GM At: halfway between two samples.
	m := &GaussMarkov{samples: []geom.Point{geom.Pt(0, 0), geom.Pt(2, 4)}, step: 1}
	if got := m.At(0.5); !got.Eq(geom.Pt(1, 2)) {
		t.Errorf("At(0.5) = %v, want (1,2)", got)
	}
}
