package mobility

import (
	"math"
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
)

var field = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

func TestRandomWaypointStaysInField(t *testing.T) {
	m := RandomWaypoint(field, 1, 5, 60, randx.New(1))
	for _, tp := range Sample(m, 60, 10) {
		if !field.Contains(tp.Pos) {
			t.Fatalf("t=%v position %v outside field", tp.T, tp.Pos)
		}
	}
}

func TestRandomWaypointSpeedBounds(t *testing.T) {
	m := RandomWaypoint(field, 1, 5, 60, randx.New(2))
	trace := Sample(m, 60, 100)
	for i := 1; i < len(trace); i++ {
		dt := trace[i].T - trace[i-1].T
		v := trace[i].Pos.Dist(trace[i-1].Pos) / dt
		// A sampling interval can straddle a waypoint corner, where the
		// chord is shorter than the path, so only the upper bound is
		// strict (plus slack for the corner cut).
		if v > 5+1e-6 {
			t.Fatalf("speed %v exceeds vMax at t=%v", v, trace[i].T)
		}
	}
}

func TestRandomWaypointReproducible(t *testing.T) {
	a := RandomWaypoint(field, 1, 5, 30, randx.New(7))
	b := RandomWaypoint(field, 1, 5, 30, randx.New(7))
	for _, tt := range []float64{0, 1.5, 10, 29.9} {
		if a.At(tt) != b.At(tt) {
			t.Fatalf("models diverge at t=%v", tt)
		}
	}
}

func TestRandomWaypointMoves(t *testing.T) {
	m := RandomWaypoint(field, 1, 5, 60, randx.New(3))
	if m.At(0).Dist(m.At(30)) < 1 {
		t.Error("target barely moved in 30 s")
	}
}

func TestRandomWaypointPanics(t *testing.T) {
	for _, c := range []struct{ lo, hi float64 }{{0, 5}, {-1, 5}, {5, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("speed range [%v,%v] should panic", c.lo, c.hi)
				}
			}()
			RandomWaypoint(field, c.lo, c.hi, 10, randx.New(1))
		}()
	}
}

func TestWaypointsTiming(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10)}
	m := Waypoints(pts, 2) // 10 m at 2 m/s per leg → 5 s per leg
	if got := m.At(0); !got.Eq(pts[0]) {
		t.Errorf("At(0) = %v", got)
	}
	if got := m.At(2.5); !got.Eq(geom.Pt(5, 0)) {
		t.Errorf("At(2.5) = %v, want (5,0)", got)
	}
	if got := m.At(5); !got.Eq(geom.Pt(10, 0)) {
		t.Errorf("At(5) = %v, want (10,0)", got)
	}
	if got := m.At(7.5); !got.Eq(geom.Pt(10, 5)) {
		t.Errorf("At(7.5) = %v, want (10,5)", got)
	}
	// Clamps beyond the final waypoint and before t=0.
	if got := m.At(100); !got.Eq(pts[2]) {
		t.Errorf("At(100) = %v, want final waypoint", got)
	}
	if got := m.At(-3); !got.Eq(pts[0]) {
		t.Errorf("At(-3) = %v, want first waypoint", got)
	}
	if d, ok := Duration(m); !ok || math.Abs(d-10) > 1e-9 {
		t.Errorf("Duration = %v,%v, want 10,true", d, ok)
	}
}

func TestWaypointsPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("single waypoint should panic")
			}
		}()
		Waypoints([]geom.Point{geom.Pt(0, 0)}, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero speed should panic")
			}
		}()
		Waypoints([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0)
	}()
}

func TestVariableSpeedWaypoints(t *testing.T) {
	pts := SquareWave(field, 20)
	m := VariableSpeedWaypoints(pts, 1, 5, randx.New(4))
	d, ok := Duration(m)
	if !ok {
		t.Fatal("Duration should be known")
	}
	// Path length is 3 legs of 60 m = 180 m; at 1-5 m/s duration is
	// between 36 and 180 s.
	if d < 36 || d > 180 {
		t.Errorf("duration %v outside [36,180]", d)
	}
	if got := m.At(0); !got.Eq(pts[0]) {
		t.Errorf("start = %v, want %v", got, pts[0])
	}
	if got := m.At(d + 1); !got.Eq(pts[3]) {
		t.Errorf("end = %v, want %v", got, pts[3])
	}
}

func TestSquareWaveShape(t *testing.T) {
	pts := SquareWave(field, 20)
	want := []geom.Point{
		geom.Pt(20, 80), geom.Pt(20, 20), geom.Pt(80, 20), geom.Pt(80, 80),
	}
	if len(pts) != 4 {
		t.Fatalf("got %d waypoints", len(pts))
	}
	for i := range want {
		if !pts[i].Eq(want[i]) {
			t.Errorf("waypoint %d = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestStatic(t *testing.T) {
	m := Static(geom.Pt(3, 4))
	for _, tt := range []float64{0, 5, 1e6} {
		if got := m.At(tt); !got.Eq(geom.Pt(3, 4)) {
			t.Errorf("Static.At(%v) = %v", tt, got)
		}
	}
	if _, ok := Duration(m); ok {
		t.Error("Static has no duration")
	}
}

func TestSampleCountAndSpacing(t *testing.T) {
	m := Static(geom.Pt(0, 0))
	trace := Sample(m, 60, 10)
	if len(trace) != 601 {
		t.Fatalf("got %d samples, want 601", len(trace))
	}
	for i := 1; i < len(trace); i++ {
		if math.Abs(trace[i].T-trace[i-1].T-0.1) > 1e-9 {
			t.Fatalf("uneven sampling at %d", i)
		}
	}
}

func TestSamplePanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rate 0 should panic")
		}
	}()
	Sample(Static(geom.Pt(0, 0)), 10, 0)
}
