package desim

import (
	"math"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var e Engine
	var order []float64
	for _, at := range []float64{3, 1, 2, 5, 4} {
		at := at
		e.Schedule(at, func() { order = append(order, at) })
	}
	e.Run()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("events out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d events, want 5", len(order))
	}
	if e.Processed != 5 {
		t.Errorf("Processed = %d", e.Processed)
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	var e Engine
	var seen []float64
	e.Schedule(2, func() { seen = append(seen, e.Now()) })
	e.Schedule(7, func() { seen = append(seen, e.Now()) })
	e.Run()
	if seen[0] != 2 || seen[1] != 7 {
		t.Errorf("clock values %v, want [2 7]", seen)
	}
	if e.Now() != 7 {
		t.Errorf("final Now = %v, want 7", e.Now())
	}
}

func TestCascadedScheduling(t *testing.T) {
	var e Engine
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.ScheduleIn(1, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != 4 {
		t.Errorf("Now = %v, want 4", e.Now())
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	var e Engine
	ran := 0
	e.Schedule(1, func() { ran++ })
	e.Schedule(10, func() { ran++ })
	e.RunUntil(5)
	if ran != 1 {
		t.Errorf("ran %d events before horizon, want 1", ran)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v, want horizon 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntil(20)
	if ran != 2 {
		t.Errorf("ran %d events total, want 2", ran)
	}
}

func TestRunUntilInfiniteHorizon(t *testing.T) {
	var e Engine
	ran := false
	e.Schedule(3, func() { ran = true })
	e.RunUntil(math.Inf(1))
	if !ran {
		t.Error("event did not run")
	}
	if math.IsInf(e.Now(), 1) {
		t.Error("clock should stay at last event, not jump to +Inf")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	e.ScheduleIn(-1, func() {})
}

func TestStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue should be false")
	}
}

func TestManyEventsStayOrdered(t *testing.T) {
	var e Engine
	// Pseudo-random insertion order, deterministic.
	x := uint32(12345)
	var last float64 = -1
	bad := false
	for i := 0; i < 5000; i++ {
		x = x*1664525 + 1013904223
		at := float64(x%100000) / 100
		e.Schedule(at, func() {
			if e.Now() < last {
				bad = true
			}
			last = e.Now()
		})
	}
	e.Run()
	if bad {
		t.Error("clock ran backwards")
	}
	if e.Processed != 5000 {
		t.Errorf("Processed = %d", e.Processed)
	}
}
