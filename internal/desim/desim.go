// Package desim is a small discrete-event simulation engine: a virtual
// clock and a priority queue of timestamped events. The wsnnet substrate
// uses it to model sampling rounds, per-hop packet forwarding delays and
// losses of the outdoor system reproduction (Fig. 13).
package desim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. Fn runs at virtual time At; it may
// schedule further events.
type Event struct {
	At float64
	Fn func()

	seq int // tie-break: FIFO among equal timestamps
}

// Engine owns the virtual clock and the pending event queue. The zero
// value is ready to use.
type Engine struct {
	now    float64
	queue  eventHeap
	nextID int
	// Processed counts the events executed so far.
	Processed int
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule enqueues fn to run at absolute virtual time at. Scheduling in
// the past panics — it would silently reorder causality.
func (e *Engine) Schedule(at float64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("desim: scheduling at %v before now %v", at, e.now))
	}
	e.nextID++
	heap.Push(&e.queue, &Event{At: at, Fn: fn, seq: e.nextID})
}

// ScheduleIn enqueues fn after a relative delay (>= 0).
func (e *Engine) ScheduleIn(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("desim: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.Processed++
	ev.Fn()
	return true
}

// RunUntil executes events in order until the queue is empty or the next
// event is later than horizon. The clock ends at min(horizon, last event
// time); it never runs backwards.
func (e *Engine) RunUntil(horizon float64) {
	for len(e.queue) > 0 && e.queue[0].At <= horizon {
		e.Step()
	}
	if e.now < horizon && !math.IsInf(horizon, 1) {
		e.now = horizon
	}
}

// Run executes all pending events (including ones scheduled while
// running). Use RunUntil for open-ended simulations.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// eventHeap orders events by timestamp, then FIFO.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
