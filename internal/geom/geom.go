// Package geom provides the 2-D computational geometry used by the FTTT
// tracker: points, vectors, segments, circles, perpendicular bisectors and
// the Apollonius circles that bound a sensor pair's uncertain area.
//
// All coordinates are in metres in the monitor field's frame, X to the
// right and Y up, matching Fig. 6 of the paper.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used by approximate geometric comparisons.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p translated by the vector v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Vec is a displacement in the plane.
type Vec struct {
	X, Y float64
}

// Add returns the vector sum v+w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns the vector difference v-w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the 2-D cross product (z-component) of v and w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Len2 returns the squared length of v.
func (v Vec) Len2() float64 { return v.X*v.X + v.Y*v.Y }

// Unit returns v normalised to length 1. The zero vector is returned
// unchanged.
func (v Vec) Unit() Vec {
	l := v.Len()
	if l <= Eps {
		return Vec{}
	}
	return Vec{v.X / l, v.Y / l}
}

// Perp returns v rotated 90° counter-clockwise.
func (v Vec) Perp() Vec { return Vec{-v.Y, v.X} }

// Angle returns the angle of v in radians in (-π, π].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Rect is an axis-aligned rectangle, the monitor field in particular.
type Rect struct {
	Min, Max Point
}

// NewRect builds a rectangle from two opposite corners in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X-Eps && p.X <= r.Max.X+Eps &&
		p.Y >= r.Min.Y-Eps && p.Y <= r.Max.Y+Eps
}

// Clamp returns the point of r nearest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Center returns the centre point of r.
func (r Rect) Center() Point { return r.Min.Mid(r.Max) }

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Len returns the segment's length.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// At returns the point A + t*(B-A); t in [0,1] stays on the segment.
func (s Segment) At(t float64) Point {
	return Point{s.A.X + t*(s.B.X-s.A.X), s.A.Y + t*(s.B.Y-s.A.Y)}
}

// DistTo returns the distance from p to the closest point of the segment.
func (s Segment) DistTo(p Point) float64 {
	ab := s.B.Sub(s.A)
	l2 := ab.Len2()
	if l2 <= Eps {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(ab) / l2
	t = math.Min(math.Max(t, 0), 1)
	return p.Dist(s.At(t))
}

// Circle is a circle with centre C and radius R.
type Circle struct {
	C Point
	R float64
}

// Contains reports whether p is strictly inside the circle.
func (c Circle) Contains(p Point) bool { return c.C.Dist(p) < c.R-Eps }

// On reports whether p lies on the circle within tol.
func (c Circle) On(p Point, tol float64) bool {
	return math.Abs(c.C.Dist(p)-c.R) <= tol
}

// PointAt returns the point of the circle at angle theta (radians).
func (c Circle) PointAt(theta float64) Point {
	return Point{c.C.X + c.R*math.Cos(theta), c.C.Y + c.R*math.Sin(theta)}
}

// Line is the infinite line a*x + b*y = c with (a,b) normalised.
type Line struct {
	A, B, C float64
}

// LineThrough returns the line through two distinct points.
func LineThrough(p, q Point) Line {
	d := q.Sub(p)
	n := d.Perp().Unit()
	return Line{A: n.X, B: n.Y, C: n.X*p.X + n.Y*p.Y}
}

// Bisector returns the perpendicular bisector of segment pq, oriented so
// that Side(p) > 0: points on the positive side are nearer to p.
func Bisector(p, q Point) Line {
	m := p.Mid(q)
	n := p.Sub(q).Unit() // normal points toward p
	return Line{A: n.X, B: n.Y, C: n.X*m.X + n.Y*m.Y}
}

// Side returns the signed distance from p to the line (positive on the
// side the normal points to).
func (l Line) Side(p Point) float64 { return l.A*p.X + l.B*p.Y - l.C }

// Apollonius returns the circle of Apollonius for points p and q with
// distance ratio lambda = d(x,p)/d(x,q): the locus of points x with
// d(x,p) = lambda * d(x,q). lambda must be positive and != 1 (the locus
// degenerates to the perpendicular bisector at lambda == 1, which is
// reported by ok == false).
//
// For the paper's uncertain boundary (eq. 4), take lambda = C > 1 for the
// circle enclosing q and lambda = 1/C for its mirror image enclosing p.
func Apollonius(p, q Point, lambda float64) (c Circle, ok bool) {
	if lambda <= 0 || math.Abs(lambda-1) <= Eps {
		return Circle{}, false
	}
	// Solve |x-p|^2 = lambda^2 |x-q|^2, a circle with
	// centre (p - lambda^2 q) / (1 - lambda^2) and radius
	// lambda*|p-q| / |1-lambda^2|.
	l2 := lambda * lambda
	den := 1 - l2
	cx := (p.X - l2*q.X) / den
	cy := (p.Y - l2*q.Y) / den
	r := lambda * p.Dist(q) / math.Abs(den)
	return Circle{C: Point{cx, cy}, R: r}, true
}

// DistanceRatio returns d(x,p)/d(x,q). It returns +Inf when x == q.
func DistanceRatio(x, p, q Point) float64 {
	dq := x.Dist(q)
	if dq <= Eps {
		if x.Dist(p) <= Eps {
			return 1
		}
		return math.Inf(1)
	}
	return x.Dist(p) / dq
}

// CircleLineIntersect returns the 0, 1 or 2 intersection points of a
// circle and a line.
func CircleLineIntersect(c Circle, l Line) []Point {
	// Foot of perpendicular from centre.
	d := l.Side(c.C)
	if math.Abs(d) > c.R+Eps {
		return nil
	}
	foot := Point{c.C.X - l.A*d, c.C.Y - l.B*d}
	h2 := c.R*c.R - d*d
	if h2 < Eps {
		return []Point{foot}
	}
	h := math.Sqrt(h2)
	t := Vec{-l.B, l.A} // direction along the line
	return []Point{
		foot.Add(t.Scale(h)),
		foot.Add(t.Scale(-h)),
	}
}

// CircleCircleIntersect returns the 0, 1 or 2 intersection points of two
// circles. Coincident circles return nil.
func CircleCircleIntersect(a, b Circle) []Point {
	d := a.C.Dist(b.C)
	if d <= Eps {
		return nil // concentric (possibly coincident)
	}
	if d > a.R+b.R+Eps || d < math.Abs(a.R-b.R)-Eps {
		return nil
	}
	// Distance from a.C to the radical line along the centre line.
	x := (d*d + a.R*a.R - b.R*b.R) / (2 * d)
	h2 := a.R*a.R - x*x
	u := b.C.Sub(a.C).Unit()
	foot := a.C.Add(u.Scale(x))
	if h2 < Eps {
		return []Point{foot}
	}
	h := math.Sqrt(h2)
	n := u.Perp()
	return []Point{foot.Add(n.Scale(h)), foot.Add(n.Scale(-h))}
}

// PolylineLength returns the total length of the polyline through pts.
func PolylineLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	return total
}

// Centroid returns the arithmetic mean of pts. It returns the zero point
// for an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{sx / n, sy / n}
}
