package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-2, 0), Pt(2, 0), 4},
		{Pt(0, -3), Pt(0, 3), 6},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > Eps {
			t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
		if got := tt.p.Dist2(tt.q); math.Abs(got-tt.want*tt.want) > Eps {
			t.Errorf("Dist2(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
		}
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		return math.Abs(a.Dist(b)-b.Dist(a)) <= Eps
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestMid(t *testing.T) {
	m := Pt(0, 0).Mid(Pt(4, 6))
	if !m.Eq(Pt(2, 3)) {
		t.Errorf("Mid = %v, want (2,3)", m)
	}
}

func TestVecOps(t *testing.T) {
	v := Vec{3, 4}
	if got := v.Len(); got != 5 {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := v.Unit().Len(); math.Abs(got-1) > Eps {
		t.Errorf("Unit().Len() = %v, want 1", got)
	}
	if got := (Vec{}).Unit(); got != (Vec{}) {
		t.Errorf("zero Unit = %v, want zero", got)
	}
	if got := v.Dot(v.Perp()); math.Abs(got) > Eps {
		t.Errorf("v·v⊥ = %v, want 0", got)
	}
	if got := v.Cross(v); math.Abs(got) > Eps {
		t.Errorf("v×v = %v, want 0", got)
	}
	w := Vec{1, -2}
	if got, want := v.Add(w), (Vec{4, 2}); got != want {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := v.Sub(w), (Vec{2, 6}); got != want {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if got, want := v.Scale(2), (Vec{6, 8}); got != want {
		t.Errorf("Scale = %v, want %v", got, want)
	}
}

func TestPerpRotation(t *testing.T) {
	f := func(x, y float64) bool {
		v := Vec{x, y}
		p := v.Perp()
		// Same length, orthogonal, counter-clockwise (cross >= 0).
		return math.Abs(v.Len()-p.Len()) <= 1e-6*math.Max(1, v.Len()) &&
			math.Abs(v.Dot(p)) <= 1e-6*math.Max(1, v.Len2()) &&
			v.Cross(p) >= 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Pt(10, 20), Pt(0, 0))
	if r.Min != Pt(0, 0) || r.Max != Pt(10, 20) {
		t.Fatalf("NewRect corners wrong: %+v", r)
	}
	if r.Width() != 10 || r.Height() != 20 || r.Area() != 200 {
		t.Errorf("dims wrong: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if !r.Contains(Pt(5, 5)) || !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 20)) {
		t.Error("Contains should include interior and boundary")
	}
	if r.Contains(Pt(-1, 5)) || r.Contains(Pt(5, 21)) {
		t.Error("Contains should exclude exterior")
	}
	if got := r.Clamp(Pt(-5, 30)); got != Pt(0, 20) {
		t.Errorf("Clamp = %v, want (0,20)", got)
	}
	if got := r.Center(); got != Pt(5, 10) {
		t.Errorf("Center = %v, want (5,10)", got)
	}
}

func TestClampInside(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(100, 100))
	f := func(x, y float64) bool {
		return r.Contains(r.Clamp(Pt(x, y)))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestSegment(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	if s.Len() != 10 {
		t.Errorf("Len = %v", s.Len())
	}
	if got := s.At(0.5); !got.Eq(Pt(5, 0)) {
		t.Errorf("At(0.5) = %v", got)
	}
	if got := s.DistTo(Pt(5, 3)); math.Abs(got-3) > Eps {
		t.Errorf("DistTo mid = %v, want 3", got)
	}
	if got := s.DistTo(Pt(-4, 3)); math.Abs(got-5) > Eps {
		t.Errorf("DistTo beyond A = %v, want 5", got)
	}
	if got := s.DistTo(Pt(14, 3)); math.Abs(got-5) > Eps {
		t.Errorf("DistTo beyond B = %v, want 5", got)
	}
	deg := Segment{Pt(1, 1), Pt(1, 1)}
	if got := deg.DistTo(Pt(4, 5)); math.Abs(got-5) > Eps {
		t.Errorf("degenerate DistTo = %v, want 5", got)
	}
}

func TestBisector(t *testing.T) {
	p, q := Pt(-2, 0), Pt(2, 0)
	l := Bisector(p, q)
	// Points on the bisector are equidistant.
	for _, y := range []float64{-5, 0, 3} {
		if got := l.Side(Pt(0, y)); math.Abs(got) > Eps {
			t.Errorf("bisector Side((0,%v)) = %v, want 0", y, got)
		}
	}
	// Positive side is nearer p.
	if l.Side(p) <= 0 {
		t.Error("Side(p) should be positive")
	}
	if l.Side(q) >= 0 {
		t.Error("Side(q) should be negative")
	}
}

func TestBisectorEquidistantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := Pt(rng.Float64()*100, rng.Float64()*100)
		q := Pt(rng.Float64()*100, rng.Float64()*100)
		if p.Dist(q) < 1e-3 {
			continue
		}
		l := Bisector(p, q)
		x := Pt(rng.Float64()*100, rng.Float64()*100)
		side := l.Side(x)
		dp, dq := x.Dist(p), x.Dist(q)
		switch {
		case side > 1e-6 && dp >= dq:
			t.Fatalf("positive side should be nearer p: side=%v dp=%v dq=%v", side, dp, dq)
		case side < -1e-6 && dq >= dp:
			t.Fatalf("negative side should be nearer q: side=%v dp=%v dq=%v", side, dp, dq)
		}
	}
}

func TestApolloniusPaperForm(t *testing.T) {
	// Paper eq. 4: nodes at (d,0) and (-d,0), boundary circle has centre
	// ((C²+1)/(C²-1)·d, 0) and radius 2Cd/(C²-1).
	d, C := 3.0, 1.5
	p, q := Pt(d, 0), Pt(-d, 0)
	// Locus of x with d(x,q)/d(x,p) = C, i.e. points much nearer p:
	// Apollonius(q, p, C) in our parameterisation gives d(x,q)=C·d(x,p).
	c, ok := Apollonius(q, p, C)
	if !ok {
		t.Fatal("Apollonius returned !ok")
	}
	c2 := C * C
	wantCx := (c2 + 1) / (c2 - 1) * d
	wantR := 2 * C * d / (c2 - 1)
	if math.Abs(c.C.X-wantCx) > 1e-9 || math.Abs(c.C.Y) > 1e-9 {
		t.Errorf("centre = %v, want (%v, 0)", c.C, wantCx)
	}
	if math.Abs(c.R-wantR) > 1e-9 {
		t.Errorf("radius = %v, want %v", c.R, wantR)
	}
}

func TestApolloniusMembership(t *testing.T) {
	// Every point of the Apollonius circle satisfies the distance ratio.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		p := Pt(rng.Float64()*50, rng.Float64()*50)
		q := Pt(rng.Float64()*50+60, rng.Float64()*50)
		lambda := 0.2 + rng.Float64()*3
		if math.Abs(lambda-1) < 0.05 {
			continue
		}
		c, ok := Apollonius(p, q, lambda)
		if !ok {
			t.Fatalf("unexpected !ok for lambda=%v", lambda)
		}
		for _, theta := range []float64{0, 1, 2, 3, 4, 5, 6} {
			x := c.PointAt(theta)
			ratio := DistanceRatio(x, p, q)
			if math.Abs(ratio-lambda) > 1e-6*math.Max(1, lambda) {
				t.Fatalf("ratio at θ=%v is %v, want %v", theta, ratio, lambda)
			}
		}
	}
}

func TestApolloniusDegenerate(t *testing.T) {
	if _, ok := Apollonius(Pt(0, 0), Pt(1, 0), 1); ok {
		t.Error("lambda=1 should be degenerate")
	}
	if _, ok := Apollonius(Pt(0, 0), Pt(1, 0), 0); ok {
		t.Error("lambda=0 should be rejected")
	}
	if _, ok := Apollonius(Pt(0, 0), Pt(1, 0), -2); ok {
		t.Error("negative lambda should be rejected")
	}
}

func TestApolloniusMirror(t *testing.T) {
	// The lambda and 1/lambda circles are mirror images across the
	// perpendicular bisector (paper Fig. 2).
	p, q := Pt(-2, 0), Pt(2, 0)
	a, _ := Apollonius(p, q, 2)
	b, _ := Apollonius(p, q, 0.5)
	if math.Abs(a.R-b.R) > 1e-9 {
		t.Errorf("mirror radii differ: %v vs %v", a.R, b.R)
	}
	if math.Abs(a.C.X+b.C.X) > 1e-9 { // symmetric about x=0
		t.Errorf("centres not mirrored: %v vs %v", a.C, b.C)
	}
}

func TestDistanceRatioAtPoles(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 0)
	if got := DistanceRatio(p, p, q); got != 0 {
		t.Errorf("ratio at p = %v, want 0", got)
	}
	if got := DistanceRatio(q, p, q); !math.IsInf(got, 1) {
		t.Errorf("ratio at q = %v, want +Inf", got)
	}
}

func TestCircleLineIntersect(t *testing.T) {
	c := Circle{Pt(0, 0), 5}
	l := LineThrough(Pt(-10, 3), Pt(10, 3))
	pts := CircleLineIntersect(c, l)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if !c.On(p, 1e-9) {
			t.Errorf("point %v not on circle", p)
		}
		if math.Abs(p.Y-3) > 1e-9 {
			t.Errorf("point %v not on line", p)
		}
	}
	// Tangent line.
	tl := LineThrough(Pt(-10, 5), Pt(10, 5))
	if pts := CircleLineIntersect(c, tl); len(pts) != 1 {
		t.Errorf("tangent: got %d points, want 1", len(pts))
	}
	// Missing line.
	ml := LineThrough(Pt(-10, 9), Pt(10, 9))
	if pts := CircleLineIntersect(c, ml); len(pts) != 0 {
		t.Errorf("miss: got %d points, want 0", len(pts))
	}
}

func TestCircleCircleIntersect(t *testing.T) {
	a := Circle{Pt(0, 0), 5}
	b := Circle{Pt(6, 0), 5}
	pts := CircleCircleIntersect(a, b)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if !a.On(p, 1e-9) || !b.On(p, 1e-9) {
			t.Errorf("point %v not on both circles", p)
		}
	}
	// Tangent externally.
	c := Circle{Pt(10, 0), 5}
	if pts := CircleCircleIntersect(a, c); len(pts) != 1 {
		t.Errorf("tangent: got %d, want 1", len(pts))
	}
	// Disjoint.
	d := Circle{Pt(100, 0), 5}
	if pts := CircleCircleIntersect(a, d); len(pts) != 0 {
		t.Errorf("disjoint: got %d, want 0", len(pts))
	}
	// One inside another without touching.
	e := Circle{Pt(0.5, 0), 1}
	if pts := CircleCircleIntersect(a, e); len(pts) != 0 {
		t.Errorf("nested: got %d, want 0", len(pts))
	}
	// Concentric.
	if pts := CircleCircleIntersect(a, Circle{Pt(0, 0), 3}); pts != nil {
		t.Errorf("concentric: got %v, want nil", pts)
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{Pt(0, 0), 2}
	if !c.Contains(Pt(1, 0)) {
		t.Error("interior point should be contained")
	}
	if c.Contains(Pt(2, 0)) {
		t.Error("boundary point should not be strictly contained")
	}
	if c.Contains(Pt(3, 0)) {
		t.Error("exterior point should not be contained")
	}
}

func TestPolylineLength(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(3, 4), Pt(3, 8)}
	if got := PolylineLength(pts); math.Abs(got-9) > Eps {
		t.Errorf("PolylineLength = %v, want 9", got)
	}
	if got := PolylineLength(nil); got != 0 {
		t.Errorf("empty polyline = %v, want 0", got)
	}
	if got := PolylineLength(pts[:1]); got != 0 {
		t.Errorf("single point polyline = %v, want 0", got)
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); !got.Eq(Pt(1, 1)) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("empty Centroid = %v, want origin", got)
	}
}

func TestLineThroughSide(t *testing.T) {
	l := LineThrough(Pt(0, 0), Pt(10, 0))
	if math.Abs(l.Side(Pt(5, 0))) > Eps {
		t.Error("point on line should have Side 0")
	}
	s1, s2 := l.Side(Pt(0, 1)), l.Side(Pt(0, -1))
	if s1*s2 >= 0 {
		t.Error("opposite sides should have opposite signs")
	}
	if math.Abs(math.Abs(s1)-1) > Eps {
		t.Errorf("|Side| should equal distance, got %v", s1)
	}
}

// quickCfg bounds quick.Check inputs to a sane coordinate range so the
// float64 generator does not produce astronomically large values that
// overflow intermediate arithmetic.
func quickCfg() *quick.Config {
	rng := rand.New(rand.NewSource(42))
	return &quick.Config{
		MaxCount: 300,
		Rand:     rng,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(r.Float64()*2000 - 1000)
			}
		},
	}
}
