package experiments

import "testing"

func TestNetworkLifetimeClusteringHelps(t *testing.T) {
	p := Quick()
	rows, err := NetworkLifetime(p, 25, 5, 3000, 5e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	flat, clustered := rows[0], rows[1]
	if flat.Topology != "flat-greedy" || clustered.Topology != "clustered" {
		t.Fatalf("unexpected topologies: %q, %q", flat.Topology, clustered.Topology)
	}
	if flat.RoundsToFirst <= 0 || clustered.RoundsToFirst <= 0 {
		t.Fatal("lifetimes must be positive")
	}
	// Aggregation must not spend more energy per round than flat.
	if clustered.EnergyPerRound > flat.EnergyPerRound*1.05 {
		t.Errorf("clustered energy/round %.3e should be ≤ flat %.3e",
			clustered.EnergyPerRound, flat.EnergyPerRound)
	}
	if flat.DeliveredFrac <= 0 || clustered.DeliveredFrac <= 0 {
		t.Error("both topologies should deliver reports")
	}
}

func TestSyncAccuracyGrowsWithPeriod(t *testing.T) {
	p := Quick()
	rows, err := SyncAccuracy(p, []float64{10, 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].MaxOffset <= rows[0].MaxOffset {
		t.Errorf("longer sync period should drift more: %.5f vs %.5f",
			rows[1].MaxOffset, rows[0].MaxOffset)
	}
	for _, row := range rows {
		if row.MaxPosError != row.MaxOffset*p.VMax {
			t.Errorf("position error inconsistent at period %v", row.SyncPeriod)
		}
	}
	// Even at 300 s between syncs, 80 ppm drift keeps the induced
	// position error far below the tracking error scale — the Def. 3
	// synchrony assumption is safe.
	if rows[1].MaxPosError > 0.5 {
		t.Errorf("induced position error %.3f m unexpectedly large", rows[1].MaxPosError)
	}
}

func TestDutyCyclingSavesEnergy(t *testing.T) {
	p := Quick()
	p.Duration = 20
	rows, err := DutyCycling(p, 25, []float64{40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	always, focused := rows[0], rows[1]
	if always.WakeRadius != 0 || always.AwakeFrac != 1 {
		t.Fatalf("baseline row wrong: %+v", always)
	}
	if focused.EnergyTotal >= always.EnergyTotal {
		t.Errorf("duty cycling energy %.3e should be below always-on %.3e",
			focused.EnergyTotal, always.EnergyTotal)
	}
	if focused.AwakeFrac >= 1 {
		t.Error("focused run should have slept someone")
	}
	// Accuracy must not collapse (bounded degradation).
	if focused.MeanErr > always.MeanErr*2+5 {
		t.Errorf("duty cycling error %.2f vs always-on %.2f degraded too much",
			focused.MeanErr, always.MeanErr)
	}
}

func TestMACContention(t *testing.T) {
	p := Quick()
	rows, err := MACContention(p, 20, 4, 20, []int{0, 2, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	ideal, tight, wide := rows[0], rows[1], rows[2]
	if ideal.FlatDelivered < wide.FlatDelivered {
		t.Error("ideal MAC should deliver at least as much as 16 slots")
	}
	if tight.FlatDelivered >= wide.FlatDelivered {
		t.Errorf("2 slots (%.2f) should deliver less than 16 (%.2f)",
			tight.FlatDelivered, wide.FlatDelivered)
	}
	if tight.ClusteredDelivered <= tight.FlatDelivered {
		t.Errorf("clustered TDMA (%.2f) should beat flat (%.2f) under tight contention",
			tight.ClusteredDelivered, tight.FlatDelivered)
	}
}
