package experiments

import (
	"math"
	"testing"

	"fttt/internal/randx"
	"fttt/internal/stats"
)

func TestMethodString(t *testing.T) {
	cases := map[Method]string{
		FTTTBasic: "FTTT", FTTTExtended: "FTTT-ext", PM: "PM", DirectMLE: "DirectMLE",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
	if Method(42).String() == "" {
		t.Error("unknown method should still print")
	}
}

func TestScenarioSharedGroups(t *testing.T) {
	// All methods must see identical samples: two Run calls on the same
	// scenario reuse the pre-drawn groups.
	p := Quick()
	s, err := newScenario(p, 8, false, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Run(FTTTBasic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(FTTTBasic)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a[FTTTBasic] {
		if a[FTTTBasic][i] != b[FTTTBasic][i] {
			t.Fatal("re-running the same scenario changed estimates")
		}
	}
}

func TestScenarioLengths(t *testing.T) {
	p := Quick()
	s, err := newScenario(p, 6, true, randx.New(4))
	if err != nil {
		t.Fatal(err)
	}
	want := int(p.Duration/p.LocPeriod) + 1
	if len(s.trace) != want || len(s.times) != want || len(s.groups) != want {
		t.Errorf("lengths %d/%d/%d, want %d", len(s.trace), len(s.times), len(s.groups), want)
	}
}

func TestFig10Shapes(t *testing.T) {
	p := Quick()
	r, err := Fig10(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.GridNodes) != 16 || len(r.RandomNodes) != 10 {
		t.Errorf("node counts %d/%d", len(r.GridNodes), len(r.RandomNodes))
	}
	for _, ts := range []TrackedSeries{r.GridPM, r.GridFTTT, r.RandomPM, r.RandomFTTT} {
		if len(ts.Estimates) != len(ts.True) || len(ts.Errors) != len(ts.True) {
			t.Fatalf("series length mismatch for %v", ts.Method)
		}
		if math.IsNaN(ts.Summary.Mean) {
			t.Fatalf("NaN summary for %v", ts.Method)
		}
	}
	// Paper's headline: FTTT beats PM in both deployments.
	if r.GridFTTT.Summary.Mean >= r.GridPM.Summary.Mean {
		t.Errorf("grid: FTTT %.2f should beat PM %.2f",
			r.GridFTTT.Summary.Mean, r.GridPM.Summary.Mean)
	}
	if r.RandomFTTT.Summary.Mean >= r.RandomPM.Summary.Mean {
		t.Errorf("random: FTTT %.2f should beat PM %.2f",
			r.RandomFTTT.Summary.Mean, r.RandomPM.Summary.Mean)
	}
}

func TestFig11aOrdering(t *testing.T) {
	p := Quick()
	p.Duration = 20
	r, err := Fig11a(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("got %d series", len(r.Series))
	}
	fttt := stats.Mean(r.Series[FTTTBasic])
	pm := stats.Mean(r.Series[PM])
	mle := stats.Mean(r.Series[DirectMLE])
	// Paper: FTTT clearly best. PM vs Direct MLE ordering is noisier at
	// small scale, so only assert FTTT's lead.
	if !(fttt < pm && fttt < mle) {
		t.Errorf("FTTT %.2f should beat PM %.2f and DirectMLE %.2f", fttt, pm, mle)
	}
}

func TestFig11bcShape(t *testing.T) {
	p := Quick()
	p.Trials = 1
	p.Duration = 10
	rows, err := sweepN(p, []int{5, 20}, []Method{FTTTBasic, PM, DirectMLE}, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// More sensors reduce FTTT error (paper Fig. 11(b)).
	if rows[1].Mean[FTTTBasic] >= rows[0].Mean[FTTTBasic] {
		t.Errorf("FTTT error should fall with n: %v → %v",
			rows[0].Mean[FTTTBasic], rows[1].Mean[FTTTBasic])
	}
	// FTTT beats baselines at n=20.
	if rows[1].Mean[FTTTBasic] >= rows[1].Mean[PM] {
		t.Errorf("FTTT %.2f should beat PM %.2f at n=20",
			rows[1].Mean[FTTTBasic], rows[1].Mean[PM])
	}
}

func TestFig12aResolutionTrend(t *testing.T) {
	// The ε effect is mild under the split-noise model (EXPERIMENTS.md),
	// so run at the scale where it is visible (n=25, fine cells) and
	// assert direction with tolerance: fine resolution must not be
	// clearly worse than coarse.
	p := Default()
	p.Duration = 20
	p.Trials = 3
	rows, err := fig12aSweep(p, []float64{0.5, 3}, []int{25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	fine, coarse := rows[0].MeanErr[25], rows[1].MeanErr[25]
	if fine > coarse*1.1 {
		t.Errorf("mean error at ε=0.5 (%.2f) should be ≲ ε=3 (%.2f)", fine, coarse)
	}
}

func TestFig12bMoreSamplesHelp(t *testing.T) {
	// Same tolerance treatment for the k trend, visible at n ≥ 25.
	p := Default()
	p.Duration = 20
	p.Trials = 3
	rows, err := fig12bSweep(p, []int{25}, []int{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	k3, k9 := rows[0].MeanErr[3], rows[0].MeanErr[9]
	if k9 > k3*1.1 {
		t.Errorf("k=9 error %.2f should be ≲ k=3 %.2f", k9, k3)
	}
}

func TestFig12aFullSweepStructure(t *testing.T) {
	// The full driver returns the paper's complete grid; run it at toy
	// scale to pin the output structure.
	p := Quick()
	p.Trials = 1
	p.Duration = 4
	rows, err := Fig12a(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d ε rows, want 6", len(rows))
	}
	for _, row := range rows {
		for _, n := range []int{10, 15, 20, 25} {
			if math.IsNaN(row.MeanErr[n]) {
				t.Fatalf("NaN at ε=%v n=%d", row.Epsilon, n)
			}
		}
	}
}

func TestFig12cdExtendedReducesStdDev(t *testing.T) {
	p := Quick()
	p.Trials = 2
	p.Duration = 15
	rows, err := sweepN(p, []int{10, 20}, []Method{FTTTBasic, FTTTExtended}, "testcd")
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 12(c,d): extended FTTT has similar mean and smaller (or
	// similar) deviation. Assert it is never drastically worse.
	for _, row := range rows {
		if row.Mean[FTTTExtended] > row.Mean[FTTTBasic]*1.5 {
			t.Errorf("n=%d: extended mean %.2f far above basic %.2f",
				row.N, row.Mean[FTTTExtended], row.Mean[FTTTBasic])
		}
	}
}

func TestFig13Runs(t *testing.T) {
	p := Quick()
	p.Duration = 30
	r, err := Fig13(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes) != 9 {
		t.Errorf("outdoor layout has %d nodes, want 9", len(r.Nodes))
	}
	if r.RoundsRun == 0 || r.ReportsArrived == 0 {
		t.Fatalf("network delivered nothing: %+v", r)
	}
	if r.ReportsArrived > r.ReportsHeard {
		t.Error("delivered more than heard")
	}
	if r.EnergySpent <= 0 {
		t.Error("no energy accounted")
	}
	if len(r.Basic.Errors) != len(r.Extended.Errors) {
		t.Error("series lengths differ")
	}
	// Both variants track: mean error within the field scale.
	if r.Basic.Summary.Mean > 40 || r.Extended.Summary.Mean > 40 {
		t.Errorf("outdoor tracking failed: basic %.1f ext %.1f",
			r.Basic.Summary.Mean, r.Extended.Summary.Mean)
	}
}

func TestSamplingTimesTheoryMatches(t *testing.T) {
	p := Quick()
	rows, k99 := SamplingTimes(p, 6, []int{2, 4, 6, 10}, 20000)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		// The paper's closed form uses exponent N-1 (upper bound of the
		// exact independent-pairs probability, exponent N); empirical
		// frequency must lie at or below theory, within noise, and
		// converge to 1 as k grows.
		if row.Empirical > row.Theory+0.02 {
			t.Errorf("k=%d: empirical %.3f above theory %.3f", row.K, row.Empirical, row.Theory)
		}
	}
	if rows[3].Theory < 0.99 {
		t.Errorf("k=10 theory %.3f should be near 1", rows[3].Theory)
	}
	if k99 < 2 {
		t.Errorf("k bound for λ=0.99 = %d", k99)
	}
}

func TestErrorScalingMoreSamplesNoWorse(t *testing.T) {
	p := Quick()
	p.Trials = 1
	p.Duration = 8
	rows, err := ErrorScaling(p, []int{3, 9}, []int{15})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].MeanErr > rows[0].MeanErr*1.2 {
		t.Errorf("k=9 error %.2f should not exceed k=3 %.2f by >20%%",
			rows[1].MeanErr, rows[0].MeanErr)
	}
	if rows[0].Envelope <= rows[1].Envelope {
		t.Error("envelope should shrink with k")
	}
}

func TestMatchCostHeuristicCheaper(t *testing.T) {
	p := Quick()
	rows, err := MatchCost(p, []int{9, 16}, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.HeuristicPer >= row.ExhaustivePer {
			t.Errorf("n=%d: heuristic %v ≥ exhaustive %v faces/loc",
				row.N, row.HeuristicPer, row.ExhaustivePer)
		}
		if row.Faces <= 0 || row.Links <= 0 {
			t.Errorf("n=%d: empty division stats %+v", row.N, row)
		}
	}
	// Exhaustive cost grows with n (face count grows).
	if rows[1].ExhaustivePer <= rows[0].ExhaustivePer {
		t.Error("exhaustive cost should grow with n")
	}
}

func TestGridResolutionAblation(t *testing.T) {
	p := Quick()
	p.Trials = 1
	p.Duration = 8
	rows, err := GridResolution(p, 10, []float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Faces <= rows[1].Faces {
		t.Errorf("finer grid should give more faces: %d vs %d", rows[0].Faces, rows[1].Faces)
	}
}

func TestBoundaryAblationUncertainHelps(t *testing.T) {
	p := Default()
	p.Trials = 2
	p.Duration = 15
	rows, err := BoundaryAblation(p, []int{25})
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	// The paper's core claim: uncertain boundaries beat forcing certain
	// decisions. Allow equality within 10% — at tiny scales the gap can
	// narrow, but certain must not be clearly better.
	if row.MeanEq3 > row.MeanCertain*1.1 {
		t.Errorf("uncertain boundaries (%.2f) should not lose to certain (%.2f)",
			row.MeanEq3, row.MeanCertain)
	}
	if math.IsNaN(row.MeanCalibrated) {
		t.Error("calibrated boundary mean is NaN")
	}
}

func TestDefaultAndQuickParams(t *testing.T) {
	d := Default()
	if d.Model.Beta != 4 || d.Model.SigmaX != 6 {
		t.Errorf("Default model β=%v σ=%v, want Table 1's 4/6", d.Model.Beta, d.Model.SigmaX)
	}
	if d.Field.Width() != 100 || d.Field.Height() != 100 {
		t.Error("Default field should be 100×100")
	}
	q := Quick()
	if q.Duration >= d.Duration {
		t.Error("Quick should be cheaper than Default")
	}
}
