package experiments

import (
	"math"

	"fttt/internal/arrangement"
	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/match"
	"fttt/internal/randx"
	"fttt/internal/sampling"
	"fttt/internal/stats"
	"fttt/internal/vector"
)

// SamplingTimesRow compares the Sec. 5.1 theory with Monte-Carlo
// estimates of the probability that a grouping sampling of k instants
// captures all flipped pairs.
type SamplingTimesRow struct {
	K         int
	Theory    float64 // (1-(1/2)^(k-1))^(N-1), the paper's closed form
	Empirical float64 // Monte-Carlo capture frequency
}

// SamplingTimes evaluates theory vs simulation for nPairs expected
// flipped pairs over the given ks. It also returns the paper's k bound
// for λ = 0.99.
func SamplingTimes(p Params, nPairs int, ks []int, trials int) (rows []SamplingTimesRow, kFor99 int) {
	rng := randx.New(p.Seed).Split("sampling-times")
	for _, k := range ks {
		captured := 0
		for trial := 0; trial < trials; trial++ {
			all := true
			for pair := 0; pair < nPairs; pair++ {
				up, down := false, false
				for s := 0; s < k; s++ {
					if rng.Bernoulli(0.5) {
						up = true
					} else {
						down = true
					}
				}
				if !(up && down) {
					all = false
					break
				}
			}
			if all {
				captured++
			}
		}
		rows = append(rows, SamplingTimesRow{
			K:         k,
			Theory:    core.FlipCaptureProbability(nPairs, k),
			Empirical: float64(captured) / float64(trials),
		})
	}
	return rows, core.RequiredSamplingTimes(nPairs, 0.99)
}

// ErrorScalingRow is one point of the Sec. 5.2 worst-case-error check:
// mean tracking error versus sampling times k and node count n, next to
// the theoretical envelope 1/(2^((k-1)/2)·ρ·R) (up to a constant).
type ErrorScalingRow struct {
	K        int
	N        int
	MeanErr  float64
	Envelope float64
}

// ErrorScaling sweeps k and n and reports mean FTTT error with the
// theoretical scaling envelope of eq. 10.
func ErrorScaling(p Params, ks, ns []int) ([]ErrorScalingRow, error) {
	root := randx.New(p.Seed).Split("error-scaling")
	var rows []ErrorScalingRow
	for _, k := range ks {
		for _, n := range ns {
			var all []float64
			for trial := 0; trial < p.Trials; trial++ {
				pp := p
				pp.K = k
				s, err := newScenario(pp, n, false, root.SplitN("s", k*100000+n*100+trial))
				if err != nil {
					return nil, err
				}
				est, err := s.Run(FTTTBasic)
				if err != nil {
					return nil, err
				}
				all = append(all, s.errorsOf(est[FTTTBasic])...)
			}
			rho := float64(n) / p.Field.Area()
			env := 1 / (math.Pow(2, float64(k-1)/2) * rho * p.Range)
			rows = append(rows, ErrorScalingRow{
				K: k, N: n,
				MeanErr:  stats.Mean(all),
				Envelope: env,
			})
		}
	}
	return rows, nil
}

// MatchCostRow compares the matcher costs of Sec. 4.4(2): faces evaluated
// per localization by the exhaustive O(n⁴) scan versus the heuristic
// neighbor-link search, as the node count grows.
type MatchCostRow struct {
	N              int
	Faces          int
	Links          int
	ExhaustivePer  float64
	HeuristicPer   float64
	HeuristicError float64 // mean extra error vs exhaustive estimate (m)
}

// MatchCost measures both matchers on identical sampling vectors.
func MatchCost(p Params, ns []int, locs int) ([]MatchCostRow, error) {
	root := randx.New(p.Seed).Split("match-cost")
	var rows []MatchCostRow
	for _, n := range ns {
		dep := deploy.Random(p.Field, n, root.SplitN("deploy", n))
		c := p.Model.UncertaintyC(p.Epsilon)
		rc, err := field.NewRatioClassifier(dep.Positions(), c)
		if err != nil {
			return nil, err
		}
		div, err := field.Divide(p.Field, rc, p.CellSize)
		if err != nil {
			return nil, err
		}
		ex := &match.Exhaustive{Div: div}
		h := &match.Heuristic{Div: div}
		sampler := &sampling.Sampler{Model: p.Model, Nodes: dep.Positions(), Range: p.Range, Epsilon: p.Epsilon}

		rng := root.SplitN("trace", n)
		var exVisited, hVisited, errSum float64
		var prevEx, prevH *field.Face
		pos := geom.Pt(rng.Uniform(10, 90), rng.Uniform(10, 90))
		for i := 0; i < locs; i++ {
			// A slow random walk keeps consecutive localizations close,
			// the regime Algorithm 2's warm start exploits.
			pos = p.Field.Clamp(pos.Add(geom.Vec{
				X: rng.Normal(0, 2),
				Y: rng.Normal(0, 2),
			}))
			v := sampler.Sample(pos, p.K, rng.SplitN("loc", i)).Vector()
			re := ex.Match(v, prevEx)
			rh := h.Match(v, prevH)
			prevEx, prevH = re.Face, rh.Face
			exVisited += float64(re.Visited)
			hVisited += float64(rh.Visited)
			errSum += rh.Estimate.Dist(re.Estimate)
		}
		rows = append(rows, MatchCostRow{
			N:              n,
			Faces:          div.NumFaces(),
			Links:          div.NeighborLinkCount(),
			ExhaustivePer:  exVisited / float64(locs),
			HeuristicPer:   hVisited / float64(locs),
			HeuristicError: errSum / float64(locs),
		})
	}
	return rows, nil
}

// GridResolutionRow is the DESIGN.md §5 ablation: tracking error and
// preprocessing cost versus the approximate-division cell size.
type GridResolutionRow struct {
	CellSize float64
	Faces    int
	MeanErr  float64
}

// GridResolution sweeps the grid cell size with fixed n, k, ε.
func GridResolution(p Params, n int, cells []float64) ([]GridResolutionRow, error) {
	root := randx.New(p.Seed).Split("grid-resolution")
	var rows []GridResolutionRow
	for _, cell := range cells {
		pp := p
		pp.CellSize = cell
		var all []float64
		faces := 0
		for trial := 0; trial < p.Trials; trial++ {
			s, err := newScenario(pp, n, false, root.SplitN("s", int(cell*10)*1000+trial))
			if err != nil {
				return nil, err
			}
			est, err := s.Run(FTTTBasic)
			if err != nil {
				return nil, err
			}
			all = append(all, s.errorsOf(est[FTTTBasic])...)
			if faces == 0 {
				div, _, err := s.divisions(false)
				if err != nil {
					return nil, err
				}
				faces = div.NumFaces()
			}
		}
		rows = append(rows, GridResolutionRow{CellSize: cell, Faces: faces, MeanErr: stats.Mean(all)})
	}
	return rows, nil
}

// BoundaryAblationRow is the DESIGN.md §5 ablation comparing three
// boundary choices on identical samples: the paper's eq. 3 Apollonius
// boundaries, the flip-calibrated boundaries (rf.Model.CalibratedC), and
// certain bisectors (C = 1, forcing hard pair decisions) — the heart of
// the paper's claim that modelling uncertainty helps.
type BoundaryAblationRow struct {
	N              int
	MeanEq3        float64 // uncertain boundaries, eq. 3's C
	MeanCalibrated float64 // flip-calibrated C
	MeanCertain    float64 // certain bisectors (C = 1)
}

// BoundaryAblation runs FTTT with all three classifiers on identical
// samples.
func BoundaryAblation(p Params, ns []int) ([]BoundaryAblationRow, error) {
	root := randx.New(p.Seed).Split("boundary-ablation")
	var rows []BoundaryAblationRow
	for _, n := range ns {
		var eq3, calibrated, certain []float64
		for trial := 0; trial < p.Trials; trial++ {
			rng := root.SplitN("s", n*100+trial)
			s, err := newScenario(p, n, false, rng)
			if err != nil {
				return nil, err
			}
			// Eq. 3 division via the normal path.
			est, err := s.Run(FTTTBasic)
			if err != nil {
				return nil, err
			}
			eq3 = append(eq3, s.errorsOf(est[FTTTBasic])...)

			runWithC := func(c float64, vec func(g *sampling.Group) vector.Vector) ([]float64, error) {
				rc, err := field.NewRatioClassifier(s.nodes, c)
				if err != nil {
					return nil, err
				}
				div, err := field.Divide(p.Field, rc, p.CellSize)
				if err != nil {
					return nil, err
				}
				ex := &match.Exhaustive{Div: div}
				var prev *field.Face
				var errs []float64
				for i, g := range s.groups {
					r := ex.Match(vec(g), prev)
					prev = r.Face
					errs = append(errs, r.Estimate.Dist(s.trace[i]))
				}
				return errs, nil
			}
			cal, err := runWithC(p.Model.CalibratedC(p.Epsilon, p.K),
				func(g *sampling.Group) vector.Vector { return g.Vector() })
			if err != nil {
				return nil, err
			}
			calibrated = append(calibrated, cal...)
			cert, err := runWithC(1, certainVector)
			if err != nil {
				return nil, err
			}
			certain = append(certain, cert...)
		}
		rows = append(rows, BoundaryAblationRow{
			N:              n,
			MeanEq3:        stats.Mean(eq3),
			MeanCalibrated: stats.Mean(calibrated),
			MeanCertain:    stats.Mean(certain),
		})
	}
	return rows, nil
}

// EstimatorRow is the DESIGN.md §5 estimator ablation: the paper's
// argmax maximum-likelihood face against the similarity-weighted top-M
// estimator, on identical samples.
type EstimatorRow struct {
	M       int // 1 = paper's argmax
	MeanErr float64
	StdDev  float64
}

// EstimatorAblation sweeps the top-M width at fixed n.
func EstimatorAblation(p Params, n int, ms []int) ([]EstimatorRow, error) {
	root := randx.New(p.Seed).Split("estimator-ablation")
	var rows []EstimatorRow
	for _, m := range ms {
		var all []float64
		for trial := 0; trial < p.Trials; trial++ {
			s, err := newScenario(p, n, false, root.SplitN("s", n*100+trial))
			if err != nil {
				return nil, err
			}
			cfg := core.Config{
				Field:         p.Field,
				Nodes:         s.nodes,
				Model:         p.Model,
				Epsilon:       p.Epsilon,
				SamplingTimes: p.K,
				Range:         p.Range,
				CellSize:      p.CellSize,
				TopM:          m,
			}
			tr, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			for i, g := range s.groups {
				all = append(all, tr.LocalizeGroup(g).Pos.Dist(s.trace[i]))
			}
		}
		rows = append(rows, EstimatorRow{M: m, MeanErr: stats.Mean(all), StdDev: stats.StdDev(all)})
	}
	return rows, nil
}

// FaceComplexityRow compares the exact arrangement face count of the
// Apollonius boundaries against the approximate grid division's count
// and the paper's O(n⁴) bound.
type FaceComplexityRow struct {
	N             int
	ExactFaces    int // plane arrangement, including the unbounded face
	GridFaces     int // approximate division within the field
	Intersections int
	N4            int // n⁴ reference
}

// FaceComplexity sweeps node counts. The exact count covers the whole
// plane while the grid count is clipped to the field and quantised to
// cells, so compare growth rates rather than values.
func FaceComplexity(p Params, ns []int) ([]FaceComplexityRow, error) {
	root := randx.New(p.Seed).Split("face-complexity")
	c := p.Model.UncertaintyC(p.Epsilon)
	var rows []FaceComplexityRow
	for _, n := range ns {
		dep := deploy.Random(p.Field, n, root.SplitN("deploy", n))
		st, err := arrangement.Analyze(dep.Positions(), c)
		if err != nil {
			return nil, err
		}
		rc, err := field.NewRatioClassifier(dep.Positions(), c)
		if err != nil {
			return nil, err
		}
		div, err := field.Divide(p.Field, rc, p.CellSize)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FaceComplexityRow{
			N:             n,
			ExactFaces:    st.Faces,
			GridFaces:     div.NumFaces(),
			Intersections: st.Intersections,
			N4:            n * n * n * n,
		})
	}
	return rows, nil
}

// certainVector collapses a grouping sampling into the certain ternary
// vector a C=1 pipeline expects: flipped pairs are forced to a hard
// decision by majority vote, which is exactly the information loss the
// uncertain-area design avoids.
func certainVector(g *sampling.Group) vector.Vector {
	v := g.Vector()
	ext := g.ExtendedVector()
	for k := range v {
		if v[k].IsStar() || v[k] != vector.Flipped {
			continue
		}
		if ext[k] >= 0 {
			v[k] = vector.Nearer
		} else {
			v[k] = vector.Farther
		}
	}
	return v
}
