package experiments

import (
	"fmt"
	"math"

	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/faults"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/pipeline"
	"fttt/internal/randx"
	"fttt/internal/stats"
	"fttt/internal/wsnnet"
)

// FaultToleranceRow reports tracking quality at one crash fraction of
// the FaultTolerance sweep: a scripted mid-run crash of CrashFrac of
// the deployment (with the burst channel active throughout), tracked by
// the degradation-aware pipeline.
type FaultToleranceRow struct {
	// CrashFrac is the fraction of motes crashed at Duration/4.
	CrashFrac float64
	// MeanErr / P90Err summarise the per-round tracking error (m).
	MeanErr float64
	P90Err  float64
	// DeliveredFrac is reports delivered / heard over the run.
	DeliveredFrac float64
	// DegradedFrac / RetriedFrac / ExtrapolatedFrac are the fractions
	// of rounds the degradation policy flagged / re-collected /
	// dead-reckoned.
	DegradedFrac     float64
	RetriedFrac      float64
	ExtrapolatedFrac float64
}

// FaultToleranceScript is the scenario the sweep injects: a Gilbert–
// Elliott burst channel from the start, plus the swept crash event at
// time at.
func FaultToleranceScript(crashFrac, at float64) (*faults.Script, error) {
	return faults.Parse(fmt.Sprintf(
		"burst pgb=0.02 pbg=0.5 loss=0.9\ncrash at=%g frac=%g", at, crashFrac))
}

// FaultTolerance sweeps the crashed-node fraction against tracking
// error on the full pipeline (wsnnet substrate + degradation-aware
// tracker): each trial deploys n motes, runs the paper's random-
// waypoint target for p.Duration, and crashes crashFrac of the field a
// quarter of the way in — the ISSUE 3 acceptance sweep, expected to
// show bounded error growth (no panics, no NaN estimates) up to 30%
// crashes.
func FaultTolerance(p Params, n int, crashFracs []float64) ([]FaultToleranceRow, error) {
	root := randx.New(p.Seed).Split("fault-tolerance")

	// Trials are paired across crash fractions: deployment, target path
	// and channel draws come from per-trial streams independent of the
	// fraction, so row-to-row differences isolate the crash itself.
	runTrial := func(crashFrac float64, trial int) (errs []float64, row FaultToleranceRow, err error) {
		rng := root.SplitN("trial", trial)
		dep := deploy.Random(p.Field, n, rng.Split("deploy"))
		script, err := FaultToleranceScript(crashFrac, p.Duration/4)
		if err != nil {
			return nil, row, err
		}
		sched := faults.New(*script, n, p.Seed+uint64(trial))
		net, err := wsnnet.New(wsnnet.Config{
			Nodes:        dep.Positions(),
			BaseStation:  geom.Pt(p.Field.Min.X+5, p.Field.Min.Y+5),
			Model:        p.Model,
			SensingRange: p.Range,
			CommRange:    50,
			HopLoss:      0.02,
			HopDelay:     0.002,
			ReportBits:   256,
			Epsilon:      p.Epsilon,
			Obs:          p.Obs,
			Faults:       sched,
		})
		if err != nil {
			return nil, row, err
		}
		tr, err := core.New(core.Config{
			Field:             p.Field,
			Nodes:             dep.Positions(),
			Model:             p.Model,
			Epsilon:           p.Epsilon,
			SamplingTimes:     p.K,
			Range:             p.Range,
			CellSize:          p.CellSize,
			StarFractionLimit: 0.6,
			Obs:               p.Obs,
		})
		if err != nil {
			return nil, row, err
		}
		svc, err := pipeline.New(pipeline.Config{
			Net:          net,
			Tracker:      tr,
			Period:       p.LocPeriod,
			K:            p.K,
			RetryBackoff: p.LocPeriod / 5,
			Obs:          p.Obs,
		})
		if err != nil {
			return nil, row, err
		}
		mob := mobility.RandomWaypoint(p.Field, p.VMin, p.VMax, p.Duration, rng.Split("mob"))
		updates := svc.Run(mob, p.Duration, rng.Split("run"))

		heard, delivered := 0, 0
		for _, u := range updates {
			if math.IsNaN(u.Error) || math.IsNaN(u.Final.X) || math.IsNaN(u.Final.Y) {
				return nil, row, fmt.Errorf("experiments: NaN estimate at t=%v (crash frac %v)", u.T, crashFrac)
			}
			errs = append(errs, u.Error)
			heard += u.Stats.Heard
			delivered += u.Stats.Delivered
			if u.Degraded {
				row.DegradedFrac++
			}
			if u.Retried {
				row.RetriedFrac++
			}
			if u.Extrapolated {
				row.ExtrapolatedFrac++
			}
		}
		nr := float64(len(updates))
		row.DegradedFrac /= nr
		row.RetriedFrac /= nr
		row.ExtrapolatedFrac /= nr
		if heard > 0 {
			row.DeliveredFrac = float64(delivered) / float64(heard)
		}
		return errs, row, nil
	}

	rows := make([]FaultToleranceRow, 0, len(crashFracs))
	for _, frac := range crashFracs {
		var allErrs []float64
		agg := FaultToleranceRow{CrashFrac: frac}
		for trial := 0; trial < p.Trials; trial++ {
			errs, row, err := runTrial(frac, trial)
			if err != nil {
				return nil, err
			}
			allErrs = append(allErrs, errs...)
			agg.DeliveredFrac += row.DeliveredFrac
			agg.DegradedFrac += row.DegradedFrac
			agg.RetriedFrac += row.RetriedFrac
			agg.ExtrapolatedFrac += row.ExtrapolatedFrac
		}
		tf := float64(p.Trials)
		agg.DeliveredFrac /= tf
		agg.DegradedFrac /= tf
		agg.RetriedFrac /= tf
		agg.ExtrapolatedFrac /= tf
		agg.MeanErr = stats.Mean(allErrs)
		agg.P90Err = stats.Percentile(allErrs, 90)
		rows = append(rows, agg)
	}
	return rows, nil
}
