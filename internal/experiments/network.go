package experiments

import (
	"math"

	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/randx"
	"fttt/internal/sampling"
	"fttt/internal/wsnnet"
)

// LifetimeRow compares the network lifetime (tracking rounds until the
// first node exhausts its battery, and until 25% have) of the flat
// greedy-forwarding topology against the clustered/aggregating one.
type LifetimeRow struct {
	Topology        string
	RoundsToFirst   int
	RoundsToQuarter int
	EnergyPerRound  float64 // mean joules per round before first death
	DeliveredFrac   float64 // reports delivered / heard over the run
}

// NetworkLifetime runs both topologies on the same deployment with a
// small battery until a quarter of the nodes die (or maxRounds).
func NetworkLifetime(p Params, n, clusterK, maxRounds int, battery float64) ([]LifetimeRow, error) {
	dep := deploy.Random(p.Field, n, randx.New(p.Seed).Split("lifetime-deploy"))
	bs := geom.Pt(p.Field.Min.X+5, p.Field.Min.Y+5)
	mk := func() (*wsnnet.Network, error) {
		return wsnnet.New(wsnnet.Config{
			Nodes:         dep.Positions(),
			BaseStation:   bs,
			Model:         p.Model,
			SensingRange:  p.Range,
			CommRange:     50,
			HopLoss:       0.02,
			HopDelay:      0.002,
			ReportBits:    256,
			Epsilon:       p.Epsilon,
			InitialEnergy: battery,
			Obs:           p.Obs,
		})
	}
	targetAt := func(round int) geom.Point {
		// A slow circular patrol keeps the load spatially varied.
		theta := float64(round) * 0.05
		c := p.Field.Center()
		return p.Field.Clamp(geom.Pt(c.X+25*math.Cos(theta), c.Y+25*math.Sin(theta)))
	}

	run := func(clustered bool) (LifetimeRow, error) {
		net, err := mk()
		if err != nil {
			return LifetimeRow{}, err
		}
		var cl *wsnnet.Clusters
		name := "flat-greedy"
		if clustered {
			cl, err = net.FormClusters(clusterK)
			if err != nil {
				return LifetimeRow{}, err
			}
			name = "clustered"
		}
		rng := randx.New(p.Seed).Split("lifetime-run")
		row := LifetimeRow{Topology: name}
		heard, delivered := 0, 0
		var energyAtFirst float64
		quarter := n - n/4
		for round := 0; round < maxRounds; round++ {
			var st wsnnet.RoundStats
			if clustered {
				_, st = net.CollectRoundClustered(targetAt(round), p.K, cl, rng.SplitN("r", round))
			} else {
				_, st = net.CollectRound(targetAt(round), p.K, rng.SplitN("r", round))
			}
			heard += st.Heard
			delivered += st.Delivered
			alive := net.AliveCount()
			if row.RoundsToFirst == 0 && alive < n {
				row.RoundsToFirst = round + 1
				energyAtFirst = sum(net.Energy)
			}
			if alive <= quarter {
				row.RoundsToQuarter = round + 1
				break
			}
		}
		if row.RoundsToFirst == 0 {
			row.RoundsToFirst = maxRounds
		}
		if row.RoundsToQuarter == 0 {
			row.RoundsToQuarter = maxRounds
		}
		row.EnergyPerRound = energyAtFirst / float64(row.RoundsToFirst)
		if heard > 0 {
			row.DeliveredFrac = float64(delivered) / float64(heard)
		}
		return row, nil
	}

	flat, err := run(false)
	if err != nil {
		return nil, err
	}
	clustered, err := run(true)
	if err != nil {
		return nil, err
	}
	return []LifetimeRow{flat, clustered}, nil
}

// SyncAccuracyRow reports the residual clock offset of the [28]-style
// beacon sync and the induced sampling-position displacement for the
// fastest Table 1 target.
type SyncAccuracyRow struct {
	SyncPeriod  float64 // seconds between beacon floods
	MaxOffset   float64 // worst |offset| observed between syncs
	MaxPosError float64 // offset × v_max: worst induced position shift
}

// SyncAccuracy cycles sync/drift over a range of beacon periods.
func SyncAccuracy(p Params, periods []float64) ([]SyncAccuracyRow, error) {
	dep := deploy.Random(p.Field, 16, randx.New(p.Seed).Split("sync-deploy"))
	net, err := wsnnet.New(wsnnet.Config{
		Nodes:        dep.Positions(),
		BaseStation:  geom.Pt(p.Field.Min.X+5, p.Field.Min.Y+5),
		Model:        p.Model,
		SensingRange: p.Range,
		CommRange:    50,
		HopDelay:     0.002,
		ReportBits:   256,
		Obs:          p.Obs,
	})
	if err != nil {
		return nil, err
	}
	var rows []SyncAccuracyRow
	for _, period := range periods {
		cm, err := wsnnet.NewClockModel(net, 0.5, 80, 5e-5, randx.New(p.Seed).SplitN("clock", int(period*1000)))
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for cycle := 0; cycle < 20; cycle++ {
			cm.Synchronize()
			cm.Advance(period)
			if o := cm.MaxAbsOffset(); o > worst {
				worst = o
			}
		}
		rows = append(rows, SyncAccuracyRow{
			SyncPeriod:  period,
			MaxOffset:   worst,
			MaxPosError: worst * p.VMax,
		})
	}
	return rows, nil
}

// DutyCycleRow compares always-on collection against tracking-driven
// wake-up at one wake radius.
type DutyCycleRow struct {
	WakeRadius  float64 // 0 marks the always-on row
	MeanErr     float64
	EnergyTotal float64
	AwakeFrac   float64 // awake / in-range over the run
}

// DutyCycling tracks a random-waypoint target through the WSN substrate
// with FTTT, waking only nodes near the previous estimate. The wake
// radius is swept; radius 0 encodes the always-on baseline.
func DutyCycling(p Params, n int, radii []float64) ([]DutyCycleRow, error) {
	root := randx.New(p.Seed).Split("duty-cycle")
	dep := deploy.Random(p.Field, n, root.Split("deploy"))
	mob := mobility.RandomWaypoint(p.Field, p.VMin, p.VMax, p.Duration, root.Split("mob"))
	tps := mobility.Sample(mob, p.Duration, 1/p.LocPeriod)

	cfg := core.Config{
		Field:         p.Field,
		Nodes:         dep.Positions(),
		Model:         p.Model,
		Epsilon:       p.Epsilon,
		SamplingTimes: p.K,
		Range:         p.Range,
		CellSize:      p.CellSize,
		Obs:           p.Obs,
	}
	base, err := core.New(cfg)
	if err != nil {
		return nil, err
	}

	run := func(radius float64) (DutyCycleRow, error) {
		net, err := wsnnet.New(wsnnet.Config{
			Nodes:        dep.Positions(),
			BaseStation:  geom.Pt(p.Field.Min.X+5, p.Field.Min.Y+5),
			Model:        p.Model,
			SensingRange: p.Range,
			CommRange:    50,
			HopLoss:      0.02,
			HopDelay:     0.002,
			ReportBits:   256,
			Epsilon:      p.Epsilon,
			Obs:          p.Obs,
		})
		if err != nil {
			return DutyCycleRow{}, err
		}
		tr, err := core.NewWithDivision(cfg, base.Division())
		if err != nil {
			return DutyCycleRow{}, err
		}
		rng := root.SplitN("run", int(radius))
		row := DutyCycleRow{WakeRadius: radius}
		var errSum float64
		heard, asleep := 0, 0
		focus := p.Field.Center()
		for i, tp := range tps {
			var g *sampling.Group
			var st wsnnet.RoundStats
			if radius > 0 {
				g, st = net.CollectRoundFocused(tp.Pos, focus, radius, p.K, rng.SplitN("r", i))
			} else {
				g, st = net.CollectRound(tp.Pos, p.K, rng.SplitN("r", i))
			}
			est := tr.LocalizeGroup(g)
			focus = est.Pos
			errSum += est.Pos.Dist(tp.Pos)
			heard += st.Heard
			asleep += st.Asleep
			row.EnergyTotal += st.EnergySpent
		}
		row.MeanErr = errSum / float64(len(tps))
		if heard > 0 {
			row.AwakeFrac = 1 - float64(asleep)/float64(heard)
		}
		return row, nil
	}

	rows := make([]DutyCycleRow, 0, len(radii)+1)
	always, err := run(0)
	if err != nil {
		return nil, err
	}
	rows = append(rows, always)
	for _, radius := range radii {
		row, err := run(radius)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MACRow compares delivery under a slotted-contention MAC for the flat
// and clustered topologies at one contention-window size.
type MACRow struct {
	Slots              int // 0 = ideal MAC
	FlatDelivered      float64
	ClusteredDelivered float64
}

// MACContention sweeps the contention window, measuring the fraction of
// heard reports delivered by each topology. TDMA inside clusters shields
// member transmissions, so clustering should win under tight windows.
func MACContention(p Params, n, clusterK, rounds int, slots []int) ([]MACRow, error) {
	dep := deploy.Random(p.Field, n, randx.New(p.Seed).Split("mac-deploy"))
	bs := geom.Pt(p.Field.Min.X+5, p.Field.Min.Y+5)
	run := func(slotCount int, clustered bool) (float64, error) {
		net, err := wsnnet.New(wsnnet.Config{
			Nodes:           dep.Positions(),
			BaseStation:     bs,
			Model:           p.Model,
			SensingRange:    p.Range,
			CommRange:       50,
			HopDelay:        0.002,
			ReportBits:      256,
			Epsilon:         p.Epsilon,
			ContentionSlots: slotCount,
			Obs:             p.Obs,
		})
		if err != nil {
			return 0, err
		}
		var cl *wsnnet.Clusters
		if clustered {
			cl, err = net.FormClusters(clusterK)
			if err != nil {
				return 0, err
			}
		}
		rng := randx.New(p.Seed).Split("mac-run")
		heard, delivered := 0, 0
		for round := 0; round < rounds; round++ {
			pos := geom.Pt(
				p.Field.Min.X+10+float64(round%5)*15,
				p.Field.Min.Y+10+float64(round/5%5)*15,
			)
			var st wsnnet.RoundStats
			if clustered {
				_, st = net.CollectRoundClustered(pos, p.K, cl, rng.SplitN("r", round))
			} else {
				_, st = net.CollectRound(pos, p.K, rng.SplitN("r", round))
			}
			heard += st.Heard
			delivered += st.Delivered
		}
		if heard == 0 {
			return 0, nil
		}
		return float64(delivered) / float64(heard), nil
	}
	var rows []MACRow
	for _, s := range slots {
		flat, err := run(s, false)
		if err != nil {
			return nil, err
		}
		clustered, err := run(s, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MACRow{Slots: s, FlatDelivered: flat, ClusteredDelivered: clustered})
	}
	return rows, nil
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
