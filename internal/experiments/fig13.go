package experiments

import (
	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/randx"
	"fttt/internal/stats"
	"fttt/internal/wsnnet"
)

// Fig13Result reproduces the outdoor system evaluation of Sec. 7.3:
// 9 motes in a cross "+" layout track a target walking a "⊔"-shaped
// trace at 1-5 m/s, with reports carried to the base station by the
// simulated WSN substrate (DESIGN.md §2 substitution for the Crossbow
// IRIS testbed).
type Fig13Result struct {
	Nodes       []geom.Point
	BaseStation geom.Point
	Basic       TrackedSeries // Fig. 13(c)
	Extended    TrackedSeries // Fig. 13(d)
	// Network substrate statistics over all rounds.
	RoundsRun      int
	ReportsHeard   int
	ReportsArrived int
	EnergySpent    float64
	MeanHops       float64
}

// Fig13 runs the outdoor-system reproduction.
func Fig13(p Params) (*Fig13Result, error) {
	root := randx.New(p.Seed).Split("fig13")

	dep := deploy.Cross(p.Field, 9, 30)
	// The base station sits just off the cross, as in the playground
	// deployment; it must be inside the comm range of at least the inner
	// nodes or every report dies in a routing void.
	bs := geom.Pt(p.Field.Min.X+30, p.Field.Min.Y+30)
	waypoints := mobility.SquareWave(p.Field, 25)
	mob := mobility.VariableSpeedWaypoints(waypoints, p.VMin, p.VMax, root.Split("walk"))
	dur, _ := mobility.Duration(mob)
	if p.Duration > 0 && dur > p.Duration {
		dur = p.Duration
	}

	net, err := wsnnet.New(wsnnet.Config{
		Nodes:        dep.Positions(),
		BaseStation:  bs,
		Model:        p.Model,
		SensingRange: p.Range,
		CommRange:    45,
		HopLoss:      0.05,
		HopDelay:     0.002,
		ReportBits:   256,
		Epsilon:      p.Epsilon,
		Obs:          p.Obs,
	})
	if err != nil {
		return nil, err
	}

	mkTracker := func(variant core.Variant) (*core.Tracker, error) {
		return core.New(core.Config{
			Field:         p.Field,
			Nodes:         dep.Positions(),
			Model:         p.Model,
			Epsilon:       p.Epsilon,
			SamplingTimes: p.K,
			Range:         p.Range,
			CellSize:      p.CellSize,
			Variant:       variant,
			Obs:           p.Obs,
		})
	}
	basicTr, err := mkTracker(core.Basic)
	if err != nil {
		return nil, err
	}
	extTr, err := core.NewWithDivision(func() core.Config {
		c := basicTr.Config()
		c.Variant = core.Extended
		return c
	}(), basicTr.Division())
	if err != nil {
		return nil, err
	}

	res := &Fig13Result{Nodes: dep.Positions(), BaseStation: bs}
	locRate := 1 / p.LocPeriod
	tps := mobility.Sample(mob, dur, locRate)

	times := make([]float64, len(tps))
	truth := make([]geom.Point, len(tps))
	basicEst := make([]geom.Point, len(tps))
	extEst := make([]geom.Point, len(tps))
	rounds := root.Split("rounds")
	for i, tp := range tps {
		g, st := net.CollectRound(tp.Pos, p.K, rounds.SplitN("r", i))
		res.RoundsRun++
		res.ReportsHeard += st.Heard
		res.ReportsArrived += st.Delivered
		res.EnergySpent += st.EnergySpent
		times[i] = tp.T
		truth[i] = tp.Pos
		basicEst[i] = basicTr.LocalizeGroup(g).Pos
		extEst[i] = extTr.LocalizeGroup(g).Pos
	}
	res.MeanHops = net.MeanHopCount()

	mkSeries := func(m Method, est []geom.Point) TrackedSeries {
		errs := make([]float64, len(est))
		for i := range est {
			errs[i] = est[i].Dist(truth[i])
		}
		return TrackedSeries{
			Method:    m,
			Times:     times,
			True:      truth,
			Estimates: est,
			Errors:    errs,
			Summary:   stats.Summarize(errs),
		}
	}
	res.Basic = mkSeries(FTTTBasic, basicEst)
	res.Extended = mkSeries(FTTTExtended, extEst)
	return res, nil
}
