package experiments

import (
	"runtime"
	"sync"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/stats"
)

// TrackedSeries is one method's estimates against the shared truth.
type TrackedSeries struct {
	Method    Method
	Times     []float64
	True      []geom.Point
	Estimates []geom.Point
	Errors    []float64
	Summary   stats.Summary
}

func newTrackedSeries(m Method, s *scenario, est []geom.Point) TrackedSeries {
	errs := s.errorsOf(est)
	return TrackedSeries{
		Method:    m,
		Times:     s.times,
		True:      s.trace,
		Estimates: est,
		Errors:    errs,
		Summary:   stats.Summarize(errs),
	}
}

// Fig10Result reproduces Fig. 10: the estimated position points of PM and
// FTTT under a grid deployment (a, b) and a random deployment (c, d).
type Fig10Result struct {
	GridPM      TrackedSeries // Fig. 10(a)
	GridFTTT    TrackedSeries // Fig. 10(b)
	RandomPM    TrackedSeries // Fig. 10(c)
	RandomFTTT  TrackedSeries // Fig. 10(d)
	GridNodes   []geom.Point
	RandomNodes []geom.Point
}

// Fig10 runs the tracking example of Sec. 7.1 (k=5, ε=1).
func Fig10(p Params) (*Fig10Result, error) {
	p.K = 5
	p.Epsilon = 1
	root := randx.New(p.Seed).Split("fig10")

	grid, err := newScenario(p, 16, true, root.Split("grid"))
	if err != nil {
		return nil, err
	}
	gridEst, err := grid.Run(PM, FTTTBasic)
	if err != nil {
		return nil, err
	}
	random, err := newScenario(p, 10, false, root.Split("random"))
	if err != nil {
		return nil, err
	}
	randomEst, err := random.Run(PM, FTTTBasic)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{
		GridPM:      newTrackedSeries(PM, grid, gridEst[PM]),
		GridFTTT:    newTrackedSeries(FTTTBasic, grid, gridEst[FTTTBasic]),
		RandomPM:    newTrackedSeries(PM, random, randomEst[PM]),
		RandomFTTT:  newTrackedSeries(FTTTBasic, random, randomEst[FTTTBasic]),
		GridNodes:   grid.nodes,
		RandomNodes: random.nodes,
	}, nil
}

// Fig11aResult reproduces Fig. 11(a): dynamic tracking error along the
// time series for FTTT, PM and Direct MLE (k=5, ε=1, n=10).
type Fig11aResult struct {
	Times  []float64
	Series map[Method][]float64
}

// Fig11a runs the dynamic-error comparison.
func Fig11a(p Params) (*Fig11aResult, error) {
	p.K = 5
	p.Epsilon = 1
	root := randx.New(p.Seed).Split("fig11a")
	s, err := newScenario(p, 10, false, root)
	if err != nil {
		return nil, err
	}
	est, err := s.Run(FTTTBasic, PM, DirectMLE)
	if err != nil {
		return nil, err
	}
	out := &Fig11aResult{Times: s.times, Series: make(map[Method][]float64)}
	for m, e := range est {
		out.Series[m] = s.errorsOf(e)
	}
	return out, nil
}

// SweepRow is one point of a mean/stddev-versus-n sweep.
type SweepRow struct {
	N      int
	Mean   map[Method]float64
	StdDev map[Method]float64
}

// Fig11bc reproduces Fig. 11(b) and (c): mean tracking error and its
// standard deviation versus the number of randomly deployed sensor nodes
// (5..40; k=5, ε=1), for FTTT, PM and Direct MLE. Each row averages
// p.Trials independent deployments and traces.
func Fig11bc(p Params) ([]SweepRow, error) {
	return sweepN(p, []int{5, 10, 15, 20, 25, 30, 35, 40},
		[]Method{FTTTBasic, PM, DirectMLE}, "fig11bc")
}

// Fig12cdRow is kept structurally identical to SweepRow; Fig. 12(c,d)
// compares the Basic and Extended FTTT variants.
// Fig12cd reproduces Fig. 12(c) and (d) (k=5, ε=1).
func Fig12cd(p Params) ([]SweepRow, error) {
	return sweepN(p, []int{10, 15, 20, 25, 30, 35, 40},
		[]Method{FTTTBasic, FTTTExtended}, "fig12cd")
}

// sweepN runs the given methods over a node-count sweep. Trials are
// independent (each derives its own random substream), so they run
// concurrently; means and deviations are order-independent, keeping the
// output deterministic.
func sweepN(p Params, ns []int, methods []Method, label string) ([]SweepRow, error) {
	root := randx.New(p.Seed).Split(label)
	rows := make([]SweepRow, 0, len(ns))
	for _, n := range ns {
		n := n
		perMethod, err := parallelTrials(p.Trials, func(trial int) (map[Method][]float64, error) {
			s, err := newScenario(p, n, false, root.SplitN(label, n*1000+trial))
			if err != nil {
				return nil, err
			}
			est, err := s.Run(methods...)
			if err != nil {
				return nil, err
			}
			out := make(map[Method][]float64, len(est))
			for m, e := range est {
				out[m] = s.errorsOf(e)
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		row := SweepRow{
			N:      n,
			Mean:   make(map[Method]float64),
			StdDev: make(map[Method]float64),
		}
		for _, m := range methods {
			row.Mean[m] = stats.Mean(perMethod[m])
			row.StdDev[m] = stats.StdDev(perMethod[m])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// parallelTrials runs fn for each trial concurrently (bounded by GOMAXPROCS)
// and merges the per-method error slices. The first error wins.
func parallelTrials(trials int, fn func(trial int) (map[Method][]float64, error)) (map[Method][]float64, error) {
	type result struct {
		errs map[Method][]float64
		err  error
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	results := make([]result, trials)
	var wg sync.WaitGroup
	for trial := 0; trial < trials; trial++ {
		trial := trial
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			errs, err := fn(trial)
			results[trial] = result{errs: errs, err: err}
		}()
	}
	wg.Wait()
	merged := make(map[Method][]float64)
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for m, e := range r.errs {
			merged[m] = append(merged[m], e...)
		}
	}
	return merged, nil
}

// Fig12aRow is one sensing-resolution sweep point.
type Fig12aRow struct {
	Epsilon float64
	// MeanErr[n] is FTTT's mean error with n randomly deployed nodes.
	MeanErr map[int]float64
}

// Fig12a reproduces Fig. 12(a): FTTT mean error versus sensing resolution
// ε (0.5..3 dBm) for n ∈ {10, 15, 20, 25} (k=5).
func Fig12a(p Params) ([]Fig12aRow, error) {
	return fig12aSweep(p, []float64{0.5, 1, 1.5, 2, 2.5, 3}, []int{10, 15, 20, 25})
}

// fig12aSweep is Fig12a with explicit sweep lists (trimmed in tests).
func fig12aSweep(p Params, epsilons []float64, ns []int) ([]Fig12aRow, error) {
	p.K = 5
	root := randx.New(p.Seed).Split("fig12a")
	rows := make([]Fig12aRow, 0, len(epsilons))
	for _, eps := range epsilons {
		row := Fig12aRow{Epsilon: eps, MeanErr: make(map[int]float64)}
		for _, n := range ns {
			n, eps := n, eps
			merged, err := parallelTrials(p.Trials, func(trial int) (map[Method][]float64, error) {
				pp := p
				pp.Epsilon = eps
				s, err := newScenario(pp, n, false, root.SplitN("s", int(eps*10)*100000+n*100+trial))
				if err != nil {
					return nil, err
				}
				est, err := s.Run(FTTTBasic)
				if err != nil {
					return nil, err
				}
				return map[Method][]float64{FTTTBasic: s.errorsOf(est[FTTTBasic])}, nil
			})
			if err != nil {
				return nil, err
			}
			row.MeanErr[n] = stats.Mean(merged[FTTTBasic])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig12bRow is one sampling-times sweep point.
type Fig12bRow struct {
	N int
	// MeanErr[k] is FTTT's mean error with grouping sampling times k.
	MeanErr map[int]float64
}

// Fig12b reproduces Fig. 12(b): FTTT mean error versus the number of
// sensor nodes (10..40) under sampling times k ∈ {3, 5, 7, 9} (ε=1).
func Fig12b(p Params) ([]Fig12bRow, error) {
	return fig12bSweep(p, []int{10, 15, 20, 25, 30, 35, 40}, []int{3, 5, 7, 9})
}

// fig12bSweep is Fig12b with explicit sweep lists (trimmed in tests).
func fig12bSweep(p Params, ns, ks []int) ([]Fig12bRow, error) {
	p.Epsilon = 1
	root := randx.New(p.Seed).Split("fig12b")
	rows := make([]Fig12bRow, 0, len(ns))
	for _, n := range ns {
		row := Fig12bRow{N: n, MeanErr: make(map[int]float64)}
		for _, k := range ks {
			n, k := n, k
			merged, err := parallelTrials(p.Trials, func(trial int) (map[Method][]float64, error) {
				pp := p
				pp.K = k
				s, err := newScenario(pp, n, false, root.SplitN("s", k*100000+n*100+trial))
				if err != nil {
					return nil, err
				}
				est, err := s.Run(FTTTBasic)
				if err != nil {
					return nil, err
				}
				return map[Method][]float64{FTTTBasic: s.errorsOf(est[FTTTBasic])}, nil
			})
			if err != nil {
				return nil, err
			}
			row.MeanErr[k] = stats.Mean(merged[FTTTBasic])
		}
		rows = append(rows, row)
	}
	return rows, nil
}
