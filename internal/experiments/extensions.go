package experiments

import (
	"fttt/internal/deploy"
	"fttt/internal/mobility"
	"fttt/internal/randx"
	"fttt/internal/stats"
)

// MethodComparisonRow extends Fig. 11(b,c) beyond the paper's three
// strategies: every tracker in the repository on identical samples.
type MethodComparisonRow struct {
	N      int
	Mean   map[Method]float64
	StdDev map[Method]float64
}

// AllMethods lists every tracking strategy in comparison order.
func AllMethods() []Method {
	return []Method{
		FTTTBasic, FTTTExtended, PM, DirectMLE,
		WCL, PkNN, Trilateration, FTTTKalman, FTTTParticle,
	}
}

// MethodComparison runs every method over a node-count sweep on shared
// samples — the repository's headline comparison table.
func MethodComparison(p Params, ns []int) ([]MethodComparisonRow, error) {
	rows, err := sweepN(p, ns, AllMethods(), "method-comparison")
	if err != nil {
		return nil, err
	}
	out := make([]MethodComparisonRow, len(rows))
	for i, r := range rows {
		out[i] = MethodComparisonRow{N: r.N, Mean: r.Mean, StdDev: r.StdDev}
	}
	return out, nil
}

// MobilityRow compares trackers across target mobility models. PM's
// velocity assumption is tuned to the random waypoint bounds, so motion
// that pauses (dwell in one face) or drifts smoothly (Gauss-Markov)
// probes how much each method leans on mobility assumptions — FTTT
// imposes none (Sec. 2's "extra imposed conditions are not needed").
type MobilityRow struct {
	Model    string
	FTTTMean float64
	PMMean   float64
}

// MobilityRobustness runs FTTT and PM over three mobility models at
// fixed n on shared samples.
func MobilityRobustness(p Params, n int) ([]MobilityRow, error) {
	root := randx.New(p.Seed).Split("mobility-robustness")
	models := []struct {
		name string
		mk   func(rng *randx.Stream) (mobility.Model, error)
	}{
		{"random-waypoint", func(rng *randx.Stream) (mobility.Model, error) {
			return mobility.RandomWaypoint(p.Field, p.VMin, p.VMax, p.Duration, rng), nil
		}},
		{"waypoint+pause", func(rng *randx.Stream) (mobility.Model, error) {
			return mobility.RandomWaypointPause(p.Field, p.VMin, p.VMax, 5, p.Duration, rng), nil
		}},
		{"gauss-markov", func(rng *randx.Stream) (mobility.Model, error) {
			return mobility.NewGaussMarkov(p.Field, (p.VMin+p.VMax)/2, 0.85, p.Duration, 0.1, rng)
		}},
	}
	var rows []MobilityRow
	for _, m := range models {
		perMethod := make(map[Method][]float64)
		for trial := 0; trial < p.Trials; trial++ {
			rng := root.SplitN(m.name, trial)
			dep := deploy.Random(p.Field, n, rng.Split("deploy"))
			mob, err := m.mk(rng.Split("mobility"))
			if err != nil {
				return nil, err
			}
			s, err := newScenarioWithModel(p, dep.Positions(), mob, rng)
			if err != nil {
				return nil, err
			}
			est, err := s.Run(FTTTBasic, PM)
			if err != nil {
				return nil, err
			}
			for mm, e := range est {
				perMethod[mm] = append(perMethod[mm], s.errorsOf(e)...)
			}
		}
		rows = append(rows, MobilityRow{
			Model:    m.name,
			FTTTMean: stats.Mean(perMethod[FTTTBasic]),
			PMMean:   stats.Mean(perMethod[PM]),
		})
	}
	return rows, nil
}

// CoverageRow relates the deployment's sensing coverage to FTTT's error
// at the same n — the knee of Fig. 11(b) coincides with 3-coverage
// saturating.
type CoverageRow struct {
	N          int
	Coverage1  float64 // fraction of field heard by ≥1 node
	Coverage3  float64 // fraction heard by ≥3 nodes
	MeanDegree float64 // mean number of nodes hearing a point
	MeanErr    float64 // FTTT mean error at this n
}

// CoverageVsError sweeps n, measuring coverage (averaged over trials'
// deployments) alongside the tracking error on the same scenarios.
func CoverageVsError(p Params, ns []int) ([]CoverageRow, error) {
	root := randx.New(p.Seed).Split("coverage")
	var rows []CoverageRow
	for _, n := range ns {
		var cov1, cov3, deg, errs []float64
		for trial := 0; trial < p.Trials; trial++ {
			rng := root.SplitN("s", n*100+trial)
			dep := deploy.Random(p.Field, n, rng.Split("deploy"))
			cov1 = append(cov1, dep.Coverage(p.Range, 1, 2))
			cov3 = append(cov3, dep.Coverage(p.Range, 3, 2))
			deg = append(deg, dep.MeanDegree(p.Range, 2))

			s, err := newScenarioWithModel(p, dep.Positions(),
				mobility.RandomWaypoint(p.Field, p.VMin, p.VMax, p.Duration, rng.Split("mobility")),
				rng)
			if err != nil {
				return nil, err
			}
			est, err := s.Run(FTTTBasic)
			if err != nil {
				return nil, err
			}
			errs = append(errs, s.errorsOf(est[FTTTBasic])...)
		}
		rows = append(rows, CoverageRow{
			N:          n,
			Coverage1:  stats.Mean(cov1),
			Coverage3:  stats.Mean(cov3),
			MeanDegree: stats.Mean(deg),
			MeanErr:    stats.Mean(errs),
		})
	}
	return rows, nil
}

// IrregularityRow is the sensing-irregularity robustness sweep: FTTT and
// the certain-sequence baseline under growing DOI. The paper's
// introduction lists sensing irregularity among the uncertainty sources
// FTTT tolerates; this experiment quantifies the claim.
type IrregularityRow struct {
	DOI      float64
	FTTTMean float64
	MLEMean  float64
}

// IrregularityRobustness sweeps the DOI at fixed n.
func IrregularityRobustness(p Params, n int, dois []float64) ([]IrregularityRow, error) {
	var rows []IrregularityRow
	for _, doi := range dois {
		pp := p
		pp.DOI = doi
		perMethod := make(map[Method][]float64)
		for trial := 0; trial < p.Trials; trial++ {
			s, err := newScenarioForSweep(pp, n, trial, "irregularity")
			if err != nil {
				return nil, err
			}
			est, err := s.Run(FTTTBasic, DirectMLE)
			if err != nil {
				return nil, err
			}
			for m, e := range est {
				perMethod[m] = append(perMethod[m], s.errorsOf(e)...)
			}
		}
		rows = append(rows, IrregularityRow{
			DOI:      doi,
			FTTTMean: stats.Mean(perMethod[FTTTBasic]),
			MLEMean:  stats.Mean(perMethod[DirectMLE]),
		})
	}
	return rows, nil
}

// SmoothingRow compares the two ways of getting a smooth trajectory: the
// paper's extended FTTT (no mobility model) versus basic FTTT with
// model-based output filters (Kalman, particle).
type SmoothingRow struct {
	N        int
	Basic    stats.Summary
	Extended stats.Summary
	Kalman   stats.Summary
	Particle stats.Summary
}

// Smoothing runs the four pipelines over shared samples.
func Smoothing(p Params, ns []int) ([]SmoothingRow, error) {
	methods := []Method{FTTTBasic, FTTTExtended, FTTTKalman, FTTTParticle}
	rows := make([]SmoothingRow, 0, len(ns))
	for _, n := range ns {
		perMethod := make(map[Method][]float64)
		for trial := 0; trial < p.Trials; trial++ {
			s, err := newScenarioForSweep(p, n, trial, "smoothing")
			if err != nil {
				return nil, err
			}
			est, err := s.Run(methods...)
			if err != nil {
				return nil, err
			}
			for m, e := range est {
				perMethod[m] = append(perMethod[m], s.errorsOf(e)...)
			}
		}
		rows = append(rows, SmoothingRow{
			N:        n,
			Basic:    stats.Summarize(perMethod[FTTTBasic]),
			Extended: stats.Summarize(perMethod[FTTTExtended]),
			Kalman:   stats.Summarize(perMethod[FTTTKalman]),
			Particle: stats.Summarize(perMethod[FTTTParticle]),
		})
	}
	return rows, nil
}
