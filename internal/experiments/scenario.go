package experiments

import (
	"fmt"

	"fttt/internal/baseline"
	"fttt/internal/byz"
	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/field"
	"fttt/internal/filter"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
)

// Method identifies a tracking strategy under comparison.
type Method int

// The strategies compared in Sec. 7, plus the extension methods
// documented in DESIGN.md: classic range-free/range-based baselines and
// FTTT with model-based output smoothers.
const (
	FTTTBasic Method = iota
	FTTTExtended
	PM
	DirectMLE
	WCL           // weighted centroid localization
	PkNN          // probabilistic k-nearest-neighbour tracker [8]-style
	Trilateration // range-based Gauss-Newton least squares
	FTTTKalman    // basic FTTT + constant-velocity Kalman smoother
	FTTTParticle  // basic FTTT + bootstrap particle smoother
	FTTTDefended  // basic FTTT + Byzantine-sensing defense (internal/byz)
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case FTTTBasic:
		return "FTTT"
	case FTTTExtended:
		return "FTTT-ext"
	case PM:
		return "PM"
	case DirectMLE:
		return "DirectMLE"
	case WCL:
		return "WCL"
	case PkNN:
		return "PkNN"
	case Trilateration:
		return "Trilat"
	case FTTTKalman:
		return "FTTT+KF"
	case FTTTParticle:
		return "FTTT+PF"
	case FTTTDefended:
		return "FTTT+byz"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// scenario bundles one deployment + trace and runs methods over identical
// grouping samplings, the fairness requirement of a method comparison:
// every method sees exactly the same noisy RSS matrices.
type scenario struct {
	p     Params
	nodes []geom.Point
	// trace and times are the true target positions at each localization
	// instant.
	trace []geom.Point
	times []float64
	// groups[i] is the grouping sampling collected at trace[i].
	groups []*sampling.Group
}

// newScenario deploys nodes (random when grid is false), generates a
// random-waypoint trace and pre-draws all grouping samplings.
func newScenario(p Params, n int, grid bool, rng *randx.Stream) (*scenario, error) {
	var dep deploy.Deployment
	if grid {
		dep = deploy.Grid(p.Field, n)
	} else {
		dep = deploy.Random(p.Field, n, rng.Split("deploy"))
	}
	m := mobility.RandomWaypoint(p.Field, p.VMin, p.VMax, p.Duration, rng.Split("mobility"))
	return newScenarioWithModel(p, dep.Positions(), m, rng)
}

// newScenarioForSweep derives the deterministic per-(n, trial) substream
// used by sweep drivers and builds a random-deployment scenario from it.
func newScenarioForSweep(p Params, n, trial int, label string) (*scenario, error) {
	root := randx.New(p.Seed).Split(label)
	return newScenario(p, n, false, root.SplitN(label, n*1000+trial))
}

// newScenarioWithModel is newScenario with an externally supplied
// deployment and mobility model (used by Fig. 10's fixed layouts and
// Fig. 13's outdoor trace).
func newScenarioWithModel(p Params, nodes []geom.Point, m mobility.Model, rng *randx.Stream) (*scenario, error) {
	if p.LocPeriod <= 0 {
		return nil, fmt.Errorf("experiments: non-positive localization period %v", p.LocPeriod)
	}
	locRate := 1 / p.LocPeriod
	tps := mobility.Sample(m, p.Duration, locRate)
	s := &scenario{p: p, nodes: nodes}
	s.trace = make([]geom.Point, len(tps))
	s.times = make([]float64, len(tps))
	for i, tp := range tps {
		s.trace[i] = tp.Pos
		s.times[i] = tp.T
	}
	sampler := &sampling.Sampler{Model: p.Model, Nodes: nodes, Range: p.Range, Epsilon: p.Epsilon}
	if p.DOI > 0 {
		irr := make([]*rf.Irregularity, len(nodes))
		doiRng := rng.Split("doi")
		for i := range irr {
			ir, err := rf.NewIrregularity(p.DOI, 64, doiRng.SplitN("node", i))
			if err != nil {
				return nil, err
			}
			irr[i] = ir
		}
		sampler.Irregularity = irr
	}
	s.groups = make([]*sampling.Group, len(s.trace))
	g := rng.Split("groups")
	for i, pos := range s.trace {
		s.groups[i] = sampler.Sample(pos, p.K, g.SplitN("loc", i))
	}
	return s, nil
}

// divisions builds the two field divisions a comparison needs: the
// uncertain-boundary division for FTTT and the certain bisector division
// for the baselines.
func (s *scenario) divisions(needCertain bool) (uncertain, certain *field.Division, err error) {
	c := s.p.Model.UncertaintyC(s.p.Epsilon)
	rcU, err := field.NewRatioClassifier(s.nodes, c)
	if err != nil {
		return nil, nil, err
	}
	uncertain, err = field.Divide(s.p.Field, rcU, s.p.CellSize)
	if err != nil {
		return nil, nil, err
	}
	if needCertain {
		rcC, err := field.NewRatioClassifier(s.nodes, 1)
		if err != nil {
			return nil, nil, err
		}
		certain, err = field.Divide(s.p.Field, rcC, s.p.CellSize)
		if err != nil {
			return nil, nil, err
		}
	}
	return uncertain, certain, nil
}

// Run tracks the scenario with each requested method and returns the
// per-method estimate series (same indexing as s.trace).
func (s *scenario) Run(methods ...Method) (map[Method][]geom.Point, error) {
	needCertain := false
	for _, m := range methods {
		if m == PM || m == DirectMLE {
			needCertain = true
		}
	}
	uncertainDiv, certainDiv, err := s.divisions(needCertain)
	if err != nil {
		return nil, err
	}

	out := make(map[Method][]geom.Point, len(methods))
	for _, m := range methods {
		est := make([]geom.Point, len(s.trace))
		switch m {
		case FTTTBasic, FTTTExtended, FTTTKalman, FTTTParticle, FTTTDefended:
			cfg := core.Config{
				Field:         s.p.Field,
				Nodes:         s.nodes,
				Model:         s.p.Model,
				Epsilon:       s.p.Epsilon,
				SamplingTimes: s.p.K,
				Range:         s.p.Range,
				CellSize:      s.p.CellSize,
				Obs:           s.p.Obs,
			}
			if m == FTTTExtended {
				cfg.Variant = core.Extended
			}
			if m == FTTTDefended {
				cfg.Defense = &byz.Config{Enabled: true}
			}
			tr, err := core.NewWithDivision(cfg, uncertainDiv)
			if err != nil {
				return nil, err
			}
			var smoother filter.Smoother
			switch m {
			case FTTTKalman:
				// Measurement std ≈ typical FTTT error; process noise
				// matched to the 1-5 m/s random-waypoint dynamics.
				smoother, err = filter.NewKalman(2, 6)
			case FTTTParticle:
				var pf *filter.Particle
				pf, err = filter.NewParticle(s.p.Field, 400, 3, 6,
					randx.New(s.p.Seed).Split("particle-smoother"))
				smoother = pf
			}
			if err != nil {
				return nil, err
			}
			prevT := 0.0
			for i, g := range s.groups {
				raw := tr.LocalizeGroup(g).Pos
				if smoother == nil {
					est[i] = raw
					continue
				}
				dt := 0.0
				if i > 0 {
					dt = s.times[i] - prevT
				}
				prevT = s.times[i]
				est[i] = smoother.Update(raw, dt)
			}
		case DirectMLE:
			d := baseline.NewDirectMLEWithDivision(certainDiv, s.nodes)
			for i, g := range s.groups {
				est[i] = d.LocalizeGroup(g)
			}
		case PM:
			pm, err := baseline.NewPMWithDivision(certainDiv, s.nodes, baseline.PMConfig{
				MaxVelocity: s.p.VMax,
				Period:      s.p.LocPeriod,
			})
			if err != nil {
				return nil, err
			}
			for i, g := range s.groups {
				est[i] = pm.LocalizeGroup(g)
			}
		case WCL:
			w, err := baseline.NewWCL(s.p.Field, s.nodes)
			if err != nil {
				return nil, err
			}
			for i, g := range s.groups {
				est[i] = w.LocalizeGroup(g)
			}
		case PkNN:
			pk, err := baseline.NewPkNN(s.p.Field, s.nodes, s.p.Model, 4)
			if err != nil {
				return nil, err
			}
			for i, g := range s.groups {
				est[i] = pk.LocalizeGroup(g)
			}
		case Trilateration:
			tl, err := baseline.NewTrilateration(s.p.Field, s.nodes, s.p.Model)
			if err != nil {
				return nil, err
			}
			for i, g := range s.groups {
				est[i] = tl.LocalizeGroup(g)
			}
		default:
			return nil, fmt.Errorf("experiments: unknown method %v", m)
		}
		out[m] = est
	}
	return out, nil
}

// errorsOf converts an estimate series into per-point tracking errors.
func (s *scenario) errorsOf(est []geom.Point) []float64 {
	errs := make([]float64, len(est))
	for i := range est {
		errs[i] = est[i].Dist(s.trace[i])
	}
	return errs
}
