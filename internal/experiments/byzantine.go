package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fttt/internal/baseline"
	"fttt/internal/byz"
	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/faults"
	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/randx"
	"fttt/internal/sampling"
	"fttt/internal/stats"
)

// ByzantineRow reports tracking quality at one malicious-node fraction
// of the Byzantine sweep (DESIGN.md §15): a coalition of MaliciousFrac
// of the deployment colludes on a decoy position from t=0, and the same
// faulted samplings are tracked by FTTT with the byz defense armed,
// vanilla FTTT, and the PM / Direct MLE baselines.
type ByzantineRow struct {
	// MaliciousFrac is the scripted colluding fraction; Colluders is the
	// resulting coalition size (identical across trials — the scheduler
	// rounds frac·n to a count).
	MaliciousFrac float64
	Colluders     int
	// DefendedMean/P90 summarise the per-round error (m) of FTTT with
	// the Byzantine defense; VanillaMean/P90 the same tracker without it.
	DefendedMean float64
	DefendedP90  float64
	VanillaMean  float64
	VanillaP90   float64
	// DefendedSteadyMean/VanillaSteadyMean summarise the same runs after
	// the first byzBurnIn rounds of each trial: the defense needs a few
	// rounds of evidence before it convicts, so the full-run mean mixes
	// the detector's transient with its converged behaviour while the
	// steady-state mean isolates what the defense delivers once armed.
	DefendedSteadyMean float64
	VanillaSteadyMean  float64
	// PMMean / DirectMLEMean are the baselines on the same samplings.
	PMMean        float64
	DirectMLEMean float64
	// SuspectsMean is the mean number of nodes the defense holds flagged
	// at end of run; SuspectsTruePos is the fraction of those flags that
	// name scripted colluders (1 = no false accusations).
	SuspectsMean    float64
	SuspectsTruePos float64
}

// The Byzantine sweep runs a fixed adversarial scenario so that rows
// differ only in the coalition size. The target patrols the main
// diagonal corridor between byzPatrolA and byzPatrolB — an inset
// ping-pong beat that keeps it inside the deployment's well-covered
// interior — at a slow pinned speed (byzVMin..byzVMax m/s, below the
// paper's 5 m/s cap) so each pass keeps the target inside a given
// node's range for several consecutive rounds: exactly the regime where
// a colluder gets to repeat its lie and the defense gets the repeated
// evidence it needs. The coalition colludes on byzDecoy, a phantom
// position beyond the field's south-east corner: far enough outside
// that a colluder's claimed RSS (path loss to the decoy) is both a
// large tracking distortion and physically implausible — below what any
// in-range target could produce — while the rest of the deployment
// still out-votes it.
var (
	byzPatrolA = geom.Pt(25, 25)
	byzPatrolB = geom.Pt(75, 75)
	byzDecoy   = geom.Pt(130, -30)
)

const (
	byzVMin = 1.0
	byzVMax = 2.0
	// byzBurnIn is the number of initial rounds per trial excluded from
	// the steady-state means (the defense's evidence-accumulation
	// transient; cfg.MinRounds plus a conviction's worth of slack).
	byzBurnIn = 20
)

// byzPatrol is the scenario's target route: ping-pong legs between the
// corridor endpoints, with enough legs to outlast the run at the
// maximum patrol speed.
func byzPatrol(p Params) []geom.Point {
	legs := int(p.Duration*byzVMax/byzPatrolA.Dist(byzPatrolB)) + 2
	pts := []geom.Point{byzPatrolA}
	for i := 0; i < legs; i++ {
		if i%2 == 0 {
			pts = append(pts, byzPatrolB)
		} else {
			pts = append(pts, byzPatrolA)
		}
	}
	return pts
}

// ByzantineScript is the adversarial scenario the sweep injects: a
// coalition of round(frac·n) nodes colludes on the decoy from t=0. The
// coalition is chosen worst-case, not randomly: reporting is gated by
// the true target distance, so a colluder only gets to tell its lie
// while the target is genuinely nearby — picking the nodes closest to
// the patrol corridor maximises the coalition's speaking time and
// therefore its damage. Exported so the golden fixtures and docs can
// replay the exact sweep scenario.
func ByzantineScript(frac float64, nodes []geom.Point) (*faults.Script, error) {
	coalition := worstCaseCoalition(frac, nodes)
	if len(coalition) == 0 {
		return faults.Parse(fmt.Sprintf("collude at=0 frac=0 x=%g y=%g", byzDecoy.X, byzDecoy.Y))
	}
	list := make([]string, len(coalition))
	for i, c := range coalition {
		list[i] = fmt.Sprint(c)
	}
	return faults.Parse(fmt.Sprintf("collude at=0 nodes=%s x=%g y=%g",
		strings.Join(list, ","), byzDecoy.X, byzDecoy.Y))
}

// worstCaseCoalition returns the round(frac·n) node indices nearest the
// patrol corridor segment, in index order (index tie-break, so the
// choice is deterministic on the symmetric grid).
func worstCaseCoalition(frac float64, nodes []geom.Point) []int {
	count := int(math.Round(frac * float64(len(nodes))))
	if count <= 0 {
		return nil
	}
	if count > len(nodes) {
		count = len(nodes)
	}
	corridor := geom.Segment{A: byzPatrolA, B: byzPatrolB}
	idx := make([]int, len(nodes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da, db := corridor.DistTo(nodes[idx[a]]), corridor.DistTo(nodes[idx[b]])
		if da != db {
			return da < db
		}
		return idx[a] < idx[b] // deterministic tie-break on the grid
	})
	coalition := append([]int(nil), idx[:count]...)
	sort.Ints(coalition)
	return coalition
}

// byzantineDivisions builds the shared field divisions once per sweep:
// the deployment is a fixed grid, so every trial and fraction reuses the
// same uncertain (FTTT) and certain (baselines) divisions.
func byzantineDivisions(p Params, nodes []geom.Point) (uncertain, certain *field.Division, err error) {
	rcU, err := field.NewRatioClassifier(nodes, p.Model.UncertaintyC(p.Epsilon))
	if err != nil {
		return nil, nil, err
	}
	uncertain, err = field.Divide(p.Field, rcU, p.CellSize)
	if err != nil {
		return nil, nil, err
	}
	rcC, err := field.NewRatioClassifier(nodes, 1)
	if err != nil {
		return nil, nil, err
	}
	certain, err = field.Divide(p.Field, rcC, p.CellSize)
	if err != nil {
		return nil, nil, err
	}
	return uncertain, certain, nil
}

// byzTrial is one (fraction, trial) run: the shared faulted samplings
// and every method's estimate series over them.
type byzTrial struct {
	trace    []geom.Point
	times    []float64
	defended []geom.Point
	vanilla  []geom.Point
	pm       []geom.Point
	mle      []geom.Point
	// suspects is the defense's end-of-run flag list; truePos counts how
	// many of those are scripted colluders, colluders the coalition size.
	suspects  []int
	truePos   int
	colluders int
}

// runByzantineTrial draws one trace + faulted sampling sequence and runs
// all four methods over the identical groups — the fairness requirement
// of the comparison. The trial substream is independent of frac, so rows
// are paired: row-to-row differences isolate the coalition itself.
func runByzantineTrial(p Params, nodes []geom.Point, frac float64, trial int,
	uncertainDiv, certainDiv *field.Division) (*byzTrial, error) {
	n := len(nodes)
	root := randx.New(p.Seed).Split("byzantine")
	rng := root.SplitN("trial", trial)

	script, err := ByzantineScript(frac, nodes)
	if err != nil {
		return nil, err
	}
	sched := faults.New(*script, n, p.Seed+uint64(trial))
	sched.SetGeometry(nodes, p.Model)

	if p.LocPeriod <= 0 {
		return nil, fmt.Errorf("experiments: non-positive localization period %v", p.LocPeriod)
	}
	m := mobility.VariableSpeedWaypoints(byzPatrol(p), byzVMin, byzVMax, rng.Split("mobility"))
	tps := mobility.Sample(m, p.Duration, 1/p.LocPeriod)

	tr := &byzTrial{
		trace: make([]geom.Point, len(tps)),
		times: make([]float64, len(tps)),
	}
	// Collude is draw-preserving (PerturbRSS consumes no randomness), so
	// the noise below is byte-identical across fractions of the sweep.
	sampler := &sampling.Sampler{
		Model: p.Model, Nodes: nodes, Range: p.Range, Epsilon: p.Epsilon,
		Faults: sched,
	}
	groups := make([]*sampling.Group, len(tps))
	g := rng.Split("groups")
	for i, tp := range tps {
		tr.trace[i] = tp.Pos
		tr.times[i] = tp.T
		sched.Seek(tp.T)
		groups[i] = sampler.Sample(tp.Pos, p.K, g.SplitN("loc", i))
	}
	for i := 0; i < n; i++ {
		if sched.Colluding(i) {
			tr.colluders++
		}
	}

	mkTracker := func(defend bool) (*core.Tracker, error) {
		cfg := core.Config{
			Field:         p.Field,
			Nodes:         nodes,
			Model:         p.Model,
			Epsilon:       p.Epsilon,
			SamplingTimes: p.K,
			Range:         p.Range,
			CellSize:      p.CellSize,
			Obs:           p.Obs,
		}
		if defend {
			cfg.Defense = &byz.Config{Enabled: true}
		}
		return core.NewWithDivision(cfg, uncertainDiv)
	}
	defended, err := mkTracker(true)
	if err != nil {
		return nil, err
	}
	vanilla, err := mkTracker(false)
	if err != nil {
		return nil, err
	}
	pm, err := baseline.NewPMWithDivision(certainDiv, nodes, baseline.PMConfig{
		MaxVelocity: byzVMax,
		Period:      p.LocPeriod,
	})
	if err != nil {
		return nil, err
	}
	mle := baseline.NewDirectMLEWithDivision(certainDiv, nodes)

	tr.defended = make([]geom.Point, len(groups))
	tr.vanilla = make([]geom.Point, len(groups))
	tr.pm = make([]geom.Point, len(groups))
	tr.mle = make([]geom.Point, len(groups))
	for i, grp := range groups {
		tr.defended[i] = defended.LocalizeGroup(grp).Pos
		tr.vanilla[i] = vanilla.LocalizeGroup(grp).Pos
		tr.pm[i] = pm.LocalizeGroup(grp)
		tr.mle[i] = mle.LocalizeGroup(grp)
	}
	tr.suspects = defended.Defense().Suspects()
	for _, s := range tr.suspects {
		if sched.Colluding(s) {
			tr.truePos++
		}
	}
	return tr, nil
}

func (tr *byzTrial) errorsOf(est []geom.Point) []float64 {
	errs := make([]float64, len(est))
	for i := range est {
		errs[i] = est[i].Dist(tr.trace[i])
	}
	return errs
}

// steadyErrorsOf is errorsOf restricted to rounds past the burn-in.
func (tr *byzTrial) steadyErrorsOf(est []geom.Point) []float64 {
	errs := tr.errorsOf(est)
	if len(errs) <= byzBurnIn {
		return errs
	}
	return errs[byzBurnIn:]
}

// Byzantine sweeps the colluding-node fraction against tracking error:
// the accuracy-versus-fraction-of-malicious-nodes curves of DESIGN.md
// §15. Each trial deploys n nodes on a grid (a fixed geometry isolates
// the attack variable from deployment luck and lets the field division
// be shared), runs the pinned diagonal patrol for p.Duration, and feeds
// the identical colluder-corrupted samplings to defended FTTT, vanilla
// FTTT, PM and Direct MLE. With frac=0 the defended and vanilla series
// are byte-identical (the honest byte-identity contract); past n/2
// colluders no voting scheme can help (the k-malicious bound of Delaët
// et al.), so sweeps stay below 0.5.
func Byzantine(p Params, n int, fracs []float64) ([]ByzantineRow, error) {
	nodes := deploy.Grid(p.Field, n).Positions()
	uncertainDiv, certainDiv, err := byzantineDivisions(p, nodes)
	if err != nil {
		return nil, err
	}
	rows := make([]ByzantineRow, 0, len(fracs))
	for _, frac := range fracs {
		agg := ByzantineRow{MaliciousFrac: frac}
		var def, van, pms, mles []float64
		var defS, vanS []float64
		flagged, truePos := 0, 0
		for trial := 0; trial < p.Trials; trial++ {
			tr, err := runByzantineTrial(p, nodes, frac, trial, uncertainDiv, certainDiv)
			if err != nil {
				return nil, err
			}
			def = append(def, tr.errorsOf(tr.defended)...)
			van = append(van, tr.errorsOf(tr.vanilla)...)
			defS = append(defS, tr.steadyErrorsOf(tr.defended)...)
			vanS = append(vanS, tr.steadyErrorsOf(tr.vanilla)...)
			pms = append(pms, tr.errorsOf(tr.pm)...)
			mles = append(mles, tr.errorsOf(tr.mle)...)
			flagged += len(tr.suspects)
			truePos += tr.truePos
			agg.Colluders = tr.colluders
		}
		agg.DefendedMean = stats.Mean(def)
		agg.DefendedP90 = stats.Percentile(def, 90)
		agg.VanillaMean = stats.Mean(van)
		agg.VanillaP90 = stats.Percentile(van, 90)
		agg.DefendedSteadyMean = stats.Mean(defS)
		agg.VanillaSteadyMean = stats.Mean(vanS)
		agg.PMMean = stats.Mean(pms)
		agg.DirectMLEMean = stats.Mean(mles)
		agg.SuspectsMean = float64(flagged) / float64(p.Trials)
		if flagged > 0 {
			agg.SuspectsTruePos = float64(truePos) / float64(flagged)
		}
		rows = append(rows, agg)
	}
	return rows, nil
}

// ByzantineExampleResult is one representative trial of the sweep as
// plottable track series (the Fig. 10-style panels of the defense).
type ByzantineExampleResult struct {
	Nodes    []geom.Point
	Defended TrackedSeries
	Vanilla  TrackedSeries
}

// ByzantineExample reruns trial 0 of the sweep at the given fraction and
// returns the defended and vanilla FTTT tracks for rendering.
func ByzantineExample(p Params, n int, frac float64) (*ByzantineExampleResult, error) {
	nodes := deploy.Grid(p.Field, n).Positions()
	uncertainDiv, certainDiv, err := byzantineDivisions(p, nodes)
	if err != nil {
		return nil, err
	}
	tr, err := runByzantineTrial(p, nodes, frac, 0, uncertainDiv, certainDiv)
	if err != nil {
		return nil, err
	}
	mkSeries := func(m Method, est []geom.Point) TrackedSeries {
		errs := tr.errorsOf(est)
		return TrackedSeries{
			Method:    m,
			Times:     tr.times,
			True:      tr.trace,
			Estimates: est,
			Errors:    errs,
			Summary:   stats.Summarize(errs),
		}
	}
	return &ByzantineExampleResult{
		Nodes:    nodes,
		Defended: mkSeries(FTTTDefended, tr.defended),
		Vanilla:  mkSeries(FTTTBasic, tr.vanilla),
	}, nil
}
