// Package experiments reproduces every table and figure of the paper's
// evaluation (Sec. 7) plus the analytical results of Sec. 5. Each
// exported Fig*/Table* function is a self-contained driver returning
// structured rows/series; cmd/fttt-bench prints them and the root
// benchmarks time them. DESIGN.md §4 maps each driver to its paper
// artefact.
package experiments

import (
	"fttt/internal/geom"
	"fttt/internal/obs"
	"fttt/internal/rf"
)

// Params collects the Table 1 system parameters plus harness knobs.
type Params struct {
	// Field is the monitor area (Table 1: 100×100 m²).
	Field geom.Rect
	// Model carries β and σ_X (Table 1: β=4, σ_X=6).
	Model rf.Model
	// Epsilon is the sensing resolution ε in dBm (Table 1: 0.5-3; the
	// figures pin ε=1 unless swept).
	Epsilon float64
	// Range is the sensing range R (Table 1: 40 m).
	Range float64
	// SampleRate is the RSS sampling rate λ (Table 1: 10 Hz).
	SampleRate float64
	// LocPeriod is the time between consecutive localizations in
	// seconds; each localization consumes one grouping sampling.
	LocPeriod float64
	// VMin, VMax bound the target velocity (Table 1: 1-5 m/s).
	VMin, VMax float64
	// K is the grouping sampling times (Table 1: 3-9; figures pin k=5).
	K int
	// Duration is the simulated tracking time (Sec. 7: 60 s).
	Duration float64
	// CellSize is the approximate grid division cell edge in metres.
	CellSize float64
	// DOI is the degree of sensing irregularity (dB per degree of
	// azimuth); 0 disables per-node anisotropic gain.
	DOI float64
	// Trials is how many independent repetitions each sweep point
	// averages over.
	Trials int
	// Seed roots all randomness; every trial derives a substream.
	Seed uint64
	// Obs, when non-nil, is threaded into every tracker / network /
	// pipeline the drivers build, so one registry accumulates the whole
	// figure's telemetry (cmd/fttt-bench resets it between figures).
	Obs *obs.Registry
}

// Default returns the paper's Table 1 settings with harness defaults
// sized so the full suite runs in minutes on a laptop.
func Default() Params {
	return Params{
		Field:      geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100)),
		Model:      rf.Default(), // β=4, σ_X=6
		Epsilon:    1,
		Range:      40,
		SampleRate: 10,
		LocPeriod:  0.5,
		VMin:       1,
		VMax:       5,
		K:          5,
		Duration:   60,
		CellSize:   2,
		Trials:     5,
		Seed:       1,
	}
}

// Quick returns reduced-cost parameters for unit tests and smoke runs.
func Quick() Params {
	p := Default()
	p.Duration = 12
	p.Trials = 2
	p.CellSize = 4
	return p
}
