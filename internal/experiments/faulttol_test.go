package experiments

import (
	"math"
	"testing"
)

// TestFaultToleranceBoundedErrorGrowth is the ISSUE 3 acceptance sweep:
// tracking error must stay finite (no panic, no NaN) up to 30% node
// crashes, with bounded growth relative to the fault-free run.
func TestFaultToleranceBoundedErrorGrowth(t *testing.T) {
	p := Quick()
	rows, err := FaultTolerance(p, 25, []float64{0, 0.1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, row := range rows {
		if math.IsNaN(row.MeanErr) || math.IsInf(row.MeanErr, 0) || row.MeanErr <= 0 {
			t.Fatalf("crash frac %v: mean error %v not finite-positive", row.CrashFrac, row.MeanErr)
		}
		if math.IsNaN(row.P90Err) {
			t.Fatalf("crash frac %v: NaN p90", row.CrashFrac)
		}
		if row.DeliveredFrac <= 0 || row.DeliveredFrac > 1 {
			t.Errorf("crash frac %v: delivered fraction %v outside (0,1]", row.CrashFrac, row.DeliveredFrac)
		}
		for name, frac := range map[string]float64{
			"degraded": row.DegradedFrac, "retried": row.RetriedFrac, "extrapolated": row.ExtrapolatedFrac,
		} {
			if frac < 0 || frac > 1 {
				t.Errorf("crash frac %v: %s fraction %v outside [0,1]", row.CrashFrac, name, frac)
			}
		}
	}
	// Bounded growth: 30% crashes may hurt, but not catastrophically —
	// the field is a 100×100 m² box, so errors beyond ~70 m mean the
	// tracker is effectively guessing corners.
	if rows[2].MeanErr > 10*rows[0].MeanErr && rows[2].MeanErr > 40 {
		t.Errorf("error grew unboundedly: %.2f m at 30%% crashes vs %.2f m fault-free",
			rows[2].MeanErr, rows[0].MeanErr)
	}
	// Crashing nodes must reduce delivery, not improve it.
	if rows[2].DeliveredFrac > rows[0].DeliveredFrac+0.05 {
		t.Errorf("delivery improved under crashes: %v vs %v",
			rows[2].DeliveredFrac, rows[0].DeliveredFrac)
	}
}
