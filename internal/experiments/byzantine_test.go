package experiments

import (
	"reflect"
	"testing"

	"fttt/internal/deploy"
)

// byzTestParams is the pinned acceptance scenario for the Byzantine
// sweep: the full 60 s patrol at fine cell resolution, five trials.
// (Quick()'s 12 s runs end inside the defense's burn-in, so the
// acceptance bound is asserted on the real scenario.)
func byzTestParams() Params {
	p := Quick()
	p.Duration = 60
	p.CellSize = 1
	p.Trials = 5
	p.Seed = 1
	return p
}

// TestWorstCaseCoalitionPicksCorridor pins the coalition choice on the
// 16-node grid: at frac 0.2 the three corridor-nearest nodes are the
// two on the patrol diagonal (5, 10) plus the index tie-break winner
// of the equidistant corner pair (0 over 15).
func TestWorstCaseCoalitionPicksCorridor(t *testing.T) {
	p := byzTestParams()
	nodes := deploy.Grid(p.Field, 16).Positions()
	got := worstCaseCoalition(0.2, nodes)
	want := []int{0, 5, 10}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("worstCaseCoalition(0.2) = %v, want %v", got, want)
	}
	if c := worstCaseCoalition(0, nodes); c != nil {
		t.Fatalf("worstCaseCoalition(0) = %v, want nil", c)
	}
	if c := worstCaseCoalition(2, nodes); len(c) != 16 {
		t.Fatalf("worstCaseCoalition(2) kept %d nodes, want all 16", len(c))
	}
}

// TestByzantineSweep is the acceptance contract of the Byzantine
// defense (ISSUE 9): with no colluders the defended tracker is
// byte-identical to vanilla FTTT, and with a 20% worst-case coalition
// the defended steady-state error is at most half the undefended one,
// with every end-of-run suspect a scripted colluder.
func TestByzantineSweep(t *testing.T) {
	p := byzTestParams()
	rows, err := Byzantine(p, 16, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	honest, attacked := rows[0], rows[1]

	if honest.Colluders != 0 {
		t.Fatalf("frac 0 scripted %d colluders", honest.Colluders)
	}
	if honest.DefendedMean != honest.VanillaMean ||
		honest.DefendedSteadyMean != honest.VanillaSteadyMean ||
		honest.DefendedP90 != honest.VanillaP90 {
		t.Errorf("honest runs diverged: defended mean=%.6f steady=%.6f p90=%.6f vs vanilla mean=%.6f steady=%.6f p90=%.6f",
			honest.DefendedMean, honest.DefendedSteadyMean, honest.DefendedP90,
			honest.VanillaMean, honest.VanillaSteadyMean, honest.VanillaP90)
	}
	if honest.SuspectsMean != 0 {
		t.Errorf("honest runs flagged %.1f suspects per trial", honest.SuspectsMean)
	}

	if attacked.Colluders != 3 {
		t.Fatalf("frac 0.2 scripted %d colluders, want 3", attacked.Colluders)
	}
	if attacked.DefendedSteadyMean > 0.5*attacked.VanillaSteadyMean {
		t.Errorf("defended steady-state error %.2f > 0.5 x vanilla %.2f",
			attacked.DefendedSteadyMean, attacked.VanillaSteadyMean)
	}
	if attacked.DefendedMean >= attacked.VanillaMean {
		t.Errorf("defended full-run mean %.2f not below vanilla %.2f",
			attacked.DefendedMean, attacked.VanillaMean)
	}
	if attacked.SuspectsMean <= 0 {
		t.Errorf("no suspects flagged under a 3-node coalition")
	}
	if attacked.SuspectsTruePos != 1 {
		t.Errorf("SuspectsTruePos = %.2f, want 1 (no false accusations)", attacked.SuspectsTruePos)
	}
	t.Logf("frac 0.2: defended mean=%.2f steady=%.2f | vanilla mean=%.2f steady=%.2f | suspects/trial=%.1f truePos=%.2f",
		attacked.DefendedMean, attacked.DefendedSteadyMean,
		attacked.VanillaMean, attacked.VanillaSteadyMean,
		attacked.SuspectsMean, attacked.SuspectsTruePos)
}
