package experiments

import (
	"math"
	"testing"
)

func TestAllMethodsDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range AllMethods() {
		name := m.String()
		if seen[name] {
			t.Fatalf("duplicate method name %q", name)
		}
		seen[name] = true
	}
	if len(seen) != 9 {
		t.Errorf("expected 9 methods, got %d", len(seen))
	}
}

func TestMethodComparisonRuns(t *testing.T) {
	p := Quick()
	p.Trials = 1
	p.Duration = 8
	rows, err := MethodComparison(p, []int{12})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	row := rows[0]
	for _, m := range AllMethods() {
		if math.IsNaN(row.Mean[m]) || row.Mean[m] <= 0 {
			t.Errorf("%v mean = %v", m, row.Mean[m])
		}
		if math.IsNaN(row.StdDev[m]) {
			t.Errorf("%v stddev NaN", m)
		}
	}
}

func TestMethodComparisonFTTTCompetitive(t *testing.T) {
	p := Default()
	p.Trials = 2
	p.Duration = 15
	rows, err := MethodComparison(p, []int{20})
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	// FTTT must beat the certain-sequence baselines (the paper's claim)
	// and at least match the naive geometric ones.
	if row.Mean[FTTTBasic] >= row.Mean[PM] {
		t.Errorf("FTTT %.2f should beat PM %.2f", row.Mean[FTTTBasic], row.Mean[PM])
	}
	if row.Mean[FTTTBasic] >= row.Mean[DirectMLE] {
		t.Errorf("FTTT %.2f should beat DirectMLE %.2f", row.Mean[FTTTBasic], row.Mean[DirectMLE])
	}
}

func TestSmoothingReducesDeviation(t *testing.T) {
	p := Default()
	p.Trials = 2
	p.Duration = 20
	rows, err := Smoothing(p, []int{20})
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	// At least one smoothing pipeline (extended, Kalman or particle)
	// should reduce the error standard deviation relative to raw basic
	// FTTT — the motivation for both Sec. 6 and the filter package.
	best := math.Min(row.Extended.StdDev, math.Min(row.Kalman.StdDev, row.Particle.StdDev))
	if best >= row.Basic.StdDev {
		t.Errorf("no smoother reduced stddev: basic=%.2f ext=%.2f kf=%.2f pf=%.2f",
			row.Basic.StdDev, row.Extended.StdDev, row.Kalman.StdDev, row.Particle.StdDev)
	}
	// Smoothers must not blow up the mean either.
	for name, s := range map[string]float64{
		"ext": row.Extended.Mean, "kf": row.Kalman.Mean, "pf": row.Particle.Mean,
	} {
		if s > row.Basic.Mean*1.6 {
			t.Errorf("%s mean %.2f far above basic %.2f", name, s, row.Basic.Mean)
		}
	}
}

func TestEstimatorAblation(t *testing.T) {
	p := Quick()
	p.Trials = 2
	p.Duration = 10
	rows, err := EstimatorAblation(p, 15, []int{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if math.IsNaN(row.MeanErr) || row.MeanErr <= 0 {
			t.Errorf("M=%d mean = %v", row.M, row.MeanErr)
		}
	}
	// Averaging over candidates must not be drastically worse than argmax.
	if rows[1].MeanErr > rows[0].MeanErr*1.3 {
		t.Errorf("top-5 mean %.2f far above argmax %.2f", rows[1].MeanErr, rows[0].MeanErr)
	}
}

func TestIrregularityRobustness(t *testing.T) {
	p := Quick()
	p.Trials = 2
	p.Duration = 10
	rows, err := IrregularityRobustness(p, 15, []float64{0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if math.IsNaN(row.FTTTMean) || math.IsNaN(row.MLEMean) {
			t.Fatalf("NaN at DOI=%v", row.DOI)
		}
	}
	// Strong irregularity should not collapse FTTT: bounded degradation.
	if rows[1].FTTTMean > rows[0].FTTTMean*2.5 {
		t.Errorf("FTTT degraded %.2f → %.2f under DOI", rows[0].FTTTMean, rows[1].FTTTMean)
	}
}

func TestCoverageVsError(t *testing.T) {
	p := Quick()
	p.Trials = 2
	p.Duration = 8
	rows, err := CoverageVsError(p, []int{5, 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	sparse, dense := rows[0], rows[1]
	if sparse.Coverage1 > dense.Coverage1 || sparse.Coverage3 > dense.Coverage3 {
		t.Errorf("coverage should grow with n: %+v vs %+v", sparse, dense)
	}
	if sparse.MeanDegree >= dense.MeanDegree {
		t.Error("mean degree should grow with n")
	}
	if dense.MeanErr >= sparse.MeanErr {
		t.Errorf("error should fall as coverage saturates: %.2f vs %.2f",
			dense.MeanErr, sparse.MeanErr)
	}
	// The knee story: 3-coverage at n=25, R=40 should be near complete.
	if dense.Coverage3 < 0.9 {
		t.Errorf("3-coverage at n=25 = %.2f, expected ≈1", dense.Coverage3)
	}
}

func TestMobilityRobustness(t *testing.T) {
	p := Quick()
	p.Trials = 2
	p.Duration = 12
	rows, err := MobilityRobustness(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if math.IsNaN(row.FTTTMean) || math.IsNaN(row.PMMean) {
			t.Fatalf("NaN for model %s", row.Model)
		}
		// FTTT should hold up on every mobility model.
		if row.FTTTMean > row.PMMean*1.2 {
			t.Errorf("%s: FTTT %.2f should not lose clearly to PM %.2f",
				row.Model, row.FTTTMean, row.PMMean)
		}
	}
}
