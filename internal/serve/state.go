package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"fttt/internal/core"
)

// Migration sentinels; the HTTP layer maps them to status codes.
var (
	// ErrSessionExists is returned when a requested session ID is
	// already taken (409) — a create with X-Fttt-Session-Id or a state
	// restore collided.
	ErrSessionExists = errors.New("serve: session ID already exists")
	// ErrSessionBusy is returned when a state export finds requests in
	// flight (409): a consistent snapshot needs a quiesced session, which
	// the drain flow guarantees.
	ErrSessionBusy = errors.New("serve: session has requests in flight")
)

// TargetState is one target's migratable state on the wire: the
// per-target request cursor (the index the next localize request's
// noise substream is derived from), the latest estimate for warm
// re-serving, and the tracker's warm-start snapshot.
type TargetState struct {
	ID string `json:"id"`
	// Seq is the next request index — requests 0..Seq-1 were admitted on
	// the exporting backend, so the successor continues at Seq and the
	// RequestStream(root, target, n) contract keeps drawing the same
	// noise the un-migrated session would have.
	Seq uint64 `json:"seq"`
	// Latest is the most recent estimate, if any — restored so
	// GET /v1/sessions/{id}/estimates/{target} keeps answering across
	// the migration.
	Latest *EstimateWire `json:"latest,omitempty"`
	// Snapshot is the tracker's warm-start state (core.TargetSnapshot:
	// warm face, extrapolation history, fault clock). FaceID -1 with a
	// zero snapshot means the target was admitted but never executed.
	Snapshot core.TargetSnapshot `json:"snapshot"`
}

// SessionState is the wire form of one session's whole migratable
// state — the body GET /v1/sessions/{id}/state exports and
// PUT /v1/sessions/{id}/state restores on a successor backend. The
// session's division itself never rides the wire: SpecKey content-
// addresses it, and the successor re-acquires it through its field
// cache (a warm spill directory shared across the cluster turns that
// into a zero-build disk load — DESIGN.md §16).
type SessionState struct {
	ID string `json:"id"`
	// SpecKey is field.Spec.Key() of the session's division — the
	// content address of the preprocessing. The restoring server
	// recomputes it from Config and refuses a mismatch, so a migration
	// can never silently marry a session to different preprocessing.
	SpecKey string `json:"specKey"`
	// Config is the original wire config the session was created from.
	Config SessionConfig `json:"config"`
	// Targets carries per-target state, sorted by ID.
	Targets []TargetState `json:"targets,omitempty"`
}

// Export serializes the session's migratable state. It requires a
// quiesced session — zero requests in flight (ErrSessionBusy
// otherwise) — which the migration flow guarantees by draining the
// backend first. Defense trust state is not exported (see
// core.TargetSnapshot).
func (s *Session) Export() (SessionState, error) {
	if s.inflight.Load() != 0 {
		return SessionState{}, ErrSessionBusy
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return SessionState{}, ErrSessionClosed
	}
	seq := make(map[string]uint64, len(s.seq))
	for id, n := range s.seq {
		seq[id] = n
	}
	latest := make(map[string]EstimateWire, len(s.latest))
	for id, ew := range s.latest {
		latest[id] = ew
	}
	s.mu.Unlock()

	// Union of executed targets (the tracker knows them) and admitted-
	// but-never-executed ones (only the seq table knows them).
	ids := s.mt.Targets()
	known := make(map[string]bool, len(ids))
	for _, id := range ids {
		known[id] = true
	}
	for id := range seq {
		if !known[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	st := SessionState{
		ID:      s.id,
		SpecKey: s.cfg.DivisionSpec().Key(),
		Config:  s.wire,
		Targets: make([]TargetState, 0, len(ids)),
	}
	for _, id := range ids {
		ts := TargetState{ID: id, Seq: seq[id], Snapshot: core.TargetSnapshot{FaceID: -1}}
		if ew, ok := latest[id]; ok {
			ew := ew
			ts.Latest = &ew
		}
		if known[id] {
			snap, err := s.mt.SnapshotTarget(id)
			if err != nil {
				return SessionState{}, err
			}
			ts.Snapshot = snap
		}
		st.Targets = append(st.Targets, ts)
	}
	return st, nil
}

// RestoreSession re-creates a migrated session from an exported state:
// the same ID, the division re-acquired by content address through the
// field cache, every target restored to its snapshot, and the request
// cursors advanced so the determinism contract continues seamlessly —
// the n-th request for target T still draws RequestStream(root, T, n).
// Errors: ErrDraining, ErrSessionExists, config validation errors, and
// a spec-key mismatch when the restoring server would derive different
// preprocessing from the config than the exporter used.
func (s *Server) RestoreSession(st SessionState) (*Session, error) {
	if st.ID == "" {
		return nil, errors.New("serve: session state has no ID")
	}
	if st.SpecKey != "" {
		cfg, err := st.Config.CoreConfig()
		if err != nil {
			return nil, err
		}
		if key := cfg.DivisionSpec().Key(); key != st.SpecKey {
			return nil, fmt.Errorf("serve: state spec key %s does not match config-derived %s", st.SpecKey, key)
		}
	}
	sess, err := s.createSession(st.ID, st.Config)
	if err != nil {
		return nil, err
	}
	for _, ts := range st.Targets {
		if ts.Snapshot.FaceID >= 0 || ts.Snapshot.HistN > 0 || ts.Snapshot.FaultNow > 0 {
			if err := sess.mt.RestoreTarget(ts.ID, ts.Snapshot); err != nil {
				s.CloseSession(st.ID)
				return nil, err
			}
		}
		sess.mu.Lock()
		sess.seq[ts.ID] = ts.Seq
		if ts.Latest != nil {
			sess.latest[ts.ID] = *ts.Latest
		}
		sess.mu.Unlock()
	}
	return sess, nil
}

// SessionCount reports the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Quiesce is the first half of Drain: refuse new work with 503, then
// block until every admitted request has been answered (or ctx
// expires). Unlike Drain it leaves the sessions alive — quiesced
// sessions still answer state exports, which is what a migrating
// router needs (the fttt-serve -migrate-grace window).
func (s *Server) Quiesce(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WaitEmpty blocks until the session table is empty (every session
// migrated off or closed) or ctx expires, returning ctx.Err() in the
// latter case. Used by fttt-serve's -migrate-grace drain phase.
func (s *Server) WaitEmpty(ctx context.Context) error {
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.SessionCount() == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// --- HTTP handlers ---

func (s *Server) handleStateExport(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	st, err := sess.Export()
	if err != nil {
		writeError(w, statusFor(err, http.StatusInternalServerError), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStateRestore(w http.ResponseWriter, r *http.Request) {
	var st SessionState
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad session state: %w", err))
		return
	}
	id := r.PathValue("id")
	if st.ID == "" {
		st.ID = id
	} else if st.ID != id {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: state ID %q does not match path ID %q", st.ID, id))
		return
	}
	sess, err := s.RestoreSession(st)
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	s.met.restores.Inc()
	writeJSON(w, http.StatusCreated, s.describe(sess))
}
