package serve

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"fttt/internal/obs"
)

// Flight recorder debug endpoint (DESIGN.md §12):
//
//	GET /v1/sessions/{id}/debug/trace              — last-N rounds, digested
//	GET /v1/sessions/{id}/debug/trace?format=jsonl — raw records, one per line
//	GET /v1/sessions/{id}/debug/trace?format=chrome — Perfetto-loadable
//
// The digested view reconstructs each surviving localization round from
// the ring: the per-stage spans (collection, match), the fault and
// degradation events, and the outcome attributes the round span carries.

// traceStageWire is one per-stage span of a round.
type traceStageWire struct {
	Component string  `json:"component"`
	Name      string  `json:"name"`
	DurMs     float64 `json:"durMs"`
}

// traceEventWire is one instantaneous event of a round (fault
// injections, degradation decisions).
type traceEventWire struct {
	Component string  `json:"component"`
	Name      string  `json:"name"`
	Value     float64 `json:"value"`
}

// traceRoundWire digests one localization round's causal tree.
type traceRoundWire struct {
	Trace  obs.TraceID `json:"trace"`
	Target string      `json:"target,omitempty"`
	Seq    uint64      `json:"seq"`
	Start  time.Time   `json:"start"`
	DurMs  float64     `json:"durMs"`

	StarFraction float64 `json:"starFraction"`
	Degraded     bool    `json:"degraded,omitempty"`
	Retried      bool    `json:"retried,omitempty"`
	Extrapolated bool    `json:"extrapolated,omitempty"`

	Stages []traceStageWire `json:"stages"`
	Events []traceEventWire `json:"events,omitempty"`
}

// traceDebugWire is the digested flight-recorder response.
type traceDebugWire struct {
	Session  string           `json:"session"`
	Capacity int              `json:"capacity"`
	Appended uint64           `json:"appended"`
	Dropped  uint64           `json:"dropped"`
	Rounds   []traceRoundWire `json:"rounds"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	if sess.rec == nil {
		writeError(w, http.StatusNotFound,
			errors.New("serve: tracing disabled for this server (set Config.TraceRecords)"))
		return
	}
	recs := sess.rec.Records()
	switch format := r.URL.Query().Get("format"); format {
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		obs.WriteJSONL(w, recs) //nolint:errcheck // client gone; nothing to do
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		obs.WriteChromeTrace(w, recs) //nolint:errcheck // client gone; nothing to do
	case "", "rounds":
		writeJSON(w, http.StatusOK, traceDebugWire{
			Session:  sess.id,
			Capacity: sess.rec.Cap(),
			Appended: sess.rec.Appended(),
			Dropped:  sess.rec.Dropped(),
			Rounds:   digestRounds(recs),
		})
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: unknown trace format %q (want rounds, jsonl, or chrome)", format))
	}
}

// digestRounds reconstructs per-round summaries from the raw ring. A
// round is a trace rooted at a "serve"/"request" span (requests still in
// flight, or whose root was overwritten by the ring, are skipped).
func digestRounds(recs []obs.Record) []traceRoundWire {
	byTrace := make(map[obs.TraceID][]obs.Record)
	for _, rec := range recs {
		byTrace[rec.Trace] = append(byTrace[rec.Trace], rec)
	}
	rounds := make([]traceRoundWire, 0, len(byTrace))
	for trace, members := range byTrace {
		var root *obs.Record
		for i := range members {
			m := &members[i]
			if m.Kind == obs.KindSpan && m.Parent == 0 &&
				m.Component == "serve" && m.Name == "request" {
				root = m
				break
			}
		}
		if root == nil {
			continue
		}
		round := traceRoundWire{
			Trace: trace,
			Start: root.Start,
			DurMs: float64(root.Dur.Nanoseconds()) / 1e6,
		}
		for _, a := range root.Attrs {
			switch a.Key {
			case "target":
				round.Target = a.Str
			case "seq":
				round.Seq = uint64(a.Num)
			}
		}
		for _, m := range members {
			switch m.Kind {
			case obs.KindSpan:
				if m.Span == root.Span {
					continue
				}
				round.Stages = append(round.Stages, traceStageWire{
					Component: m.Component,
					Name:      m.Name,
					DurMs:     float64(m.Dur.Nanoseconds()) / 1e6,
				})
				if m.Component == "core" && m.Name == "localize" {
					for _, a := range m.Attrs {
						switch a.Key {
						case "star_fraction":
							round.StarFraction = a.Num
						case "degraded":
							round.Degraded = a.Num != 0
						case "retried":
							round.Retried = a.Num != 0
						case "extrapolated":
							round.Extrapolated = a.Num != 0
						}
					}
				}
			case obs.KindEvent:
				round.Events = append(round.Events, traceEventWire{
					Component: m.Component,
					Name:      m.Name,
					Value:     m.Value,
				})
			}
		}
		rounds = append(rounds, round)
	}
	sort.Slice(rounds, func(i, j int) bool {
		if !rounds[i].Start.Equal(rounds[j].Start) {
			return rounds[i].Start.Before(rounds[j].Start)
		}
		return rounds[i].Trace < rounds[j].Trace
	})
	return rounds
}
