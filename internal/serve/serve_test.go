package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/sampling"
)

// testConfig is a small, fast session: 9-node grid on a 60×60 field
// with coarse division cells.
func testConfig(seed uint64) SessionConfig {
	return SessionConfig{
		Seed:      seed,
		Field:     &RectWire{Min: PointWire{0, 0}, Max: PointWire{60, 60}},
		GridNodes: 9,
		CellSize:  3,
	}
}

func postJSON(t *testing.T, client *http.Client, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %T: %v", v, err)
	}
	return v
}

func TestSessionLifecycle(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// Create.
	resp := postJSON(t, client, ts.URL+"/v1/sessions", testConfig(7))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	sw := decodeBody[sessionWire](t, resp)
	if sw.ID == "" || sw.Nodes != 9 || sw.Faces == 0 {
		t.Fatalf("create: %+v", sw)
	}

	// List + get.
	resp, err := client.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	if list := decodeBody[[]sessionWire](t, resp); len(list) != 1 || list[0].ID != sw.ID {
		t.Fatalf("list: %+v", list)
	}
	resp, err = client.Get(ts.URL + "/v1/sessions/" + sw.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeBody[sessionWire](t, resp); got.ID != sw.ID {
		t.Fatalf("get: %+v", got)
	}

	// Localize twice: per-target sequence numbers must advance and the
	// estimate must land inside the field.
	for want := uint64(0); want < 2; want++ {
		resp = postJSON(t, client, ts.URL+"/v1/sessions/"+sw.ID+"/localize",
			LocalizeWire{Target: "alpha", X: 20, Y: 30})
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("localize: status %d: %s", resp.StatusCode, body)
		}
		ew := decodeBody[EstimateWire](t, resp)
		if ew.Target != "alpha" || ew.Seq != want {
			t.Fatalf("localize: target %q seq %d, want alpha %d", ew.Target, ew.Seq, want)
		}
		if ew.X < 0 || ew.X > 60 || ew.Y < 0 || ew.Y > 60 {
			t.Fatalf("estimate outside field: %+v", ew)
		}
		if ew.Confidence < 0 || ew.Confidence > 1 {
			t.Fatalf("confidence out of range: %+v", ew)
		}
	}

	// Report-ingestion path: a directly sampled group round-trips.
	cfg := testConfig(7)
	cc, err := cfg.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	smp := &sampling.Sampler{Model: cc.Model, Nodes: cc.Nodes, Range: cc.Range, Epsilon: cc.Epsilon}
	g := smp.Sample(geom.Pt(40, 40), 5, randx.New(3))
	resp = postJSON(t, client, ts.URL+"/v1/sessions/"+sw.ID+"/reports",
		ReportWire{Target: "bravo", RSS: g.RSS, Reported: g.Reported})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("reports: status %d: %s", resp.StatusCode, body)
	}
	if ew := decodeBody[EstimateWire](t, resp); ew.Target != "bravo" || ew.Seq != 0 {
		t.Fatalf("reports: %+v", ew)
	}

	// Latest estimate endpoint; then a target that never localized: 404.
	resp, err = client.Get(ts.URL + "/v1/sessions/" + sw.ID + "/estimates/alpha")
	if err != nil {
		t.Fatal(err)
	}
	if ew := decodeBody[EstimateWire](t, resp); ew.Seq != 1 {
		t.Fatalf("latest: %+v", ew)
	}
	resp, err = client.Get(ts.URL + "/v1/sessions/" + sw.ID + "/estimates/nobody")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("estimate for unknown target: status %d", resp.StatusCode)
	}

	// Session targets now listed.
	resp, err = client.Get(ts.URL + "/v1/sessions/" + sw.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeBody[sessionWire](t, resp); len(got.Targets) != 2 {
		t.Fatalf("targets: %+v", got)
	}

	// Close; then every session route 404s, and a second close 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+sw.ID, nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close: status %d", resp.StatusCode)
	}
	for _, probe := range []string{
		"/v1/sessions/" + sw.ID,
		"/v1/sessions/" + sw.ID + "/estimates/alpha",
	} {
		resp, err = client.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s after close: status %d", probe, resp.StatusCode)
		}
	}
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double close: status %d, want 404", resp.StatusCode)
	}
}

func TestCreateSessionBadConfigs(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name string
		body string
		want string // substring of the error
	}{
		{"malformed json", `{"seed": `, "bad session config"},
		{"unknown field", `{"seed": 1, "bogus": true}`, "bogus"},
		{"no node source", `{"seed": 1}`, "exactly one of"},
		{"two node sources", `{"seed": 1, "gridNodes": 9, "randomNodes": 9}`, "exactly one of"},
		{"one node", `{"seed": 1, "nodes": [{"x": 1, "y": 1}]}`, "at least 2 nodes"},
		{"negative k", `{"seed": 1, "gridNodes": 9, "samplingTimes": -3}`, "sampling times"},
		{"bad variant", `{"seed": 1, "gridNodes": 9, "variant": "quantum"}`, "variant"},
		{"degenerate field", `{"seed": 1, "gridNodes": 9, "field": {"min": {"x": 0, "y": 0}, "max": {"x": 0, "y": 50}}}`, "degenerate field"},
	}
	for _, tc := range cases {
		resp, err := client.Post(ts.URL+"/v1/sessions", "application/json",
			strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		ew := decodeBody[errorWire](t, resp)
		if !strings.Contains(ew.Error, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, ew.Error, tc.want)
		}
	}

	// Config.Validate errors surface verbatim — the "degenerate field"
	// and "at least 2 nodes" cases above come from core, not serve.
}

func TestUnknownSessionRoutes(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	probes := []struct {
		method, path string
	}{
		{http.MethodGet, "/v1/sessions/nope"},
		{http.MethodDelete, "/v1/sessions/nope"},
		{http.MethodPost, "/v1/sessions/nope/localize"},
		{http.MethodPost, "/v1/sessions/nope/reports"},
		{http.MethodGet, "/v1/sessions/nope/estimates/t"},
		{http.MethodGet, "/v1/sessions/nope/stream"},
	}
	for _, p := range probes {
		req, _ := http.NewRequest(p.method, ts.URL+p.path, strings.NewReader(`{"target":"t"}`))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", p.method, p.path, resp.StatusCode)
		}
	}
}

func TestLocalizeValidation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	sess, err := srv.CreateSession(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	base := ts.URL + "/v1/sessions/" + sess.ID()

	// Missing target.
	resp := postJSON(t, client, base+"/localize", LocalizeWire{X: 1, Y: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing target: status %d", resp.StatusCode)
	}
	// Bad timeout header.
	req, _ := http.NewRequest(http.MethodPost, base+"/localize",
		strings.NewReader(`{"target":"t","x":1,"y":1}`))
	req.Header.Set("X-Fttt-Timeout", "soon")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad timeout header: status %d", resp.StatusCode)
	}
	// Malformed report: ragged RSS matrix.
	resp = postJSON(t, client, base+"/reports", ReportWire{
		Target:   "t",
		RSS:      [][]float64{{1, 2}, {1}},
		Reported: []bool{true, true},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ragged report: status %d", resp.StatusCode)
	}
	// Report with the wrong node count.
	resp = postJSON(t, client, base+"/reports", ReportWire{
		Target:   "t",
		RSS:      [][]float64{{1, 2}},
		Reported: []bool{true, true},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong node count: status %d", resp.StatusCode)
	}
}

// TestSSEStream covers the stream lifecycle: subscribe, receive an
// estimate event, and observe the close event + EOF when the session is
// torn down mid-stream.
func TestSSEStream(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	sess, err := srv.CreateSession(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}

	resp, err := client.Get(ts.URL + "/v1/sessions/" + sess.ID() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)

	// The comment preamble arrives first — wait for it so the
	// subscription is provably registered before localizing.
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), ": stream") {
		t.Fatalf("stream preamble: %q (err %v)", sc.Text(), sc.Err())
	}

	if _, err := sess.Localize(context.Background(), "alpha", geom.Pt(30, 30)); err != nil {
		t.Fatal(err)
	}
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			goto gotEvent
		}
	}
	t.Fatalf("no event received: %v", sc.Err())
gotEvent:
	if event != "estimate" {
		t.Fatalf("event %q, want estimate", event)
	}
	var ew EstimateWire
	if err := json.Unmarshal([]byte(data), &ew); err != nil {
		t.Fatalf("event data %q: %v", data, err)
	}
	if ew.Target != "alpha" || ew.Seq != 0 {
		t.Fatalf("event estimate: %+v", ew)
	}

	// Teardown: closing the session must end the stream with a close
	// event and EOF, without the client hanging.
	done := make(chan error, 1)
	go func() {
		var sawClose bool
		for sc.Scan() {
			if sc.Text() == "event: close" {
				sawClose = true
			}
		}
		if !sawClose {
			done <- fmt.Errorf("stream ended without close event")
			return
		}
		done <- sc.Err()
	}()
	if !srv.CloseSession(sess.ID()) {
		t.Fatal("CloseSession returned false")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stream teardown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate after session close")
	}
}

// TestSSETargetFilter checks ?target= only delivers that target's
// estimates.
func TestSSETargetFilter(t *testing.T) {
	srv := New(Config{})
	sess, err := srv.CreateSession(testConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, ok := sess.subscribe("bravo")
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer cancel()
	ctx := context.Background()
	if _, err := sess.Localize(ctx, "alpha", geom.Pt(10, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Localize(ctx, "bravo", geom.Pt(50, 50)); err != nil {
		t.Fatal(err)
	}
	payload := <-ch
	var ew EstimateWire
	if err := json.Unmarshal(payload, &ew); err != nil {
		t.Fatal(err)
	}
	if ew.Target != "bravo" {
		t.Fatalf("filtered stream delivered %q", ew.Target)
	}
	select {
	case extra := <-ch:
		t.Fatalf("unexpected second event: %s", extra)
	default:
	}
}

// TestDrain covers graceful shutdown: in-flight work completes, new
// work is refused with 503, health flips unhealthy, SSE streams end.
func TestDrain(t *testing.T) {
	gate := make(chan struct{})
	var gated sync.Once
	entered := make(chan struct{})
	srv := New(Config{Hooks: Hooks{BeforeBatch: func(int) {
		gated.Do(func() { close(entered); <-gate })
	}}})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	sess, err := srv.CreateSession(testConfig(9))
	if err != nil {
		t.Fatal(err)
	}

	// One request held at the batch gate...
	type res struct {
		r   Result
		err error
	}
	inflight := make(chan res, 1)
	go func() {
		r, err := sess.Localize(context.Background(), "t", geom.Pt(20, 20))
		inflight <- res{r, err}
	}()
	<-entered

	// ...drain starts concurrently; once the gate lifts, the in-flight
	// request must complete successfully.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	// Give Drain a moment to set the flag, then verify refusal. Probes
	// racing the flag get admitted but the batcher is gated, so they
	// must carry their own short deadline.
	for i := 0; ; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		_, err := sess.Localize(ctx, "t2", geom.Pt(1, 1))
		cancel()
		if err == ErrDraining {
			break
		}
		if i > 100 {
			t.Fatalf("draining server still admits work (last err %v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d", resp.StatusCode)
	}

	close(gate)
	if r := <-inflight; r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// New sessions are refused too.
	if _, err := srv.CreateSession(testConfig(1)); err != ErrDraining {
		t.Fatalf("CreateSession while drained: %v", err)
	}
	resp = postJSON(t, client, ts.URL+"/v1/sessions", testConfig(1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while drained: status %d", resp.StatusCode)
	}
}
