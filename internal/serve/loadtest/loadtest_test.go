package loadtest

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"fttt/internal/obs"
	"fttt/internal/serve"
)

func testSession(seed uint64) serve.SessionConfig {
	return serve.SessionConfig{
		Seed:      seed,
		Field:     &serve.RectWire{Max: serve.PointWire{X: 60, Y: 60}},
		GridNodes: 9,
		CellSize:  3,
	}
}

// localizeLatency resolves the server's per-route latency histogram for
// the localize route (same name and buckets as the serving layer).
func localizeLatency(reg *obs.Registry) *obs.Histogram {
	return reg.Histogram(`fttt_serve_request_seconds{route="localize"}`,
		obs.ExpBuckets(1e-4, 2, 16))
}

// dumpTraceArtifact fetches the session's raw trace recording and
// writes it to the path named by FTTT_TRACE_OUT — CI uploads the file
// as a build artifact so a failed or slow load-test run ships its own
// flight recording. A no-op when the variable is unset.
func dumpTraceArtifact(t *testing.T, client *http.Client, baseURL, id string) {
	t.Helper()
	path := os.Getenv("FTTT_TRACE_OUT")
	if path == "" {
		return
	}
	resp, err := client.Get(baseURL + "/v1/sessions/" + id + "/debug/trace?format=jsonl")
	if err != nil {
		t.Errorf("trace artifact: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("trace artifact: status %d", resp.StatusCode)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		t.Errorf("trace artifact: %v", err)
		return
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		t.Errorf("trace artifact: %v", err)
		return
	}
	if err := f.Close(); err != nil {
		t.Errorf("trace artifact: %v", err)
		return
	}
	t.Logf("trace artifact written to %s", path)
}

// TestLoadNoFaultPath is the happy-path load test: concurrent clients
// over real HTTP, zero shedding, zero timeouts, every response body
// byte-identical to the unbatched serial reference, and p99 localize
// latency under a generous bound. The server runs with its flight
// recorder on, so the byte-identity check doubles as the
// tracing-does-not-perturb-estimates contract under real concurrency.
func TestLoadNoFaultPath(t *testing.T) {
	srv := serve.New(serve.Config{TraceRecords: 4096})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cfg := Config{
		Clients:  6,
		Requests: 10,
		Seed:     7,
		Session:  testSession(42),
	}
	want, err := cfg.Expected()
	if err != nil {
		t.Fatal(err)
	}
	id, res, err := Run(ts.Client(), ts.URL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.CloseSession(id)
	dumpTraceArtifact(t, ts.Client(), ts.URL, id)

	total := cfg.Clients * cfg.Requests
	if res.OK != total || res.Shed != 0 || res.Deadline != 0 || res.Other != 0 {
		t.Fatalf("outcomes ok=%d shed=%d deadline=%d other=%d, want %d/0/0/0 (statuses %v)",
			res.OK, res.Shed, res.Deadline, res.Other, total, res.Statuses)
	}
	if err := VerifyBodies(res, want); err != nil {
		t.Fatal(err)
	}

	reg := srv.Registry()
	if got := reg.Counter("fttt_serve_shed_total").Value(); got != 0 {
		t.Errorf("shed counter %v, want 0", got)
	}
	if got := reg.Counter("fttt_serve_timeouts_total").Value(); got != 0 {
		t.Errorf("timeout counter %v, want 0", got)
	}
	if got := reg.Counter(`fttt_serve_requests_total{route="localize"}`).Value(); got != float64(total) {
		t.Errorf("localize request counter %v, want %d", got, total)
	}
	// Every admitted request lands in exactly one executed batch, so the
	// batch-size histogram's sum equals the request count.
	bs := reg.Histogram("fttt_serve_batch_size", obs.LinearBuckets(1, 1, 32))
	if got := bs.Sum(); got != float64(total) {
		t.Errorf("batch-size histogram sum %v, want %d", got, total)
	}
	lat := localizeLatency(reg)
	if got := lat.Count(); got != uint64(total) {
		t.Errorf("latency histogram count %d, want %d", got, total)
	}
	// Generous ceiling: the no-fault path must stay well under a second
	// even with -race instrumentation; regressions that serialize the
	// whole server or leak the batcher wait into idle traffic blow
	// through it.
	const p99Bound = 1.0
	if p99 := lat.Quantile(0.99); p99 > p99Bound {
		t.Errorf("p99 localize latency %.4fs, want <= %.1fs", p99, p99Bound)
	}
	if got := reg.Gauge("fttt_serve_queue_depth").Value(); got != 0 {
		t.Errorf("queue depth after wave %v, want 0", got)
	}
}

// TestLoadOverloadSheds drives the overload path over HTTP: the batcher
// is gated so admission fills, and the shed/timeout split is exact —
// QueueLimit admitted requests time out (504), every other request is
// shed with 429 + Retry-After.
func TestLoadOverloadSheds(t *testing.T) {
	const limit = 4
	gate := make(chan struct{})
	srv := serve.New(serve.Config{
		QueueLimit: limit,
		MaxBatch:   1, // one request in hand at the gate, the rest queued
		Hooks:      serve.Hooks{BeforeBatch: func(int) { <-gate }},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cfg := Config{
		Clients:  limit + 5,
		Requests: 1,
		Seed:     11,
		Session:  testSession(8),
		Timeout:  150 * time.Millisecond,
	}
	id, res, err := Run(ts.Client(), ts.URL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	close(gate) // release the batcher; canceled entries are skipped
	defer srv.CloseSession(id)

	wantShed := cfg.Clients - limit
	if res.Shed != wantShed || res.Deadline != limit || res.OK != 0 || res.Other != 0 {
		t.Fatalf("outcomes ok=%d shed=%d deadline=%d other=%d, want 0/%d/%d/0 (statuses %v)",
			res.OK, res.Shed, res.Deadline, res.Other, wantShed, limit, res.Statuses)
	}
	if !res.RetryAfter {
		t.Error("a 429 response was missing its Retry-After header")
	}
	reg := srv.Registry()
	if got := reg.Counter("fttt_serve_shed_total").Value(); got != float64(wantShed) {
		t.Errorf("shed counter %v, want %d", got, wantShed)
	}
	if got := reg.Counter("fttt_serve_timeouts_total").Value(); got != float64(limit) {
		t.Errorf("timeout counter %v, want %d", got, limit)
	}
	if res.Statuses[http.StatusTooManyRequests] != wantShed {
		t.Errorf("429 count %d, want %d", res.Statuses[http.StatusTooManyRequests], wantShed)
	}
}

// TestLoadCacheArmedManySessions drives the many-sessions-one-deployment
// shape the field cache exists for: several concurrent waves, each
// creating its own session over the same deployment. The division must
// build exactly once (every later session is a cache hit), and — because
// Expected() computes its reference through an uncached core.NewMulti —
// the byte-identity check proves a cache-hit session answers exactly
// like an uncached build.
func TestLoadCacheArmedManySessions(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const waves = 4
	var wg sync.WaitGroup
	errs := make([]error, waves)
	for w := 0; w < waves; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := Config{
				Clients:  2,
				Requests: 5,
				Seed:     uint64(100 + w),
				// Distinct session seeds, one deployment: the cache keys on
				// the division spec, not the session.
				Session: testSession(uint64(1000 + w)),
			}
			want, err := cfg.Expected()
			if err != nil {
				errs[w] = err
				return
			}
			id, res, err := Run(ts.Client(), ts.URL, cfg)
			if err != nil {
				errs[w] = err
				return
			}
			defer srv.CloseSession(id)
			total := cfg.Clients * cfg.Requests
			if res.OK != total {
				errs[w] = fmt.Errorf("wave %d: ok=%d shed=%d deadline=%d other=%d, want %d OK (statuses %v)",
					w, res.OK, res.Shed, res.Deadline, res.Other, total, res.Statuses)
				return
			}
			errs[w] = VerifyBodies(res, want)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	reg := srv.Registry()
	if got := reg.Counter("fttt_fieldcache_builds_total").Value(); got != 1 {
		t.Errorf("division builds = %v, want exactly 1 across %d sessions", got, waves)
	}
	if got := reg.Counter("fttt_fieldcache_hits_total").Value(); got != waves-1 {
		t.Errorf("cache hits = %v, want %d", got, waves-1)
	}
	if got := reg.Counter("fttt_fieldcache_misses_total").Value(); got != 1 {
		t.Errorf("cache misses = %v, want 1", got)
	}

	// Cached divisions carry the SoA signature store, so every served
	// localization above must have ridden the batched wave engine — one
	// lane per request, grouped into at least one MatchBatch wave.
	// (The byte-identity check against the uncached reference already
	// passed, so these counters also certify the wave path answered
	// exactly like serial execution.)
	lanes := reg.Counter("fttt_core_batch_lanes_total").Value()
	if want := float64(waves * 2 * 5); lanes != want {
		t.Errorf("batch lanes = %v, want %v (one per served localization)", lanes, want)
	}
	if got := reg.Counter("fttt_core_batch_waves_total").Value(); got <= 0 || got > lanes {
		t.Errorf("batch waves = %v, want in (0, %v]", got, lanes)
	}
}
