package loadtest

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"

	"fttt/internal/cluster"
	"fttt/internal/fieldcache"
	"fttt/internal/obs"
	"fttt/internal/serve"
)

// ClusterBackend is one in-process fttt-serve member of a test
// cluster: its own serve.Server, obs registry, and fieldcache instance
// (sharing the cluster's spill directory, as separate processes
// would), fronted by an httptest listener.
type ClusterBackend struct {
	Name  string
	Serve *serve.Server
	Reg   *obs.Registry
	http  *httptest.Server
}

// URL is the backend's base URL.
func (b *ClusterBackend) URL() string { return b.http.URL }

// Counter reads one of the backend's counters by full metric name.
func (b *ClusterBackend) Counter(name string) float64 { return b.Reg.Counter(name).Value() }

// Cluster is the in-process sharded deployment the cluster load test
// drives: a consistent-hash router over N serve backends that share
// one field-cache spill directory (the cluster-wide division store).
type Cluster struct {
	Router   *cluster.Router
	Backends []*ClusterBackend
	// URL is the router's base URL — point waves here, not at backends.
	URL string
	// Dir is the shared field-cache spill directory.
	Dir string

	http *httptest.Server
}

// StartCluster builds n serve backends named "b1".."bn", each with a
// private registry and a fieldcache spilling to dir, plus a router
// over all of them. The serve Config's Obs and FieldCache fields are
// overridden per backend. The router's health prober is off — tests
// drive migration deterministically via Drain.
func StartCluster(dir string, n int, base serve.Config) (*Cluster, error) {
	c := &Cluster{Dir: dir}
	members := make([]cluster.Backend, 0, n)
	for i := 1; i <= n; i++ {
		reg := obs.NewRegistry()
		fc, err := fieldcache.New(fieldcache.Config{Dir: dir, Obs: reg})
		if err != nil {
			c.Close()
			return nil, err
		}
		cfg := base
		cfg.Obs = reg
		cfg.FieldCache = fc
		srv := serve.New(cfg)
		be := &ClusterBackend{
			Name:  fmt.Sprintf("b%d", i),
			Serve: srv,
			Reg:   reg,
			http:  httptest.NewServer(srv),
		}
		c.Backends = append(c.Backends, be)
		members = append(members, cluster.Backend{Name: be.Name, URL: be.http.URL})
	}
	rt, err := cluster.New(cluster.Config{Backends: members})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Router = rt
	c.http = httptest.NewServer(rt)
	c.URL = c.http.URL
	return c, nil
}

// Prewarm builds the session's field division once into the shared
// spill directory through an independent cache instance, so every
// backend's first acquire is a disk load — after which each backend's
// fttt_fieldcache_builds_total must stay 0 for the whole run,
// migrations included.
func (c *Cluster) Prewarm(sc serve.SessionConfig) error {
	cc, err := sc.CoreConfig()
	if err != nil {
		return err
	}
	fc, err := fieldcache.New(fieldcache.Config{Dir: c.Dir})
	if err != nil {
		return err
	}
	_, release, err := fc.Acquire(cc.DivisionSpec())
	if err != nil {
		return err
	}
	release()
	return nil
}

// Backend resolves a member by name.
func (c *Cluster) Backend(name string) *ClusterBackend {
	for _, b := range c.Backends {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Client returns an HTTP client for the router listener.
func (c *Cluster) Client() *http.Client { return c.http.Client() }

// Drain takes backend name out of the cluster the way a SIGTERM with
// -migrate-grace does, but deterministically: quiesce the backend
// (new work refused, sessions stay exportable), have the router
// migrate every session onto its successor, wait for the source table
// to empty, then tear the backend down. Returns how many sessions
// moved.
func (c *Cluster) Drain(ctx context.Context, name string) (int, error) {
	be := c.Backend(name)
	if be == nil {
		return 0, fmt.Errorf("loadtest: unknown backend %q", name)
	}
	if err := be.Serve.Quiesce(ctx); err != nil {
		return 0, err
	}
	moved, err := c.Router.Migrate(ctx, name)
	if err != nil {
		return moved, err
	}
	if err := be.Serve.WaitEmpty(ctx); err != nil {
		return moved, fmt.Errorf("loadtest: %s not empty after migration: %w", name, err)
	}
	return moved, be.Serve.Drain(ctx)
}

// SessionCounts fans out through the router: live sessions by backend.
func (c *Cluster) SessionCounts(ctx context.Context) (map[string]int, error) {
	return c.Router.SessionCounts(ctx)
}

// Close tears the whole cluster down (backends first, then router).
func (c *Cluster) Close() {
	for _, b := range c.Backends {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()           // immediate: tests have already drained what matters
		b.Serve.Drain(ctx) //nolint:errcheck
		b.http.Close()
	}
	if c.http != nil {
		c.http.Close()
	}
	if c.Router != nil {
		c.Router.Close()
	}
}
