//go:build soak

package loadtest

import (
	"net/http/httptest"
	"testing"

	"fttt/internal/serve"
)

// TestLoadSoak is the long-running variant of TestLoadNoFaultPath:
// several heavier waves against one server, each with its own session
// and seeds, every response still byte-identical to the serial
// reference. Run with `go test -tags soak ./internal/serve/loadtest`
// (the Makefile's soak target adds -race).
func TestLoadSoak(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for wave := 0; wave < 3; wave++ {
		cfg := Config{
			Clients:  16,
			Requests: 150,
			Seed:     uint64(100 + wave),
			Session:  testSession(uint64(1000 + wave)),
		}
		want, err := cfg.Expected()
		if err != nil {
			t.Fatal(err)
		}
		id, res, err := Run(ts.Client(), ts.URL, cfg)
		if err != nil {
			t.Fatal(err)
		}
		total := cfg.Clients * cfg.Requests
		if res.OK != total || res.Shed != 0 || res.Deadline != 0 || res.Other != 0 {
			t.Fatalf("wave %d: outcomes ok=%d shed=%d deadline=%d other=%d, want %d/0/0/0",
				wave, res.OK, res.Shed, res.Deadline, res.Other, total)
		}
		if err := VerifyBodies(res, want); err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
		if !srv.CloseSession(id) {
			t.Fatalf("wave %d: session %s not closed", wave, id)
		}
	}
}
