package loadtest

import (
	"context"
	"sync"
	"testing"

	"fttt/internal/cluster"
	"fttt/internal/serve"
)

// TestClusterWave is the sharding acceptance test: several sessions
// spread across a 3-backend cluster by the placement hash, a wave of
// traffic through the router, one backend drained mid-run, the rest of
// the wave after migration — and every response body must still be
// byte-identical to the unbatched single-process serial reference
// (Expected). Alongside byte-identity it pins the exact rebalance
// counts and the zero-re-divide contract: with the shared spill dir
// pre-warmed, no backend ever builds a division — successors included
// — so fttt_fieldcache_builds_total stays 0 everywhere.
func TestClusterWave(t *testing.T) {
	const (
		backends = 3
		sessions = 6
		split    = 4 // requests per client before the drain
	)
	c, err := StartCluster(t.TempDir(), backends, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	cfgs := make([]Config, sessions)
	for i := range cfgs {
		cfgs[i] = Config{
			Clients:  2,
			Requests: 8,
			Seed:     uint64(100 + i),
			// One deployment, distinct session seeds: every session shares
			// the pre-warmed division but draws its own noise streams.
			Session: testSession(uint64(1000 + i)),
		}
	}
	if err := c.Prewarm(cfgs[0].Session); err != nil {
		t.Fatal(err)
	}

	client := c.Client()
	ids := make([]string, sessions)
	for i := range cfgs {
		if ids[i], err = CreateSession(client, c.URL, cfgs[i].Session); err != nil {
			t.Fatal(err)
		}
	}
	memberNames := make([]string, backends)
	for i, b := range c.Backends {
		memberNames[i] = b.Name
	}
	owners := make([]string, sessions)
	for i, id := range ids {
		owners[i] = cluster.Place(id, memberNames)
	}

	runWaves := func(from, to int) []*Result {
		results := make([]*Result, sessions)
		errs := make([]error, sessions)
		var wg sync.WaitGroup
		for i := range cfgs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = RunWave(client, c.URL, ids[i], cfgs[i], from, to)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		return results
	}
	first := runWaves(0, split)

	// Drain the owner of the first session (guaranteed non-empty).
	victim := owners[0]
	victimSessions := 0
	for _, o := range owners {
		if o == victim {
			victimSessions++
		}
	}
	moved, err := c.Drain(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	if moved != victimSessions {
		t.Fatalf("drain migrated %d sessions, want exactly the victim's %d", moved, victimSessions)
	}

	// Exact rebalance: survivors keep their sessions, the victim's land
	// on their rendezvous successor.
	var survivors []string
	for _, n := range memberNames {
		if n != victim {
			survivors = append(survivors, n)
		}
	}
	wantCounts := map[string]int{}
	for i, o := range owners {
		if o == victim {
			o = cluster.Place(ids[i], survivors)
		}
		wantCounts[o]++
	}
	counts, err := c.SessionCounts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range memberNames {
		if counts[n] != wantCounts[n] {
			t.Errorf("post-drain %s holds %d sessions, want %d (all: %v)", n, counts[n], wantCounts[n], counts)
		}
	}
	restores := 0.0
	for _, b := range c.Backends {
		restores += b.Counter("fttt_serve_session_restores_total")
	}
	if int(restores) != moved {
		t.Errorf("restore counters sum to %v, want %d", restores, moved)
	}
	if got := c.Router.Registry().Counter("fttt_router_migrations_total").Value(); got != float64(moved) {
		t.Errorf("router migrations counter %v, want %d", got, moved)
	}

	second := runWaves(split, cfgs[0].Requests)

	for i := range cfgs {
		res := first[i]
		res.Merge(second[i])
		total := cfgs[i].Clients * cfgs[i].Requests
		if res.OK != total || res.Shed != 0 || res.Deadline != 0 || res.Other != 0 {
			t.Fatalf("session %s outcomes ok=%d shed=%d deadline=%d other=%d, want %d/0/0/0 (statuses %v)",
				ids[i], res.OK, res.Shed, res.Deadline, res.Other, total, res.Statuses)
		}
		want, err := cfgs[i].Expected()
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyBodies(res, want); err != nil {
			t.Fatalf("session %s (owner %s) not byte-identical to single-process reference: %v", ids[i], owners[i], err)
		}
	}

	// The division store contract: the shared spill dir was pre-warmed,
	// so no backend — the migration successors included — ever divides
	// the field itself; each one that hosted a session disk-loaded the
	// division exactly once.
	for _, b := range c.Backends {
		if got := b.Counter("fttt_fieldcache_builds_total"); got != 0 {
			t.Errorf("%s built %v divisions, want 0 (shared spill dir is the division store)", b.Name, got)
		}
		loads := b.Counter("fttt_fieldcache_disk_loads_total")
		hosted := wantCounts[b.Name] > 0 || b.Name == victim
		if hosted && loads != 1 {
			t.Errorf("%s disk loads = %v, want exactly 1", b.Name, loads)
		}
	}
}
