// Package loadtest is the deterministic end-to-end load/latency harness
// for the serving layer (internal/serve): N goroutine clients — one
// tracked target each — fire seeded localize workloads at a server over
// real HTTP, and the harness tallies outcomes by status so tests can
// assert exact shed/timeout counts and compare every response body
// byte-for-byte against the unbatched serial reference
// (Expected). The package is a library, not a test, so the short
// deterministic test, the -tags soak variant, and the race-mode CI job
// all drive the same code.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"fttt/internal/core"
	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/serve"
)

// Config is one load wave: Clients goroutines, each owning the target
// TargetID(i) and issuing Requests sequential localize calls at
// positions drawn from Seed. The per-target request sequence is
// deterministic, so the serving determinism contract pins every
// response body regardless of interleaving.
type Config struct {
	Clients  int
	Requests int
	// Seed draws the workload positions (independent of the session
	// seed, which draws the sampling noise).
	Seed uint64
	// Session is the session to create and drive.
	Session serve.SessionConfig
	// Timeout, when positive, is sent as the X-Fttt-Timeout header on
	// every request.
	Timeout time.Duration
}

// TargetID names client i's target.
func TargetID(i int) string { return fmt.Sprintf("client-%d", i) }

// Positions returns the deterministic workload: Positions()[target][n]
// is that target's n-th true position, confined to the session field's
// interior.
func (c Config) Positions() map[string][]geom.Point {
	field := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	if c.Session.Field != nil {
		field = geom.NewRect(
			geom.Pt(c.Session.Field.Min.X, c.Session.Field.Min.Y),
			geom.Pt(c.Session.Field.Max.X, c.Session.Field.Max.Y),
		)
	}
	margin := 0.08 * field.Width()
	rng := randx.New(c.Seed)
	out := make(map[string][]geom.Point, c.Clients)
	for i := 0; i < c.Clients; i++ {
		tr := rng.SplitN("client", i)
		pts := make([]geom.Point, c.Requests)
		for n := range pts {
			pts[n] = geom.Pt(
				tr.Uniform(field.Min.X+margin, field.Max.X-margin),
				tr.Uniform(field.Min.Y+margin, field.Max.Y-margin),
			)
		}
		out[TargetID(i)] = pts
	}
	return out
}

// Expected computes the unbatched serial reference: the exact response
// bytes (sans trailing newline) the server must return for each
// target's request sequence on the no-shed path.
func (c Config) Expected() (map[string][][]byte, error) {
	cc, err := c.Session.CoreConfig()
	if err != nil {
		return nil, err
	}
	mt, err := core.NewMulti(cc)
	if err != nil {
		return nil, err
	}
	root := randx.New(c.Session.Seed)
	out := make(map[string][][]byte, c.Clients)
	for i := 0; i < c.Clients; i++ {
		target := TargetID(i)
		for n, pos := range c.Positions()[target] {
			ests, err := mt.LocalizeBatch([]core.LocalizeRequest{{
				ID:  target,
				Pos: pos,
				Rng: serve.RequestStream(root, target, uint64(n)),
			}}, 1)
			if err != nil {
				return nil, err
			}
			b, err := json.Marshal(serve.WireEstimate(target, uint64(n), ests[0]))
			if err != nil {
				return nil, err
			}
			out[target] = append(out[target], b)
		}
	}
	return out, nil
}

// Result tallies one wave.
type Result struct {
	OK, Shed, Deadline, Other int
	// Bodies[target][n] is the n-th 200 response body for target, in
	// issue order, trailing whitespace trimmed.
	Bodies map[string][][]byte
	// RetryAfter records whether every 429 carried a Retry-After hint.
	RetryAfter bool
	// Statuses counts responses by HTTP status code.
	Statuses map[int]int
}

// Run creates a session on the server behind baseURL and fires the
// full wave — CreateSession followed by RunWave over every request.
// The session is left open; callers own its lifecycle via the returned
// ID.
func Run(client *http.Client, baseURL string, cfg Config) (string, *Result, error) {
	id, err := CreateSession(client, baseURL, cfg.Session)
	if err != nil {
		return "", nil, err
	}
	res, err := RunWave(client, baseURL, id, cfg, 0, cfg.Requests)
	return id, res, err
}

// CreateSession creates one session on the server (or cluster router)
// behind baseURL and returns its ID.
func CreateSession(client *http.Client, baseURL string, sc serve.SessionConfig) (string, error) {
	body, err := json.Marshal(sc)
	if err != nil {
		return "", err
	}
	resp, err := client.Post(baseURL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("loadtest: create session: status %d: %s", resp.StatusCode, b)
	}
	var sw struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
		return "", err
	}
	return sw.ID, nil
}

// RunWave fires requests [from, to) of each client's sequence at the
// existing session id. Clients stop issuing on transport errors but
// record shed (429) and deadline (504) responses and keep going — real
// load-generator behaviour. Splitting one Config across several
// RunWave calls (migrating the session between them) must yield the
// same bodies as one uninterrupted wave; merge the partial results
// with Result.Merge before VerifyBodies.
func RunWave(client *http.Client, baseURL, id string, cfg Config, from, to int) (*Result, error) {
	positions := cfg.Positions()
	res := &Result{
		Bodies:     make(map[string][][]byte, cfg.Clients),
		RetryAfter: true,
		Statuses:   make(map[int]int),
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(target string, pts []geom.Point) {
			defer wg.Done()
			for _, pos := range pts[from:to] {
				lw, err := json.Marshal(serve.LocalizeWire{Target: target, X: pos.X, Y: pos.Y})
				if err != nil {
					errCh <- err
					return
				}
				req, err := http.NewRequestWithContext(context.Background(),
					http.MethodPost, baseURL+"/v1/sessions/"+id+"/localize",
					bytes.NewReader(lw))
				if err != nil {
					errCh <- err
					return
				}
				req.Header.Set("Content-Type", "application/json")
				if cfg.Timeout > 0 {
					req.Header.Set("X-Fttt-Timeout", cfg.Timeout.String())
				}
				resp, err := client.Do(req)
				if err != nil {
					errCh <- fmt.Errorf("loadtest: %s: %w", target, err)
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				res.Statuses[resp.StatusCode]++
				switch resp.StatusCode {
				case http.StatusOK:
					res.OK++
					res.Bodies[target] = append(res.Bodies[target], bytes.TrimSpace(b))
				case http.StatusTooManyRequests:
					res.Shed++
					if resp.Header.Get("Retry-After") == "" {
						res.RetryAfter = false
					}
				case http.StatusGatewayTimeout:
					res.Deadline++
				default:
					res.Other++
				}
				mu.Unlock()
			}
		}(TargetID(i), positions[TargetID(i)])
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return res, err
	}
	return res, nil
}

// Merge folds other's tallies into r, appending each target's bodies
// after r's own — correct when r covers an earlier request range of
// the same Config than other.
func (r *Result) Merge(other *Result) {
	r.OK += other.OK
	r.Shed += other.Shed
	r.Deadline += other.Deadline
	r.Other += other.Other
	r.RetryAfter = r.RetryAfter && other.RetryAfter
	for target, seq := range other.Bodies {
		r.Bodies[target] = append(r.Bodies[target], seq...)
	}
	for code, n := range other.Statuses {
		r.Statuses[code] += n
	}
}

// VerifyBodies compares a wave's 200 bodies against the serial
// reference, requiring complete, byte-identical per-target sequences —
// the assertion for no-shed waves.
func VerifyBodies(res *Result, want map[string][][]byte) error {
	for target, wantSeq := range want {
		gotSeq := res.Bodies[target]
		if len(gotSeq) != len(wantSeq) {
			return fmt.Errorf("loadtest: %s: %d bodies, want %d", target, len(gotSeq), len(wantSeq))
		}
		for n := range wantSeq {
			if !bytes.Equal(gotSeq[n], wantSeq[n]) {
				return fmt.Errorf("loadtest: %s[%d]:\n got %s\nwant %s",
					target, n, gotSeq[n], wantSeq[n])
			}
		}
	}
	return nil
}
