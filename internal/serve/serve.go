// Package serve is the tracking-as-a-service layer: a long-running
// HTTP/JSON API over core.MultiTracker with production serving
// mechanics. Sessions are created from a wire-level fttt configuration;
// localize calls and ingested sampling reports ride a per-session
// micro-batcher that coalesces concurrent requests into
// MultiTracker.LocalizeBatch rounds (tunable max batch size / max
// wait); a bounded admission queue sheds overload with 429 +
// Retry-After; requests carry deadlines; estimates stream out over SSE;
// and SIGTERM-style graceful drain finishes in-flight work before the
// listener goes away.
//
// Determinism contract (the serving extension of the PR 2 contract):
// each session is rooted at SessionConfig.Seed, and the n-th localize
// request for target T draws its sampling noise from
// RequestStream(root, T, n). Because the batcher preserves per-target
// FIFO order and LocalizeBatch executes same-target requests serially
// in that order, the response bytes are identical to unbatched serial
// execution for any interleaving, batch split, or worker count.
// DESIGN.md §10 documents the architecture.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fttt/internal/core"
	"fttt/internal/field"
	"fttt/internal/fieldcache"
	"fttt/internal/geom"
	"fttt/internal/obs"
)

// Config parameterises a Server. The zero value is usable: every field
// has a serving-grade default.
type Config struct {
	// MaxBatch is the micro-batcher's batch-size ceiling; ≤ 0 selects 16.
	MaxBatch int
	// MaxWait bounds how long a batch may wait for stragglers once more
	// work is known to be in flight; ≤ 0 selects 2ms. An idle queue
	// never waits.
	MaxWait time.Duration
	// QueueLimit bounds each session's admission queue (admitted,
	// unanswered requests); ≤ 0 selects 256. Beyond it requests are shed
	// with 429.
	QueueLimit int
	// Workers is the LocalizeBatch worker-pool size; 0 selects the CPU
	// count.
	Workers int
	// RequestTimeout is the default per-request deadline; ≤ 0 selects
	// 5s. Clients may shorten it per request with an X-Fttt-Timeout
	// header (a Go duration string).
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses; ≤ 0 selects 1s.
	RetryAfter time.Duration
	// Obs receives the serving metrics (and is exposed at /metrics); nil
	// creates a private registry.
	Obs *obs.Registry
	// TraceRecords, when positive, attaches a flight recorder to every
	// session: a bounded ring keeping the last TraceRecords trace records
	// (spans, events, links — DESIGN.md §12), exposed at
	// GET /v1/sessions/{id}/debug/trace. 0 disables tracing entirely —
	// the serving path then carries only nil checks.
	TraceRecords int
	// FieldCache, when non-nil, is the shared content-addressed division
	// cache every session's preprocessing routes through (DESIGN.md §13).
	// nil creates a private in-memory cache wired to the server's
	// registry — sessions still share divisions within this server, but
	// nothing spills to disk. Pass a cache built with
	// fieldcache.Config.Dir to warm-restart across processes.
	FieldCache *fieldcache.Cache
	// Hooks are test seams; zero in production.
	Hooks Hooks
}

// Hooks are deterministic-test seams into the serving path.
type Hooks struct {
	// BeforeBatch, when non-nil, is called (on the batcher goroutine)
	// with each batch's size just before it executes. The load harness
	// blocks here to build reproducible overload; production leaves it
	// nil.
	BeforeBatch func(batchSize int)
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the tracking-as-a-service HTTP handler plus the session
// table. Create one with New, mount it (it implements http.Handler),
// and call Drain on shutdown.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	met    *metrics
	mux    *http.ServeMux
	fcache *fieldcache.Cache

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   atomic.Uint64

	draining atomic.Bool
	wg       sync.WaitGroup // admitted requests in flight
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	fc := cfg.FieldCache
	if fc == nil {
		// A dir-less cache cannot fail construction.
		fc, _ = fieldcache.New(fieldcache.Config{Obs: reg})
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		met:      newMetrics(reg),
		mux:      http.NewServeMux(),
		fcache:   fc,
		sessions: make(map[string]*Session),
	}
	s.mux.HandleFunc("POST /v1/sessions", s.route("create", s.handleCreate))
	s.mux.HandleFunc("GET /v1/sessions", s.route("list", s.handleList))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.route("get", s.handleGet))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.route("close", s.handleClose))
	s.mux.HandleFunc("POST /v1/sessions/{id}/localize", s.route("localize", s.handleLocalize))
	s.mux.HandleFunc("POST /v1/sessions/{id}/reports", s.route("reports", s.handleReports))
	s.mux.HandleFunc("GET /v1/sessions/{id}/estimates/{target}", s.route("estimate", s.handleEstimate))
	s.mux.HandleFunc("GET /v1/sessions/{id}/stream", s.route("stream", s.handleStream))
	s.mux.HandleFunc("GET /v1/sessions/{id}/debug/trace", s.route("trace", s.handleTrace))
	s.mux.HandleFunc("GET /v1/sessions/{id}/state", s.route("state", s.handleStateExport))
	s.mux.HandleFunc("PUT /v1/sessions/{id}/state", s.route("restore", s.handleStateRestore))
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /metrics", obs.Handler(reg))
	return s
}

// Registry returns the server's telemetry registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route wraps a handler with its per-route request counter and latency
// histogram.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.met.requests[name]
	lat := s.met.latency[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		h(w, r)
		lat.Observe(time.Since(start).Seconds())
	}
}

// CreateSession builds a session from a wire config — the Go-level
// entry the POST /v1/sessions handler (and in-process harnesses: the
// load generator, BenchmarkServeLocalize) use. The server assigns the
// ID; a cluster router that needs to pick IDs itself (to place them on
// the hash ring before creation) passes one via the X-Fttt-Session-Id
// header, which routes through createSession directly.
func (s *Server) CreateSession(sc SessionConfig) (*Session, error) {
	return s.createSession(fmt.Sprintf("s%d", s.nextID.Add(1)), sc)
}

// createSession is CreateSession with a caller-chosen ID (the restore
// and router-assigned-ID paths). ErrSessionExists when the ID is taken.
func (s *Server) createSession(id string, sc SessionConfig) (*Session, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	if id == "" {
		return nil, errors.New("serve: empty session ID")
	}
	s.mu.Lock()
	_, taken := s.sessions[id]
	s.mu.Unlock()
	if taken {
		return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
	}
	cfg, err := sc.CoreConfig()
	if err != nil {
		return nil, err
	}
	cfg.Obs = s.reg
	// All preprocessing routes through the shared field cache: sessions
	// over one deployment share a single immutable division, built once.
	// A cold miss builds with every CPU — the worker count does not
	// change the division's bytes, only the build latency.
	var release func()
	cfg.DivideWorkers = -1
	cfg.Divider = func(spec field.Spec) (*field.Division, error) {
		div, rel, err := s.fcache.Acquire(spec)
		if err != nil {
			return nil, err
		}
		release = rel
		return div, nil
	}
	var rec *obs.Recorder
	if s.cfg.TraceRecords > 0 {
		// The flight recorder rides cfg.Tracer into every per-target
		// tracker clone; MultiTracer keeps any callback tracer working
		// alongside it.
		rec = obs.NewRecorder(s.cfg.TraceRecords)
		cfg.Tracer = obs.NewMultiTracer(cfg.Tracer, rec)
	}
	mt, err := core.NewMulti(cfg)
	if err != nil {
		if release != nil {
			release() // unpin: the session never materialized
		}
		return nil, err
	}
	sess := newSession(id, s, sc, cfg, mt, sc.Seed, rec, release)
	s.mu.Lock()
	if _, taken := s.sessions[id]; taken { // lost a create race for the ID
		s.mu.Unlock()
		sess.close()
		return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.met.sessions.Add(1)
	return sess, nil
}

// Session returns a live session by ID.
func (s *Server) Session(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// CloseSession tears a session down and removes it from the table;
// false when the ID is unknown (or already closed).
func (s *Server) CloseSession(id string) bool {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		return false
	}
	sess.close()
	s.met.sessions.Add(-1)
	return true
}

// Drain performs graceful shutdown: new work is refused with 503, then
// Drain blocks until every admitted request has been answered (or ctx
// expires), and finally every session is torn down — batchers stop and
// SSE streams end, so an enclosing http.Server.Shutdown is not held
// open. Returns ctx.Err() if the deadline cut the wait short. In a
// cluster, call Quiesce first and let the router migrate sessions off
// (fttt-serve -migrate-grace) before this final teardown.
func (s *Server) Drain(ctx context.Context) error {
	err := s.Quiesce(ctx)
	s.mu.Lock()
	all := make([]*Session, 0, len(s.sessions))
	for id, sess := range s.sessions {
		all = append(all, sess)
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	for _, sess := range all {
		sess.close()
		s.met.sessions.Add(-1)
	}
	return err
}

// --- HTTP handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var sc SessionConfig
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad session config: %w", err))
		return
	}
	var sess *Session
	var err error
	if id := r.Header.Get("X-Fttt-Session-Id"); id != "" {
		// A cluster router picks IDs itself so it can place the session
		// on its hash ring before the backend ever sees it.
		sess, err = s.createSession(id, sc)
	} else {
		sess, err = s.CreateSession(sc)
	}
	if err != nil {
		writeError(w, statusFor(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusCreated, s.describe(sess))
}

func (s *Server) describe(sess *Session) sessionWire {
	return sessionWire{
		ID:      sess.id,
		Nodes:   len(sess.cfg.Nodes),
		Faces:   len(sess.mt.Division().Faces),
		Variant: sess.cfg.Variant.String(),
		Targets: sess.Targets(),
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]sessionWire, 0, len(ids))
	for _, id := range ids {
		if sess, ok := s.Session(id); ok {
			out = append(out, s.describe(sess))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// session resolves {id} or writes a 404.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.Session(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown session %q", id))
		return nil, false
	}
	return sess, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.session(w, r); ok {
		writeJSON(w, http.StatusOK, s.describe(sess))
	}
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.CloseSession(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown session %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"closed": id})
}

// requestContext applies the per-request deadline: the server default,
// shortened by an X-Fttt-Timeout header when present and valid.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.RequestTimeout
	if h := r.Header.Get("X-Fttt-Timeout"); h != "" {
		hd, err := time.ParseDuration(h)
		if err != nil || hd <= 0 {
			return nil, nil, fmt.Errorf("serve: bad X-Fttt-Timeout %q", h)
		}
		if hd < d {
			d = hd
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

func (s *Server) handleLocalize(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var lw LocalizeWire
	if err := json.NewDecoder(r.Body).Decode(&lw); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad localize body: %w", err))
		return
	}
	if lw.Target == "" {
		writeError(w, http.StatusBadRequest, errors.New("serve: target is required"))
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	res, err := sess.Localize(ctx, lw.Target, geom.Pt(lw.X, lw.Y))
	s.writeResult(w, lw.Target, res, err)
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var rw ReportWire
	if err := json.NewDecoder(r.Body).Decode(&rw); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad report body: %w", err))
		return
	}
	if rw.Target == "" {
		writeError(w, http.StatusBadRequest, errors.New("serve: target is required"))
		return
	}
	g, err := rw.Group(len(sess.cfg.Nodes), sess.cfg.Epsilon)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	res, err := sess.Ingest(ctx, rw.Target, g)
	s.writeResult(w, rw.Target, res, err)
}

func (s *Server) writeResult(w http.ResponseWriter, target string, res Result, err error) {
	if err != nil {
		status := statusFor(err, http.StatusInternalServerError)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After",
				strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, WireEstimate(target, res.Seq, res.Estimate))
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	target := r.PathValue("target")
	ew, ok := sess.Latest(target)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no estimate yet for target %q", target))
		return
	}
	writeJSON(w, http.StatusOK, ew)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("serve: streaming unsupported"))
		return
	}
	ch, cancel, ok := sess.subscribe(r.URL.Query().Get("target"))
	if !ok {
		writeError(w, http.StatusConflict, ErrSessionClosed)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": stream %s\n\n", sess.id)
	flusher.Flush()
	for {
		select {
		case payload, open := <-ch:
			if !open {
				// Session closed: tell the client not to reconnect.
				fmt.Fprint(w, "event: close\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			fmt.Fprintf(w, "event: estimate\ndata: %s\n\n", payload)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// statusFor maps serving errors to HTTP statuses; fallback covers
// validation-style errors whose status depends on the route.
func statusFor(err error, fallback int) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrSessionClosed):
		return http.StatusConflict
	case errors.Is(err, ErrSessionExists), errors.Is(err, ErrSessionBusy):
		return http.StatusConflict
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return fallback
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorWire{Error: err.Error()})
}
