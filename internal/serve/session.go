package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fttt/internal/core"
	"fttt/internal/geom"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/sampling"
)

// Sentinel errors of the serving path; the HTTP layer maps them to
// status codes (429/404/409/503/504).
var (
	// ErrOverloaded is returned when the session's bounded admission
	// queue is full — the request was shed, try again later (429).
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrSessionClosed is returned to requests caught in a session
	// teardown (409).
	ErrSessionClosed = errors.New("serve: session closed")
	// ErrDraining is returned once the server has begun graceful drain:
	// no new work is admitted (503).
	ErrDraining = errors.New("serve: server draining")
	// ErrDeadline is returned when the caller's deadline expired before
	// the batcher delivered the estimate (504).
	ErrDeadline = errors.New("serve: request deadline exceeded")
)

// request is one admitted localize/report call waiting for the batcher.
type request struct {
	creq core.LocalizeRequest
	seq  uint64
	// canceled is set by the handler when its deadline expires while the
	// request is still queued; the batcher skips it without executing.
	canceled atomic.Bool
	done     chan response // buffered(1): the batcher never blocks on it
}

// response is the batcher's answer to one request.
type response struct {
	est core.Estimate
	err error
}

// Result pairs an estimate with the per-target sequence number the
// session assigned to its request.
type Result struct {
	Seq      uint64
	Estimate core.Estimate
}

// Session is one tracking session: a MultiTracker behind a bounded
// admission queue and a micro-batching loop, plus the SSE fan-out hub
// and the latest-estimate table.
type Session struct {
	id  string
	srv *Server
	// wire is the original wire config the session was created from,
	// kept verbatim for state export (migration re-creates the session
	// from it on a successor backend).
	wire SessionConfig
	cfg  core.Config
	mt   *core.MultiTracker
	root *randx.Stream // immutable seed root; Split is concurrency-safe
	rec  *obs.Recorder // flight recorder; nil when tracing is disabled
	// releaseDiv unpins this session's field-cache division entry; nil
	// when the session was built without the cache. Called once from
	// close (the func itself is idempotent).
	releaseDiv func()

	mu     sync.Mutex
	seq    map[string]uint64 // per-target request counter (rng index)
	latest map[string]EstimateWire
	closed bool

	inflight atomic.Int64 // admitted, not yet answered
	in       chan *request
	stop     chan struct{}
	stopped  chan struct{}

	subMu   sync.Mutex
	subs    map[int]*subscriber
	nextSub int
}

// subscriber is one SSE stream; events are dropped (and counted) rather
// than ever blocking the serving path.
type subscriber struct {
	ch     chan []byte
	target string // "" = all targets
}

func newSession(id string, srv *Server, wire SessionConfig, cfg core.Config, mt *core.MultiTracker, seed uint64, rec *obs.Recorder, releaseDiv func()) *Session {
	s := &Session{
		id:         id,
		srv:        srv,
		wire:       wire,
		cfg:        cfg,
		mt:         mt,
		root:       randx.New(seed),
		rec:        rec,
		releaseDiv: releaseDiv,
		seq:        make(map[string]uint64),
		latest:     make(map[string]EstimateWire),
		in:         make(chan *request, srv.cfg.QueueLimit),
		stop:       make(chan struct{}),
		stopped:    make(chan struct{}),
		subs:       make(map[int]*subscriber),
	}
	go s.runBatcher()
	return s
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Config returns the session's resolved tracker configuration.
func (s *Session) Config() core.Config { return s.cfg }

// Targets returns the session's known target IDs in sorted order.
func (s *Session) Targets() []string { return s.mt.Targets() }

// Latest returns the most recent estimate for target, if any.
func (s *Session) Latest(target string) (EstimateWire, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ew, ok := s.latest[target]
	return ew, ok
}

// Localize admits one simulated-sensing localization for target at the
// true position pos: the request's noise substream is
// RequestStream(root, target, n) for the target's n-th request, the
// request rides the next micro-batch, and the call blocks until the
// estimate is delivered or ctx expires. Errors: ErrOverloaded,
// ErrSessionClosed, ErrDraining, ErrDeadline.
func (s *Session) Localize(ctx context.Context, target string, pos geom.Point) (Result, error) {
	return s.submit(ctx, target, func(n uint64) core.LocalizeRequest {
		return core.LocalizeRequest{
			ID:  target,
			Pos: pos,
			Rng: RequestStream(s.root, target, n),
		}
	})
}

// Ingest admits one externally collected grouping sampling for target —
// the report-ingestion path. It consumes a per-target sequence number
// like Localize (the batching order contract is shared) but no noise
// substream.
func (s *Session) Ingest(ctx context.Context, target string, g *sampling.Group) (Result, error) {
	return s.submit(ctx, target, func(uint64) core.LocalizeRequest {
		return core.LocalizeRequest{ID: target, Group: g}
	})
}

// submit runs the admission pipeline: load-shed on the bounded queue,
// assign the per-target sequence number, enqueue in admission order,
// then wait for the batcher (or the deadline).
func (s *Session) submit(ctx context.Context, target string, mk func(n uint64) core.LocalizeRequest) (Result, error) {
	if s.srv.draining.Load() {
		return Result{}, ErrDraining
	}
	// Bounded admission: CAS the in-flight count against the queue
	// limit so an overload sheds deterministically at exactly the
	// configured depth.
	limit := int64(s.srv.cfg.QueueLimit)
	for {
		n := s.inflight.Load()
		if n >= limit {
			s.srv.met.shed.Inc()
			return Result{}, ErrOverloaded
		}
		if s.inflight.CompareAndSwap(n, n+1) {
			break
		}
	}
	s.srv.wg.Add(1)
	defer s.srv.wg.Done()

	r := &request{done: make(chan response, 1)}
	// Sequence assignment and enqueue happen under one lock so that
	// same-target requests enter the queue in sequence order — the
	// per-target FIFO the determinism contract rests on. The send cannot
	// block: the channel capacity equals the admission limit.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.inflight.Add(-1)
		return Result{}, ErrSessionClosed
	}
	r.seq = s.seq[target]
	s.seq[target] = r.seq + 1
	r.creq = mk(r.seq)
	// The request's root span: the whole causal tree of this call — the
	// batcher's round span parents under it, the batch span links to it.
	// Inert (nil recorder) this is a pointer check.
	sp := s.rec.Start(obs.SpanRef{}, "serve", "request")
	if sp.Active() {
		sp.AttrStr("target", target)
		sp.Attr("seq", float64(r.seq))
		r.creq.Span = sp.Ref()
	}
	s.in <- r
	s.mu.Unlock()
	s.srv.met.queueDepth.Add(1)

	select {
	case resp := <-r.done:
		sp.Flag("error", resp.err != nil)
		sp.End()
		if resp.err != nil {
			return Result{}, resp.err
		}
		return Result{Seq: r.seq, Estimate: resp.est}, nil
	case <-ctx.Done():
		r.canceled.Store(true)
		sp.Flag("deadline", true)
		sp.End()
		s.srv.met.timeouts.Inc()
		return Result{}, ErrDeadline
	}
}

// runBatcher is the session's single consumer: it coalesces queued
// requests into LocalizeBatch rounds. After a first request arrives it
// keeps collecting while more work is demonstrably in flight, up to
// MaxBatch requests or MaxWait of accumulated waiting — but executes
// immediately when the queue has gone quiet, so an unloaded server adds
// no batching latency.
func (s *Session) runBatcher() {
	defer close(s.stopped)
	maxBatch := s.srv.cfg.MaxBatch
	maxWait := s.srv.cfg.MaxWait
	var batch []*request
	for {
		var first *request
		select {
		case first = <-s.in:
		case <-s.stop:
			s.drainQueue()
			return
		}
		batch = append(batch[:0], first)
		if maxBatch > 1 {
			timer := time.NewTimer(maxWait)
		collect:
			for len(batch) < maxBatch {
				select {
				case r := <-s.in:
					batch = append(batch, r)
					continue
				default:
				}
				// Queue empty. inflight counts the batch members plus
				// anything admitted but not yet answered; if nothing
				// beyond the batch is in flight, waiting buys no
				// coalescing — execute now.
				if s.inflight.Load() <= int64(len(batch)) {
					break collect
				}
				select {
				case r := <-s.in:
					batch = append(batch, r)
				case <-timer.C:
					break collect
				case <-s.stop:
					break collect
				}
			}
			timer.Stop()
		}
		s.execute(batch)
	}
}

// execute runs one micro-batch through the tracker and fans the results
// back out, skipping requests whose callers have already given up.
func (s *Session) execute(batch []*request) {
	s.srv.met.queueDepth.Add(-float64(len(batch)))
	live := make([]*request, 0, len(batch))
	creqs := make([]core.LocalizeRequest, 0, len(batch))
	for _, r := range batch {
		if r.canceled.Load() {
			s.inflight.Add(-1)
			continue
		}
		live = append(live, r)
		creqs = append(creqs, r.creq)
	}
	if len(live) == 0 {
		return
	}
	s.srv.met.batchSize.Observe(float64(len(live)))
	if h := s.srv.cfg.Hooks.BeforeBatch; h != nil {
		h(len(live))
	}
	ests, err := s.mt.LocalizeBatch(creqs, s.srv.cfg.Workers)
	for i, r := range live {
		resp := response{err: err}
		if err == nil {
			resp.est = ests[i]
			ew := WireEstimate(r.creq.ID, r.seq, ests[i])
			s.mu.Lock()
			s.latest[r.creq.ID] = ew
			s.mu.Unlock()
			s.publish(ew)
		}
		r.done <- resp
		s.inflight.Add(-1)
	}
}

// drainQueue answers every still-queued request with ErrSessionClosed.
func (s *Session) drainQueue() {
	for {
		select {
		case r := <-s.in:
			s.srv.met.queueDepth.Add(-1)
			if !r.canceled.Load() {
				r.done <- response{err: ErrSessionClosed}
			}
			s.inflight.Add(-1)
		default:
			return
		}
	}
}

// close tears the session down: no new admissions, the batcher exits
// after its current batch, queued stragglers get ErrSessionClosed, and
// every SSE stream ends. Idempotent.
func (s *Session) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.stopped
	s.drainQueue() // requests that raced the batcher's exit
	s.subMu.Lock()
	for _, sub := range s.subs {
		close(sub.ch)
	}
	s.subs = make(map[int]*subscriber)
	s.subMu.Unlock()
	if s.releaseDiv != nil {
		// Unpin the shared division last: no more batches can touch it.
		s.releaseDiv()
	}
}

// subscribe registers an SSE stream; target "" receives every target's
// estimates. The returned cancel is idempotent and safe after close.
func (s *Session) subscribe(target string) (<-chan []byte, func(), bool) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, nil, false
	}
	id := s.nextSub
	s.nextSub++
	sub := &subscriber{ch: make(chan []byte, 16), target: target}
	s.subs[id] = sub
	cancel := func() {
		s.subMu.Lock()
		defer s.subMu.Unlock()
		if cur, ok := s.subs[id]; ok && cur == sub {
			delete(s.subs, id)
			close(sub.ch)
		}
	}
	return sub.ch, cancel, true
}

// publish fans one estimate out to matching subscribers. A slow
// consumer's full buffer drops the event (counted) instead of stalling
// the batcher.
func (s *Session) publish(ew EstimateWire) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if len(s.subs) == 0 {
		return // don't pay the marshal with nobody listening
	}
	payload, err := json.Marshal(ew)
	if err != nil {
		return
	}
	for _, sub := range s.subs {
		if sub.target != "" && sub.target != ew.Target {
			continue
		}
		select {
		case sub.ch <- payload:
		default:
			s.srv.met.sseDropped.Inc()
		}
	}
}
