package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fttt/internal/fieldcache"
	"fttt/internal/obs"
)

// faultedStateConfig is the migration fixture: an inline fault script
// plus the degradation policy, so the exported state (fault clock,
// extrapolation history, warm face) all matter to later estimates.
func faultedStateConfig(seed uint64) SessionConfig {
	sc := testConfig(seed)
	sc.Faults = "crash at=0 frac=0.5 recover=4; drift sigma=0.05"
	sc.FaultSeed = 9
	sc.StarFractionLimit = 0.4
	sc.RetryBackoff = 0.5
	return sc
}

// stateServer builds a server whose field cache spills to dir — two of
// them sharing one dir model two cluster backends over the shared
// division store.
func stateServer(t *testing.T, dir string) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	fc, err := fieldcache.New(fieldcache.Config{Dir: dir, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Obs: reg, FieldCache: fc})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, reg
}

func counterValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	return reg.Counter(name).Value()
}

// localizeBody fires one localize over HTTP and returns the trimmed
// 200 body.
func localizeBody(t *testing.T, client *http.Client, baseURL, id, target string, x, y float64) []byte {
	t.Helper()
	resp := postJSON(t, client, baseURL+"/v1/sessions/"+id+"/localize",
		LocalizeWire{Target: target, X: x, Y: y})
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("localize: status %d: %s", resp.StatusCode, b)
	}
	return bytes.TrimSpace(b)
}

// TestStateMigrationByteIdentical is the end-to-end migration
// determinism contract over real HTTP: a faulted session runs half its
// requests on backend A, exports through GET state, restores on
// backend B (PUT state, shared spill dir), and the continued sequence
// is byte-identical to an uninterrupted single-server run — with zero
// division builds on the successor.
func TestStateMigrationByteIdentical(t *testing.T) {
	sc := faultedStateConfig(21)
	targets := []string{"alpha", "bravo"}
	pos := func(target string, n int) (x, y float64) {
		f := float64(n)
		if target == "alpha" {
			return 15 + 3*f, 20 + 2*f
		}
		return 50 - 3*f, 45 - 2*f
	}
	const total, split = 8, 4

	// Uninterrupted reference on its own server (private cache).
	refSrv := New(Config{})
	refTS := httptest.NewServer(refSrv)
	defer refTS.Close()
	resp := postJSON(t, refTS.Client(), refTS.URL+"/v1/sessions", sc)
	refID := decodeBody[sessionWire](t, resp).ID
	want := make(map[string][][]byte)
	for n := 0; n < total; n++ {
		for _, tg := range targets {
			x, y := pos(tg, n)
			want[tg] = append(want[tg], localizeBody(t, refTS.Client(), refTS.URL, refID, tg, x, y))
		}
	}

	dir := t.TempDir()
	srvA, tsA, _ := stateServer(t, dir)
	srvB, tsB, regB := stateServer(t, dir)

	resp = postJSON(t, tsA.Client(), tsA.URL+"/v1/sessions", sc)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create on A: status %d", resp.StatusCode)
	}
	id := decodeBody[sessionWire](t, resp).ID
	for n := 0; n < split; n++ {
		for _, tg := range targets {
			x, y := pos(tg, n)
			got := localizeBody(t, tsA.Client(), tsA.URL, id, tg, x, y)
			if !bytes.Equal(got, want[tg][n]) {
				t.Fatalf("pre-migration %s[%d]:\n got %s\nwant %s", tg, n, got, want[tg][n])
			}
		}
	}

	// Drain A (first phase only: sessions stay alive for export).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvA.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := tsA.Client().Get(tsA.URL + "/v1/sessions/" + id + "/state")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("state export: status %d", resp.StatusCode)
	}
	stateBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var st SessionState
	if err := json.Unmarshal(stateBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != id || st.SpecKey == "" || len(st.Targets) != len(targets) {
		t.Fatalf("exported state: %+v", st)
	}
	for _, ts := range st.Targets {
		if ts.Seq != split || ts.Latest == nil || ts.Snapshot.FaceID < 0 {
			t.Fatalf("target state %s: %+v", ts.ID, ts)
		}
	}

	// Restore on B.
	req, err := http.NewRequest(http.MethodPut, tsB.URL+"/v1/sessions/"+id+"/state", bytes.NewReader(stateBody))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = tsB.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("state restore: status %d: %s", resp.StatusCode, b)
	}
	resp.Body.Close()
	// The successor warm-started from the shared spill dir: the division
	// was loaded, never rebuilt.
	if builds := counterValue(t, regB, "fttt_fieldcache_builds_total"); builds != 0 {
		t.Fatalf("successor fttt_fieldcache_builds_total = %v, want 0", builds)
	}
	if loads := counterValue(t, regB, "fttt_fieldcache_disk_loads_total"); loads != 1 {
		t.Fatalf("successor fttt_fieldcache_disk_loads_total = %v, want 1", loads)
	}
	if restores := counterValue(t, regB, "fttt_serve_session_restores_total"); restores != 1 {
		t.Fatalf("fttt_serve_session_restores_total = %v, want 1", restores)
	}

	// The latest estimates survived the migration.
	for _, tg := range targets {
		resp, err := tsB.Client().Get(tsB.URL + "/v1/sessions/" + id + "/estimates/" + tg)
		if err != nil {
			t.Fatal(err)
		}
		ew := decodeBody[EstimateWire](t, resp)
		if ew.Seq != split-1 {
			t.Fatalf("%s latest seq = %d, want %d", tg, ew.Seq, split-1)
		}
	}

	// Continue on B: byte-identical to the uninterrupted reference.
	for n := split; n < total; n++ {
		for _, tg := range targets {
			x, y := pos(tg, n)
			got := localizeBody(t, tsB.Client(), tsB.URL, id, tg, x, y)
			if !bytes.Equal(got, want[tg][n]) {
				t.Fatalf("post-migration %s[%d]:\n got %s\nwant %s", tg, n, got, want[tg][n])
			}
		}
	}
	srvB.CloseSession(id)
}

func TestCreateWithRequestedID(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	mk := func(id string) *http.Response {
		b, err := json.Marshal(testConfig(3))
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Fttt-Session-Id", id)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := mk("c42")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create with ID: status %d", resp.StatusCode)
	}
	if sw := decodeBody[sessionWire](t, resp); sw.ID != "c42" {
		t.Fatalf("created ID %q, want c42", sw.ID)
	}
	// A duplicate ID is a conflict, not a silent overwrite.
	resp = mk("c42")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate ID: status %d, want 409", resp.StatusCode)
	}
	srv.CloseSession("c42")
}

// TestStateExportBusy pins that an export with requests in flight is
// refused: a consistent snapshot needs a quiesced session.
func TestStateExportBusy(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv := New(Config{Hooks: Hooks{BeforeBatch: func(int) {
		entered <- struct{}{}
		<-release
	}}})
	sess, err := srv.CreateSession(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.CloseSession(sess.ID())
	errCh := make(chan error, 1)
	go func() {
		_, err := sess.Localize(context.Background(), "t", sess.cfg.Field.Center())
		errCh <- err
	}()
	<-entered // the request is mid-batch
	if _, err := sess.Export(); err != ErrSessionBusy {
		t.Fatalf("Export with in-flight request: err = %v, want ErrSessionBusy", err)
	}
	close(release)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Export(); err != nil {
		t.Fatalf("Export after quiesce: %v", err)
	}
}

func TestStateRestoreRejections(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	sess, err := srv.CreateSession(testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.CloseSession(sess.ID())
	st, err := sess.Export()
	if err != nil {
		t.Fatal(err)
	}

	put := func(path string, body []byte) *http.Response {
		req, err := http.NewRequest(http.MethodPut, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	marshal := func(st SessionState) []byte {
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Path/body ID mismatch.
	resp := put("/v1/sessions/other/state", marshal(st))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ID mismatch: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Spec-key mismatch: the restoring server derives different
	// preprocessing than the state claims.
	bad := st
	bad.ID = "m1"
	bad.SpecKey = strings.Repeat("0", 64)
	resp = put("/v1/sessions/m1/state", marshal(bad))
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "spec key") {
		t.Fatalf("spec-key mismatch: status %d body %s", resp.StatusCode, b)
	}

	// Colliding ID: the exporting session still lives here.
	good := st
	resp = put("/v1/sessions/"+st.ID+"/state", marshal(good))
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("restore onto live ID: status %d, want 409", resp.StatusCode)
	}

	// Draining server refuses restores.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	fresh := st
	fresh.ID = "m2"
	resp = put("/v1/sessions/m2/state", marshal(fresh))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("restore while draining: status %d, want 503", resp.StatusCode)
	}
}

// TestQuiesceKeepsSessionsAlive pins the two-phase drain contract:
// after Quiesce the session still answers reads (state export, latest
// estimates) while new work is refused — the window the router
// migrates in.
func TestQuiesceKeepsSessionsAlive(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	sess, err := srv.CreateSession(testConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Localize(context.Background(), "t", sess.cfg.Field.Center()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if srv.SessionCount() != 1 {
		t.Fatalf("SessionCount after Quiesce = %d, want 1", srv.SessionCount())
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/sessions/" + sess.ID() + "/state")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("state export while quiesced: status %d", resp.StatusCode)
	}
	if _, err := sess.Localize(context.Background(), "t", sess.cfg.Field.Center()); err != ErrDraining {
		t.Fatalf("localize while quiesced: err = %v, want ErrDraining", err)
	}
	// WaitEmpty unblocks once the router has migrated everything off.
	done := make(chan error, 1)
	wctx, wcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer wcancel()
	go func() { done <- srv.WaitEmpty(wctx) }()
	srv.CloseSession(sess.ID())
	if err := <-done; err != nil {
		t.Fatalf("WaitEmpty: %v", err)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
