package serve

import "fttt/internal/obs"

// routes instrumented with per-route request counters and latency
// histograms (fttt_serve_requests_total{route=...},
// fttt_serve_request_seconds{route=...}).
var routes = []string{
	"create", "list", "get", "close", "localize", "reports", "estimate", "stream", "trace",
	"state", "restore",
}

// metrics caches the serving-layer metric handles, resolved once at
// server construction (the obs rule: the request path only touches
// atomics).
type metrics struct {
	sessions   *obs.Gauge
	queueDepth *obs.Gauge
	batchSize  *obs.Histogram
	shed       *obs.Counter
	timeouts   *obs.Counter
	sseDropped *obs.Counter
	restores   *obs.Counter
	requests   map[string]*obs.Counter
	latency    map[string]*obs.Histogram
}

func newMetrics(r *obs.Registry) *metrics {
	m := &metrics{
		sessions:   r.Gauge("fttt_serve_sessions"),
		queueDepth: r.Gauge("fttt_serve_queue_depth"),
		batchSize:  r.Histogram("fttt_serve_batch_size", obs.LinearBuckets(1, 1, 32)),
		shed:       r.Counter("fttt_serve_shed_total"),
		timeouts:   r.Counter("fttt_serve_timeouts_total"),
		sseDropped: r.Counter("fttt_serve_sse_dropped_total"),
		restores:   r.Counter("fttt_serve_session_restores_total"),
		requests:   make(map[string]*obs.Counter, len(routes)),
		latency:    make(map[string]*obs.Histogram, len(routes)),
	}
	for _, rt := range routes {
		m.requests[rt] = r.Counter(`fttt_serve_requests_total{route="` + rt + `"}`)
		m.latency[rt] = r.Histogram(`fttt_serve_request_seconds{route="`+rt+`"}`,
			obs.ExpBuckets(1e-4, 2, 16))
	}
	return m
}
