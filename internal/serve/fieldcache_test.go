package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fttt/internal/fieldcache"
	"fttt/internal/geom"
)

func cacheCounter(t *testing.T, srv *Server, name string) float64 {
	t.Helper()
	return srv.Registry().Counter(name).Value()
}

func TestSessionsShareCachedDivision(t *testing.T) {
	srv := New(Config{})
	a, err := srv.CreateSession(testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.CreateSession(testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := cacheCounter(t, srv, "fttt_fieldcache_builds_total"); got != 1 {
		t.Fatalf("builds = %v, want 1 (second session must reuse the division)", got)
	}
	if got := cacheCounter(t, srv, "fttt_fieldcache_hits_total"); got != 1 {
		t.Fatalf("hits = %v, want 1", got)
	}
	// Byte-identity between the cache-miss session (a) and the cache-hit
	// session (b): same seed, same request sequence, so the wire bytes
	// must agree exactly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		pos := geom.Pt(10+float64(i)*8, 12+float64(i)*7)
		ra, err := a.Localize(ctx, "t1", pos)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Localize(ctx, "t1", pos)
		if err != nil {
			t.Fatal(err)
		}
		wa, _ := json.Marshal(WireEstimate("t1", ra.Seq, ra.Estimate))
		wb, _ := json.Marshal(WireEstimate("t1", rb.Seq, rb.Estimate))
		if string(wa) != string(wb) {
			t.Fatalf("request %d: cache-hit estimate differs from cache-miss:\n%s\n%s", i, wa, wb)
		}
	}
	srv.CloseSession(a.ID())
	srv.CloseSession(b.ID())
}

func TestSessionCloseReleasesCacheEntry(t *testing.T) {
	// With MaxEntries 1, a second deployment can only become resident
	// after the first session's entry is unpinned by close.
	fc, err := fieldcache.New(fieldcache.Config{MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{FieldCache: fc})
	a, err := srv.CreateSession(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	other := testConfig(2)
	other.GridNodes = 4
	bSess, err := srv.CreateSession(other)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Len() != 2 {
		t.Fatalf("Len = %d; both divisions pinned, neither evictable", fc.Len())
	}
	if !srv.CloseSession(a.ID()) {
		t.Fatal("close failed")
	}
	if fc.Len() != 1 {
		t.Fatalf("Len = %d after close, want 1 (released entry evicted)", fc.Len())
	}
	srv.CloseSession(bSess.ID())
}

// TestColdSessionCacheSpeedup pins the acceptance criterion: creating a
// session against a warm cache must be at least 10× faster than the
// cold build (which runs the full Sec. 4.3 division). The fixture is
// deliberately heavier than testConfig so the cold build dominates
// scheduler noise.
func TestColdSessionCacheSpeedup(t *testing.T) {
	sc := SessionConfig{
		Seed:      3,
		Field:     &RectWire{Min: PointWire{0, 0}, Max: PointWire{100, 100}},
		GridNodes: 16,
		CellSize:  2,
	}
	srv := New(Config{})

	start := time.Now()
	cold, err := srv.CreateSession(sc)
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(start)
	srv.CloseSession(cold.ID())

	warmDur := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start = time.Now()
		s, err := srv.CreateSession(sc)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < warmDur {
			warmDur = d
		}
		srv.CloseSession(s.ID())
	}
	if coldDur < 10*warmDur {
		t.Fatalf("cache-hit session creation not ≥10× faster: cold %v, warm %v", coldDur, warmDur)
	}
	t.Logf("cold %v, warm %v (%.0f×)", coldDur, warmDur, float64(coldDur)/float64(warmDur))
}

func TestMetricsExposeFieldcacheHitRate(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	for i := 0; i < 2; i++ {
		resp := postJSON(t, client, ts.URL+"/v1/sessions", testConfig(uint64(i+1)))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"fttt_fieldcache_hits_total 1",
		"fttt_fieldcache_misses_total 1",
		"fttt_fieldcache_builds_total 1",
		"fttt_fieldcache_entries 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The bytes gauge carries the division's estimated footprint.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "fttt_fieldcache_bytes ") {
			if strings.TrimPrefix(line, "fttt_fieldcache_bytes ") == "0" {
				t.Error("fttt_fieldcache_bytes is 0 with a resident division")
			}
			return
		}
	}
	t.Error("/metrics missing fttt_fieldcache_bytes")
}
