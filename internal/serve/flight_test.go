package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fttt/internal/obs"
)

// TestFlightRecorderEndpoint drives a faulted session end to end and
// reads the flight recorder back through every format of
// GET /v1/sessions/{id}/debug/trace.
func TestFlightRecorderEndpoint(t *testing.T) {
	srv := New(Config{TraceRecords: 512})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// A session whose every round carries RSS bias (drift + skew) so the
	// recording is guaranteed to hold fault events.
	sc := testConfig(7)
	sc.Faults = "drift sigma=0.05\nskew max=0.01"
	sc.FaultSeed = 11
	resp := postJSON(t, client, ts.URL+"/v1/sessions", sc)
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	sw := decodeBody[sessionWire](t, resp)

	const rounds = 5
	for i := 0; i < rounds; i++ {
		resp = postJSON(t, client, ts.URL+"/v1/sessions/"+sw.ID+"/localize",
			LocalizeWire{Target: "alpha", X: 20 + float64(i), Y: 30})
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("localize %d: status %d: %s", i, resp.StatusCode, body)
		}
		resp.Body.Close()
	}

	// Digested view: every completed round, in order, with stages and
	// fault events.
	resp, err := client.Get(ts.URL + "/v1/sessions/" + sw.ID + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	dw := decodeBody[traceDebugWire](t, resp)
	if dw.Session != sw.ID || dw.Capacity != 512 {
		t.Fatalf("debug header: %+v", dw)
	}
	if len(dw.Rounds) != rounds {
		t.Fatalf("digested %d rounds, want %d", len(dw.Rounds), rounds)
	}
	var faultEvents int
	for i, r := range dw.Rounds {
		if r.Target != "alpha" || r.Seq != uint64(i) {
			t.Errorf("round %d: target %q seq %d", i, r.Target, r.Seq)
		}
		var stages []string
		for _, st := range r.Stages {
			stages = append(stages, st.Component+"/"+st.Name)
		}
		joined := strings.Join(stages, " ")
		for _, want := range []string{"core/localize", "sampling/sample", "match/match"} {
			if !strings.Contains(joined, want) {
				t.Errorf("round %d stages %q missing %s", i, joined, want)
			}
		}
		for _, ev := range r.Events {
			if ev.Component == "faults" {
				faultEvents++
			}
		}
	}
	if faultEvents == 0 {
		t.Error("faulted session recorded no faults/* events")
	}

	// Raw JSONL round-trips through the exporter's reader.
	resp, err = client.Get(ts.URL + "/v1/sessions/" + sw.ID + "/debug/trace?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("jsonl content type %q", ct)
	}
	recs, err := obs.ReadJSONL(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("jsonl export empty")
	}
	// Batch spans live in their own traces and link the request spans
	// they coalesced (they are not children of any round).
	var batchSpans, links int
	for _, r := range recs {
		switch {
		case r.Kind == obs.KindSpan && r.Component == "core" && r.Name == "localize_batch":
			batchSpans++
		case r.Kind == obs.KindLink:
			links++
		}
	}
	if batchSpans == 0 || links == 0 {
		t.Errorf("raw recording: %d localize_batch spans, %d links, want both > 0", batchSpans, links)
	}

	// Chrome export is valid JSON with a traceEvents array.
	resp, err = client.Get(ts.URL + "/v1/sessions/" + sw.ID + "/debug/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export has no traceEvents")
	}

	// Unknown format: 400.
	resp, err = client.Get(ts.URL + "/v1/sessions/" + sw.ID + "/debug/trace?format=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus format: status %d, want 400", resp.StatusCode)
	}
}

// TestFlightRecorderDisabled pins the no-tracing default: the endpoint
// 404s with a hint instead of returning an empty recording.
func TestFlightRecorderDisabled(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	resp := postJSON(t, client, ts.URL+"/v1/sessions", testConfig(3))
	sw := decodeBody[sessionWire](t, resp)
	resp = postJSON(t, client, ts.URL+"/v1/sessions/"+sw.ID+"/localize",
		LocalizeWire{Target: "alpha", X: 20, Y: 30})
	resp.Body.Close()

	resp, err := client.Get(ts.URL + "/v1/sessions/" + sw.ID + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled tracing: status %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(string(body), "TraceRecords") {
		t.Errorf("404 body should hint at Config.TraceRecords: %s", body)
	}
}

// TestFlightRecorderFaultedWireConfig pins that the wire-level fault
// script actually reaches the tracker: a malformed script must fail
// session creation, not be silently ignored.
func TestFlightRecorderFaultedWireConfig(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sc := testConfig(3)
	sc.Faults = "not a fault script"
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", sc)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed fault script: status %d, want 400", resp.StatusCode)
	}
}
