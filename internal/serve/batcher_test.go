package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"fttt/internal/core"
	"fttt/internal/geom"
	"fttt/internal/randx"
)

// serialReference replays the same per-target request sequences through
// a fresh MultiTracker one request at a time — the unbatched serial
// execution the serving determinism contract is pinned to — and returns
// the marshalled response bytes per target.
func serialReference(t *testing.T, sc SessionConfig, workload map[string][]geom.Point) map[string][][]byte {
	t.Helper()
	cc, err := sc.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.NewMulti(cc)
	if err != nil {
		t.Fatal(err)
	}
	root := randx.New(sc.Seed)
	out := make(map[string][][]byte, len(workload))
	for target, positions := range workload {
		for n, pos := range positions {
			ests, err := mt.LocalizeBatch([]core.LocalizeRequest{{
				ID:  target,
				Pos: pos,
				Rng: RequestStream(root, target, uint64(n)),
			}}, 1)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(WireEstimate(target, uint64(n), ests[0]))
			if err != nil {
				t.Fatal(err)
			}
			out[target] = append(out[target], b)
		}
	}
	return out
}

// runWorkload drives one goroutine per target against an in-process
// session, each issuing its positions sequentially, and returns the
// marshalled response bytes per target in issue order.
func runWorkload(t *testing.T, srv *Server, sc SessionConfig, workload map[string][]geom.Point) map[string][][]byte {
	t.Helper()
	sess, err := srv.CreateSession(sc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.CloseSession(sess.ID())
	var mu sync.Mutex
	got := make(map[string][][]byte, len(workload))
	var wg sync.WaitGroup
	errs := make(chan error, len(workload))
	for target, positions := range workload {
		wg.Add(1)
		go func(target string, positions []geom.Point) {
			defer wg.Done()
			for n, pos := range positions {
				res, err := sess.Localize(context.Background(), target, pos)
				if err != nil {
					errs <- fmt.Errorf("%s[%d]: %w", target, n, err)
					return
				}
				if res.Seq != uint64(n) {
					errs <- fmt.Errorf("%s[%d]: seq %d", target, n, res.Seq)
					return
				}
				b, err := json.Marshal(WireEstimate(target, res.Seq, res.Estimate))
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				got[target] = append(got[target], b)
				mu.Unlock()
			}
		}(target, positions)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return got
}

func mkWorkload(targets, requests int, seed uint64) map[string][]geom.Point {
	rng := randx.New(seed)
	w := make(map[string][]geom.Point, targets)
	for ti := 0; ti < targets; ti++ {
		id := fmt.Sprintf("target-%d", ti)
		tr := rng.SplitN("target", ti)
		pts := make([]geom.Point, requests)
		for n := range pts {
			pts[n] = geom.Pt(tr.Uniform(5, 55), tr.Uniform(5, 55))
		}
		w[id] = pts
	}
	return w
}

// TestBatchedByteIdenticalToSerial is the serving extension of the PR 2
// determinism contract: for any batching configuration (including
// batching disabled) and any goroutine interleaving, the response bytes
// equal unbatched serial execution.
func TestBatchedByteIdenticalToSerial(t *testing.T) {
	sc := testConfig(42)
	workload := mkWorkload(6, 12, 99)
	want := serialReference(t, sc, workload)

	configs := []Config{
		{MaxBatch: 1},                                        // batching disabled
		{MaxBatch: 4, MaxWait: time.Millisecond},             // small batches
		{MaxBatch: 32, MaxWait: 5 * time.Millisecond},        // wide batches
		{MaxBatch: 8, MaxWait: time.Nanosecond},              // immediate flush
		{MaxBatch: 8, MaxWait: time.Millisecond, Workers: 1}, // serial pool
	}
	for i, cfg := range configs {
		got := runWorkload(t, New(cfg), sc, workload)
		for target, wantSeq := range want {
			gotSeq := got[target]
			if len(gotSeq) != len(wantSeq) {
				t.Fatalf("config %d %s: %d responses, want %d", i, target, len(gotSeq), len(wantSeq))
			}
			for n := range wantSeq {
				if !bytes.Equal(gotSeq[n], wantSeq[n]) {
					t.Fatalf("config %d %s[%d]:\n got %s\nwant %s",
						i, target, n, gotSeq[n], wantSeq[n])
				}
			}
		}
	}
}

// TestBatcherCoalesces proves concurrent requests actually share
// batches: with clients gated to arrive together, at least one executed
// batch must hold more than one request.
func TestBatcherCoalesces(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	block := make(chan struct{})
	srv := New(Config{
		MaxBatch: 16,
		MaxWait:  50 * time.Millisecond,
		Hooks: Hooks{BeforeBatch: func(n int) {
			<-block // hold the first batch until all clients queued
			mu.Lock()
			sizes = append(sizes, n)
			mu.Unlock()
		}},
	})
	sess, err := srv.CreateSession(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := sess.Localize(context.Background(),
				fmt.Sprintf("t%d", i), geom.Pt(30, 30)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	// Wait until every client is admitted, then release the batcher.
	for start := time.Now(); sess.inflight.Load() < clients; {
		if time.Since(start) > 5*time.Second {
			t.Fatal("clients never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	max := 0
	for _, n := range sizes {
		if n > max {
			max = n
		}
	}
	if max < 2 {
		t.Fatalf("no coalescing observed: batch sizes %v", sizes)
	}
}

// TestAdmissionControl pins the load-shedding mechanics: with the
// batcher gated, exactly QueueLimit requests are admitted and the rest
// are shed with ErrOverloaded; queued requests past their deadline are
// answered ErrDeadline and skipped by the batcher.
func TestAdmissionControl(t *testing.T) {
	const limit = 4
	gate := make(chan struct{})
	srv := New(Config{
		QueueLimit: limit,
		MaxBatch:   1, // execute one by one so the gate holds the queue
		Hooks:      Hooks{BeforeBatch: func(int) { <-gate }},
	})
	sess, err := srv.CreateSession(testConfig(8))
	if err != nil {
		t.Fatal(err)
	}

	const total = limit + 5
	errsCh := make(chan error, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			_, err := sess.Localize(ctx, fmt.Sprintf("t%d", i), geom.Pt(20, 20))
			errsCh <- err
		}(i)
	}
	wg.Wait()
	close(errsCh)
	var shed, deadline, other int
	for err := range errsCh {
		switch err {
		case ErrOverloaded:
			shed++
		case ErrDeadline:
			deadline++
		default:
			other++
		}
	}
	// The batcher holds at the gate with one request in hand; that one
	// plus the queue capacity are admitted (then time out), the rest
	// shed.
	if shed != total-limit {
		t.Errorf("shed %d requests, want %d", shed, total-limit)
	}
	if deadline != limit {
		t.Errorf("%d deadline errors, want %d", deadline, limit)
	}
	if other != 0 {
		t.Errorf("%d unexpected outcomes", other)
	}
	if got := srv.met.shed.Value(); got != float64(total-limit) {
		t.Errorf("shed counter %v, want %d", got, total-limit)
	}
	if got := srv.met.timeouts.Value(); got != float64(limit) {
		t.Errorf("timeout counter %v, want %d", got, limit)
	}
	close(gate) // release the batcher; canceled entries are skipped
	srv.CloseSession(sess.ID())
	if got := srv.met.queueDepth.Value(); got != 0 {
		t.Errorf("queue depth after teardown %v, want 0", got)
	}
}
