package serve

import (
	"fmt"
	"math"
	"strings"

	"fttt/internal/byz"
	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/faults"
	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
)

// PointWire is a field position on the wire.
type PointWire struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// RectWire is an axis-aligned rectangle on the wire; any two opposite
// corners are accepted.
type RectWire struct {
	Min PointWire `json:"min"`
	Max PointWire `json:"max"`
}

// SessionConfig is the JSON body of POST /v1/sessions. Zero-valued
// fields select the paper's Table 1 defaults (see DefaultConfig in the
// facade): 100×100 m field, ε=1 dBm, k=5 sampling times, R=40 m sensing
// range, 1 m division cells, the default signal model. Exactly one node
// source must be given: an explicit Nodes list, GridNodes, or
// RandomNodes (placed with the session seed's "deploy" substream).
type SessionConfig struct {
	// Seed roots the session's deterministic random stream; every
	// localize request for target T with per-target sequence n draws its
	// sampling noise from Split("target:"+T).SplitN("req", n) of this
	// root. Two sessions created with the same config and fed the same
	// per-target request sequences return byte-identical estimates.
	Seed uint64 `json:"seed"`

	Field       *RectWire   `json:"field,omitempty"`
	Nodes       []PointWire `json:"nodes,omitempty"`
	GridNodes   int         `json:"gridNodes,omitempty"`
	RandomNodes int         `json:"randomNodes,omitempty"`

	// Epsilon is the sensing resolution ε in dBm; 0 selects 1.
	Epsilon float64 `json:"epsilon,omitempty"`
	// SamplingTimes is k; 0 selects 5.
	SamplingTimes int `json:"samplingTimes,omitempty"`
	// Range is the sensing range in metres; 0 selects 40, negative
	// disables the range limit.
	Range float64 `json:"range,omitempty"`
	// CellSize is the division cell edge in metres; 0 selects 1.
	CellSize float64 `json:"cellSize,omitempty"`
	// Variant is "basic" (default) or "extended".
	Variant string `json:"variant,omitempty"`

	ReportLoss        float64 `json:"reportLoss,omitempty"`
	StarFractionLimit float64 `json:"starFractionLimit,omitempty"`
	RetryBackoff      float64 `json:"retryBackoff,omitempty"`
	Exhaustive        bool    `json:"exhaustive,omitempty"`

	// Faults is an inline fault-scenario script (internal/faults
	// directive syntax, e.g. "crash at=0 frac=0.3"); empty disables
	// injection. Only inline text is accepted — the wire never reads
	// server-side files.
	Faults string `json:"faults,omitempty"`
	// FaultSeed roots the fault scheduler's random choices; meaningful
	// only with Faults set.
	FaultSeed uint64 `json:"faultSeed,omitempty"`

	// Defense, when non-nil, arms the Byzantine-sensing defense layer
	// (internal/byz) on every target tracker of the session. Zero-valued
	// knobs select the documented defaults.
	Defense *DefenseWire `json:"defense,omitempty"`
}

// DefenseWire is the Byzantine defense configuration on the wire — the
// byz.Config knobs (DESIGN.md §15). A present but all-zero object arms
// the defense with defaults.
type DefenseWire struct {
	QuorumThreshold float64 `json:"quorumThreshold,omitempty"`
	MinQuorum       float64 `json:"minQuorum,omitempty"`
	SuspectAbove    float64 `json:"suspectAbove,omitempty"`
	ClearBelow      float64 `json:"clearBelow,omitempty"`
	LearnRate       float64 `json:"learnRate,omitempty"`
	DecayRate       float64 `json:"decayRate,omitempty"`
	MinRounds       int     `json:"minRounds,omitempty"`
	TrustFloor      float64 `json:"trustFloor,omitempty"`
}

// CoreConfig resolves the wire config into a validated core.Config.
// Errors wrap what core.Config.Validate (or the resolution itself)
// rejected; the server surfaces them verbatim as 400 bodies.
func (sc SessionConfig) CoreConfig() (core.Config, error) {
	field := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	if sc.Field != nil {
		field = geom.NewRect(
			geom.Pt(sc.Field.Min.X, sc.Field.Min.Y),
			geom.Pt(sc.Field.Max.X, sc.Field.Max.Y),
		)
	}
	sources := 0
	var nodes []geom.Point
	if len(sc.Nodes) > 0 {
		sources++
		nodes = make([]geom.Point, len(sc.Nodes))
		for i, p := range sc.Nodes {
			nodes[i] = geom.Pt(p.X, p.Y)
		}
	}
	if sc.GridNodes > 0 {
		sources++
		nodes = deploy.Grid(field, sc.GridNodes).Positions()
	}
	if sc.RandomNodes > 0 {
		sources++
		nodes = deploy.Random(field, sc.RandomNodes, randx.New(sc.Seed).Split("deploy")).Positions()
	}
	if sources != 1 {
		return core.Config{}, fmt.Errorf("serve: exactly one of nodes, gridNodes, randomNodes must be given (got %d sources)", sources)
	}
	cfg := core.Config{
		Field:             field,
		Nodes:             nodes,
		Model:             rf.Default(),
		Epsilon:           sc.Epsilon,
		SamplingTimes:     sc.SamplingTimes,
		Range:             sc.Range,
		CellSize:          sc.CellSize,
		ReportLoss:        sc.ReportLoss,
		StarFractionLimit: sc.StarFractionLimit,
		RetryBackoff:      sc.RetryBackoff,
		Exhaustive:        sc.Exhaustive,
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1
	}
	if cfg.SamplingTimes == 0 {
		cfg.SamplingTimes = 5
	}
	switch cfg.Range {
	case 0:
		cfg.Range = 40
	default:
		if cfg.Range < 0 {
			cfg.Range = 0 // core convention: 0 disables the range limit
		}
	}
	if cfg.CellSize == 0 {
		cfg.CellSize = 1
	}
	switch strings.ToLower(sc.Variant) {
	case "", "basic":
		cfg.Variant = core.Basic
	case "ext", "extended":
		cfg.Variant = core.Extended
	default:
		return core.Config{}, fmt.Errorf("serve: unknown variant %q (want basic or extended)", sc.Variant)
	}
	if sc.Faults != "" {
		script, err := faults.Parse(sc.Faults)
		if err != nil {
			return core.Config{}, fmt.Errorf("serve: bad faults script: %w", err)
		}
		cfg.FaultScript = script
		cfg.FaultSeed = sc.FaultSeed
	}
	if sc.Defense != nil {
		cfg.Defense = &byz.Config{
			Enabled:         true,
			QuorumThreshold: sc.Defense.QuorumThreshold,
			MinQuorum:       sc.Defense.MinQuorum,
			SuspectAbove:    sc.Defense.SuspectAbove,
			ClearBelow:      sc.Defense.ClearBelow,
			LearnRate:       sc.Defense.LearnRate,
			DecayRate:       sc.Defense.DecayRate,
			MinRounds:       sc.Defense.MinRounds,
			TrustFloor:      sc.Defense.TrustFloor,
		}
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// LocalizeWire is the JSON body of POST /v1/sessions/{id}/localize: the
// true target position to sample (the simulated-sensing path).
type LocalizeWire struct {
	Target string  `json:"target"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
}

// ReportWire is the JSON body of POST /v1/sessions/{id}/reports: an
// externally collected grouping sampling (the report-ingestion path) —
// the k×n RSS matrix of Def. 3 plus the reported set.
type ReportWire struct {
	Target   string      `json:"target"`
	RSS      [][]float64 `json:"rss"`
	Reported []bool      `json:"reported"`
	// Epsilon overrides the session's sensing resolution for this group;
	// nil keeps the session value.
	Epsilon *float64 `json:"epsilon,omitempty"`
}

// Group converts the wire report into a sampling.Group with the
// session's epsilon as default, validating shape against n nodes.
func (rw ReportWire) Group(n int, sessionEpsilon float64) (*sampling.Group, error) {
	eps := sessionEpsilon
	if rw.Epsilon != nil {
		eps = *rw.Epsilon
	}
	g := &sampling.Group{RSS: rw.RSS, Reported: rw.Reported, Epsilon: eps}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(rw.RSS) == 0 {
		return nil, fmt.Errorf("serve: report needs at least one sampling instant")
	}
	if g.N() != n {
		return nil, fmt.Errorf("serve: report has %d node columns, session has %d nodes", g.N(), n)
	}
	return g, nil
}

// EstimateWire is one localization outcome on the wire. Similarity +Inf
// (an exact signature match) cannot be represented in JSON, so it is
// reported as Exact=true with Similarity 0.
type EstimateWire struct {
	Target string  `json:"target"`
	Seq    uint64  `json:"seq"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	FaceID int     `json:"faceId"`

	Similarity   float64 `json:"similarity"`
	Exact        bool    `json:"exact,omitempty"`
	Confidence   float64 `json:"confidence"`
	StarFraction float64 `json:"starFraction"`

	Reported int `json:"reported"`
	Stars    int `json:"stars"`
	Flipped  int `json:"flipped"`
	Visited  int `json:"visited"`

	FellBack     bool `json:"fellBack,omitempty"`
	Degraded     bool `json:"degraded,omitempty"`
	Retried      bool `json:"retried,omitempty"`
	Extrapolated bool `json:"extrapolated,omitempty"`
}

// WireEstimate converts a core estimate for target/seq into its wire
// form. It is exported so test harnesses (internal/serve/loadtest, the
// batching property tests) can build the byte-identical serial
// reference with the same conversion the server applies.
func WireEstimate(target string, seq uint64, est core.Estimate) EstimateWire {
	ew := EstimateWire{
		Target:       target,
		Seq:          seq,
		X:            est.Pos.X,
		Y:            est.Pos.Y,
		FaceID:       est.FaceID,
		Similarity:   est.Similarity,
		Confidence:   est.Confidence(),
		StarFraction: est.StarFraction(),
		Reported:     est.Reported,
		Stars:        est.Stars,
		Flipped:      est.Flipped,
		Visited:      est.Visited,
		FellBack:     est.FellBack,
		Degraded:     est.Degraded,
		Retried:      est.Retried,
		Extrapolated: est.Extrapolated,
	}
	if math.IsInf(est.Similarity, 1) {
		ew.Similarity, ew.Exact = 0, true
	}
	return ew
}

// RequestStream derives the noise substream the server assigns to the
// n-th localize request of a target within a session rooted at root —
// the determinism contract of SessionConfig.Seed, exported for serial
// reference harnesses.
func RequestStream(root *randx.Stream, target string, n uint64) *randx.Stream {
	return root.Split("target:"+target).SplitN("req", int(n))
}

// errorWire is the JSON body of every non-2xx response.
type errorWire struct {
	Error string `json:"error"`
}

// sessionWire describes a session in create/get/list responses.
type sessionWire struct {
	ID      string   `json:"id"`
	Nodes   int      `json:"nodes"`
	Faces   int      `json:"faces"`
	Variant string   `json:"variant"`
	Targets []string `json:"targets"`
}
