// Package byz is the Byzantine-sensing defense layer (DESIGN.md §15):
// it hardens the FTTT matcher against adversarial nodes — spoofed RSS,
// inverted pair reports, colluding sets steering the estimate toward a
// decoy — with three cooperating mechanisms:
//
//   - Online per-node trust. Each round, every non-star pair of the
//     sampling vector is compared against the matched face's signature;
//     a pair whose observed relation strictly contradicts the signature
//     (opposite signs — not the one-sided zeros the benign flip model of
//     Def. 8 produces) charges an inversion to both of its nodes. A
//     per-node exponential moving average of the inversion rate, floored
//     by the Sec. 5.1 capture-escape probability (1/2)^(k−1) that benign
//     sensing is entitled to, becomes the node's distrust evidence; node
//     trust is 1 − evidence.
//
//   - Suspect detection with hysteresis. A node whose evidence exceeds
//     SuspectAbove after MinRounds rounds is flagged suspect (counted on
//     fttt_byz_suspects_total) and stays suspect until its evidence
//     decays below ClearBelow — a recovered or re-calibrated node earns
//     its way back.
//
//   - Quorum voting over redundant pair observations. The ternary pair
//     relation is a total order, so witnesses compose transitively: node
//     m vouches for pair (i,j) when sign(v[i,m]) == sign(v[m,j]) ≠ 0.
//     Every pair involving a suspect is re-decided by the non-suspect
//     witnesses, and — crucially — a composition link that itself
//     involves a suspect is read from the previous matched signature,
//     never from the suspect's current report (an attacker must not be
//     able to corroborate its own lies; the prior signature is the same
//     temporal-redundancy basis eq. 6 fault filling already trusts). A
//     winning sign holding at least QuorumThreshold of the vote weight
//     (with at least MinQuorum total weight) replaces the direct
//     observation (fttt_byz_votes_overridden_total counts actual flips);
//     a pair with no quorum is starred out, feeding the tracker's
//     existing star-fraction degradation policy (DESIGN.md §9) — the
//     degraded-round integration when quorum fails.
//
// The defense is deterministic and draw-free: it consumes no randomness,
// and while every node holds full trust it neither rewrites the sampling
// vector nor emits trust weights — the matcher runs its unmodified path,
// which is why a defended tracker under a fully honest fleet is
// byte-identical to a vanilla one (the §8/§15 determinism contract,
// pinned by the golden differential tests).
package byz

import (
	"fmt"
	"math"
	"sort"

	"fttt/internal/obs"
	"fttt/internal/sampling"
	"fttt/internal/vector"
)

// Config parameterises the defense. The zero value of every field
// selects the documented default; Enabled gates the whole layer so a
// *Config can ride in core.Config with nil-is-off semantics.
type Config struct {
	// Enabled arms the defense.
	Enabled bool
	// QuorumThreshold is the fraction of the total witness weight the
	// winning sign must hold for a vote to stand; 0 selects 2/3 (the
	// classical Byzantine supermajority).
	QuorumThreshold float64
	// MinQuorum is the minimum total witness weight for a vote to stand
	// at all; 0 selects 3 witnesses' worth.
	MinQuorum float64
	// SuspectAbove is the inversion-evidence level that flags a node
	// suspect; 0 selects 0.2 (benign excess is ~0 once the (1/2)^(k−1)
	// floor is discounted, so the margin is wide despite the low bar).
	SuspectAbove float64
	// ClearBelow is the hysteresis level that clears a suspect, and the
	// watch level that engages graduated weighting; 0 selects
	// SuspectAbove/4 — low, because the weighting ramp must engage while
	// evidence is still accruing (see Apply), and redemption is meant to
	// be slow.
	ClearBelow float64
	// LearnRate is the evidence EMA step when evidence is rising; 0
	// selects 0.25.
	LearnRate float64
	// DecayRate is the EMA step when evidence is falling. Adversarial
	// contradictions are episodic — a colluder only betrays the pair
	// order while the target is in the geometric window where its lie
	// flips a relation — so evidence must outlive the episode: rise
	// fast, decay slow. 0 selects LearnRate/5.
	DecayRate float64
	// MinRounds is how many observed rounds must pass before any node can
	// be flagged; 0 selects 3.
	MinRounds int
	// TrustFloor is the minimum pair weight a suspect-involved pair keeps
	// in the reweighted similarity sum, so heavily distrusted pairs still
	// cannot flip a match by vanishing entirely; 0 selects 0.05.
	TrustFloor float64
}

// withDefaults resolves the zero-value fields.
func (c Config) withDefaults() Config {
	if c.QuorumThreshold == 0 {
		c.QuorumThreshold = 2.0 / 3
	}
	if c.MinQuorum == 0 {
		c.MinQuorum = 3
	}
	if c.SuspectAbove == 0 {
		c.SuspectAbove = 0.2
	}
	if c.ClearBelow == 0 {
		c.ClearBelow = c.SuspectAbove / 4
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.25
	}
	if c.DecayRate == 0 {
		c.DecayRate = c.LearnRate / 5
	}
	if c.MinRounds == 0 {
		c.MinRounds = 3
	}
	if c.TrustFloor == 0 {
		c.TrustFloor = 0.05
	}
	return c
}

// Validate reports configuration errors (on the resolved defaults, so a
// zero Config is always valid).
func (c Config) Validate() error {
	r := c.withDefaults()
	if r.QuorumThreshold <= 0.5 || r.QuorumThreshold > 1 {
		return fmt.Errorf("byz: quorum threshold %v outside (0.5, 1]", r.QuorumThreshold)
	}
	if r.MinQuorum < 1 {
		return fmt.Errorf("byz: min quorum %v < 1", r.MinQuorum)
	}
	if r.SuspectAbove <= 0 || r.SuspectAbove >= 1 {
		return fmt.Errorf("byz: suspect threshold %v outside (0, 1)", r.SuspectAbove)
	}
	if r.ClearBelow < 0 || r.ClearBelow >= r.SuspectAbove {
		return fmt.Errorf("byz: clear threshold %v not in [0, suspect=%v)", r.ClearBelow, r.SuspectAbove)
	}
	if r.LearnRate <= 0 || r.LearnRate > 1 {
		return fmt.Errorf("byz: learn rate %v outside (0, 1]", r.LearnRate)
	}
	if r.DecayRate <= 0 || r.DecayRate > r.LearnRate {
		return fmt.Errorf("byz: decay rate %v outside (0, learn=%v]", r.DecayRate, r.LearnRate)
	}
	if r.TrustFloor < 0 || r.TrustFloor > 1 {
		return fmt.Errorf("byz: trust floor %v outside [0, 1]", r.TrustFloor)
	}
	return nil
}

// Defense is one tracker's defense state. Like the Tracker that owns it,
// a Defense is single-goroutine; every target (and every per-trace
// tracker clone) builds its own from the shared Config, so defended runs
// stay deterministic across worker counts.
type Defense struct {
	cfg Config
	n   int
	// benignFloor is the Sec. 5.1 capture-escape probability
	// (1/2)^(k−1): the inversion-rate allowance benign sensing gets
	// before charging evidence.
	benignFloor float64

	// evid[i] is node i's inversion-rate EMA in [0, 1]; suspect[i] the
	// hysteresis-latched flag; rounds the observed-round count.
	evid    []float64
	suspect []bool
	rounds  int
	// numSuspects caches the current flag count so Apply's fast path is
	// one comparison.
	numSuspects int
	// alert arms Apply's weighting phase: it is raised the moment any
	// node's evidence crosses ClearBelow (the watch level) and lowered
	// when every node has decayed back under it. Graduated weighting
	// before any suspect is confirmed breaks the attacker's feedback
	// loop: a successful lie drags the match, and a dragged signature
	// agrees with the lie — hiding the evidence. Downweighting on first
	// suspicion re-anchors the match to honest pairs, which straightens
	// the signature, which lets the evidence keep climbing.
	alert bool

	// orig snapshots the sampling vector before Apply's corrections, so
	// Observe learns from what the nodes actually reported.
	orig      vector.Vector
	origValid bool
	// lastSig is the previous round's matched signature — the trusted
	// side of every witness-composition link that involves a suspect.
	lastSig vector.Vector
	// weights is the pair-trust scratch returned by Apply.
	weights []float64
	// inv/tot are the per-round per-node residual counters; rates the
	// per-round rate scratch for the fleet-median baseline; hadExcess
	// remembers which nodes showed positive excess last round (the
	// corroboration gate — see Observe).
	inv, tot  []int
	rates     []float64
	hadExcess []bool

	// Range-plausibility gate (SetRangeGate). Def. 2 admits a report only
	// when the node's true distance is within the sensing range, so no
	// honest report's claimed mean RSS can sit far below the range-edge
	// level — and Def. 3's rapid instants exist because real RSS carries
	// fast fading, so no honest report's within-round spread can collapse
	// toward zero. A report violating both at once is physically
	// inconsistent with the sensing model (a synthesized value, not a
	// measurement) and charges evidence directly, independent of the
	// matched signature — the channel that catches a far-decoy colluder
	// whose "I am distant" lie the dragged signature would otherwise
	// ratify. implausible[i] is this round's per-node flag.
	gateArmed   bool
	rssFloor    float64
	spreadMin   float64
	implausible []bool
	// reported mirrors the group's Reported set (valid when repValid):
	// evidence must freeze for silent nodes, or the eq. 6 fault filling —
	// which copies the previous signature and therefore always agrees
	// with it — would let an absent attacker quietly decay its way back
	// to a clean record between its geometric attack windows.
	reported []bool
	repValid bool

	implausibleTotal *obs.Counter

	// Metrics (nil-is-off, resolved once like core's tracker metrics).
	suspectsTotal   *obs.Counter
	votesOverridden *obs.Counter
	trustGauge      []*obs.Gauge
}

// New builds a Defense for n nodes sampling k instants per grouping.
// reg, when non-nil, receives the detector's metrics: the
// fttt_byz_suspects_total and fttt_byz_votes_overridden_total counters
// and one fttt_byz_node_trust{node="i"} gauge per node (initialised to
// full trust).
func New(cfg Config, n, k int, reg *obs.Registry) *Defense {
	d := &Defense{
		cfg:         cfg.withDefaults(),
		n:           n,
		benignFloor: math.Pow(0.5, float64(k-1)),
		evid:        make([]float64, n),
		suspect:     make([]bool, n),
		inv:         make([]int, n),
		tot:         make([]int, n),
		implausible: make([]bool, n),
		reported:    make([]bool, n),
		hadExcess:   make([]bool, n),
	}
	if k <= 1 {
		d.benignFloor = 1 // a single instant cannot certify any flip
	}
	if reg != nil {
		d.suspectsTotal = reg.Counter("fttt_byz_suspects_total")
		d.votesOverridden = reg.Counter("fttt_byz_votes_overridden_total")
		d.implausibleTotal = reg.Counter("fttt_byz_implausible_reports_total")
		d.trustGauge = make([]*obs.Gauge, n)
		for i := range d.trustGauge {
			g := reg.Gauge(fmt.Sprintf("fttt_byz_node_trust{node=\"%d\"}", i))
			g.Set(1)
			d.trustGauge[i] = g
		}
	}
	return d
}

// NodeTrust returns node i's current trust in [0, 1] (1 − evidence).
func (d *Defense) NodeTrust(i int) float64 {
	t := 1 - d.evid[i]
	if t < 0 {
		return 0
	}
	return t
}

// Suspects returns the currently flagged node IDs in ascending order.
func (d *Defense) Suspects() []int {
	var out []int
	for i, s := range d.suspect {
		if s {
			out = append(out, i)
		}
	}
	return out
}

// SetRangeGate arms the range-plausibility evidence channel (see the
// gateArmed field docs). floorRSS is the lowest claimed k-instant mean a
// report may carry before it asserts an out-of-range target (the owner
// derives it from the RF model's range-edge level minus a noise margin);
// minSpread is the within-round sample deviation below which the report
// lacks the fast-fading signature every physical measurement carries. A
// non-positive minSpread disarms the gate (a noiseless model has no
// spread floor to test against).
func (d *Defense) SetRangeGate(floorRSS, minSpread float64) {
	d.rssFloor, d.spreadMin = floorRSS, minSpread
	d.gateArmed = minSpread > 0
}

// ObserveGroup runs the range-plausibility gate over one round's raw
// grouping sampling, flagging reports whose claimed mean asserts an
// out-of-range distance with an impossibly clean (fading-free) signal.
// Call it before Apply each round; the next Observe folds the flags into
// the evidence EMA. Draw-free and deterministic, like the rest of the
// defense; a no-op while the gate is disarmed, so trackers that never
// arm it keep byte-identical behavior.
func (d *Defense) ObserveGroup(g *sampling.Group) {
	d.repValid = false
	for i := range d.implausible {
		d.implausible[i] = false
	}
	if g == nil || g.N() != d.n {
		return
	}
	copy(d.reported, g.Reported)
	d.repValid = true
	if !d.gateArmed || g.K() < 2 {
		return
	}
	k := float64(g.K())
	for i, rep := range g.Reported {
		if !rep {
			continue
		}
		var sum float64
		for t := range g.RSS {
			sum += g.RSS[t][i]
		}
		mean := sum / k
		if mean >= d.rssFloor {
			continue
		}
		var ss float64
		for t := range g.RSS {
			dev := g.RSS[t][i] - mean
			ss += dev * dev
		}
		if math.Sqrt(ss/(k-1)) >= d.spreadMin {
			continue
		}
		d.implausible[i] = true
		if d.implausibleTotal != nil {
			d.implausibleTotal.Inc()
		}
	}
}

// Vote is one witness's composed opinion on a pair relation.
type Vote struct {
	// Sign is the vouched relation: +1 (first node nearer) or −1.
	Sign int
	// Weight is the witness's trust weight (> 0).
	Weight float64
}

// QuorumVote tallies witness votes for one pair: it returns the winning
// sign and true when the total weight reaches minQuorum and the winning
// sign holds at least threshold of it; otherwise (0, false) — no quorum.
// With a unanimous honest majority H and adversarial weight M, the
// outcome equals the honest-only outcome whenever M < H·(1−θ)/θ for
// threshold θ > 1/2 — the soundness property FuzzByzQuorumVote pins,
// the k-malicious bound of Delaët et al. in weight form.
func QuorumVote(votes []Vote, minQuorum, threshold float64) (int, bool) {
	var pos, neg float64
	for _, v := range votes {
		if v.Weight <= 0 {
			continue
		}
		switch {
		case v.Sign > 0:
			pos += v.Weight
		case v.Sign < 0:
			neg += v.Weight
		}
	}
	total := pos + neg
	if total < minQuorum {
		return 0, false
	}
	win, w := 1, pos
	if neg > pos {
		win, w = -1, neg
	}
	if w < threshold*total {
		return 0, false
	}
	return win, true
}

// median returns the median of xs (sorting it in place; lower-middle
// for even lengths, so a clean half of the fleet keeps the baseline at
// its level), or 0 for an empty slice.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	return xs[(len(xs)-1)/2]
}

// sign classifies a pair value: +1 / −1 for a strict relation, 0 for
// Flipped, Star, or a fractional value of exactly zero.
func sign(v vector.Value) int {
	switch {
	case v.IsStar():
		return 0
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Apply runs the defense's pre-match phase on sampling vector v (in
// place) and returns the per-pair trust weights for the reweighted
// similarity sum — or nil when no node is suspect, in which case v is
// untouched and the caller must run the unmodified matching path (the
// byte-identity contract under an honest fleet).
//
// For every pair involving a suspect, the non-suspect witnesses vote on
// the relation through the transitive composition v[i,m]∘v[m,j]: a
// quorum replaces the direct observation, no quorum stars the pair out.
//
// Pair weight is the minimum of the endpoints' node weights, where a
// node's weight ramps from exactly 1 at the watch level (evidence ≤
// ClearBelow) down to TrustFloor at the suspect threshold — a node
// halfway to conviction has already lost most of its say. The ramp is
// what makes detection converge: a mild discount proportional to (1 −
// trust) would leave a half-convicted liar still dragging the match,
// and a dragged signature hides the very evidence needed to convict.
// Pairs of two full-trust nodes keep weight exactly 1 (multiplying by
// 1.0 is IEEE-exact, so their distance terms are bit-identical to the
// unweighted matcher's); vector rewriting (voting, starring) stays
// reserved for confirmed suspects.
func (d *Defense) Apply(v vector.Vector) []float64 {
	d.orig = append(d.orig[:0], v...)
	d.origValid = true
	if !d.alert {
		return nil
	}
	n := d.n
	if cap(d.weights) < len(v) {
		d.weights = make([]float64, len(v))
	}
	w := d.weights[:len(v)]
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pw := d.nodeWeight(i)
			if wj := d.nodeWeight(j); wj < pw {
				pw = wj
			}
			w[idx] = pw
			if !d.suspect[i] && !d.suspect[j] {
				idx++
				continue
			}
			if !v[idx].IsStar() {
				voted, ok := d.voteOnPair(i, j)
				switch {
				case !ok:
					// No quorum: the suspect's uncorroborated report is
					// discarded — the pair degrades to the eq. 6 unknown
					// state and counts toward the star-fraction policy.
					v[idx] = vector.Star
				case voted != sign(v[idx]):
					if voted > 0 {
						v[idx] = vector.Nearer
					} else {
						v[idx] = vector.Farther
					}
					if d.votesOverridden != nil {
						d.votesOverridden.Inc()
					}
				}
			}
			idx++
		}
	}
	return w
}

// nodeWeight is the similarity-sum weight node i's pairs carry: exactly
// 1 while its evidence sits at or under the watch level (ClearBelow),
// TrustFloor at or beyond the suspect threshold, linear in between.
func (d *Defense) nodeWeight(i int) float64 {
	e := d.evid[i]
	lo, hi := d.cfg.ClearBelow, d.cfg.SuspectAbove
	switch {
	case e <= lo:
		return 1
	case e >= hi:
		return d.cfg.TrustFloor
	default:
		return 1 - (e-lo)/(hi-lo)*(1-d.cfg.TrustFloor)
	}
}

// voteOnPair gathers the non-suspect witnesses' composed votes on pair
// (i, j) and tallies them. Witness m vouches sign s when its relations
// to both endpoints agree on s: v[i,m] == s and v[m,j] == s (the
// distance order is total, so the composition is transitive — only
// witnesses sitting between i and j in that order can certify it).
// Links between two non-suspects are read from the current round's
// pre-correction snapshot; links involving a suspect are read from the
// previous matched signature instead, so a suspect's current reports
// never feed the vote on its own pairs. Before any signature has been
// observed, suspect links carry no information and the vote abstains.
func (d *Defense) voteOnPair(i, j int) (int, bool) {
	var pos, neg float64
	n := d.n
	for m := 0; m < n; m++ {
		if m == i || m == j || d.suspect[m] {
			continue
		}
		sim, ok1 := d.linkVal(i, m)
		smj, ok2 := d.linkVal(m, j)
		if !ok1 || !ok2 || sim == 0 || sim != smj {
			continue
		}
		wt := d.NodeTrust(m)
		if wt <= 0 {
			continue
		}
		if sim > 0 {
			pos += wt
		} else {
			neg += wt
		}
	}
	total := pos + neg
	if total < d.cfg.MinQuorum {
		return 0, false
	}
	win, w := 1, pos
	if neg > pos {
		win, w = -1, neg
	}
	if w < d.cfg.QuorumThreshold*total {
		return 0, false
	}
	return win, true
}

// linkVal reads the sign of one composition link (a, b): from the
// current pre-correction snapshot when both nodes are trusted, from the
// previous matched signature when either is suspect. The second return
// is false when the link carries no usable information.
func (d *Defense) linkVal(a, b int) (int, bool) {
	src := d.orig
	if d.suspect[a] || d.suspect[b] {
		src = d.lastSig
		if len(src) != len(d.orig) {
			return 0, false
		}
	}
	return sign(pairValIn(src, a, b, d.n)), true
}

// pairValIn reads the ordered relation value for nodes (a, b) from v,
// flipping the stored (min, max) pair value when a > b.
func pairValIn(v vector.Vector, a, b, n int) vector.Value {
	if a < b {
		return v[vector.PairIndex(a, b, n)]
	}
	x := v[vector.PairIndex(b, a, n)]
	if x.IsStar() {
		return x
	}
	return -x
}

// Observe runs the defense's post-match learning phase: it charges each
// node the inversions its pairs show against a per-pair reference
// relation (strictly opposite signs — the contradiction benign noise
// cannot sustain), discounts the Def. 8 benign allowance, folds the
// excess into the evidence EMA, and updates the suspect flags with
// hysteresis.
//
// The reference is the matched face's signature. A transitive quorum
// over the round's own reports cannot serve here: every composition
// vote on a pair (i, m) routes through one of i's own links, so a node
// lying uniformly about its distance makes the witnesses unanimously
// confirm the lie on exactly the pairs that would convict it. The
// signature is the only lie-free information channel about a node's
// true geometry — and the graduated weighting in Apply keeps it honest
// while evidence is accruing (see the alert mechanism there).
//
// The snapshot taken by the preceding Apply call supplies the nodes'
// actual reports; Observe is a no-op if no Apply preceded it.
func (d *Defense) Observe(sig vector.Vector) {
	if !d.origValid || len(sig) != len(d.orig) {
		return
	}
	d.origValid = false
	for i := range d.inv {
		d.inv[i], d.tot[i] = 0, 0
	}
	n := d.n
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			o, s := d.orig[idx], sig[idx]
			idx++
			if o.IsStar() || s.IsStar() {
				continue
			}
			d.tot[i]++
			d.tot[j]++
			if so, ss := sign(o), sign(s); so != 0 && ss != 0 && so != ss {
				d.inv[i]++
				d.inv[j]++
			}
		}
	}
	d.lastSig = append(d.lastSig[:0], sig...)
	d.rounds++
	// The charging baseline is the fleet's median inversion rate this
	// round plus the Def. 8 benign allowance. An attack under way
	// inflates every node's rate — the dragged signature and the liar's
	// shared pairs charge honest endpoints too — and the median tracks
	// exactly that shared component: honest nodes sit at it and stay
	// clean, while a minority of liars stand out above it. (A liar
	// majority would shift the median itself, but past n/2 malicious
	// nodes no voting scheme can help — the Delaët et al. bound.) The
	// benign floor rides on top, not under a max: each node is entitled
	// to its own (1/2)^(k−1) capture-escape flips in addition to the
	// fleet-shared component, and without that headroom benign noise
	// alone creeps honest evidence over the watch level on long runs —
	// which would break the honest byte-identity contract.
	d.rates = d.rates[:0]
	for i := 0; i < n; i++ {
		if d.tot[i] > 0 {
			d.rates = append(d.rates, float64(d.inv[i])/float64(d.tot[i]))
		}
	}
	baseline := median(d.rates) + d.benignFloor
	for i := 0; i < n; i++ {
		if d.repValid && !d.reported[i] {
			continue // silent node this round: evidence frozen
		}
		if d.tot[i] == 0 && !d.implausible[i] {
			continue // no informative pairs: no evidence either way
		}
		rate := 0.0
		if d.tot[i] > 0 {
			rate = float64(d.inv[i]) / float64(d.tot[i])
		}
		excess := rate - baseline
		if excess < 0 {
			excess = 0
		}
		// Corroboration: one round of excess charges nothing — with ~n
		// informative pairs the per-round rate is coarsely quantized, so
		// benign noise regularly produces isolated spikes, and on long
		// honest runs those would creep the EMA over the watch level
		// (breaking byte-identity). An attacker betraying the pair order
		// does so for every round of its geometric window, so requiring
		// excess in two consecutive rounds costs the detector one round
		// of latency and the honest fleet nothing.
		corroborated := excess > 0 && d.hadExcess[i]
		d.hadExcess[i] = excess > 0
		if !corroborated {
			excess = 0
		}
		if d.implausible[i] {
			// A physically inconsistent report is definitive on its own —
			// charge the full excess regardless of what the (possibly
			// dragged) signature says about this node's pairs.
			excess = 1
		}
		alpha := d.cfg.LearnRate
		if excess < d.evid[i] {
			alpha = d.cfg.DecayRate // asymmetric: evidence outlives the episode
		}
		d.evid[i] += alpha * (excess - d.evid[i])
		if d.trustGauge != nil {
			d.trustGauge[i].Set(d.NodeTrust(i))
		}
		// MinRounds guards the statistical inversion channel against
		// flagging off a noisy first impression; a physically inconsistent
		// report is conclusive on its own, so the gate bypasses it.
		seasoned := d.rounds >= d.cfg.MinRounds || d.implausible[i]
		switch {
		case !d.suspect[i] && seasoned && d.evid[i] > d.cfg.SuspectAbove:
			d.suspect[i] = true
			d.numSuspects++
			if d.suspectsTotal != nil {
				d.suspectsTotal.Inc()
			}
		case d.suspect[i] && d.evid[i] < d.cfg.ClearBelow:
			d.suspect[i] = false
			d.numSuspects--
		}
	}
	d.alert = d.numSuspects > 0
	if !d.alert {
		for i := 0; i < n; i++ {
			if d.evid[i] > d.cfg.ClearBelow {
				d.alert = true
				break
			}
		}
	}
}
