package byz

import (
	"math"
	"testing"

	"fttt/internal/obs"
	"fttt/internal/vector"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	bad := []Config{
		{QuorumThreshold: 0.4},
		{QuorumThreshold: 1.5},
		{MinQuorum: 0.5},
		{SuspectAbove: 1.2},
		{SuspectAbove: 0.3, ClearBelow: 0.4},
		{LearnRate: 2},
		{TrustFloor: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, c)
		}
	}
}

func TestQuorumVote(t *testing.T) {
	v := func(sign int, w float64) Vote { return Vote{Sign: sign, Weight: w} }
	cases := []struct {
		name      string
		votes     []Vote
		minQ, thr float64
		wantSign  int
		wantOK    bool
	}{
		{"unanimous", []Vote{v(1, 1), v(1, 1), v(1, 1)}, 3, 2.0 / 3, 1, true},
		{"below min quorum", []Vote{v(1, 1), v(1, 1)}, 3, 2.0 / 3, 0, false},
		{"split below threshold", []Vote{v(1, 2), v(-1, 2)}, 3, 2.0 / 3, 0, false},
		{"supermajority negative", []Vote{v(-1, 3), v(1, 1)}, 3, 0.75, -1, true},
		{"zero weights ignored", []Vote{v(1, 0), v(-1, 3)}, 3, 2.0 / 3, -1, true},
		{"no votes", nil, 1, 0.6, 0, false},
	}
	for _, c := range cases {
		sign, ok := QuorumVote(c.votes, c.minQ, c.thr)
		if sign != c.wantSign || ok != c.wantOK {
			t.Errorf("%s: got (%d,%v), want (%d,%v)", c.name, sign, ok, c.wantSign, c.wantOK)
		}
	}
}

// honestVector builds the sampling vector a fully consistent distance
// ordering produces: node i is the i-th nearest, so every pair (i, j)
// with i < j reads Nearer.
func honestVector(n int) vector.Vector {
	v := vector.New(n)
	for k := range v {
		v[k] = vector.Nearer
	}
	return v
}

// corrupt inverts every pair involving the given node in place.
func corrupt(v vector.Vector, n int, node int) {
	for k := range v {
		i, j := vector.PairAt(k, n)
		if i == node || j == node {
			if !v[k].IsStar() {
				v[k] = -v[k]
			}
		}
	}
}

// TestHonestFleetStaysUntouched: under honest (even mildly noisy)
// sensing the defense must return nil weights and leave the vector
// alone — the byte-identity contract.
func TestHonestFleetStaysUntouched(t *testing.T) {
	const n = 8
	d := New(Config{Enabled: true}, n, 5, nil)
	for round := 0; round < 50; round++ {
		v := honestVector(n)
		// A little benign disagreement: one pair reads Flipped (target in
		// its uncertain area) — sign 0, never an inversion.
		v[round%v.Dim()] = vector.Flipped
		before := v.Clone()
		if w := d.Apply(v); w != nil {
			t.Fatalf("round %d: honest fleet got weights %v", round, w)
		}
		if !vector.Equal(v, before) {
			t.Fatalf("round %d: Apply modified an honest vector", round)
		}
		d.Observe(honestVector(n))
	}
	if s := d.Suspects(); len(s) != 0 {
		t.Fatalf("honest fleet flagged suspects %v", s)
	}
	for i := 0; i < n; i++ {
		if tr := d.NodeTrust(i); tr != 1 {
			t.Errorf("node %d trust %v, want 1 (benign floor must absorb mild mismatch)", i, tr)
		}
	}
}

// TestDetectsInvertingNode: a node that persistently inverts its pair
// reports gets flagged, its pairs are quorum-corrected back to the
// honest relation, and the pair weights drop for its pairs only.
func TestDetectsInvertingNode(t *testing.T) {
	const n, bad = 8, 2
	reg := obs.NewRegistry()
	d := New(Config{Enabled: true}, n, 5, reg)
	sig := honestVector(n)
	var w []float64
	for round := 0; round < 12; round++ {
		v := honestVector(n)
		corrupt(v, n, bad)
		w = d.Apply(v)
		if len(d.Suspects()) > 0 {
			// Post-detection: no corrupted pair may survive with its wrong
			// sign — each is either quorum-corrected back to the honest
			// relation or starred out; honest pairs stay untouched.
			// (Weights alone can appear earlier: the watch-level alert
			// downweights before the suspect threshold confirms.)
			corrected := 0
			for k := range v {
				i, j := vector.PairAt(k, n)
				if i == bad || j == bad {
					if v[k].IsStar() {
						continue
					}
					if v[k] != vector.Nearer {
						t.Fatalf("round %d: pair (%d,%d) kept corrupted value %v", round, i, j, v[k])
					}
					corrected++
				} else if v[k] != vector.Nearer {
					t.Fatalf("round %d: honest pair (%d,%d) modified to %v", round, i, j, v[k])
				}
			}
			if corrected == 0 {
				t.Fatalf("round %d: quorum corrected no pair at all", round)
			}
		}
		d.Observe(sig)
	}
	if s := d.Suspects(); len(s) != 1 || s[0] != bad {
		t.Fatalf("suspects = %v, want [%d]", d.Suspects(), bad)
	}
	if w == nil {
		t.Fatal("no weights emitted after detection")
	}
	for k := range w {
		i, j := vector.PairAt(k, n)
		touched := i == bad || j == bad
		if touched && w[k] >= 1 {
			t.Errorf("pair (%d,%d) weight %v, want < 1", i, j, w[k])
		}
		if !touched && w[k] != 1 {
			t.Errorf("honest pair (%d,%d) weight %v, want exactly 1", i, j, w[k])
		}
	}
	if got := reg.Counter("fttt_byz_suspects_total").Value(); got != 1 {
		t.Errorf("fttt_byz_suspects_total = %v, want 1", got)
	}
	if got := reg.Counter("fttt_byz_votes_overridden_total").Value(); got == 0 {
		t.Error("fttt_byz_votes_overridden_total stayed 0 despite corrections")
	}
	if tr := reg.Gauge("fttt_byz_node_trust{node=\"2\"}").Value(); tr > 0.7 {
		t.Errorf("bad node trust gauge %v, want low", tr)
	}
	if tr := reg.Gauge("fttt_byz_node_trust{node=\"0\"}").Value(); tr < 0.7 {
		t.Errorf("honest node trust gauge %v, want high", tr)
	}
}

// TestNoQuorumStarsOut: when too few witnesses remain to form a quorum,
// a suspect's pairs degrade to Star instead of being trusted or guessed.
func TestNoQuorumStarsOut(t *testing.T) {
	const n = 4 // pairs involving a suspect have only 2 witnesses < MinQuorum=3
	d := New(Config{Enabled: true, MinRounds: 1}, n, 5, nil)
	sig := honestVector(n)
	for round := 0; round < 10; round++ {
		v := honestVector(n)
		corrupt(v, n, 0)
		d.Apply(v)
		d.Observe(sig)
	}
	if len(d.Suspects()) == 0 {
		t.Fatal("inverting node not flagged")
	}
	v := honestVector(n)
	corrupt(v, n, 0)
	if w := d.Apply(v); w == nil {
		t.Fatal("no weights after detection")
	}
	for k := range v {
		i, _ := vector.PairAt(k, n)
		if i == 0 && !v[k].IsStar() {
			t.Errorf("pair %d involving the quorum-less suspect kept value %v, want Star", k, v[k])
		}
	}
}

// TestSuspectHysteresis: a flagged node whose behavior turns honest
// again decays below ClearBelow and is cleared.
func TestSuspectHysteresis(t *testing.T) {
	const n = 8
	d := New(Config{Enabled: true, MinRounds: 1}, n, 5, nil)
	sig := honestVector(n)
	for round := 0; round < 8; round++ {
		v := honestVector(n)
		corrupt(v, n, 3)
		d.Apply(v)
		d.Observe(sig)
	}
	if len(d.Suspects()) != 1 {
		t.Fatalf("suspects = %v, want exactly node 3", d.Suspects())
	}
	// Clearing is deliberately slow (DecayRate = LearnRate/5): evidence
	// must outlive episodic attacks, so redemption takes ~5× as long as
	// conviction.
	for round := 0; round < 80 && len(d.Suspects()) > 0; round++ {
		d.Apply(honestVector(n))
		d.Observe(sig)
	}
	if s := d.Suspects(); len(s) != 0 {
		t.Fatalf("suspect never cleared: %v (evid=%v)", s, d.evid[3])
	}
}

// TestBenignFloor pins the Def. 8-derived allowance: (1/2)^(k−1).
func TestBenignFloor(t *testing.T) {
	d := New(Config{Enabled: true}, 4, 5, nil)
	if got, want := d.benignFloor, math.Pow(0.5, 4); got != want {
		t.Errorf("benign floor for k=5: %v, want %v", got, want)
	}
	if d1 := New(Config{Enabled: true}, 4, 1, nil); d1.benignFloor != 1 {
		t.Errorf("k=1 floor %v, want 1 (single instant certifies nothing)", d1.benignFloor)
	}
}
