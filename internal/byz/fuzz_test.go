package byz

import (
	"math"
	"testing"
)

// decodeVotes maps fuzz bytes onto legal witness votes: two bytes per
// vote, the first picking the sign (+1 / −1 / abstain-by-zero-weight)
// and the second a positive weight on a coarse grid. Fuzzing the legal
// domain keeps every failure a genuine contract violation.
func decodeVotes(data []byte) []Vote {
	votes := make([]Vote, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		sign := 1
		switch data[i] % 3 {
		case 1:
			sign = -1
		case 2:
			sign = 0
		}
		w := float64(data[i+1]%64) / 16 // 0, 1/16, ..., ~4
		votes = append(votes, Vote{Sign: sign, Weight: w})
	}
	return votes
}

// FuzzByzQuorumVote pins QuorumVote's contracts on arbitrary legal vote
// sets: the outcome is deterministic and sign-antisymmetric, no quorum
// is ever reached below minQuorum total weight or below the threshold
// share, and — the k-malicious soundness bound of Delaët et al. in
// weight form — when the honest majority H votes unanimously and the
// adversarial weight M satisfies M < H·(1−θ)/θ for θ > 1/2, the
// tallied outcome equals the honest-only outcome.
func FuzzByzQuorumVote(f *testing.F) {
	f.Add([]byte{0, 16, 0, 16, 1, 16}, 1.0, 0.66)
	f.Add([]byte{1, 32, 1, 32, 0, 63}, 2.0, 0.75)
	f.Add([]byte{}, 3.0, 0.66)
	f.Fuzz(func(t *testing.T, data []byte, minQuorum, threshold float64) {
		if math.IsNaN(minQuorum) || minQuorum < 0 || minQuorum > 100 {
			minQuorum = 1
		}
		if math.IsNaN(threshold) || threshold <= 0.5 || threshold > 1 {
			threshold = 2.0 / 3
		}
		votes := decodeVotes(data)

		sign, ok := QuorumVote(votes, minQuorum, threshold)
		if sign2, ok2 := QuorumVote(votes, minQuorum, threshold); sign2 != sign || ok2 != ok {
			t.Fatalf("QuorumVote not deterministic: (%d,%v) vs (%d,%v)", sign, ok, sign2, ok2)
		}
		if !ok && sign != 0 {
			t.Fatalf("no-quorum outcome carries sign %d", sign)
		}
		if ok && sign != 1 && sign != -1 {
			t.Fatalf("quorum outcome sign = %d, want ±1", sign)
		}

		// Tally the weights ourselves to check quorum and threshold.
		var pos, neg float64
		for _, v := range votes {
			if v.Weight <= 0 {
				continue
			}
			if v.Sign > 0 {
				pos += v.Weight
			} else if v.Sign < 0 {
				neg += v.Weight
			}
		}
		total := pos + neg
		if ok && total < minQuorum {
			t.Fatalf("quorum reached with total weight %v < minQuorum %v", total, minQuorum)
		}
		if ok {
			win := pos
			if sign < 0 {
				win = neg
			}
			if win < threshold*total {
				t.Fatalf("sign %d won with %v of %v, below threshold %v", sign, win, total, threshold)
			}
		}

		// Antisymmetry: flipping every vote flips the outcome sign.
		flipped := make([]Vote, len(votes))
		for i, v := range votes {
			flipped[i] = Vote{Sign: -v.Sign, Weight: v.Weight}
		}
		fsign, fok := QuorumVote(flipped, minQuorum, threshold)
		if fok != ok || fsign != -sign {
			t.Fatalf("not antisymmetric: (%d,%v) vs flipped (%d,%v)", sign, ok, fsign, fok)
		}

		// Soundness: a unanimous honest majority H with adversarial
		// weight M < H·(1−θ)/θ must win the tally with the honest sign.
		// Treat the positive voters as the honest bloc and the negative
		// ones as the adversary (by antisymmetry this covers both sides).
		h, m := pos, neg
		// The tiny relative slack keeps rounding at the exact bound from
		// reading as a soundness violation.
		if h >= minQuorum && h > 0 && m < h*(1-threshold)/threshold-1e-9*(h+m) {
			hsign, hok := QuorumVote(votes, minQuorum, threshold)
			if !hok || hsign != 1 {
				t.Fatalf("soundness violated: H=%v M=%v θ=%v gave (%d,%v), want (+1,true)",
					h, m, threshold, hsign, hok)
			}
		}
	})
}
