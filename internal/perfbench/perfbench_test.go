package perfbench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"
)

func TestSuiteStableIdentity(t *testing.T) {
	a, b := Suite(), Suite()
	if len(a) == 0 {
		t.Fatal("empty suite")
	}
	if len(a) != len(b) {
		t.Fatalf("suite size changed between calls: %d vs %d", len(a), len(b))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Kind != b[i].Kind || a[i].Seed != b[i].Seed || a[i].MapsTo != b[i].MapsTo {
			t.Errorf("scenario %d identity differs between Suite() calls: %+v vs %+v", i, a[i], b[i])
		}
		if seen[a[i].Name] {
			t.Errorf("duplicate scenario name %q", a[i].Name)
		}
		seen[a[i].Name] = true
		if a[i].Kind != KindMicro && a[i].Kind != KindMacro {
			t.Errorf("%s: bad kind %q", a[i].Name, a[i].Kind)
		}
		if a[i].setup == nil {
			t.Errorf("%s: nil setup", a[i].Name)
		}
		if a[i].Summary == "" || a[i].MapsTo == "" {
			t.Errorf("%s: missing Summary/MapsTo", a[i].Name)
		}
	}
}

// TestEveryScenarioSetsUp builds every fixture once — catching a
// scenario whose setup breaks (bad config, renamed API) without paying
// for a timed run of the whole suite.
func TestEveryScenarioSetsUp(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture construction is seconds of division building")
	}
	for _, sc := range Suite() {
		inst, err := sc.setup(sc)
		if err != nil {
			t.Errorf("%s: setup: %v", sc.Name, err)
			continue
		}
		if inst.op == nil {
			t.Errorf("%s: nil op", sc.Name)
		}
		if inst.cleanup != nil {
			inst.cleanup()
		}
	}
}

func TestRunMicroAndReportRoundTrip(t *testing.T) {
	rep, err := Run(Options{
		BenchTime: time.Millisecond,
		Reps:      3,
		Warmup:    1,
		Filter:    regexp.MustCompile(`^vector/`),
		Label:     "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2 (vector/diff, vector/similarity)", len(rep.Scenarios))
	}
	for _, s := range rep.Scenarios {
		if len(s.NsPerOp) != 3 || len(s.Iters) != 3 {
			t.Errorf("%s: %d reps recorded, want 3", s.Name, len(s.NsPerOp))
		}
		if s.MedianNsPerOp <= 0 {
			t.Errorf("%s: non-positive median %v", s.Name, s.MedianNsPerOp)
		}
	}

	path := filepath.Join(t.TempDir(), "nested", "perf", "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || len(back.Scenarios) != len(rep.Scenarios) {
		t.Fatalf("round trip mangled report: %+v", back)
	}
	if back.Scenarios[0].MedianNsPerOp != rep.Scenarios[0].MedianNsPerOp {
		t.Fatal("round trip changed median")
	}
}

func TestReadFileRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"benchstat/v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

// TestServeScenarioPercentiles runs the serving round-trip scenario at
// minimal depth and checks the p50/p99 plumbing (obs histogram →
// report) carries real values.
func TestServeScenarioPercentiles(t *testing.T) {
	if testing.Short() {
		t.Skip("serving fixture + timed reps")
	}
	rep, err := Run(Options{
		BenchTime: 2 * time.Millisecond,
		Reps:      3,
		Filter:    regexp.MustCompile(`^serve/roundtrip$`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 1 {
		t.Fatalf("got %d scenarios, want 1", len(rep.Scenarios))
	}
	s := rep.Scenarios[0]
	if s.P50Ns <= 0 || s.P99Ns <= 0 {
		t.Fatalf("serve scenario missing percentiles: p50=%v p99=%v", s.P50Ns, s.P99Ns)
	}
	if s.P99Ns < s.P50Ns {
		t.Fatalf("p99 %v < p50 %v", s.P99Ns, s.P50Ns)
	}
}

func TestRunCapturesProfiles(t *testing.T) {
	dir := t.TempDir()
	_, err := Run(Options{
		BenchTime:  time.Millisecond,
		Reps:       1,
		Filter:     regexp.MustCompile(`^vector/diff$`),
		ProfileDir: filepath.Join(dir, "profiles"), // missing: fsx must create it
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"vector_diff.cpu.pprof", "vector_diff.heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, "profiles", name))
		if err != nil {
			t.Errorf("profile %s: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
}

// TestMetaDeterministic pins the compare determinism contract: two
// reports produced by the same binary marshal byte-identical Meta.
func TestMetaDeterministic(t *testing.T) {
	mk := func() *Report {
		r := &Report{}
		hostMeta(r)
		for _, sc := range Suite() {
			r.Scenarios = append(r.Scenarios, ScenarioResult{Name: sc.Name, Kind: sc.Kind, Seed: sc.Seed, MapsTo: sc.MapsTo})
		}
		return r
	}
	a, err := json.Marshal(mk().Meta())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(mk().Meta())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("Meta not byte-identical:\n%s\n%s", a, b)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	in := []float64{9, 1, 5}
	median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("median reordered its input")
	}
}
