// Package perfbench is the repo's performance-regression harness: a
// programmatic benchmark runner (built on testing.Benchmark) over a
// fixed, named scenario catalog covering the hot paths the paper's
// claims rest on — the signature/sampling vector algebra of Defs. 4-6,
// the signature pass of the approximate grid division (Sec. 4.3), the
// heuristic matcher of Algorithm 2 (the O(n⁴)→O(n²) claim of
// Sec. 4.4(2)), whole localizations (eq. 6-7 end to end), batched and
// parallel tracking, and the serving round-trip with micro-batching on
// and off.
//
// Every scenario seeds its workload from fixed randx streams, so two
// runs execute byte-identical work and differ only in how fast the
// machine executes it; a Report's Meta is therefore deterministic and
// Compare can diff any two runs. The runner adds warmup repetitions
// (discarded) and N measured repetitions per scenario; Compare judges
// the per-scenario medians under noise-tolerant thresholds (fail only
// beyond a fractional regression across ≥ MinReps repetitions), which
// is what `fttt-perf compare` and the CI perf smoke job enforce against
// results/perf/baseline.json.
//
// Key invariants: the scenario set, names, seeds and MapsTo strings are
// append-only stable (the JSON schema fttt-perfbench/v1 is what
// committed baselines are parsed with); scenario setup runs outside the
// timed region; serve-path scenarios record per-operation latency into
// an obs.Histogram so the report carries p50/p99 alongside ns/op.
package perfbench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"fttt/internal/fsx"
	"fttt/internal/obs"
)

// Schema identifies the report wire format; bump only with a migration
// path for committed baselines.
const Schema = "fttt-perfbench/v1"

// Scenario kinds: micro scenarios time one primitive, macro scenarios
// time a user-visible operation end to end.
const (
	KindMicro = "micro"
	KindMacro = "macro"
)

// Scenario is one named benchmark in the catalog. The public fields are
// the stable identity recorded in reports; setup builds the fixtures
// (outside the timed region) and returns the instance to measure.
type Scenario struct {
	// Name identifies the scenario in reports and baselines
	// ("area/name", stable across PRs).
	Name string
	// Kind is KindMicro or KindMacro.
	Kind string
	// Summary says what one benchmark op does.
	Summary string
	// MapsTo names the paper claim / figure / results artifact the
	// scenario exercises (EXPERIMENTS.md cross-reference).
	MapsTo string
	// Seed roots the scenario's deterministic workload.
	Seed uint64

	setup func(sc Scenario) (*instance, error)
}

// instance is a scenario ready to run: fixtures built, op timeable.
type instance struct {
	// op is the benchmark body handed to testing.Benchmark.
	op func(b *testing.B)
	// lat, when non-nil, collects per-op latency for p50/p99.
	lat *latencyRecorder
	// cleanup, when non-nil, tears fixtures down after the last rep.
	cleanup func()
}

// latencyRecorder funnels per-op wall time into an obs.Histogram so the
// report's serve-path percentiles come from the same histogram/quantile
// machinery the telemetry layer exposes at /metrics.
type latencyRecorder struct {
	reg *obs.Registry
	h   *obs.Histogram
}

func newLatencyRecorder() *latencyRecorder {
	reg := obs.NewRegistry()
	// 10µs..~650ms exponential buckets: the serving round-trip sits in
	// the 100µs-10ms band; headroom for loaded CI machines.
	return &latencyRecorder{reg: reg, h: reg.Histogram("perfbench_op_seconds", obs.ExpBuckets(1e-5, 2, 17))}
}

func (l *latencyRecorder) observe(d time.Duration) { l.h.Observe(d.Seconds()) }

// reset discards warmup samples so quantiles cover measured reps only.
func (l *latencyRecorder) reset() { l.reg.Reset() }

func (l *latencyRecorder) quantileNs(q float64) float64 {
	if l.h.Count() == 0 {
		return 0
	}
	return l.h.Quantile(q) * 1e9
}

// ScenarioResult is one scenario's measurements: every repetition's
// ns/op plus the median the compare step judges.
type ScenarioResult struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Seed   uint64 `json:"seed"`
	MapsTo string `json:"mapsTo,omitempty"`

	// Iters[i] and NsPerOp[i] describe measured repetition i.
	Iters   []int     `json:"iters"`
	NsPerOp []float64 `json:"nsPerOp"`
	// MedianNsPerOp is the regression-judged statistic.
	MedianNsPerOp float64 `json:"medianNsPerOp"`
	// BytesPerOp / AllocsPerOp come from the last measured repetition
	// (allocation counts are deterministic on a warmed path).
	BytesPerOp  int64 `json:"bytesPerOp"`
	AllocsPerOp int64 `json:"allocsPerOp"`
	// P50Ns / P99Ns are per-op latency quantiles for scenarios that
	// record them (the serve round-trips); 0 otherwise.
	P50Ns float64 `json:"p50Ns,omitempty"`
	P99Ns float64 `json:"p99Ns,omitempty"`
}

// Report is one full harness run, the unit written to BENCH_PR<N>.json
// and results/perf/baseline.json.
type Report struct {
	Schema      string           `json:"schema"`
	Label       string           `json:"label,omitempty"`
	GoVersion   string           `json:"go"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	NumCPU      int              `json:"numcpu"`
	Reps        int              `json:"reps"`
	BenchTimeNs int64            `json:"benchTimeNs"`
	Scenarios   []ScenarioResult `json:"scenarios"`
}

// ScenarioMeta is the deterministic identity of one scenario inside
// Meta — everything about a run except the timings.
type ScenarioMeta struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Seed   uint64 `json:"seed"`
	MapsTo string `json:"mapsTo,omitempty"`
}

// Meta is a Report stripped of measurements. Two runs of the same
// binary on the same machine produce byte-identical marshalled Meta —
// the determinism contract `fttt-perf compare` leans on.
type Meta struct {
	Schema     string         `json:"schema"`
	GoVersion  string         `json:"go"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"numcpu"`
	Scenarios  []ScenarioMeta `json:"scenarios"`
}

// Meta projects the report onto its deterministic identity.
func (r *Report) Meta() Meta {
	m := Meta{
		Schema:     r.Schema,
		GoVersion:  r.GoVersion,
		GOOS:       r.GOOS,
		GOARCH:     r.GOARCH,
		GOMAXPROCS: r.GOMAXPROCS,
		NumCPU:     r.NumCPU,
	}
	for _, s := range r.Scenarios {
		m.Scenarios = append(m.Scenarios, ScenarioMeta{Name: s.Name, Kind: s.Kind, Seed: s.Seed, MapsTo: s.MapsTo})
	}
	return m
}

// Find returns the named scenario result, or nil.
func (r *Report) Find(name string) *ScenarioResult {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// WriteFile marshals the report (indented, trailing newline) to path,
// creating parent directories as needed.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return fsx.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile loads a report and validates its schema tag.
func ReadFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perfbench: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// hostMeta fills the machine/runtime fields of a fresh report.
func hostMeta(r *Report) {
	r.Schema = Schema
	r.GoVersion = runtime.Version()
	r.GOOS = runtime.GOOS
	r.GOARCH = runtime.GOARCH
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.NumCPU = runtime.NumCPU()
}

// median of xs (xs is copied, not reordered); 0 on empty input.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
