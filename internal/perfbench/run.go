package perfbench

import (
	"flag"
	"fmt"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"fttt/internal/fsx"
)

// Options controls one harness run. The zero value is the full-depth
// default used to (re)generate baselines.
type Options struct {
	// BenchTime is the target duration of one measured repetition
	// (testing's -benchtime); ≤ 0 selects 200ms.
	BenchTime time.Duration
	// Reps is the number of measured repetitions per scenario; ≤ 0
	// selects 3 (the minimum Compare judges regressions on).
	Reps int
	// Warmup is the number of discarded repetitions before measuring;
	// < 0 selects 0, 0 selects 1.
	Warmup int
	// Filter, when non-nil, selects the scenarios to run by name.
	// Filtered runs are for local iteration; Compare flags the missing
	// scenarios against a full baseline.
	Filter *regexp.Regexp
	// Label tags the report (e.g. "PR5").
	Label string
	// ProfileDir, when non-empty, captures one cpu and one heap pprof
	// profile per scenario (an extra, unmeasured repetition) into
	// <ProfileDir>/<name>.{cpu,heap}.pprof.
	ProfileDir string
	// Logf, when non-nil, receives per-scenario progress lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.BenchTime <= 0 {
		o.BenchTime = 200 * time.Millisecond
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.Warmup == 0 {
		o.Warmup = 1
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	return o
}

// benchTimeMu serialises benchtime flag manipulation: the testing
// package reads the flag's value when testing.Benchmark runs, so two
// concurrent Run calls with different BenchTimes would race.
var benchTimeMu sync.Mutex

// setBenchTime points testing's -test.benchtime at d, registering the
// testing flags first when running outside a test binary (fttt-perf).
func setBenchTime(d time.Duration) error {
	if flag.Lookup("test.benchtime") == nil {
		testing.Init()
	}
	return flag.Set("test.benchtime", d.String())
}

// Run executes the (optionally filtered) scenario suite: per scenario,
// Warmup discarded repetitions, then Reps measured testing.Benchmark
// repetitions, then — when ProfileDir is set — one extra profiled
// repetition. Fixtures are built once per scenario, outside every timed
// region.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	benchTimeMu.Lock()
	defer benchTimeMu.Unlock()
	if err := setBenchTime(opts.BenchTime); err != nil {
		return nil, fmt.Errorf("perfbench: set benchtime: %w", err)
	}

	rep := &Report{Label: opts.Label, Reps: opts.Reps, BenchTimeNs: opts.BenchTime.Nanoseconds()}
	hostMeta(rep)

	for _, sc := range Suite() {
		if opts.Filter != nil && !opts.Filter.MatchString(sc.Name) {
			continue
		}
		res, err := runScenario(sc, opts)
		if err != nil {
			return nil, fmt.Errorf("perfbench: %s: %w", sc.Name, err)
		}
		rep.Scenarios = append(rep.Scenarios, res)
		if opts.Logf != nil {
			opts.Logf("%-28s %12.0f ns/op  %6d allocs/op%s",
				sc.Name, res.MedianNsPerOp, res.AllocsPerOp, percentileNote(res))
		}
	}
	return rep, nil
}

func percentileNote(res ScenarioResult) string {
	if res.P99Ns == 0 {
		return ""
	}
	return fmt.Sprintf("  p50 %.0fµs p99 %.0fµs", res.P50Ns/1e3, res.P99Ns/1e3)
}

func runScenario(sc Scenario, opts Options) (ScenarioResult, error) {
	res := ScenarioResult{Name: sc.Name, Kind: sc.Kind, Seed: sc.Seed, MapsTo: sc.MapsTo}
	inst, err := sc.setup(sc)
	if err != nil {
		return res, err
	}
	if inst.cleanup != nil {
		defer inst.cleanup()
	}

	for i := 0; i < opts.Warmup; i++ {
		if r := testing.Benchmark(inst.op); r.N == 0 {
			return res, fmt.Errorf("warmup repetition failed (benchmark aborted)")
		}
	}
	if inst.lat != nil {
		inst.lat.reset() // quantiles cover measured reps only
	}
	for i := 0; i < opts.Reps; i++ {
		r := testing.Benchmark(inst.op)
		if r.N == 0 {
			return res, fmt.Errorf("measured repetition failed (benchmark aborted)")
		}
		res.Iters = append(res.Iters, r.N)
		res.NsPerOp = append(res.NsPerOp, float64(r.T.Nanoseconds())/float64(r.N))
		res.BytesPerOp = r.AllocedBytesPerOp()
		res.AllocsPerOp = r.AllocsPerOp()
	}
	res.MedianNsPerOp = median(res.NsPerOp)
	if inst.lat != nil {
		res.P50Ns = inst.lat.quantileNs(0.50)
		res.P99Ns = inst.lat.quantileNs(0.99)
	}

	if opts.ProfileDir != "" {
		if err := captureProfiles(sc, inst, opts.ProfileDir); err != nil {
			return res, err
		}
	}
	return res, nil
}

// captureProfiles runs one extra repetition under the CPU profiler and
// snapshots the heap afterwards. Profile repetitions are never part of
// the measured statistics.
func captureProfiles(sc Scenario, inst *instance, dir string) error {
	base := dir + "/" + strings.ReplaceAll(sc.Name, "/", "_")
	cpu, err := fsx.Create(base + ".cpu.pprof")
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return err
	}
	testing.Benchmark(inst.op)
	pprof.StopCPUProfile()
	if err := cpu.Close(); err != nil {
		return err
	}

	runtime.GC()
	heap, err := fsx.Create(base + ".heap.pprof")
	if err != nil {
		return err
	}
	if err := pprof.WriteHeapProfile(heap); err != nil {
		heap.Close()
		return err
	}
	return heap.Close()
}
