package perfbench

import (
	"fmt"
	"io"
	"strings"
)

// CompareOptions are the noise-tolerance thresholds for judging a
// current run against a baseline. Zero values select the defaults the
// CI perf smoke job runs with.
type CompareOptions struct {
	// MaxRegression is the fractional median-ns/op increase tolerated
	// before a scenario fails (0 selects 0.30: timing medians across 3
	// short repetitions on shared CI hardware jitter well below 30%,
	// while the regressions worth catching — an accidental O(n⁴)
	// matcher, a per-op allocation storm — blow far past it).
	MaxRegression float64
	// MaxAllocRegression is the fractional allocs/op increase tolerated
	// (0 selects 0.10); AllocSlack absolute allocations are always
	// forgiven so a 0→1 or 84→86 wobble cannot fail the gate (0 selects
	// 2).
	MaxAllocRegression float64
	AllocSlack         int64
	// MinReps is the repetition floor below which timing deltas are
	// advisory only (0 selects 3): a single-rep median is noise, not
	// evidence.
	MinReps int
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.MaxRegression == 0 {
		o.MaxRegression = 0.30
	}
	if o.MaxAllocRegression == 0 {
		o.MaxAllocRegression = 0.10
	}
	if o.AllocSlack == 0 {
		o.AllocSlack = 2
	}
	if o.MinReps == 0 {
		o.MinReps = 3
	}
	return o
}

// Verdicts a compared scenario can receive.
const (
	VerdictOK          = "ok"
	VerdictRegression  = "regression"
	VerdictImprovement = "improvement"
	VerdictAdvisory    = "advisory" // over threshold but under MinReps
	VerdictMissing     = "missing"  // in baseline, absent from current
	VerdictAdded       = "added"    // in current, absent from baseline
)

// Delta is one scenario's baseline-vs-current comparison.
type Delta struct {
	Name       string  `json:"name"`
	OldNs      float64 `json:"oldNs"`
	NewNs      float64 `json:"newNs"`
	TimeDelta  float64 `json:"timeDelta"` // fractional; +0.25 = 25% slower
	OldAllocs  int64   `json:"oldAllocs"`
	NewAllocs  int64   `json:"newAllocs"`
	AllocDelta float64 `json:"allocDelta"`
	Verdict    string  `json:"verdict"`
	Note       string  `json:"note,omitempty"`
}

// Comparison is the full judgement of a current report against a
// baseline.
type Comparison struct {
	Deltas []Delta
	// Regressions lists the failing scenario names (time or alloc
	// regressions, plus scenarios missing from the current run).
	Regressions []string
}

// Failed reports whether the comparison should gate (non-zero exit).
func (c *Comparison) Failed() bool { return len(c.Regressions) > 0 }

// Compare judges current against baseline scenario by scenario in
// baseline order, appending scenarios only the current run has. A
// filtered current run therefore fails against a full baseline — by
// design: the committed baseline defines the scenario set.
func Compare(baseline, current *Report, opts CompareOptions) *Comparison {
	opts = opts.withDefaults()
	cmp := &Comparison{}
	for _, base := range baseline.Scenarios {
		cur := current.Find(base.Name)
		if cur == nil {
			cmp.Deltas = append(cmp.Deltas, Delta{
				Name: base.Name, OldNs: base.MedianNsPerOp, OldAllocs: base.AllocsPerOp,
				Verdict: VerdictMissing, Note: "scenario absent from current run",
			})
			cmp.Regressions = append(cmp.Regressions, base.Name)
			continue
		}
		d := Delta{
			Name:      base.Name,
			OldNs:     base.MedianNsPerOp,
			NewNs:     cur.MedianNsPerOp,
			OldAllocs: base.AllocsPerOp,
			NewAllocs: cur.AllocsPerOp,
		}
		if base.MedianNsPerOp > 0 {
			d.TimeDelta = cur.MedianNsPerOp/base.MedianNsPerOp - 1
		}
		if base.AllocsPerOp > 0 {
			d.AllocDelta = float64(cur.AllocsPerOp)/float64(base.AllocsPerOp) - 1
		}

		allocLimit := base.AllocsPerOp + int64(float64(base.AllocsPerOp)*opts.MaxAllocRegression) + opts.AllocSlack
		allocRegressed := cur.AllocsPerOp > allocLimit
		// The 1e-9 slop keeps "exactly at threshold" on the passing
		// side despite float division (1300/1000-1 != 0.30 exactly).
		timeRegressed := d.TimeDelta > opts.MaxRegression+1e-9
		switch {
		case timeRegressed && len(cur.NsPerOp) < opts.MinReps:
			d.Verdict = VerdictAdvisory
			d.Note = fmt.Sprintf("median over threshold but only %d reps (< %d): advisory", len(cur.NsPerOp), opts.MinReps)
		case timeRegressed:
			d.Verdict = VerdictRegression
			d.Note = fmt.Sprintf("median ns/op +%.0f%% exceeds +%.0f%% threshold", d.TimeDelta*100, opts.MaxRegression*100)
		case allocRegressed:
			d.Verdict = VerdictRegression
			d.Note = fmt.Sprintf("allocs/op %d exceeds limit %d", cur.AllocsPerOp, allocLimit)
		case d.TimeDelta < -opts.MaxRegression:
			d.Verdict = VerdictImprovement
		default:
			d.Verdict = VerdictOK
		}
		if d.Verdict == VerdictRegression {
			cmp.Regressions = append(cmp.Regressions, base.Name)
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	for _, cur := range current.Scenarios {
		if baseline.Find(cur.Name) == nil {
			cmp.Deltas = append(cmp.Deltas, Delta{
				Name: cur.Name, NewNs: cur.MedianNsPerOp, NewAllocs: cur.AllocsPerOp,
				Verdict: VerdictAdded, Note: "not in baseline",
			})
		}
	}
	return cmp
}

// Format renders the benchstat-style delta table.
func (c *Comparison) Format(w io.Writer) {
	fmt.Fprintf(w, "%-28s %14s %14s %8s %16s  %s\n",
		"scenario", "old ns/op", "new ns/op", "delta", "allocs/op", "verdict")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 96))
	for _, d := range c.Deltas {
		var old, new_, delta, allocs string
		switch d.Verdict {
		case VerdictMissing:
			old, new_, delta = fmtNs(d.OldNs), "—", "—"
			allocs = fmt.Sprintf("%d → —", d.OldAllocs)
		case VerdictAdded:
			old, new_, delta = "—", fmtNs(d.NewNs), "—"
			allocs = fmt.Sprintf("— → %d", d.NewAllocs)
		default:
			old, new_ = fmtNs(d.OldNs), fmtNs(d.NewNs)
			delta = fmt.Sprintf("%+.1f%%", d.TimeDelta*100)
			allocs = fmt.Sprintf("%d → %d", d.OldAllocs, d.NewAllocs)
		}
		verdict := d.Verdict
		if d.Note != "" {
			verdict += " (" + d.Note + ")"
		}
		fmt.Fprintf(w, "%-28s %14s %14s %8s %16s  %s\n", d.Name, old, new_, delta, allocs, verdict)
	}
}

func fmtNs(ns float64) string {
	switch {
	case ns == 0:
		return "0"
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.2fms", ns/1e6)
	default:
		return fmt.Sprintf("%.2fs", ns/1e9)
	}
}
