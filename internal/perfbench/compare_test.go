package perfbench

import (
	"strings"
	"testing"
)

// fakeReport builds a report whose every scenario has the given median
// ns/op and allocs/op over `reps` repetitions.
func fakeReport(names []string, ns float64, allocs int64, reps int) *Report {
	r := &Report{Reps: reps}
	hostMeta(r)
	for _, n := range names {
		sr := ScenarioResult{Name: n, Kind: KindMicro, Seed: 1, MedianNsPerOp: ns, AllocsPerOp: allocs}
		for i := 0; i < reps; i++ {
			sr.NsPerOp = append(sr.NsPerOp, ns)
			sr.Iters = append(sr.Iters, 100)
		}
		r.Scenarios = append(r.Scenarios, sr)
	}
	return r
}

var names = []string{"core/localize", "match/heuristic"}

func TestCompareCleanRun(t *testing.T) {
	base := fakeReport(names, 1000, 84, 3)
	cur := fakeReport(names, 1100, 84, 3) // +10%: inside the 30% default
	cmp := Compare(base, cur, CompareOptions{})
	if cmp.Failed() {
		t.Fatalf("clean run failed: %v", cmp.Regressions)
	}
	for _, d := range cmp.Deltas {
		if d.Verdict != VerdictOK {
			t.Errorf("%s: verdict %q, want ok", d.Name, d.Verdict)
		}
	}
}

func TestCompareSyntheticTimeRegression(t *testing.T) {
	base := fakeReport(names, 1000, 84, 3)
	cur := fakeReport(names, 2000, 84, 3) // +100%: injected regression
	cmp := Compare(base, cur, CompareOptions{})
	if !cmp.Failed() {
		t.Fatal("2× median slowdown not flagged")
	}
	if len(cmp.Regressions) != len(names) {
		t.Fatalf("regressions %v, want all of %v", cmp.Regressions, names)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := fakeReport(names, 1000, 84, 3)
	cur := fakeReport(names, 1000, 200, 3) // 84 → 200 allocs/op
	cmp := Compare(base, cur, CompareOptions{})
	if !cmp.Failed() {
		t.Fatal("alloc blow-up not flagged")
	}

	// Small absolute wobble stays inside AllocSlack.
	cur = fakeReport(names, 1000, 86, 3)
	if cmp := Compare(base, cur, CompareOptions{}); cmp.Failed() {
		t.Fatalf("84→86 allocs flagged despite slack: %v", cmp.Regressions)
	}

	// Zero-alloc scenarios get slack too: 0→2 passes, 0→3 fails.
	base = fakeReport(names, 1000, 0, 3)
	if cmp := Compare(base, fakeReport(names, 1000, 2, 3), CompareOptions{}); cmp.Failed() {
		t.Fatalf("0→2 allocs flagged: %v", cmp.Regressions)
	}
	if cmp := Compare(base, fakeReport(names, 1000, 3, 3), CompareOptions{}); !cmp.Failed() {
		t.Fatal("0→3 allocs not flagged")
	}
}

func TestCompareFewRepsIsAdvisory(t *testing.T) {
	base := fakeReport(names, 1000, 84, 3)
	cur := fakeReport(names, 5000, 84, 1) // huge delta, single rep
	cmp := Compare(base, cur, CompareOptions{})
	if cmp.Failed() {
		t.Fatalf("single-rep delta failed the gate: %v", cmp.Regressions)
	}
	for _, d := range cmp.Deltas {
		if d.Verdict != VerdictAdvisory {
			t.Errorf("%s: verdict %q, want advisory", d.Name, d.Verdict)
		}
	}
}

func TestCompareMissingAndAdded(t *testing.T) {
	base := fakeReport([]string{"core/localize", "match/heuristic"}, 1000, 84, 3)
	cur := fakeReport([]string{"core/localize", "serve/new-thing"}, 1000, 84, 3)
	cmp := Compare(base, cur, CompareOptions{})
	if !cmp.Failed() {
		t.Fatal("scenario missing from current run must fail the gate")
	}
	verdicts := map[string]string{}
	for _, d := range cmp.Deltas {
		verdicts[d.Name] = d.Verdict
	}
	if verdicts["match/heuristic"] != VerdictMissing {
		t.Errorf("match/heuristic verdict %q, want missing", verdicts["match/heuristic"])
	}
	if verdicts["serve/new-thing"] != VerdictAdded {
		t.Errorf("serve/new-thing verdict %q, want added", verdicts["serve/new-thing"])
	}
	if verdicts["core/localize"] != VerdictOK {
		t.Errorf("core/localize verdict %q, want ok", verdicts["core/localize"])
	}
}

func TestCompareImprovement(t *testing.T) {
	base := fakeReport(names, 1000, 84, 3)
	cur := fakeReport(names, 500, 84, 3)
	cmp := Compare(base, cur, CompareOptions{})
	if cmp.Failed() {
		t.Fatalf("improvement failed the gate: %v", cmp.Regressions)
	}
	for _, d := range cmp.Deltas {
		if d.Verdict != VerdictImprovement {
			t.Errorf("%s: verdict %q, want improvement", d.Name, d.Verdict)
		}
	}
}

func TestCompareThresholdBoundary(t *testing.T) {
	base := fakeReport(names, 1000, 84, 3)
	// Exactly at the threshold: not a regression (strict >).
	cmp := Compare(base, fakeReport(names, 1300, 84, 3), CompareOptions{MaxRegression: 0.30})
	if cmp.Failed() {
		t.Fatalf("delta exactly at threshold failed: %v", cmp.Regressions)
	}
	cmp = Compare(base, fakeReport(names, 1301, 84, 3), CompareOptions{MaxRegression: 0.30})
	if !cmp.Failed() {
		t.Fatal("delta just over threshold passed")
	}
}

func TestFormatTable(t *testing.T) {
	base := fakeReport(names, 1000, 84, 3)
	cur := fakeReport(names, 2000, 84, 3)
	var b strings.Builder
	Compare(base, cur, CompareOptions{}).Format(&b)
	out := b.String()
	for _, want := range []string{"scenario", "core/localize", "match/heuristic", "+100.0%", "regression", "84 → 84"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
