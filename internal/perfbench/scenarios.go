package perfbench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fttt/internal/byz"
	"fttt/internal/cluster"
	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/experiments"
	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/match"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
	"fttt/internal/serve"
	"fttt/internal/vector"
)

// Suite returns the scenario catalog in its stable order. Names, kinds,
// seeds and MapsTo strings are part of the baseline contract: append
// new scenarios, never rename or reseed existing ones without
// regenerating results/perf/baseline.json.
func Suite() []Scenario {
	return []Scenario{
		{
			Name: "vector/diff", Kind: KindMicro, Seed: 21,
			Summary: "vector.Diff of two 20-node (190-pair) sampling vectors",
			MapsTo:  "Defs. 4-6 vector algebra behind eq. 6-7",
			setup:   setupVectorDiff,
		},
		{
			Name: "vector/similarity", Kind: KindMicro, Seed: 21,
			Summary: "vector.Similarity of a sampling vector against a face signature",
			MapsTo:  "Sec. 4.4 similarity matching (eq. 8)",
			setup:   setupVectorSimilarity,
		},
		{
			Name: "field/signature-pass", Kind: KindMicro, Seed: 6,
			Summary: "field.DivideWorkers signature pass, 20-node grid, 2 m cells, CPU workers",
			MapsTo:  "Sec. 4.3 approximate grid division; results/face_complexity.csv",
			setup:   setupSignaturePass,
		},
		{
			Name: "match/heuristic", Kind: KindMicro, Seed: 9,
			Summary: "warmed match.Heuristic.Match over a 16-probe spread (cold + prev-face starts)",
			MapsTo:  "Algorithm 2, the O(n⁴)→O(n²) claim of Sec. 4.4(2); results/match_cost.csv",
			setup:   setupHeuristicMatch,
		},
		{
			Name: "core/localize", Kind: KindMacro, Seed: 7,
			Summary: "one full Tracker.Localize (grouping sampling → vector → match → estimate)",
			MapsTo:  "eq. 6-7 end to end; the Fig. 11 per-round workload",
			setup:   setupLocalize,
		},
		{
			Name: "core/localize-batch", Kind: KindMacro, Seed: 13,
			Summary: "MultiTracker.LocalizeBatch of 16 requests across 4 targets, CPU workers",
			MapsTo:  "DESIGN.md §8 multi-target batching (serving determinism contract)",
			setup:   setupLocalizeBatch,
		},
		{
			Name: "core/track-parallel", Kind: KindMacro, Seed: 17,
			Summary: "Tracker.TrackParallel over 4 independent 16-point traces, CPU workers",
			MapsTo:  "Fig. 10-style traces under the DESIGN.md §8 concurrency model",
			setup:   setupTrackParallel,
		},
		{
			Name: "core/track-faulted", Kind: KindMacro, Seed: 19,
			Summary: "Tracker.Track over 32 points with burst loss + 20% crash and the degradation policy armed",
			MapsTo:  "DESIGN.md §9 fault model; results/fault_tolerance.csv",
			setup:   setupTrackFaulted,
		},
		{
			Name: "serve/roundtrip", Kind: KindMacro, Seed: 11,
			Summary: "in-process serving round-trip (admission → batcher → estimate), default batching, serial client",
			MapsTo:  "DESIGN.md §10 serving architecture",
			setup:   func(sc Scenario) (*instance, error) { return setupServe(sc, 0, false) },
		},
		{
			Name: "serve/roundtrip-unbatched", Kind: KindMacro, Seed: 11,
			Summary: "in-process serving round-trip with micro-batching off (MaxBatch=1), serial client",
			MapsTo:  "DESIGN.md §10 batching ablation",
			setup:   func(sc Scenario) (*instance, error) { return setupServe(sc, 1, false) },
		},
		{
			Name: "serve/roundtrip-concurrent", Kind: KindMacro, Seed: 11,
			Summary: "in-process serving round-trip, GOMAXPROCS concurrent clients over 4 targets (batches coalesce)",
			MapsTo:  "DESIGN.md §10 micro-batcher coalescing",
			setup:   func(sc Scenario) (*instance, error) { return setupServe(sc, 0, true) },
		},
		{
			Name: "obs/trace-overhead", Kind: KindMacro, Seed: 7,
			Summary: "core/localize with a flight recorder attached (ring-buffer spans + attrs per round)",
			MapsTo:  "DESIGN.md §12 tracing overhead contract (compare against core/localize)",
			setup:   setupTraceOverhead,
		},
		{
			Name: "serve/cold-session", Kind: KindMacro, Seed: 23,
			Summary: "session create+close against a warm field cache (division shared, no re-divide)",
			MapsTo:  "DESIGN.md §13 shared field-index cache (cache-hit ≥10× faster than cold build)",
			setup:   setupColdSession,
		},
		{
			Name: "match/heuristic-batch64", Kind: KindMicro, Seed: 9,
			Summary: "one match.Batch.MatchBatch pass over 64 mixed-start ternary lanes (SoA bitplane kernel)",
			MapsTo:  "Sec. 4.4 matching as a data-layout problem; DESIGN.md §14 (>4× per vector vs match/heuristic)",
			setup:   setupHeuristicMatchBatch64,
		},
		{
			Name: "core/localize-defended", Kind: KindMacro, Seed: 7,
			Summary: "core/localize with the Byzantine defense armed (honest run: evidence bookkeeping, no reweighting)",
			MapsTo:  "DESIGN.md §15 defense overhead contract (< 15% over core/localize)",
			setup:   setupLocalizeDefended,
		},
		{
			Name: "serve/cluster-roundtrip", Kind: KindMacro, Seed: 11,
			Summary: "HTTP localize round-trip through the fttt-router proxy to a 2-backend cluster, serial client",
			MapsTo:  "DESIGN.md §16 sharding (router hop + HTTP cost over serve/roundtrip's in-process path)",
			setup:   setupClusterRoundtrip,
		},
	}
}

// sink defeats dead-code elimination in micro scenarios.
var sink any

// paperConfig is the BenchmarkLocalize fixture: the paper's Table 1
// field with 20 random nodes (deployment seed 6) and 2 m cells — the
// configuration the PR-2 hot-path numbers were reported on.
func paperConfig() core.Config {
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Random(fieldRect, 20, randx.New(6))
	return core.Config{
		Field: fieldRect, Nodes: dep.Positions(), Model: rf.Default(),
		Epsilon: 1, SamplingTimes: 5, Range: 40, CellSize: 2,
	}
}

func paperSampler(cfg core.Config) *sampling.Sampler {
	return &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes, Range: cfg.Range, Epsilon: cfg.Epsilon}
}

func setupVectorDiff(sc Scenario) (*instance, error) {
	cfg := paperConfig()
	s := paperSampler(cfg)
	rng := randx.New(sc.Seed)
	a := s.Sample(geom.Pt(40, 60), cfg.SamplingTimes, rng.Split("a")).Vector()
	b := s.Sample(geom.Pt(42, 58), cfg.SamplingTimes, rng.Split("b")).Vector()
	return &instance{op: func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			sink = vector.Diff(a, b)
		}
	}}, nil
}

func setupVectorSimilarity(sc Scenario) (*instance, error) {
	cfg := paperConfig()
	s := paperSampler(cfg)
	rng := randx.New(sc.Seed)
	v := s.Sample(geom.Pt(40, 60), cfg.SamplingTimes, rng.Split("a")).Vector()
	sig := field.Signature(mustClassifier(cfg), geom.Pt(41, 59))
	var acc float64
	return &instance{op: func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			acc += vector.Similarity(v, sig)
		}
		sink = acc
	}}, nil
}

func mustClassifier(cfg core.Config) *field.RatioClassifier {
	rc, err := field.NewRatioClassifier(cfg.Nodes, cfg.UncertaintyC())
	if err != nil {
		panic(err)
	}
	return rc
}

func setupSignaturePass(sc Scenario) (*instance, error) {
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Grid(fieldRect, 20)
	rc, err := field.NewRatioClassifier(dep.Positions(), rf.Default().UncertaintyC(1))
	if err != nil {
		return nil, err
	}
	workers := runtime.NumCPU()
	return &instance{op: func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			div, err := field.DivideWorkers(fieldRect, rc, 2, workers)
			if err != nil {
				tb.Fatal(err)
			}
			sink = div
		}
	}}, nil
}

func setupHeuristicMatch(sc Scenario) (*instance, error) {
	cfg := paperConfig()
	rc := mustClassifier(cfg)
	div, err := field.Divide(cfg.Field, rc, cfg.CellSize)
	if err != nil {
		return nil, err
	}
	s := paperSampler(cfg)
	m := &match.Heuristic{Div: div}
	// The alloc_test probe spread: cold starts, warm starts, frontier
	// growth — so the number is not one lucky vector.
	rng := randx.New(sc.Seed)
	type probe struct {
		v    vector.Vector
		prev *field.Face
	}
	probes := make([]probe, 16)
	for i := range probes {
		p := geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
		probes[i].v = s.Sample(p, cfg.SamplingTimes, rng.SplitN("probe", i)).Vector()
		if i%3 != 0 {
			probes[i].prev = div.FaceAt(p)
		}
	}
	for _, pr := range probes { // warm the matcher scratch
		m.Match(pr.v, pr.prev)
	}
	var n int
	return &instance{op: func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			pr := probes[n%len(probes)]
			sink = m.Match(pr.v, pr.prev)
			n++
		}
	}}, nil
}

// setupHeuristicMatchBatch64 prices the SoA batch matcher: one
// MatchBatch pass over 64 lanes built exactly like the match/heuristic
// probes (same division, same sampler, cold + warm starts), so
// per-op-time/64 against match/heuristic's per-op time reads off the
// data-layout speedup DESIGN.md §14 claims (>4× per vector). Results
// are bitwise-identical to 64 serial Heuristic matches by the batch
// kernel's differential contract.
func setupHeuristicMatchBatch64(sc Scenario) (*instance, error) {
	cfg := paperConfig()
	rc := mustClassifier(cfg)
	div, err := field.Divide(cfg.Field, rc, cfg.CellSize)
	if err != nil {
		return nil, err
	}
	if div.SoA() == nil {
		return nil, fmt.Errorf("perfbench: paper division carries no SoA signature store")
	}
	s := paperSampler(cfg)
	rng := randx.New(sc.Seed)
	const lanes = 64
	vs := make([]vector.Vector, lanes)
	prevs := make([]*field.Face, lanes)
	for i := range vs {
		p := geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
		vs[i] = s.Sample(p, cfg.SamplingTimes, rng.SplitN("probe", i)).Vector()
		if i%3 != 0 {
			prevs[i] = div.FaceAt(p)
		}
	}
	m := &match.Batch{Div: div}
	out := m.MatchBatch(nil, vs, prevs) // warm scratch + result capacity
	return &instance{op: func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			out = m.MatchBatch(out[:0], vs, prevs)
		}
		sink = out
	}}, nil
}

func setupLocalize(sc Scenario) (*instance, error) {
	tr, err := core.New(paperConfig())
	if err != nil {
		return nil, err
	}
	rng := randx.New(sc.Seed)
	var n int
	return &instance{op: func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			sink = tr.Localize(geom.Pt(40, 60), rng.SplitN("loc", n))
			n++
		}
	}}, nil
}

// setupLocalizeDefended is setupLocalize with the Byzantine defense
// armed — same fixture, same seed, so comparing medians against
// core/localize reads off the defense's honest-path overhead (the
// DESIGN.md §15 contract: under 15%). The scenario is honest (no fault
// script), so the priced work is the steady-state bookkeeping every
// defended round pays: the plausibility scan over the group, the
// inversion-evidence pass over the matched signature, and trust decay —
// never the suspect-path reweighting.
func setupLocalizeDefended(sc Scenario) (*instance, error) {
	cfg := paperConfig()
	cfg.Defense = &byz.Config{Enabled: true}
	tr, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	rng := randx.New(sc.Seed)
	var n int
	return &instance{op: func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			sink = tr.Localize(geom.Pt(40, 60), rng.SplitN("loc", n))
			n++
		}
	}}, nil
}

// setupTraceOverhead is setupLocalize with a flight recorder installed:
// the scenario prices the enabled tracing path (round span + sampling
// span + match span + attrs into the lock-free ring) so the §12
// overhead contract stays measured. Compare medians against
// core/localize — same seed, same fixture — to read the overhead.
func setupTraceOverhead(sc Scenario) (*instance, error) {
	cfg := paperConfig()
	cfg.Tracer = obs.NewRecorder(obs.DefaultRecorderCap)
	tr, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	rng := randx.New(sc.Seed)
	var n int
	return &instance{op: func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			sink = tr.Localize(geom.Pt(40, 60), rng.SplitN("loc", n))
			n++
		}
	}}, nil
}

func setupLocalizeBatch(sc Scenario) (*instance, error) {
	mt, err := core.NewMulti(paperConfig())
	if err != nil {
		return nil, err
	}
	rng := randx.New(sc.Seed)
	workers := runtime.NumCPU()
	const reqs, targets = 16, 4
	var round int
	return &instance{op: func(tb *testing.B) {
		tb.ReportAllocs()
		batch := make([]core.LocalizeRequest, reqs)
		for i := 0; i < tb.N; i++ {
			rr := rng.SplitN("round", round)
			for j := range batch {
				batch[j] = core.LocalizeRequest{
					ID:  fmt.Sprintf("t%d", j%targets),
					Pos: geom.Pt(20+float64(j)*4, 70-float64(j)*3),
					Rng: rr.SplitN("req", j),
				}
			}
			if _, err := mt.LocalizeBatch(batch, workers); err != nil {
				tb.Fatal(err)
			}
			round++
		}
	}}, nil
}

func setupTrackParallel(sc Scenario) (*instance, error) {
	tr, err := core.New(paperConfig())
	if err != nil {
		return nil, err
	}
	rng := randx.New(sc.Seed)
	const nTraces, nPoints = 4, 16
	traces := make([][]geom.Point, nTraces)
	for t := range traces {
		tt := rng.SplitN("trace", t)
		traces[t] = make([]geom.Point, nPoints)
		for i := range traces[t] {
			traces[t][i] = geom.Pt(tt.Uniform(5, 95), tt.Uniform(5, 95))
		}
	}
	workers := runtime.NumCPU()
	return &instance{op: func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			out, err := tr.TrackParallel(traces, nil, randx.New(sc.Seed), workers)
			if err != nil {
				tb.Fatal(err)
			}
			sink = out
		}
	}}, nil
}

func setupTrackFaulted(sc Scenario) (*instance, error) {
	script, err := experiments.FaultToleranceScript(0.2, 5)
	if err != nil {
		return nil, err
	}
	cfg := paperConfig()
	cfg.FaultScript = script
	cfg.FaultSeed = sc.Seed
	cfg.StarFractionLimit = 0.4
	cfg.RetryBackoff = 1
	tr, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	rng := randx.New(sc.Seed)
	const nPoints = 32
	trace := make([]geom.Point, nPoints)
	for i := range trace {
		trace[i] = geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
	}
	return &instance{op: func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			tr.Reset()
			sink = tr.Track(trace, nil, randx.New(sc.Seed))
		}
	}}, nil
}

// setupServe stands up the alloc_test serving fixture (9 grid nodes on
// a 60×60 m field, 3 m cells) and measures the in-process round-trip:
// admission, sequence assignment, substream derivation, the batcher and
// result fan-out — no HTTP. maxBatch 0 keeps the serving default (16);
// 1 disables coalescing. concurrent fans GOMAXPROCS clients over 4
// targets so batches actually coalesce.
func setupServe(sc Scenario, maxBatch int, concurrent bool) (*instance, error) {
	srv := serve.New(serve.Config{MaxBatch: maxBatch})
	sess, err := srv.CreateSession(serve.SessionConfig{
		Seed:      sc.Seed,
		Field:     &serve.RectWire{Max: serve.PointWire{X: 60, Y: 60}},
		GridNodes: 9,
		CellSize:  3,
	})
	if err != nil {
		return nil, err
	}
	rng := randx.New(sc.Seed)
	points := make([]geom.Point, 16)
	for i := range points {
		points[i] = geom.Pt(rng.Uniform(5, 55), rng.Uniform(5, 55))
	}
	lat := newLatencyRecorder()
	ctx := context.Background()
	var op func(b *testing.B)
	if concurrent {
		var client atomic.Uint64
		op = func(tb *testing.B) {
			tb.ReportAllocs()
			tb.RunParallel(func(pb *testing.PB) {
				target := fmt.Sprintf("c%d", client.Add(1)%4)
				var n int
				for pb.Next() {
					start := time.Now()
					if _, err := sess.Localize(ctx, target, points[n%len(points)]); err != nil {
						tb.Error(err)
						return
					}
					lat.observe(time.Since(start))
					n++
				}
			})
		}
	} else {
		var n int
		op = func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				start := time.Now()
				if _, err := sess.Localize(ctx, "bench", points[n%len(points)]); err != nil {
					tb.Fatal(err)
				}
				lat.observe(time.Since(start))
				n++
			}
		}
	}
	return &instance{
		op:      op,
		lat:     lat,
		cleanup: func() { srv.CloseSession(sess.ID()) },
	}, nil
}

// setupClusterRoundtrip prices the sharded serving path end to end:
// the alloc_test serving fixture behind real HTTP, fronted by a
// 2-backend fttt-router, one serial client localizing through the
// proxy. Against serve/roundtrip (same fixture, in-process, no HTTP)
// the median reads off what the cluster hop costs: JSON framing, two
// loopback TCP transits, and the router's rendezvous lookup + reverse
// proxy. Regressions here with serve/roundtrip flat mean the router
// path itself got slower.
func setupClusterRoundtrip(sc Scenario) (*instance, error) {
	var members []cluster.Backend
	var cleanups []func()
	cleanupAll := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	for i := 1; i <= 2; i++ {
		srv := serve.New(serve.Config{})
		ts := httptest.NewServer(srv)
		cleanups = append(cleanups, ts.Close)
		members = append(members, cluster.Backend{Name: fmt.Sprintf("b%d", i), URL: ts.URL})
	}
	rt, err := cluster.New(cluster.Config{Backends: members})
	if err != nil {
		cleanupAll()
		return nil, err
	}
	cleanups = append(cleanups, rt.Close)
	rts := httptest.NewServer(rt)
	cleanups = append(cleanups, rts.Close)
	client := rts.Client()

	scfg, err := json.Marshal(serve.SessionConfig{
		Seed:      sc.Seed,
		Field:     &serve.RectWire{Max: serve.PointWire{X: 60, Y: 60}},
		GridNodes: 9,
		CellSize:  3,
	})
	if err != nil {
		cleanupAll()
		return nil, err
	}
	resp, err := client.Post(rts.URL+"/v1/sessions", "application/json", bytes.NewReader(scfg))
	if err != nil {
		cleanupAll()
		return nil, err
	}
	var sw struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sw)
	resp.Body.Close()
	if err != nil {
		cleanupAll()
		return nil, err
	}

	rng := randx.New(sc.Seed)
	bodies := make([][]byte, 16)
	for i := range bodies {
		b, err := json.Marshal(serve.LocalizeWire{
			Target: "bench",
			X:      rng.Uniform(5, 55),
			Y:      rng.Uniform(5, 55),
		})
		if err != nil {
			cleanupAll()
			return nil, err
		}
		bodies[i] = b
	}
	url := rts.URL + "/v1/sessions/" + sw.ID + "/localize"
	lat := newLatencyRecorder()
	var n int
	op := func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			start := time.Now()
			resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[n%len(bodies)]))
			if err != nil {
				tb.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				tb.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				tb.Fatalf("localize through router: status %d", resp.StatusCode)
			}
			lat.observe(time.Since(start))
			n++
		}
	}
	return &instance{op: op, lat: lat, cleanup: cleanupAll}, nil
}

// setupColdSession measures what a new session costs on a busy server:
// the alloc_test deployment's division is already resident in the field
// cache (warmed outside the timed region), so each op is a full
// CreateSession + CloseSession where the preprocessing is a cache hit —
// matcher/sampler construction, session bring-up and teardown, but no
// re-division. Regressions here mean either the cache stopped hitting
// (the dominant term, a full Sec. 4.3 divide, comes back) or session
// bring-up grew a new cost.
func setupColdSession(sc Scenario) (*instance, error) {
	srv := serve.New(serve.Config{})
	scfg := serve.SessionConfig{
		Seed:      sc.Seed,
		Field:     &serve.RectWire{Max: serve.PointWire{X: 60, Y: 60}},
		GridNodes: 9,
		CellSize:  3,
	}
	warm, err := srv.CreateSession(scfg)
	if err != nil {
		return nil, err
	}
	srv.CloseSession(warm.ID())
	lat := newLatencyRecorder()
	op := func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			start := time.Now()
			s, err := srv.CreateSession(scfg)
			if err != nil {
				tb.Fatal(err)
			}
			srv.CloseSession(s.ID())
			lat.observe(time.Since(start))
		}
	}
	return &instance{op: op, lat: lat}, nil
}
