package perfbench

import (
	"regexp"
	"testing"
	"time"
)

// TestDefenseOverheadBounded gates the DESIGN.md §15 overhead contract:
// an honest defended localization (core/localize-defended) must cost at
// most 15% more than the undefended core/localize on the identical
// fixture and seed. Timing on shared runners jitters, so the gate takes
// the best ratio over a few paired attempts — a genuine regression (the
// defense growing an O(n²·faces) pass, say) inflates every attempt, while
// scheduler noise does not survive a minimum.
func TestDefenseOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timed comparison")
	}
	const (
		attempts = 3
		bound    = 1.15
	)
	best := 0.0
	for a := 0; a < attempts; a++ {
		rep, err := Run(Options{
			BenchTime: 50 * time.Millisecond,
			Reps:      3,
			Filter:    regexp.MustCompile(`^core/localize(-defended)?$`),
		})
		if err != nil {
			t.Fatal(err)
		}
		base, def := rep.Find("core/localize"), rep.Find("core/localize-defended")
		if base == nil || def == nil {
			t.Fatalf("missing scenario in report: base=%v defended=%v", base != nil, def != nil)
		}
		ratio := def.MedianNsPerOp / base.MedianNsPerOp
		t.Logf("attempt %d: defended %.0f ns/op vs %.0f ns/op (ratio %.3f)",
			a, def.MedianNsPerOp, base.MedianNsPerOp, ratio)
		if best == 0 || ratio < best {
			best = ratio
		}
		if best <= bound {
			return
		}
	}
	t.Errorf("defense overhead ratio %.3f exceeds %.2f on every attempt", best, bound)
}
