package field

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fttt/internal/geom"
	"fttt/internal/vector"
)

type classifierCase struct {
	nodes []geom.Point
	c     float64
	p     geom.Point
}

// Generate implements quick.Generator: random 2-6 node layouts, C in
// (1, 2.5], random probe points.
func (classifierCase) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 2 + r.Intn(5)
	nodes := make([]geom.Point, n)
	for i := range nodes {
		nodes[i] = geom.Pt(r.Float64()*100, r.Float64()*100)
	}
	return reflect.ValueOf(classifierCase{
		nodes: nodes,
		c:     1 + r.Float64()*1.5 + 1e-6,
		p:     geom.Pt(r.Float64()*100, r.Float64()*100),
	})
}

func quickCfg2() *quick.Config {
	return &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(77))}
}

// Property: classification is an exhaustive trichotomy consistent with
// the distance ratio, and antisymmetric under swapping the pair's roles.
func TestQuickClassifyTrichotomy(t *testing.T) {
	f := func(cc classifierCase) bool {
		rc, err := NewRatioClassifier(cc.nodes, cc.c)
		if err != nil {
			return false
		}
		n := len(cc.nodes)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rc.Classify(cc.p, i, j)
				di, dj := cc.p.Dist(cc.nodes[i]), cc.p.Dist(cc.nodes[j])
				switch v {
				case vector.Nearer:
					if !(di*cc.c <= dj) {
						return false
					}
				case vector.Farther:
					if !(dj*cc.c <= di) {
						return false
					}
				case vector.Flipped:
					if di*cc.c <= dj || dj*cc.c <= di {
						return false
					}
				default:
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg2()); err != nil {
		t.Error(err)
	}
}

// Property: growing C can only move pairs toward Flipped, never across
// from Nearer to Farther — uncertain areas are nested in C.
func TestQuickUncertaintyNestedInC(t *testing.T) {
	f := func(cc classifierCase) bool {
		small, err := NewRatioClassifier(cc.nodes, cc.c)
		if err != nil {
			return false
		}
		big := &RatioClassifier{Nodes: cc.nodes, C: cc.c * 1.5}
		n := len(cc.nodes)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				vs := small.Classify(cc.p, i, j)
				vb := big.Classify(cc.p, i, j)
				switch {
				case vs == vb:
				case vb == vector.Flipped:
					// Certain → uncertain is the only legal transition.
				default:
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg2()); err != nil {
		t.Error(err)
	}
}

// Property: Signature is position-deterministic and the grid division's
// FaceAt agrees with direct classification at every probed cell centre.
func TestQuickDivisionConsistentWithClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(4)
		nodes := make([]geom.Point, n)
		for i := range nodes {
			nodes[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		rc, err := NewRatioClassifier(nodes, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		div, err := Divide(fieldRect, rc, 5)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 50; probe++ {
			c, r := rng.Intn(div.Cols), rng.Intn(div.Rows)
			center := div.CellCenter(c, r)
			if !vector.Equal(div.FaceAt(center).Signature, Signature(rc, center)) {
				t.Fatalf("division disagrees with classifier at %v", center)
			}
		}
	}
}
