package field

import (
	"bytes"
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/randx"
)

func testSpec(nodes []geom.Point, c, cell float64) Spec {
	return Spec{Field: fieldRect, Nodes: nodes, C: c, CellSize: cell}
}

func TestSpecKeyDeterministic(t *testing.T) {
	nodes := deploy.Grid(fieldRect, 9).Positions()
	a := testSpec(nodes, defaultC(), 2)
	b := testSpec(append([]geom.Point(nil), nodes...), defaultC(), 2)
	if a.Key() != b.Key() {
		t.Fatal("equal specs hash differently")
	}
	if len(a.Key()) != 64 {
		t.Fatalf("key %q is not hex sha256", a.Key())
	}
	// Workers is a latency knob, not content.
	b.Workers = 8
	if a.Key() != b.Key() {
		t.Fatal("Workers must not enter the content hash")
	}
}

func TestSpecKeySensitivity(t *testing.T) {
	nodes := deploy.Grid(fieldRect, 9).Positions()
	base := testSpec(nodes, defaultC(), 2)
	mutations := map[string]Spec{
		"cell size": testSpec(nodes, defaultC(), 2.5),
		"constant":  testSpec(nodes, defaultC()*1.01, 2),
		"field": {Field: geom.NewRect(geom.Pt(0, 0), geom.Pt(90, 100)),
			Nodes: nodes, C: defaultC(), CellSize: 2},
		"node count": testSpec(nodes[:8], defaultC(), 2),
		"node coord": func() Spec {
			moved := append([]geom.Point(nil), nodes...)
			moved[3].X += 0.001
			return testSpec(moved, defaultC(), 2)
		}(),
	}
	for name, m := range mutations {
		if m.Key() == base.Key() {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

func TestSpecDivideMatchesDivideWorkers(t *testing.T) {
	nodes := deploy.Random(fieldRect, 12, randx.New(3)).Positions()
	spec := testSpec(nodes, defaultC(), 2)
	spec.Workers = 1
	got, err := spec.Divide()
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRatioClassifier(nodes, defaultC())
	if err != nil {
		t.Fatal(err)
	}
	want, err := DivideWorkers(fieldRect, rc, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := got.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := want.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Spec.Divide differs from DivideWorkers on the same inputs")
	}
}

func TestSpecMatches(t *testing.T) {
	nodes := deploy.Grid(fieldRect, 9).Positions()
	spec := testSpec(nodes, defaultC(), 2)
	div, err := spec.Divide()
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Matches(div); err != nil {
		t.Fatalf("own division rejected: %v", err)
	}
	bad := spec
	bad.CellSize = 4
	if err := bad.Matches(div); err == nil {
		t.Error("cell-size mismatch accepted")
	}
	bad = spec
	bad.Nodes = nodes[:5]
	if err := bad.Matches(div); err == nil {
		t.Error("node-count (signature dimension) mismatch accepted")
	}
	bad = spec
	bad.Field = geom.NewRect(geom.Pt(0, 0), geom.Pt(50, 100))
	if err := bad.Matches(div); err == nil {
		t.Error("field mismatch accepted")
	}
}

func TestApproxBytesPositiveAndMonotone(t *testing.T) {
	coarse, err := testSpec(deploy.Grid(fieldRect, 9).Positions(), defaultC(), 5).Divide()
	if err != nil {
		t.Fatal(err)
	}
	fine, err := testSpec(deploy.Grid(fieldRect, 9).Positions(), defaultC(), 2).Divide()
	if err != nil {
		t.Fatal(err)
	}
	if coarse.ApproxBytes() <= 0 {
		t.Fatal("ApproxBytes must be positive")
	}
	if fine.ApproxBytes() <= coarse.ApproxBytes() {
		t.Errorf("finer division (%d faces) should dominate coarser (%d faces): %d <= %d",
			fine.NumFaces(), coarse.NumFaces(), fine.ApproxBytes(), coarse.ApproxBytes())
	}
}
