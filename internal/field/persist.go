package field

import (
	"encoding/gob"
	"fmt"
	"io"

	"fttt/internal/geom"
	"fttt/internal/vector"
)

// divisionSnapshot is the wire form of a Division. The signature index is
// rebuilt on load rather than serialized.
type divisionSnapshot struct {
	Field    [4]float64 // MinX, MinY, MaxX, MaxY
	CellSize float64
	Cols     int
	Rows     int
	Faces    []Face
	CellFace []int
}

// Save serializes the division with encoding/gob. The preprocessing
// phase of Sec. 4.3 is the expensive step of FTTT — a deployment
// computes it once at the base station and persists it; trackers then
// Load it at startup.
func (d *Division) Save(w io.Writer) error {
	snap := divisionSnapshot{
		Field:    [4]float64{d.Field.Min.X, d.Field.Min.Y, d.Field.Max.X, d.Field.Max.Y},
		CellSize: d.CellSize,
		Cols:     d.Cols,
		Rows:     d.Rows,
		Faces:    d.Faces,
		CellFace: d.cellFace,
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("field: encoding division: %w", err)
	}
	return nil
}

// Load deserializes a division saved with Save and rebuilds the
// signature index. It validates structural invariants so a truncated or
// corrupted stream cannot produce a division that panics later.
func Load(r io.Reader) (*Division, error) {
	var snap divisionSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("field: decoding division: %w", err)
	}
	if snap.Cols < 1 || snap.Rows < 1 || snap.CellSize <= 0 {
		return nil, fmt.Errorf("field: corrupt division header (%dx%d cell %v)",
			snap.Cols, snap.Rows, snap.CellSize)
	}
	if len(snap.CellFace) != snap.Cols*snap.Rows {
		return nil, fmt.Errorf("field: raster has %d cells, want %d",
			len(snap.CellFace), snap.Cols*snap.Rows)
	}
	if len(snap.Faces) == 0 {
		return nil, fmt.Errorf("field: division has no faces")
	}
	d := &Division{
		Field:    geom.NewRect(geom.Pt(snap.Field[0], snap.Field[1]), geom.Pt(snap.Field[2], snap.Field[3])),
		CellSize: snap.CellSize,
		Cols:     snap.Cols,
		Rows:     snap.Rows,
		Faces:    snap.Faces,
		cellFace: snap.CellFace,
		bySig:    make(map[string]int, len(snap.Faces)),
	}
	dim := -1
	for i, f := range d.Faces {
		if f.ID != i {
			return nil, fmt.Errorf("field: face %d has ID %d", i, f.ID)
		}
		if dim == -1 {
			dim = f.Signature.Dim()
		} else if f.Signature.Dim() != dim {
			return nil, fmt.Errorf("field: face %d signature dim %d, want %d",
				i, f.Signature.Dim(), dim)
		}
		for _, nb := range f.Neighbors {
			if nb < 0 || nb >= len(d.Faces) {
				return nil, fmt.Errorf("field: face %d has invalid neighbor %d", i, nb)
			}
		}
		key := f.Signature.Key()
		if prev, dup := d.bySig[key]; dup {
			// Lemma 1: signatures are unique per face. A duplicate means
			// the stream is corrupt (or hand-edited); silently letting the
			// later face win would collapse two faces into one and skew
			// every signature lookup, so reject instead.
			return nil, fmt.Errorf("field: faces %d and %d share a signature (corrupt division)", prev, i)
		}
		d.bySig[key] = i
	}
	for ci, id := range d.cellFace {
		if id < 0 || id >= len(d.Faces) {
			return nil, fmt.Errorf("field: cell %d maps to invalid face %d", ci, id)
		}
	}
	// The SoA store is derived state: rebuilt deterministically from the
	// validated signatures rather than serialized, so the wire format is
	// unchanged and a loaded division batch-matches exactly like the one
	// that was saved.
	d.soa = buildSigSoA(d.Faces)
	return d, nil
}

func init() {
	// vector.Value is a defined float64 type: register it so gob encodes
	// slices of it inside Face.
	gob.Register(vector.Value(0))
}
