package field

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/randx"
	"fttt/internal/vector"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rc := gridClassifier(t, 9, defaultC())
	orig, err := Divide(fieldRect, rc, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumFaces() != orig.NumFaces() {
		t.Fatalf("faces %d != %d", loaded.NumFaces(), orig.NumFaces())
	}
	if loaded.Cols != orig.Cols || loaded.Rows != orig.Rows || loaded.CellSize != orig.CellSize {
		t.Fatal("raster header mismatch")
	}
	if loaded.Field != orig.Field {
		t.Fatal("field rect mismatch")
	}
	// Spot checks: FaceAt and FaceBySignature behave identically.
	rng := randx.New(1)
	for trial := 0; trial < 200; trial++ {
		p := loaded.CellCenter(rng.Intn(loaded.Cols), rng.Intn(loaded.Rows))
		fo, fl := orig.FaceAt(p), loaded.FaceAt(p)
		if fo.ID != fl.ID {
			t.Fatalf("FaceAt(%v) differs: %d vs %d", p, fo.ID, fl.ID)
		}
		if !vector.Equal(fo.Signature, fl.Signature) {
			t.Fatalf("signature differs at %v", p)
		}
		if !fo.Centroid.Eq(fl.Centroid) {
			t.Fatalf("centroid differs at %v", p)
		}
	}
	for _, f := range orig.Faces[:10] {
		got := loaded.FaceBySignature(f.Signature)
		if got == nil || got.ID != f.ID {
			t.Fatalf("FaceBySignature broken for face %d", f.ID)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	div, _ := Divide(fieldRect, rc, 5)
	var buf bytes.Buffer
	if err := div.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncated stream.
	if _, err := Load(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Error("truncated stream should fail")
	}
	// Garbage.
	if _, err := Load(bytes.NewReader([]byte("not a division"))); err == nil {
		t.Error("garbage should fail")
	}
	// Empty.
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
}

func TestLoadValidatesInvariants(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	div, _ := Divide(fieldRect, rc, 5)

	// Break a neighbor link and reserialize through the snapshot path by
	// mutating then saving.
	div.Faces[0].Neighbors = append(div.Faces[0].Neighbors, 99999)
	var buf bytes.Buffer
	if err := div.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("invalid neighbor should fail validation")
	}
}

// TestSaveLoadRoundTripProperty is the persistence property the
// fieldcache disk spill rests on: across seeded random deployments and
// cell sizes, a reloaded division re-serializes to the exact bytes of
// the original (so every derived structure — faces, centroids,
// neighbors, diffs, raster — survived intact) and localizes every grid
// cell to the same face.
func TestSaveLoadRoundTripProperty(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed%d", trial), func(t *testing.T) {
			rng := randx.New(uint64(10 + trial))
			n := 6 + trial*2
			cell := []float64{2, 2.5, 4}[trial%3]
			nodes := deploy.Random(fieldRect, n, rng.Split("deploy")).Positions()
			spec := Spec{Field: fieldRect, Nodes: nodes, C: defaultC(), CellSize: cell, Workers: 1}
			orig, err := spec.Divide()
			if err != nil {
				t.Fatal(err)
			}
			var first bytes.Buffer
			if err := orig.Save(&first); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var second bytes.Buffer
			if err := loaded.Save(&second); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatal("reloaded division re-serializes differently")
			}
			for r := 0; r < orig.Rows; r++ {
				for c := 0; c < orig.Cols; c++ {
					p := orig.CellCenter(c, r)
					if orig.FaceAt(p).ID != loaded.FaceAt(p).ID {
						t.Fatalf("cell (%d,%d) localizes to different faces", c, r)
					}
				}
			}
		})
	}
}

// TestLoadRejectsDuplicateSignatures pins the corruption check: a
// stream in which two faces carry the same signature must be rejected,
// not silently collapsed last-wins in the signature index.
func TestLoadRejectsDuplicateSignatures(t *testing.T) {
	rc := gridClassifier(t, 9, defaultC())
	div, err := Divide(fieldRect, rc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if div.NumFaces() < 2 {
		t.Fatal("fixture needs at least 2 faces")
	}
	// Forge the corruption through the snapshot path: give face 1 face
	// 0's signature and reserialize.
	div.Faces[1].Signature = div.Faces[0].Signature.Clone()
	var buf bytes.Buffer
	if err := div.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, err = Load(&buf)
	if err == nil {
		t.Fatal("duplicate face signatures must fail Load")
	}
	if !strings.Contains(err.Error(), "share a signature") {
		t.Fatalf("want duplicate-signature error, got: %v", err)
	}
}

func TestSaveLoadPreservesMatching(t *testing.T) {
	// The real adoption test: a tracker built on the loaded division
	// matches identically to one built on the original.
	rc := gridClassifier(t, 9, defaultC())
	orig, _ := Divide(fieldRect, rc, 2)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(2)
	for trial := 0; trial < 50; trial++ {
		p := orig.CellCenter(rng.Intn(orig.Cols), rng.Intn(orig.Rows))
		sig := orig.FaceAt(p).Signature
		a := orig.FaceBySignature(sig)
		b := loaded.FaceBySignature(sig)
		if a == nil || b == nil || a.ID != b.ID {
			t.Fatal("signature lookup differs after round trip")
		}
	}
}
