package field

import (
	"bytes"
	"testing"

	"fttt/internal/randx"
	"fttt/internal/vector"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rc := gridClassifier(t, 9, defaultC())
	orig, err := Divide(fieldRect, rc, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumFaces() != orig.NumFaces() {
		t.Fatalf("faces %d != %d", loaded.NumFaces(), orig.NumFaces())
	}
	if loaded.Cols != orig.Cols || loaded.Rows != orig.Rows || loaded.CellSize != orig.CellSize {
		t.Fatal("raster header mismatch")
	}
	if loaded.Field != orig.Field {
		t.Fatal("field rect mismatch")
	}
	// Spot checks: FaceAt and FaceBySignature behave identically.
	rng := randx.New(1)
	for trial := 0; trial < 200; trial++ {
		p := loaded.CellCenter(rng.Intn(loaded.Cols), rng.Intn(loaded.Rows))
		fo, fl := orig.FaceAt(p), loaded.FaceAt(p)
		if fo.ID != fl.ID {
			t.Fatalf("FaceAt(%v) differs: %d vs %d", p, fo.ID, fl.ID)
		}
		if !vector.Equal(fo.Signature, fl.Signature) {
			t.Fatalf("signature differs at %v", p)
		}
		if !fo.Centroid.Eq(fl.Centroid) {
			t.Fatalf("centroid differs at %v", p)
		}
	}
	for _, f := range orig.Faces[:10] {
		got := loaded.FaceBySignature(f.Signature)
		if got == nil || got.ID != f.ID {
			t.Fatalf("FaceBySignature broken for face %d", f.ID)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	div, _ := Divide(fieldRect, rc, 5)
	var buf bytes.Buffer
	if err := div.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncated stream.
	if _, err := Load(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Error("truncated stream should fail")
	}
	// Garbage.
	if _, err := Load(bytes.NewReader([]byte("not a division"))); err == nil {
		t.Error("garbage should fail")
	}
	// Empty.
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
}

func TestLoadValidatesInvariants(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	div, _ := Divide(fieldRect, rc, 5)

	// Break a neighbor link and reserialize through the snapshot path by
	// mutating then saving.
	div.Faces[0].Neighbors = append(div.Faces[0].Neighbors, 99999)
	var buf bytes.Buffer
	if err := div.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("invalid neighbor should fail validation")
	}
}

func TestSaveLoadPreservesMatching(t *testing.T) {
	// The real adoption test: a tracker built on the loaded division
	// matches identically to one built on the original.
	rc := gridClassifier(t, 9, defaultC())
	orig, _ := Divide(fieldRect, rc, 2)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(2)
	for trial := 0; trial < 50; trial++ {
		p := orig.CellCenter(rng.Intn(orig.Cols), rng.Intn(orig.Rows))
		sig := orig.FaceAt(p).Signature
		a := orig.FaceBySignature(sig)
		b := loaded.FaceBySignature(sig)
		if a == nil || b == nil || a.ID != b.ID {
			t.Fatal("signature lookup differs after round trip")
		}
	}
}
