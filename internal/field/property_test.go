package field

import (
	"fmt"
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/vector"
)

// randomDivision builds a division over a seeded random deployment —
// the property tests sweep several seeds so the invariants are checked
// across qualitatively different arrangements, not one lucky layout.
func randomDivision(t *testing.T, seed uint64, n int, c, cell float64) (*Division, *RatioClassifier) {
	t.Helper()
	rng := randx.New(seed).Split("property")
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(50, 50))
	nodes := make([]geom.Point, n)
	for i := range nodes {
		nodes[i] = geom.Pt(rng.Uniform(0, 50), rng.Uniform(0, 50))
	}
	cls, err := NewRatioClassifier(nodes, c)
	if err != nil {
		t.Fatal(err)
	}
	div, err := Divide(fieldRect, cls, cell)
	if err != nil {
		t.Fatal(err)
	}
	return div, cls
}

// diffComponents returns the indices at which two signatures differ.
func diffComponents(a, b vector.Vector) []int {
	var out []int
	for k := range a {
		if a[k] != b[k] {
			out = append(out, k)
		}
	}
	return out
}

// TestTheorem1Adjacency checks the neighbor-face structure the matcher
// hill-climbs on, across random deployments: links are symmetric,
// deduplicated and ascending; neighbor signatures differ in at least
// one component (Lemma 1 says equal signatures are one face); the
// recorded NeighborDiffs are exactly the differing components; and the
// single-component links — Theorem 1 says crossing one boundary flips
// one pair — dominate and satisfy the HammingNeighbors predicate when
// the flip passes through the uncertain value.
func TestTheorem1Adjacency(t *testing.T) {
	singles, unitSteps, total := 0, 0, 0
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			div, _ := randomDivision(t, seed, 6, 1.2, 2)
			for fi := range div.Faces {
				f := &div.Faces[fi]
				if len(f.NeighborDiffs) != len(f.Neighbors) {
					t.Fatalf("face %d: %d diffs for %d neighbors",
						f.ID, len(f.NeighborDiffs), len(f.Neighbors))
				}
				for ni, nb := range f.Neighbors {
					if nb == f.ID {
						t.Fatalf("face %d lists itself as a neighbor", f.ID)
					}
					if nb < 0 || nb >= div.NumFaces() {
						t.Fatalf("face %d neighbor %d out of range", f.ID, nb)
					}
					if ni > 0 && f.Neighbors[ni-1] >= nb {
						t.Fatalf("face %d neighbors not strictly ascending: %v", f.ID, f.Neighbors)
					}
					// Symmetry: the link must exist in both directions.
					back := false
					for _, rb := range div.Faces[nb].Neighbors {
						if rb == f.ID {
							back = true
							break
						}
					}
					if !back {
						t.Fatalf("link %d→%d not symmetric", f.ID, nb)
					}

					diffs := diffComponents(f.Signature, div.Faces[nb].Signature)
					if len(diffs) == 0 {
						t.Fatalf("neighbors %d and %d share a signature (violates Lemma 1)", f.ID, nb)
					}
					if got := f.NeighborDiffs[ni]; len(got) != len(diffs) {
						t.Fatalf("face %d link %d: NeighborDiffs has %d entries, signatures differ in %d",
							f.ID, nb, len(got), len(diffs))
					} else {
						for k := range got {
							if got[k] != diffs[k] {
								t.Fatalf("face %d link %d: NeighborDiffs %v != actual %v",
									f.ID, nb, got, diffs)
							}
						}
					}
					total++
					if len(diffs) == 1 {
						singles++
						if vector.HammingNeighbors(f.Signature, div.Faces[nb].Signature) {
							unitSteps++
						}
					}
				}
			}
		})
	}
	// Theorem 1 is exact for the true arrangement; the grid
	// approximation can merge several boundary crossings into one cell
	// step, so single-component links dominate without being universal.
	// Measured on these seeds: ~44% single-diff at cell=2, rising
	// monotonically with refinement (~55% at 1, ~64% at 0.5) — the
	// trend, not a magic constant, is the theorem's observable footprint.
	if total == 0 {
		t.Fatal("no neighbor links found")
	}
	if frac := float64(singles) / float64(total); frac < 0.35 {
		t.Errorf("only %.0f%% of links differ in one component at cell=2 (measured ~44%%: Theorem 1 structure lost)",
			100*frac)
	}
	t.Logf("links=%d single-diff=%d (%.1f%%) unit-steps=%d",
		total, singles, 100*float64(singles)/float64(total), unitSteps)
}

// TestTheorem1Refinement checks that the single-component-link fraction
// rises monotonically as the grid refines toward the true arrangement —
// the sense in which the approximate division converges to Theorem 1.
func TestTheorem1Refinement(t *testing.T) {
	singleFrac := func(cell float64) float64 {
		singles, total := 0, 0
		for _, seed := range []uint64{1, 2, 3, 4, 5} {
			div, _ := randomDivision(t, seed, 6, 1.2, cell)
			for fi := range div.Faces {
				for _, d := range div.Faces[fi].NeighborDiffs {
					total++
					if len(d) == 1 {
						singles++
					}
				}
			}
		}
		return float64(singles) / float64(total)
	}
	cells := []float64{4, 2, 1, 0.5}
	fracs := make([]float64, len(cells))
	for i, c := range cells {
		fracs[i] = singleFrac(c)
		t.Logf("cell=%.1f single-diff=%.1f%%", c, 100*fracs[i])
		if i > 0 && fracs[i] <= fracs[i-1] {
			t.Errorf("refinement %v→%v did not increase single-diff links: %.3f → %.3f",
				cells[i-1], c, fracs[i-1], fracs[i])
		}
	}
	if fracs[len(fracs)-1] < 0.55 {
		t.Errorf("finest grid has only %.0f%% single-diff links (measured ~64%%)", 100*fracs[len(fracs)-1])
	}
}

// TestDivisionInvariants checks the structural contract of the grid
// division across random deployments: cells partition exactly into
// faces, signatures are unique per face and round-trip through the
// signature index, every cell's stored face agrees with a fresh
// classification of its centre, and centroids lie inside the (possibly
// one-cell overhanging) grid extent.
func TestDivisionInvariants(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			div, cls := randomDivision(t, seed, 5, 1.2, 2)

			cellSum := 0
			seen := make(map[string]int)
			for fi := range div.Faces {
				f := &div.Faces[fi]
				if f.ID != fi {
					t.Fatalf("face at index %d has ID %d", fi, f.ID)
				}
				if f.Cells <= 0 {
					t.Fatalf("face %d has %d cells", f.ID, f.Cells)
				}
				cellSum += f.Cells
				key := f.Signature.Key()
				if prev, dup := seen[key]; dup {
					t.Fatalf("faces %d and %d share signature %s", prev, f.ID, key)
				}
				seen[key] = f.ID
				if got := div.FaceBySignature(f.Signature); got == nil || got.ID != f.ID {
					t.Fatalf("FaceBySignature round-trip failed for face %d", f.ID)
				}
			}
			if cellSum != div.Cols*div.Rows {
				t.Fatalf("faces cover %d cells, grid has %d", cellSum, div.Cols*div.Rows)
			}

			// The grid may overhang the field max edge by under one cell.
			extent := geom.NewRect(div.Field.Min,
				geom.Pt(div.Field.Min.X+float64(div.Cols)*div.CellSize,
					div.Field.Min.Y+float64(div.Rows)*div.CellSize))
			for fi := range div.Faces {
				if c := div.Faces[fi].Centroid; !extent.Contains(c) {
					t.Fatalf("face %d centroid %v outside grid extent %v", fi, c, extent)
				}
			}

			for r := 0; r < div.Rows; r++ {
				for c := 0; c < div.Cols; c++ {
					center := div.CellCenter(c, r)
					f := div.FaceAt(center)
					if !vector.Equal(f.Signature, Signature(cls, center)) {
						t.Fatalf("cell (%d,%d): stored face signature differs from fresh classification", c, r)
					}
				}
			}
		})
	}
}
