package field

import (
	"math/bits"

	"fttt/internal/vector"
)

// SigSoA is the division's structure-of-arrays signature store: every
// face signature quantized to int8 (vector.Quantize, lossless by
// construction) and laid out contiguously so the batch matcher
// (internal/match.Batch) streams it with blocked loops instead of
// chasing per-face float64 slices.
//
// Three derived views share the one quantized truth:
//
//   - Cols holds one contiguous column per node pair: Cols[k*NumFaces+f]
//     is component k of face f's signature. Scanning all faces at one
//     component is a unit-stride walk.
//   - Rows is the row-major transpose: Rows[f*Dim+k]. Scanning one
//     face's whole signature is a unit-stride walk.
//   - PosBits/NegBits are two bitplanes over Rows for ternary
//     signatures: bit k of face f's Words-word block is set in PosBits
//     iff the component is +1, in NegBits iff it is −1 (0 sets
//     neither). With 64 components per word, a whole squared modified
//     distance (Def. 8) against a ternary query reduces to a handful of
//     AND/OR/popcount ops per 64 pairs.
//
// A SigSoA is immutable after construction and shared like the Division
// that owns it.
type SigSoA struct {
	// NumFaces and Dim are the store's dimensions (faces × node pairs).
	NumFaces int
	Dim      int
	// Denom is the quantization denominator every code decodes against
	// (vector.Dequantize). Ternary divisions — every division the
	// RatioClassifier builds — have Denom 1.
	Denom int
	// Cols is the column-major (pair-major) view: Cols[k*NumFaces+f].
	Cols []int8
	// Rows is the row-major (face-major) view: Rows[f*Dim+k].
	Rows []int8
	// Words is the per-face bitplane word count: ⌈Dim/64⌉.
	Words int
	// PosBits and NegBits are the per-face bitplanes: bit k%64 of word
	// f*Words + k/64 reflects component k of face f. Nil when Denom != 1
	// or any stored component is Star (such signatures have no two-plane
	// form; the matcher's float kernel reads Rows instead).
	PosBits []uint64
	NegBits []uint64
}

// buildSigSoA quantizes the face signatures into a fresh SigSoA. It
// returns nil when the signatures do not quantize losslessly into int8
// (possible only with a custom PairClassifier emitting exotic values) —
// callers fall back to the AoS Face.Signature path then.
func buildSigSoA(faces []Face) *SigSoA {
	if len(faces) == 0 {
		return nil
	}
	dim := faces[0].Signature.Dim()
	sigs := make([]vector.Vector, len(faces))
	for i := range faces {
		if faces[i].Signature.Dim() != dim {
			return nil
		}
		sigs[i] = faces[i].Signature
	}
	denom := vector.CommonDenominator(sigs...)
	if denom == 0 {
		return nil
	}
	s := &SigSoA{
		NumFaces: len(faces),
		Dim:      dim,
		Denom:    denom,
		Cols:     make([]int8, dim*len(faces)),
		Rows:     make([]int8, len(faces)*dim),
		Words:    (dim + 63) / 64,
	}
	for f, sig := range sigs {
		// Append into the row's exact sub-slice: capacity dim means the
		// appends land in place in Rows without reallocating.
		if _, err := vector.QuantizeVector(s.Rows[f*dim:f*dim:(f+1)*dim], sig, denom); err != nil {
			return nil // CommonDenominator vouched for every value; defensive
		}
	}
	// Tiled transpose Rows → Cols: a naive double loop strides one of
	// the two slabs by thousands of bytes per write, missing cache on
	// every element. Square tiles keep both the 64-byte column runs and
	// the tile's rows resident while they are traded.
	const tile = 64
	nf := len(faces)
	for k0 := 0; k0 < dim; k0 += tile {
		k1 := min(k0+tile, dim)
		for f0 := 0; f0 < nf; f0 += tile {
			f1 := min(f0+tile, nf)
			for k := k0; k < k1; k++ {
				col := s.Cols[k*nf : (k+1)*nf]
				for f := f0; f < f1; f++ {
					col[f] = s.Rows[f*dim+k]
				}
			}
		}
	}
	// Bitplanes require pure ternary content: a Star component (legal in
	// any signature a custom classifier emits) contributes 0 to Def. 8
	// regardless of the query, which the two-plane form cannot encode —
	// it would alias a stored 0. Such stores keep the codes but no planes.
	hasStar := false
	for _, c := range s.Rows {
		if c == vector.StarCode {
			hasStar = true
			break
		}
	}
	if denom == 1 && !hasStar {
		s.PosBits = make([]uint64, len(faces)*s.Words)
		s.NegBits = make([]uint64, len(faces)*s.Words)
		for f := 0; f < len(faces); f++ {
			base := f * s.Words
			for k := 0; k < dim; k++ {
				switch s.Rows[f*dim+k] {
				case 1:
					s.PosBits[base+k/64] |= 1 << (k % 64)
				case -1:
					s.NegBits[base+k/64] |= 1 << (k % 64)
				}
			}
		}
	}
	return s
}

// Signature decodes face f's stored signature into dst (appended) —
// the inverse view the differential tests compare against the AoS
// Face.Signature.
func (s *SigSoA) Signature(dst vector.Vector, f int) vector.Vector {
	return vector.DequantizeVector(dst, s.Rows[f*s.Dim:(f+1)*s.Dim], s.Denom)
}

// FaceRow returns face f's row-major quantized signature codes.
func (s *SigSoA) FaceRow(f int) []int8 { return s.Rows[f*s.Dim : (f+1)*s.Dim] }

// FacePlanes returns face f's bitplane block (positives, negatives), or
// (nil, nil) when the store has no bitplanes.
func (s *SigSoA) FacePlanes(f int) (pos, neg []uint64) {
	if s.PosBits == nil {
		return nil, nil
	}
	return s.PosBits[f*s.Words : (f+1)*s.Words], s.NegBits[f*s.Words : (f+1)*s.Words]
}

// ApproxBytes estimates the store's resident memory for the fieldcache
// bytes gauge.
func (s *SigSoA) ApproxBytes() int64 {
	if s == nil {
		return 0
	}
	return int64(len(s.Cols)) + int64(len(s.Rows)) +
		8*(int64(len(s.PosBits))+int64(len(s.NegBits)))
}

// popcountDiff is a self-check helper used by tests: the bitplane
// squared distance of a ternary query against face f, computed the
// popcount way (4·|sign flips| + 1·|one-sided zeros|).
func (s *SigSoA) popcountDiff(qPos, qNeg, qMask []uint64, f int) int {
	base := f * s.Words
	c4, c1 := 0, 0
	for w := 0; w < s.Words; w++ {
		sp, sn := s.PosBits[base+w], s.NegBits[base+w]
		qp, qn, qm := qPos[w], qNeg[w], qMask[w]
		c4 += bits.OnesCount64((qp & sn) | (qn & sp))
		qz := qm &^ (qp | qn)
		c1 += bits.OnesCount64((qz & (sp | sn)) | ((qp | qn) &^ (sp | sn)))
	}
	return 4*c4 + c1
}
