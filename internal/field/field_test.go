package field

import (
	"math"
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/vector"
)

var fieldRect = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

func defaultC() float64 { return rf.Default().UncertaintyC(1) }

func gridClassifier(t *testing.T, n int, c float64) *RatioClassifier {
	t.Helper()
	d := deploy.Grid(fieldRect, n)
	rc, err := NewRatioClassifier(d.Positions(), c)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

func TestNewRatioClassifierValidation(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}
	if _, err := NewRatioClassifier(pts, 0.9); err == nil {
		t.Error("C<1 should be rejected")
	}
	if _, err := NewRatioClassifier(pts[:1], 1.2); err == nil {
		t.Error("single node should be rejected")
	}
	if _, err := NewRatioClassifier(pts, 1.2); err != nil {
		t.Errorf("valid classifier rejected: %v", err)
	}
}

func TestClassifyThreeRegions(t *testing.T) {
	nodes := []geom.Point{geom.Pt(30, 50), geom.Pt(70, 50)}
	rc, _ := NewRatioClassifier(nodes, 1.5)
	// Right next to node 0: firmly nearer.
	if got := rc.Classify(geom.Pt(31, 50), 0, 1); got != vector.Nearer {
		t.Errorf("near node0 = %v, want Nearer", got)
	}
	// Right next to node 1.
	if got := rc.Classify(geom.Pt(69, 50), 0, 1); got != vector.Farther {
		t.Errorf("near node1 = %v, want Farther", got)
	}
	// On the bisector: always uncertain for C > 1.
	if got := rc.Classify(geom.Pt(50, 50), 0, 1); got != vector.Flipped {
		t.Errorf("bisector = %v, want Flipped", got)
	}
}

func TestClassifyBisectorDegenerate(t *testing.T) {
	// C = 1: certain division; uncertain band vanishes except exact ties.
	nodes := []geom.Point{geom.Pt(30, 50), geom.Pt(70, 50)}
	rc, _ := NewRatioClassifier(nodes, 1)
	if got := rc.Classify(geom.Pt(49, 50), 0, 1); got != vector.Nearer {
		t.Errorf("left of bisector = %v, want Nearer", got)
	}
	if got := rc.Classify(geom.Pt(51, 50), 0, 1); got != vector.Farther {
		t.Errorf("right of bisector = %v, want Farther", got)
	}
	// Exactly equidistant: both comparisons hold with equality → Nearer
	// wins by the <= convention. Just assert it is not Flipped-free crash.
	_ = rc.Classify(geom.Pt(50, 50), 0, 1)
}

func TestClassifyBoundaryIsApollonius(t *testing.T) {
	// Points just inside/outside the Apollonius circle flip classification.
	p, q := geom.Pt(40, 50), geom.Pt(60, 50)
	C := 1.4
	rc, _ := NewRatioClassifier([]geom.Point{p, q}, C)
	// Circle of points x with d(x,p) = C·d(x,q) — the boundary between
	// Flipped and Farther.
	circ, ok := geom.Apollonius(p, q, C)
	if !ok {
		t.Fatal("Apollonius degenerate")
	}
	for _, theta := range []float64{0.3, 1.7, 2.9, 4.1, 5.3} {
		on := circ.PointAt(theta)
		// The circle encloses q: its interior is where d(x,p) > C·d(x,q),
		// i.e. the Farther region; just outside lies the uncertain band.
		inside := on.Add(circ.C.Sub(on).Unit().Scale(0.01))
		outside := on.Add(on.Sub(circ.C).Unit().Scale(0.01))
		if got := rc.Classify(inside, 0, 1); got != vector.Farther {
			t.Errorf("θ=%v inside = %v, want Farther", theta, got)
		}
		if got := rc.Classify(outside, 0, 1); got != vector.Flipped {
			t.Errorf("θ=%v outside = %v, want Flipped", theta, got)
		}
	}
}

func TestSignatureDimension(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	sig := Signature(rc, geom.Pt(10, 10))
	if sig.Dim() != 6 {
		t.Errorf("signature dim = %d, want 6", sig.Dim())
	}
}

func TestSignatureAntisymmetryUnderSwap(t *testing.T) {
	// A point near node i must be Nearer for every pair (i, j).
	rc := gridClassifier(t, 4, defaultC())
	d := deploy.Grid(fieldRect, 4)
	p := d.Nodes[0].Pos // on top of node 0
	sig := Signature(rc, p)
	n := 4
	for j := 1; j < n; j++ {
		if got := sig.Get(0, j, n); got != vector.Nearer {
			t.Errorf("pair (0,%d) = %v, want Nearer", j, got)
		}
	}
}

func TestDivideBasics(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	div, err := Divide(fieldRect, rc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if div.Cols != 100 || div.Rows != 100 {
		t.Fatalf("grid %dx%d, want 100x100", div.Cols, div.Rows)
	}
	if div.NumFaces() < 8 {
		t.Errorf("only %d faces; uncertain boundaries of 4 nodes should give more than the 8 certain faces", div.NumFaces())
	}
	// Total cells accounted for.
	total := 0
	for _, f := range div.Faces {
		total += f.Cells
	}
	if total != 100*100 {
		t.Errorf("cells sum to %d, want 10000", total)
	}
}

func TestDivideErrors(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	if _, err := Divide(fieldRect, rc, 0); err == nil {
		t.Error("zero cell size should fail")
	}
	if _, err := Divide(fieldRect, rc, -1); err == nil {
		t.Error("negative cell size should fail")
	}
	if _, err := Divide(fieldRect, rc, 1000); err == nil {
		t.Error("cell larger than field should fail")
	}
}

func TestLemma1UniquenessOnGrid(t *testing.T) {
	// Lemma 1 (grid form): two cells belong to the same face iff their
	// signatures are identical. By construction of Divide this must hold
	// exactly; verify on a sample of cells.
	rc := gridClassifier(t, 5, defaultC())
	div, err := Divide(fieldRect, rc, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(5)
	for trial := 0; trial < 500; trial++ {
		c1, r1 := rng.Intn(div.Cols), rng.Intn(div.Rows)
		c2, r2 := rng.Intn(div.Cols), rng.Intn(div.Rows)
		p1, p2 := div.CellCenter(c1, r1), div.CellCenter(c2, r2)
		f1, f2 := div.FaceAt(p1), div.FaceAt(p2)
		sameFace := f1.ID == f2.ID
		sameSig := vector.Equal(Signature(rc, p1), Signature(rc, p2))
		if sameFace != sameSig {
			t.Fatalf("Lemma 1 violated: sameFace=%v sameSig=%v at %v vs %v",
				sameFace, sameSig, p1, p2)
		}
	}
}

func TestFaceSignatureMatchesMembers(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	div, _ := Divide(fieldRect, rc, 2)
	rng := randx.New(6)
	for trial := 0; trial < 300; trial++ {
		c, r := rng.Intn(div.Cols), rng.Intn(div.Rows)
		p := div.CellCenter(c, r)
		f := div.FaceAt(p)
		if !vector.Equal(f.Signature, Signature(rc, p)) {
			t.Fatalf("face %d signature mismatch at %v", f.ID, p)
		}
	}
}

func TestFaceBySignature(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	div, _ := Divide(fieldRect, rc, 2)
	for _, f := range div.Faces[:min(10, len(div.Faces))] {
		got := div.FaceBySignature(f.Signature)
		if got == nil || got.ID != f.ID {
			t.Errorf("FaceBySignature failed for face %d", f.ID)
		}
	}
	// Unknown signature.
	weird := vector.New(4) // 6-dim zero vector may exist; build impossible one
	for k := range weird {
		weird[k] = vector.Star
	}
	if div.FaceBySignature(weird) != nil {
		t.Error("all-star signature should have no face")
	}
}

func TestNeighborsSymmetricAndSorted(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	div, _ := Divide(fieldRect, rc, 2)
	for _, f := range div.Faces {
		prev := -1
		for _, nb := range f.Neighbors {
			if nb <= prev {
				t.Fatalf("face %d neighbors not strictly ascending: %v", f.ID, f.Neighbors)
			}
			prev = nb
			if nb == f.ID {
				t.Fatalf("face %d lists itself as neighbor", f.ID)
			}
			// Symmetry.
			found := false
			for _, back := range div.Faces[nb].Neighbors {
				if back == f.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighbor link %d→%d not symmetric", f.ID, nb)
			}
		}
	}
}

func TestTheorem1MostNeighborsDifferByOne(t *testing.T) {
	// Theorem 1: neighbor faces' signatures differ by Euclidean norm 1.
	// Under the approximate grid division, boundaries can cross inside a
	// single cell, so a minority of links jump by more; assert the
	// majority obey the theorem.
	rc := gridClassifier(t, 4, defaultC())
	div, _ := Divide(fieldRect, rc, 1)
	obey, total := 0, 0
	for _, f := range div.Faces {
		for _, nb := range f.Neighbors {
			if nb < f.ID {
				continue // count each undirected link once
			}
			total++
			if vector.HammingNeighbors(f.Signature, div.Faces[nb].Signature) {
				obey++
			}
		}
	}
	if total == 0 {
		t.Fatal("no links")
	}
	if frac := float64(obey) / float64(total); frac < 0.5 {
		t.Errorf("only %.1f%% of links obey Theorem 1 (%d/%d)", 100*frac, obey, total)
	}
}

func TestCellOfClamping(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	div, _ := Divide(fieldRect, rc, 1)
	c, r := div.CellOf(geom.Pt(-50, 500))
	if c != 0 || r != div.Rows-1 {
		t.Errorf("CellOf outside = (%d,%d), want (0,%d)", c, r, div.Rows-1)
	}
	c, r = div.CellOf(geom.Pt(100, 100)) // on max corner
	if c != div.Cols-1 || r != div.Rows-1 {
		t.Errorf("CellOf max corner = (%d,%d)", c, r)
	}
}

func TestCentroidInsideField(t *testing.T) {
	rc := gridClassifier(t, 5, defaultC())
	div, _ := Divide(fieldRect, rc, 2)
	for _, f := range div.Faces {
		if !fieldRect.Contains(f.Centroid) {
			t.Errorf("face %d centroid %v outside field", f.ID, f.Centroid)
		}
	}
}

func TestMoreNodesMoreFaces(t *testing.T) {
	divs := make([]int, 0, 3)
	for _, n := range []int{4, 9, 16} {
		rc := gridClassifier(t, n, defaultC())
		div, err := Divide(fieldRect, rc, 2)
		if err != nil {
			t.Fatal(err)
		}
		divs = append(divs, div.NumFaces())
	}
	if !(divs[0] < divs[1] && divs[1] < divs[2]) {
		t.Errorf("face count should grow with n: %v", divs)
	}
}

func TestUncertainBoundariesSplitCertainFaces(t *testing.T) {
	// Fig. 3: the uncertain division (C>1) must produce at least as many
	// faces as the certain bisector division (C=1).
	certain := gridClassifier(t, 4, 1)
	uncertain := gridClassifier(t, 4, defaultC())
	dc, _ := Divide(fieldRect, certain, 1)
	du, _ := Divide(fieldRect, uncertain, 1)
	if du.NumFaces() < dc.NumFaces() {
		t.Errorf("uncertain division has fewer faces (%d) than certain (%d)",
			du.NumFaces(), dc.NumFaces())
	}
	if du.UncertainFraction() <= 0 {
		t.Error("uncertain division should have flipped cells")
	}
	if dc.UncertainFraction() != 0 {
		t.Errorf("certain division reports %v uncertain fraction, want 0",
			dc.UncertainFraction())
	}
}

func TestLargeCWipesOutCertainFaces(t *testing.T) {
	// Fig. 3(c): when C is large enough, no face has a fully certain
	// signature for every pair of nearby nodes. With huge C every
	// in-field pair comparison is uncertain.
	rc := gridClassifier(t, 4, 1e6)
	div, _ := Divide(fieldRect, rc, 5)
	if got := div.UncertainFraction(); got != 1 {
		t.Errorf("uncertain fraction = %v, want 1 for huge C", got)
	}
}

func TestMeanFaceAreaAndLinks(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	div, _ := Divide(fieldRect, rc, 1)
	if got := div.MeanFaceArea(); math.Abs(got-fieldRect.Area()/float64(div.NumFaces())) > 1e-9 {
		t.Errorf("MeanFaceArea = %v", got)
	}
	if div.NeighborLinkCount() <= 0 {
		t.Error("expected some neighbor links")
	}
	if got := div.CellArea(); got != 1 {
		t.Errorf("CellArea = %v, want 1", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// divisionsIdentical asserts every externally observable part of two
// divisions matches byte for byte: grid dims, raster, face IDs,
// signatures, centroids, cell counts, neighbors and per-link diffs.
func divisionsIdentical(t *testing.T, want, got *Division) {
	t.Helper()
	if want.Cols != got.Cols || want.Rows != got.Rows {
		t.Fatalf("grid %dx%d vs %dx%d", got.Cols, got.Rows, want.Cols, want.Rows)
	}
	if len(want.cellFace) != len(got.cellFace) {
		t.Fatalf("raster length %d vs %d", len(got.cellFace), len(want.cellFace))
	}
	for i := range want.cellFace {
		if want.cellFace[i] != got.cellFace[i] {
			t.Fatalf("cell %d face %d vs %d", i, got.cellFace[i], want.cellFace[i])
		}
	}
	if len(want.Faces) != len(got.Faces) {
		t.Fatalf("%d faces vs %d", len(got.Faces), len(want.Faces))
	}
	for id := range want.Faces {
		w, g := &want.Faces[id], &got.Faces[id]
		if w.ID != g.ID || w.Cells != g.Cells {
			t.Fatalf("face %d: ID/Cells %d/%d vs %d/%d", id, g.ID, g.Cells, w.ID, w.Cells)
		}
		if !vector.Equal(w.Signature, g.Signature) {
			t.Fatalf("face %d signature differs", id)
		}
		if w.Centroid != g.Centroid { // exact float equality, not tolerance
			t.Fatalf("face %d centroid %v vs %v", id, g.Centroid, w.Centroid)
		}
		if len(w.Neighbors) != len(g.Neighbors) {
			t.Fatalf("face %d neighbor count %d vs %d", id, len(g.Neighbors), len(w.Neighbors))
		}
		for ni := range w.Neighbors {
			if w.Neighbors[ni] != g.Neighbors[ni] {
				t.Fatalf("face %d neighbor %d: %d vs %d", id, ni, g.Neighbors[ni], w.Neighbors[ni])
			}
			if len(w.NeighborDiffs[ni]) != len(g.NeighborDiffs[ni]) {
				t.Fatalf("face %d diff %d length differs", id, ni)
			}
			for k := range w.NeighborDiffs[ni] {
				if w.NeighborDiffs[ni][k] != g.NeighborDiffs[ni][k] {
					t.Fatalf("face %d diff %d component differs", id, ni)
				}
			}
		}
	}
}

func TestDivideWorkersByteIdentical(t *testing.T) {
	// The acceptance bar for the parallel signature pass: for every worker
	// count the Division is byte-identical to the serial one — face IDs in
	// row-major first-appearance order, identical raster, signatures,
	// centroids (exact float equality) and neighbor links.
	for _, n := range []int{4, 9, 16} {
		rc := gridClassifier(t, n, defaultC())
		serial, err := DivideWorkers(fieldRect, rc, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 4, 7, 16, 1000} {
			par, err := DivideWorkers(fieldRect, rc, 2, workers)
			if err != nil {
				t.Fatal(err)
			}
			divisionsIdentical(t, serial, par)
		}
		// The default entry point (NumCPU workers) matches too.
		def, err := Divide(fieldRect, rc, 2)
		if err != nil {
			t.Fatal(err)
		}
		divisionsIdentical(t, serial, def)
	}
}

func TestDivideCeilingGridForNonDividingCellSize(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	// 0.7 m cells on a 100 m field: ⌈142.857⌉ = 143 columns; the last
	// column overhangs (143·0.7 = 100.1 m) but the field is covered.
	div, err := Divide(fieldRect, rc, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if div.Cols != 143 || div.Rows != 143 {
		t.Fatalf("grid %dx%d, want 143x143", div.Cols, div.Rows)
	}
	// 0.9 m cells: ⌈111.11⌉ = 112. The old round-to-nearest gave 111,
	// leaving a 0.1 m strip of the field in no cell.
	div, err = Divide(fieldRect, rc, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if div.Cols != 112 || div.Rows != 112 {
		t.Fatalf("grid %dx%d, want 112x112", div.Cols, div.Rows)
	}
	if covered := float64(div.Cols) * 0.9; covered < fieldRect.Width() {
		t.Fatalf("grid covers %.2f m of a %.0f m field", covered, fieldRect.Width())
	}
	// Exactly dividing sizes are untouched by the ceiling (no FP jitter).
	for _, tc := range []struct {
		cell float64
		want int
	}{{1, 100}, {2, 50}, {4, 25}, {0.5, 200}, {0.1, 1000}} {
		div, err := Divide(fieldRect, rc, tc.cell)
		if err != nil {
			t.Fatal(err)
		}
		if div.Cols != tc.want || div.Rows != tc.want {
			t.Fatalf("cell %v: grid %dx%d, want %dx%d", tc.cell, div.Cols, div.Rows, tc.want, tc.want)
		}
	}
	// A cell larger than the field is rejected outright.
	if _, err := Divide(fieldRect, rc, 150); err == nil {
		t.Error("cell size 150 on a 100 m field should be rejected")
	}
	// Every field point still lands in a cell and FaceAt stays in range.
	div, _ = Divide(fieldRect, rc, 0.7)
	rng := randx.New(7)
	for i := 0; i < 500; i++ {
		p := geom.Pt(rng.Uniform(0, 100), rng.Uniform(0, 100))
		if f := div.FaceAt(p); f == nil {
			t.Fatalf("no face at %v", p)
		}
	}
}

func TestSignatureDistanceFastPathMatchesClassify(t *testing.T) {
	// RatioClassifier implements the DistanceClassifier fast path; the
	// signature it yields must agree with pair-by-pair Classify exactly.
	rc := gridClassifier(t, 9, defaultC())
	n := rc.NumNodes()
	rng := randx.New(8)
	for trial := 0; trial < 200; trial++ {
		p := geom.Pt(rng.Uniform(-10, 110), rng.Uniform(-10, 110))
		fast := Signature(rc, p)
		k := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if want := rc.Classify(p, i, j); fast[k] != want {
					t.Fatalf("pair (%d,%d) at %v: fast %v vs classify %v", i, j, p, fast[k], want)
				}
				k++
			}
		}
	}
}
