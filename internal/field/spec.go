package field

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"

	"fttt/internal/geom"
	"fttt/internal/vector"
)

// Spec describes one division build completely: everything the
// approximate grid division of Sec. 4.3 consumes. Two specs with equal
// content produce byte-identical divisions (DivideWorkers' determinism
// contract), which is what makes the content hash of Key a safe cache
// address: internal/fieldcache shares one immutable *Division across
// every consumer whose spec hashes alike.
type Spec struct {
	// Field is the monitor area.
	Field geom.Rect
	// Nodes are the sensor positions in ID order.
	Nodes []geom.Point
	// C is the uncertainty constant of eq. 3 — the RF/resolution
	// parameters (β, σ_X, ε) enter the division only through it.
	C float64
	// CellSize is the grid cell edge in metres.
	CellSize float64
	// Workers is the signature-pass worker count handed to
	// DivideWorkers; ≤ 0 selects runtime.NumCPU(). It is a construction
	// latency knob only — the output is byte-identical for every
	// setting — so Key excludes it.
	Workers int
}

// specKeyVersion tags the canonical encoding Key hashes; bump it if the
// encoding (or anything the division derives from) ever changes shape,
// so stale disk-spill entries can never alias a new build.
const specKeyVersion = "fttt-divspec/v1"

// Key returns the spec's content address: the hex SHA-256 of a
// canonical binary encoding of (field rect, node coordinates, C, cell
// size). Workers is excluded — it does not affect the output.
func (s Spec) Key() string {
	h := sha256.New()
	h.Write([]byte(specKeyVersion))
	var buf [8]byte
	f64 := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	f64(s.Field.Min.X)
	f64(s.Field.Min.Y)
	f64(s.Field.Max.X)
	f64(s.Field.Max.Y)
	f64(s.C)
	f64(s.CellSize)
	binary.LittleEndian.PutUint64(buf[:], uint64(len(s.Nodes)))
	h.Write(buf[:])
	for _, n := range s.Nodes {
		f64(n.X)
		f64(n.Y)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Divide builds the division the spec describes: a RatioClassifier over
// the nodes with constant C, then the (possibly parallel) signature
// pass. The result is byte-identical for every Workers setting.
func (s Spec) Divide() (*Division, error) {
	rc, err := NewRatioClassifier(s.Nodes, s.C)
	if err != nil {
		return nil, err
	}
	w := s.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	return DivideWorkers(s.Field, rc, s.CellSize, w)
}

// Matches cheaply verifies that d could have been built from this spec:
// field rect, cell size, raster dimensions and the signature dimension
// implied by the node count must all agree. It cannot prove the node
// coordinates match (that would cost a full re-division) — it exists to
// fail fast on a mixed-up cache entry or disk-spill file before a
// mismatched division corrupts estimates.
func (s Spec) Matches(d *Division) error {
	if d.Field != s.Field {
		return fmt.Errorf("field: division field %v, spec wants %v", d.Field, s.Field)
	}
	if d.CellSize != s.CellSize {
		return fmt.Errorf("field: division cell size %v, spec wants %v", d.CellSize, s.CellSize)
	}
	cols, rows, err := gridDims(s.Field, s.CellSize)
	if err != nil {
		return err
	}
	if d.Cols != cols || d.Rows != rows {
		return fmt.Errorf("field: division raster %dx%d, spec wants %dx%d", d.Cols, d.Rows, cols, rows)
	}
	want := vector.NumPairs(len(s.Nodes))
	if len(d.Faces) == 0 {
		return fmt.Errorf("field: division has no faces")
	}
	if got := d.Faces[0].Signature.Dim(); got != want {
		return fmt.Errorf("field: division signature dimension %d, spec's %d nodes want %d pairs",
			got, len(s.Nodes), want)
	}
	return nil
}

// ApproxBytes estimates the division's resident memory: the raster, the
// face records with their signatures, neighbor lists and per-link
// diffs, and the signature index. The estimate feeds the fieldcache
// bytes gauge; it is deliberately cheap and approximate (slice headers
// and map overhead are flat constants), not an exact accounting.
func (d *Division) ApproxBytes() int64 {
	const (
		ptrSize    = 8
		faceHeader = 128 // Face struct: ID, centroid, cells, 3 slice headers
		mapEntry   = 48  // bySig bucket overhead per entry, excluding the key
	)
	total := int64(len(d.cellFace)) * ptrSize
	for i := range d.Faces {
		f := &d.Faces[i]
		total += faceHeader
		total += int64(len(f.Signature)) * ptrSize
		total += int64(len(f.Neighbors)) * ptrSize
		for _, diff := range f.NeighborDiffs {
			total += 24 + int64(len(diff))*ptrSize
		}
		// bySig: one entry per face, key is the packed signature string.
		total += mapEntry + int64(len(f.Signature))
	}
	total += d.soa.ApproxBytes()
	return total
}
