package field

import (
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/vector"
)

func TestAdaptiveDivideValidation(t *testing.T) {
	rc := gridClassifier(t, 4, defaultC())
	if _, err := AdaptiveDivide(fieldRect, rc, 8, 0); err == nil {
		t.Error("fine=0 should fail")
	}
	if _, err := AdaptiveDivide(fieldRect, rc, 5, 2); err == nil {
		t.Error("non-multiple coarse should fail")
	}
	if _, err := AdaptiveDivide(fieldRect, rc, 1000, 500); err == nil {
		t.Error("cells larger than field should fail")
	}
	if _, err := AdaptiveDivide(fieldRect, rc, 8, 2); err != nil {
		t.Errorf("valid adaptive division rejected: %v", err)
	}
}

func TestAdaptiveMatchesUniformMostCells(t *testing.T) {
	rc := gridClassifier(t, 9, defaultC())
	uniform, err := Divide(fieldRect, rc, 2)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := AdaptiveDivide(fieldRect, rc, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Cols != uniform.Cols || adaptive.Rows != uniform.Rows {
		t.Fatalf("raster dims differ: %dx%d vs %dx%d",
			adaptive.Cols, adaptive.Rows, uniform.Cols, uniform.Rows)
	}
	agree, total := 0, 0
	for r := 0; r < uniform.Rows; r++ {
		for c := 0; c < uniform.Cols; c++ {
			p := uniform.CellCenter(c, r)
			total++
			if vector.Equal(uniform.FaceAt(p).Signature, adaptive.FaceAt(p).Signature) {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.97 {
		t.Errorf("only %.1f%% of cells agree with the uniform division", 100*frac)
	}
}

func TestAdaptiveFaceInvariants(t *testing.T) {
	rc := gridClassifier(t, 9, defaultC())
	div, err := AdaptiveDivide(fieldRect, rc, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	totalCells := 0
	for _, f := range div.Faces {
		totalCells += f.Cells
		if !fieldRect.Contains(f.Centroid) {
			t.Errorf("face %d centroid %v outside field", f.ID, f.Centroid)
		}
		for _, nb := range f.Neighbors {
			if nb == f.ID {
				t.Errorf("face %d is its own neighbor", f.ID)
			}
		}
	}
	if totalCells != div.Cols*div.Rows {
		t.Errorf("cells sum to %d, want %d", totalCells, div.Cols*div.Rows)
	}
}

func TestAdaptiveLemma1StillHolds(t *testing.T) {
	rc := gridClassifier(t, 5, defaultC())
	div, err := AdaptiveDivide(fieldRect, rc, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(3)
	for trial := 0; trial < 300; trial++ {
		c1, r1 := rng.Intn(div.Cols), rng.Intn(div.Rows)
		c2, r2 := rng.Intn(div.Cols), rng.Intn(div.Rows)
		f1 := div.FaceAt(div.CellCenter(c1, r1))
		f2 := div.FaceAt(div.CellCenter(c2, r2))
		if (f1.ID == f2.ID) != vector.Equal(f1.Signature, f2.Signature) {
			t.Fatal("Lemma 1 violated in adaptive division")
		}
	}
}

func TestAdaptiveCoarseEqualsFineDegenerate(t *testing.T) {
	// coarse == fine degenerates to the uniform division exactly.
	rc := gridClassifier(t, 4, defaultC())
	uniform, _ := Divide(fieldRect, rc, 4)
	adaptive, err := AdaptiveDivide(fieldRect, rc, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.NumFaces() != uniform.NumFaces() {
		t.Errorf("face counts differ: %d vs %d", adaptive.NumFaces(), uniform.NumFaces())
	}
	for r := 0; r < uniform.Rows; r++ {
		for c := 0; c < uniform.Cols; c++ {
			p := uniform.CellCenter(c, r)
			if !vector.Equal(uniform.FaceAt(p).Signature, adaptive.FaceAt(p).Signature) {
				t.Fatalf("cell (%d,%d) signatures differ", c, r)
			}
		}
	}
}

func TestAdaptiveHandlesRaggedBlocks(t *testing.T) {
	// Field whose fine-grid dims are not multiples of the block ratio.
	rect := geom.NewRect(geom.Pt(0, 0), geom.Pt(90, 70))
	dep := deploy.Grid(rect, 4)
	rc, err := NewRatioClassifier(dep.Positions(), defaultC())
	if err != nil {
		t.Fatal(err)
	}
	div, err := AdaptiveDivide(rect, rc, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if div.Cols != 45 || div.Rows != 35 {
		t.Fatalf("dims %dx%d, want 45x35", div.Cols, div.Rows)
	}
	total := 0
	for _, f := range div.Faces {
		total += f.Cells
	}
	if total != 45*35 {
		t.Errorf("cells sum to %d", total)
	}
}

func BenchmarkDivideUniform(b *testing.B) {
	dep := deploy.Grid(fieldRect, 16)
	rc, _ := NewRatioClassifier(dep.Positions(), 1.19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Divide(fieldRect, rc, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDivideAdaptive(b *testing.B) {
	dep := deploy.Grid(fieldRect, 16)
	rc, _ := NewRatioClassifier(dep.Positions(), 1.19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AdaptiveDivide(fieldRect, rc, 10, 1); err != nil {
			b.Fatal(err)
		}
	}
}
