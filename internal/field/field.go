// Package field divides the monitor area into faces and builds their
// signature vectors, the preprocessing phase of Sec. 4.3.
//
// Exact face extraction from the arrangement of O(n²) Apollonius-circle
// pairs is a hard computational-geometry problem; the paper instead uses
// the approximate grid division of Sec. 4.3: overlay a square grid,
// compute each cell's signature vector, and group cells with identical
// signatures into faces (Lemma 1). Face centroids come from eq. 5, and
// neighbor-face links (Def. 8 / Theorem 1) come from 4-connected cell
// adjacency between cells of different faces.
package field

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"fttt/internal/geom"
	"fttt/internal/vector"
)

// PairClassifier assigns the geometric node-pair value of a location:
// for the pair (i, j) with i < j it returns Nearer (+1) when the point is
// firmly nearer node i, Farther (-1) when firmly nearer node j, and
// Flipped (0) inside the pair's uncertain area.
type PairClassifier interface {
	Classify(p geom.Point, i, j int) vector.Value
	// NumNodes returns the number of nodes the classifier covers.
	NumNodes() int
}

// RatioClassifier classifies by distance ratio against the uncertainty
// constant C of eq. 3: value +1 iff d_i ≤ d_j / C, -1 iff d_i ≥ C·d_j,
// else 0. C == 1 degenerates to the certain perpendicular-bisector
// division used by the sequence-matching baselines (Fig. 3(a)); C > 1
// yields the Apollonius-bounded uncertain areas (Fig. 3(b)).
type RatioClassifier struct {
	Nodes []geom.Point
	C     float64
}

// NewRatioClassifier validates and returns a ratio classifier.
func NewRatioClassifier(nodes []geom.Point, c float64) (*RatioClassifier, error) {
	if c < 1 {
		return nil, fmt.Errorf("field: uncertainty constant C must be >= 1, got %v", c)
	}
	if len(nodes) < 2 {
		return nil, fmt.Errorf("field: need at least 2 nodes, got %d", len(nodes))
	}
	return &RatioClassifier{Nodes: nodes, C: c}, nil
}

// DistanceClassifier is an optional PairClassifier extension for
// classifiers whose pair decision depends only on the point's distances
// to the two nodes. Divide uses it to precompute each cell's n node
// distances once and classify all C(n,2) pairs from the cache — n
// distance evaluations per cell instead of the 2·C(n,2) a naive
// pair-by-pair classification performs.
type DistanceClassifier interface {
	PairClassifier
	// AppendDistances appends the distance from p to every node, in node
	// order, and returns the extended slice.
	AppendDistances(dst []float64, p geom.Point) []float64
	// ClassifyDistances classifies a pair (i, j), i < j, from the
	// precomputed distances di and dj to the two nodes. It must agree
	// exactly with Classify.
	ClassifyDistances(di, dj float64) vector.Value
}

// NumNodes implements PairClassifier.
func (rc *RatioClassifier) NumNodes() int { return len(rc.Nodes) }

// Classify implements PairClassifier.
func (rc *RatioClassifier) Classify(p geom.Point, i, j int) vector.Value {
	return rc.ClassifyDistances(p.Dist(rc.Nodes[i]), p.Dist(rc.Nodes[j]))
}

// AppendDistances implements DistanceClassifier.
func (rc *RatioClassifier) AppendDistances(dst []float64, p geom.Point) []float64 {
	for _, node := range rc.Nodes {
		dst = append(dst, p.Dist(node))
	}
	return dst
}

// ClassifyDistances implements DistanceClassifier.
func (rc *RatioClassifier) ClassifyDistances(di, dj float64) vector.Value {
	switch {
	case di*rc.C <= dj:
		return vector.Nearer
	case dj*rc.C <= di:
		return vector.Farther
	default:
		return vector.Flipped
	}
}

// Signature returns the full signature vector of point p (Def. 6).
func Signature(c PairClassifier, p geom.Point) vector.Vector {
	v := vector.New(c.NumNodes())
	signatureInto(c, p, v, nil)
	return v
}

// signatureInto fills v (dimension C(n,2)) with the signature of p. When
// the classifier supports the distance fast path the n node distances are
// computed once into distBuf; the possibly-grown buffer is returned for
// reuse by the next cell.
func signatureInto(c PairClassifier, p geom.Point, v vector.Vector, distBuf []float64) []float64 {
	n := c.NumNodes()
	if dc, ok := c.(DistanceClassifier); ok {
		distBuf = dc.AppendDistances(distBuf[:0], p)
		k := 0
		for i := 0; i < n; i++ {
			di := distBuf[i]
			for j := i + 1; j < n; j++ {
				v[k] = dc.ClassifyDistances(di, distBuf[j])
				k++
			}
		}
		return distBuf
	}
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v[k] = c.Classify(p, i, j)
			k++
		}
	}
	return distBuf
}

// Face is one equivalence class of grid cells sharing a signature vector.
type Face struct {
	// ID indexes the face within its Division.
	ID int
	// Signature is the face's signature vector (Lemma 1: unique per face).
	Signature vector.Vector
	// Centroid is the mean of the member cell centres (eq. 5) — the
	// location estimate reported when the target matches this face.
	Centroid geom.Point
	// Cells is the number of member grid cells; Cells × cellArea
	// approximates the face area (intra-face error of Sec. 5.2).
	Cells int
	// Neighbors lists the IDs of faces sharing at least one 4-connected
	// cell edge with this face, in ascending order.
	Neighbors []int
	// NeighborDiffs[i] lists the signature components in which this face
	// differs from Neighbors[i] — usually exactly one (Theorem 1). The
	// incremental matcher uses it to update a match distance in O(|diff|)
	// per hop instead of recomputing all C(n,2) components.
	NeighborDiffs [][]int
}

// Division is the preprocessed monitor area: the face set, the signature
// index, and the cell-to-face raster.
type Division struct {
	Field    geom.Rect
	CellSize float64
	Cols     int
	Rows     int
	Faces    []Face

	// cellFace[r*Cols+c] is the face ID of the cell at column c, row r.
	cellFace []int
	// bySig maps a ternary signature key to its face ID.
	bySig map[string]int
	// soa is the quantized structure-of-arrays signature store the batch
	// matcher streams; nil when the signatures do not quantize (exotic
	// custom classifiers). Built once alongside the faces, immutable.
	soa *SigSoA
}

// SoA returns the division's quantized structure-of-arrays signature
// store, or nil when the signatures do not quantize losslessly into
// int8 — callers must fall back to the AoS Face.Signature path then.
func (d *Division) SoA() *SigSoA { return d.soa }

// dimEps guards the ceiling grid division against floating-point noise:
// an extent/cellSize quotient within 1e-9 of an integer counts as exact.
const dimEps = 1e-9

// gridDims returns the cell counts per axis for the approximate grid
// division: ⌈extent/cellSize⌉, so the grid always covers the whole field.
// When cellSize does not divide an extent the last row/column of cells
// overhangs the field's max edge (previously the count was rounded to
// nearest, which could leave up to half a cell of the field uncovered).
// A cell larger than either field extent is rejected.
func gridDims(fieldRect geom.Rect, cellSize float64) (cols, rows int, err error) {
	if cellSize <= 0 {
		return 0, 0, fmt.Errorf("field: non-positive cell size %v", cellSize)
	}
	if cellSize > fieldRect.Width() || cellSize > fieldRect.Height() {
		return 0, 0, fmt.Errorf("field: cell size %v too large for field %vx%v",
			cellSize, fieldRect.Width(), fieldRect.Height())
	}
	cols = int(math.Ceil(fieldRect.Width()/cellSize - dimEps))
	rows = int(math.Ceil(fieldRect.Height()/cellSize - dimEps))
	return cols, rows, nil
}

// Divide performs the approximate grid division of Sec. 4.3 with square
// cells of the given size. Cell centres follow Fig. 6(b): the bottom-left
// cell centre is the origin corner plus half a cell; the grid has
// ⌈extent/cellSize⌉ cells per axis, so for non-dividing cell sizes the
// last row/column overhangs the field (the field is always fully
// covered). The signature pass is fanned across runtime.NumCPU() workers;
// the result is identical for every worker count (see DivideWorkers).
func Divide(fieldRect geom.Rect, classifier PairClassifier, cellSize float64) (*Division, error) {
	return DivideWorkers(fieldRect, classifier, cellSize, runtime.NumCPU())
}

// DivideWorkers is Divide with an explicit worker count for the signature
// pass (≤ 1 selects the serial path). The division is deterministic and
// byte-identical for every worker count: face IDs follow the row-major
// first-appearance order of the serial scan — row shards are merged in
// shard order, and a shard's local first appearances are already in
// row-major order, so the concatenation reproduces the global scan order
// exactly — and centroids are accumulated in a separate serial row-major
// pass so float summation order never depends on the sharding. The
// classifier must be safe for concurrent reads (RatioClassifier is).
func DivideWorkers(fieldRect geom.Rect, classifier PairClassifier, cellSize float64, workers int) (*Division, error) {
	cols, rows, err := gridDims(fieldRect, cellSize)
	if err != nil {
		return nil, err
	}

	d := &Division{
		Field:    fieldRect,
		CellSize: cellSize,
		Cols:     cols,
		Rows:     rows,
		cellFace: make([]int, cols*rows),
		bySig:    make(map[string]int),
	}

	// Pass 1: signature per cell; group into faces.
	var accums []*faceAccum
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		accums = d.signaturePassSerial(classifier)
	} else {
		accums = d.signaturePassParallel(classifier, workers)
	}

	// Pass 2: centroid accumulation, always serial and row-major so the
	// floating-point summation order is independent of the worker count.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			accums[d.cellFace[r*cols+c]].add(d.CellCenter(c, r))
		}
	}
	d.finalizeFaces(accums)
	return d, nil
}

// signaturePassSerial fills cellFace and bySig in one row-major scan,
// reusing a scratch vector and distance buffer across cells (a signature
// is only cloned when it starts a new face).
func (d *Division) signaturePassSerial(classifier PairClassifier) []*faceAccum {
	var accums []*faceAccum
	scratch := vector.New(classifier.NumNodes())
	var dists []float64
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			dists = signatureInto(classifier, d.CellCenter(c, r), scratch, dists)
			key := scratch.Key()
			id, ok := d.bySig[key]
			if !ok {
				id = len(accums)
				d.bySig[key] = id
				accums = append(accums, &faceAccum{sig: scratch.Clone()})
			}
			d.cellFace[r*d.Cols+c] = id
		}
	}
	return accums
}

// divideShard is one worker's slice of the signature pass: a contiguous
// band of rows plus the shard-local face table in first-appearance order.
type divideShard struct {
	startRow, endRow int
	sigs             []vector.Vector
	keys             []string
}

// signaturePassParallel shards the rows across workers. Each worker
// classifies its band into shard-local face IDs (written into the
// worker's disjoint region of cellFace); the shards are then merged in
// order, assigning global IDs by first appearance and remapping the
// raster.
func (d *Division) signaturePassParallel(classifier PairClassifier, workers int) []*faceAccum {
	shards := make([]divideShard, workers)
	base, extra := d.Rows/workers, d.Rows%workers
	row := 0
	for s := range shards {
		h := base
		if s < extra {
			h++
		}
		shards[s].startRow, shards[s].endRow = row, row+h
		row += h
	}

	var wg sync.WaitGroup
	for s := range shards {
		wg.Add(1)
		go func(sh *divideShard) {
			defer wg.Done()
			local := make(map[string]int)
			scratch := vector.New(classifier.NumNodes())
			var dists []float64
			for r := sh.startRow; r < sh.endRow; r++ {
				for c := 0; c < d.Cols; c++ {
					dists = signatureInto(classifier, d.CellCenter(c, r), scratch, dists)
					key := scratch.Key()
					id, ok := local[key]
					if !ok {
						id = len(sh.sigs)
						local[key] = id
						sh.sigs = append(sh.sigs, scratch.Clone())
						sh.keys = append(sh.keys, key)
					}
					d.cellFace[r*d.Cols+c] = id // shard-local; remapped below
				}
			}
		}(&shards[s])
	}
	wg.Wait()

	var accums []*faceAccum
	for s := range shards {
		sh := &shards[s]
		remap := make([]int, len(sh.sigs))
		for li, key := range sh.keys {
			gid, ok := d.bySig[key]
			if !ok {
				gid = len(accums)
				d.bySig[key] = gid
				accums = append(accums, &faceAccum{sig: sh.sigs[li]})
			}
			remap[li] = gid
		}
		for ci := sh.startRow * d.Cols; ci < sh.endRow*d.Cols; ci++ {
			d.cellFace[ci] = remap[d.cellFace[ci]]
		}
	}
	return accums
}

// faceAccum accumulates one face's cells during division.
type faceAccum struct {
	sig   vector.Vector
	sumX  float64
	sumY  float64
	cells int
}

func (a *faceAccum) add(center geom.Point) {
	a.sumX += center.X
	a.sumY += center.Y
	a.cells++
}

// finalizeFaces builds the Face records from the accumulated cells and
// the filled cellFace raster: neighbor links from 4-connected adjacency,
// per-link signature diffs (Theorem 1 machinery), and centroids (eq. 5).
func (d *Division) finalizeFaces(accums []*faceAccum) {
	neighborSet := make([]map[int]struct{}, len(accums))
	for i := range neighborSet {
		neighborSet[i] = make(map[int]struct{})
	}
	link := func(a, b int) {
		if a != b {
			neighborSet[a][b] = struct{}{}
			neighborSet[b][a] = struct{}{}
		}
	}
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			id := d.cellFace[r*d.Cols+c]
			if c+1 < d.Cols {
				link(id, d.cellFace[r*d.Cols+c+1])
			}
			if r+1 < d.Rows {
				link(id, d.cellFace[(r+1)*d.Cols+c])
			}
		}
	}
	d.Faces = make([]Face, len(accums))
	for id, a := range accums {
		nbrs := make([]int, 0, len(neighborSet[id]))
		for nb := range neighborSet[id] {
			nbrs = append(nbrs, nb)
		}
		sort.Ints(nbrs)
		diffs := make([][]int, len(nbrs))
		for ni, nb := range nbrs {
			diffs[ni] = signatureDiff(a.sig, accums[nb].sig)
		}
		d.Faces[id] = Face{
			ID:            id,
			Signature:     a.sig,
			Centroid:      geom.Pt(a.sumX/float64(a.cells), a.sumY/float64(a.cells)),
			Cells:         a.cells,
			Neighbors:     nbrs,
			NeighborDiffs: diffs,
		}
	}
	d.soa = buildSigSoA(d.Faces)
}

// signatureDiff returns the component indices where a and b differ.
func signatureDiff(a, b vector.Vector) []int {
	var out []int
	for k := range a {
		if a[k] != b[k] {
			out = append(out, k)
		}
	}
	return out
}

// CellCenter returns the centre of the cell at column c, row r.
func (d *Division) CellCenter(c, r int) geom.Point {
	return geom.Pt(
		d.Field.Min.X+(float64(c)+0.5)*d.CellSize,
		d.Field.Min.Y+(float64(r)+0.5)*d.CellSize,
	)
}

// CellOf returns the grid cell containing p, clamped to the grid.
func (d *Division) CellOf(p geom.Point) (c, r int) {
	c = int((p.X - d.Field.Min.X) / d.CellSize)
	r = int((p.Y - d.Field.Min.Y) / d.CellSize)
	if c < 0 {
		c = 0
	}
	if c >= d.Cols {
		c = d.Cols - 1
	}
	if r < 0 {
		r = 0
	}
	if r >= d.Rows {
		r = d.Rows - 1
	}
	return c, r
}

// FaceAt returns the face containing the point p (by its grid cell).
func (d *Division) FaceAt(p geom.Point) *Face {
	c, r := d.CellOf(p)
	return &d.Faces[d.cellFace[r*d.Cols+c]]
}

// FaceBySignature returns the face with exactly this ternary signature, or
// nil if no grid cell produced it.
func (d *Division) FaceBySignature(sig vector.Vector) *Face {
	id, ok := d.bySig[sig.Key()]
	if !ok {
		return nil
	}
	return &d.Faces[id]
}

// NumFaces returns the number of distinct faces.
func (d *Division) NumFaces() int { return len(d.Faces) }

// CellArea returns the area of one grid cell.
func (d *Division) CellArea() float64 { return d.CellSize * d.CellSize }

// MeanFaceArea returns the average face area in m².
func (d *Division) MeanFaceArea() float64 {
	if len(d.Faces) == 0 {
		return 0
	}
	return d.Field.Area() / float64(len(d.Faces))
}

// NeighborLinkCount returns the total number of undirected neighbor links
// |L| (Sec. 4.4: O(n⁴) like the face count).
func (d *Division) NeighborLinkCount() int {
	total := 0
	for _, f := range d.Faces {
		total += len(f.Neighbors)
	}
	return total / 2
}

// UncertainFraction returns the fraction of grid cells whose signature has
// at least one Flipped component — an estimate of how much of the field
// lies in some pair's uncertain area (Fig. 3's shrinking certain faces).
func (d *Division) UncertainFraction() float64 {
	if d.Cols*d.Rows == 0 {
		return 0
	}
	cells := 0
	for _, f := range d.Faces {
		if f.Signature.CountFlipped() > 0 {
			cells += f.Cells
		}
	}
	return float64(cells) / float64(d.Cols*d.Rows)
}
