// Package field divides the monitor area into faces and builds their
// signature vectors, the preprocessing phase of Sec. 4.3.
//
// Exact face extraction from the arrangement of O(n²) Apollonius-circle
// pairs is a hard computational-geometry problem; the paper instead uses
// the approximate grid division of Sec. 4.3: overlay a square grid,
// compute each cell's signature vector, and group cells with identical
// signatures into faces (Lemma 1). Face centroids come from eq. 5, and
// neighbor-face links (Def. 8 / Theorem 1) come from 4-connected cell
// adjacency between cells of different faces.
package field

import (
	"fmt"
	"sort"

	"fttt/internal/geom"
	"fttt/internal/vector"
)

// PairClassifier assigns the geometric node-pair value of a location:
// for the pair (i, j) with i < j it returns Nearer (+1) when the point is
// firmly nearer node i, Farther (-1) when firmly nearer node j, and
// Flipped (0) inside the pair's uncertain area.
type PairClassifier interface {
	Classify(p geom.Point, i, j int) vector.Value
	// NumNodes returns the number of nodes the classifier covers.
	NumNodes() int
}

// RatioClassifier classifies by distance ratio against the uncertainty
// constant C of eq. 3: value +1 iff d_i ≤ d_j / C, -1 iff d_i ≥ C·d_j,
// else 0. C == 1 degenerates to the certain perpendicular-bisector
// division used by the sequence-matching baselines (Fig. 3(a)); C > 1
// yields the Apollonius-bounded uncertain areas (Fig. 3(b)).
type RatioClassifier struct {
	Nodes []geom.Point
	C     float64
}

// NewRatioClassifier validates and returns a ratio classifier.
func NewRatioClassifier(nodes []geom.Point, c float64) (*RatioClassifier, error) {
	if c < 1 {
		return nil, fmt.Errorf("field: uncertainty constant C must be >= 1, got %v", c)
	}
	if len(nodes) < 2 {
		return nil, fmt.Errorf("field: need at least 2 nodes, got %d", len(nodes))
	}
	return &RatioClassifier{Nodes: nodes, C: c}, nil
}

// NumNodes implements PairClassifier.
func (rc *RatioClassifier) NumNodes() int { return len(rc.Nodes) }

// Classify implements PairClassifier.
func (rc *RatioClassifier) Classify(p geom.Point, i, j int) vector.Value {
	di := p.Dist(rc.Nodes[i])
	dj := p.Dist(rc.Nodes[j])
	switch {
	case di*rc.C <= dj:
		return vector.Nearer
	case dj*rc.C <= di:
		return vector.Farther
	default:
		return vector.Flipped
	}
}

// Signature returns the full signature vector of point p (Def. 6).
func Signature(c PairClassifier, p geom.Point) vector.Vector {
	n := c.NumNodes()
	v := vector.New(n)
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v[k] = c.Classify(p, i, j)
			k++
		}
	}
	return v
}

// Face is one equivalence class of grid cells sharing a signature vector.
type Face struct {
	// ID indexes the face within its Division.
	ID int
	// Signature is the face's signature vector (Lemma 1: unique per face).
	Signature vector.Vector
	// Centroid is the mean of the member cell centres (eq. 5) — the
	// location estimate reported when the target matches this face.
	Centroid geom.Point
	// Cells is the number of member grid cells; Cells × cellArea
	// approximates the face area (intra-face error of Sec. 5.2).
	Cells int
	// Neighbors lists the IDs of faces sharing at least one 4-connected
	// cell edge with this face, in ascending order.
	Neighbors []int
	// NeighborDiffs[i] lists the signature components in which this face
	// differs from Neighbors[i] — usually exactly one (Theorem 1). The
	// incremental matcher uses it to update a match distance in O(|diff|)
	// per hop instead of recomputing all C(n,2) components.
	NeighborDiffs [][]int
}

// Division is the preprocessed monitor area: the face set, the signature
// index, and the cell-to-face raster.
type Division struct {
	Field    geom.Rect
	CellSize float64
	Cols     int
	Rows     int
	Faces    []Face

	// cellFace[r*Cols+c] is the face ID of the cell at column c, row r.
	cellFace []int
	// bySig maps a ternary signature key to its face ID.
	bySig map[string]int
}

// Divide performs the approximate grid division of Sec. 4.3 with square
// cells of the given size. Cell centres follow Fig. 6(b): the bottom-left
// cell centre is the origin corner plus half a cell.
func Divide(fieldRect geom.Rect, classifier PairClassifier, cellSize float64) (*Division, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("field: non-positive cell size %v", cellSize)
	}
	cols := int(fieldRect.Width()/cellSize + 0.5)
	rows := int(fieldRect.Height()/cellSize + 0.5)
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("field: cell size %v too large for field %vx%v",
			cellSize, fieldRect.Width(), fieldRect.Height())
	}

	d := &Division{
		Field:    fieldRect,
		CellSize: cellSize,
		Cols:     cols,
		Rows:     rows,
		cellFace: make([]int, cols*rows),
		bySig:    make(map[string]int),
	}

	// Pass 1: signature per cell; group into faces.
	var accums []*faceAccum
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			center := d.CellCenter(c, r)
			sig := Signature(classifier, center)
			key := sig.Key()
			id, ok := d.bySig[key]
			if !ok {
				id = len(accums)
				d.bySig[key] = id
				accums = append(accums, &faceAccum{sig: sig})
			}
			accums[id].add(center)
			d.cellFace[r*cols+c] = id
		}
	}
	d.finalizeFaces(accums)
	return d, nil
}

// faceAccum accumulates one face's cells during division.
type faceAccum struct {
	sig   vector.Vector
	sumX  float64
	sumY  float64
	cells int
}

func (a *faceAccum) add(center geom.Point) {
	a.sumX += center.X
	a.sumY += center.Y
	a.cells++
}

// finalizeFaces builds the Face records from the accumulated cells and
// the filled cellFace raster: neighbor links from 4-connected adjacency,
// per-link signature diffs (Theorem 1 machinery), and centroids (eq. 5).
func (d *Division) finalizeFaces(accums []*faceAccum) {
	neighborSet := make([]map[int]struct{}, len(accums))
	for i := range neighborSet {
		neighborSet[i] = make(map[int]struct{})
	}
	link := func(a, b int) {
		if a != b {
			neighborSet[a][b] = struct{}{}
			neighborSet[b][a] = struct{}{}
		}
	}
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			id := d.cellFace[r*d.Cols+c]
			if c+1 < d.Cols {
				link(id, d.cellFace[r*d.Cols+c+1])
			}
			if r+1 < d.Rows {
				link(id, d.cellFace[(r+1)*d.Cols+c])
			}
		}
	}
	d.Faces = make([]Face, len(accums))
	for id, a := range accums {
		nbrs := make([]int, 0, len(neighborSet[id]))
		for nb := range neighborSet[id] {
			nbrs = append(nbrs, nb)
		}
		sort.Ints(nbrs)
		diffs := make([][]int, len(nbrs))
		for ni, nb := range nbrs {
			diffs[ni] = signatureDiff(a.sig, accums[nb].sig)
		}
		d.Faces[id] = Face{
			ID:            id,
			Signature:     a.sig,
			Centroid:      geom.Pt(a.sumX/float64(a.cells), a.sumY/float64(a.cells)),
			Cells:         a.cells,
			Neighbors:     nbrs,
			NeighborDiffs: diffs,
		}
	}
}

// signatureDiff returns the component indices where a and b differ.
func signatureDiff(a, b vector.Vector) []int {
	var out []int
	for k := range a {
		if a[k] != b[k] {
			out = append(out, k)
		}
	}
	return out
}

// CellCenter returns the centre of the cell at column c, row r.
func (d *Division) CellCenter(c, r int) geom.Point {
	return geom.Pt(
		d.Field.Min.X+(float64(c)+0.5)*d.CellSize,
		d.Field.Min.Y+(float64(r)+0.5)*d.CellSize,
	)
}

// CellOf returns the grid cell containing p, clamped to the grid.
func (d *Division) CellOf(p geom.Point) (c, r int) {
	c = int((p.X - d.Field.Min.X) / d.CellSize)
	r = int((p.Y - d.Field.Min.Y) / d.CellSize)
	if c < 0 {
		c = 0
	}
	if c >= d.Cols {
		c = d.Cols - 1
	}
	if r < 0 {
		r = 0
	}
	if r >= d.Rows {
		r = d.Rows - 1
	}
	return c, r
}

// FaceAt returns the face containing the point p (by its grid cell).
func (d *Division) FaceAt(p geom.Point) *Face {
	c, r := d.CellOf(p)
	return &d.Faces[d.cellFace[r*d.Cols+c]]
}

// FaceBySignature returns the face with exactly this ternary signature, or
// nil if no grid cell produced it.
func (d *Division) FaceBySignature(sig vector.Vector) *Face {
	id, ok := d.bySig[sig.Key()]
	if !ok {
		return nil
	}
	return &d.Faces[id]
}

// NumFaces returns the number of distinct faces.
func (d *Division) NumFaces() int { return len(d.Faces) }

// CellArea returns the area of one grid cell.
func (d *Division) CellArea() float64 { return d.CellSize * d.CellSize }

// MeanFaceArea returns the average face area in m².
func (d *Division) MeanFaceArea() float64 {
	if len(d.Faces) == 0 {
		return 0
	}
	return d.Field.Area() / float64(len(d.Faces))
}

// NeighborLinkCount returns the total number of undirected neighbor links
// |L| (Sec. 4.4: O(n⁴) like the face count).
func (d *Division) NeighborLinkCount() int {
	total := 0
	for _, f := range d.Faces {
		total += len(f.Neighbors)
	}
	return total / 2
}

// UncertainFraction returns the fraction of grid cells whose signature has
// at least one Flipped component — an estimate of how much of the field
// lies in some pair's uncertain area (Fig. 3's shrinking certain faces).
func (d *Division) UncertainFraction() float64 {
	if d.Cols*d.Rows == 0 {
		return 0
	}
	cells := 0
	for _, f := range d.Faces {
		if f.Signature.CountFlipped() > 0 {
			cells += f.Cells
		}
	}
	return float64(cells) / float64(d.Cols*d.Rows)
}
