package field

import (
	"bytes"
	"fmt"
	"testing"

	"fttt/internal/geom"
	"fttt/internal/vector"
)

// TestSoASignatureEquality is the SoA-vs-AoS property over seeded
// random deployments: every face's quantized row and column decode to
// exactly the AoS Face.Signature, the bitplanes agree component by
// component, and the popcount distance kernel reproduces the float
// Def. 8 squared distance for ternary queries.
func TestSoASignatureEquality(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			div, _ := randomDivision(t, seed, 6, 1.2, 2)
			s := div.SoA()
			if s == nil {
				t.Fatal("ternary division has no SoA store")
			}
			if s.Denom != 1 {
				t.Fatalf("ternary division quantized at denom %d, want 1", s.Denom)
			}
			if s.NumFaces != div.NumFaces() || s.Dim != div.Faces[0].Signature.Dim() {
				t.Fatalf("SoA dims %dx%d, division %dx%d",
					s.NumFaces, s.Dim, div.NumFaces(), div.Faces[0].Signature.Dim())
			}
			var scratch vector.Vector
			for f := range div.Faces {
				aos := div.Faces[f].Signature
				scratch = s.Signature(scratch[:0], f)
				if !vector.Equal(scratch, aos) {
					t.Fatalf("face %d: SoA row decodes to %v, AoS %v", f, scratch, aos)
				}
				pos, neg := s.FacePlanes(f)
				for k := 0; k < s.Dim; k++ {
					if got := s.Cols[k*s.NumFaces+f]; got != s.Rows[f*s.Dim+k] {
						t.Fatalf("face %d comp %d: col code %d != row code %d", f, k, got, s.Rows[f*s.Dim+k])
					}
					wantPos := aos[k] == vector.Nearer
					wantNeg := aos[k] == vector.Farther
					if gotPos := pos[k/64]&(1<<(k%64)) != 0; gotPos != wantPos {
						t.Fatalf("face %d comp %d: PosBits %v, want %v", f, k, gotPos, wantPos)
					}
					if gotNeg := neg[k/64]&(1<<(k%64)) != 0; gotNeg != wantNeg {
						t.Fatalf("face %d comp %d: NegBits %v, want %v", f, k, gotNeg, wantNeg)
					}
				}
			}
		})
	}
}

// TestSoAPopcountDistance checks the bitplane distance kernel against
// the float Def. 8 distance for ternary/star queries: the float sum of
// integer-valued terms is exactly the popcount integer.
func TestSoAPopcountDistance(t *testing.T) {
	div, _ := randomDivision(t, 3, 6, 1.2, 2)
	s := div.SoA()
	dim := s.Dim
	// A few query shapes: all values of one kind, then mixtures keyed off
	// the component index.
	queries := make([]vector.Vector, 0, 8)
	for _, fill := range []vector.Value{vector.Nearer, vector.Farther, vector.Flipped, vector.Star} {
		q := make(vector.Vector, dim)
		for k := range q {
			q[k] = fill
		}
		queries = append(queries, q)
	}
	for variant := 0; variant < 4; variant++ {
		q := make(vector.Vector, dim)
		for k := range q {
			switch (k + variant) % 4 {
			case 0:
				q[k] = vector.Nearer
			case 1:
				q[k] = vector.Farther
			case 2:
				q[k] = vector.Flipped
			default:
				q[k] = vector.Star
			}
		}
		queries = append(queries, q)
	}
	qPos := make([]uint64, s.Words)
	qNeg := make([]uint64, s.Words)
	qMask := make([]uint64, s.Words)
	for _, q := range queries {
		for w := range qPos {
			qPos[w], qNeg[w], qMask[w] = 0, 0, 0
		}
		for k, x := range q {
			if x.IsStar() {
				continue
			}
			qMask[k/64] |= 1 << (k % 64)
			switch x {
			case vector.Nearer:
				qPos[k/64] |= 1 << (k % 64)
			case vector.Farther:
				qNeg[k/64] |= 1 << (k % 64)
			}
		}
		for f := range div.Faces {
			// The serial matcher's squared distance: a float sum of the
			// per-component squared diffs in ascending pair order. All
			// terms are small integers, so the float sum is exact and
			// must equal the popcount integer bit for bit.
			sig := div.Faces[f].Signature
			var want float64
			for k := range q {
				if q[k].IsStar() || sig[k].IsStar() {
					continue
				}
				d := float64(q[k] - sig[k])
				want += d * d
			}
			got := s.popcountDiff(qPos, qNeg, qMask, f)
			if float64(got) != want {
				t.Fatalf("face %d query %v: popcount d2 %d, float d2 %v", f, q, got, want)
			}
		}
	}
}

// TestSoASurvivesSaveLoad pins that a loaded division rebuilds a store
// identical to the one built at divide time — the fieldcache disk-spill
// path must batch-match exactly like the original.
func TestSoASurvivesSaveLoad(t *testing.T) {
	rc := gridClassifier(t, 9, defaultC())
	orig, err := Divide(fieldRect, rc, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := orig.SoA(), loaded.SoA()
	if a == nil || b == nil {
		t.Fatalf("SoA store missing: orig=%v loaded=%v", a != nil, b != nil)
	}
	if a.NumFaces != b.NumFaces || a.Dim != b.Dim || a.Denom != b.Denom || a.Words != b.Words {
		t.Fatalf("header mismatch: %+v vs %+v", a, b)
	}
	if !bytes.Equal(int8Bytes(a.Cols), int8Bytes(b.Cols)) || !bytes.Equal(int8Bytes(a.Rows), int8Bytes(b.Rows)) {
		t.Fatal("quantized codes differ after Save/Load")
	}
	for i := range a.PosBits {
		if a.PosBits[i] != b.PosBits[i] || a.NegBits[i] != b.NegBits[i] {
			t.Fatalf("bitplane word %d differs after Save/Load", i)
		}
	}
}

func int8Bytes(s []int8) []byte {
	out := make([]byte, len(s))
	for i, v := range s {
		out[i] = byte(v)
	}
	return out
}

// TestSoANilOnUnquantizable pins the fallback contract: a classifier
// emitting values no int8 denominator represents leaves SoA nil
// instead of storing a lossy approximation.
func TestSoANilOnUnquantizable(t *testing.T) {
	div, err := Divide(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)), irrationalClassifier{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if div.SoA() != nil {
		t.Fatal("unquantizable signatures produced an SoA store")
	}
}

// irrationalClassifier emits a value representable by no denominator.
type irrationalClassifier struct{}

func (irrationalClassifier) NumNodes() int { return 2 }
func (irrationalClassifier) Classify(p geom.Point, i, j int) vector.Value {
	return vector.Value(0.123456789)
}

// TestSoAStarSignatureHasNoPlanes pins the bitplane guard: a signature
// containing Star still quantizes (Star has a reserved code), but the
// two-plane ternary form cannot encode its always-zero Def. 8
// contribution — such a store must carry codes only, no planes.
func TestSoAStarSignatureHasNoPlanes(t *testing.T) {
	div, err := Divide(geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)), starClassifier{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := div.SoA()
	if s == nil {
		t.Fatal("star-bearing ternary division has no SoA store")
	}
	if s.Denom != 1 {
		t.Fatalf("denom %d, want 1", s.Denom)
	}
	if s.PosBits != nil || s.NegBits != nil {
		t.Fatal("star-bearing signatures built bitplanes; stored Star would alias 0")
	}
	var scratch vector.Vector
	for f := range div.Faces {
		scratch = s.Signature(scratch[:0], f)
		if !vector.Equal(scratch, div.Faces[f].Signature) {
			t.Fatalf("face %d: SoA row decodes to %v, AoS %v", f, scratch, div.Faces[f].Signature)
		}
	}
}

// starClassifier emits one Star pair amid ternary values.
type starClassifier struct{}

func (starClassifier) NumNodes() int { return 3 }
func (starClassifier) Classify(p geom.Point, i, j int) vector.Value {
	if i == 0 && j == 1 {
		return vector.Star
	}
	if p.X < 5 {
		return vector.Nearer
	}
	return vector.Farther
}

// TestSoAAdaptiveDivide pins that the double-level AdaptiveDivide path
// (which builds its faces through the same finalizeFaces) also carries
// a store, and that every stored row decodes to its face's AoS
// signature — face ordering may differ from Divide's, the per-face
// content may not.
func TestSoAAdaptiveDivide(t *testing.T) {
	rc := gridClassifier(t, 9, defaultC())
	adaptive, err := AdaptiveDivide(fieldRect, rc, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := adaptive.SoA()
	if s == nil {
		t.Fatal("adaptive division has no SoA store")
	}
	var scratch vector.Vector
	for f := range adaptive.Faces {
		scratch = s.Signature(scratch[:0], f)
		if !vector.Equal(scratch, adaptive.Faces[f].Signature) {
			t.Fatalf("face %d: SoA row decodes to %v, AoS %v", f, scratch, adaptive.Faces[f].Signature)
		}
	}
}
