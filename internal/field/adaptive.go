package field

import (
	"fmt"

	"fttt/internal/geom"
	"fttt/internal/vector"
)

// AdaptiveDivide is the double-level grid division of the authors'
// companion work [29]: the field is first covered with coarse blocks;
// blocks whose probed signatures are uniform are filled wholesale, and
// only blocks straddling an uncertain boundary are refined to fine
// cells. The result is bit-compatible with Divide at the fine
// resolution wherever signatures were probed, and much cheaper to build
// when boundaries cover a small fraction of the field.
//
// coarse must be a positive integer multiple of fine. Uniformity is
// probed at nine points per block (corners, edge midpoints, centre); a
// boundary thinner than the probe spacing can be missed inside a
// "uniform" block, which is the documented approximation — shrink coarse
// to tighten it.
func AdaptiveDivide(fieldRect geom.Rect, classifier PairClassifier, coarse, fine float64) (*Division, error) {
	if fine <= 0 {
		return nil, fmt.Errorf("field: non-positive fine cell size %v", fine)
	}
	ratio := coarse / fine
	iratio := int(ratio + 0.5)
	if iratio < 1 || absf(ratio-float64(iratio)) > 1e-9 {
		return nil, fmt.Errorf("field: coarse %v must be an integer multiple of fine %v", coarse, fine)
	}
	// Same ceiling grid semantics as Divide, so the bit-compatibility
	// claim holds for non-dividing fine cell sizes too.
	cols, rows, err := gridDims(fieldRect, fine)
	if err != nil {
		return nil, err
	}

	d := &Division{
		Field:    fieldRect,
		CellSize: fine,
		Cols:     cols,
		Rows:     rows,
		cellFace: make([]int, cols*rows),
		bySig:    make(map[string]int),
	}

	var accums []*faceAccum
	intern := func(sig vector.Vector) int {
		key := sig.Key()
		id, ok := d.bySig[key]
		if !ok {
			id = len(accums)
			d.bySig[key] = id
			accums = append(accums, &faceAccum{sig: sig})
		}
		return id
	}
	put := func(c, r, id int) {
		accums[id].add(d.CellCenter(c, r))
		d.cellFace[r*cols+c] = id
	}

	// Walk coarse blocks.
	for br := 0; br < rows; br += iratio {
		for bc := 0; bc < cols; bc += iratio {
			rEnd := minInt(br+iratio, rows)
			cEnd := minInt(bc+iratio, cols)
			// Probe 9 points of the block's bounding box.
			x0 := fieldRect.Min.X + float64(bc)*fine
			y0 := fieldRect.Min.Y + float64(br)*fine
			x1 := fieldRect.Min.X + float64(cEnd)*fine
			y1 := fieldRect.Min.Y + float64(rEnd)*fine
			xm, ym := (x0+x1)/2, (y0+y1)/2
			probes := [9]geom.Point{
				{X: x0, Y: y0}, {X: xm, Y: y0}, {X: x1, Y: y0},
				{X: x0, Y: ym}, {X: xm, Y: ym}, {X: x1, Y: ym},
				{X: x0, Y: y1}, {X: xm, Y: y1}, {X: x1, Y: y1},
			}
			first := Signature(classifier, probes[0])
			uniform := true
			for _, p := range probes[1:] {
				if !vector.Equal(first, Signature(classifier, p)) {
					uniform = false
					break
				}
			}
			if uniform {
				id := intern(first)
				for r := br; r < rEnd; r++ {
					for c := bc; c < cEnd; c++ {
						put(c, r, id)
					}
				}
				continue
			}
			// Refine: per-fine-cell signatures inside the block.
			for r := br; r < rEnd; r++ {
				for c := bc; c < cEnd; c++ {
					id := intern(Signature(classifier, d.CellCenter(c, r)))
					put(c, r, id)
				}
			}
		}
	}

	d.finalizeFaces(accums)
	return d, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
