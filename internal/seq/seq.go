// Package seq provides detection (rank) sequences and rank-correlation
// measures for the sequence-matching baseline trackers: Sequence-Based
// Localization [24] ("Direct MLE" in the paper's evaluation) and the
// path-matching MLE of [22].
//
// A detection sequence orders sensor IDs by descending RSS; a location's
// reference sequence orders the same IDs by ascending distance. Two
// sequences over the same ID set are compared by Spearman's rank
// correlation, the measure [24] uses for its maximum-likelihood match.
package seq

import (
	"fmt"
	"sort"
)

// Ranks converts an ordered ID sequence into a rank map: rank[id] is the
// position of id in the sequence (0 = first).
func Ranks(sequence []int) map[int]int {
	r := make(map[int]int, len(sequence))
	for pos, id := range sequence {
		r[id] = pos
	}
	return r
}

// ByDescending returns the IDs sorted by descending score; ties break by
// ascending ID for determinism.
func ByDescending(ids []int, score func(id int) float64) []int {
	out := append([]int(nil), ids...)
	sort.Slice(out, func(a, b int) bool {
		sa, sb := score(out[a]), score(out[b])
		if sa != sb {
			return sa > sb
		}
		return out[a] < out[b]
	})
	return out
}

// ByAscending returns the IDs sorted by ascending score; ties break by
// ascending ID.
func ByAscending(ids []int, score func(id int) float64) []int {
	out := append([]int(nil), ids...)
	sort.Slice(out, func(a, b int) bool {
		sa, sb := score(out[a]), score(out[b])
		if sa != sb {
			return sa < sb
		}
		return out[a] < out[b]
	})
	return out
}

// Spearman returns Spearman's rank correlation coefficient between two
// orderings of the same ID set, in [-1, 1]: 1 for identical order, -1 for
// exactly reversed. It returns an error if the sequences are not
// permutations of each other, and 0 correlation for fewer than 2 IDs.
func Spearman(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("seq: length mismatch %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, nil
	}
	ra, rb := Ranks(a), Ranks(b)
	if len(ra) != n || len(rb) != n {
		return 0, fmt.Errorf("seq: sequences contain duplicate IDs")
	}
	var d2 float64
	for id, pa := range ra {
		pb, ok := rb[id]
		if !ok {
			return 0, fmt.Errorf("seq: ID %d missing from second sequence", id)
		}
		d := float64(pa - pb)
		d2 += d * d
	}
	nf := float64(n)
	return 1 - 6*d2/(nf*(nf*nf-1)), nil
}

// KendallTau returns Kendall's tau rank correlation between two orderings
// of the same ID set, in [-1, 1]. It returns an error under the same
// conditions as Spearman.
func KendallTau(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("seq: length mismatch %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, nil
	}
	ra, rb := Ranks(a), Ranks(b)
	if len(ra) != n || len(rb) != n {
		return 0, fmt.Errorf("seq: sequences contain duplicate IDs")
	}
	ids := make([]int, 0, n)
	for id := range ra {
		if _, ok := rb[id]; !ok {
			return 0, fmt.Errorf("seq: ID %d missing from second sequence", id)
		}
		ids = append(ids, id)
	}
	concordant, discordant := 0, 0
	for x := 0; x < len(ids); x++ {
		for y := x + 1; y < len(ids); y++ {
			da := ra[ids[x]] - ra[ids[y]]
			db := rb[ids[x]] - rb[ids[y]]
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}
