package seq

import (
	"math"
	"math/rand"
	"testing"
)

func TestRanks(t *testing.T) {
	r := Ranks([]int{7, 3, 5})
	if r[7] != 0 || r[3] != 1 || r[5] != 2 {
		t.Errorf("Ranks = %v", r)
	}
}

func TestByDescending(t *testing.T) {
	ids := []int{0, 1, 2, 3}
	scores := map[int]float64{0: 2, 1: 9, 2: 2, 3: 5}
	got := ByDescending(ids, func(id int) float64 { return scores[id] })
	want := []int{1, 3, 0, 2} // tie 0/2 broken by ID
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ByDescending = %v, want %v", got, want)
		}
	}
	// Input must not be mutated.
	if ids[0] != 0 || ids[3] != 3 {
		t.Error("input mutated")
	}
}

func TestByAscending(t *testing.T) {
	ids := []int{0, 1, 2}
	scores := map[int]float64{0: 5, 1: 1, 2: 5}
	got := ByAscending(ids, func(id int) float64 { return scores[id] })
	want := []int{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ByAscending = %v, want %v", got, want)
		}
	}
}

func TestSpearmanExtremes(t *testing.T) {
	a := []int{1, 2, 3, 4, 5}
	same, err := Spearman(a, []int{1, 2, 3, 4, 5})
	if err != nil || same != 1 {
		t.Errorf("identical Spearman = %v, %v", same, err)
	}
	rev, err := Spearman(a, []int{5, 4, 3, 2, 1})
	if err != nil || rev != -1 {
		t.Errorf("reversed Spearman = %v, %v", rev, err)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Swap two adjacent elements of a 4-sequence: d² = 1+1 = 2,
	// rho = 1 - 6*2/(4*15) = 0.8.
	got, err := Spearman([]int{1, 2, 3, 4}, []int{2, 1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Spearman = %v, want 0.8", got)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := Spearman([]int{1, 2}, []int{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Spearman([]int{1, 1}, []int{1, 2}); err == nil {
		t.Error("duplicate IDs should error")
	}
	if _, err := Spearman([]int{1, 2}, []int{1, 3}); err == nil {
		t.Error("different ID sets should error")
	}
}

func TestSpearmanShort(t *testing.T) {
	got, err := Spearman([]int{1}, []int{1})
	if err != nil || got != 0 {
		t.Errorf("singleton Spearman = %v, %v", got, err)
	}
}

func TestKendallExtremes(t *testing.T) {
	a := []int{1, 2, 3, 4}
	same, err := KendallTau(a, []int{1, 2, 3, 4})
	if err != nil || same != 1 {
		t.Errorf("identical tau = %v, %v", same, err)
	}
	rev, err := KendallTau(a, []int{4, 3, 2, 1})
	if err != nil || rev != -1 {
		t.Errorf("reversed tau = %v, %v", rev, err)
	}
}

func TestKendallKnownValue(t *testing.T) {
	// One adjacent swap in n=4 creates exactly one discordant pair:
	// tau = (5-1)/6 = 2/3.
	got, err := KendallTau([]int{1, 2, 3, 4}, []int{2, 1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("tau = %v, want 2/3", got)
	}
}

func TestKendallErrors(t *testing.T) {
	if _, err := KendallTau([]int{1, 2}, []int{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := KendallTau([]int{1, 1}, []int{1, 2}); err == nil {
		t.Error("duplicate IDs should error")
	}
	if _, err := KendallTau([]int{1, 2}, []int{3, 4}); err == nil {
		t.Error("different ID sets should error")
	}
}

func TestCorrelationsAgreeInSign(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for trial := 0; trial < 200; trial++ {
		perm := append([]int(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		rho, err1 := Spearman(base, perm)
		tau, err2 := KendallTau(base, perm)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		// Strong agreement measures; require same sign when both are
		// decisively nonzero.
		if rho > 0.5 && tau < 0 || rho < -0.5 && tau > 0 {
			t.Fatalf("sign disagreement: rho=%v tau=%v for %v", rho, tau, perm)
		}
		if rho < -1-1e-9 || rho > 1+1e-9 || tau < -1-1e-9 || tau > 1+1e-9 {
			t.Fatalf("out of range: rho=%v tau=%v", rho, tau)
		}
	}
}
