package sampling

import (
	"math"
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/vector"
)

var fieldRect = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

// groupFromMatrix builds a Group directly from literal RSS rows.
func groupFromMatrix(rows [][]float64) *Group {
	n := len(rows[0])
	rep := make([]bool, n)
	for i := range rep {
		rep[i] = true
	}
	return &Group{RSS: rows, Reported: rep}
}

func TestPaperFig5Example(t *testing.T) {
	// Fig. 5: four sensors, six instants; only pair (3,4) flips (IDs are
	// 1-based in the paper). Node 2 is loudest, then 1, then 3/4 flip.
	// Construct RSS realising exactly that and check the sampling vector
	// [-1,1,1,1,1,0] (pairs (1,2),(1,3),(1,4),(2,3),(2,4),(3,4)).
	g := groupFromMatrix([][]float64{
		// n1, n2, n3, n4
		{50, 60, 40, 39},
		{51, 61, 40, 41}, // (3,4) flips here
		{50, 59, 42, 41},
		{52, 60, 41, 40},
		{50, 62, 40, 39},
		{51, 60, 42, 41},
	})
	got := g.Vector()
	want := vector.FromInts(-1, 1, 1, 1, 1, 0)
	if !vector.Equal(got, want) {
		t.Errorf("Vector = %v, want %v", got, want)
	}
}

func TestPaperSection6ExtendedExample(t *testing.T) {
	// Sec. 6 / Fig. 9: six samplings, pair (n1, n2) has four sequential
	// orders (1,2) and two reverse (2,1) → extended value
	// (4-2)/6 = 1/3 ≈ 0.33; the basic value is 0.
	g := groupFromMatrix([][]float64{
		{60, 50},
		{60, 50},
		{60, 50},
		{60, 50},
		{50, 60},
		{50, 60},
	})
	basic := g.Vector()
	if basic[0] != vector.Flipped {
		t.Errorf("basic value = %v, want Flipped", basic[0])
	}
	ext := g.ExtendedVector()
	if math.Abs(float64(ext[0])-1.0/3) > 1e-12 {
		t.Errorf("extended value = %v, want 1/3", ext[0])
	}
}

func TestVectorOrdinalCases(t *testing.T) {
	g := groupFromMatrix([][]float64{
		{10, 5, 1},
		{11, 6, 2},
	})
	got := g.Vector()
	want := vector.FromInts(1, 1, 1) // strictly descending by ID
	if !vector.Equal(got, want) {
		t.Errorf("Vector = %v, want %v", got, want)
	}
	gotExt := g.ExtendedVector()
	if !vector.Equal(gotExt, want) {
		t.Errorf("ExtendedVector = %v, want %v for fully ordinal group", gotExt, want)
	}
}

func TestVectorReverseOrdinal(t *testing.T) {
	g := groupFromMatrix([][]float64{
		{1, 5, 10},
		{2, 6, 11},
	})
	want := vector.FromInts(-1, -1, -1)
	if got := g.Vector(); !vector.Equal(got, want) {
		t.Errorf("Vector = %v, want %v", got, want)
	}
}

func TestFaultFillingEq6(t *testing.T) {
	// Paper Sec. 4.4(3) example: four nodes, only n1 and n3 report with
	// rss_1 > rss_3. Pairs: (1,2)=1, (1,3)=1, (1,4)=1, (2,3)=-1,
	// (2,4)=*, (3,4)=1.
	g := &Group{
		RSS: [][]float64{
			{50, 0, 40, 0},
			{51, 0, 41, 0},
		},
		Reported: []bool{true, false, true, false},
	}
	got := g.Vector()
	want := vector.Vector{1, 1, 1, -1, vector.Star, 1}
	if !vector.Equal(got, want) {
		t.Errorf("Vector = %v, want %v", got, want)
	}
	// Extended vector must use the same eq. 6 values on fault pairs.
	ext := g.ExtendedVector()
	if ext[4].IsStar() != true || ext[0] != 1 || ext[3] != -1 {
		t.Errorf("ExtendedVector fault cases = %v", ext)
	}
}

func TestAllSilent(t *testing.T) {
	g := &Group{
		RSS:      [][]float64{{0, 0}, {0, 0}},
		Reported: []bool{false, false},
	}
	got := g.Vector()
	if !got[0].IsStar() {
		t.Errorf("all-silent pair = %v, want Star", got[0])
	}
	if g.NumReported() != 0 {
		t.Errorf("NumReported = %d", g.NumReported())
	}
}

func TestSamplerNoiselessMatchesGeometry(t *testing.T) {
	// With zero noise, the sampling vector's certain components must agree
	// with the true distance order.
	d := deploy.Grid(fieldRect, 4)
	m := rf.Default()
	m.SigmaX = 0
	s := &Sampler{Model: m, Nodes: d.Positions()}
	pos := geom.Pt(20, 20) // nearest node 0 at (25,25)
	g := s.Sample(pos, 5, randx.New(1))
	v := g.Vector()
	n := 4
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			di, dj := d.Nodes[i].Pos.Dist(pos), d.Nodes[j].Pos.Dist(pos)
			got := v.Get(i, j, n)
			switch {
			case di < dj && got != vector.Nearer:
				t.Errorf("pair (%d,%d): d_i<d_j but value %v", i, j, got)
			case di > dj && got != vector.Farther:
				t.Errorf("pair (%d,%d): d_i>d_j but value %v", i, j, got)
			}
		}
	}
}

func TestSamplerRangeLimitsReports(t *testing.T) {
	d := deploy.Grid(fieldRect, 4)
	s := &Sampler{Model: rf.Default(), Nodes: d.Positions(), Range: 30}
	g := s.Sample(geom.Pt(25, 25), 3, randx.New(2)) // on node 0
	if !g.Reported[0] {
		t.Error("node 0 should report")
	}
	if g.Reported[3] { // node 3 at (75,75) is ~70 m away
		t.Error("node 3 out of range should not report")
	}
}

func TestSamplerReportLoss(t *testing.T) {
	d := deploy.Grid(fieldRect, 9)
	s := &Sampler{Model: rf.Default(), Nodes: d.Positions(), ReportLoss: 0.5}
	rng := randx.New(3)
	total, reported := 0, 0
	for trial := 0; trial < 200; trial++ {
		g := s.Sample(geom.Pt(50, 50), 3, rng.SplitN("trial", trial))
		total += g.N()
		reported += g.NumReported()
	}
	frac := float64(reported) / float64(total)
	if math.Abs(frac-0.5) > 0.1 {
		t.Errorf("report fraction = %v, want ≈0.5", frac)
	}
}

func TestSamplerReproducible(t *testing.T) {
	d := deploy.Grid(fieldRect, 4)
	s := &Sampler{Model: rf.Default(), Nodes: d.Positions()}
	g1 := s.Sample(geom.Pt(40, 40), 5, randx.New(9))
	g2 := s.Sample(geom.Pt(40, 40), 5, randx.New(9))
	for t0 := range g1.RSS {
		for i := range g1.RSS[t0] {
			if g1.RSS[t0][i] != g2.RSS[t0][i] {
				t.Fatal("sampler not reproducible")
			}
		}
	}
}

func TestSamplerPanicsOnBadK(t *testing.T) {
	d := deploy.Grid(fieldRect, 4)
	s := &Sampler{Model: rf.Default(), Nodes: d.Positions()}
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	s.Sample(geom.Pt(0, 0), 0, randx.New(1))
}

func TestPairCounts(t *testing.T) {
	g := groupFromMatrix([][]float64{
		{2, 1},
		{1, 2},
		{3, 0},
	})
	wins, losses, und := g.PairCounts(0, 1)
	if wins != 2 || losses != 1 || und != 0 {
		t.Errorf("PairCounts = (%d,%d,%d), want (2,1,0)", wins, losses, und)
	}
}

func TestPairCountsResolution(t *testing.T) {
	g := groupFromMatrix([][]float64{
		{10, 9.8}, // within ε=0.5: undistinguishable
		{10, 8},   // clear win
		{7, 10},   // clear loss
	})
	g.Epsilon = 0.5
	wins, losses, und := g.PairCounts(0, 1)
	if wins != 1 || losses != 1 || und != 1 {
		t.Errorf("PairCounts = (%d,%d,%d), want (1,1,1)", wins, losses, und)
	}
	// An undistinguishable instant prevents an ordinal pair value.
	g2 := groupFromMatrix([][]float64{
		{10, 9.8},
		{10, 8},
	})
	g2.Epsilon = 0.5
	if got := g2.Vector()[0]; got != vector.Flipped {
		t.Errorf("pair with resolution tie = %v, want Flipped", got)
	}
	// Extended value counts only decisive instants: (1-0)/2 = 0.5.
	if got := g2.ExtendedVector()[0]; got != 0.5 {
		t.Errorf("extended with resolution tie = %v, want 0.5", got)
	}
}

func TestDetectionSequence(t *testing.T) {
	g := groupFromMatrix([][]float64{
		{10, 30, 20},
	})
	if got := g.DetectionSequence(0); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Errorf("DetectionSequence = %v, want [1 2 0]", got)
	}
	// With an unreported node.
	g.Reported[1] = false
	if got := g.DetectionSequence(0); len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Errorf("DetectionSequence with fault = %v, want [2 0]", got)
	}
}

func TestMeanRSS(t *testing.T) {
	g := groupFromMatrix([][]float64{
		{10, 20},
		{30, 40},
	})
	means, ids := g.MeanRSS()
	if len(means) != 2 || means[0] != 20 || means[1] != 30 {
		t.Errorf("MeanRSS = %v", means)
	}
	if ids[0] != 0 || ids[1] != 1 {
		t.Errorf("ids = %v", ids)
	}
	g.Reported[0] = false
	means, ids = g.MeanRSS()
	if len(means) != 1 || means[0] != 30 || ids[0] != 1 {
		t.Errorf("MeanRSS with fault = %v ids %v", means, ids)
	}
}

func TestValidate(t *testing.T) {
	good := groupFromMatrix([][]float64{{1, 2}, {3, 4}})
	if err := good.Validate(); err != nil {
		t.Errorf("valid group rejected: %v", err)
	}
	ragged := &Group{RSS: [][]float64{{1, 2}, {3}}, Reported: []bool{true, true}}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged matrix should fail")
	}
	short := &Group{RSS: [][]float64{{1, 2}}, Reported: []bool{true}}
	if err := short.Validate(); err == nil {
		t.Error("short Reported should fail")
	}
}

func TestExtendedVectorRange(t *testing.T) {
	// Extended values always lie in [-1, 1] and agree in sign tendency
	// with the basic values.
	d := deploy.Random(fieldRect, 8, randx.New(4))
	s := &Sampler{Model: rf.Default(), Nodes: d.Positions()}
	rng := randx.New(5)
	for trial := 0; trial < 50; trial++ {
		g := s.Sample(geom.Pt(rng.Uniform(0, 100), rng.Uniform(0, 100)), 7, rng.SplitN("t", trial))
		basic, ext := g.Vector(), g.ExtendedVector()
		for k := range ext {
			if ext[k].IsStar() {
				continue
			}
			if ext[k] < -1 || ext[k] > 1 {
				t.Fatalf("extended value %v out of range", ext[k])
			}
			switch basic[k] {
			case vector.Nearer:
				if ext[k] != 1 {
					t.Fatalf("ordinal pair should have extended value 1, got %v", ext[k])
				}
			case vector.Farther:
				if ext[k] != -1 {
					t.Fatalf("reverse pair should have extended value -1, got %v", ext[k])
				}
			case vector.Flipped:
				if ext[k] <= -1 || ext[k] >= 1 {
					t.Fatalf("flipped pair should be strictly inside (-1,1), got %v", ext[k])
				}
			}
		}
	}
}

func TestFlippedMoreLikelyNearBisector(t *testing.T) {
	// The probability that the pair value is Flipped should be higher for
	// a target on the pair's bisector than far from it.
	nodes := []geom.Point{geom.Pt(30, 50), geom.Pt(70, 50)}
	s := &Sampler{Model: rf.Default(), Nodes: nodes}
	rng := randx.New(6)
	count := func(pos geom.Point) int {
		c := 0
		for trial := 0; trial < 300; trial++ {
			g := s.Sample(pos, 5, rng.SplitN("x", trial))
			if g.Vector()[0] == vector.Flipped {
				c++
			}
		}
		return c
	}
	near := count(geom.Pt(50, 50)) // on bisector
	far := count(geom.Pt(31, 50))  // on top of node 0
	if near <= far {
		t.Errorf("flips near bisector (%d) should exceed flips near node (%d)", near, far)
	}
}
