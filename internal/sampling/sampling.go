// Package sampling implements the grouping sampling of Sec. 4.2: the RSS
// matrix collected over k rapid sampling instants (Def. 3), the
// construction of the ternary sampling vector (Def. 4/5, Algorithm 1),
// the extended quantitative sampling vector (Def. 10, Sec. 6), and the
// fault-tolerance filling rules for unreported sensors (eq. 6).
package sampling

import (
	"fmt"

	"fttt/internal/geom"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/vector"
)

// Group is one grouping sampling: the k×n RSS matrix of Def. 3 plus the
// set of nodes that actually reported. RSS[t][i] is node i's sample at
// instant t. A node that did not report has Reported[i] == false and its
// column is meaningless.
type Group struct {
	RSS      [][]float64
	Reported []bool
	// Epsilon is the sensing resolution ε: two RSS values closer than ε
	// are indistinguishable, so the instant contributes neither a win nor
	// a loss to the pair (Sec. 3.2's maximum undistinguishable
	// difference).
	Epsilon float64
}

// K returns the number of sampling instants in the group.
func (g *Group) K() int { return len(g.RSS) }

// N returns the number of nodes (columns).
func (g *Group) N() int {
	if len(g.RSS) == 0 {
		return len(g.Reported)
	}
	return len(g.RSS[0])
}

// NumReported returns |N_r|, the count of nodes that reported.
func (g *Group) NumReported() int {
	c := 0
	for _, r := range g.Reported {
		if r {
			c++
		}
	}
	return c
}

// Validate checks the matrix is rectangular and consistent with Reported.
func (g *Group) Validate() error {
	n := g.N()
	if len(g.Reported) != n {
		return fmt.Errorf("sampling: Reported has %d entries for %d columns", len(g.Reported), n)
	}
	for t, row := range g.RSS {
		if len(row) != n {
			return fmt.Errorf("sampling: row %d has %d entries, want %d", t, len(row), n)
		}
	}
	return nil
}

// Sampler draws grouping samplings from the paper's signal model for a
// fixed deployment.
type Sampler struct {
	// Model is the path-loss model generating RSS.
	Model rf.Model
	// Nodes are the sensor positions, in ID order.
	Nodes []geom.Point
	// Range is the sensing range R: nodes farther than Range from the
	// target never report (they cannot hear it). Zero or negative means
	// unlimited range.
	Range float64
	// ReportLoss is the probability that an in-range node's report is
	// lost (sensor fault, collision, routing failure) — it drives the
	// N̄_r fault set of Sec. 4.4(3). Zero means perfectly reliable.
	ReportLoss float64
	// Epsilon is the sensing resolution ε copied into every Group.
	Epsilon float64
	// Irregularity, when non-nil, holds each node's azimuthal gain map
	// (DOI sensing irregularity); Irregularity[i] applies to node i's
	// samples based on the direction from the node to the target.
	Irregularity []*rf.Irregularity
	// Faults, when non-nil, injects scripted failures into every group
	// (nil-is-off): crash/burst report suppression on top of ReportLoss,
	// calibration drift and clock-skew slew per sample. The injector
	// keeps its own clock — callers seek it to the group's virtual time
	// before Sample. internal/faults provides the deterministic
	// scenario-script implementation (DESIGN.md §9).
	Faults SampleFaults
	// Trace, when non-nil, records fault injections (report drops, RSS
	// bias) as structured trace events so failures land on the same
	// timeline as the estimate they corrupted (DESIGN.md §12). Recording
	// never consumes randomness, so traced draws stay byte-identical.
	Trace *obs.Recorder
	// TraceSpan parents the emitted events — the current collection
	// span. The owner of the sampler sets it around each Sample call.
	TraceSpan obs.SpanRef
}

// SampleFaults intercepts the ideal sampler's failure processes; it is
// consulted only when Sampler.Faults is non-nil.
type SampleFaults interface {
	// DropReport decides whether an in-range, loss-surviving node's
	// report is suppressed this group (crash, burst channel). rng is the
	// group's loss substream.
	DropReport(node int, rng *randx.Stream) bool
	// PerturbRSS adjusts node's raw RSS sample (calibration drift,
	// clock-skew slew).
	PerturbRSS(node int, rss float64) float64
}

// Sample draws one grouping sampling of k instants for a target at pos.
// Each node uses its own noise substream split from rng so that node
// count changes do not perturb other nodes' draws; the loss process uses
// a separate substream.
func (s *Sampler) Sample(pos geom.Point, k int, rng *randx.Stream) *Group {
	if k <= 0 {
		panic(fmt.Sprintf("sampling: non-positive sampling times k=%d", k))
	}
	n := len(s.Nodes)
	g := &Group{
		RSS:      make([][]float64, k),
		Reported: make([]bool, n),
		Epsilon:  s.Epsilon,
	}
	for t := range g.RSS {
		g.RSS[t] = make([]float64, n)
	}
	loss := rng.Split("loss")
	for i, np := range s.Nodes {
		inRange := s.Range <= 0 || np.Dist(pos) <= s.Range
		g.Reported[i] = inRange && !loss.Bernoulli(s.ReportLoss)
		if g.Reported[i] && s.Faults != nil && s.Faults.DropReport(i, loss) {
			g.Reported[i] = false
			s.Trace.RecordEvent(s.TraceSpan, "faults", "report_dropped", float64(i))
		}
		if !g.Reported[i] {
			continue
		}
		nodeRng := rng.SplitN("node-noise", i)
		d := np.Dist(pos)
		// Shadowing is constant within the group's short Δt window; only
		// the fast component varies per instant (rf.Model.FastFraction).
		mean := s.Model.MeanRSS(d) + nodeRng.Normal(0, s.Model.SigmaSlow())
		if s.Irregularity != nil && i < len(s.Irregularity) && s.Irregularity[i] != nil {
			mean += s.Irregularity[i].Gain(pos.Sub(np).Angle())
		}
		sigmaFast := s.Model.SigmaFast()
		for t := 0; t < k; t++ {
			g.RSS[t][i] = mean + nodeRng.Normal(0, sigmaFast)
		}
		if s.Faults != nil {
			for t := 0; t < k; t++ {
				g.RSS[t][i] = s.Faults.PerturbRSS(i, g.RSS[t][i])
			}
			if s.Trace != nil {
				// PerturbRSS is a pure additive bias (drift + skew), so
				// probing with 0 reveals this node's current corruption
				// without consuming randomness or perturbing the draws.
				if bias := s.Faults.PerturbRSS(i, 0); bias != 0 {
					s.Trace.RecordEvent(s.TraceSpan, "faults", "rss_bias", bias)
				}
			}
		}
	}
	return g
}

// PairCounts returns, for the pair (i, j), how many instants had
// rss_i > rss_j by at least ε (wins), how many had rss_j > rss_i by at
// least ε (losses), and how many were within ε of each other
// (undistinguishable — Sec. 3.2's sensing resolution). Both nodes must
// have reported.
func (g *Group) PairCounts(i, j int) (wins, losses, undistinguishable int) {
	for t := range g.RSS {
		d := g.RSS[t][i] - g.RSS[t][j]
		switch {
		case d >= g.Epsilon:
			wins++
		case -d >= g.Epsilon:
			losses++
		default:
			undistinguishable++
		}
	}
	return wins, losses, undistinguishable
}

// Vector builds the ternary sampling vector of Def. 5 via Algorithm 1,
// applying the fault-tolerance rules of eq. 6 for unreported nodes:
//
//   - both reported:      +1 if ordinal i-first, -1 if ordinal j-first,
//     0 if the order flipped within the group;
//   - only i reported:    +1 (silent nodes sense less than reporting ones);
//   - only j reported:    -1;
//   - neither reported:    * (Star).
func (g *Group) Vector() vector.Vector {
	n := g.N()
	v := vector.New(n)
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v[idx] = g.pairValue(i, j)
			idx++
		}
	}
	return v
}

func (g *Group) pairValue(i, j int) vector.Value {
	ri, rj := g.Reported[i], g.Reported[j]
	switch {
	case ri && rj:
		wins, losses, und := g.PairCounts(i, j)
		switch {
		case losses == 0 && und == 0:
			return vector.Nearer
		case wins == 0 && und == 0:
			return vector.Farther
		default:
			// The order inverted, or at least one instant was within the
			// sensing resolution: the pair cannot be declared ordinal.
			return vector.Flipped
		}
	case ri && !rj:
		return vector.Nearer
	case !ri && rj:
		return vector.Farther
	default:
		return vector.Star
	}
}

// ExtendedVector builds the quantitative sampling vector of Def. 10:
// the pair component is (N_(i,j) − N_(j,i)) / k ∈ [−1, 1], preserving how
// lopsided the flip was. Fault cases follow eq. 6 with the same ±1/Star
// values as the ternary vector.
func (g *Group) ExtendedVector() vector.Vector {
	n := g.N()
	k := g.K()
	v := vector.New(n)
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.Reported[i] && g.Reported[j] && k > 0 {
				wins, losses, _ := g.PairCounts(i, j)
				v[idx] = vector.Value(float64(wins-losses) / float64(k))
			} else {
				v[idx] = g.pairValue(i, j)
			}
			idx++
		}
	}
	return v
}

// DetectionSequence returns the node IDs of reporting nodes sorted by
// descending RSS at instant t — the per-instant detection sequence of
// Def. 3 used by the sequence-matching baselines.
func (g *Group) DetectionSequence(t int) []int {
	var ids []int
	for i, rep := range g.Reported {
		if rep {
			ids = append(ids, i)
		}
	}
	// Insertion sort by descending RSS: reports are small (n ≤ 40).
	for a := 1; a < len(ids); a++ {
		for b := a; b > 0 && g.RSS[t][ids[b]] > g.RSS[t][ids[b-1]]; b-- {
			ids[b], ids[b-1] = ids[b-1], ids[b]
		}
	}
	return ids
}

// MeanRSS returns the per-node mean RSS over the group's instants for
// reporting nodes; the second result lists the reporting node IDs.
func (g *Group) MeanRSS() (means []float64, ids []int) {
	k := float64(g.K())
	for i, rep := range g.Reported {
		if !rep {
			continue
		}
		var sum float64
		for t := range g.RSS {
			sum += g.RSS[t][i]
		}
		means = append(means, sum/k)
		ids = append(ids, i)
	}
	return means, ids
}
