package sampling

import (
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/vector"
)

// TestValidateFaultHeavy pins Validate on the degenerate groups fault
// injection produces: zero delivered reports, k=1, and all-star inputs
// are structurally valid; shape mismatches are not.
func TestValidateFaultHeavy(t *testing.T) {
	zeroDelivered := &Group{
		RSS:      [][]float64{{0, 0, 0}, {0, 0, 0}},
		Reported: []bool{false, false, false},
	}
	if err := zeroDelivered.Validate(); err != nil {
		t.Errorf("zero-delivered group rejected: %v", err)
	}
	if zeroDelivered.NumReported() != 0 {
		t.Errorf("NumReported = %d, want 0", zeroDelivered.NumReported())
	}
	kOne := &Group{
		RSS:      [][]float64{{-50, -60}},
		Reported: []bool{true, true},
	}
	if err := kOne.Validate(); err != nil {
		t.Errorf("k=1 group rejected: %v", err)
	}
	empty := &Group{Reported: []bool{false, false}}
	if err := empty.Validate(); err != nil {
		t.Errorf("zero-instant group rejected: %v", err)
	}
	ragged := &Group{
		RSS:      [][]float64{{-50, -60}, {-50}},
		Reported: []bool{true, true},
	}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged matrix accepted")
	}
	mismatch := &Group{
		RSS:      [][]float64{{-50, -60}},
		Reported: []bool{true},
	}
	if err := mismatch.Validate(); err == nil {
		t.Error("Reported/column mismatch accepted")
	}
}

// TestVectorsOnFaultHeavyGroups checks the eq. 6 filling on the fault
// extremes: an all-silent group is all Star in both variants, and a
// k=1 group still yields only legal values.
func TestVectorsOnFaultHeavyGroups(t *testing.T) {
	n := 4
	g := &Group{
		RSS:      [][]float64{make([]float64, n)},
		Reported: make([]bool, n),
		Epsilon:  1,
	}
	for _, v := range []vector.Vector{g.Vector(), g.ExtendedVector()} {
		if v.CountStars() != v.Dim() {
			t.Errorf("all-silent group: %d stars of %d pairs", v.CountStars(), v.Dim())
		}
	}
	g.Reported[0], g.Reported[2] = true, true
	g.RSS[0][0], g.RSS[0][2] = -40, -60
	for _, v := range []vector.Vector{g.Vector(), g.ExtendedVector()} {
		for i := 0; i < v.Dim(); i++ {
			x := v[i]
			if x.IsStar() {
				continue
			}
			if float64(x) < -1 || float64(x) > 1 {
				t.Errorf("component %d = %v outside [-1,1]", i, float64(x))
			}
		}
	}
}

// dropAll suppresses every report; biaser shifts every sample.
type dropAll struct{}

func (dropAll) DropReport(node int, rng *randx.Stream) bool { return true }
func (dropAll) PerturbRSS(node int, rss float64) float64    { return rss }

type biaser struct{ bias float64 }

func (biaser) DropReport(node int, rng *randx.Stream) bool { return false }
func (b biaser) PerturbRSS(node int, rss float64) float64  { return rss + b.bias }

func testSampler() *Sampler {
	return &Sampler{
		Model: rf.Default(),
		Nodes: []geom.Point{geom.Pt(40, 50), geom.Pt(60, 50), geom.Pt(50, 60)},
	}
}

// TestSampleFaultsHooks checks the nil-is-off injection points: a
// drop-all injector silences the field, a bias injector shifts every
// sample by exactly its bias, and a nil injector reproduces the
// uninjected draws.
func TestSampleFaultsHooks(t *testing.T) {
	pos := geom.Pt(50, 50)
	base := testSampler()
	want := base.Sample(pos, 3, randx.New(6))

	silenced := testSampler()
	silenced.Faults = dropAll{}
	if g := silenced.Sample(pos, 3, randx.New(6)); g.NumReported() != 0 {
		t.Errorf("drop-all injector delivered %d reports", g.NumReported())
	}

	biased := testSampler()
	biased.Faults = biaser{bias: 7}
	gb := biased.Sample(pos, 3, randx.New(6))
	for i := range want.Reported {
		if want.Reported[i] != gb.Reported[i] {
			t.Fatalf("bias injector changed who reported (node %d)", i)
		}
		if !want.Reported[i] {
			continue
		}
		for tt := range want.RSS {
			if got := gb.RSS[tt][i] - want.RSS[tt][i]; got != 7 {
				t.Errorf("RSS[%d][%d] shifted by %v, want 7", tt, i, got)
			}
		}
	}
}
