package sampling

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fttt/internal/vector"
)

// genGroup builds a random well-formed Group from quick's random source.
func genGroup(r *rand.Rand) *Group {
	n := 2 + r.Intn(6)
	k := 1 + r.Intn(7)
	g := &Group{
		RSS:      make([][]float64, k),
		Reported: make([]bool, n),
		Epsilon:  float64(r.Intn(3)) * 0.5,
	}
	anyReported := false
	for i := range g.Reported {
		g.Reported[i] = r.Intn(4) > 0
		anyReported = anyReported || g.Reported[i]
	}
	if !anyReported {
		g.Reported[0] = true
	}
	for t := range g.RSS {
		g.RSS[t] = make([]float64, n)
		for i := range g.RSS[t] {
			g.RSS[t][i] = r.NormFloat64() * 10
		}
	}
	return g
}

type groupValue struct{ g *Group }

// Generate implements quick.Generator.
func (groupValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(groupValue{g: genGroup(r)})
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(99))}
}

// Property: Algorithm 1's output dimension is always C(n,2) and every
// component is a legal pair value.
func TestQuickVectorWellFormed(t *testing.T) {
	f := func(gv groupValue) bool {
		v := gv.g.Vector()
		if v.Dim() != vector.NumPairs(gv.g.N()) {
			return false
		}
		for _, x := range v {
			if !x.IsStar() && x != vector.Nearer && x != vector.Farther && x != vector.Flipped {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: the extended vector agrees with the basic one on every
// decided (±1) pair and on every fault (±1/star) pair, and is strictly
// inside (-1, 1) exactly where the basic vector reports Flipped with no
// resolution ties pinned at the boundary.
func TestQuickExtendedConsistentWithBasic(t *testing.T) {
	f := func(gv groupValue) bool {
		b := gv.g.Vector()
		e := gv.g.ExtendedVector()
		if len(b) != len(e) {
			return false
		}
		for k := range b {
			switch {
			case b[k].IsStar():
				if !e[k].IsStar() {
					return false
				}
			case b[k] == vector.Nearer:
				if e[k] != 1 {
					return false
				}
			case b[k] == vector.Farther:
				if e[k] != -1 {
					return false
				}
			default: // Flipped
				if e[k].IsStar() || e[k] < -1 || e[k] > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: eq. 6 — a pair with exactly one reporting node is ±1 with the
// reporting node on the winning side; two silent nodes give Star.
func TestQuickFaultFilling(t *testing.T) {
	f := func(gv groupValue) bool {
		g := gv.g
		v := g.Vector()
		n := g.N()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				val := v.Get(i, j, n)
				ri, rj := g.Reported[i], g.Reported[j]
				switch {
				case ri && !rj:
					if val != vector.Nearer {
						return false
					}
				case !ri && rj:
					if val != vector.Farther {
						return false
					}
				case !ri && !rj:
					if !val.IsStar() {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: PairCounts partitions the k instants.
func TestQuickPairCountsPartition(t *testing.T) {
	f := func(gv groupValue) bool {
		g := gv.g
		n := g.N()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				w, l, u := g.PairCounts(i, j)
				if w+l+u != g.K() || w < 0 || l < 0 || u < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: scaling every RSS by a common additive constant never
// changes the sampling vector — FTTT is calibration-free by
// construction (unlike absolute-RSS methods).
func TestQuickShiftInvariance(t *testing.T) {
	f := func(gv groupValue, shiftRaw int) bool {
		g := gv.g
		shift := float64(shiftRaw%100) / 3
		shifted := &Group{
			RSS:      make([][]float64, g.K()),
			Reported: append([]bool(nil), g.Reported...),
			Epsilon:  g.Epsilon,
		}
		for t := range g.RSS {
			shifted.RSS[t] = make([]float64, g.N())
			for i := range g.RSS[t] {
				shifted.RSS[t][i] = g.RSS[t][i] + shift
			}
		}
		return vector.Equal(g.Vector(), shifted.Vector())
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
