package sampling

import (
	"testing"

	"fttt/internal/vector"
)

// FuzzGroupVector drives the eq. 6 vector filling with arbitrary
// fault-heavy groups: any (k, n, RSS, Reported, ε) combination that
// passes Validate must yield vectors of the right dimension whose
// components are legal (ternary or fractional in [-1, 1], Star exactly
// on the both-silent pairs), with the basic vector strictly ternary.
func FuzzGroupVector(f *testing.F) {
	f.Add(uint8(3), uint8(4), []byte{10, 200, 30, 44, 55, 66, 70, 81, 92, 103, 114, 125}, uint8(0b0101), 1.0)
	f.Add(uint8(0), uint8(2), []byte{}, uint8(0), 0.5)
	f.Add(uint8(1), uint8(6), []byte{1, 2, 3, 4, 5, 6}, uint8(0xFF), 0.0)
	f.Fuzz(func(t *testing.T, k, n uint8, raw []byte, reported uint8, eps float64) {
		kk, nn := int(k%5), int(n%8)
		g := &Group{
			RSS:      make([][]float64, kk),
			Reported: make([]bool, nn),
			Epsilon:  eps,
		}
		for ti := 0; ti < kk; ti++ {
			g.RSS[ti] = make([]float64, nn)
			for i := 0; i < nn; i++ {
				if idx := ti*nn + i; idx < len(raw) {
					// RSS in a plausible dBm band, deterministic in the byte.
					g.RSS[ti][i] = -120 + float64(raw[idx])/2
				}
			}
		}
		for i := 0; i < nn; i++ {
			g.Reported[i] = reported&(1<<(i%8)) != 0
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("constructed group invalid: %v", err)
		}

		wantDim := vector.NumPairs(nn)
		for name, v := range map[string]vector.Vector{
			"basic": g.Vector(), "extended": g.ExtendedVector(),
		} {
			if v.Dim() != wantDim {
				t.Fatalf("%s vector dim = %d, want %d", name, v.Dim(), wantDim)
			}
			idx := 0
			for i := 0; i < nn; i++ {
				for j := i + 1; j < nn; j++ {
					x := v[idx]
					bothSilent := !g.Reported[i] && !g.Reported[j]
					if x.IsStar() != bothSilent {
						t.Fatalf("%s[%d] star=%v but bothSilent=%v (pair %d,%d)",
							name, idx, x.IsStar(), bothSilent, i, j)
					}
					if !x.IsStar() {
						if float64(x) < -1 || float64(x) > 1 {
							t.Fatalf("%s[%d] = %v outside [-1,1]", name, idx, float64(x))
						}
						if name == "basic" && x != vector.Farther && x != vector.Flipped && x != vector.Nearer {
							t.Fatalf("basic[%d] = %v not ternary", idx, float64(x))
						}
					}
					idx++
				}
			}
		}
	})
}
