package vector

import (
	"math"
	"math/rand"
	"testing"
)

func TestNumPairs(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 3}, {4, 6}, {5, 10}, {10, 45}, {40, 780},
	}
	for _, tt := range tests {
		if got := NumPairs(tt.n); got != tt.want {
			t.Errorf("NumPairs(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestPairIndexEnumeration(t *testing.T) {
	// The enumeration of Def. 5: (0,1),(0,2),...,(0,n-1),(1,2),...
	n := 5
	want := [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}
	for idx, p := range want {
		if got := PairIndex(p[0], p[1], n); got != idx {
			t.Errorf("PairIndex(%d,%d,%d) = %d, want %d", p[0], p[1], n, got, idx)
		}
		i, j := PairAt(idx, n)
		if i != p[0] || j != p[1] {
			t.Errorf("PairAt(%d,%d) = (%d,%d), want %v", idx, n, i, j, p)
		}
	}
}

func TestPairIndexBijection(t *testing.T) {
	for _, n := range []int{2, 3, 7, 20, 40} {
		seen := make([]bool, NumPairs(n))
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				idx := PairIndex(i, j, n)
				if idx < 0 || idx >= len(seen) || seen[idx] {
					t.Fatalf("n=%d: index %d for (%d,%d) invalid or duplicated", n, idx, i, j)
				}
				seen[idx] = true
				ri, rj := PairAt(idx, n)
				if ri != i || rj != j {
					t.Fatalf("n=%d: PairAt(PairIndex(%d,%d)) = (%d,%d)", n, i, j, ri, rj)
				}
			}
		}
	}
}

func TestPairIndexPanics(t *testing.T) {
	for _, c := range [][3]int{{1, 1, 4}, {2, 1, 4}, {0, 4, 4}, {-1, 2, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PairIndex(%v) should panic", c)
				}
			}()
			PairIndex(c[0], c[1], c[2])
		}()
	}
}

func TestPairAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PairAt out of range should panic")
		}
	}()
	PairAt(6, 4)
}

func TestNodes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 10, 40} {
		if got := New(n).Nodes(); got != n {
			t.Errorf("Nodes() = %d, want %d", got, n)
		}
	}
	if got := (make(Vector, 2)).Nodes(); got != -1 {
		t.Errorf("non-triangular length should report -1, got %d", got)
	}
}

func TestGetSet(t *testing.T) {
	v := New(4)
	v.Set(1, 3, 4, Nearer)
	if got := v.Get(1, 3, 4); got != Nearer {
		t.Errorf("Get = %v, want Nearer", got)
	}
	if got := v.Get(0, 1, 4); got != Flipped {
		t.Errorf("unset component = %v, want Flipped", got)
	}
}

func TestStar(t *testing.T) {
	if !Star.IsStar() {
		t.Error("Star.IsStar() must be true")
	}
	if Nearer.IsStar() || Farther.IsStar() || Flipped.IsStar() {
		t.Error("ternary values must not be Star")
	}
	if Star.String() != "*" {
		t.Errorf("Star.String() = %q", Star.String())
	}
}

func TestValueString(t *testing.T) {
	if got := Nearer.String(); got != "+1" {
		t.Errorf("Nearer = %q", got)
	}
	if got := Farther.String(); got != "-1" {
		t.Errorf("Farther = %q", got)
	}
	if got := Flipped.String(); got != "+0" {
		t.Errorf("Flipped = %q", got)
	}
	if got := Value(0.33).String(); got != "+0.330" {
		t.Errorf("fractional = %q", got)
	}
}

func TestDiffStarsZero(t *testing.T) {
	// eq. 7: a component containing a star never contributes.
	a := Vector{Nearer, Star, Farther, Star}
	b := Vector{Farther, Nearer, Star, Star}
	d := Diff(a, b)
	want := Vector{2, 0, 0, 0}
	for k := range want {
		if d[k] != want[k] {
			t.Errorf("Diff[%d] = %v, want %v", k, d[k], want[k])
		}
	}
}

func TestDistancePaperExample(t *testing.T) {
	// Sec. 4.4(3): V_d = [1,1,1,-1,*,1] vs V_s(f8) = [1,1,1,0,0,0].
	// The star never contributes (eq. 7); the two non-star mismatches are
	// ±1 each, so the Euclidean distance is √2. (The paper prints "1/2"
	// at this spot, which is the Manhattan similarity — its own Sec. 6
	// worked examples use the Euclidean norm of Def. 7, which we follow.)
	vd := Vector{1, 1, 1, -1, Star, 1}
	vs := FromInts(1, 1, 1, 0, 0, 0)
	if got := Distance(vd, vs); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("Distance = %v, want √2", got)
	}
	if got := Similarity(vd, vs); math.Abs(got-1/math.Sqrt2) > 1e-12 {
		t.Errorf("Similarity = %v, want 1/√2", got)
	}
}

func TestExtendedSimilarityPaperExample(t *testing.T) {
	// Sec. 6 example: extended V_d = [0.33..,1,1,1,1,-1] against the
	// signatures of f1..f6 in Fig. 7; paper reports S(f1) = 1.5 as the
	// unique maximum. We verify the arithmetic of the similarity law on
	// the f1 case: difference (1/3 - 1) = -2/3, all else equal → S = 1.5.
	vd := Vector{Value(1.0 / 3), 1, 1, 1, 1, -1}
	f1 := FromInts(1, 1, 1, 1, 1, -1)
	if got := Similarity(vd, f1); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("S(f1) = %v, want 1.5", got)
	}
	// Paper: S(f4) = 1/√((1/3)²+1) ≈ 0.949 — f4 matches the flipped first
	// pair but differs by one full component elsewhere.
	f4 := FromInts(0, 1, 1, 1, 1, 0)
	want := 1 / math.Sqrt(1.0/9+1)
	if got := Similarity(vd, f4); math.Abs(got-want) > 1e-9 {
		t.Errorf("S(f4) = %v, want %v", got, want)
	}
	if Similarity(vd, f1) <= Similarity(vd, f4) {
		t.Error("f1 should win over f4 with extended values")
	}
}

func TestSimilarityIdentical(t *testing.T) {
	a := FromInts(1, 0, -1)
	if got := Similarity(a, a.Clone()); !math.IsInf(got, 1) {
		t.Errorf("identical similarity = %v, want +Inf", got)
	}
}

func TestSimilarityTieWithoutExtension(t *testing.T) {
	// Sec. 6 motivation: ternary sampling vector [0,1,1,1,1,-1] ties
	// between f1 = [1,1,1,1,1,-1] and f4 = [0,1,1,1,1,-1]... in the paper
	// f1 and f4 both reach similarity 1. Reproduce a tie.
	vd := FromInts(0, 1, 1, 1, 1, -1)
	f1 := FromInts(1, 1, 1, 1, 1, -1)
	f4 := FromInts(0, 1, 1, 1, 1, 0)
	if Similarity(vd, f1) != Similarity(vd, f4) {
		t.Errorf("expected tie: %v vs %v", Similarity(vd, f1), Similarity(vd, f4))
	}
}

func TestDistanceSymmetryAndTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := []Value{Farther, Flipped, Nearer, Star}
	randVec := func() Vector {
		v := make(Vector, 10)
		for k := range v {
			v[k] = vals[rng.Intn(len(vals))]
		}
		return v
	}
	for trial := 0; trial < 500; trial++ {
		a, b, c := randVec(), randVec(), randVec()
		if math.Abs(Distance(a, b)-Distance(b, a)) > 1e-12 {
			t.Fatal("distance not symmetric")
		}
		if Distance(a, a) != 0 {
			t.Fatal("self-distance nonzero")
		}
		// Triangle inequality holds for star-free vectors; with stars the
		// modified difference can violate it, so restrict:
		if a.CountStars() == 0 && b.CountStars() == 0 && c.CountStars() == 0 {
			if Distance(a, c) > Distance(a, b)+Distance(b, c)+1e-12 {
				t.Fatal("triangle inequality violated on star-free vectors")
			}
		}
	}
}

func TestEqual(t *testing.T) {
	a := Vector{Nearer, Star, Flipped}
	if !Equal(a, a.Clone()) {
		t.Error("clone should be Equal")
	}
	if Equal(a, Vector{Nearer, Flipped, Flipped}) {
		t.Error("star vs non-star should differ")
	}
	if Equal(a, Vector{Nearer, Star}) {
		t.Error("different dims should differ")
	}
	if Equal(Vector{Nearer}, Vector{Farther}) {
		t.Error("different values should differ")
	}
}

func TestHammingNeighbors(t *testing.T) {
	base := FromInts(1, 0, -1, 0)
	oneStep := FromInts(1, 1, -1, 0) // one component ±1
	twoStep := FromInts(1, 1, 0, 0)  // two components changed
	bigStep := FromInts(-1, 0, -1, 0)
	if !HammingNeighbors(base, oneStep) {
		t.Error("one ±1 change should be neighbors")
	}
	if HammingNeighbors(base, twoStep) {
		t.Error("two changes should not be neighbors")
	}
	if HammingNeighbors(base, bigStep) {
		t.Error("a ±2 change should not be neighbors")
	}
	if HammingNeighbors(base, base) {
		t.Error("identical vectors are not neighbors")
	}
	if HammingNeighbors(base, FromInts(1, 0, -1)) {
		t.Error("dimension mismatch should be false")
	}
}

func TestKeyInjectiveOnTernary(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := []Value{Farther, Flipped, Nearer, Star}
	seen := map[string]Vector{}
	for trial := 0; trial < 2000; trial++ {
		v := make(Vector, 8)
		for k := range v {
			v[k] = vals[rng.Intn(len(vals))]
		}
		key := v.Key()
		if prev, ok := seen[key]; ok && !Equal(prev, v) {
			t.Fatalf("key collision: %v vs %v → %q", prev, v, key)
		}
		seen[key] = v
	}
}

func TestCountHelpers(t *testing.T) {
	v := Vector{Nearer, Star, Flipped, Flipped, Star, Farther}
	if got := v.CountStars(); got != 2 {
		t.Errorf("CountStars = %d, want 2", got)
	}
	if got := v.CountFlipped(); got != 2 {
		t.Errorf("CountFlipped = %d, want 2", got)
	}
}

func TestString(t *testing.T) {
	v := Vector{Nearer, Star, Farther}
	if got := v.String(); got != "[+1,*,-1]" {
		t.Errorf("String = %q", got)
	}
}

func TestDiffPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Diff with mismatched dims should panic")
		}
	}()
	Diff(New(3), New(4))
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Distance with mismatched dims should panic")
		}
	}()
	Distance(New(3), New(4))
}
