package vector

import (
	"fmt"
	"math"
)

// Int8 quantization codec for signature/sampling values.
//
// The SoA signature store (field.SigSoA) keeps face signatures as
// contiguous int8 columns. A Value quantizes against a denominator
// denom ∈ [1, MaxDenom]: the code of v is round(v·denom), so the
// ternary values of Def. 4 encode with denom 1 as {-1, 0, +1} and the
// Def. 10 extended values (wins−losses)/k encode with denom k as the
// integer wins−losses. Star gets the reserved code StarCode, which no
// legal value can produce (|round(v·denom)| ≤ denom ≤ 127 < 128).
//
// The codec is proven lossless for legal values by construction:
// Quantize re-derives the value from the candidate code and rejects the
// encode — it never clamps or rounds away information — unless the
// round-trip reproduces v bit-for-bit. Dequantize(Quantize(v)) == v
// therefore holds for every value Quantize accepts.

// StarCode is the reserved int8 code for the Star value. It is outside
// [-MaxDenom, MaxDenom], so no quantized legal value collides with it.
const StarCode int8 = math.MinInt8

// MaxDenom is the largest supported quantization denominator: codes
// must fit an int8 alongside the reserved StarCode.
const MaxDenom = 127

// Quantize encodes v against denom. It returns an error — never a
// clamped or approximated code — when v cannot be represented exactly:
// out-of-range magnitudes (|v| > 1), and in-range values that are not
// an exact multiple of 1/denom as a float64.
func Quantize(v Value, denom int) (int8, error) {
	if denom < 1 || denom > MaxDenom {
		return 0, fmt.Errorf("vector: quantization denominator %d outside [1, %d]", denom, MaxDenom)
	}
	if v.IsStar() {
		return StarCode, nil
	}
	r := math.Round(float64(v) * float64(denom))
	if r < -float64(denom) || r > float64(denom) {
		return 0, fmt.Errorf("vector: value %v out of range for denominator %d", float64(v), denom)
	}
	if Value(r/float64(denom)) != v {
		return 0, fmt.Errorf("vector: value %v is not representable with denominator %d", float64(v), denom)
	}
	return int8(r), nil
}

// Dequantize decodes a code produced by Quantize with the same
// denominator. For codes Quantize returned, the result equals the
// original value exactly.
func Dequantize(c int8, denom int) Value {
	if c == StarCode {
		return Star
	}
	return Value(float64(c) / float64(denom))
}

// QuantizeVector appends the codes of every component of v to dst and
// returns the extended slice, or an error naming the first component
// that does not quantize losslessly.
func QuantizeVector(dst []int8, v Vector, denom int) ([]int8, error) {
	if denom == 1 {
		// Ternary fast path: with denom 1 the only representable values
		// are exactly {-1, 0, +1, Star} (anything else fails Quantize's
		// round-trip check), so an equality switch replaces the
		// round-and-verify float work on the divide-time bulk path.
		for k, x := range v {
			switch {
			case x == 0:
				dst = append(dst, 0)
			case x == 1:
				dst = append(dst, 1)
			case x == -1:
				dst = append(dst, -1)
			case x.IsStar():
				dst = append(dst, StarCode)
			default:
				return nil, fmt.Errorf("component %d: vector: value %v is not representable with denominator 1", k, float64(x))
			}
		}
		return dst, nil
	}
	for k, x := range v {
		c, err := Quantize(x, denom)
		if err != nil {
			return nil, fmt.Errorf("component %d: %w", k, err)
		}
		dst = append(dst, c)
	}
	return dst, nil
}

// DequantizeVector appends the decoded values of codes to dst and
// returns the extended slice.
func DequantizeVector(dst Vector, codes []int8, denom int) Vector {
	for _, c := range codes {
		dst = append(dst, Dequantize(c, denom))
	}
	return dst
}

// CommonDenominator returns the smallest denominator in [1, MaxDenom]
// that losslessly quantizes every distinct value of vs, or 0 if none
// exists (a value outside [-1, 1], or one that is no exact multiple of
// 1/denom for any legal denom — e.g. an irrational fraction's float).
// Ternary vectors resolve to 1; Def. 10 vectors over k samples resolve
// to a divisor of k.
func CommonDenominator(vs ...Vector) int {
	// Ternary fast path: every division the RatioClassifier builds is
	// pure {-1, 0, +1, Star}, and hashing hundreds of thousands of
	// float keys below would dominate divide time. A plain comparison
	// scan settles denom 1 without touching the map.
	ternary := true
scan:
	for _, v := range vs {
		for _, x := range v {
			if x != 0 && x != 1 && x != -1 && !x.IsStar() {
				ternary = false
				break scan
			}
		}
	}
	if ternary {
		return 1
	}
	// Collect the distinct non-star values first: the denominator search
	// then costs O(distinct × denom) instead of O(total × denom).
	var distinct []Value
	seen := make(map[Value]struct{})
	for _, v := range vs {
		for _, x := range v {
			if x.IsStar() {
				continue
			}
			if _, ok := seen[x]; !ok {
				seen[x] = struct{}{}
				distinct = append(distinct, x)
			}
		}
	}
	for denom := 1; denom <= MaxDenom; denom++ {
		ok := true
		for _, x := range distinct {
			if _, err := Quantize(x, denom); err != nil {
				ok = false
				break
			}
		}
		if ok {
			return denom
		}
	}
	return 0
}
