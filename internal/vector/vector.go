// Package vector implements the signature/sampling vector algebra of the
// paper: ternary node-pair values (Def. 4), the ascending pair enumeration
// shared by sampling vectors (Def. 5) and signature vectors (Def. 6), the
// star value used by the fault-tolerance rules (eq. 6), the modified
// component difference (Def. 8, eq. 7), the Euclidean similarity (Def. 7),
// and the quantitative extended values of the strategy extension
// (Def. 10).
package vector

import (
	"fmt"
	"math"
	"strings"
)

// Value is a node-pair value. The ternary values of Def. 4 are -1, 0 and
// +1; Star marks a pair in which neither node reported (eq. 6, case 4).
// Extended FTTT additionally uses fractional values in [-1, 1] (Def. 10).
type Value float64

// The ternary pair values. For a pair (n_i, n_j) with i < j:
// Nearer (+1) means rss_i was greater in every sample of the group,
// Farther (-1) means rss_j was greater in every sample, and Flipped (0)
// means the order inverted at least once within the group — the target is
// in the pair's uncertain area.
const (
	Farther Value = -1
	Flipped Value = 0
	Nearer  Value = 1
)

// Star marks a pair whose relation is unknown because neither node
// reported. It never contributes to a vector difference (eq. 7). NaN is
// used so Star can share the float64 representation with extended values.
var Star = Value(math.NaN())

// IsStar reports whether v is the star value.
func (v Value) IsStar() bool { return math.IsNaN(float64(v)) }

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.IsStar() {
		return "*"
	}
	if float64(v) == math.Trunc(float64(v)) {
		return fmt.Sprintf("%+d", int(v))
	}
	return fmt.Sprintf("%+.3f", float64(v))
}

// NumPairs returns C(n, 2), the dimension of vectors over n nodes.
func NumPairs(n int) int {
	if n < 2 {
		return 0
	}
	return n * (n - 1) / 2
}

// PairIndex maps the node pair (i, j) with 0 <= i < j < n to its position
// in the ascending enumeration (n_0,n_1), (n_0,n_2), …, (n_{n-2},n_{n-1})
// of Def. 5/6. It panics on an invalid pair.
func PairIndex(i, j, n int) int {
	if i < 0 || j <= i || j >= n {
		panic(fmt.Sprintf("vector: invalid pair (%d,%d) for n=%d", i, j, n))
	}
	// Pairs with first element < i occupy sum_{a<i} (n-1-a) slots.
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// PairAt is the inverse of PairIndex: it returns the pair (i, j) at
// position idx of the enumeration over n nodes.
func PairAt(idx, n int) (i, j int) {
	if idx < 0 || idx >= NumPairs(n) {
		panic(fmt.Sprintf("vector: pair index %d out of range for n=%d", idx, n))
	}
	i = 0
	for block := n - 1; idx >= block; block-- {
		idx -= block
		i++
	}
	return i, i + 1 + idx
}

// Vector is a sampling or signature vector: one Value per node pair in
// ascending pair order. Vectors are plain slices; use Clone before
// mutating a shared vector.
type Vector []Value

// New returns a zero (all-Flipped) vector over n nodes.
func New(n int) Vector { return make(Vector, NumPairs(n)) }

// FromInts builds a vector from ternary ints, convenient in tests and
// examples: 1, 0, -1 map to Nearer, Flipped, Farther.
func FromInts(vals ...int) Vector {
	v := make(Vector, len(vals))
	for k, x := range vals {
		v[k] = Value(x)
	}
	return v
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Dim returns the number of components (node pairs).
func (v Vector) Dim() int { return len(v) }

// Nodes returns the number of nodes n with C(n,2) == len(v), or -1 if the
// length is not a triangular number.
func (v Vector) Nodes() int {
	// Solve n(n-1)/2 == len.
	n := int((1 + math.Sqrt(1+8*float64(len(v)))) / 2)
	for _, cand := range []int{n - 1, n, n + 1} {
		if cand >= 0 && NumPairs(cand) == len(v) {
			return cand
		}
	}
	return -1
}

// Get returns the value of pair (i, j), i < j, for a vector over n nodes.
func (v Vector) Get(i, j, n int) Value { return v[PairIndex(i, j, n)] }

// Set assigns the value of pair (i, j), i < j, for a vector over n nodes.
func (v Vector) Set(i, j, n int, val Value) { v[PairIndex(i, j, n)] = val }

// Diff returns the component-wise modified difference of Def. 8: any
// component in which either vector holds Star contributes zero (eq. 7).
// It panics if the dimensions differ.
func Diff(a, b Vector) Vector {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(a), len(b)))
	}
	d := make(Vector, len(a))
	for k := range a {
		if a[k].IsStar() || b[k].IsStar() {
			d[k] = 0
			continue
		}
		d[k] = a[k] - b[k]
	}
	return d
}

// Distance returns the Euclidean norm of the modified difference.
func Distance(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for k := range a {
		if a[k].IsStar() || b[k].IsStar() {
			continue
		}
		d := float64(a[k] - b[k])
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Similarity returns 1/Distance(a, b), the maximum-likelihood matching
// score of Def. 7. Identical vectors have infinite similarity, which
// Go's float64 ordering handles naturally when selecting a maximum.
func Similarity(a, b Vector) float64 {
	d := Distance(a, b)
	if d == 0 {
		return math.Inf(1)
	}
	return 1 / d
}

// Equal reports whether a and b agree in every component, with Star equal
// only to Star.
func Equal(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		switch {
		case a[k].IsStar() && b[k].IsStar():
		case a[k].IsStar() || b[k].IsStar():
			return false
		case a[k] != b[k]:
			return false
		}
	}
	return true
}

// HammingNeighbors reports whether a and b differ in exactly one component
// and by exactly magnitude 1 there — the neighbor-face relation of
// Theorem 1. Star components are skipped.
func HammingNeighbors(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	diffs := 0
	for k := range a {
		if a[k].IsStar() || b[k].IsStar() {
			continue
		}
		d := math.Abs(float64(a[k] - b[k]))
		if d == 0 {
			continue
		}
		if d != 1 {
			return false
		}
		diffs++
		if diffs > 1 {
			return false
		}
	}
	return diffs == 1
}

// Key returns a compact string key identifying a ternary vector; vectors
// with the same key have identical components. Intended for grouping grid
// cells into faces (Lemma 1). Extended (fractional) vectors should not be
// used as keys.
func (v Vector) Key() string {
	var sb strings.Builder
	sb.Grow(len(v))
	for _, x := range v {
		switch {
		case x.IsStar():
			sb.WriteByte('*')
		case x == Farther:
			sb.WriteByte('-')
		case x == Nearer:
			sb.WriteByte('+')
		case x == Flipped:
			sb.WriteByte('0')
		default:
			// Fractional values: include a short fixed-point form so the
			// key remains injective enough for debugging; callers should
			// not rely on fractional keys.
			fmt.Fprintf(&sb, "(%.3f)", float64(x))
		}
	}
	return sb.String()
}

// String implements fmt.Stringer.
func (v Vector) String() string {
	parts := make([]string, len(v))
	for k, x := range v {
		parts[k] = x.String()
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// CountFlipped returns the number of components that recorded at least
// one observed order flip: the ternary Flipped value and the fractional
// extended values — everything that is neither ±1 nor Star. This is the
// per-localization flip count the telemetry layer exports
// (fttt_core_flipped_pairs_total).
func (v Vector) CountFlipped() int {
	c := 0
	for _, x := range v {
		if x.IsStar() {
			continue
		}
		if x > Farther && x < Nearer {
			c++
		}
	}
	return c
}

// CountStars returns the number of Star components.
func (v Vector) CountStars() int {
	n := 0
	for _, x := range v {
		if x.IsStar() {
			n++
		}
	}
	return n
}
