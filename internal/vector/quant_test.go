package vector

import (
	"math"
	"testing"
)

// TestQuantizeTernaryRoundTrip pins the base contract: the Def. 4
// ternary values and Star round-trip exactly at every legal
// denominator.
func TestQuantizeTernaryRoundTrip(t *testing.T) {
	for denom := 1; denom <= MaxDenom; denom++ {
		for _, v := range []Value{Farther, Flipped, Nearer, Star} {
			c, err := Quantize(v, denom)
			if err != nil {
				t.Fatalf("Quantize(%v, %d): %v", v, denom, err)
			}
			got := Dequantize(c, denom)
			if v.IsStar() {
				if !got.IsStar() {
					t.Fatalf("Star round-trips to %v at denom %d", got, denom)
				}
				if c != StarCode {
					t.Fatalf("Star encodes to %d at denom %d, want %d", c, denom, StarCode)
				}
				continue
			}
			if got != v {
				t.Fatalf("Quantize/Dequantize(%v, %d) = %v", v, denom, got)
			}
		}
	}
}

// TestQuantizeFractionRoundTrip is the Def. 10 property: every
// extended value (wins−losses)/k, computed the way sampling computes it
// (float64 division), round-trips losslessly at denominator k, for
// every k up to the codec limit.
func TestQuantizeFractionRoundTrip(t *testing.T) {
	for k := 1; k <= MaxDenom; k++ {
		for p := -k; p <= k; p++ {
			v := Value(float64(p) / float64(k))
			c, err := Quantize(v, k)
			if err != nil {
				t.Fatalf("Quantize(%d/%d): %v", p, k, err)
			}
			if int(c) != p {
				t.Fatalf("Quantize(%d/%d) = code %d, want %d", p, k, c, p)
			}
			if got := Dequantize(c, k); got != v {
				t.Fatalf("Dequantize(Quantize(%d/%d)) = %v, want %v", p, k, float64(got), float64(v))
			}
		}
	}
}

// TestQuantizeRejectsOutOfRange pins explicit rejection — never silent
// clamping — for magnitudes beyond 1.
func TestQuantizeRejectsOutOfRange(t *testing.T) {
	for _, v := range []Value{1.0000001, -1.0000001, 2, -2, Value(math.Inf(1)), Value(math.Inf(-1))} {
		for _, denom := range []int{1, 5, MaxDenom} {
			if c, err := Quantize(v, denom); err == nil {
				t.Errorf("Quantize(%v, %d) = %d, want out-of-range error", float64(v), denom, c)
			}
		}
	}
}

// TestQuantizeRejectsUnrepresentable pins rejection of in-range values
// that are not exact multiples of 1/denom: rounding them to the nearest
// code would lose information, so the codec must refuse.
func TestQuantizeRejectsUnrepresentable(t *testing.T) {
	cases := []struct {
		v     Value
		denom int
	}{
		{0.5, 1},                       // a k=2 fraction at ternary denom
		{Value(1.0 / 3.0), 2},          // thirds at halves
		{0.1, 3},                       // tenths at thirds
		{Value(math.Pi / 4), MaxDenom}, // nowhere representable
	}
	for _, tc := range cases {
		if c, err := Quantize(tc.v, tc.denom); err == nil {
			t.Errorf("Quantize(%v, %d) = %d, want unrepresentable error", float64(tc.v), tc.denom, c)
		}
	}
}

// TestQuantizeRejectsBadDenominator covers the denominator domain.
func TestQuantizeRejectsBadDenominator(t *testing.T) {
	for _, denom := range []int{0, -1, MaxDenom + 1} {
		if _, err := Quantize(Flipped, denom); err == nil {
			t.Errorf("Quantize(0, %d) accepted, want denominator error", denom)
		}
	}
}

// TestQuantizeVectorRoundTrip exercises the slice helpers end to end,
// mixing ternary, Star and fractional components.
func TestQuantizeVectorRoundTrip(t *testing.T) {
	const k = 5
	v := Vector{Nearer, Farther, Star, Flipped, Value(3.0 / k), Value(-4.0 / k), Value(1.0 / k)}
	codes, err := QuantizeVector(nil, v, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != len(v) {
		t.Fatalf("got %d codes for %d components", len(codes), len(v))
	}
	back := DequantizeVector(nil, codes, k)
	if !Equal(back, v) {
		t.Fatalf("round-trip mismatch:\n in  %v\n out %v", v, back)
	}
	// A single bad component rejects the whole vector.
	v[2] = 0.5 // not a fifth
	if _, err := QuantizeVector(nil, v, k); err == nil {
		t.Error("QuantizeVector accepted an unrepresentable component")
	}
}

// TestCommonDenominator pins the denominator search: ternary resolves
// to 1, Def. 10 vectors to their k, and unquantizable input to 0.
func TestCommonDenominator(t *testing.T) {
	if d := CommonDenominator(Vector{Nearer, Farther, Flipped, Star}); d != 1 {
		t.Errorf("ternary common denominator = %d, want 1", d)
	}
	const k = 7
	frac := Vector{Value(2.0 / k), Value(-5.0 / k), Nearer}
	if d := CommonDenominator(frac); d != k {
		t.Errorf("k=%d fractional common denominator = %d, want %d", k, d, k)
	}
	if d := CommonDenominator(Vector{Value(math.Pi / 4)}); d != 0 {
		t.Errorf("pi/4 common denominator = %d, want 0", d)
	}
	if d := CommonDenominator(Vector{Value(1.5)}); d != 0 {
		t.Errorf("out-of-range common denominator = %d, want 0", d)
	}
	if d := CommonDenominator(); d != 1 {
		t.Errorf("empty common denominator = %d, want 1", d)
	}
}
