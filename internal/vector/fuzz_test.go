package vector

import (
	"math"
	"testing"
)

// decodeValue maps one fuzz byte onto the legal value domain: the
// ternary constants, Star, and the fractional extended values of
// Def. 10. Fuzzing the legal domain (rather than raw float bits) keeps
// every failure a genuine contract violation instead of a garbage-in
// complaint.
func decodeValue(b byte) Value {
	switch b % 6 {
	case 0:
		return Farther
	case 1:
		return Flipped
	case 2:
		return Nearer
	case 3:
		return Star
	default:
		// Fractional extended value in [-1, 1], deterministic in b.
		return Value(float64(b)/127.5 - 1)
	}
}

func decodeVector(data []byte, dim int) Vector {
	v := make(Vector, dim)
	for k := 0; k < dim; k++ {
		if k < len(data) {
			v[k] = decodeValue(data[k])
		} else {
			v[k] = Flipped
		}
	}
	return v
}

// FuzzVectorDiff checks the modified component difference of Def. 8
// (eq. 7) on arbitrary legal vectors: star components contribute
// exactly zero, nothing else becomes NaN, the difference is
// antisymmetric, and a vector differs from itself by the zero vector.
func FuzzVectorDiff(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, []byte{5, 4, 3, 2, 1, 0})
	f.Add([]byte{3, 3, 3}, []byte{0, 1, 2})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		dim := len(ab)
		if len(bb) < dim {
			dim = len(bb)
		}
		a, b := decodeVector(ab, dim), decodeVector(bb, dim)

		d := Diff(a, b)
		if d.Dim() != dim {
			t.Fatalf("Diff dim = %d, want %d", d.Dim(), dim)
		}
		rev := Diff(b, a)
		for k := 0; k < dim; k++ {
			if d[k].IsStar() {
				t.Fatalf("Diff produced NaN at %d (%v vs %v)", k, a[k], b[k])
			}
			if (a[k].IsStar() || b[k].IsStar()) && d[k] != 0 {
				t.Fatalf("star pair %d contributed %v, want 0 (eq. 7)", k, d[k])
			}
			if d[k] != -rev[k] {
				t.Fatalf("Diff not antisymmetric at %d: %v vs %v", k, d[k], rev[k])
			}
		}
		for k, x := range Diff(a, a) {
			if x != 0 {
				t.Fatalf("Diff(a,a)[%d] = %v, want 0", k, x)
			}
		}
	})
}

// FuzzSimilarity checks the Def. 7 similarity and its Distance base on
// arbitrary legal vectors: symmetric, non-negative, consistent with the
// norm of the modified difference, infinite exactly on zero distance,
// and invariant when a star component's partner value changes.
func FuzzSimilarity(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250}, []byte{5, 4, 3, 2, 1, 0, 9})
	f.Add([]byte{3}, []byte{2})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		dim := len(ab)
		if len(bb) < dim {
			dim = len(bb)
		}
		a, b := decodeVector(ab, dim), decodeVector(bb, dim)

		dist := Distance(a, b)
		if math.IsNaN(dist) || dist < 0 {
			t.Fatalf("Distance = %v", dist)
		}
		if rev := Distance(b, a); rev != dist {
			t.Fatalf("Distance asymmetric: %v vs %v", dist, rev)
		}
		// Distance is the Euclidean norm of the modified difference.
		var sum float64
		for _, x := range Diff(a, b) {
			sum += float64(x) * float64(x)
		}
		if norm := math.Sqrt(sum); math.Abs(norm-dist) > 1e-9*(1+dist) {
			t.Fatalf("Distance %v != ‖Diff‖ %v", dist, norm)
		}

		sim := Similarity(a, b)
		if math.IsNaN(sim) || sim < 0 {
			t.Fatalf("Similarity = %v", sim)
		}
		if rev := Similarity(b, a); rev != sim {
			t.Fatalf("Similarity asymmetric: %v vs %v", sim, rev)
		}
		if math.IsInf(sim, 1) != (dist == 0) {
			t.Fatalf("Similarity %v inconsistent with Distance %v", sim, dist)
		}
		if s := Similarity(a, a); !math.IsInf(s, 1) {
			t.Fatalf("Similarity(a,a) = %v, want +Inf", s)
		}

		// A star masks its component entirely: replacing the other
		// vector's value under a star must not move the similarity.
		masked := b.Clone()
		changed := false
		for k := 0; k < dim; k++ {
			if a[k].IsStar() {
				masked[k] = Nearer
				changed = true
			}
		}
		if changed && Similarity(a, masked) != sim {
			t.Fatalf("value under a star changed similarity: %v vs %v",
				Similarity(a, masked), sim)
		}
	})
}
