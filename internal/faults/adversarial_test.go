package faults

import (
	"testing"

	"fttt/internal/geom"
	"fttt/internal/rf"
)

// TestParseAdversarialDirectives checks the script forms of the spoof /
// invert / collude directives and their validation errors.
func TestParseAdversarialDirectives(t *testing.T) {
	s, err := Parse(`
		spoof   at=5 frac=0.2 bias=15
		spoof   at=6 nodes=1,2 rss=-35
		invert  at=7 nodes=3 pivot=-60
		invert  at=8 frac=0.1
		collude at=9 frac=0.25 x=80 y=70
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 5 {
		t.Fatalf("parsed %d events, want 5", len(s.Events))
	}
	if s.Events[0].Kind != Spoof || s.Events[0].Bias != 15 || s.Events[0].Fixed != nil {
		t.Errorf("bias spoof parsed as %+v", s.Events[0])
	}
	if s.Events[1].Fixed == nil || *s.Events[1].Fixed != -35 {
		t.Errorf("fixed spoof parsed as %+v", s.Events[1])
	}
	if s.Events[2].Kind != Invert || s.Events[2].Pivot == nil || *s.Events[2].Pivot != -60 {
		t.Errorf("invert parsed as %+v", s.Events[2])
	}
	if s.Events[3].Pivot != nil {
		t.Errorf("pivotless invert should keep Pivot nil, got %v", *s.Events[3].Pivot)
	}
	if ev := s.Events[4]; ev.Kind != Collude || ev.DecoyX != 80 || ev.DecoyY != 70 {
		t.Errorf("collude parsed as %+v", ev)
	}

	for _, bad := range []string{
		"spoof at=1 frac=0.2",               // neither bias nor rss
		"spoof at=1 frac=0.2 bias=3 rss=-5", // both
		"collude at=1 frac=0.2 x=1 y=2 recover=9",
		"spooof at=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestAdversarialPerturbComposition pins the PerturbRSS composition
// order: drift/skew first, then fixed spoof, bias spoof, invert, and a
// collude takeover overriding everything.
func TestAdversarialPerturbComposition(t *testing.T) {
	mk := func(text string) *Scheduler {
		script, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		return New(*script, 4, 1)
	}

	s := mk("spoof at=0 nodes=0 rss=-35")
	if got := s.PerturbRSS(0, -80); got != -35 {
		t.Errorf("fixed spoof: got %v, want -35", got)
	}
	if got := s.PerturbRSS(1, -80); got != -80 {
		t.Errorf("untargeted node perturbed: got %v", got)
	}

	s = mk("spoof at=0 nodes=0 bias=10\nspoof at=1 nodes=0 bias=5")
	s.Seek(2)
	if got := s.PerturbRSS(0, -80); got != -65 {
		t.Errorf("stacked bias spoof: got %v, want -65", got)
	}

	s = mk("invert at=0 nodes=0 pivot=-60")
	if got := s.PerturbRSS(0, -80); got != -40 {
		t.Errorf("invert: got %v, want -40 (mirror of -80 around -60)", got)
	}

	// Default pivot without geometry is a fixed constant; with geometry
	// it is the model's mid-range mean RSS.
	s = mk("invert at=0 nodes=0")
	if got, want := s.PerturbRSS(0, -55), -55.0; got != want {
		t.Errorf("default-pivot invert of the pivot itself moved: got %v", got)
	}
	s.SetGeometry([]geom.Point{{X: 0, Y: 0}, {}, {}, {}}, rf.Default())
	p := rf.Default().MeanRSS(20)
	if got, want := s.PerturbRSS(0, p), p; got != want {
		t.Errorf("geometry default pivot: got %v, want %v", got, want)
	}

	// Colluders report the decoy-consistent mean RSS regardless of input.
	s = mk("collude at=0 nodes=0 x=30 y=40")
	s.SetGeometry([]geom.Point{{X: 0, Y: 0}, {}, {}, {}}, rf.Default())
	want := rf.Default().MeanRSS(50) // dist((0,0),(30,40)) = 50
	if got := s.PerturbRSS(0, -999); got != want {
		t.Errorf("collude: got %v, want %v", got, want)
	}
	for _, in := range []float64{-90, -40, 12} {
		if got := s.PerturbRSS(0, in); got != want {
			t.Errorf("collude(%v): got %v, want constant %v", in, got, want)
		}
	}
	// Without geometry the fallback is a fixed strong RSS.
	s = mk("collude at=0 nodes=0 x=30 y=40")
	if got := s.PerturbRSS(0, -90); got != -30 {
		t.Errorf("geometry-less collude fallback: got %v, want -30", got)
	}
}

// TestAdversarialFractionTargets checks that fraction-targeted
// adversarial events draw their node sets from the same per-event
// substream mechanism as crashes: deterministic in (script, n, seed).
func TestAdversarialFractionTargets(t *testing.T) {
	script, err := Parse("collude at=0 frac=0.5 x=10 y=10")
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(*script, 10, 7), New(*script, 10, 7)
	var setA, setB []int
	for i := 0; i < 10; i++ {
		if a.colludeOn[i] {
			setA = append(setA, i)
		}
		if b.colludeOn[i] {
			setB = append(setB, i)
		}
	}
	if len(setA) != 5 {
		t.Fatalf("frac=0.5 of 10 nodes targeted %d", len(setA))
	}
	for i := range setA {
		if setA[i] != setB[i] {
			t.Fatalf("same (script,n,seed) picked different sets: %v vs %v", setA, setB)
		}
	}
	c := New(*script, 10, 8)
	diff := false
	for i := 0; i < 10; i++ {
		if c.colludeOn[i] != a.colludeOn[i] {
			diff = true
		}
	}
	if !diff {
		t.Log("seed change picked the same collusion set (possible, just unlikely)")
	}
}
