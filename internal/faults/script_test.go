package faults

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFullScript(t *testing.T) {
	s, err := Parse(`
# a rebooting third of the field, then a targeted kill
crash at=20 frac=0.3 recover=40
crash at=25 nodes=1,4,7
revive at=45 nodes=1,4
drain at=10 factor=5 frac=0.5
burst pgb=0.05 pbg=0.5 loss=0.9 from=15
drift sigma=0.2
skew max=0.02 slew=25
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(s.Events))
	}
	// Sorted by time: drain(10), crash(20), crash(25), revive(45).
	wantKinds := []EventKind{Drain, Crash, Crash, Revive}
	wantAt := []float64{10, 20, 25, 45}
	for i, ev := range s.Events {
		if ev.Kind != wantKinds[i] || ev.At != wantAt[i] {
			t.Errorf("event %d = %v@%v, want %v@%v", i, ev.Kind, ev.At, wantKinds[i], wantAt[i])
		}
	}
	if s.Events[1].RecoverAt != 40 || s.Events[1].Fraction != 0.3 {
		t.Errorf("crash event lost args: %+v", s.Events[1])
	}
	if got := s.Events[2].Nodes; len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 7 {
		t.Errorf("nodes = %v, want [1 4 7]", got)
	}
	if s.Events[0].Factor != 5 {
		t.Errorf("drain factor = %v, want 5", s.Events[0].Factor)
	}
	if s.Burst == nil || s.Burst.From != 15 || s.Burst.BadLoss != 0.9 {
		t.Errorf("burst = %+v", s.Burst)
	}
	if s.Drift == nil || s.Drift.Sigma != 0.2 {
		t.Errorf("drift = %+v", s.Drift)
	}
	if s.Skew == nil || s.Skew.Max != 0.02 || s.Skew.Slew != 25 {
		t.Errorf("skew = %+v", s.Skew)
	}
}

func TestParseSemicolonsAndComments(t *testing.T) {
	s, err := Parse("crash at=5 nodes=0 ; drift sigma=0.1 # trailing")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 1 || s.Drift == nil {
		t.Fatalf("semicolon split failed: %+v", s)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "meteor at=3",
		"typo'd key":        "crash at=5 fraction=0.5",
		"bad node id":       "crash at=5 nodes=1,x",
		"bare word":         "crash at",
		"bad float":         "crash at=abc frac=0.1",
		"frac out of range": "crash at=5 frac=1.5",
		"negative time":     "crash at=-2 frac=0.1",
		"bad drain factor":  "drain at=5 factor=-1 frac=0.1",
		"recover on revive": "revive at=5 nodes=0 recover=9",
		"burst p range":     "burst pgb=1.5",
		"negative sigma":    "drift sigma=-1",
	}
	for name, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s (%q): expected error", name, text)
		}
	}
}

func TestDrainDefaultFactor(t *testing.T) {
	s, err := Parse("drain at=1 frac=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Events[0].Factor != 2 {
		t.Errorf("default drain factor = %v, want 2", s.Events[0].Factor)
	}
}

func TestLoadInlineAndFile(t *testing.T) {
	inline, err := Load("crash at=3 nodes=2")
	if err != nil || len(inline.Events) != 1 {
		t.Fatalf("inline load: %v %+v", err, inline)
	}
	path := filepath.Join(t.TempDir(), "scenario.txt")
	if err := os.WriteFile(path, []byte("drift sigma=0.3"), 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := Load(path)
	if err != nil || fromFile.Drift == nil {
		t.Fatalf("file load: %v %+v", err, fromFile)
	}
	forced, err := Load("@" + path)
	if err != nil || forced.Drift == nil {
		t.Fatalf("@file load: %v %+v", err, forced)
	}
	if _, err := Load("@/nonexistent/path"); err == nil {
		t.Error("@missing-file must error, not fall back to inline")
	}
}

func TestEventKindString(t *testing.T) {
	for kind, want := range map[EventKind]string{Crash: "crash", Revive: "revive", Drain: "drain"} {
		if got := kind.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(kind), got, want)
		}
	}
	if got := EventKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind = %q", got)
	}
}
