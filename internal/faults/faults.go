package faults

import (
	"math"
	"sort"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
	"fttt/internal/wsnnet"
)

// Scheduler executes one Script against a deployment of n nodes. It
// implements both injection hooks — wsnnet.FaultInjector for the
// network substrate and sampling.SampleFaults for the ideal sampler —
// so the same scenario drives either collection path.
//
// A Scheduler is single-goroutine, like core.Tracker: it owns mutable
// timeline state (event cursor, channel states, crash bookkeeping).
// Parallel runs build one Scheduler per goroutine from the same
// (script, n, seed) triple; construction is cheap and the triple fully
// determines every draw, so replicas stay in lockstep.
type Scheduler struct {
	script Script
	n      int
	now    float64

	// cursor indexes the first unapplied event (Events are time-sorted).
	cursor int
	// crashed[i] marks node i fault-crashed; recoverAt[i] is when the
	// pending reboot completes (+Inf when the crash is permanent).
	crashed   []bool
	recoverAt []float64
	// killed[i] records that this scheduler killed node i in the
	// network, so BeginRound only revives its own victims.
	killed []bool
	// scale[i] is node i's energy-drain multiplier (1 = nominal).
	scale []float64
	// driftRate[i] (dB/s) and skewBias[i] (dB) are the continuous
	// per-node calibration faults, drawn once at construction.
	driftRate []float64
	skewBias  []float64
	// geBad[i] is node i's Gilbert–Elliott channel state.
	geBad []bool

	// Adversarial per-node state (DESIGN.md §15). All of it feeds the
	// PerturbRSS composition, which draws no randomness — arming any of
	// these behaviors never shifts the benign noise streams.
	//
	// spoofBias[i] is an additive RSS offset; spoofFixedOn[i] replaces
	// node i's RSS with spoofFixedVal[i] outright.
	spoofBias     []float64
	spoofFixedOn  []bool
	spoofFixedVal []float64
	// invertOn[i] mirrors node i's RSS around invertPivot[i] (NaN selects
	// the deployment-scale default at perturbation time).
	invertOn    []bool
	invertPivot []float64
	// colludeOn[i] makes node i report the RSS of a target at its decoy.
	colludeOn      []bool
	decoyX, decoyY []float64
	// nodes/model are the optional deployment geometry (SetGeometry) the
	// Collude behavior needs to synthesize decoy-consistent RSS.
	nodes   []geom.Point
	model   rf.Model
	hasGeom bool

	// events is the substream that picks fraction-targeted node sets;
	// event idx always draws from SplitN("event", idx) so application
	// order cannot perturb the selection.
	events *randx.Stream
}

// Interface conformance: one scheduler serves both collection paths.
var (
	_ wsnnet.FaultInjector  = (*Scheduler)(nil)
	_ sampling.SampleFaults = (*Scheduler)(nil)
)

// New builds a Scheduler for a deployment of n nodes. The seed roots
// every random choice the scenario makes (crash-set selection, drift
// slopes, skew offsets); the same (script, n, seed) always yields the
// same fault timeline.
func New(script Script, n int, seed uint64) *Scheduler {
	s := &Scheduler{
		script:        script,
		n:             n,
		crashed:       make([]bool, n),
		recoverAt:     make([]float64, n),
		killed:        make([]bool, n),
		scale:         make([]float64, n),
		driftRate:     make([]float64, n),
		skewBias:      make([]float64, n),
		geBad:         make([]bool, n),
		spoofBias:     make([]float64, n),
		spoofFixedOn:  make([]bool, n),
		spoofFixedVal: make([]float64, n),
		invertOn:      make([]bool, n),
		invertPivot:   make([]float64, n),
		colludeOn:     make([]bool, n),
		decoyX:        make([]float64, n),
		decoyY:        make([]float64, n),
	}
	root := randx.New(seed).Split("faults")
	s.events = root.Split("events")
	for i := range s.recoverAt {
		s.recoverAt[i] = math.Inf(1)
		s.scale[i] = 1
	}
	if d := script.Drift; d != nil && d.Sigma > 0 {
		dr := root.Split("drift")
		for i := range s.driftRate {
			s.driftRate[i] = dr.SplitN("node", i).Normal(0, d.Sigma)
		}
	}
	if k := script.Skew; k != nil && k.Max > 0 {
		slew := k.Slew
		if slew == 0 {
			slew = 20 // dB/s: a target crossing a mote's near field
		}
		sk := root.Split("skew")
		for i := range s.skewBias {
			s.skewBias[i] = sk.SplitN("node", i).Uniform(-k.Max, k.Max) * slew
		}
	}
	// The timeline starts at t=0 with t=0 events already applied, so
	// callers that never Seek still see the scenario's initial state.
	s.Seek(0)
	return s
}

// Now returns the scheduler's current virtual time.
func (s *Scheduler) Now() float64 { return s.now }

// Crashed reports whether node i is currently fault-crashed.
func (s *Scheduler) Crashed(i int) bool { return s.crashed[i] }

// CrashedCount returns how many nodes are currently fault-crashed.
func (s *Scheduler) CrashedCount() int {
	c := 0
	for _, x := range s.crashed {
		if x {
			c++
		}
	}
	return c
}

// Seek advances the scenario to virtual time now, applying every event
// scheduled at or before it and completing due recoveries. Seek is
// monotonic: an earlier time than the current one is a no-op, so
// callers can seek freely from loops that revisit a round.
func (s *Scheduler) Seek(now float64) {
	if now < s.now {
		return
	}
	s.now = now
	for s.cursor < len(s.script.Events) && s.script.Events[s.cursor].At <= now {
		s.apply(s.cursor)
		s.cursor++
	}
	for i := 0; i < s.n; i++ {
		if s.crashed[i] && s.recoverAt[i] <= now {
			s.crashed[i] = false
			s.recoverAt[i] = math.Inf(1)
		}
	}
}

// apply executes script event idx.
func (s *Scheduler) apply(idx int) {
	ev := s.script.Events[idx]
	for _, i := range s.targets(idx, ev) {
		if i >= s.n {
			continue // script written for a larger deployment
		}
		switch ev.Kind {
		case Crash:
			s.crashed[i] = true
			if ev.RecoverAt > ev.At {
				s.recoverAt[i] = ev.RecoverAt
			} else {
				s.recoverAt[i] = math.Inf(1)
			}
		case Revive:
			s.crashed[i] = false
			s.recoverAt[i] = math.Inf(1)
		case Drain:
			s.scale[i] = ev.Factor
		case Spoof:
			if ev.Fixed != nil {
				s.spoofFixedOn[i] = true
				s.spoofFixedVal[i] = *ev.Fixed
				s.spoofBias[i] = 0
			} else {
				s.spoofBias[i] += ev.Bias // later spoofs stack their biases
			}
		case Invert:
			s.invertOn[i] = true
			if ev.Pivot != nil {
				s.invertPivot[i] = *ev.Pivot
			} else {
				s.invertPivot[i] = math.NaN() // deployment default, resolved lazily
			}
		case Collude:
			s.colludeOn[i] = true
			s.decoyX[i] = ev.DecoyX
			s.decoyY[i] = ev.DecoyY
		}
	}
}

// targets resolves an event's node set: the explicit list, or a
// deterministic Fraction-sized draw from the event's own substream.
func (s *Scheduler) targets(idx int, ev Event) []int {
	if len(ev.Nodes) > 0 {
		return ev.Nodes
	}
	count := int(math.Round(ev.Fraction * float64(s.n)))
	if count <= 0 {
		return nil
	}
	if count > s.n {
		count = s.n
	}
	perm := s.events.SplitN("event", idx).Perm(s.n)
	picked := append([]int(nil), perm[:count]...)
	sort.Ints(picked)
	return picked
}

// BeginRound implements wsnnet.FaultInjector: it seeks the scenario to
// the round's virtual time and syncs the network's liveness and energy
// scaling with the scheduler's view. Only nodes this scheduler crashed
// are ever revived, so battery deaths and external Kill calls stand.
func (s *Scheduler) BeginRound(net *wsnnet.Network, now float64) {
	s.Seek(now)
	for i := 0; i < s.n; i++ {
		switch {
		case s.crashed[i]:
			net.Kill(i)
			s.killed[i] = true
		case s.killed[i]:
			net.Revive(i)
			s.killed[i] = false
		}
		net.SetEnergyScale(i, s.scale[i])
	}
}

// HopLost implements wsnnet.FaultInjector: the Gilbert–Elliott channel
// of the transmitting node evolves one step per transmission, and the
// bad state substitutes Burst.BadLoss for the substrate's base loss.
// Without an active burst process it reduces to the base Bernoulli.
func (s *Scheduler) HopLost(tx, rx int, base float64, rng *randx.Stream) bool {
	p := base
	if b := s.script.Burst; b != nil && s.now >= b.From && tx >= 0 && tx < s.n {
		if s.geBad[tx] {
			if rng.Bernoulli(b.PBadToGood) {
				s.geBad[tx] = false
			}
		} else if rng.Bernoulli(b.PGoodToBad) {
			s.geBad[tx] = true
		}
		if s.geBad[tx] {
			p = b.BadLoss
		}
	}
	return rng.Bernoulli(p)
}

// DropReport implements sampling.SampleFaults: crashed nodes never
// report, and the burst channel — collapsed to a single end-to-end
// draw, since the ideal sampler has no hops — suppresses reports while
// the node's channel sits in the bad state.
func (s *Scheduler) DropReport(node int, rng *randx.Stream) bool {
	if node < 0 || node >= s.n {
		return false
	}
	if s.crashed[node] {
		return true
	}
	if b := s.script.Burst; b != nil && s.now >= b.From {
		if s.geBad[node] {
			if rng.Bernoulli(b.PBadToGood) {
				s.geBad[node] = false
			}
		} else if rng.Bernoulli(b.PGoodToBad) {
			s.geBad[node] = true
		}
		if s.geBad[node] {
			return rng.Bernoulli(b.BadLoss)
		}
	}
	return false
}

// SetGeometry attaches the deployment geometry — node positions and the
// RF model — that the Collude behavior needs to synthesize the RSS a
// target at the decoy point would produce (and that Invert uses to pick
// its default mirror pivot). core.NewWithDivision calls it automatically;
// schedulers without geometry degrade gracefully (see colludeRSS).
// Geometry never influences random draws, so setting it preserves the
// draw-conservation contract.
func (s *Scheduler) SetGeometry(nodes []geom.Point, model rf.Model) {
	s.nodes = nodes
	s.model = model
	s.hasGeom = len(nodes) > 0
}

// Colluding reports whether node i is currently executing the Collude
// behavior (reporting decoy-consistent RSS instead of measurements).
// Experiment harnesses use it as the detection ground truth when scoring
// a defense's suspect list against the scripted adversary set.
func (s *Scheduler) Colluding(i int) bool {
	return i >= 0 && i < s.n && s.colludeOn[i]
}

// defaultPivot is the Invert mirror point when the script gives none:
// the model's mean RSS at a mid-range sensing distance (20 m) when the
// geometry is known, else a plausible constant for the default model.
func (s *Scheduler) defaultPivot() float64 {
	if s.hasGeom {
		return s.model.MeanRSS(20)
	}
	return -55
}

// colludeRSS is the RSS colluding node i reports: what it would measure
// with the target sitting at the decoy point. Without geometry the
// colluders fall back to a fixed strong RSS — still a coordinated lie,
// just not a geometrically consistent one.
func (s *Scheduler) colludeRSS(node int) float64 {
	if !s.hasGeom || node >= len(s.nodes) {
		return -30
	}
	d := s.nodes[node].Dist(geom.Pt(s.decoyX[node], s.decoyY[node]))
	return s.model.MeanRSS(d)
}

// PerturbRSS implements both hooks' RSS corruption. The benign
// calibration faults apply first (linear drift slope_i·t plus the
// clock-skew bias), then the adversarial transformations in a fixed
// composition order: fixed spoof replaces, bias spoof adds, invert
// mirrors around its pivot, and collude — a full takeover of the node's
// radio front-end — overrides everything with the decoy-consistent
// value. The whole chain is a pure function of (node, rss, virtual
// time): no randomness is consumed, so adversarial scripts never shift
// the benign noise streams (the draw-conservation contract).
func (s *Scheduler) PerturbRSS(node int, rss float64) float64 {
	if node < 0 || node >= s.n {
		return rss
	}
	rss += s.driftRate[node]*s.now + s.skewBias[node]
	if s.spoofFixedOn[node] {
		rss = s.spoofFixedVal[node]
	}
	rss += s.spoofBias[node]
	if s.invertOn[node] {
		p := s.invertPivot[node]
		if math.IsNaN(p) {
			p = s.defaultPivot()
		}
		rss = 2*p - rss
	}
	if s.colludeOn[node] {
		rss = s.colludeRSS(node)
	}
	return rss
}
