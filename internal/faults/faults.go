package faults

import (
	"math"
	"sort"

	"fttt/internal/randx"
	"fttt/internal/sampling"
	"fttt/internal/wsnnet"
)

// Scheduler executes one Script against a deployment of n nodes. It
// implements both injection hooks — wsnnet.FaultInjector for the
// network substrate and sampling.SampleFaults for the ideal sampler —
// so the same scenario drives either collection path.
//
// A Scheduler is single-goroutine, like core.Tracker: it owns mutable
// timeline state (event cursor, channel states, crash bookkeeping).
// Parallel runs build one Scheduler per goroutine from the same
// (script, n, seed) triple; construction is cheap and the triple fully
// determines every draw, so replicas stay in lockstep.
type Scheduler struct {
	script Script
	n      int
	now    float64

	// cursor indexes the first unapplied event (Events are time-sorted).
	cursor int
	// crashed[i] marks node i fault-crashed; recoverAt[i] is when the
	// pending reboot completes (+Inf when the crash is permanent).
	crashed   []bool
	recoverAt []float64
	// killed[i] records that this scheduler killed node i in the
	// network, so BeginRound only revives its own victims.
	killed []bool
	// scale[i] is node i's energy-drain multiplier (1 = nominal).
	scale []float64
	// driftRate[i] (dB/s) and skewBias[i] (dB) are the continuous
	// per-node calibration faults, drawn once at construction.
	driftRate []float64
	skewBias  []float64
	// geBad[i] is node i's Gilbert–Elliott channel state.
	geBad []bool

	// events is the substream that picks fraction-targeted node sets;
	// event idx always draws from SplitN("event", idx) so application
	// order cannot perturb the selection.
	events *randx.Stream
}

// Interface conformance: one scheduler serves both collection paths.
var (
	_ wsnnet.FaultInjector  = (*Scheduler)(nil)
	_ sampling.SampleFaults = (*Scheduler)(nil)
)

// New builds a Scheduler for a deployment of n nodes. The seed roots
// every random choice the scenario makes (crash-set selection, drift
// slopes, skew offsets); the same (script, n, seed) always yields the
// same fault timeline.
func New(script Script, n int, seed uint64) *Scheduler {
	s := &Scheduler{
		script:    script,
		n:         n,
		crashed:   make([]bool, n),
		recoverAt: make([]float64, n),
		killed:    make([]bool, n),
		scale:     make([]float64, n),
		driftRate: make([]float64, n),
		skewBias:  make([]float64, n),
		geBad:     make([]bool, n),
	}
	root := randx.New(seed).Split("faults")
	s.events = root.Split("events")
	for i := range s.recoverAt {
		s.recoverAt[i] = math.Inf(1)
		s.scale[i] = 1
	}
	if d := script.Drift; d != nil && d.Sigma > 0 {
		dr := root.Split("drift")
		for i := range s.driftRate {
			s.driftRate[i] = dr.SplitN("node", i).Normal(0, d.Sigma)
		}
	}
	if k := script.Skew; k != nil && k.Max > 0 {
		slew := k.Slew
		if slew == 0 {
			slew = 20 // dB/s: a target crossing a mote's near field
		}
		sk := root.Split("skew")
		for i := range s.skewBias {
			s.skewBias[i] = sk.SplitN("node", i).Uniform(-k.Max, k.Max) * slew
		}
	}
	// The timeline starts at t=0 with t=0 events already applied, so
	// callers that never Seek still see the scenario's initial state.
	s.Seek(0)
	return s
}

// Now returns the scheduler's current virtual time.
func (s *Scheduler) Now() float64 { return s.now }

// Crashed reports whether node i is currently fault-crashed.
func (s *Scheduler) Crashed(i int) bool { return s.crashed[i] }

// CrashedCount returns how many nodes are currently fault-crashed.
func (s *Scheduler) CrashedCount() int {
	c := 0
	for _, x := range s.crashed {
		if x {
			c++
		}
	}
	return c
}

// Seek advances the scenario to virtual time now, applying every event
// scheduled at or before it and completing due recoveries. Seek is
// monotonic: an earlier time than the current one is a no-op, so
// callers can seek freely from loops that revisit a round.
func (s *Scheduler) Seek(now float64) {
	if now < s.now {
		return
	}
	s.now = now
	for s.cursor < len(s.script.Events) && s.script.Events[s.cursor].At <= now {
		s.apply(s.cursor)
		s.cursor++
	}
	for i := 0; i < s.n; i++ {
		if s.crashed[i] && s.recoverAt[i] <= now {
			s.crashed[i] = false
			s.recoverAt[i] = math.Inf(1)
		}
	}
}

// apply executes script event idx.
func (s *Scheduler) apply(idx int) {
	ev := s.script.Events[idx]
	for _, i := range s.targets(idx, ev) {
		if i >= s.n {
			continue // script written for a larger deployment
		}
		switch ev.Kind {
		case Crash:
			s.crashed[i] = true
			if ev.RecoverAt > ev.At {
				s.recoverAt[i] = ev.RecoverAt
			} else {
				s.recoverAt[i] = math.Inf(1)
			}
		case Revive:
			s.crashed[i] = false
			s.recoverAt[i] = math.Inf(1)
		case Drain:
			s.scale[i] = ev.Factor
		}
	}
}

// targets resolves an event's node set: the explicit list, or a
// deterministic Fraction-sized draw from the event's own substream.
func (s *Scheduler) targets(idx int, ev Event) []int {
	if len(ev.Nodes) > 0 {
		return ev.Nodes
	}
	count := int(math.Round(ev.Fraction * float64(s.n)))
	if count <= 0 {
		return nil
	}
	if count > s.n {
		count = s.n
	}
	perm := s.events.SplitN("event", idx).Perm(s.n)
	picked := append([]int(nil), perm[:count]...)
	sort.Ints(picked)
	return picked
}

// BeginRound implements wsnnet.FaultInjector: it seeks the scenario to
// the round's virtual time and syncs the network's liveness and energy
// scaling with the scheduler's view. Only nodes this scheduler crashed
// are ever revived, so battery deaths and external Kill calls stand.
func (s *Scheduler) BeginRound(net *wsnnet.Network, now float64) {
	s.Seek(now)
	for i := 0; i < s.n; i++ {
		switch {
		case s.crashed[i]:
			net.Kill(i)
			s.killed[i] = true
		case s.killed[i]:
			net.Revive(i)
			s.killed[i] = false
		}
		net.SetEnergyScale(i, s.scale[i])
	}
}

// HopLost implements wsnnet.FaultInjector: the Gilbert–Elliott channel
// of the transmitting node evolves one step per transmission, and the
// bad state substitutes Burst.BadLoss for the substrate's base loss.
// Without an active burst process it reduces to the base Bernoulli.
func (s *Scheduler) HopLost(tx, rx int, base float64, rng *randx.Stream) bool {
	p := base
	if b := s.script.Burst; b != nil && s.now >= b.From && tx >= 0 && tx < s.n {
		if s.geBad[tx] {
			if rng.Bernoulli(b.PBadToGood) {
				s.geBad[tx] = false
			}
		} else if rng.Bernoulli(b.PGoodToBad) {
			s.geBad[tx] = true
		}
		if s.geBad[tx] {
			p = b.BadLoss
		}
	}
	return rng.Bernoulli(p)
}

// DropReport implements sampling.SampleFaults: crashed nodes never
// report, and the burst channel — collapsed to a single end-to-end
// draw, since the ideal sampler has no hops — suppresses reports while
// the node's channel sits in the bad state.
func (s *Scheduler) DropReport(node int, rng *randx.Stream) bool {
	if node < 0 || node >= s.n {
		return false
	}
	if s.crashed[node] {
		return true
	}
	if b := s.script.Burst; b != nil && s.now >= b.From {
		if s.geBad[node] {
			if rng.Bernoulli(b.PBadToGood) {
				s.geBad[node] = false
			}
		} else if rng.Bernoulli(b.PGoodToBad) {
			s.geBad[node] = true
		}
		if s.geBad[node] {
			return rng.Bernoulli(b.BadLoss)
		}
	}
	return false
}

// PerturbRSS implements both hooks' calibration fault: linear drift
// slope_i·t plus the clock-skew RSS bias.
func (s *Scheduler) PerturbRSS(node int, rss float64) float64 {
	if node < 0 || node >= s.n {
		return rss
	}
	return rss + s.driftRate[node]*s.now + s.skewBias[node]
}
