package faults

import (
	"math"
	"reflect"
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/wsnnet"
)

func mustParse(t *testing.T, text string) Script {
	t.Helper()
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return *s
}

func TestCrashAndRecover(t *testing.T) {
	s := New(mustParse(t, "crash at=10 nodes=2,5 recover=30"), 8, 1)
	s.Seek(5)
	if s.Crashed(2) || s.CrashedCount() != 0 {
		t.Fatal("crashed before the event time")
	}
	s.Seek(10)
	if !s.Crashed(2) || !s.Crashed(5) || s.CrashedCount() != 2 {
		t.Fatal("crash event did not fire")
	}
	s.Seek(29.9)
	if !s.Crashed(2) {
		t.Fatal("recovered early")
	}
	s.Seek(30)
	if s.Crashed(2) || s.Crashed(5) {
		t.Fatal("recovery did not fire")
	}
}

func TestSeekMonotonic(t *testing.T) {
	s := New(mustParse(t, "crash at=10 nodes=0"), 4, 1)
	s.Seek(20)
	if !s.Crashed(0) {
		t.Fatal("crash missed")
	}
	s.Seek(5) // no-op: earlier than current time
	if !s.Crashed(0) || s.Now() != 20 {
		t.Errorf("backwards seek mutated state: crashed=%v now=%v", s.Crashed(0), s.Now())
	}
}

func TestFractionTargetsDeterministic(t *testing.T) {
	script := mustParse(t, "crash at=10 frac=0.25")
	a, b := New(script, 40, 99), New(script, 40, 99)
	a.Seek(10)
	// b seeks in two steps; the target set must not depend on the path.
	b.Seek(3)
	b.Seek(10)
	if a.CrashedCount() != 10 {
		t.Errorf("crashed %d of 40 at frac=0.25, want 10", a.CrashedCount())
	}
	for i := 0; i < 40; i++ {
		if a.Crashed(i) != b.Crashed(i) {
			t.Fatalf("node %d: seek path changed the target set", i)
		}
	}
	c := New(script, 40, 100) // different seed → (almost surely) different set
	c.Seek(10)
	same := true
	for i := 0; i < 40; i++ {
		if a.Crashed(i) != c.Crashed(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds picked the identical crash set")
	}
}

func TestScriptForLargerDeployment(t *testing.T) {
	s := New(mustParse(t, "crash at=1 nodes=2,17"), 4, 1)
	s.Seek(1) // node 17 is out of range: must not panic
	if !s.Crashed(2) || s.CrashedCount() != 1 {
		t.Errorf("in-range target not applied: count=%d", s.CrashedCount())
	}
}

func TestDriftAndSkewPerturbRSS(t *testing.T) {
	s := New(mustParse(t, "drift sigma=0.5\nskew max=0.1 slew=10"), 6, 42)
	if got := New(Script{}, 6, 42).PerturbRSS(0, -50); got != -50 {
		t.Errorf("empty script perturbed RSS: %v", got)
	}
	s.Seek(100)
	changed := false
	for i := 0; i < 6; i++ {
		if s.PerturbRSS(i, -50) != -50 {
			changed = true
		}
	}
	if !changed {
		t.Error("drift+skew left every node's RSS untouched")
	}
	// Drift is linear in t: perturbation at 2t is skew + 2·(drift at t).
	s2 := New(mustParse(t, "drift sigma=0.5"), 6, 42)
	s2.Seek(50)
	at50 := s2.PerturbRSS(3, 0)
	s2.Seek(100)
	at100 := s2.PerturbRSS(3, 0)
	if math.Abs(at100-2*at50) > 1e-12 {
		t.Errorf("drift not linear: %v at t=50, %v at t=100", at50, at100)
	}
	// Out-of-range nodes pass through.
	if got := s.PerturbRSS(17, -50); got != -50 {
		t.Errorf("out-of-range node perturbed: %v", got)
	}
}

func TestBurstChannel(t *testing.T) {
	// A channel that enters bad instantly and never leaves, losing all.
	s := New(mustParse(t, "burst pgb=1 pbg=0 loss=1 from=5"), 4, 7)
	rng := randx.New(1)
	s.Seek(0)
	if s.HopLost(0, 1, 0, rng) {
		t.Error("burst active before from=5")
	}
	s.Seek(5)
	if !s.HopLost(0, 1, 0, rng) {
		t.Error("pgb=1 loss=1 channel delivered")
	}
	// Base-station hops (rx=-1) evolve the tx channel the same way.
	if !s.HopLost(1, -1, 0, rng) {
		t.Error("bs hop ignored the burst channel")
	}
	// A pgb=0 channel never leaves the good state: base loss applies.
	good := New(mustParse(t, "burst pgb=0 pbg=1 loss=1"), 4, 7)
	good.Seek(10)
	if good.HopLost(0, 1, 0, randx.New(2)) {
		t.Error("good-state channel used BadLoss")
	}
}

func TestDropReport(t *testing.T) {
	s := New(mustParse(t, "crash at=10 nodes=1"), 4, 3)
	rng := randx.New(9)
	s.Seek(10)
	if !s.DropReport(1, rng) {
		t.Error("crashed node reported")
	}
	if s.DropReport(0, rng) {
		t.Error("healthy node dropped with no burst")
	}
	if s.DropReport(-1, rng) || s.DropReport(99, rng) {
		t.Error("out-of-range node ids must pass through")
	}
}

func TestBeginRoundSyncsNetwork(t *testing.T) {
	nodes := []geom.Point{geom.Pt(10, 0), geom.Pt(20, 0), geom.Pt(30, 0)}
	net, err := wsnnet.New(wsnnet.Config{
		Nodes: nodes, BaseStation: geom.Pt(0, 0), Model: rf.Default(),
		CommRange: 50, ReportBits: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(mustParse(t, "crash at=10 nodes=1 recover=20\ndrain at=0 factor=4 nodes=2"), 3, 5)
	s.BeginRound(net, 10)
	if net.Alive[1] {
		t.Fatal("BeginRound did not kill the crashed node")
	}
	s.BeginRound(net, 20)
	if !net.Alive[1] {
		t.Fatal("BeginRound did not revive after recover")
	}
	// Drain factor reached the network's energy scaling.
	e0 := net.Energy[2]
	net.CollectRound(geom.Pt(25, 0), 2, randx.New(1))
	if net.Energy[2]-e0 == 0 {
		t.Skip("node 2 spent nothing this round")
	}
	// Only the scheduler's own victims are revived: an externally killed
	// node stays dead.
	net.Kill(0)
	s.BeginRound(net, 30)
	if net.Alive[0] {
		t.Error("BeginRound revived an externally killed node")
	}
}

func TestSchedulerReplicasLockstep(t *testing.T) {
	script := mustParse(t, `
crash at=10 frac=0.3 recover=25
drain at=5 factor=3 frac=0.2
burst pgb=0.2 pbg=0.6 loss=0.8
drift sigma=0.1
skew max=0.01
`)
	a, b := New(script, 20, 77), New(script, 20, 77)
	rngA, rngB := randx.New(4), randx.New(4)
	for _, now := range []float64{0, 5, 10, 12, 25, 40} {
		a.Seek(now)
		b.Seek(now)
		for i := 0; i < 20; i++ {
			if a.Crashed(i) != b.Crashed(i) {
				t.Fatalf("t=%v node %d: crash state diverged", now, i)
			}
			if a.PerturbRSS(i, -60) != b.PerturbRSS(i, -60) {
				t.Fatalf("t=%v node %d: RSS perturbation diverged", now, i)
			}
			if a.HopLost(i, -1, 0.05, rngA) != b.HopLost(i, -1, 0.05, rngB) {
				t.Fatalf("t=%v node %d: hop-loss draw diverged", now, i)
			}
		}
	}
	if !reflect.DeepEqual(a.scale, b.scale) {
		t.Error("energy scales diverged")
	}
}
