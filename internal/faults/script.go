// Package faults is the deterministic fault-injection substrate: it
// turns a declarative scenario script — node crashes and recoveries,
// accelerated battery depletion, correlated burst packet loss
// (a Gilbert–Elliott two-state channel layered on the substrate's
// per-hop loss), per-node RSS calibration drift and report clock skew —
// into a Scheduler that plugs into wsnnet.Network (FaultInjector) and
// sampling.Sampler (SampleFaults) through their nil-is-off hooks.
//
// Beyond the benign repertoire, the script language also expresses
// adversarial sensing (DESIGN.md §15): spoofed RSS (fixed or biased),
// inverted pair reports, and colluding node sets that steer estimates
// toward a decoy point. The adversarial behaviors are pure RSS
// transformations applied in PerturbRSS — they consume no random draws,
// so arming them never shifts the benign noise streams (the
// draw-conservation contract the adversarial differential tests pin).
//
// Everything is driven by randx substreams split from one seed, so a
// given (script, node count, seed) triple always produces the same
// fault timeline regardless of how the simulation around it is
// parallelised — the property the determinism-under-faults tests pin.
package faults

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// EventKind discriminates timed script events.
type EventKind int

const (
	// Crash kills the selected nodes at Event.At; RecoverAt > At revives
	// them later (a rebooting mote).
	Crash EventKind = iota
	// Revive restores the selected nodes (no-op for battery-dead ones).
	Revive
	// Drain multiplies the selected nodes' energy debits by Factor from
	// Event.At on — accelerated battery depletion from a degraded cell
	// or a chattering radio.
	Drain
	// Spoof makes the selected nodes report adversarial RSS from Event.At
	// on: a fixed replacement value (Fixed) or an additive bias (Bias) —
	// a compromised mote lying about signal strength.
	Spoof
	// Invert mirrors the selected nodes' RSS around a pivot
	// (rss' = 2·pivot − rss), flipping the node's pair-order reports far
	// beyond the benign flip-ratio model of Defs. 6–10.
	Invert
	// Collude makes the selected nodes report the RSS a target sitting at
	// the decoy point (DecoyX, DecoyY) would produce — a coordinated set
	// steering the estimate toward the decoy. Requires the scheduler's
	// geometry (Scheduler.SetGeometry); without it the colluders fall back
	// to a fixed strong RSS.
	Collude
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Revive:
		return "revive"
	case Drain:
		return "drain"
	case Spoof:
		return "spoof"
	case Invert:
		return "invert"
	case Collude:
		return "collude"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one timed fault. Targets are either the explicit Nodes list
// or, when it is empty, a Fraction of the deployment picked
// deterministically from the scheduler's seed at application time.
type Event struct {
	// At is the virtual time the event fires (seconds).
	At float64
	// Kind selects the fault.
	Kind EventKind
	// Nodes are explicit target IDs; empty defers to Fraction.
	Nodes []int
	// Fraction of the deployment to target when Nodes is empty, in
	// [0, 1]; the node set is drawn from the scheduler seed.
	Fraction float64
	// RecoverAt, for Crash events, revives the crashed nodes at this
	// time; 0 (or ≤ At) means the crash is permanent.
	RecoverAt float64
	// Factor is the Drain energy multiplier (> 1 accelerates depletion).
	Factor float64
	// Bias is the Spoof additive RSS offset in dB (spoof bias=).
	Bias float64
	// Fixed, for Spoof events, replaces the node's RSS outright
	// (spoof rss=); nil selects the additive-bias form.
	Fixed *float64
	// Pivot, for Invert events, is the mirror point in dBm
	// (invert pivot=); nil selects a deployment-scale default at
	// application time.
	Pivot *float64
	// DecoyX, DecoyY are the Collude decoy-point coordinates.
	DecoyX, DecoyY float64
}

// Burst parameterises the Gilbert–Elliott two-state loss channel: each
// transmitting node carries a good/bad channel state that evolves one
// step per transmission; in the bad state the per-hop loss probability
// is BadLoss instead of the substrate's configured base loss.
type Burst struct {
	// From is the activation time (seconds); the channel is ideal-base
	// before it.
	From float64
	// PGoodToBad is the per-transmission good→bad transition probability.
	PGoodToBad float64
	// PBadToGood is the per-transmission bad→good transition probability.
	PBadToGood float64
	// BadLoss is the per-hop loss probability while in the bad state.
	BadLoss float64
}

// Drift parameterises per-node RSS calibration drift: node i's reported
// RSS gains slope_i·t dB where slope_i ~ N(0, Sigma) is drawn once from
// the scheduler seed.
type Drift struct {
	// Sigma is the per-node drift-slope standard deviation in dB/s.
	Sigma float64
}

// Skew parameterises report clock skew: node i carries a fixed offset
// skew_i ~ U(−Max, Max) seconds, modelled as the RSS slew the stale
// sampling window produces (bias = skew_i · Slew dB).
type Skew struct {
	// Max bounds the per-node clock offset in seconds.
	Max float64
	// Slew converts a clock offset into an RSS bias (dB/s): how fast the
	// target's signal changes under the scenario's motion. 0 selects a
	// default of 20 dB/s.
	Slew float64
}

// Script is a declarative fault scenario: a time-ordered event list
// plus the continuous fault processes.
type Script struct {
	// Events fire in At order (ties in input order).
	Events []Event
	// Burst, when non-nil, enables the Gilbert–Elliott loss channel.
	Burst *Burst
	// Drift, when non-nil, enables RSS calibration drift.
	Drift *Drift
	// Skew, when non-nil, enables report clock skew.
	Skew *Skew
}

// Validate reports script errors.
func (s *Script) Validate() error {
	for i, ev := range s.Events {
		if ev.At < 0 || math.IsNaN(ev.At) {
			return fmt.Errorf("faults: event %d: negative time %v", i, ev.At)
		}
		if len(ev.Nodes) == 0 && (ev.Fraction < 0 || ev.Fraction > 1) {
			return fmt.Errorf("faults: event %d: fraction %v outside [0,1]", i, ev.Fraction)
		}
		for _, id := range ev.Nodes {
			if id < 0 {
				return fmt.Errorf("faults: event %d: negative node id %d", i, id)
			}
		}
		if ev.Kind == Drain && ev.Factor <= 0 {
			return fmt.Errorf("faults: event %d: drain factor must be positive, got %v", i, ev.Factor)
		}
		if ev.Kind != Crash && ev.RecoverAt != 0 {
			return fmt.Errorf("faults: event %d: recover only applies to crash events", i)
		}
		if ev.Kind == Spoof {
			if ev.Fixed == nil && ev.Bias == 0 {
				return fmt.Errorf("faults: event %d: spoof needs bias= or rss=", i)
			}
			if ev.Fixed != nil && ev.Bias != 0 {
				return fmt.Errorf("faults: event %d: spoof takes bias= or rss=, not both", i)
			}
			if ev.Fixed != nil && math.IsNaN(*ev.Fixed) {
				return fmt.Errorf("faults: event %d: spoof rss is NaN", i)
			}
		}
		if math.IsNaN(ev.Bias) || (ev.Pivot != nil && math.IsNaN(*ev.Pivot)) ||
			math.IsNaN(ev.DecoyX) || math.IsNaN(ev.DecoyY) {
			return fmt.Errorf("faults: event %d: NaN parameter", i)
		}
	}
	if b := s.Burst; b != nil {
		for _, p := range []struct {
			name string
			v    float64
		}{{"pgb", b.PGoodToBad}, {"pbg", b.PBadToGood}, {"loss", b.BadLoss}} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("faults: burst %s=%v outside [0,1]", p.name, p.v)
			}
		}
		if b.From < 0 {
			return fmt.Errorf("faults: burst from=%v negative", b.From)
		}
	}
	if d := s.Drift; d != nil && (d.Sigma < 0 || math.IsNaN(d.Sigma)) {
		return fmt.Errorf("faults: drift sigma=%v invalid", d.Sigma)
	}
	if k := s.Skew; k != nil && (k.Max < 0 || k.Slew < 0) {
		return fmt.Errorf("faults: skew max=%v slew=%v invalid", k.Max, k.Slew)
	}
	return nil
}

// Parse reads the scenario-script text format: one directive per line
// (';' also separates directives), '#' starts a comment. Directives:
//
//	crash   at=20 frac=0.3 [recover=40]   # or nodes=1,4,7
//	revive  at=45 nodes=1,4
//	drain   at=10 factor=5 [frac=0.5 | nodes=...]
//	burst   pgb=0.05 pbg=0.5 loss=0.9 [from=0]
//	drift   sigma=0.2
//	skew    max=0.02 [slew=20]
//	spoof   at=0 frac=0.2 bias=15        # or rss=-35 for a fixed value
//	invert  at=0 nodes=3 [pivot=-60]
//	collude at=0 frac=0.2 x=80 y=80      # decoy point the set steers toward
//
// Events keep their input order within equal times.
func Parse(text string) (*Script, error) {
	s := &Script{}
	lines := strings.FieldsFunc(text, func(r rune) bool { return r == '\n' || r == ';' })
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		kv, err := parseArgs(fields[1:])
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: %v", ln+1, err)
		}
		switch fields[0] {
		case "crash", "revive", "drain", "spoof", "invert", "collude":
			ev := Event{
				At:        kv.f("at", 0),
				Fraction:  kv.f("frac", 0),
				RecoverAt: kv.f("recover", 0),
				Factor:    kv.f("factor", 0),
			}
			switch fields[0] {
			case "crash":
				ev.Kind = Crash
			case "revive":
				ev.Kind = Revive
			case "drain":
				ev.Kind = Drain
				if ev.Factor == 0 {
					ev.Factor = 2
				}
			case "spoof":
				ev.Kind = Spoof
				ev.Bias = kv.f("bias", 0)
				ev.Fixed = kv.fp("rss")
			case "invert":
				ev.Kind = Invert
				ev.Pivot = kv.fp("pivot")
			case "collude":
				ev.Kind = Collude
				ev.DecoyX = kv.f("x", 0)
				ev.DecoyY = kv.f("y", 0)
			}
			if nodes, ok := kv.raw["nodes"]; ok {
				kv.used["nodes"] = true
				for _, tok := range strings.Split(nodes, ",") {
					id, err := strconv.Atoi(strings.TrimSpace(tok))
					if err != nil {
						return nil, fmt.Errorf("faults: line %d: bad node id %q", ln+1, tok)
					}
					ev.Nodes = append(ev.Nodes, id)
				}
			}
			s.Events = append(s.Events, ev)
		case "burst":
			s.Burst = &Burst{
				From:       kv.f("from", 0),
				PGoodToBad: kv.f("pgb", 0.05),
				PBadToGood: kv.f("pbg", 0.5),
				BadLoss:    kv.f("loss", 0.9),
			}
		case "drift":
			s.Drift = &Drift{Sigma: kv.f("sigma", 0.1)}
		case "skew":
			s.Skew = &Skew{Max: kv.f("max", 0.02), Slew: kv.f("slew", 0)}
		default:
			return nil, fmt.Errorf("faults: line %d: unknown directive %q", ln+1, fields[0])
		}
		if err := kv.unused(); err != nil {
			return nil, fmt.Errorf("faults: line %d: %v", ln+1, err)
		}
	}
	// Stable time order so the scheduler can apply events with one cursor.
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Load reads a script from a file, or parses spec inline when it is not
// a readable path (an "@path" prefix forces the file interpretation).
func Load(spec string) (*Script, error) {
	if path, ok := strings.CutPrefix(spec, "@"); ok {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("faults: %v", err)
		}
		return Parse(string(b))
	}
	if b, err := os.ReadFile(spec); err == nil {
		return Parse(string(b))
	}
	return Parse(spec)
}

// args is the parsed key=value list of one directive.
type args struct {
	raw  map[string]string
	used map[string]bool
}

func parseArgs(fields []string) (*args, error) {
	a := &args{raw: map[string]string{}, used: map[string]bool{}}
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("expected key=value, got %q", f)
		}
		a.raw[k] = v
	}
	return a, nil
}

// f returns the float value of key, or def when absent.
func (a *args) f(key string, def float64) float64 {
	v, ok := a.raw[key]
	if !ok {
		return def
	}
	a.used[key] = true
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return math.NaN() // surfaces through Validate
	}
	return x
}

// fp returns a pointer to the float value of key, or nil when absent —
// for parameters whose zero value is meaningful (a 0 dBm spoof RSS).
func (a *args) fp(key string) *float64 {
	if _, ok := a.raw[key]; !ok {
		return nil
	}
	x := a.f(key, 0)
	return &x
}

// unused reports keys no directive consumed — catches typos like
// "fraction=" for "frac=".
func (a *args) unused() error {
	for k := range a.raw {
		if !a.used[k] {
			return fmt.Errorf("unknown key %q", k)
		}
	}
	return nil
}
