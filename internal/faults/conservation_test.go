package faults

import (
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
)

// TestAdversarialDrawConservation pins the draw-preservation contract
// of every adversarial behavior: arming spoof (bias and fixed), invert
// or collude against a no-op script must leave the sampler's whole
// random draw sequence untouched. The observable is strict: over a
// multi-round run the faulted and no-op samplers must produce identical
// Reported sets and byte-identical RSS for every untargeted node, round
// for round and instant for instant — any hidden draw (a Bernoulli on
// the loss stream, an extra Normal on a noise substream) would shift an
// untargeted column and fail the comparison. This is the property the
// Byzantine sweep's pairing leans on: the same trial noise is replayed
// byte-identically across coalition sizes.
func TestAdversarialDrawConservation(t *testing.T) {
	const (
		n      = 16
		k      = 5
		rounds = 12
		seed   = 31
	)
	nodes := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		nodes = append(nodes, geom.Pt(float64(i%4)*25+12.5, float64(i/4)*25+12.5))
	}
	model := rf.Default()

	// One target position per round, crossing the deployment so both
	// in-range and out-of-range nodes occur.
	targets := make([]geom.Point, rounds)
	for r := range targets {
		targets[r] = geom.Pt(10+float64(r)*6, 15+float64(r)*5)
	}

	run := func(text string) [][]*sampling.Group {
		var sched *Scheduler
		if text != "" {
			script, err := Parse(text)
			if err != nil {
				t.Fatal(err)
			}
			sched = New(*script, n, seed)
			sched.SetGeometry(nodes, model)
		} else {
			sched = New(Script{}, n, seed)
		}
		s := &sampling.Sampler{
			Model: model, Nodes: nodes, Range: 40, Epsilon: 1,
			ReportLoss: 0.1, // a live loss process makes stream shifts visible
			Faults:     sched,
		}
		rng := randx.New(77).Split("conservation")
		out := make([][]*sampling.Group, 1)
		for r := 0; r < rounds; r++ {
			sched.Seek(float64(r))
			out[0] = append(out[0], s.Sample(targets[r], k, rng.SplitN("loc", r)))
		}
		return out
	}

	base := run("")

	cases := []struct {
		name, script string
		targeted     []int
	}{
		{"spoof-bias", "spoof at=0 nodes=2,7 bias=12", []int{2, 7}},
		{"spoof-fixed", "spoof at=0 nodes=3 rss=-70", []int{3}},
		{"invert", "invert at=0 nodes=1,5 pivot=-60", []int{1, 5}},
		{"invert-default-pivot", "invert at=0 nodes=9", []int{9}},
		{"collude", "collude at=0 nodes=0,5,10 x=130 y=-30", []int{0, 5, 10}},
		{"all-composed",
			"spoof at=0 nodes=2 bias=12; invert at=2 nodes=1; collude at=3 nodes=10 x=130 y=-30",
			[]int{1, 2, 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hit := map[int]bool{}
			for _, i := range tc.targeted {
				hit[i] = true
			}
			got := run(tc.script)
			for r := 0; r < rounds; r++ {
				bg, fg := base[0][r], got[0][r]
				for i := 0; i < n; i++ {
					if bg.Reported[i] != fg.Reported[i] {
						t.Fatalf("round %d node %d: reporting diverged (%v vs %v) — the behavior consumed a loss draw",
							r, i, bg.Reported[i], fg.Reported[i])
					}
					if hit[i] {
						continue
					}
					for inst := 0; inst < k; inst++ {
						if bg.RSS[inst][i] != fg.RSS[inst][i] {
							t.Fatalf("round %d node %d instant %d: untargeted RSS diverged (%v vs %v) — the behavior consumed a noise draw",
								r, i, inst, bg.RSS[inst][i], fg.RSS[inst][i])
						}
					}
				}
			}
		})
	}
}
