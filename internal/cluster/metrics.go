package cluster

import "fttt/internal/obs"

// metrics caches the router metric handles, resolved once at
// construction so the proxy hot path only touches atomics.
type metrics struct {
	// per-backend, keyed by member name
	requests map[string]*obs.Counter   // fttt_router_requests_total{backend=...}
	latency  map[string]*obs.Histogram // fttt_router_proxy_seconds{backend=...}
	sessions map[string]*obs.Gauge     // fttt_router_sessions{backend=...}

	proxyErrors     *obs.Counter // fttt_router_proxy_errors_total
	migrations      *obs.Counter // fttt_router_migrations_total
	migrationErrors *obs.Counter // fttt_router_migration_errors_total
	backends        *obs.Gauge   // fttt_router_backends (active, non-leaving)
}

func newMetrics(r *obs.Registry, names []string) *metrics {
	m := &metrics{
		requests:        make(map[string]*obs.Counter, len(names)),
		latency:         make(map[string]*obs.Histogram, len(names)),
		sessions:        make(map[string]*obs.Gauge, len(names)),
		proxyErrors:     r.Counter("fttt_router_proxy_errors_total"),
		migrations:      r.Counter("fttt_router_migrations_total"),
		migrationErrors: r.Counter("fttt_router_migration_errors_total"),
		backends:        r.Gauge("fttt_router_backends"),
	}
	for _, n := range names {
		m.requests[n] = r.Counter(`fttt_router_requests_total{backend="` + n + `"}`)
		m.latency[n] = r.Histogram(`fttt_router_proxy_seconds{backend="`+n+`"}`,
			obs.ExpBuckets(1e-4, 2, 16))
		m.sessions[n] = r.Gauge(`fttt_router_sessions{backend="` + n + `"}`)
	}
	return m
}
