// Package cluster shards the serving layer horizontally: a thin HTTP
// router consistent-hashes session IDs across a static list of
// fttt-serve backends, proxies the /v1/sessions API (SSE streams
// included) transparently, and migrates sessions off a draining
// backend through the serve state endpoints (GET/PUT
// /v1/sessions/{id}/state).
//
// Placement is rendezvous (highest-random-weight) hashing over a
// pinned 64-bit FNV-1a score (Place): every router instance with the
// same member list agrees on the owner of every session with no shared
// state, and removing a backend moves only that backend's sessions —
// the minimal-disruption property the migration path relies on. The
// router assigns session IDs itself (X-Fttt-Session-Id) so a session's
// owner is known before any backend sees the create.
//
// Drain flow: a backend entering graceful drain (SIGTERM) starts
// answering /healthz with 503. The router's health prober notices,
// marks the member leaving (placement excludes it), exports each of
// its sessions' wire state — seed/round cursors, latest estimates,
// warm-start snapshot, fault clock — and PUTs it to the session's new
// owner under the shrunken member set. With every backend pointing
// -field-cache-dir at one shared spill directory, the successor
// re-acquires the division by content address from disk: zero
// re-divides (fttt_fieldcache_builds_total stays 0). DESIGN.md §16
// documents the architecture and the determinism contract.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fttt/internal/obs"
)

// Backend names one fttt-serve member of the cluster.
type Backend struct {
	// Name is the stable member identity the placement hash scores —
	// keep it constant across restarts or sessions will rehash.
	Name string
	// URL is the backend's base URL (e.g. http://10.0.0.2:8080).
	URL string
}

// Config parameterises a Router.
type Config struct {
	// Backends is the static member list; at least one is required.
	Backends []Backend
	// Client issues backend requests (migration, health, list fan-out);
	// nil selects a default with a 10s timeout. Proxied requests use the
	// transport only, so SSE streams are never cut by the timeout.
	Client *http.Client
	// HealthInterval is the drain prober period; 0 disables the
	// background prober (Migrate can still be called directly — the
	// loadtest harness does).
	HealthInterval time.Duration
	// Obs receives the router metrics; nil creates a private registry.
	Obs *obs.Registry
}

// member is one backend plus its routing state.
type member struct {
	be      Backend
	target  *url.URL
	proxy   *httputil.ReverseProxy
	leaving atomic.Bool // excluded from placement; pending/under migration
	// migrated guards the health prober: one drain triggers one
	// migration.
	migrated atomic.Bool
}

// Router is the consistent-hash session router. It implements
// http.Handler; create with New, mount it, and Close it on shutdown.
type Router struct {
	cfg    Config
	reg    *obs.Registry
	met    *metrics
	mux    *http.ServeMux
	client *http.Client

	mu      sync.Mutex
	members []*member

	nextID atomic.Uint64
	stop   chan struct{}
	done   chan struct{}
}

// New builds a Router over the configured backends and starts the
// health prober when Config.HealthInterval is positive.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: at least one backend is required")
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	r := &Router{
		cfg:    cfg,
		reg:    reg,
		client: client,
		mux:    http.NewServeMux(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	seen := make(map[string]bool, len(cfg.Backends))
	names := make([]string, 0, len(cfg.Backends))
	for _, be := range cfg.Backends {
		if be.Name == "" || be.URL == "" {
			return nil, fmt.Errorf("cluster: backend needs both name and URL (got %+v)", be)
		}
		if seen[be.Name] {
			return nil, fmt.Errorf("cluster: duplicate backend name %q", be.Name)
		}
		seen[be.Name] = true
		names = append(names, be.Name)
		target, err := url.Parse(be.URL)
		if err != nil {
			return nil, fmt.Errorf("cluster: backend %s: %w", be.Name, err)
		}
		m := &member{be: be, target: target}
		m.proxy = &httputil.ReverseProxy{
			Rewrite: func(pr *httputil.ProxyRequest) {
				pr.SetURL(target)
				pr.SetXForwarded()
			},
			// SSE: flush every write through immediately.
			FlushInterval: -1,
			Transport:     client.Transport,
			ErrorHandler: func(w http.ResponseWriter, req *http.Request, err error) {
				r.met.proxyErrors.Inc()
				writeJSON(w, http.StatusBadGateway,
					map[string]string{"error": fmt.Sprintf("cluster: backend %s: %v", be.Name, err)})
			},
		}
		r.members = append(r.members, m)
	}
	r.met = newMetrics(reg, names)
	r.met.backends.Set(float64(len(r.members)))

	r.mux.HandleFunc("POST /v1/sessions", r.handleCreate)
	r.mux.HandleFunc("GET /v1/sessions", r.handleList)
	r.mux.HandleFunc("/v1/sessions/{id}", r.handleSession)
	r.mux.HandleFunc("/v1/sessions/{id}/{rest...}", r.handleSession)
	r.mux.HandleFunc("GET /healthz", r.handleHealth)
	r.mux.Handle("GET /metrics", obs.Handler(reg))

	if cfg.HealthInterval > 0 {
		go r.probeLoop()
	} else {
		close(r.done)
	}
	return r, nil
}

// Registry returns the router's telemetry registry.
func (r *Router) Registry() *obs.Registry { return r.reg }

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(w, req) }

// Close stops the health prober.
func (r *Router) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
}

// --- placement ---

// score is the pinned rendezvous weight of (session, backend): 64-bit
// FNV-1a over "fttt-place\0<session>\0<backend>", passed through a
// murmur3-style finalizer. The finalizer matters: raw FNV-1a keeps its
// last input bytes nearly linear in the output, so backend names
// differing only in the final character ("b1"/"b2"/"b3") would skew
// placement badly (measured 50/25/25 over three members). Changing
// this function reshuffles every session in a rolling upgrade — don't.
func score(sessionID, backend string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, "fttt-place")
	h.Write([]byte{0})
	io.WriteString(h, sessionID)
	h.Write([]byte{0})
	io.WriteString(h, backend)
	return mix64(h.Sum64())
}

// mix64 is the murmur3 fmix64 finalizer: full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Place returns which of backends owns sessionID under rendezvous
// hashing: the backend with the highest score wins, ties broken by
// lexicographically smallest name (deterministic on any member-list
// order). Exported — and pinned by golden test vectors — because every
// router replica and test harness must agree on it exactly.
func Place(sessionID string, backends []string) string {
	best, bestScore := "", uint64(0)
	for _, b := range backends {
		s := score(sessionID, b)
		if best == "" || s > bestScore || (s == bestScore && b < best) {
			best, bestScore = b, s
		}
	}
	return best
}

// ActiveBackends returns the names of members currently eligible for
// placement (not leaving), in configuration order.
func (r *Router) ActiveBackends() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.activeNamesLocked()
}

func (r *Router) activeNamesLocked() []string {
	names := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if !m.leaving.Load() {
			names = append(names, m.be.Name)
		}
	}
	return names
}

// owner resolves the member owning sessionID among active members.
func (r *Router) owner(sessionID string) (*member, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := Place(sessionID, r.activeNamesLocked())
	if name == "" {
		return nil, errors.New("cluster: no active backends")
	}
	for _, m := range r.members {
		if m.be.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("cluster: unknown backend %q", name) // unreachable
}

func (r *Router) memberByName(name string) *member {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.members {
		if m.be.Name == name {
			return m
		}
	}
	return nil
}

// --- proxying ---

// forward proxies req to m, recording the per-backend request count
// and proxy latency.
func (r *Router) forward(m *member, w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	r.met.requests[m.be.Name].Inc()
	m.proxy.ServeHTTP(w, req)
	r.met.latency[m.be.Name].Observe(time.Since(start).Seconds())
}

// NextSessionID mints a cluster-unique session ID ("c1", "c2", …). The
// router names sessions itself so their placement is decided before
// any backend sees the create.
func (r *Router) NextSessionID() string {
	return fmt.Sprintf("c%d", r.nextID.Add(1))
}

func (r *Router) handleCreate(w http.ResponseWriter, req *http.Request) {
	id := r.NextSessionID()
	m, err := r.owner(id)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	req.Header.Set("X-Fttt-Session-Id", id)
	r.forward(m, w, req)
}

func (r *Router) handleSession(w http.ResponseWriter, req *http.Request) {
	m, err := r.owner(req.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	r.forward(m, w, req)
}

// sessionWire is the slice of the serve session description the router
// needs (it treats backend payloads as opaque beyond the ID).
type sessionWire struct {
	ID string `json:"id"`
}

// handleList fans GET /v1/sessions out to every member (leaving ones
// included: their sessions are still real until migrated) and merges
// the results sorted by session ID.
func (r *Router) handleList(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	members := append([]*member(nil), r.members...)
	r.mu.Unlock()
	merged := make([]json.RawMessage, 0, 16)
	for _, m := range members {
		var page []json.RawMessage
		if err := r.getJSON(req.Context(), m, "/v1/sessions", &page); err != nil {
			writeJSON(w, http.StatusBadGateway,
				map[string]string{"error": fmt.Sprintf("cluster: list %s: %v", m.be.Name, err)})
			return
		}
		merged = append(merged, page...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		return sessionID(merged[i]) < sessionID(merged[j])
	})
	writeJSON(w, http.StatusOK, merged)
}

func sessionID(raw json.RawMessage) string {
	var sw sessionWire
	json.Unmarshal(raw, &sw) //nolint:errcheck // sorting best-effort
	return sw.ID
}

// healthWire is the router's /healthz body.
type healthWire struct {
	Status   string              `json:"status"`
	Backends []backendHealthWire `json:"backends"`
}

type backendHealthWire struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Leaving bool   `json:"leaving,omitempty"`
}

func (r *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	hw := healthWire{Status: "ok"}
	for _, m := range r.members {
		hw.Backends = append(hw.Backends, backendHealthWire{
			Name: m.be.Name, URL: m.be.URL, Leaving: m.leaving.Load(),
		})
	}
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, hw)
}

// --- backend HTTP helpers ---

func (r *Router) getJSON(ctx context.Context, m *member, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.be.URL+path, nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// --- migration ---

// SessionCounts fans out to every member and returns live session
// counts by backend name, refreshing the per-backend session gauges.
// Leaving members are included while they still hold sessions.
func (r *Router) SessionCounts(ctx context.Context) (map[string]int, error) {
	r.mu.Lock()
	members := append([]*member(nil), r.members...)
	r.mu.Unlock()
	counts := make(map[string]int, len(members))
	for _, m := range members {
		var page []json.RawMessage
		if err := r.getJSON(ctx, m, "/v1/sessions", &page); err != nil {
			return nil, fmt.Errorf("cluster: sessions on %s: %w", m.be.Name, err)
		}
		counts[m.be.Name] = len(page)
		r.met.sessions[m.be.Name].Set(float64(len(page)))
	}
	return counts, nil
}

// Migrate drains backend name out of the cluster: it is removed from
// placement, each of its sessions' state is exported and restored onto
// the session's new owner under the shrunken member set, and the
// source copy is deleted (so a -migrate-grace drain sees its table
// empty and finishes shutting down). Returns how many sessions moved.
// Idempotent per session: an export/restore that finds the session
// already gone or already restored is skipped, not fatal.
func (r *Router) Migrate(ctx context.Context, name string) (int, error) {
	src := r.memberByName(name)
	if src == nil {
		return 0, fmt.Errorf("cluster: unknown backend %q", name)
	}
	src.leaving.Store(true)
	r.met.backends.Set(float64(len(r.ActiveBackends())))

	var ids []sessionWire
	if err := r.getJSON(ctx, src, "/v1/sessions", &ids); err != nil {
		return 0, fmt.Errorf("cluster: listing sessions on %s: %w", name, err)
	}
	moved := 0
	for _, sw := range ids {
		if err := r.migrateSession(ctx, src, sw.ID); err != nil {
			r.met.migrationErrors.Inc()
			return moved, fmt.Errorf("cluster: migrating %s off %s: %w", sw.ID, name, err)
		}
		moved++
		r.met.migrations.Inc()
	}
	return moved, nil
}

// migrateSession moves one session: export from src, restore onto its
// new owner, delete the source copy.
func (r *Router) migrateSession(ctx context.Context, src *member, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, src.be.URL+"/v1/sessions/"+id+"/state", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	state, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil // closed between list and export
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("export: status %d: %s", resp.StatusCode, strings.TrimSpace(string(state)))
	}

	dst, err := r.owner(id)
	if err != nil {
		return err
	}
	req, err = http.NewRequestWithContext(ctx, http.MethodPut, dst.be.URL+"/v1/sessions/"+id+"/state", strings.NewReader(string(state)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err = r.client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// 409: the successor already has it (a retried migration).
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("restore on %s: status %d: %s", dst.be.Name, resp.StatusCode, strings.TrimSpace(string(body)))
	}

	req, err = http.NewRequestWithContext(ctx, http.MethodDelete, src.be.URL+"/v1/sessions/"+id, nil)
	if err != nil {
		return err
	}
	resp, err = r.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return nil
}

// probeLoop watches every member's /healthz and migrates a member's
// sessions off exactly once when it starts reporting draining (503).
func (r *Router) probeLoop() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			r.probeOnce()
		case <-r.stop:
			return
		}
	}
}

func (r *Router) probeOnce() {
	r.mu.Lock()
	members := append([]*member(nil), r.members...)
	r.mu.Unlock()
	for _, m := range members {
		if m.leaving.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthInterval)
		draining := r.isDraining(ctx, m)
		cancel()
		if draining && m.migrated.CompareAndSwap(false, true) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			if n, err := r.Migrate(ctx, m.be.Name); err != nil {
				// Partial migrations are retried on manual Migrate calls;
				// the prober only fires once per member.
				r.logf("migrate %s: moved %d, error: %v", m.be.Name, n, err)
			} else {
				r.logf("migrated %d sessions off draining backend %s", n, m.be.Name)
			}
			cancel()
		}
	}
}

// isDraining probes one member's /healthz; any 503 answer counts as
// draining (the serve layer's quiesced state).
func (r *Router) isDraining(ctx context.Context, m *member) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.be.URL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false // unreachable ≠ draining: nothing to migrate from
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode == http.StatusServiceUnavailable
}

// logf writes router progress to stderr-style logging; kept tiny and
// replaceable.
func (r *Router) logf(format string, args ...any) {
	fmt.Printf("fttt-router: "+format+"\n", args...)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}
