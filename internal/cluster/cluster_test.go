package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fttt/internal/obs"
	"fttt/internal/serve"
)

// TestPlaceGoldenVectors pins the placement function. These vectors
// are the cross-replica contract: every router build must agree on
// them, so a change here is a cluster-wide reshuffle, not a refactor.
func TestPlaceGoldenVectors(t *testing.T) {
	three := []string{"b1", "b2", "b3"}
	vectors := []struct {
		id, want string
	}{
		{"c1", "b2"},
		{"c2", "b3"},
		{"c3", "b2"},
		{"c4", "b3"},
		{"c5", "b2"},
		{"c6", "b2"},
		{"c7", "b1"},
		{"c8", "b2"},
		{"s1", "b2"},
		{"session-42", "b1"},
	}
	for _, v := range vectors {
		if got := Place(v.id, three); got != v.want {
			t.Errorf("Place(%q, b1..b3) = %q, want %q", v.id, got, v.want)
		}
	}
	two := []string{"b1", "b3"} // b2 drained
	vectors2 := []struct {
		id, want string
	}{
		{"c1", "b1"}, {"c2", "b3"}, {"c3", "b3"}, {"c4", "b3"},
		{"c5", "b1"}, {"c6", "b3"}, {"c7", "b1"}, {"c8", "b1"},
	}
	for _, v := range vectors2 {
		if got := Place(v.id, two); got != v.want {
			t.Errorf("Place(%q, b1,b3) = %q, want %q", v.id, got, v.want)
		}
	}
	named := []string{"alpha", "bravo", "charlie", "delta"}
	for _, v := range []struct{ id, want string }{
		{"c1", "bravo"}, {"t-9", "alpha"}, {"zz", "charlie"},
	} {
		if got := Place(v.id, named); got != v.want {
			t.Errorf("Place(%q, named) = %q, want %q", v.id, got, v.want)
		}
	}
	if got := Place("anything", nil); got != "" {
		t.Errorf("Place over no backends = %q, want empty", got)
	}
}

// TestPlaceProperties checks the rendezvous invariants Place is chosen
// for: member-list order independence, minimal disruption on member
// removal (only the removed member's sessions move), and rough balance
// (no member starves — this is what the score finalizer buys).
func TestPlaceProperties(t *testing.T) {
	members := []string{"b1", "b2", "b3"}
	const n = 3000
	counts := map[string]int{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("c%d", i)
		owner := Place(id, members)
		counts[owner]++

		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		if got := Place(id, shuffled); got != owner {
			t.Fatalf("Place(%q) order-dependent: %q vs %q", id, owner, got)
		}

		survivors := []string{"b1", "b3"}
		after := Place(id, survivors)
		if owner != "b2" && after != owner {
			t.Fatalf("removing b2 moved %q: %q -> %q", id, owner, after)
		}
		if owner == "b2" && after == "b2" {
			t.Fatalf("Place(%q) returned removed member", id)
		}
	}
	for _, m := range members {
		if counts[m] < n/5 {
			t.Errorf("member %s owns %d of %d sessions — placement skewed (%v)", m, counts[m], n, counts)
		}
	}
}

// --- end-to-end fixtures ---

// testBackend is one in-process serve backend behind a real listener.
type testBackend struct {
	name string
	srv  *serve.Server
	ts   *httptest.Server
}

func startBackends(t *testing.T, names ...string) []*testBackend {
	t.Helper()
	var out []*testBackend
	for _, name := range names {
		srv := serve.New(serve.Config{})
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		out = append(out, &testBackend{name: name, srv: srv, ts: ts})
	}
	return out
}

func startRouter(t *testing.T, backends []*testBackend, healthInterval time.Duration) (*Router, *httptest.Server) {
	t.Helper()
	members := make([]Backend, len(backends))
	for i, b := range backends {
		members[i] = Backend{Name: b.name, URL: b.ts.URL}
	}
	rt, err := New(Config{Backends: members, HealthInterval: healthInterval, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return rt, ts
}

var testSessionBody = `{"seed":42,"field":{"min":{"x":0,"y":0},"max":{"x":60,"y":60}},"gridNodes":9,"cellSize":3}`

func createSession(t *testing.T, client *http.Client, baseURL string) string {
	t.Helper()
	resp, err := client.Post(baseURL+"/v1/sessions", "application/json", strings.NewReader(testSessionBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, b)
	}
	var sw struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b, &sw); err != nil {
		t.Fatal(err)
	}
	return sw.ID
}

func localize(t *testing.T, client *http.Client, baseURL, id, target string, x, y float64) serve.EstimateWire {
	t.Helper()
	body := fmt.Sprintf(`{"target":%q,"x":%g,"y":%g}`, target, x, y)
	resp, err := client.Post(baseURL+"/v1/sessions/"+id+"/localize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("localize %s/%s: status %d: %s", id, target, resp.StatusCode, b)
	}
	var ew serve.EstimateWire
	if err := json.Unmarshal(b, &ew); err != nil {
		t.Fatal(err)
	}
	return ew
}

// TestRouterEndToEnd drives the proxy path: sessions created through
// the router land on their hash owner with the router-assigned ID,
// localizes route to the owner, the merged list is sorted and
// complete, and the router metrics endpoint exposes the per-backend
// counters.
func TestRouterEndToEnd(t *testing.T) {
	backends := startBackends(t, "b1", "b2", "b3")
	rt, ts := startRouter(t, backends, 0)
	client := ts.Client()

	const sessions = 6
	byBackend := map[string]int{}
	for i := 0; i < sessions; i++ {
		id := createSession(t, client, ts.URL)
		want := fmt.Sprintf("c%d", i+1)
		if id != want {
			t.Fatalf("router-assigned ID %q, want %q", id, want)
		}
		byBackend[Place(id, []string{"b1", "b2", "b3"})]++
		ew := localize(t, client, ts.URL, id, "tgt", 30, 30)
		if ew.Target != "tgt" || ew.Seq != 0 {
			t.Fatalf("localize through router: %+v", ew)
		}
	}
	// Each backend holds exactly the sessions the placement function
	// assigns it.
	for _, b := range backends {
		if got := b.srv.SessionCount(); got != byBackend[b.name] {
			t.Errorf("%s holds %d sessions, placement says %d", b.name, got, byBackend[b.name])
		}
	}

	// Merged list: every session exactly once, sorted by ID.
	resp, err := client.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != sessions {
		t.Fatalf("merged list has %d sessions, want %d", len(list), sessions)
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatalf("merged list not sorted: %q before %q", list[i-1].ID, list[i].ID)
		}
	}

	// Unknown routes under a session still proxy (404 from the backend,
	// not the router).
	resp, err = client.Get(ts.URL + "/v1/sessions/c1/estimates/tgt")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	counts, err := rt.SessionCounts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range backends {
		if counts[b.name] != byBackend[b.name] {
			t.Errorf("SessionCounts[%s] = %d, want %d", b.name, counts[b.name], byBackend[b.name])
		}
	}

	// Router metrics: per-backend request counters present and the
	// session gauges refreshed by SessionCounts.
	resp, err = client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`fttt_router_requests_total{backend="b1"}`,
		`fttt_router_sessions{backend="b2"}`,
		"fttt_router_backends 3",
	} {
		if !bytes.Contains(mb, []byte(want)) {
			t.Errorf("router /metrics missing %q", want)
		}
	}
}

// TestRouterSSEStream proves estimate streams survive the proxy hop:
// an SSE subscription through the router sees events flushed through
// as they happen (FlushInterval -1), not buffered until close.
func TestRouterSSEStream(t *testing.T) {
	backends := startBackends(t, "b1", "b2")
	_, ts := startRouter(t, backends, 0)
	client := ts.Client()
	id := createSession(t, client, ts.URL)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/sessions/"+id+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := client.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no stream preamble: %v", sc.Err())
	}
	if got := sc.Text(); !strings.Contains(got, id) {
		t.Fatalf("stream preamble %q does not name session %s", got, id)
	}

	localize(t, client, ts.URL, id, "tgt", 25, 25)
	deadline := time.Now().Add(5 * time.Second)
	var sawEvent bool
	for !sawEvent && time.Now().Before(deadline) && sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data:") {
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Fatalf("no SSE estimate event arrived through the router (scan err %v)", sc.Err())
	}
}

// TestMigrateMovesOnlyDrainedSessions is the rebalance contract:
// draining b2 moves exactly b2's sessions, each lands on its successor
// under the shrunken member set, continues its seq sequence, and the
// survivors' sessions never move.
func TestMigrateMovesOnlyDrainedSessions(t *testing.T) {
	backends := startBackends(t, "b1", "b2", "b3")
	rt, ts := startRouter(t, backends, 0)
	client := ts.Client()
	ctx := context.Background()

	const sessions = 8
	owners := map[string]string{}
	for i := 0; i < sessions; i++ {
		id := createSession(t, client, ts.URL)
		owners[id] = Place(id, []string{"b1", "b2", "b3"})
		localize(t, client, ts.URL, id, "tgt", 20, 20) // seq 0 pre-drain
	}
	b2sessions := 0
	for _, owner := range owners {
		if owner == "b2" {
			b2sessions++
		}
	}
	if b2sessions == 0 {
		t.Fatal("fixture degenerate: no sessions on b2")
	}
	var b2 *testBackend
	for _, b := range backends {
		if b.name == "b2" {
			b2 = b
		}
	}

	if err := b2.srv.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	moved, err := rt.Migrate(ctx, "b2")
	if err != nil {
		t.Fatal(err)
	}
	if moved != b2sessions {
		t.Fatalf("migrated %d sessions, want %d (exactly b2's)", moved, b2sessions)
	}
	if got := b2.srv.SessionCount(); got != 0 {
		t.Fatalf("b2 still holds %d sessions after migration", got)
	}

	// Exact post-drain layout: survivors keep theirs, b2's land on their
	// new rendezvous owner.
	wantCounts := map[string]int{}
	for id, owner := range owners {
		if owner == "b2" {
			owner = Place(id, []string{"b1", "b3"})
		}
		wantCounts[owner]++
	}
	counts, err := rt.SessionCounts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"b1", "b2", "b3"} {
		if counts[name] != wantCounts[name] {
			t.Errorf("post-drain %s holds %d sessions, want %d", name, counts[name], wantCounts[name])
		}
	}

	// Every session — migrated or not — still answers through the
	// router, and migrated ones continue their per-target sequence.
	for id := range owners {
		ew := localize(t, client, ts.URL, id, "tgt", 21, 21)
		if ew.Seq != 1 {
			t.Fatalf("session %s: post-drain seq %d, want 1", id, ew.Seq)
		}
	}
	if got := rt.met.migrations.Value(); got != float64(b2sessions) {
		t.Errorf("migrations counter %v, want %d", got, b2sessions)
	}
	if got := rt.met.migrationErrors.Value(); got != 0 {
		t.Errorf("migration errors counter %v, want 0", got)
	}
	if got := len(rt.ActiveBackends()); got != 2 {
		t.Errorf("active backends %d, want 2", got)
	}
}

// TestProberMigratesDrainingBackend covers the autonomous path: a
// backend whose /healthz turns 503 (SIGTERM + -migrate-grace) is
// noticed by the router's health prober and emptied without any
// operator call.
func TestProberMigratesDrainingBackend(t *testing.T) {
	backends := startBackends(t, "b1", "b2")
	_, ts := startRouter(t, backends, 20*time.Millisecond)
	client := ts.Client()

	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, createSession(t, client, ts.URL))
	}
	drained := backends[0]
	if err := drained.srv.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := drained.srv.WaitEmpty(wctx); err != nil {
		t.Fatalf("prober never migrated %s's sessions off: %v", drained.name, err)
	}
	for _, id := range ids {
		localize(t, client, ts.URL, id, "tgt", 30, 30)
	}
}

// TestRouterConfigRejects pins constructor validation.
func TestRouterConfigRejects(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := New(Config{Backends: []Backend{{Name: "a"}}}); err == nil {
		t.Error("backend without URL accepted")
	}
	if _, err := New(Config{Backends: []Backend{
		{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"},
	}}); err == nil {
		t.Error("duplicate backend name accepted")
	}
	if _, err := New(Config{Backends: []Backend{{Name: "a", URL: "://bad"}}}); err == nil {
		t.Error("unparseable backend URL accepted")
	}
}
