// Package fieldcache shares preprocessed field divisions across
// consumers by content address.
//
// The approximate grid division of Sec. 4.3 is FTTT's dominant
// preprocessing cost: every session the serving layer creates for the
// same deployment would otherwise re-run the full Apollonius-circle
// signature pass. A Cache keys each *field.Division by the SHA-256 of
// its build spec (field rect, node coordinates, uncertainty constant,
// cell size — field.Spec.Key), so sessions over one deployment share a
// single immutable division built exactly once, however many arrive
// concurrently (singleflight: late acquirers block on the first build).
//
// Entries are ref-counted. Acquire pins an entry and returns a release
// func; the serving layer ties release to session close. Eviction (over
// Config.MaxEntries) only considers entries with zero references, in
// least-recently-used order, so a pinned division is never yanked from
// under a live session.
//
// With Config.Dir set, each built division is spilled to
// <dir>/<key>.div via field.Save (atomic temp-file rename), and a cache
// miss first tries field.Load on that file — a restarted server
// warm-starts from disk instead of re-dividing. Spilled files survive
// in-memory eviction and are validated (field.Load's invariant checks
// plus field.Spec.Matches) before adoption; a corrupt or mismatched
// file is discarded and rebuilt, never trusted.
package fieldcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"fttt/internal/field"
	"fttt/internal/obs"
)

// Config parameterizes a Cache. The zero value is a valid unbounded
// in-memory cache with no telemetry.
type Config struct {
	// Dir, when non-empty, is the disk-spill directory: built divisions
	// persist there as <key>.div and misses try disk before building.
	Dir string
	// MaxEntries bounds the number of in-memory entries; ≤ 0 means
	// unbounded. Only unreferenced entries are evicted, so the cache may
	// transiently exceed the bound while more than MaxEntries divisions
	// are pinned. Disk-spill files are not removed by eviction.
	MaxEntries int
	// Obs, when non-nil, receives the cache counters and gauges
	// (fttt_fieldcache_*).
	Obs *obs.Registry
}

// Cache is a content-addressed, ref-counted store of field divisions.
// All methods are safe for concurrent use.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry
	tick    uint64 // monotonic LRU clock, advanced under mu

	metrics *cacheMetrics
}

// cacheMetrics caches the handle lookups, following the obs convention:
// a nil *cacheMetrics (no registry attached) skips all bookkeeping.
type cacheMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	builds    *obs.Counter
	diskLoads *obs.Counter
	diskErrs  *obs.Counter
	evictions *obs.Counter
	gEntries  *obs.Gauge
	gBytes    *obs.Gauge
}

func newCacheMetrics(r *obs.Registry) *cacheMetrics {
	if r == nil {
		return nil
	}
	return &cacheMetrics{
		hits:      r.Counter("fttt_fieldcache_hits_total"),
		misses:    r.Counter("fttt_fieldcache_misses_total"),
		builds:    r.Counter("fttt_fieldcache_builds_total"),
		diskLoads: r.Counter("fttt_fieldcache_disk_loads_total"),
		diskErrs:  r.Counter("fttt_fieldcache_disk_errors_total"),
		evictions: r.Counter("fttt_fieldcache_evictions_total"),
		gEntries:  r.Gauge("fttt_fieldcache_entries"),
		gBytes:    r.Gauge("fttt_fieldcache_bytes"),
	}
}

func (m *cacheMetrics) hit() {
	if m != nil {
		m.hits.Inc()
	}
}

func (m *cacheMetrics) miss() {
	if m != nil {
		m.misses.Inc()
	}
}

func (m *cacheMetrics) build() {
	if m != nil {
		m.builds.Inc()
	}
}

func (m *cacheMetrics) diskLoad() {
	if m != nil {
		m.diskLoads.Inc()
	}
}

func (m *cacheMetrics) diskErr() {
	if m != nil {
		m.diskErrs.Inc()
	}
}

func (m *cacheMetrics) evict() {
	if m != nil {
		m.evictions.Inc()
	}
}

// size publishes the entry-count and byte gauges.
func (m *cacheMetrics) size(entries int, bytes int64) {
	if m != nil {
		m.gEntries.Set(float64(entries))
		m.gBytes.Set(float64(bytes))
	}
}

// entry is one cached division. Fields other than ready/div/err/bytes
// are guarded by Cache.mu; div, err and bytes are written once by the
// builder before close(ready) and read-only afterwards.
type entry struct {
	ready   chan struct{} // closed when div/err are final
	div     *field.Division
	err     error
	bytes   int64
	refs    int
	lastUse uint64
}

// New builds a Cache. When cfg.Dir is set the directory is created
// eagerly so a misconfigured path fails at construction, not on the
// first miss.
func New(cfg Config) (*Cache, error) {
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("fieldcache: creating spill dir: %w", err)
		}
	}
	return &Cache{
		cfg:     cfg,
		entries: make(map[string]*entry),
		metrics: newCacheMetrics(cfg.Obs),
	}, nil
}

// Acquire returns the division for spec, building (or disk-loading) it
// on first use, and pins it until release is called. Concurrent
// Acquires for one key share a single build; every acquirer joining an
// entry that already exists — built or still building — counts as a
// hit. release is idempotent and must be called exactly when the
// acquirer is done (the serving layer calls it from session close); the
// division must not be used after release.
func (c *Cache) Acquire(spec field.Spec) (div *field.Division, release func(), err error) {
	key := spec.Key()

	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		e.refs++
		e.lastUse = c.nextTickLocked()
		c.mu.Unlock()
		c.metrics.hit()
		<-e.ready
		if e.err != nil {
			// The build we joined failed; its entry is already gone from
			// the map (the builder removed it before closing ready), so
			// there is nothing to release.
			return nil, nil, e.err
		}
		return e.div, c.releaseFunc(key, e), nil
	}

	// Miss: install a building entry, then build outside the lock.
	e = &entry{ready: make(chan struct{}), refs: 1, lastUse: c.nextTickLocked()}
	c.entries[key] = e
	c.metrics.size(len(c.entries), c.bytesLocked())
	c.mu.Unlock()
	c.metrics.miss()

	d, berr := c.provide(spec, key)

	c.mu.Lock()
	if berr != nil {
		// Failed builds never stay resident: drop the entry before
		// releasing the waiters so the next Acquire retries.
		delete(c.entries, key)
		c.metrics.size(len(c.entries), c.bytesLocked())
		c.mu.Unlock()
		e.err = berr
		close(e.ready)
		return nil, nil, berr
	}
	e.div = d
	e.bytes = d.ApproxBytes()
	c.evictLocked()
	c.metrics.size(len(c.entries), c.bytesLocked())
	c.mu.Unlock()
	close(e.ready)
	return d, c.releaseFunc(key, e), nil
}

// provide produces the division for a miss: disk spill first (validated
// via field.Load's invariants plus spec.Matches), then a fresh build
// which is spilled back to disk on success.
func (c *Cache) provide(spec field.Spec, key string) (*field.Division, error) {
	if c.cfg.Dir != "" {
		if d, err := c.loadSpill(spec, key); err == nil {
			c.metrics.diskLoad()
			return d, nil
		} else if !os.IsNotExist(err) {
			// Present but unusable: count it, then fall through to a
			// rebuild that overwrites the bad file.
			c.metrics.diskErr()
		}
	}
	d, err := spec.Divide()
	if err != nil {
		return nil, err
	}
	c.metrics.build()
	if c.cfg.Dir != "" {
		if err := c.saveSpill(d, key); err != nil {
			// Spill failure degrades persistence, not correctness.
			c.metrics.diskErr()
		}
	}
	return d, nil
}

func (c *Cache) spillPath(key string) string {
	return filepath.Join(c.cfg.Dir, key+".div")
}

func (c *Cache) loadSpill(spec field.Spec, key string) (*field.Division, error) {
	f, err := os.Open(c.spillPath(key))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := field.Load(f)
	if err != nil {
		return nil, err
	}
	if err := spec.Matches(d); err != nil {
		return nil, fmt.Errorf("fieldcache: spill file %s: %w", c.spillPath(key), err)
	}
	return d, nil
}

// saveSpill persists atomically: write a temp file in the same
// directory, then rename over the final path, so a crash mid-write can
// never leave a truncated <key>.div for a later Load to trip on.
func (c *Cache) saveSpill(d *field.Division, key string) error {
	path := c.spillPath(key)
	tmp, err := os.CreateTemp(c.cfg.Dir, key+".tmp*")
	if err != nil {
		return err
	}
	if err := d.Save(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// releaseFunc builds the idempotent unpin closure handed to acquirers.
func (c *Cache) releaseFunc(key string, e *entry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			e.refs--
			e.lastUse = c.nextTickLocked()
			c.evictLocked()
		})
	}
}

// evictLocked drops least-recently-used unreferenced entries while the
// cache exceeds MaxEntries. Building entries are never candidates (they
// hold their builder's reference), and disk-spill files are untouched —
// a re-miss warm-starts from disk.
func (c *Cache) evictLocked() {
	if c.cfg.MaxEntries <= 0 {
		return
	}
	for len(c.entries) > c.cfg.MaxEntries {
		var victimKey string
		var victim *entry
		for k, e := range c.entries {
			if e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return // everything pinned; transiently over the bound
		}
		delete(c.entries, victimKey)
		c.metrics.evict()
	}
	c.metrics.size(len(c.entries), c.bytesLocked())
}

// bytesLocked sums ApproxBytes over resident, finished entries.
func (c *Cache) bytesLocked() int64 {
	var total int64
	for _, e := range c.entries {
		total += e.bytes
	}
	return total
}

func (c *Cache) nextTickLocked() uint64 {
	c.tick++
	return c.tick
}

// Len reports the number of resident entries (including in-flight
// builds).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes reports the estimated resident size of finished entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesLocked()
}
