package fieldcache

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/obs"
	"fttt/internal/rf"
)

var fieldRect = geom.NewRect(geom.Pt(0, 0), geom.Pt(60, 60))

func testSpec(t *testing.T, n int, cell float64) field.Spec {
	t.Helper()
	return field.Spec{
		Field:    fieldRect,
		Nodes:    deploy.Grid(fieldRect, n).Positions(),
		C:        rf.Default().UncertaintyC(1),
		CellSize: cell,
		Workers:  1,
	}
}

func counter(r *obs.Registry, name string) float64 {
	return r.Counter(name).Value()
}

func TestAcquireBuildsOnceAndShares(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Config{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, 9, 3)
	d1, rel1, err := c.Acquire(spec)
	if err != nil {
		t.Fatal(err)
	}
	d2, rel2, err := c.Acquire(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("same spec must share one division pointer")
	}
	if got := counter(reg, "fttt_fieldcache_builds_total"); got != 1 {
		t.Fatalf("builds = %v, want 1", got)
	}
	if got := counter(reg, "fttt_fieldcache_hits_total"); got != 1 {
		t.Fatalf("hits = %v, want 1", got)
	}
	if got := counter(reg, "fttt_fieldcache_misses_total"); got != 1 {
		t.Fatalf("misses = %v, want 1", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if c.Bytes() <= 0 {
		t.Fatal("Bytes should be positive with one finished entry")
	}
	rel1()
	rel1() // idempotent
	rel2()
}

func TestAcquireSingleflightConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Config{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, 9, 2)
	const goroutines = 8
	divs := make([]*field.Division, goroutines)
	rels := make([]func(), goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, rel, err := c.Acquire(spec)
			if err != nil {
				t.Error(err)
				return
			}
			divs[i], rels[i] = d, rel
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if divs[i] != divs[0] {
			t.Fatal("concurrent acquirers got different divisions")
		}
	}
	if got := counter(reg, "fttt_fieldcache_builds_total"); got != 1 {
		t.Fatalf("builds = %v, want exactly 1 under concurrency", got)
	}
	if h, m := counter(reg, "fttt_fieldcache_hits_total"), counter(reg, "fttt_fieldcache_misses_total"); h != goroutines-1 || m != 1 {
		t.Fatalf("hits/misses = %v/%v, want %d/1", h, m, goroutines-1)
	}
	for _, rel := range rels {
		if rel != nil {
			rel()
		}
	}
}

func TestEvictionRespectsPinsAndLRU(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Config{MaxEntries: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := testSpec(t, 4, 10), testSpec(t, 4, 12), testSpec(t, 4, 15)
	_, relA, err := c.Acquire(a)
	if err != nil {
		t.Fatal(err)
	}
	_, relB, err := c.Acquire(b)
	if err != nil {
		t.Fatal(err)
	}
	// Both pinned: a third acquire transiently exceeds the bound but must
	// not evict a pinned entry.
	_, relD, err := c.Acquire(d)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d; pinned entries must not be evicted", c.Len())
	}
	// Release a: it is now the only eviction candidate and must go on the
	// next eviction pass (triggered by the release itself).
	relA()
	if c.Len() != 2 {
		t.Fatalf("Len = %d after releasing one over-bound entry, want 2", c.Len())
	}
	if got := counter(reg, "fttt_fieldcache_evictions_total"); got != 1 {
		t.Fatalf("evictions = %v, want 1", got)
	}
	// Re-acquiring a is a fresh miss (it was evicted)...
	_, relA2, err := c.Acquire(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := counter(reg, "fttt_fieldcache_misses_total"); got != 4 {
		t.Fatalf("misses = %v, want 4 (a was evicted)", got)
	}
	// ...while b survived as a hit.
	_, relB2, err := c.Acquire(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := counter(reg, "fttt_fieldcache_hits_total"); got != 1 {
		t.Fatalf("hits = %v, want 1 (b resident)", got)
	}
	relB()
	relB2()
	relA2()
	relD()
}

func TestDiskSpillWarmRestart(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, 9, 3)

	reg1 := obs.NewRegistry()
	c1, err := New(Config{Dir: dir, Obs: reg1})
	if err != nil {
		t.Fatal(err)
	}
	d1, rel, err := c1.Acquire(spec)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if got := counter(reg1, "fttt_fieldcache_builds_total"); got != 1 {
		t.Fatalf("cold cache builds = %v, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, spec.Key()+".div")); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}

	// "Restart": a fresh cache over the same dir loads from disk, no
	// build.
	reg2 := obs.NewRegistry()
	c2, err := New(Config{Dir: dir, Obs: reg2})
	if err != nil {
		t.Fatal(err)
	}
	d2, rel2, err := c2.Acquire(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if got := counter(reg2, "fttt_fieldcache_builds_total"); got != 0 {
		t.Fatalf("warm cache builds = %v, want 0", got)
	}
	if got := counter(reg2, "fttt_fieldcache_disk_loads_total"); got != 1 {
		t.Fatalf("disk loads = %v, want 1", got)
	}
	// The loaded division is semantically identical: every cell localizes
	// to the same face.
	for r := 0; r < d1.Rows; r++ {
		for col := 0; col < d1.Cols; col++ {
			p := d1.CellCenter(col, r)
			if d1.FaceAt(p).ID != d2.FaceAt(p).ID {
				t.Fatalf("cell (%d,%d) differs after warm restart", col, r)
			}
		}
	}
}

func TestDiskSpillCorruptFileRebuilds(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, 4, 10)
	path := filepath.Join(dir, spec.Key()+".div")
	if err := os.WriteFile(path, []byte("definitely not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c, err := New(Config{Dir: dir, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	d, rel, err := c.Acquire(spec)
	if err != nil {
		t.Fatalf("corrupt spill must rebuild, got error: %v", err)
	}
	defer rel()
	if d == nil || d.NumFaces() == 0 {
		t.Fatal("rebuild produced no division")
	}
	if got := counter(reg, "fttt_fieldcache_disk_errors_total"); got != 1 {
		t.Fatalf("disk errors = %v, want 1", got)
	}
	if got := counter(reg, "fttt_fieldcache_builds_total"); got != 1 {
		t.Fatalf("builds = %v, want 1 after corrupt spill", got)
	}
	// The rebuild overwrote the bad file: a second cache now disk-loads.
	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, rel2, err := c2.Acquire(spec); err != nil {
		t.Fatalf("overwritten spill unusable: %v", err)
	} else {
		rel2()
	}
}

func TestDiskSpillWrongSpecFileRebuilds(t *testing.T) {
	// A spill file that decodes fine but describes a different division
	// (here: forged under the wrong key) must fail Matches and rebuild.
	dir := t.TempDir()
	right := testSpec(t, 9, 3)
	wrong := testSpec(t, 4, 5)
	div, err := wrong.Divide()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, right.Key()+".div"))
	if err != nil {
		t.Fatal(err)
	}
	if err := div.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reg := obs.NewRegistry()
	c, err := New(Config{Dir: dir, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	d, rel, err := c.Acquire(right)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if d.CellSize != right.CellSize {
		t.Fatal("mismatched spill adopted instead of rebuilt")
	}
	if got := counter(reg, "fttt_fieldcache_disk_errors_total"); got != 1 {
		t.Fatalf("disk errors = %v, want 1", got)
	}
}

func TestAcquireBuildErrorNotCached(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := field.Spec{ // 1 node: classifier construction fails
		Field:    fieldRect,
		Nodes:    deploy.Grid(fieldRect, 1).Positions(),
		C:        rf.Default().UncertaintyC(1),
		CellSize: 3,
		Workers:  1,
	}
	if _, _, err := c.Acquire(bad); err == nil {
		t.Fatal("bad spec must fail")
	}
	if c.Len() != 0 {
		t.Fatalf("failed build left %d resident entries", c.Len())
	}
	// A good spec under the same cache still works.
	if _, rel, err := c.Acquire(testSpec(t, 4, 10)); err != nil {
		t.Fatal(err)
	} else {
		rel()
	}
}

func TestNewRejectsBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: filepath.Join(file, "sub")}); err == nil {
		t.Fatal("dir under a regular file must fail at construction")
	} else if !strings.Contains(err.Error(), "spill dir") {
		var pe *os.PathError
		if !errors.As(err, &pe) {
			t.Fatalf("unexpected error shape: %v", err)
		}
	}
}
