package core

import (
	"math"
	"strings"
	"testing"

	"fttt/internal/faults"
	"fttt/internal/geom"
	"fttt/internal/randx"
)

// snapshotConfig is a fault-heavy fixture: a mass crash plus the
// degradation policy, so the migrated state (warm face, extrapolation
// history, fault clock) all materially change later estimates.
func snapshotConfig(t *testing.T) Config {
	t.Helper()
	script, err := faults.Parse("crash at=0 frac=0.6 recover=4; drift sigma=0.05")
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultConfig(16)
	cfg.StarFractionLimit = 0.4
	cfg.RetryBackoff = 0.5
	cfg.FaultScript = script
	cfg.FaultSeed = 3
	return cfg
}

// snapshotRequests is a deterministic two-target request sequence with
// per-request substreams — the serving layer's stream shape.
func snapshotRequests(n int) []LocalizeRequest {
	root := randx.New(11)
	reqs := make([]LocalizeRequest, 0, 2*n)
	for i := 0; i < n; i++ {
		f := float64(i)
		reqs = append(reqs,
			LocalizeRequest{ID: "alpha", Pos: geom.Pt(20+2*f, 25+f),
				Rng: root.Split("target:alpha").SplitN("req", i)},
			LocalizeRequest{ID: "bravo", Pos: geom.Pt(80-2*f, 70-f),
				Rng: root.Split("target:bravo").SplitN("req", i)},
		)
	}
	return reqs
}

func estimatesEqual(a, b Estimate) bool {
	return math.Float64bits(a.Pos.X) == math.Float64bits(b.Pos.X) &&
		math.Float64bits(a.Pos.Y) == math.Float64bits(b.Pos.Y) &&
		a.FaceID == b.FaceID &&
		math.Float64bits(a.Similarity) == math.Float64bits(b.Similarity) &&
		a.Reported == b.Reported && a.Stars == b.Stars &&
		a.Flipped == b.Flipped && a.Visited == b.Visited &&
		a.FellBack == b.FellBack && a.Degraded == b.Degraded &&
		a.Retried == b.Retried && a.Extrapolated == b.Extrapolated
}

// TestSnapshotRestoreByteIdentical is the migration determinism
// contract: running a request sequence straight through equals running
// a prefix on one tracker, snapshotting each target, restoring into a
// fresh MultiTracker over an identical config, and continuing there —
// at every possible split point.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	cfg := snapshotConfig(t)
	reqs := snapshotRequests(8)

	ref, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Requests one at a time: each carries its own stream, so this is
	// the canonical serial reference (per-request replay needs fresh
	// streams, hence the rebuild below).
	wantAll := make([]Estimate, len(reqs))
	for i := range reqs {
		ests, err := ref.LocalizeBatch(reqs[i:i+1], 1)
		if err != nil {
			t.Fatal(err)
		}
		wantAll[i] = ests[0]
	}

	for split := 0; split <= len(reqs); split += 3 {
		reqs := snapshotRequests(8) // fresh streams per replay
		src, err := NewMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < split; i++ {
			if _, err := src.LocalizeBatch(reqs[i:i+1], 1); err != nil {
				t.Fatal(err)
			}
		}
		dst, err := NewMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range src.Targets() {
			snap, err := src.SnapshotTarget(id)
			if err != nil {
				t.Fatalf("split %d: snapshot %s: %v", split, id, err)
			}
			if err := dst.RestoreTarget(id, snap); err != nil {
				t.Fatalf("split %d: restore %s: %v", split, id, err)
			}
		}
		for i := split; i < len(reqs); i++ {
			ests, err := dst.LocalizeBatch(reqs[i:i+1], 1)
			if err != nil {
				t.Fatal(err)
			}
			if !estimatesEqual(ests[0], wantAll[i]) {
				t.Fatalf("split %d: request %d (%s) diverged after restore:\n got %+v\nwant %+v",
					split, i, reqs[i].ID, ests[0], wantAll[i])
			}
		}
	}
}

// TestSnapshotRestoreFaultClock pins that the restored fault scheduler
// sits at the snapshot's virtual time (the scheduler reconstructs
// deterministically from seeking alone).
func TestSnapshotRestoreFaultClock(t *testing.T) {
	cfg := snapshotConfig(t)
	src, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := snapshotRequests(6)
	for i := range reqs {
		if _, err := src.LocalizeBatch(reqs[i:i+1], 1); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := src.SnapshotTarget("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if snap.FaultNow <= 0 {
		t.Fatalf("FaultNow = %v, want > 0 (retries advanced the clock)", snap.FaultNow)
	}
	dst, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreTarget("alpha", snap); err != nil {
		t.Fatal(err)
	}
	sched, err := dst.FaultScheduler("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Now(); got != snap.FaultNow {
		t.Fatalf("restored fault clock %v, want %v", got, snap.FaultNow)
	}
	srcSched, err := src.FaultScheduler("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sched.CrashedCount(), srcSched.CrashedCount(); got != want {
		t.Fatalf("restored crashed count %d, want %d", got, want)
	}
}

func TestSnapshotErrors(t *testing.T) {
	cfg := defaultConfig(9)
	m, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SnapshotTarget("ghost"); err == nil || !strings.Contains(err.Error(), "unknown target") {
		t.Fatalf("snapshot of unknown target: err = %v", err)
	}
	if err := m.RestoreTarget("a", TargetSnapshot{FaceID: 1 << 30}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("restore with bad face: err = %v", err)
	}
	if err := m.RestoreTarget("a", TargetSnapshot{FaceID: -1, HistN: 7}); err == nil || !strings.Contains(err.Error(), "histN") {
		t.Fatalf("restore with bad histN: err = %v", err)
	}
	// A valid cold snapshot restores cleanly.
	if err := m.RestoreTarget("a", TargetSnapshot{FaceID: -1}); err != nil {
		t.Fatal(err)
	}
}
