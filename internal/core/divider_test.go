package core

import (
	"errors"
	"strings"
	"testing"

	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/randx"
)

// localizeFingerprint runs a fixed localization sequence and returns the
// estimates — byte-identical trackers produce equal fingerprints.
func localizeFingerprint(t *testing.T, tr *Tracker) []Estimate {
	t.Helper()
	rng := randx.New(7)
	out := make([]Estimate, 0, 20)
	for trial := 0; trial < 20; trial++ {
		pos := geom.Pt(rng.Uniform(10, 90), rng.Uniform(10, 90))
		out = append(out, tr.Localize(pos, rng.SplitN("t", trial)))
	}
	return out
}

func sameEstimates(a, b []Estimate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pos != b[i].Pos || a[i].FaceID != b[i].FaceID || a[i].Similarity != b[i].Similarity {
			return false
		}
	}
	return true
}

func TestDividerSeamSuppliesDivision(t *testing.T) {
	cfg := defaultConfig(9)
	calls := 0
	var gotSpec field.Spec
	cfg.Divider = func(spec field.Spec) (*field.Division, error) {
		calls++
		gotSpec = spec
		return spec.Divide()
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("Divider called %d times, want 1", calls)
	}
	want := cfg.DivisionSpec()
	if gotSpec.Key() != want.Key() {
		t.Fatal("Divider received a spec with a different content key than DivisionSpec")
	}
	// Identical behavior to the private-build path.
	ref, err := New(defaultConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if !sameEstimates(localizeFingerprint(t, tr), localizeFingerprint(t, ref)) {
		t.Fatal("Divider-supplied division localizes differently from a private build")
	}
}

func TestDividerErrorPropagates(t *testing.T) {
	cfg := defaultConfig(9)
	boom := errors.New("cache on fire")
	cfg.Divider = func(field.Spec) (*field.Division, error) { return nil, boom }
	if _, err := New(cfg); !errors.Is(err, boom) {
		t.Fatalf("New error %v does not wrap the Divider error", err)
	}
}

func TestDivideWorkersByteIdentical(t *testing.T) {
	// Satellite check for the parallel construction path: the worker
	// count is a latency knob only; every setting yields a tracker with
	// identical estimates.
	ref, err := New(defaultConfig(9)) // DivideWorkers 0: serial
	if err != nil {
		t.Fatal(err)
	}
	want := localizeFingerprint(t, ref)
	for _, workers := range []int{1, 2, 3, -1} {
		cfg := defaultConfig(9)
		cfg.DivideWorkers = workers
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !sameEstimates(localizeFingerprint(t, tr), want) {
			t.Fatalf("DivideWorkers=%d changes localization results", workers)
		}
	}
}

func TestDivisionSpecWorkerMapping(t *testing.T) {
	cfg := defaultConfig(9)
	if w := cfg.DivisionSpec().Workers; w != 1 {
		t.Fatalf("DivideWorkers=0 must map to serial (1), got %d", w)
	}
	cfg.DivideWorkers = 4
	if w := cfg.DivisionSpec().Workers; w != 4 {
		t.Fatalf("DivideWorkers=4 must pass through, got %d", w)
	}
	cfg.DivideWorkers = -1
	if w := cfg.DivisionSpec().Workers; w != -1 {
		t.Fatalf("DivideWorkers=-1 must pass through (Spec resolves to NumCPU), got %d", w)
	}
	// CellSize default resolves inside the spec so the cache key sees the
	// effective value, not the sentinel.
	cfg = defaultConfig(9)
	cfg.CellSize = 0
	if got := cfg.DivisionSpec().CellSize; got != 1 {
		t.Fatalf("CellSize=0 must resolve to 1 in the spec, got %v", got)
	}
}

func TestNewWithDivisionRejectsMismatch(t *testing.T) {
	div, err := defaultConfig(9).DivisionSpec().Divide()
	if err != nil {
		t.Fatal(err)
	}
	// Wrong deployment: 16 nodes imply C(16,2)=120 pairs, the division
	// has C(9,2)=36.
	if _, err := NewWithDivision(defaultConfig(16), div); err == nil {
		t.Fatal("division for 9 nodes accepted by a 16-node config")
	} else if !strings.Contains(err.Error(), "signature dimension") {
		t.Fatalf("want dimension-mismatch error, got: %v", err)
	}
	if _, err := NewWithDivision(defaultConfig(9), nil); err == nil {
		t.Fatal("nil division accepted")
	}
	if _, err := NewWithDivision(defaultConfig(9), &field.Division{}); err == nil {
		t.Fatal("empty division accepted")
	}
	// The matching deployment still works.
	if _, err := NewWithDivision(defaultConfig(9), div); err != nil {
		t.Fatalf("matching division rejected: %v", err)
	}
}
