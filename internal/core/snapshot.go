package core

import (
	"fmt"

	"fttt/internal/geom"
)

// TargetSnapshot is the portable warm-start state of one tracked
// target — everything a successor tracker over the *same* division
// needs to continue a request sequence byte-identically where the
// original left off (DESIGN.md §16): the warm-start face, the
// two-point estimate history the degradation fallback extrapolates
// from, and the fault scheduler's virtual clock. The scheduler itself
// is a pure deterministic function of (script, seed, max seeked time),
// so its whole state reconstructs from FaultNow alone.
//
// The snapshot deliberately does not carry Byzantine defense state
// (per-node trust, pair evidence): a restored defended target re-learns
// trust from scratch, which degrades detection latency, never
// correctness. Migrating defended sessions byte-identically is a
// documented follow-on.
type TargetSnapshot struct {
	// FaceID is the warm-start face (an index into Division.Faces);
	// -1 when the target has no previous face (cold start).
	FaceID int `json:"faceId"`
	// HistN is how many of the history points below are valid (0..2).
	HistN int `json:"histN,omitempty"`
	// LastX/LastY and PrevX/PrevY are the newest and second-newest
	// final position estimates (the extrapolation history).
	LastX float64 `json:"lastX,omitempty"`
	LastY float64 `json:"lastY,omitempty"`
	PrevX float64 `json:"prevX,omitempty"`
	PrevY float64 `json:"prevY,omitempty"`
	// FaultNow is the fault scheduler's virtual time; 0 when the target
	// has no scheduler (or has never advanced it).
	FaultNow float64 `json:"faultNow,omitempty"`
}

// SnapshotTarget captures the warm-start state of an existing target.
// It errors on unknown targets — callers migrating a session snapshot
// only the targets MultiTracker.Targets reports. The snapshot is taken
// under the target's lock, so it is consistent provided no localization
// for the target is concurrently in flight.
func (m *MultiTracker) SnapshotTarget(targetID string) (TargetSnapshot, error) {
	m.mu.RLock()
	ts, ok := m.targets[targetID]
	m.mu.RUnlock()
	if !ok {
		return TargetSnapshot{}, fmt.Errorf("core: snapshot of unknown target %q", targetID)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	tr := ts.tr
	snap := TargetSnapshot{
		FaceID: -1,
		HistN:  tr.histN,
		LastX:  tr.lastPos.X, LastY: tr.lastPos.Y,
		PrevX: tr.prevPos.X, PrevY: tr.prevPos.Y,
	}
	if tr.prev != nil {
		snap.FaceID = tr.prev.ID
	}
	if tr.faults != nil {
		snap.FaultNow = tr.faults.Now()
	}
	return snap, nil
}

// RestoreTarget creates (or overwrites) a target in the snapshot's
// state. The tracker must have been built from the same configuration
// as the snapshot's source — in particular the same division, so the
// face ID resolves to the same face. Restoring then continuing the
// source's request sequence yields estimates byte-identical to never
// having migrated (pinned by TestSnapshotRestoreByteIdentical).
func (m *MultiTracker) RestoreTarget(targetID string, snap TargetSnapshot) error {
	ts, err := m.target(targetID)
	if err != nil {
		return err
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	tr := ts.tr
	if snap.FaceID >= 0 {
		if snap.FaceID >= len(tr.div.Faces) {
			return fmt.Errorf("core: restore target %q: face %d out of range (division has %d faces)",
				targetID, snap.FaceID, len(tr.div.Faces))
		}
		tr.prev = &tr.div.Faces[snap.FaceID]
	} else {
		tr.prev = nil
	}
	if snap.HistN < 0 || snap.HistN > 2 {
		return fmt.Errorf("core: restore target %q: histN %d out of range [0,2]", targetID, snap.HistN)
	}
	tr.histN = snap.HistN
	tr.lastPos = geom.Pt(snap.LastX, snap.LastY)
	tr.prevPos = geom.Pt(snap.PrevX, snap.PrevY)
	if tr.faults != nil && snap.FaultNow > 0 {
		tr.faults.Seek(snap.FaultNow)
	}
	return nil
}
