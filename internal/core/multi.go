package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fttt/internal/faults"
	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/match"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/sampling"
	"fttt/internal/vector"
)

// MultiTracker tracks several targets over one shared field division —
// the natural extension of FTTT to the multi-target setting when targets
// emit distinguishable signals (the outdoor system's fixed-frequency
// resonator generalises to one frequency per target, so sensors report
// per-target RSS separately). Each target keeps its own warm-start face;
// the expensive preprocessing (Sec. 4.3) is shared.
//
// A MultiTracker is safe for concurrent use: the target table is
// mutex-protected and each target's localizations are serialized on a
// per-target lock, so goroutines localizing distinct targets proceed in
// parallel while the shared Division is only ever read. LocalizeAll and
// LocalizeGroups fan a whole batch across a worker pool.
type MultiTracker struct {
	base   Config
	shared *Tracker // owns the division

	mu      sync.RWMutex
	targets map[string]*targetState

	// soaOK reports that LocalizeBatch may route through the wave-
	// structured SoA batch matcher: the division carries a quantized
	// store and the configured matcher has a batch equivalent (TopM
	// selects a weighted estimator the batch kernel does not replicate).
	soaOK bool
	// batchMu serializes the batched localization path: the engine below
	// holds every participating target's lock for the whole batch, and
	// one-at-a-time batches keep the multi-lock acquisition trivially
	// deadlock-free. It also guards the wave scratch.
	batchMu   sync.Mutex
	bm        *match.Batch
	pend      []batchPending
	laneVs    []vector.Vector
	lanePrevs []*field.Face
	laneWs    [][]float64
	laneRes   []match.Result
	metrics   *multiMetrics
}

// multiMetrics counts the batch engine's wave structure; resolved once
// in NewMulti like the tracker metrics.
type multiMetrics struct {
	waves *obs.Counter
	lanes *obs.Counter
}

// targetState is one target's tracker plus the lock serializing its
// localizations (Tracker is single-goroutine: warm-start face and matcher
// scratch).
type targetState struct {
	mu sync.Mutex
	tr *Tracker
}

// NewMulti preprocesses the division once and returns an empty
// multi-target tracker; targets are added lazily on first localization.
func NewMulti(cfg Config) (*MultiTracker, error) {
	shared, err := New(cfg)
	if err != nil {
		return nil, err
	}
	m := &MultiTracker{
		base:    cfg,
		shared:  shared,
		targets: make(map[string]*targetState),
		soaOK:   cfg.TopM == 0 && shared.Division().SoA() != nil,
	}
	if cfg.Obs != nil {
		m.metrics = &multiMetrics{
			waves: cfg.Obs.Counter("fttt_core_batch_waves_total"),
			lanes: cfg.Obs.Counter("fttt_core_batch_lanes_total"),
		}
	}
	return m, nil
}

// Targets returns the known target IDs in sorted order.
func (m *MultiTracker) Targets() []string {
	m.mu.RLock()
	ids := make([]string, 0, len(m.targets))
	for id := range m.targets {
		ids = append(ids, id)
	}
	m.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// target returns (creating if needed) the per-target state.
func (m *MultiTracker) target(targetID string) (*targetState, error) {
	if targetID == "" {
		return nil, fmt.Errorf("core: empty target ID")
	}
	m.mu.RLock()
	ts, ok := m.targets[targetID]
	m.mu.RUnlock()
	if ok {
		return ts, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts, ok = m.targets[targetID]; ok { // lost the create race
		return ts, nil
	}
	tr, err := NewWithDivision(m.base, m.shared.Division())
	if err != nil {
		return nil, err
	}
	ts = &targetState{tr: tr}
	m.targets[targetID] = ts
	return ts, nil
}

// LocalizeGroup matches one target's grouping sampling, warm-starting
// from that target's previous face. Calls for distinct targets may run
// concurrently; calls for the same target serialize.
func (m *MultiTracker) LocalizeGroup(targetID string, g *sampling.Group) (Estimate, error) {
	ts, err := m.target(targetID)
	if err != nil {
		return Estimate{}, err
	}
	ts.mu.Lock()
	est := ts.tr.LocalizeGroup(g)
	ts.mu.Unlock()
	return est, nil
}

// TargetPosition names one target's true position for a batch
// localization round.
type TargetPosition struct {
	ID  string
	Pos geom.Point
}

// TargetGroup names one target's externally collected grouping sampling
// for a batch localization round.
type TargetGroup struct {
	ID    string
	Group *sampling.Group
}

// LocalizeAll samples and localizes every target of the batch, fanning
// the work across a pool of workers (≤ 0 selects runtime.NumCPU(); 1 is
// serial). Target i draws its sampling noise from the substream
// rng.Split(batch[i].ID), so the estimates are identical for every worker
// count and schedule — and identical to localizing each target alone with
// the same substream. IDs should be unique within one batch; duplicates
// are localized serially in unspecified relative order.
func (m *MultiTracker) LocalizeAll(batch []TargetPosition, rng *randx.Stream, workers int) (map[string]Estimate, error) {
	states := make([]*targetState, len(batch))
	streams := make([]*randx.Stream, len(batch))
	for i, tp := range batch {
		ts, err := m.target(tp.ID)
		if err != nil {
			return nil, err
		}
		states[i] = ts
		streams[i] = rng.Split(tp.ID)
	}
	ests := make([]Estimate, len(batch))
	fanOut(len(batch), workers, func(i int) {
		ts := states[i]
		ts.mu.Lock()
		ests[i] = ts.tr.Localize(batch[i].Pos, streams[i])
		ts.mu.Unlock()
	})
	out := make(map[string]Estimate, len(batch))
	for i, tp := range batch {
		out[tp.ID] = ests[i]
	}
	return out, nil
}

// LocalizeGroups is LocalizeAll for externally collected grouping
// samplings (the wsnnet path): each target's group is matched on a worker
// from the pool, warm-starting from that target's previous face.
func (m *MultiTracker) LocalizeGroups(batch []TargetGroup, workers int) (map[string]Estimate, error) {
	states := make([]*targetState, len(batch))
	for i, tg := range batch {
		ts, err := m.target(tg.ID)
		if err != nil {
			return nil, err
		}
		states[i] = ts
	}
	ests := make([]Estimate, len(batch))
	fanOut(len(batch), workers, func(i int) {
		ts := states[i]
		ts.mu.Lock()
		ests[i] = ts.tr.LocalizeGroup(batch[i].Group)
		ts.mu.Unlock()
	})
	out := make(map[string]Estimate, len(batch))
	for i, tg := range batch {
		out[tg.ID] = ests[i]
	}
	return out, nil
}

// LocalizeRequest is one entry of a heterogeneous LocalizeBatch round:
// a target ID plus either an externally collected grouping sampling
// (Group non-nil) or a true position to sample, with the request's own
// noise substream. Unlike LocalizeAll, requests carry explicit streams,
// so the same target may appear several times in one batch — its
// requests execute serially in slice order, which is what a serving
// batcher needs to keep batched execution byte-identical to serial.
type LocalizeRequest struct {
	// ID names the target; must be non-empty.
	ID string
	// Group, when non-nil, is matched directly (the report-ingestion
	// path); Pos and Rng are ignored.
	Group *sampling.Group
	// Pos is the true target position to sample when Group is nil.
	Pos geom.Point
	// Rng drives the sampling noise when Group is nil; required then.
	Rng *randx.Stream
	// Span, when valid, is the request's trace context: the round span
	// parents under it and the batch span links to it, so one serving
	// request yields a full causal tree (DESIGN.md §12). Zero is fine —
	// the round then starts its own trace (or none, with no recorder).
	Span obs.SpanRef
}

// LocalizeBatch localizes a heterogeneous batch of requests. Request
// i's estimate lands in slot i of the result; requests for the same
// target execute serially in slice order. Because each request consumes
// only its own stream and per-target order is preserved, the results
// are byte-identical for every worker count and batch split — equal to
// executing the requests one at a time in slice order. This is the
// primitive the serving micro-batcher (internal/serve) coalesces
// concurrent localize calls into.
//
// When the shared division carries a quantized SoA signature store and
// the configured matcher has a batch equivalent (every config except
// TopM > 0), the batch executes as waves: one pending request per
// target per wave runs its sampling, then a single match.Batch pass
// scores every wave lane's first match against the SoA store —
// bitwise-identical to the per-lane serial matcher by the batch
// kernel's differential contract — and each lane then completes its
// round (degradation retries use the lane's own serial matcher).
// Otherwise distinct targets fan across a pool of workers (≤ 0 selects
// runtime.NumCPU(); 1 is serial) exactly as before; workers is ignored
// on the wave path.
func (m *MultiTracker) LocalizeBatch(reqs []LocalizeRequest, workers int) ([]Estimate, error) {
	states := make(map[string]*targetState, len(reqs))
	order := make([]string, 0, len(reqs))
	byTarget := make(map[string][]int, len(reqs))
	for i, r := range reqs {
		if r.Group == nil && r.Rng == nil {
			return nil, fmt.Errorf("core: request %d (%q) has neither Group nor Rng", i, r.ID)
		}
		if _, ok := states[r.ID]; !ok {
			ts, err := m.target(r.ID)
			if err != nil {
				return nil, err
			}
			states[r.ID] = ts
			order = append(order, r.ID)
		}
		byTarget[r.ID] = append(byTarget[r.ID], i)
	}
	ests := make([]Estimate, len(reqs))
	// The batch span records how the micro-batcher coalesced this round
	// and links each member request's span, tying the per-request causal
	// trees to the execution that actually served them. rec is shared by
	// every per-target clone (they all derive it from base.Tracer).
	rec := m.shared.rec
	batchSpan := rec.Start(obs.SpanRef{}, "core", "localize_batch")
	if rec != nil {
		batchSpan.Attr("requests", float64(len(reqs)))
		batchSpan.Attr("targets", float64(len(order)))
		for i := range reqs {
			rec.Link(batchSpan.Ref(), reqs[i].Span)
		}
	}
	if m.soaOK {
		m.localizeBatchWaves(reqs, states, order, byTarget, ests)
	} else {
		m.localizeBatchFanOut(reqs, states, order, byTarget, ests, workers)
	}
	batchSpan.End()
	return ests, nil
}

// localizeBatchFanOut is the pre-SoA execution strategy: distinct
// targets fan across a worker pool, each running its requests serially
// through the per-target tracker (and its serial matcher).
func (m *MultiTracker) localizeBatchFanOut(reqs []LocalizeRequest, states map[string]*targetState, order []string, byTarget map[string][]int, ests []Estimate, workers int) {
	fanOut(len(order), workers, func(ti int) {
		id := order[ti]
		ts := states[id]
		ts.mu.Lock()
		for _, ri := range byTarget[id] {
			r := reqs[ri]
			ts.tr.SetRequestSpan(r.Span)
			if r.Group != nil {
				ests[ri] = ts.tr.LocalizeGroup(r.Group)
			} else {
				ests[ri] = ts.tr.Localize(r.Pos, r.Rng)
			}
		}
		ts.tr.SetRequestSpan(obs.SpanRef{})
		ts.mu.Unlock()
	})
}

// localizeBatchWaves executes the batch through the shared SoA batch
// matcher. Requests are organized into waves holding at most one
// request per target (per-target FIFO preserved: wave w takes each
// target's w-th request), because a request's completion phase can
// mutate per-target state the target's next request must observe — the
// fault clock a degraded retry advances, the warm-start face, the
// estimate history. Lanes of one wave belong to distinct targets, so
// the pre-match phases can run back to back, one central MatchBatch
// pass scores every lane, and the completion phases replay the rest of
// the serial flow. Every target lock is held for the whole batch;
// batchMu keeps multi-lock acquisition single-flight (single-lock
// callers like LocalizeGroup cannot form a cycle against it).
func (m *MultiTracker) localizeBatchWaves(reqs []LocalizeRequest, states map[string]*targetState, order []string, byTarget map[string][]int, ests []Estimate) {
	m.batchMu.Lock()
	defer m.batchMu.Unlock()
	if m.bm == nil {
		// Mirror NewWithDivision's serial matcher knobs exactly: the
		// batch kernel's bitwise-identity contract is per matching
		// configuration.
		m.bm = &match.Batch{
			Div:           m.shared.Division(),
			Incremental:   true,
			Fallback:      m.base.FallbackBelow > 0,
			FallbackBelow: m.base.FallbackBelow,
			Exhaustive:    m.base.Exhaustive,
		}
	}
	for _, id := range order {
		states[id].mu.Lock()
	}
	defer func() {
		for _, id := range order {
			ts := states[id]
			ts.tr.SetRequestSpan(obs.SpanRef{})
			ts.mu.Unlock()
		}
	}()
	pend, vs, prevs, ws := m.pend, m.laneVs, m.lanePrevs, m.laneWs
	for wave := 0; ; wave++ {
		pend, vs, prevs, ws = pend[:0], vs[:0], prevs[:0], ws[:0]
		for _, id := range order {
			ris := byTarget[id]
			if wave >= len(ris) {
				continue
			}
			ri := ris[wave]
			p := states[id].tr.batchBegin(&reqs[ri])
			p.reqIdx = ri
			pend = append(pend, p)
			vs = append(vs, p.v)
			prevs = append(prevs, p.prev)
			ws = append(ws, p.w)
		}
		if len(pend) == 0 {
			break
		}
		// Weighted lanes (a defense with active suspects) take the float
		// replay path; nil-weight lanes run the unweighted kernels, so
		// without a Defense this is exactly MatchBatch.
		m.laneRes = m.bm.MatchBatchWeighted(m.laneRes[:0], vs, prevs, ws)
		for i := range pend {
			p := &pend[i]
			ests[p.reqIdx] = p.tr.batchFinish(p, m.laneRes[i])
		}
		if m.metrics != nil {
			m.metrics.waves.Inc()
			m.metrics.lanes.Add(float64(len(pend)))
		}
	}
	m.pend, m.laneVs, m.lanePrevs, m.laneWs = pend, vs, prevs, ws
}

// FaultScheduler exposes one target's fault scheduler (created on first
// use like the target itself; nil when no FaultScript is configured).
// Callers driving per-request batches directly can Seek it to their own
// virtual time between requests, exactly like Track does serially.
func (m *MultiTracker) FaultScheduler(targetID string) (*faults.Scheduler, error) {
	ts, err := m.target(targetID)
	if err != nil {
		return nil, err
	}
	return ts.tr.FaultScheduler(), nil
}

// Forget drops a target's state (e.g. it left the field).
func (m *MultiTracker) Forget(targetID string) {
	m.mu.Lock()
	delete(m.targets, targetID)
	m.mu.Unlock()
}

// Division exposes the shared preprocessed division.
func (m *MultiTracker) Division() *field.Division {
	return m.shared.Division()
}

// fanOut runs job(0..n-1) on a pool of workers (≤ 0 selects
// runtime.NumCPU(), capped at n; 1 runs inline). Jobs are claimed from an
// atomic counter, so every job runs exactly once.
func fanOut(n, workers int, job func(i int)) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
