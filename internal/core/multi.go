package core

import (
	"fmt"
	"sort"

	"fttt/internal/field"
	"fttt/internal/sampling"
)

// MultiTracker tracks several targets over one shared field division —
// the natural extension of FTTT to the multi-target setting when targets
// emit distinguishable signals (the outdoor system's fixed-frequency
// resonator generalises to one frequency per target, so sensors report
// per-target RSS separately). Each target keeps its own warm-start face;
// the expensive preprocessing (Sec. 4.3) is shared.
type MultiTracker struct {
	base     Config
	shared   *Tracker // owns the division
	trackers map[string]*Tracker
}

// NewMulti preprocesses the division once and returns an empty
// multi-target tracker; targets are added lazily on first localization.
func NewMulti(cfg Config) (*MultiTracker, error) {
	shared, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &MultiTracker{
		base:     cfg,
		shared:   shared,
		trackers: make(map[string]*Tracker),
	}, nil
}

// Targets returns the known target IDs in sorted order.
func (m *MultiTracker) Targets() []string {
	ids := make([]string, 0, len(m.trackers))
	for id := range m.trackers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// tracker returns (creating if needed) the per-target tracker.
func (m *MultiTracker) tracker(targetID string) (*Tracker, error) {
	if tr, ok := m.trackers[targetID]; ok {
		return tr, nil
	}
	tr, err := NewWithDivision(m.base, m.shared.Division())
	if err != nil {
		return nil, err
	}
	m.trackers[targetID] = tr
	return tr, nil
}

// LocalizeGroup matches one target's grouping sampling, warm-starting
// from that target's previous face.
func (m *MultiTracker) LocalizeGroup(targetID string, g *sampling.Group) (Estimate, error) {
	if targetID == "" {
		return Estimate{}, fmt.Errorf("core: empty target ID")
	}
	tr, err := m.tracker(targetID)
	if err != nil {
		return Estimate{}, err
	}
	return tr.LocalizeGroup(g), nil
}

// Forget drops a target's state (e.g. it left the field).
func (m *MultiTracker) Forget(targetID string) {
	delete(m.trackers, targetID)
}

// Division exposes the shared preprocessed division.
func (m *MultiTracker) Division() *field.Division {
	return m.shared.Division()
}
