package core

import (
	"fmt"
	"math"
	"testing"

	"fttt/internal/byz"
	"fttt/internal/faults"
	"fttt/internal/geom"
	"fttt/internal/randx"
)

// defendedConfig arms the Byzantine defense on the default fixture.
func defendedConfig(n int) Config {
	cfg := defaultConfig(n)
	cfg.Defense = &byz.Config{Enabled: true}
	return cfg
}

// byzTrace is a deterministic 40-step diagonal sweep.
func byzTrace() []geom.Point {
	pts := make([]geom.Point, 40)
	for i := range pts {
		f := float64(i) / float64(len(pts)-1)
		pts[i] = geom.Pt(10+80*f, 15+70*f)
	}
	return pts
}

// TestDefenseValidate pins the configuration seams: a bad byz config
// fails core validation, and Defense+TopM is rejected (the weighted
// top-M estimator has no trust-weighted form).
func TestDefenseValidate(t *testing.T) {
	cfg := defendedConfig(16)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("defended config rejected: %v", err)
	}
	bad := cfg
	bad.Defense = &byz.Config{Enabled: true, QuorumThreshold: 0.2}
	if err := bad.Validate(); err == nil {
		t.Error("sub-majority quorum threshold should be rejected")
	}
	bad = cfg
	bad.TopM = 3
	if err := bad.Validate(); err == nil {
		t.Error("Defense with TopM should be rejected")
	}
}

// TestDefenseHonestByteIdentical is the §15 byte-identity contract at
// the tracker level: with zero malicious nodes a defended tracker's
// estimates equal a vanilla tracker's exactly (whole Estimate structs,
// which include bit-sensitive similarity floats).
func TestDefenseHonestByteIdentical(t *testing.T) {
	trace := byzTrace()
	vanilla, err := New(defaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	defended, err := New(defendedConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	want := vanilla.Track(trace, nil, randx.New(77))
	got := defended.Track(trace, nil, randx.New(77))
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("step %d: defended %+v, want vanilla %+v", i, got[i], want[i])
		}
	}
	if d := defended.Defense(); d == nil {
		t.Fatal("defended tracker has no Defense")
	} else if s := d.Suspects(); len(s) != 0 {
		t.Fatalf("honest run flagged suspects %v", s)
	}
}

// colludeScript makes the two nodes sitting on byzTrace's diagonal
// report the RSS a target at decoy (90, 10) would produce — a
// coordinated lie ("we are ~59 m away, always") that contradicts the
// true pair order whenever a colluder is among the nearer in-range
// nodes, which on this trace gives each a sustained detection window.
func colludeScript(t *testing.T) *faults.Script {
	t.Helper()
	s, err := faults.Parse("collude at=0 nodes=5,10 x=90 y=10")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDefenseDetectsColludingNodes runs a defended track against the
// collude script and checks the detector converges on exactly the
// scripted nodes — and that hysteresis keeps them flagged after their
// geometric detection window has passed.
func TestDefenseDetectsColludingNodes(t *testing.T) {
	cfg := defendedConfig(16)
	cfg.FaultScript = colludeScript(t)
	cfg.FaultSeed = 5
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.Track(byzTrace(), nil, randx.New(3))
	sus := tr.Defense().Suspects()
	if len(sus) != 2 || sus[0] != 5 || sus[1] != 10 {
		t.Fatalf("suspects = %v, want [5 10]", sus)
	}
	if tr.Defense().NodeTrust(10) > 0.9 {
		t.Errorf("colluding node trust %v, want low", tr.Defense().NodeTrust(10))
	}
	if tr.Defense().NodeTrust(0) < 0.95 {
		t.Errorf("honest node trust %v, want high", tr.Defense().NodeTrust(0))
	}
}

// TestDefenseImprovesUnderCollusion: once the detector has converged,
// the defended tracker's error should beat the undefended one on the
// same faulted workload (the full-strength acceptance bound — 20%
// colluders, ≤ 0.5× — is asserted in internal/experiments).
func TestDefenseImprovesUnderCollusion(t *testing.T) {
	trace := byzTrace()
	run := func(defend bool) float64 {
		cfg := defaultConfig(16)
		if defend {
			cfg.Defense = &byz.Config{Enabled: true}
		}
		cfg.FaultScript = colludeScript(t)
		cfg.FaultSeed = 5
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pts := tr.Track(trace, nil, randx.New(3))
		// Score only the post-convergence tail: the first rounds are the
		// detector's learning window.
		var sum float64
		tail := pts[10:]
		for _, p := range tail {
			sum += p.Error
		}
		return sum / float64(len(tail))
	}
	undefended := run(false)
	defended := run(true)
	t.Logf("mean tail error: undefended %.2f m, defended %.2f m", undefended, defended)
	if defended >= undefended {
		t.Fatalf("defense did not improve tracking: defended %.2f ≥ undefended %.2f", defended, undefended)
	}
}

// TestDefenseBatchMatchesSerial extends the LocalizeBatch determinism
// contract to defended trackers: with active suspects the batch engine
// routes weighted lanes through MatchBatchWeighted, and the results
// must stay byte-identical to serial execution for every worker count.
func TestDefenseBatchMatchesSerial(t *testing.T) {
	cfg := defendedConfig(16)
	// A hair-trigger detector: this test pins bit-identity of the
	// weighted batch lanes against serial execution, so what matters is
	// that suspects (and therefore weights) appear at all on a short
	// scattered workload — not that the thresholds are deployment-grade.
	cfg.Defense.MinRounds = 1
	cfg.Defense.SuspectAbove = 0.05
	cfg.Defense.ClearBelow = 0.01
	cfg.Defense.LearnRate = 0.5
	cfg.FaultScript = colludeScript(t)
	cfg.FaultSeed = 9
	root := randx.New(31)

	mkReqs := func() []LocalizeRequest {
		var reqs []LocalizeRequest
		seq := map[string]int{}
		for i := 0; i < 36; i++ {
			id := fmt.Sprintf("t%d", i%4)
			n := seq[id]
			seq[id]++
			pos := geom.Pt(10+float64((i*7)%80), 10+float64((i*13)%80))
			reqs = append(reqs, LocalizeRequest{
				ID: id, Pos: pos,
				Rng: root.Split(id).SplitN("req", n),
			})
		}
		return reqs
	}

	ref, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := mkReqs()
	want := make([]Estimate, len(reqs))
	for i, r := range reqs {
		est, err := ref.LocalizeBatch([]LocalizeRequest{r}, 1)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = est[0]
	}
	// The faulted workload must actually trip the detector, or the
	// weighted batch path was never compared.
	tripped := false
	for _, id := range []string{"t0", "t1", "t2", "t3"} {
		ts, err := ref.target(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(ts.tr.Defense().Suspects()) > 0 {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("no target's defense flagged a suspect; weighted batch lanes untested")
	}

	for _, workers := range []int{1, 4} {
		m, err := NewMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.LocalizeBatch(mkReqs(), workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d request %d: %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestDefenseTrackParallelMatchesSerial pins per-clone defense state:
// every trace clone builds its own Defense, so parallel defended runs
// equal serial ones.
func TestDefenseTrackParallelMatchesSerial(t *testing.T) {
	cfg := defendedConfig(16)
	cfg.FaultScript = colludeScript(t)
	cfg.FaultSeed = 5
	const traces = 4
	ps := make([][]geom.Point, traces)
	for i := range ps {
		ps[i] = byzTrace()
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.TrackParallel(ps, nil, randx.New(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.TrackParallel(ps, nil, randx.New(8), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("trace %d step %d: %+v, want %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
	if math.IsNaN(want[0][0].Error) {
		t.Fatal("NaN error")
	}
}
