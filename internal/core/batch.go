package core

import (
	"time"

	"fttt/internal/field"
	"fttt/internal/match"
	"fttt/internal/obs"
	"fttt/internal/sampling"
	"fttt/internal/vector"
)

// batchPending is one request's mid-round state between the wave's
// pre-match phase (sampling + vector construction, batchBegin) and its
// post-match completion (batchFinish). The central MatchBatch pass sits
// between the two; everything a lane needs to resume exactly where the
// serial code would be after its first matcher call lives here.
type batchPending struct {
	tr     *Tracker
	reqIdx int
	// g is the collected (or externally provided) grouping sampling; v
	// its sampling vector; prev the warm-start face captured before the
	// central match.
	g    *sampling.Group
	v    vector.Vector
	prev *field.Face
	// w is the defense layer's per-pair trust weight vector for the
	// central match (nil without a Defense, or while no node is suspect).
	w []float64
	// recollect is the degradation policy's bounded re-collection hook,
	// built exactly like Localize builds it (nil on the Group path or
	// with the policy disarmed).
	recollect func() *sampling.Group
	// roundSp/roundOwned and cbEnd replay LocalizeGroupRetry's span and
	// callback-tracer bookkeeping; start feeds the latency histogram.
	roundSp      obs.ActiveSpan
	roundOwned   bool
	cbEnd        func()
	instrumented bool
	start        time.Time
}

// batchBegin replays the serial request flow up to (but excluding) the
// first matcher call: request span installation, round span, grouping
// collection with the retry hook, sampling-vector construction, and the
// LocalizeGroupRetry instrumentation preamble. The returned pending
// state plus the lane's (v, prev) pair is everything the central batch
// match needs.
func (t *Tracker) batchBegin(r *LocalizeRequest) batchPending {
	t.SetRequestSpan(r.Span)
	p := batchPending{tr: t}
	if r.Group != nil {
		p.g = r.Group
	} else {
		// The Localize path: the round span opens around the collection,
		// and a degraded round may re-collect from the unconditional
		// "retry" substream after the fault-clock backoff.
		p.roundSp, p.roundOwned = t.beginRound()
		p.g = t.sampleTraced("sample", r.Pos, r.Rng)
		if t.cfg.StarFractionLimit > 0 {
			retry := r.Rng.Split("retry")
			pos := r.Pos
			p.recollect = func() *sampling.Group {
				if t.faults != nil && t.cfg.RetryBackoff > 0 {
					t.faults.Seek(t.faults.Now() + t.cfg.RetryBackoff)
				}
				return t.sampleTraced("resample", pos, retry)
			}
		}
	}
	if t.metrics != nil || t.tracer != nil {
		p.instrumented = true
		if sp, owned := t.beginRound(); owned { // Group path: round opens here
			p.roundSp, p.roundOwned = sp, true
		}
		p.cbEnd = obs.StartSpan(t.cb, "core", "localize")
		p.start = time.Now()
	}
	p.v = t.samplingVector(p.g)
	if t.defense != nil {
		// The serial pre-match defense phase — plausibility gate, then
		// Apply; the matching Observe runs in batchFinish, before the
		// degradation policy's retry can open its own Apply/Observe round.
		t.defense.ObserveGroup(p.g)
		p.w = t.defense.Apply(p.v)
	}
	p.prev = t.prev
	return p
}

// batchFinish consumes the lane's centrally computed match result —
// proven bitwise equal to what t.matcher.Match(p.v, p.prev) returns —
// and replays the rest of the serial request: match span, warm-start
// update, degradation policy (retries run on the tracker's own serial
// matcher), metrics, events, and round close.
func (t *Tracker) batchFinish(p *batchPending, r match.Result) Estimate {
	if t.rec != nil {
		endMatchSpan(t.rec.Start(t.round, "match", "match"), r)
	}
	if t.defense != nil {
		t.defense.Observe(r.Face.Signature)
	}
	est := t.finishDegraded(t.finishMatch(p.v, p.g, r), p.recollect)
	if p.instrumented {
		if m := t.metrics; m != nil {
			m.latency.Observe(time.Since(p.start).Seconds())
			m.localizations.Inc()
			m.visited.Observe(float64(est.Visited))
			m.stars.Add(float64(est.Stars))
			m.flipped.Add(float64(est.Flipped))
			m.missing.Add(float64(p.g.N() - p.g.NumReported()))
			if est.FellBack {
				m.fallbacks.Inc()
			}
			if est.Degraded {
				m.degraded.Inc()
			}
			if est.Retried {
				m.retries.Inc()
			}
			if est.Extrapolated {
				m.extrapolated.Inc()
			}
		}
		if est.FellBack {
			obs.Emit(t.cb, "core", "matcher_fallback", est.Similarity)
		}
		if est.Degraded {
			obs.Emit(t.cb, "core", "degraded", est.StarFraction())
		}
		p.cbEnd()
	}
	if p.roundOwned {
		t.endRound(&p.roundSp, est)
	}
	return est
}
