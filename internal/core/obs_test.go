package core

import (
	"strings"
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/rf"
)

// TestLocalizeTelemetry checks that an attached registry and tracer see
// every localization, and that the exported names match DESIGN.md
// §"Telemetry".
func TestLocalizeTelemetry(t *testing.T) {
	field := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Grid(field, 16)
	reg := obs.NewRegistry()
	var ct obs.CountingTracer
	tr, err := New(Config{
		Field: field, Nodes: dep.Positions(), Model: rf.Default(),
		Epsilon: 1, SamplingTimes: 5, Range: 40, CellSize: 4,
		ReportLoss: 0.3, // force some missing reports
		Obs:        reg, Tracer: &ct,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(3)
	const rounds = 8
	for i := 0; i < rounds; i++ {
		tr.Localize(geom.Pt(30+float64(i), 50), rng.SplitN("loc", i))
	}

	if got := reg.Counter("fttt_core_localizations_total").Value(); got != rounds {
		t.Errorf("localizations counter = %v, want %d", got, rounds)
	}
	if got := reg.Histogram("fttt_core_localize_seconds", nil).Count(); got != rounds {
		t.Errorf("latency histogram count = %d, want %d", got, rounds)
	}
	if got := reg.Histogram("fttt_core_matcher_faces_visited", nil).Count(); got != rounds {
		t.Errorf("visited histogram count = %d, want %d", got, rounds)
	}
	if reg.Histogram("fttt_core_matcher_faces_visited", nil).Sum() <= 0 {
		t.Error("matcher visited no faces?")
	}
	if got := reg.Counter("fttt_core_missing_reports_total").Value(); got <= 0 {
		t.Errorf("missing reports counter = %v, want > 0 under 30%% loss", got)
	}
	if got := ct.Spans("core", "localize"); got != rounds {
		t.Errorf("tracer saw %d localize spans, want %d", got, rounds)
	}

	var b strings.Builder
	if _, err := reg.Snapshot().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE fttt_core_localize_seconds histogram") {
		t.Errorf("snapshot missing core latency histogram:\n%s", b.String())
	}
}

// TestFallbackTelemetry checks the heuristic→exhaustive fallback counter
// via an absurd threshold that makes every match fall back.
func TestFallbackTelemetry(t *testing.T) {
	field := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Grid(field, 9)
	reg := obs.NewRegistry()
	tr, err := New(Config{
		Field: field, Nodes: dep.Positions(), Model: rf.Default(),
		Epsilon: 1, SamplingTimes: 5, Range: 40, CellSize: 4,
		FallbackBelow: 1e18, // nothing matches this well
		Obs:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(4)
	est := tr.Localize(geom.Pt(50, 50), rng)
	if !est.FellBack {
		t.Skip("exact match beat the fallback threshold; nothing to assert")
	}
	if got := reg.Counter("fttt_core_matcher_fallbacks_total").Value(); got < 1 {
		t.Errorf("fallback counter = %v, want ≥ 1", got)
	}
}
