// Package core implements the paper's primary contribution: the
// Fault-Tolerant Target-Tracking (FTTT) strategy of Sec. 4.
//
// A Tracker owns the preprocessed field division (uncertain-boundary
// faces with signature vectors, Sec. 4.3), a matcher (exhaustive ML or
// the heuristic neighbor-link climb of Algorithm 2), and a variant flag
// selecting the Basic ternary sampling vectors (Def. 5) or the Extended
// quantitative ones (Def. 10). Each call to Localize consumes one
// grouping sampling and returns a location estimate; Track runs a whole
// trace, warm-starting every localization from the previous face as the
// paper's consecutive-tracking optimisation prescribes.
package core

import (
	"fmt"
	"math"
	"time"

	"fttt/internal/byz"
	"fttt/internal/faults"
	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/match"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
	"fttt/internal/vector"
)

// Variant selects how sampling vectors are built.
type Variant int

const (
	// Basic uses the ternary node-pair values of Def. 4.
	Basic Variant = iota
	// Extended uses the quantitative pair values of Def. 10 (Sec. 6),
	// which break maximum-similarity ties and smooth the trajectory.
	Extended
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Basic:
		return "basic"
	case Extended:
		return "extended"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config collects the tracker's parameters; see Table 1 for the paper's
// evaluation settings.
type Config struct {
	// Field is the monitor area (Table 1: 100×100 m²).
	Field geom.Rect
	// Nodes are the sensor positions in ID order.
	Nodes []geom.Point
	// Model is the path-loss model (Table 1: β=4, σ_X=6).
	Model rf.Model
	// Epsilon is the sensing resolution ε in dBm (Table 1: 0.5-3).
	Epsilon float64
	// SamplingTimes is k, the number of samples per grouping (Table 1:
	// 3-9).
	SamplingTimes int
	// Range is the sensing range R in metres (Table 1: 40); 0 disables
	// the range limit.
	Range float64
	// ReportLoss is the per-localization probability that an in-range
	// node's report is lost, exercising the fault tolerance of
	// Sec. 4.4(3).
	ReportLoss float64
	// CellSize is the approximate-grid-division cell edge in metres
	// (Sec. 4.3); 0 selects 1 m.
	CellSize float64
	// DivideWorkers is the worker count for the construction-time
	// signature pass (field.DivideWorkers): 0 keeps the serial path,
	// negative selects runtime.NumCPU(), positive is taken literally.
	// The division is byte-identical for every setting — this is purely
	// a construction-latency knob, which the serving layer sets to the
	// CPU count so cold field-cache misses build in parallel.
	DivideWorkers int
	// Divider, when non-nil, supplies the preprocessed division for the
	// given build spec instead of New building a private one — the seam
	// the shared field-index cache (internal/fieldcache) plugs in so
	// every session on one deployment shares a single immutable
	// arrangement. The returned division must have been built from an
	// equivalent spec; NewWithDivision's dimension guard fails fast on
	// gross mismatches.
	Divider func(spec field.Spec) (*field.Division, error)
	// Variant selects Basic or Extended sampling vectors.
	Variant Variant
	// Exhaustive forces the O(n⁴) ergodic matcher instead of the
	// heuristic neighbor-link matcher of Algorithm 2.
	Exhaustive bool
	// FallbackBelow, when positive, makes the heuristic matcher rerun an
	// exhaustive scan whenever its climb converges below this similarity.
	// The paper's Algorithm 2 has no such escape (leave it 0 to be
	// faithful); it exists for the ablation study of DESIGN.md §5.
	FallbackBelow float64
	// CustomC, when positive, overrides the uncertainty constant used for
	// the boundary division. The default (0) is the paper's eq. 3
	// constant; rf.Model.CalibratedC offers a flip-calibrated alternative
	// compared in the BoundaryAblation experiment (DESIGN.md §5).
	CustomC float64
	// TopM, when positive, replaces the argmax estimator with the
	// similarity-weighted mean of the M best faces (match.WeightedTopM) —
	// the estimator ablation of DESIGN.md §5. It implies an exhaustive
	// scan per localization.
	TopM int
	// StarFractionLimit, when positive, arms the degradation policy of
	// DESIGN.md §9: a localization whose sampling vector carries more
	// than this fraction of Star pairs (both nodes silent — the weakest
	// information state of eq. 6) is declared degraded. The tracker then
	// performs one bounded re-collection retry when the caller provides
	// one (LocalizeGroupRetry, or automatically on the sampler path) and,
	// if still degraded, falls back to last-estimate + mobility
	// extrapolation instead of trusting a star-dominated match. 0
	// disables the policy (the paper's always-trust behavior).
	StarFractionLimit float64
	// RetryBackoff is the virtual-time pause before a degraded round's
	// re-collection (seconds); it gives transient faults (burst channels,
	// rebooting motes) a chance to clear. Only meaningful with
	// StarFractionLimit > 0.
	RetryBackoff float64
	// FaultScript, when non-nil, attaches a deterministic fault scheduler
	// (internal/faults) to the tracker's sampler: every tracker clone —
	// including the per-trace clones TrackParallel builds — constructs a
	// fresh scheduler from (script, len(Nodes), FaultSeed), so faulted
	// runs stay byte-identical across worker counts.
	FaultScript *faults.Script
	// FaultSeed roots the fault scheduler's random choices.
	FaultSeed uint64
	// Defense, when non-nil with Enabled set, arms the Byzantine-sensing
	// defense layer (internal/byz, DESIGN.md §15): online per-node trust
	// learned from pair-report consistency, quorum voting over suspect
	// pairs before matching, and a trust-reweighted Algorithm 2 similarity
	// sum. Every tracker clone builds its own Defense from this config, so
	// defended runs stay byte-identical across worker counts; while no
	// node is suspect the matcher runs its unmodified path, keeping a
	// defended honest run byte-identical to a vanilla one. Incompatible
	// with TopM (the weighted-top-M estimator has no trust-weighted batch
	// equivalent).
	Defense *byz.Config
	// Obs, when non-nil, receives the tracker's metrics (localizations,
	// faces visited, fallbacks, flip/star/missing-report counts, localize
	// latency — DESIGN.md §"Telemetry"). Nil disables all bookkeeping.
	Obs *obs.Registry
	// Tracer, when non-nil, receives a span per localization and an event
	// per matcher fallback. Nil disables tracing (the fast path).
	Tracer obs.Tracer
}

// UncertaintyC returns the uncertainty constant the configuration
// selects: CustomC when set, otherwise the paper's eq. 3 constant.
func (c Config) UncertaintyC() float64 {
	if c.CustomC > 0 {
		return c.CustomC
	}
	return c.Model.UncertaintyC(c.Epsilon)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Nodes) < 2 {
		return fmt.Errorf("core: need at least 2 nodes, got %d", len(c.Nodes))
	}
	if c.SamplingTimes < 1 {
		return fmt.Errorf("core: sampling times k must be ≥ 1, got %d", c.SamplingTimes)
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("core: sensing resolution ε must be ≥ 0, got %v", c.Epsilon)
	}
	if c.Field.Width() <= 0 || c.Field.Height() <= 0 {
		return fmt.Errorf("core: degenerate field %v", c.Field)
	}
	if c.Defense != nil {
		if err := c.Defense.Validate(); err != nil {
			return err
		}
		if c.Defense.Enabled && c.TopM > 0 {
			return fmt.Errorf("core: Defense is incompatible with the TopM estimator (no trust-weighted WeightedTopM)")
		}
	}
	return c.Model.Validate()
}

// Tracker is a ready-to-run FTTT instance.
//
// A Tracker is single-goroutine: it owns mutable warm-start state (the
// previous face) and its matcher's search scratch. The preprocessed
// Division is immutable and may be shared across any number of trackers —
// use NewWithDivision to clone cheap trackers over one division,
// TrackParallel to fan independent traces across a worker pool, or
// MultiTracker for concurrent multi-target serving.
type Tracker struct {
	cfg     Config
	div     *field.Division
	matcher match.Matcher
	sampler *sampling.Sampler
	prev    *field.Face
	faults  *faults.Scheduler
	defense *byz.Defense
	// lastPos/prevPos/histN hold the estimate history the degradation
	// fallback extrapolates from (DESIGN.md §9).
	lastPos geom.Point
	prevPos geom.Point
	histN   int
	metrics *trackerMetrics
	tracer  obs.Tracer
	// cb is tracer with any Recorder stripped: the flat Span/Event
	// callbacks go here so the recorder — which captures the rich
	// structured spans below — does not record every round twice.
	cb obs.Tracer
	// rec is the structured trace sink extracted from cfg.Tracer
	// (obs.RecorderOf); nil disables all structured tracing.
	rec *obs.Recorder
	// reqSpan is the serving layer's per-request trace context: the next
	// round span parents under it (SetRequestSpan).
	reqSpan obs.SpanRef
	// round is the currently open localization round span; children
	// (sampling, match) and degradation events parent under it.
	round obs.SpanRef
}

// trackerMetrics caches the core metric handles. They are resolved once
// at construction so the localization hot path only touches atomics; a
// nil *trackerMetrics (no registry attached) skips everything.
type trackerMetrics struct {
	localizations *obs.Counter
	visited       *obs.Histogram
	fallbacks     *obs.Counter
	flipped       *obs.Counter
	stars         *obs.Counter
	missing       *obs.Counter
	degraded      *obs.Counter
	retries       *obs.Counter
	extrapolated  *obs.Counter
	latency       *obs.Histogram
}

func newTrackerMetrics(r *obs.Registry) *trackerMetrics {
	return &trackerMetrics{
		localizations: r.Counter("fttt_core_localizations_total"),
		visited:       r.Histogram("fttt_core_matcher_faces_visited", obs.ExpBuckets(1, 2, 14)),
		fallbacks:     r.Counter("fttt_core_matcher_fallbacks_total"),
		flipped:       r.Counter("fttt_core_flipped_pairs_total"),
		stars:         r.Counter("fttt_core_star_pairs_total"),
		missing:       r.Counter("fttt_core_missing_reports_total"),
		degraded:      r.Counter("fttt_core_degraded_total"),
		retries:       r.Counter("fttt_core_retries_total"),
		extrapolated:  r.Counter("fttt_core_extrapolated_total"),
		latency:       r.Histogram("fttt_core_localize_seconds", obs.ExpBuckets(1e-5, 2, 16)),
	}
}

// New preprocesses the field division and returns a Tracker. The
// division comes from cfg.Divider when one is set (the shared
// field-index cache path); otherwise New builds a private one with
// cfg.DivideWorkers signature-pass workers (0 = serial).
func New(cfg Config) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec := cfg.DivisionSpec()
	var div *field.Division
	var err error
	if cfg.Divider != nil {
		div, err = cfg.Divider(spec)
	} else {
		div, err = spec.Divide()
	}
	if err != nil {
		return nil, err
	}
	return NewWithDivision(cfg, div)
}

// DivisionSpec resolves the configuration into the field-division build
// spec: the content-addressable identity (field rect, nodes,
// uncertainty constant, cell size) plus the worker knob. Everything the
// division depends on flows through here — it is the cache key
// derivation of DESIGN.md §13.
func (c Config) DivisionSpec() field.Spec {
	cell := c.CellSize
	if cell == 0 {
		cell = 1
	}
	workers := c.DivideWorkers
	if workers == 0 {
		workers = 1 // serial default; field.Spec treats ≤0 as NumCPU
	}
	return field.Spec{
		Field:    c.Field,
		Nodes:    c.Nodes,
		C:        c.UncertaintyC(),
		CellSize: cell,
		Workers:  workers,
	}
}

// NewWithDivision builds a Tracker over an existing field division —
// several trackers (e.g. the Basic and Extended variants in a comparison
// run) can share one preprocessed division, which dominates construction
// cost. The division must have been built for cfg's nodes and uncertainty
// constant. Full equivalence is not re-checked (that would cost a
// re-division), but a cheap structural guard rejects gross mismatches: a
// division with no faces, or one whose signature dimension disagrees
// with the C(n,2) node pairs cfg.Nodes implies — the failure mode of
// wiring a cached or loaded division to the wrong deployment.
func NewWithDivision(cfg Config, div *field.Division) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if div == nil || len(div.Faces) == 0 {
		return nil, fmt.Errorf("core: division is empty")
	}
	if got, want := div.Faces[0].Signature.Dim(), vector.NumPairs(len(cfg.Nodes)); got != want {
		return nil, fmt.Errorf("core: division signature dimension %d does not match %d nodes (want %d pairs) — division built for a different deployment",
			got, len(cfg.Nodes), want)
	}
	var m match.Matcher
	switch {
	case cfg.TopM > 0:
		m = &match.WeightedTopM{Div: div, M: cfg.TopM}
	case cfg.Exhaustive:
		m = &match.Exhaustive{Div: div}
	default:
		m = &match.Heuristic{
			Div:           div,
			Incremental:   true, // identical results, ~3× faster per hop
			Fallback:      cfg.FallbackBelow > 0,
			FallbackBelow: cfg.FallbackBelow,
		}
	}
	t := &Tracker{
		cfg:     cfg,
		div:     div,
		matcher: m,
		sampler: &sampling.Sampler{
			Model:      cfg.Model,
			Nodes:      cfg.Nodes,
			Range:      cfg.Range,
			ReportLoss: cfg.ReportLoss,
			Epsilon:    cfg.Epsilon,
		},
		tracer: cfg.Tracer,
		cb:     obs.WithoutRecorder(cfg.Tracer),
		rec:    obs.RecorderOf(cfg.Tracer),
	}
	t.sampler.Trace = t.rec
	if cfg.FaultScript != nil {
		t.faults = faults.New(*cfg.FaultScript, len(cfg.Nodes), cfg.FaultSeed)
		// The collude behavior fabricates decoy-consistent RSS from the
		// deployment geometry; benign behaviors ignore it.
		t.faults.SetGeometry(cfg.Nodes, cfg.Model)
		t.sampler.Faults = t.faults
	}
	if cfg.Defense != nil && cfg.Defense.Enabled {
		t.defense = byz.New(*cfg.Defense, len(cfg.Nodes), cfg.SamplingTimes, cfg.Obs)
		if cfg.Range > 0 && cfg.SamplingTimes >= 2 {
			// Arm the range-plausibility gate from the deployment's RF
			// model: Def. 2 admits a report only within Range, so a claimed
			// mean a full σ_X below the range-edge level asserts an
			// out-of-range target; and the spread floor is a small fraction
			// of the fast-fading σ no honest k-instant sample can collapse
			// under (P ≈ 3·10⁻⁵ for k=5) — jointly, an honest report
			// essentially never trips the gate, preserving byte-identity.
			if fast := cfg.Model.SigmaFast(); fast > 0 {
				t.defense.SetRangeGate(
					cfg.Model.MeanRSS(cfg.Range)-cfg.Model.SigmaX, fast/16)
			}
		}
	}
	if cfg.Obs != nil {
		t.metrics = newTrackerMetrics(cfg.Obs)
	}
	return t, nil
}

// Defense exposes the tracker's Byzantine defense state (nil when no
// DefenseConfig is armed); read-only accessors like Suspects and
// NodeTrust are safe between localizations.
func (t *Tracker) Defense() *byz.Defense { return t.defense }

// FaultScheduler exposes the tracker's fault scheduler (nil when no
// FaultScript is configured); callers driving Localize directly can
// Seek it to their own virtual time.
func (t *Tracker) FaultScheduler() *faults.Scheduler { return t.faults }

// Division exposes the preprocessed field division (read-only).
func (t *Tracker) Division() *field.Division { return t.div }

// Config returns the tracker's configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Reset forgets the previous face and the estimate history so the next
// localization cold-starts.
func (t *Tracker) Reset() {
	t.prev = nil
	t.histN = 0
}

// Estimate is the outcome of one localization.
type Estimate struct {
	// Pos is the estimated target position.
	Pos geom.Point
	// FaceID is the matched face.
	FaceID int
	// Similarity is the matching similarity (Def. 7); +Inf for an exact
	// signature match.
	Similarity float64
	// Reported is |N_r|, how many nodes contributed to this localization.
	Reported int
	// Stars counts the Star components in the sampling vector (pairs of
	// silent nodes).
	Stars int
	// Flipped counts the sampling-vector components recording an observed
	// order flip — the target sat in those pairs' uncertain areas.
	Flipped int
	// Visited is the number of faces the matcher evaluated.
	Visited int
	// FellBack reports that the heuristic matcher rescanned exhaustively
	// (only possible with Config.FallbackBelow > 0).
	FellBack bool
	// Degraded reports that the final sampling vector's star fraction
	// exceeded Config.StarFractionLimit — too many silent node pairs to
	// trust the match (DESIGN.md §9).
	Degraded bool
	// Retried reports that a degraded collection triggered the bounded
	// re-collection retry (whether or not the retry recovered).
	Retried bool
	// Extrapolated reports that the position came from the last-estimate
	// + mobility extrapolation fallback, not from the matcher.
	Extrapolated bool
	// pairsTotal is the sampling vector's dimension, kept for
	// Confidence.
	pairsTotal int
}

// StarFraction returns the fraction of Star pairs in the sampling
// vector — the degradation signal Config.StarFractionLimit thresholds.
func (e Estimate) StarFraction() float64 {
	if e.pairsTotal <= 0 {
		return 0
	}
	return float64(e.Stars) / float64(e.pairsTotal)
}

// Confidence scores the estimate in [0, 1]: the product of a similarity
// term (how well the sampling vector matched the face; distance d maps
// to 1/(1+d)) and a participation term (what fraction of pairs had at
// least one reporting node). Low-confidence estimates are the ones an
// application should treat as "target possibly lost" — see the
// faulttolerance example.
func (e Estimate) Confidence() float64 {
	sim := 1.0
	if !math.IsInf(e.Similarity, 1) && e.Similarity > 0 {
		d := 1 / e.Similarity
		sim = 1 / (1 + d)
	} else if e.Similarity <= 0 {
		sim = 0
	}
	pairs := e.Stars + e.participating()
	part := 1.0
	if pairs > 0 {
		part = float64(e.participating()) / float64(pairs)
	}
	return sim * part
}

// participating returns the number of non-star pairs.
func (e Estimate) participating() int {
	if e.pairsTotal <= 0 {
		return 0
	}
	return e.pairsTotal - e.Stars
}

// Localize performs one grouping sampling at the true target position pos
// and matches it to a face. rng drives the sampling noise and losses;
// pass an independent substream per localization for reproducibility.
// With StarFractionLimit > 0 a degraded collection is retried once from
// the "retry" substream (split unconditionally, so the retry never
// perturbs the primary draws).
func (t *Tracker) Localize(pos geom.Point, rng *randx.Stream) Estimate {
	// Open the round span before sampling so the collection nests inside
	// it; LocalizeGroupRetry's beginRound then sees the round already
	// open and leaves ownership here.
	sp, owned := t.beginRound()
	g := t.sampleTraced("sample", pos, rng)
	var recollect func() *sampling.Group
	if t.cfg.StarFractionLimit > 0 {
		retry := rng.Split("retry")
		recollect = func() *sampling.Group {
			if t.faults != nil && t.cfg.RetryBackoff > 0 {
				// The backoff lets transient faults clear before the
				// re-collection — advance the fault clock past it.
				t.faults.Seek(t.faults.Now() + t.cfg.RetryBackoff)
			}
			return t.sampleTraced("resample", pos, retry)
		}
	}
	est := t.LocalizeGroupRetry(g, recollect)
	if owned {
		t.endRound(&sp, est)
	}
	return est
}

// beginRound opens the structured round span under the current request
// context, unless tracing is off or a round is already open (Localize
// opens it around the collection; LocalizeGroupRetry opens it for
// externally collected groups). The caller owning the span (owned ==
// true) must close it with endRound.
func (t *Tracker) beginRound() (sp obs.ActiveSpan, owned bool) {
	if t.rec == nil || t.round.Valid() {
		return obs.ActiveSpan{}, false
	}
	sp = t.rec.Start(t.reqSpan, "core", "localize")
	t.round = sp.Ref()
	return sp, true
}

// endRound annotates the round span with the estimate's outcome and
// publishes it.
func (t *Tracker) endRound(sp *obs.ActiveSpan, est Estimate) {
	sp.Attr("reported", float64(est.Reported))
	sp.Attr("star_fraction", est.StarFraction())
	sp.Attr("face", float64(est.FaceID))
	sp.Flag("degraded", est.Degraded)
	sp.Flag("retried", est.Retried)
	sp.Flag("extrapolated", est.Extrapolated)
	sp.End()
	t.round = obs.SpanRef{}
}

// SetRequestSpan installs the trace context the next rounds parent
// under — the serving layer's per-request span. Pass the zero SpanRef to
// clear. Like every Tracker method it is single-goroutine.
func (t *Tracker) SetRequestSpan(ref obs.SpanRef) { t.reqSpan = ref }

// sampleTraced collects one grouping sampling, bracketed by a
// "sampling" child span when tracing is on. The sampler's fault events
// (report drops, RSS bias) parent under the collection span.
func (t *Tracker) sampleTraced(name string, pos geom.Point, rng *randx.Stream) *sampling.Group {
	if t.rec == nil {
		return t.sampler.Sample(pos, t.cfg.SamplingTimes, rng)
	}
	sp := t.rec.Start(t.round, "sampling", name)
	t.sampler.TraceSpan = sp.Ref()
	g := t.sampler.Sample(pos, t.cfg.SamplingTimes, rng)
	t.sampler.TraceSpan = obs.SpanRef{}
	sp.Attr("reported", float64(g.NumReported()))
	sp.End()
	return g
}

// LocalizeGroup matches an externally collected grouping sampling — the
// entry point used by the wsnnet substrate, whose reports arrive through
// the simulated network rather than directly from the sampler. When a
// registry or tracer is attached it also records the localization's
// telemetry; with neither the cost is two nil checks.
func (t *Tracker) LocalizeGroup(g *sampling.Group) Estimate {
	return t.LocalizeGroupRetry(g, nil)
}

// LocalizeGroupRetry is LocalizeGroup with the degradation policy's
// re-collection hook: when the sampling vector's star fraction exceeds
// Config.StarFractionLimit and recollect is non-nil, it is invoked once
// (after the caller's backoff, if any) to collect a replacement group;
// the better of the two collections wins. A round still degraded after
// the retry falls back to last-estimate + mobility extrapolation.
// recollect may be nil (no retry possible — e.g. the reports are a
// recorded trace) and may return nil (the re-collection itself failed).
func (t *Tracker) LocalizeGroupRetry(g *sampling.Group, recollect func() *sampling.Group) Estimate {
	if t.metrics == nil && t.tracer == nil {
		return t.localizeDegraded(g, recollect)
	}
	sp, owned := t.beginRound()
	end := obs.StartSpan(t.cb, "core", "localize")
	start := time.Now()
	est := t.localizeDegraded(g, recollect)
	if m := t.metrics; m != nil {
		m.latency.Observe(time.Since(start).Seconds())
		m.localizations.Inc()
		m.visited.Observe(float64(est.Visited))
		m.stars.Add(float64(est.Stars))
		m.flipped.Add(float64(est.Flipped))
		m.missing.Add(float64(g.N() - g.NumReported()))
		if est.FellBack {
			m.fallbacks.Inc()
		}
		if est.Degraded {
			m.degraded.Inc()
		}
		if est.Retried {
			m.retries.Inc()
		}
		if est.Extrapolated {
			m.extrapolated.Inc()
		}
	}
	if est.FellBack {
		obs.Emit(t.cb, "core", "matcher_fallback", est.Similarity)
	}
	if est.Degraded {
		obs.Emit(t.cb, "core", "degraded", est.StarFraction())
	}
	end()
	if owned {
		t.endRound(&sp, est)
	}
	return est
}

// localizeDegraded runs the match plus the degradation policy of
// DESIGN.md §9 and maintains the estimate history the extrapolation
// fallback consumes. With StarFractionLimit == 0 it is the plain match
// plus two point assignments — the hot path stays allocation-free.
func (t *Tracker) localizeDegraded(g *sampling.Group, recollect func() *sampling.Group) Estimate {
	return t.finishDegraded(t.localizeGroup(g), recollect)
}

// finishDegraded is localizeDegraded after the first match: the
// degradation policy over an already computed estimate. Split out so the
// batch engine (multi.go) can feed the first match through the central
// SoA batch matcher and still replay the serial retry/extrapolation path
// verbatim.
func (t *Tracker) finishDegraded(est Estimate, recollect func() *sampling.Group) Estimate {
	lim := t.cfg.StarFractionLimit
	if lim <= 0 || est.StarFraction() <= lim {
		t.pushHistory(est.Pos)
		return est
	}
	est.Degraded = true
	t.rec.RecordEvent(t.round, "core", "degraded", est.StarFraction())
	face := t.prev
	if recollect != nil {
		est.Retried = true
		t.rec.RecordEvent(t.round, "core", "retry", est.StarFraction())
		if g2 := recollect(); g2 != nil {
			est2 := t.localizeGroup(g2)
			if est2.StarFraction() < est.StarFraction() {
				// The retry heard more: adopt it (its face is already
				// the warm start).
				est2.Degraded = est2.StarFraction() > lim
				est2.Retried = true
				est = est2
				face = t.prev
			} else {
				t.prev = face // keep the first match's warm start
			}
		}
	}
	if est.Degraded {
		// The match is star-dominated noise: predict from the estimate
		// history instead. With two points, dead-reckon one step of the
		// observed velocity (uniform localization period); with one,
		// hold; with none, the cold-start match is all there is.
		switch {
		case t.histN >= 2:
			est.Pos = t.cfg.Field.Clamp(geom.Pt(
				2*t.lastPos.X-t.prevPos.X,
				2*t.lastPos.Y-t.prevPos.Y,
			))
			est.Extrapolated = true
		case t.histN == 1:
			est.Pos = t.lastPos
			est.Extrapolated = true
		}
		if est.Extrapolated {
			t.rec.RecordEvent(t.round, "core", "extrapolated", float64(t.histN))
			// Warm-start the next round where we believe the target is,
			// not at the noise-matched face.
			if f := t.div.FaceAt(est.Pos); f != nil {
				t.prev = f
				est.FaceID = f.ID
			}
		}
	}
	t.pushHistory(est.Pos)
	return est
}

// pushHistory records a final position estimate for the extrapolation
// fallback.
func (t *Tracker) pushHistory(pos geom.Point) {
	t.prevPos = t.lastPos
	t.lastPos = pos
	if t.histN < 2 {
		t.histN++
	}
}

func (t *Tracker) localizeGroup(g *sampling.Group) Estimate {
	v := t.samplingVector(g)
	var w []float64
	if t.defense != nil {
		// Pre-match defense: run the range-plausibility gate over the raw
		// reports, then snapshot them, quorum-correct or star out suspect
		// pairs in place, and emit trust weights (nil while no node is
		// suspect — the unmodified, byte-identical matcher path).
		t.defense.ObserveGroup(g)
		w = t.defense.Apply(v)
	}
	var r match.Result
	if t.rec == nil {
		r = t.matchWeighted(v, t.prev, w)
	} else {
		msp := t.rec.Start(t.round, "match", "match")
		r = t.matchWeighted(v, t.prev, w)
		endMatchSpan(msp, r)
	}
	if t.defense != nil {
		// Post-match learning: charge inversion evidence from what the
		// nodes reported against the face the round settled on.
		t.defense.Observe(r.Face.Signature)
	}
	return t.finishMatch(v, g, r)
}

// matchWeighted dispatches one match with optional per-pair trust
// weights. A nil w — the always case without a Defense, and the
// honest-fleet fast path with one — runs the plain Matcher interface;
// weighted matches go to the concrete matcher's MatchWeighted (Validate
// rejects configurations whose matcher has none).
func (t *Tracker) matchWeighted(v vector.Vector, prev *field.Face, w []float64) match.Result {
	if w == nil {
		return t.matcher.Match(v, prev)
	}
	switch m := t.matcher.(type) {
	case *match.Heuristic:
		return m.MatchWeighted(v, prev, w)
	case *match.Exhaustive:
		return m.MatchWeighted(v, prev, w)
	default:
		return t.matcher.Match(v, prev)
	}
}

// samplingVector builds the group's sampling vector for the configured
// variant.
func (t *Tracker) samplingVector(g *sampling.Group) vector.Vector {
	if t.cfg.Variant == Extended {
		return g.ExtendedVector()
	}
	return g.Vector()
}

// endMatchSpan annotates a match span with its result and publishes it.
func endMatchSpan(msp obs.ActiveSpan, r match.Result) {
	msp.Attr("visited", float64(r.Visited))
	if math.IsInf(r.Similarity, 1) {
		msp.Flag("exact", true)
	} else {
		msp.Attr("similarity", r.Similarity)
	}
	msp.Flag("fellback", r.FellBack)
	msp.End()
}

// finishMatch folds a match result into the tracker's warm-start state
// and the round's Estimate.
func (t *Tracker) finishMatch(v vector.Vector, g *sampling.Group, r match.Result) Estimate {
	t.prev = r.Face
	return Estimate{
		Pos:        r.Estimate,
		FaceID:     r.Face.ID,
		Similarity: r.Similarity,
		Reported:   g.NumReported(),
		Stars:      v.CountStars(),
		Flipped:    v.CountFlipped(),
		Visited:    r.Visited,
		FellBack:   r.FellBack,
		pairsTotal: v.Dim(),
	}
}

// TrackedPoint pairs a true target position with its estimate.
type TrackedPoint struct {
	T        float64
	True     geom.Point
	Estimate Estimate
	// Error is the geographic distance between estimate and truth — the
	// paper's tracking error metric (Sec. 7).
	Error float64
}

// Track localizes every point of the true trace in order, warm-starting
// each localization from the previous face. times[i] is paired with
// trace[i]; pass nil times to use the index as time.
func (t *Tracker) Track(trace []geom.Point, times []float64, rng *randx.Stream) []TrackedPoint {
	out := make([]TrackedPoint, len(trace))
	for i, pos := range trace {
		tm := float64(i)
		if times != nil {
			tm = times[i]
		}
		if t.faults != nil {
			t.faults.Seek(tm)
		}
		est := t.Localize(pos, rng.SplitN("loc", i))
		out[i] = TrackedPoint{
			T:        tm,
			True:     pos,
			Estimate: est,
			Error:    est.Pos.Dist(pos),
		}
	}
	return out
}

// TrackParallel tracks several independent traces concurrently over this
// tracker's shared division, fanning the traces across a pool of workers
// (≤ 0 selects runtime.NumCPU(); 1 is serial). Trace i runs on a fresh
// tracker cloned over the shared division (its own warm-start state and
// matcher scratch) with the substream rng.SplitN("trace", i), so the
// output is identical for every worker count — and identical to tracking
// each trace serially on a fresh tracker with the same substream.
// times[i] pairs with traces[i] like Track's times; times may be nil, as
// may individual entries.
func (t *Tracker) TrackParallel(traces [][]geom.Point, times [][]float64, rng *randx.Stream, workers int) ([][]TrackedPoint, error) {
	if times != nil && len(times) != len(traces) {
		return nil, fmt.Errorf("core: %d traces but %d times entries", len(traces), len(times))
	}
	clones := make([]*Tracker, len(traces))
	streams := make([]*randx.Stream, len(traces))
	for i := range traces {
		if times != nil && times[i] != nil && len(times[i]) != len(traces[i]) {
			return nil, fmt.Errorf("core: trace %d has %d points but %d times", i, len(traces[i]), len(times[i]))
		}
		tr, err := NewWithDivision(t.cfg, t.div)
		if err != nil {
			return nil, err
		}
		clones[i] = tr
		streams[i] = rng.SplitN("trace", i)
	}
	out := make([][]TrackedPoint, len(traces))
	fanOut(len(traces), workers, func(i int) {
		var tm []float64
		if times != nil {
			tm = times[i]
		}
		out[i] = clones[i].Track(traces[i], tm, streams[i])
	})
	return out, nil
}

// Errors extracts the per-point tracking errors from a tracked trace.
func Errors(pts []TrackedPoint) []float64 {
	errs := make([]float64, len(pts))
	for i, p := range pts {
		errs[i] = p.Error
	}
	return errs
}

// RequiredSamplingTimes returns the minimum grouping-sampling count k
// satisfying the Sec. 5.1 bound: the probability of capturing every
// expected flipped pair among nPairs pairs exceeds lambda when
//
//	k > 1 − log2(1 − λ^(1/(N−1))).
//
// For nPairs ≤ 1 the bound degenerates and the function returns 1.
func RequiredSamplingTimes(nPairs int, lambda float64) int {
	if nPairs <= 1 || lambda <= 0 {
		return 1
	}
	if lambda >= 1 {
		panic("core: λ must be < 1")
	}
	root := math.Pow(lambda, 1/float64(nPairs-1))
	k := 1 - math.Log2(1-root)
	ik := int(k) + 1 // strictly greater
	if ik < 1 {
		ik = 1
	}
	return ik
}

// FlipCaptureProbability returns the Sec. 5.1 probability that a grouping
// sampling of k instants captures all of nPairs expected flipped pairs:
// (1 − (1/2)^(k−1))^(N−1) per Appendix I's closed form as used in the
// body of the paper. For nPairs ≤ 1 the exponent N−1 is ≤ 0 and the
// probability is 1 — there is at most one expected flipped pair, which
// the formula's conditioning already accounts for.
func FlipCaptureProbability(nPairs, k int) float64 {
	if nPairs <= 1 {
		return 1
	}
	f := math.Pow(0.5, float64(k-1))
	return math.Pow(1-f, float64(nPairs-1))
}
