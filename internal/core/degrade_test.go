package core

import (
	"math"
	"reflect"
	"testing"

	"fttt/internal/faults"
	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/sampling"
)

func mustScript(t *testing.T, text string) *faults.Script {
	t.Helper()
	s, err := faults.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// allStarGroup is a collection in which nobody reported — every pair is
// Star, the maximally degraded input of eq. 6.
func allStarGroup(n, k int) *sampling.Group {
	g := &sampling.Group{
		RSS:      make([][]float64, k),
		Reported: make([]bool, n),
		Epsilon:  1,
	}
	for t := range g.RSS {
		g.RSS[t] = make([]float64, n)
	}
	return g
}

func TestStarFraction(t *testing.T) {
	if got := (Estimate{}).StarFraction(); got != 0 {
		t.Errorf("zero estimate star fraction = %v", got)
	}
	if got := (Estimate{Stars: 3, pairsTotal: 6}).StarFraction(); got != 0.5 {
		t.Errorf("star fraction = %v, want 0.5", got)
	}
}

// TestDegradedFlagOnStarVector checks an all-star collection trips the
// policy and a healthy one does not.
func TestDegradedFlagOnStarVector(t *testing.T) {
	cfg := defaultConfig(16)
	cfg.StarFractionLimit = 0.5
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := tr.LocalizeGroup(allStarGroup(16, cfg.SamplingTimes))
	if !est.Degraded {
		t.Error("all-star vector not flagged degraded")
	}
	if est.Retried || est.Extrapolated {
		t.Errorf("no recollect and no history, yet Retried=%v Extrapolated=%v",
			est.Retried, est.Extrapolated)
	}
	good := tr.Localize(geom.Pt(50, 50), randx.New(1))
	if good.Degraded {
		t.Errorf("healthy collection flagged degraded (stars %d/%d)", good.Stars, good.pairsTotal)
	}
	// Policy off: the same star vector passes through untouched.
	tr2, err := New(defaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	plain := tr2.LocalizeGroup(allStarGroup(16, 5))
	if plain.Degraded || plain.Retried || plain.Extrapolated {
		t.Errorf("StarFractionLimit=0 ran the policy: %+v", plain)
	}
}

// TestRetryRecovers feeds a degraded group whose re-collection succeeds:
// the retry's estimate must win and clear the degraded flag.
func TestRetryRecovers(t *testing.T) {
	cfg := defaultConfig(16)
	cfg.StarFractionLimit = 0.5
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := geom.Pt(50, 50)
	calls := 0
	est := tr.LocalizeGroupRetry(allStarGroup(16, cfg.SamplingTimes), func() *sampling.Group {
		calls++
		return tr.sampler.Sample(target, cfg.SamplingTimes, randx.New(9))
	})
	if calls != 1 {
		t.Fatalf("recollect called %d times, want exactly 1 (bounded retry)", calls)
	}
	if !est.Retried {
		t.Error("Retried not set")
	}
	if est.Degraded || est.Extrapolated {
		t.Errorf("successful retry left Degraded=%v Extrapolated=%v", est.Degraded, est.Extrapolated)
	}
	if est.Reported == 0 {
		t.Error("retry's reports were discarded")
	}
}

// TestRetryStillDegradedFallsBack drives two healthy rounds to build
// history, then an unrecoverable blackout: the estimate must come from
// mobility extrapolation, inside the field, with no NaNs.
func TestRetryStillDegradedFallsBack(t *testing.T) {
	cfg := defaultConfig(16)
	cfg.StarFractionLimit = 0.5
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(4)
	e1 := tr.Localize(geom.Pt(40, 50), rng.SplitN("loc", 0))
	e2 := tr.Localize(geom.Pt(45, 50), rng.SplitN("loc", 1))
	star := allStarGroup(16, cfg.SamplingTimes)
	est := tr.LocalizeGroupRetry(star, func() *sampling.Group { return allStarGroup(16, cfg.SamplingTimes) })
	if !est.Degraded || !est.Retried || !est.Extrapolated {
		t.Fatalf("blackout round: Degraded=%v Retried=%v Extrapolated=%v, want all true",
			est.Degraded, est.Retried, est.Extrapolated)
	}
	want := geom.Pt(2*e2.Pos.X-e1.Pos.X, 2*e2.Pos.Y-e1.Pos.Y)
	want = cfg.Field.Clamp(want)
	if est.Pos != want {
		t.Errorf("extrapolated to %v, want %v (from %v, %v)", est.Pos, want, e1.Pos, e2.Pos)
	}
	if !cfg.Field.Contains(est.Pos) {
		t.Errorf("extrapolation left the field: %v", est.Pos)
	}
	// A second blackout keeps extrapolating along the (now predicted)
	// velocity and a nil recollect result must not crash.
	est2 := tr.LocalizeGroupRetry(allStarGroup(16, cfg.SamplingTimes), func() *sampling.Group { return nil })
	if !est2.Extrapolated || !cfg.Field.Contains(est2.Pos) {
		t.Errorf("second blackout: Extrapolated=%v Pos=%v", est2.Extrapolated, est2.Pos)
	}
	// Reset clears the history: a fresh blackout has nothing to hold.
	tr.Reset()
	est3 := tr.LocalizeGroup(allStarGroup(16, cfg.SamplingTimes))
	if est3.Extrapolated {
		t.Error("extrapolated from pre-Reset history")
	}
}

// TestHoldWithSingleHistoryPoint covers the one-estimate history case:
// the fallback holds the last position instead of dead-reckoning.
func TestHoldWithSingleHistoryPoint(t *testing.T) {
	cfg := defaultConfig(16)
	cfg.StarFractionLimit = 0.5
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1 := tr.Localize(geom.Pt(50, 50), randx.New(2))
	est := tr.LocalizeGroup(allStarGroup(16, cfg.SamplingTimes))
	if !est.Extrapolated || est.Pos != e1.Pos {
		t.Errorf("hold: Extrapolated=%v Pos=%v, want hold at %v", est.Extrapolated, est.Pos, e1.Pos)
	}
}

// TestLocalizeRetriesUnderFaultScript exercises the sampler-path retry
// end to end: a full blackout that recovers within the backoff window
// means the re-collection hears the field again.
func TestLocalizeRetriesUnderFaultScript(t *testing.T) {
	cfg := defaultConfig(16)
	cfg.StarFractionLimit = 0.5
	cfg.RetryBackoff = 10
	cfg.FaultScript = mustScript(t, "crash at=0 frac=1 recover=5")
	cfg.FaultSeed = 3
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.FaultScheduler() == nil {
		t.Fatal("no scheduler attached")
	}
	est := tr.Localize(geom.Pt(50, 50), randx.New(8))
	if !est.Retried {
		t.Fatal("blackout did not trigger the retry")
	}
	if est.Degraded {
		t.Errorf("retry after recovery still degraded: %d reported", est.Reported)
	}
	if est.Reported == 0 {
		t.Error("no reports after recovery")
	}
}

// TestConfidenceOnDegradedEstimates pins Confidence over the new
// degraded/extrapolated outcomes: always in [0,1], never NaN, and an
// all-star round scores 0.
func TestConfidenceOnDegradedEstimates(t *testing.T) {
	cfg := defaultConfig(16)
	cfg.StarFractionLimit = 0.5
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.Localize(geom.Pt(40, 50), randx.New(1))
	tr.Localize(geom.Pt(45, 50), randx.New(2))
	est := tr.LocalizeGroup(allStarGroup(16, cfg.SamplingTimes))
	if !est.Extrapolated {
		t.Fatal("expected the extrapolation fallback")
	}
	c := est.Confidence()
	if math.IsNaN(c) || c < 0 || c > 1 {
		t.Errorf("degraded confidence %v outside [0,1]", c)
	}
	if c != 0 {
		t.Errorf("all-star round confidence = %v, want 0", c)
	}
}

// fullFaultScript is a scenario exercising every fault class at once.
const fullFaultScript = `
crash at=3 frac=0.3 recover=12
drain at=0 factor=4 frac=0.2
burst pgb=0.1 pbg=0.5 loss=0.95
drift sigma=0.05
skew max=0.01
`

// TestDeterminismUnderFaults is the ISSUE's byte-identity acceptance
// check: the same fault script + seed must reproduce identical
// TrackedPoint streams for every TrackParallel worker count.
func TestDeterminismUnderFaults(t *testing.T) {
	cfg := defaultConfig(25)
	cfg.StarFractionLimit = 0.6
	cfg.RetryBackoff = 0.5
	cfg.ReportLoss = 0.1
	cfg.FaultScript = mustScript(t, fullFaultScript)
	cfg.FaultSeed = 17
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traces := [][]geom.Point{makeTrace(10, 10, 30), makeTrace(80, 20, 30), makeTrace(50, 90, 30)}
	var want [][]TrackedPoint
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := tr.TrackParallel(traces, nil, randx.New(5), workers)
		if err != nil {
			t.Fatal(err)
		}
		for ti, pts := range got {
			for pi, p := range pts {
				if math.IsNaN(p.Estimate.Pos.X) || math.IsNaN(p.Estimate.Pos.Y) || math.IsNaN(p.Error) {
					t.Fatalf("workers=%d trace %d point %d: NaN estimate", workers, ti, pi)
				}
			}
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from workers=1 under faults", workers)
		}
	}
	// And identical to a from-scratch tracker with the same config.
	tr2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := tr2.TrackParallel(traces, nil, randx.New(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Error("fresh tracker with the same (script, seed) diverged")
	}
}

// makeTrace is a simple straight-line walk inside the field.
func makeTrace(x, y float64, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = fieldRect.Clamp(geom.Pt(x+float64(i), y+0.5*float64(i)))
	}
	return pts
}
