package core

import (
	"math"
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/stats"
	"fttt/internal/vector"
)

var fieldRect = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

func defaultConfig(n int) Config {
	d := deploy.Grid(fieldRect, n)
	return Config{
		Field:         fieldRect,
		Nodes:         d.Positions(),
		Model:         rf.Default(),
		Epsilon:       1,
		SamplingTimes: 5,
		Range:         40,
		CellSize:      2,
	}
}

func TestConfigValidate(t *testing.T) {
	good := defaultConfig(4)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.Nodes = bad.Nodes[:1]
	if err := bad.Validate(); err == nil {
		t.Error("1 node should be rejected")
	}
	bad = good
	bad.SamplingTimes = 0
	if err := bad.Validate(); err == nil {
		t.Error("k=0 should be rejected")
	}
	bad = good
	bad.Epsilon = -1
	if err := bad.Validate(); err == nil {
		t.Error("ε<0 should be rejected")
	}
	bad = good
	bad.Field = geom.Rect{}
	if err := bad.Validate(); err == nil {
		t.Error("degenerate field should be rejected")
	}
	bad = good
	bad.Model.Beta = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad model should be rejected")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := defaultConfig(4)
	cfg.SamplingTimes = 0
	if _, err := New(cfg); err == nil {
		t.Error("New should propagate validation errors")
	}
}

func TestLocalizeReasonableError(t *testing.T) {
	// A single localization should land within a few tens of metres —
	// generous bound, but it catches gross matching errors.
	tr, err := New(defaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(1)
	var errs []float64
	for trial := 0; trial < 50; trial++ {
		pos := geom.Pt(rng.Uniform(10, 90), rng.Uniform(10, 90))
		est := tr.Localize(pos, rng.SplitN("t", trial))
		errs = append(errs, est.Pos.Dist(pos))
	}
	if mean := stats.Mean(errs); mean > 25 {
		t.Errorf("mean one-shot error %v m too large", mean)
	}
}

func TestLocalizeNoiselessIsAccurate(t *testing.T) {
	// With no noise and fine resolution the estimate should be very close
	// (bounded by face size).
	cfg := defaultConfig(16)
	cfg.Model.SigmaX = 0
	cfg.Epsilon = 0.1
	cfg.CellSize = 1
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(2)
	var errs []float64
	for trial := 0; trial < 30; trial++ {
		pos := geom.Pt(rng.Uniform(20, 80), rng.Uniform(20, 80))
		est := tr.Localize(pos, rng.SplitN("t", trial))
		errs = append(errs, est.Pos.Dist(pos))
	}
	if mean := stats.Mean(errs); mean > 10 {
		t.Errorf("noiseless mean error %v m too large", mean)
	}
}

func TestTrackProducesAllPoints(t *testing.T) {
	tr, _ := New(defaultConfig(9))
	m := mobility.RandomWaypoint(fieldRect, 1, 5, 10, randx.New(3))
	trace := mobility.Sample(m, 10, 2)
	pts := make([]geom.Point, len(trace))
	times := make([]float64, len(trace))
	for i, tp := range trace {
		pts[i] = tp.Pos
		times[i] = tp.T
	}
	tracked := tr.Track(pts, times, randx.New(4))
	if len(tracked) != len(pts) {
		t.Fatalf("tracked %d points, want %d", len(tracked), len(pts))
	}
	for i, tp := range tracked {
		if tp.T != times[i] {
			t.Fatalf("time mismatch at %d", i)
		}
		if tp.Error != tp.Estimate.Pos.Dist(tp.True) {
			t.Fatalf("error field inconsistent at %d", i)
		}
		if !fieldRect.Contains(tp.Estimate.Pos) {
			t.Fatalf("estimate %v outside field", tp.Estimate.Pos)
		}
	}
}

func TestTrackNilTimesUsesIndex(t *testing.T) {
	tr, _ := New(defaultConfig(4))
	pts := []geom.Point{geom.Pt(30, 30), geom.Pt(40, 40)}
	tracked := tr.Track(pts, nil, randx.New(5))
	if tracked[0].T != 0 || tracked[1].T != 1 {
		t.Errorf("nil times should index: %v %v", tracked[0].T, tracked[1].T)
	}
}

func TestTrackReproducible(t *testing.T) {
	pts := []geom.Point{geom.Pt(30, 30), geom.Pt(35, 35), geom.Pt(40, 40)}
	run := func() []TrackedPoint {
		tr, _ := New(defaultConfig(9))
		return tr.Track(pts, nil, randx.New(6))
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Estimate.Pos != b[i].Estimate.Pos {
			t.Fatalf("tracking not reproducible at point %d", i)
		}
	}
}

func TestExtendedVariantRuns(t *testing.T) {
	cfg := defaultConfig(9)
	cfg.Variant = Extended
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := tr.Localize(geom.Pt(50, 50), randx.New(7))
	if !fieldRect.Contains(est.Pos) {
		t.Errorf("estimate %v outside field", est.Pos)
	}
}

func TestExhaustiveMatcherOption(t *testing.T) {
	cfg := defaultConfig(4)
	cfg.Exhaustive = true
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := tr.Localize(geom.Pt(50, 50), randx.New(8))
	if est.Visited != tr.Division().NumFaces() {
		t.Errorf("exhaustive visited %d faces, want all %d", est.Visited, tr.Division().NumFaces())
	}
}

func TestFaultToleranceKeepsTracking(t *testing.T) {
	// Half the reports are lost; the tracker must still return in-field
	// estimates with bounded error.
	cfg := defaultConfig(16)
	cfg.ReportLoss = 0.5
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(9)
	var errs []float64
	stars := 0
	for trial := 0; trial < 50; trial++ {
		pos := geom.Pt(rng.Uniform(10, 90), rng.Uniform(10, 90))
		est := tr.Localize(pos, rng.SplitN("t", trial))
		if !fieldRect.Contains(est.Pos) {
			t.Fatalf("estimate %v outside field", est.Pos)
		}
		errs = append(errs, est.Pos.Dist(pos))
		stars += est.Stars
	}
	if stars == 0 {
		t.Error("expected some Star pairs with 50% loss")
	}
	if mean := stats.Mean(errs); mean > 40 {
		t.Errorf("faulty mean error %v m too large", mean)
	}
}

func TestResetForgetsWarmStart(t *testing.T) {
	tr, _ := New(defaultConfig(9))
	tr.Localize(geom.Pt(20, 20), randx.New(10))
	if tr.prev == nil {
		t.Fatal("prev should be set after a localization")
	}
	tr.Reset()
	if tr.prev != nil {
		t.Error("Reset should clear prev")
	}
}

func TestConfidenceProperties(t *testing.T) {
	tr, _ := New(defaultConfig(16))
	rng := randx.New(21)
	for trial := 0; trial < 30; trial++ {
		pos := geom.Pt(rng.Uniform(10, 90), rng.Uniform(10, 90))
		est := tr.Localize(pos, rng.SplitN("t", trial))
		c := est.Confidence()
		if c < 0 || c > 1 || math.IsNaN(c) {
			t.Fatalf("confidence %v out of [0,1]", c)
		}
	}
}

func TestConfidenceDropsWithLoss(t *testing.T) {
	// Heavy report loss (many stars) should lower the mean confidence.
	mean := func(loss float64) float64 {
		cfg := defaultConfig(16)
		cfg.ReportLoss = loss
		tr, _ := New(cfg)
		rng := randx.New(22)
		var sum float64
		for trial := 0; trial < 40; trial++ {
			pos := geom.Pt(rng.Uniform(10, 90), rng.Uniform(10, 90))
			sum += tr.Localize(pos, rng.SplitN("t", trial)).Confidence()
		}
		return sum / 40
	}
	if lossy, clean := mean(0.7), mean(0); lossy >= clean {
		t.Errorf("confidence under 70%% loss (%.3f) should be below clean (%.3f)", lossy, clean)
	}
}

func TestVariantString(t *testing.T) {
	if Basic.String() != "basic" || Extended.String() != "extended" {
		t.Error("Variant strings wrong")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant should still print")
	}
}

func TestRequiredSamplingTimesPaperExample(t *testing.T) {
	// Sec. 5.1: N = C(20,2) = 190 pairs... the paper states "20 sensor
	// nodes... k = 16 can satisfy" λ=0.99. With N=190 the bound gives
	// 1 - log2(1 - 0.99^(1/189)) ≈ 15.2 → k = 16.
	n := vector.NumPairs(20)
	if n != 190 {
		t.Fatalf("pairs = %d", n)
	}
	if got := RequiredSamplingTimes(n, 0.99); got != 16 {
		t.Errorf("RequiredSamplingTimes(190, 0.99) = %d, want 16", got)
	}
}

func TestRequiredSamplingTimesMonotone(t *testing.T) {
	// More pairs or higher confidence need at least as many samples.
	prev := 0
	for _, n := range []int{2, 10, 50, 200, 1000} {
		k := RequiredSamplingTimes(n, 0.95)
		if k < prev {
			t.Errorf("k not monotone in N at %d: %d < %d", n, k, prev)
		}
		prev = k
	}
	if RequiredSamplingTimes(100, 0.999) < RequiredSamplingTimes(100, 0.9) {
		t.Error("k should grow with λ")
	}
}

func TestRequiredSamplingTimesDegenerate(t *testing.T) {
	if got := RequiredSamplingTimes(1, 0.99); got != 1 {
		t.Errorf("single pair should need k=1, got %d", got)
	}
	if got := RequiredSamplingTimes(0, 0.99); got != 1 {
		t.Errorf("no pairs should need k=1, got %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("λ=1 should panic")
		}
	}()
	RequiredSamplingTimes(10, 1)
}

func TestFlipCaptureProbability(t *testing.T) {
	// Bound consistency: k from RequiredSamplingTimes achieves ≥ λ.
	for _, n := range []int{5, 50, 190} {
		for _, lambda := range []float64{0.9, 0.99} {
			k := RequiredSamplingTimes(n, lambda)
			if p := FlipCaptureProbability(n, k); p < lambda {
				t.Errorf("N=%d λ=%v: k=%d gives p=%v < λ", n, lambda, k, p)
			}
			if p := FlipCaptureProbability(n, k-1); p >= lambda && k > 1 {
				t.Errorf("N=%d λ=%v: k-1=%d already gives p=%v ≥ λ; bound not tight", n, lambda, k-1, p)
			}
		}
	}
	if got := FlipCaptureProbability(0, 5); got != 1 {
		t.Errorf("no pairs capture prob = %v, want 1", got)
	}
	// A single pair has no *other* pair whose flip could be missed, so
	// the capture probability is exactly 1 for every k — the old
	// exponent clamp (max(nPairs-1, 1)) wrongly returned 1-(1/2)^(k-1).
	for _, k := range []int{1, 2, 5, 20} {
		if got := FlipCaptureProbability(1, k); got != 1 {
			t.Errorf("one pair, k=%d: capture prob = %v, want exactly 1", k, got)
		}
	}
}

func TestFlipCaptureProbabilityMonteCarlo(t *testing.T) {
	// Appendix I by simulation: each of N pairs independently produces a
	// uniform ±1 outcome per instant; the pair's flip is captured iff both
	// signs appear among k instants. Compare the empirical all-captured
	// probability with (1-(1/2)^(k-1))^(N-1)... the paper's closed form
	// uses exponent N-1 in the body (N in the appendix); our Monte Carlo
	// discriminates: independence gives exactly exponent N.
	rng := randx.New(42)
	N, k := 6, 5
	const trials = 200000
	captured := 0
	for trial := 0; trial < trials; trial++ {
		all := true
		for p := 0; p < N; p++ {
			up, down := false, false
			for s := 0; s < k; s++ {
				if rng.Bernoulli(0.5) {
					up = true
				} else {
					down = true
				}
			}
			if !(up && down) {
				all = false
			}
		}
		if all {
			captured++
		}
	}
	got := float64(captured) / trials
	f := math.Pow(0.5, float64(k-1))
	exact := math.Pow(1-f, float64(N))
	if math.Abs(got-exact) > 0.005 {
		t.Errorf("Monte Carlo %v vs independent-pairs exact %v", got, exact)
	}
	// The paper's body formula with N-1 is an upper bound of the exact
	// independent probability.
	body := FlipCaptureProbability(N, k)
	if body < exact {
		t.Errorf("body formula %v should upper-bound exact %v", body, exact)
	}
}

func TestHeuristicCheaperThanExhaustiveOnTraces(t *testing.T) {
	// Consecutive tracking with the heuristic matcher must evaluate far
	// fewer faces than exhaustive matching (Sec. 4.4's O(n²) vs O(n⁴)).
	mkTrace := func() []geom.Point {
		m := mobility.RandomWaypoint(fieldRect, 1, 5, 20, randx.New(11))
		trace := mobility.Sample(m, 20, 2)
		pts := make([]geom.Point, len(trace))
		for i, tp := range trace {
			pts[i] = tp.Pos
		}
		return pts
	}
	pts := mkTrace()

	cfgH := defaultConfig(16)
	trH, _ := New(cfgH)
	cfgE := defaultConfig(16)
	cfgE.Exhaustive = true
	trE, _ := New(cfgE)

	sum := func(tps []TrackedPoint) int {
		total := 0
		for _, tp := range tps {
			total += tp.Estimate.Visited
		}
		return total
	}
	visH := sum(trH.Track(pts, nil, randx.New(12)))
	visE := sum(trE.Track(pts, nil, randx.New(12)))
	if visH*2 > visE {
		t.Errorf("heuristic visited %d faces vs exhaustive %d; expected <half", visH, visE)
	}
}
