package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"fttt/internal/geom"
	"fttt/internal/obs"
	"fttt/internal/randx"
)

// TestTraceGoldenUnderFaults is the determinism acceptance check for the
// flight recorder: attaching a Recorder to a faulted tracking run must
// leave the estimate stream byte-identical to the untraced run, because
// recording consumes no randomness and never re-orders work. It also
// asserts the recording actually captured the round structure and the
// fault events it exists to expose.
func TestTraceGoldenUnderFaults(t *testing.T) {
	mkCfg := func() Config {
		cfg := defaultConfig(25)
		cfg.StarFractionLimit = 0.6
		cfg.RetryBackoff = 0.5
		cfg.ReportLoss = 0.1
		cfg.FaultScript = mustScript(t, fullFaultScript)
		cfg.FaultSeed = 17
		return cfg
	}
	traces := [][]geom.Point{makeTrace(10, 10, 30), makeTrace(80, 20, 30), makeTrace(50, 90, 30)}

	plain, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.TrackParallel(traces, nil, randx.New(5), 2)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder(16384)
	cfg := mkCfg()
	cfg.Tracer = rec
	traced, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := traced.TrackParallel(traces, nil, randx.New(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recorder attached: estimates diverged from the untraced run")
	}

	recs := rec.Records()
	if len(recs) == 0 {
		t.Fatal("recorder captured nothing")
	}
	rounds, faultEvents, attrs := 0, 0, 0
	for _, r := range recs {
		switch {
		case r.Kind == obs.KindSpan && r.Component == "core" && r.Name == "localize":
			rounds++
			for _, a := range r.Attrs {
				if a.Key == "reported" || a.Key == "star_fraction" {
					attrs++
				}
			}
		case r.Kind == obs.KindEvent && r.Component == "faults":
			faultEvents++
		}
	}
	if wantRounds := 3 * 30; rounds != wantRounds {
		t.Errorf("recorded %d core/localize round spans, want %d", rounds, wantRounds)
	}
	if faultEvents == 0 {
		t.Error("fault script ran but no faults/* events were recorded")
	}
	if attrs == 0 {
		t.Error("round spans carry no reported/star_fraction attributes")
	}
}

// TestTraceRecorderRaceUnderBatch hammers one shared Recorder from
// concurrent LocalizeBatch rounds (distinct targets fan across workers,
// shared targets contend on the per-target lock) while other goroutines
// snapshot Records() mid-flight. Run under -race by the raceserve CI
// job; correctness assertions are minimal — the instrumented interleaving
// is the point.
func TestTraceRecorderRaceUnderBatch(t *testing.T) {
	rec := obs.NewRecorder(512)
	cfg := defaultConfig(16)
	cfg.Tracer = rec
	m, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := randx.New(31)
	const (
		writers = 4
		batches = 6
		perReq  = 8
	)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				reqs := make([]LocalizeRequest, perReq)
				for i := range reqs {
					reqs[i] = LocalizeRequest{
						ID:  fmt.Sprintf("t%d", i%3),
						Pos: geom.Pt(10+float64(i*9%80), 10+float64(i*5%80)),
						Rng: root.Split(fmt.Sprintf("g%d/b%d/r%d", g, b, i)),
					}
				}
				if _, err := m.LocalizeBatch(reqs, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				recs := rec.Records()
				for i := 1; i < len(recs); i++ {
					if recs[i].Seq <= recs[i-1].Seq {
						t.Error("Records() snapshot not strictly Seq-ordered")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()
	if rec.Appended() == 0 {
		t.Fatal("no records appended")
	}
	// Every batch opened one localize_batch span.
	var batchSpans int
	for _, r := range rec.Records() {
		if r.Kind == obs.KindSpan && r.Name == "localize_batch" {
			batchSpans++
		}
	}
	if batchSpans == 0 {
		t.Error("no localize_batch spans survived in the ring")
	}
}

// TestTraceRoundSpanTree pins the per-round causal tree shape one
// serving request produces: serve-request span → core/localize round →
// sampling + match children, with the batch span linking the request.
func TestTraceRoundSpanTree(t *testing.T) {
	rec := obs.NewRecorder(0)
	cfg := defaultConfig(16)
	cfg.Tracer = rec
	m, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqSpan := rec.Start(obs.SpanRef{}, "serve", "request")
	reqRef := reqSpan.Ref()
	_, err = m.LocalizeBatch([]LocalizeRequest{{
		ID: "t0", Pos: geom.Pt(40, 60), Rng: randx.New(7), Span: reqRef,
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	reqSpan.End()

	var round, batch obs.Record
	for _, r := range rec.Records() {
		if r.Kind != obs.KindSpan {
			continue
		}
		switch {
		case r.Component == "core" && r.Name == "localize":
			round = r
		case r.Component == "core" && r.Name == "localize_batch":
			batch = r
		}
	}
	if round.Span == 0 || batch.Span == 0 {
		t.Fatal("missing round or batch span")
	}
	if round.Trace != reqRef.Trace || round.Parent != reqRef.Span {
		t.Errorf("round span not parented under the request: trace %d parent %d, want trace %d parent %d",
			round.Trace, round.Parent, reqRef.Trace, reqRef.Span)
	}
	var sampled, matched, linked bool
	for _, r := range rec.Records() {
		switch {
		case r.Kind == obs.KindSpan && r.Component == "sampling" && r.Parent == round.Span:
			sampled = true
		case r.Kind == obs.KindSpan && r.Component == "match" && r.Parent == round.Span:
			matched = true
		case r.Kind == obs.KindLink && r.Span == batch.Span && r.LinkSpan == reqRef.Span:
			linked = true
		}
	}
	if !sampled || !matched {
		t.Errorf("round children: sampling=%v match=%v, want both", sampled, matched)
	}
	if !linked {
		t.Error("batch span does not link the request span")
	}
}
