package core

import (
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/sampling"
	"fttt/internal/stats"
)

func TestMultiTrackerTracksTwoTargets(t *testing.T) {
	cfg := defaultConfig(16)
	m, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes, Range: cfg.Range, Epsilon: cfg.Epsilon}
	rng := randx.New(1)

	// Two targets in opposite corners walking inward.
	var errA, errB []float64
	for i := 0; i < 30; i++ {
		f := float64(i)
		posA := geom.Pt(20+f, 20+f)
		posB := geom.Pt(80-f, 80-f)
		gA := s.Sample(posA, cfg.SamplingTimes, rng.SplitN("a", i))
		gB := s.Sample(posB, cfg.SamplingTimes, rng.SplitN("b", i))
		eA, err := m.LocalizeGroup("alpha", gA)
		if err != nil {
			t.Fatal(err)
		}
		eB, err := m.LocalizeGroup("bravo", gB)
		if err != nil {
			t.Fatal(err)
		}
		errA = append(errA, eA.Pos.Dist(posA))
		errB = append(errB, eB.Pos.Dist(posB))
	}
	if got := m.Targets(); len(got) != 2 || got[0] != "alpha" || got[1] != "bravo" {
		t.Fatalf("Targets = %v", got)
	}
	if stats.Mean(errA) > 20 || stats.Mean(errB) > 20 {
		t.Errorf("multi-target errors too large: %.2f / %.2f",
			stats.Mean(errA), stats.Mean(errB))
	}
}

func TestMultiTrackerIndependentWarmStarts(t *testing.T) {
	// Target B's localizations must not perturb target A's estimates: A
	// alone and A alongside B give identical results.
	cfg := defaultConfig(9)
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes, Range: cfg.Range, Epsilon: cfg.Epsilon}

	run := func(withB bool) []geom.Point {
		m, err := NewMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := randx.New(2)
		var out []geom.Point
		for i := 0; i < 15; i++ {
			posA := geom.Pt(30+float64(i), 40)
			gA := s.Sample(posA, cfg.SamplingTimes, rng.SplitN("a", i))
			if withB {
				gB := s.Sample(geom.Pt(70, 60), cfg.SamplingTimes, rng.SplitN("b", i))
				if _, err := m.LocalizeGroup("b", gB); err != nil {
					t.Fatal(err)
				}
			}
			eA, err := m.LocalizeGroup("a", gA)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, eA.Pos)
		}
		return out
	}
	alone, together := run(false), run(true)
	for i := range alone {
		if alone[i] != together[i] {
			t.Fatalf("target A perturbed by target B at step %d", i)
		}
	}
}

func TestMultiTrackerForget(t *testing.T) {
	cfg := defaultConfig(9)
	m, _ := NewMulti(cfg)
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes, Range: cfg.Range}
	g := s.Sample(geom.Pt(50, 50), cfg.SamplingTimes, randx.New(3))
	if _, err := m.LocalizeGroup("x", g); err != nil {
		t.Fatal(err)
	}
	m.Forget("x")
	if len(m.Targets()) != 0 {
		t.Errorf("Targets after Forget = %v", m.Targets())
	}
}

func TestMultiTrackerEmptyID(t *testing.T) {
	cfg := defaultConfig(9)
	m, _ := NewMulti(cfg)
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes}
	g := s.Sample(geom.Pt(50, 50), cfg.SamplingTimes, randx.New(4))
	if _, err := m.LocalizeGroup("", g); err == nil {
		t.Error("empty target ID should fail")
	}
}

func TestMultiTrackerSharesDivision(t *testing.T) {
	cfg := defaultConfig(9)
	m, _ := NewMulti(cfg)
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes}
	for _, id := range []string{"a", "b", "c"} {
		g := s.Sample(geom.Pt(50, 50), cfg.SamplingTimes, randx.New(5))
		if _, err := m.LocalizeGroup(id, g); err != nil {
			t.Fatal(err)
		}
	}
	// All per-target trackers point at the same division.
	div := m.Division()
	for id, tr := range m.trackers {
		if tr.Division() != div {
			t.Errorf("target %s has its own division", id)
		}
	}
}
