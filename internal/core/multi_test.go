package core

import (
	"fmt"
	"sync"
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/sampling"
	"fttt/internal/stats"
)

func TestMultiTrackerTracksTwoTargets(t *testing.T) {
	cfg := defaultConfig(16)
	m, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes, Range: cfg.Range, Epsilon: cfg.Epsilon}
	rng := randx.New(1)

	// Two targets in opposite corners walking inward.
	var errA, errB []float64
	for i := 0; i < 30; i++ {
		f := float64(i)
		posA := geom.Pt(20+f, 20+f)
		posB := geom.Pt(80-f, 80-f)
		gA := s.Sample(posA, cfg.SamplingTimes, rng.SplitN("a", i))
		gB := s.Sample(posB, cfg.SamplingTimes, rng.SplitN("b", i))
		eA, err := m.LocalizeGroup("alpha", gA)
		if err != nil {
			t.Fatal(err)
		}
		eB, err := m.LocalizeGroup("bravo", gB)
		if err != nil {
			t.Fatal(err)
		}
		errA = append(errA, eA.Pos.Dist(posA))
		errB = append(errB, eB.Pos.Dist(posB))
	}
	if got := m.Targets(); len(got) != 2 || got[0] != "alpha" || got[1] != "bravo" {
		t.Fatalf("Targets = %v", got)
	}
	if stats.Mean(errA) > 20 || stats.Mean(errB) > 20 {
		t.Errorf("multi-target errors too large: %.2f / %.2f",
			stats.Mean(errA), stats.Mean(errB))
	}
}

func TestMultiTrackerIndependentWarmStarts(t *testing.T) {
	// Target B's localizations must not perturb target A's estimates: A
	// alone and A alongside B give identical results.
	cfg := defaultConfig(9)
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes, Range: cfg.Range, Epsilon: cfg.Epsilon}

	run := func(withB bool) []geom.Point {
		m, err := NewMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := randx.New(2)
		var out []geom.Point
		for i := 0; i < 15; i++ {
			posA := geom.Pt(30+float64(i), 40)
			gA := s.Sample(posA, cfg.SamplingTimes, rng.SplitN("a", i))
			if withB {
				gB := s.Sample(geom.Pt(70, 60), cfg.SamplingTimes, rng.SplitN("b", i))
				if _, err := m.LocalizeGroup("b", gB); err != nil {
					t.Fatal(err)
				}
			}
			eA, err := m.LocalizeGroup("a", gA)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, eA.Pos)
		}
		return out
	}
	alone, together := run(false), run(true)
	for i := range alone {
		if alone[i] != together[i] {
			t.Fatalf("target A perturbed by target B at step %d", i)
		}
	}
}

func TestMultiTrackerForget(t *testing.T) {
	cfg := defaultConfig(9)
	m, _ := NewMulti(cfg)
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes, Range: cfg.Range}
	g := s.Sample(geom.Pt(50, 50), cfg.SamplingTimes, randx.New(3))
	if _, err := m.LocalizeGroup("x", g); err != nil {
		t.Fatal(err)
	}
	m.Forget("x")
	if len(m.Targets()) != 0 {
		t.Errorf("Targets after Forget = %v", m.Targets())
	}
}

func TestMultiTrackerEmptyID(t *testing.T) {
	cfg := defaultConfig(9)
	m, _ := NewMulti(cfg)
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes}
	g := s.Sample(geom.Pt(50, 50), cfg.SamplingTimes, randx.New(4))
	if _, err := m.LocalizeGroup("", g); err == nil {
		t.Error("empty target ID should fail")
	}
}

func TestMultiTrackerSharesDivision(t *testing.T) {
	cfg := defaultConfig(9)
	m, _ := NewMulti(cfg)
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes}
	for _, id := range []string{"a", "b", "c"} {
		g := s.Sample(geom.Pt(50, 50), cfg.SamplingTimes, randx.New(5))
		if _, err := m.LocalizeGroup(id, g); err != nil {
			t.Fatal(err)
		}
	}
	// All per-target trackers point at the same division.
	div := m.Division()
	for id, ts := range m.targets {
		if ts.tr.Division() != div {
			t.Errorf("target %s has its own division", id)
		}
	}
}

func TestMultiTrackerConcurrentDistinctTargets(t *testing.T) {
	// Goroutines localizing distinct targets concurrently (run under
	// -race) must produce exactly the estimates each target gets when
	// localized alone on a fresh MultiTracker.
	cfg := defaultConfig(16)
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes, Range: cfg.Range, Epsilon: cfg.Epsilon}
	const targets, rounds = 8, 20

	pos := func(g, i int) geom.Point {
		return geom.Pt(10+float64(g*10+i)/2, 90-float64(g*8+i)/2)
	}
	reference := func(g int) []geom.Point {
		m, err := NewMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("t%d", g)
		out := make([]geom.Point, rounds)
		for i := 0; i < rounds; i++ {
			grp := s.Sample(pos(g, i), cfg.SamplingTimes, randx.New(uint64(g)).SplitN("r", i))
			e, err := m.LocalizeGroup(id, grp)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = e.Pos
		}
		return out
	}
	want := make([][]geom.Point, targets)
	for g := 0; g < targets; g++ {
		want[g] = reference(g)
	}

	m, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, targets)
	for g := 0; g < targets; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("t%d", g)
			for i := 0; i < rounds; i++ {
				grp := s.Sample(pos(g, i), cfg.SamplingTimes, randx.New(uint64(g)).SplitN("r", i))
				e, err := m.LocalizeGroup(id, grp)
				if err != nil {
					errs <- err
					return
				}
				if e.Pos != want[g][i] {
					errs <- fmt.Errorf("target %d round %d: %v, want %v (cross-target interference)", g, i, e.Pos, want[g][i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(m.Targets()); got != targets {
		t.Errorf("%d targets registered, want %d", got, targets)
	}
}

func TestMultiTrackerLocalizeAllParallelMatchesSerial(t *testing.T) {
	// LocalizeAll draws each target's noise from rng.Split(ID), so the
	// batch result is identical for every worker count.
	cfg := defaultConfig(16)
	const targets, rounds = 6, 10

	run := func(workers int) []map[string]Estimate {
		m, err := NewMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		root := randx.New(99)
		var out []map[string]Estimate
		for i := 0; i < rounds; i++ {
			batch := make([]TargetPosition, targets)
			for g := range batch {
				batch[g] = TargetPosition{
					ID:  fmt.Sprintf("target-%d", g),
					Pos: geom.Pt(15+float64(g*12+i), 20+float64(g*9+i)/2),
				}
			}
			ests, err := m.LocalizeAll(batch, root.SplitN("round", i), workers)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, ests)
		}
		return out
	}

	serial := run(1)
	for _, workers := range []int{2, 4, 8, 0} {
		par := run(workers)
		for i := range serial {
			if len(par[i]) != len(serial[i]) {
				t.Fatalf("workers=%d round %d: %d estimates, want %d", workers, i, len(par[i]), len(serial[i]))
			}
			for id, e := range serial[i] {
				if pe := par[i][id]; pe.Pos != e.Pos || pe.FaceID != e.FaceID {
					t.Fatalf("workers=%d round %d target %s: %v/%v, want %v/%v",
						workers, i, id, pe.Pos, pe.FaceID, e.Pos, e.FaceID)
				}
			}
		}
	}
}

func TestMultiTrackerLocalizeGroupsParallelMatchesSerial(t *testing.T) {
	cfg := defaultConfig(9)
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes, Range: cfg.Range, Epsilon: cfg.Epsilon}
	const targets = 5

	run := func(workers int) map[string]Estimate {
		m, err := NewMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var agg map[string]Estimate
		for i := 0; i < 8; i++ {
			batch := make([]TargetGroup, targets)
			for g := range batch {
				batch[g] = TargetGroup{
					ID: fmt.Sprintf("g%d", g),
					Group: s.Sample(geom.Pt(20+float64(g*14), 30+float64(i*4)),
						cfg.SamplingTimes, randx.New(7).SplitN("grp", i*targets+g)),
				}
			}
			agg, err = m.LocalizeGroups(batch, workers)
			if err != nil {
				t.Fatal(err)
			}
		}
		return agg
	}

	serial := run(1)
	for _, workers := range []int{3, 0} {
		par := run(workers)
		for id, e := range serial {
			if pe := par[id]; pe.Pos != e.Pos {
				t.Fatalf("workers=%d target %s: %v, want %v", workers, id, pe.Pos, e.Pos)
			}
		}
	}
}

func TestMultiTrackerLocalizeAllEmptyIDError(t *testing.T) {
	cfg := defaultConfig(9)
	m, _ := NewMulti(cfg)
	_, err := m.LocalizeAll([]TargetPosition{{ID: "", Pos: geom.Pt(50, 50)}}, randx.New(1), 1)
	if err == nil {
		t.Error("empty target ID in batch should fail")
	}
}

func TestTrackParallelMatchesSerial(t *testing.T) {
	// TrackParallel over one shared division must reproduce, for every
	// worker count, exactly what per-trace clones produce serially with
	// the same substreams.
	cfg := defaultConfig(16)
	const traces, steps = 5, 12

	mkTraces := func() ([][]geom.Point, [][]float64) {
		ps := make([][]geom.Point, traces)
		ts := make([][]float64, traces)
		for i := range ps {
			ps[i] = make([]geom.Point, steps)
			ts[i] = make([]float64, steps)
			for j := range ps[i] {
				ps[i][j] = geom.Pt(10+float64(i*15+j), 15+float64(i*10+j))
				ts[i][j] = float64(j) * 0.5
			}
		}
		return ps, ts
	}
	ps, tms := mkTraces()

	base, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	root := randx.New(17)
	want := make([][]TrackedPoint, traces)
	for i := range ps {
		clone, err := NewWithDivision(cfg, base.Division())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = clone.Track(ps[i], tms[i], root.SplitN("trace", i))
	}

	for _, workers := range []int{1, 2, 4, 0} {
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.TrackParallel(ps, tms, randx.New(17), workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d trace %d: %d points, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j].Estimate != want[i][j].Estimate {
					t.Fatalf("workers=%d trace %d step %d: %v, want %v",
						workers, i, j, got[i][j].Estimate, want[i][j].Estimate)
				}
			}
		}
	}

	// times validation: outer length and per-trace length mismatches.
	tr, _ := New(cfg)
	if _, err := tr.TrackParallel(ps, tms[:traces-1], randx.New(1), 1); err == nil {
		t.Error("outer times length mismatch should fail")
	}
	bad := make([][]float64, traces)
	copy(bad, tms)
	bad[2] = bad[2][:steps-1]
	if _, err := tr.TrackParallel(ps, bad, randx.New(1), 1); err == nil {
		t.Error("per-trace times length mismatch should fail")
	}
	if _, err := tr.TrackParallel(ps, nil, randx.New(1), 1); err != nil {
		t.Errorf("nil times should be accepted: %v", err)
	}
}

func TestLocalizeBatchMatchesSerial(t *testing.T) {
	// The serving determinism contract: LocalizeBatch must be
	// byte-identical to executing the requests one at a time in slice
	// order, for every worker count — including batches where one target
	// appears several times (per-target FIFO) and mixed Pos/Group
	// requests.
	cfg := defaultConfig(16)
	s := &sampling.Sampler{Model: cfg.Model, Nodes: cfg.Nodes, Range: cfg.Range, Epsilon: cfg.Epsilon}
	root := randx.New(23)

	mkReqs := func() []LocalizeRequest {
		var reqs []LocalizeRequest
		seq := map[string]int{}
		for i := 0; i < 40; i++ {
			id := fmt.Sprintf("t%d", i%5)
			n := seq[id]
			seq[id]++
			pos := geom.Pt(10+float64((i*7)%80), 10+float64((i*13)%80))
			if i%4 == 3 {
				// Report-ingestion path: an externally collected group.
				g := s.Sample(pos, cfg.SamplingTimes, root.Split(id).SplitN("grp", n))
				reqs = append(reqs, LocalizeRequest{ID: id, Group: g})
			} else {
				reqs = append(reqs, LocalizeRequest{
					ID: id, Pos: pos,
					Rng: root.Split(id).SplitN("req", n),
				})
			}
		}
		return reqs
	}

	// Serial reference: a fresh MultiTracker, one request at a time.
	ref, err := NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := mkReqs()
	want := make([]Estimate, len(reqs))
	for i, r := range reqs {
		est, err := ref.LocalizeBatch([]LocalizeRequest{r}, 1)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = est[0]
	}

	for _, workers := range []int{1, 2, 4, 0} {
		m, err := NewMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.LocalizeBatch(mkReqs(), workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d request %d: %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}

	// Error cases: empty target ID, and a request with neither Group nor
	// stream.
	m, _ := NewMulti(cfg)
	if _, err := m.LocalizeBatch([]LocalizeRequest{{ID: "", Rng: root}}, 1); err == nil {
		t.Error("empty target ID should fail")
	}
	if _, err := m.LocalizeBatch([]LocalizeRequest{{ID: "x"}}, 1); err == nil {
		t.Error("request with neither Group nor Rng should fail")
	}
}
