package core

import (
	"math"
	"testing"
)

// TestConfidenceEdgeCases pins the degenerate inputs Confidence must
// survive: empty vectors, all-star vectors, exact matches and
// non-positive similarities.
func TestConfidenceEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		est  Estimate
		want float64
	}{
		{
			// No sampling vector at all (zero-value Estimate): the zero
			// similarity reads as "matched nothing", so confidence is 0
			// even though the participation term degenerates to 1.
			name: "zero value",
			est:  Estimate{},
			want: 0,
		},
		{
			// Every pair silent: zero participating pairs must yield zero
			// confidence, not a division by zero.
			name: "all-star vector",
			est:  Estimate{Similarity: math.Inf(1), Stars: 10, pairsTotal: 10},
			want: 0,
		},
		{
			// Stars recorded but no known vector dimension — the
			// participating count clamps at zero.
			name: "stars without pairsTotal",
			est:  Estimate{Similarity: math.Inf(1), Stars: 3},
			want: 0,
		},
		{
			name: "exact match full participation",
			est:  Estimate{Similarity: math.Inf(1), pairsTotal: 6},
			want: 1,
		},
		{
			name: "zero similarity",
			est:  Estimate{Similarity: 0, pairsTotal: 6},
			want: 0,
		},
		{
			name: "negative similarity",
			est:  Estimate{Similarity: -2, pairsTotal: 6},
			want: 0,
		},
		{
			// Similarity 1 (distance 1) with half the pairs starred:
			// 1/(1+1) × 3/6 = 0.25.
			name: "half participation",
			est:  Estimate{Similarity: 1, Stars: 3, pairsTotal: 6},
			want: 0.25,
		},
	}
	for _, tc := range cases {
		got := tc.est.Confidence()
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Errorf("%s: confidence %v outside [0,1]", tc.name, got)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: confidence = %v, want %v", tc.name, got, tc.want)
		}
	}
}
