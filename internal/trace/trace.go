// Package trace provides import/export of target traces and tracking
// results: CSV for spreadsheets and plotting scripts, JSON for
// programmatic pipelines, and a velocity estimator over tracked points
// (finite differences with a smoothing window), matching the
// velocity-estimation use-cases the paper's related work covers [4][5].
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fttt/internal/geom"
)

// Point is one timestamped target position, optionally with an estimate.
type Point struct {
	T    float64    `json:"t"`
	True geom.Point `json:"true"`
	// Est is the tracker's estimate; nil for a pure ground-truth trace.
	Est *geom.Point `json:"est,omitempty"`
}

// Err returns the tracking error, or -1 when no estimate is present.
func (p Point) Err() float64 {
	if p.Est == nil {
		return -1
	}
	return p.Est.Dist(p.True)
}

// Trace is an ordered series of points.
type Trace []Point

// WriteCSV emits "t,true_x,true_y[,est_x,est_y,err]" rows. Estimate
// columns appear when any point has an estimate; points without one get
// empty cells.
func (tr Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	hasEst := false
	for _, p := range tr {
		if p.Est != nil {
			hasEst = true
			break
		}
	}
	header := []string{"t", "true_x", "true_y"}
	if hasEst {
		header = append(header, "est_x", "est_y", "err")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, p := range tr {
		rec := []string{f(p.T), f(p.True.X), f(p.True.Y)}
		if hasEst {
			if p.Est != nil {
				rec = append(rec, f(p.Est.X), f(p.Est.Y), f(p.Err()))
			} else {
				rec = append(rec, "", "", "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses traces written by WriteCSV (estimate columns optional).
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	header := recs[0]
	if len(header) < 3 || header[0] != "t" {
		return nil, fmt.Errorf("trace: unexpected header %v", header)
	}
	hasEst := len(header) >= 6
	var tr Trace
	for li, rec := range recs[1:] {
		if len(rec) < 3 {
			return nil, fmt.Errorf("trace: row %d too short", li+2)
		}
		p := Point{}
		vals := make([]float64, 3)
		for i := 0; i < 3; i++ {
			v, err := strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d col %d: %v", li+2, i, err)
			}
			vals[i] = v
		}
		p.T = vals[0]
		p.True = geom.Pt(vals[1], vals[2])
		if hasEst && len(rec) >= 6 && rec[3] != "" {
			ex, err1 := strconv.ParseFloat(rec[3], 64)
			ey, err2 := strconv.ParseFloat(rec[4], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("trace: row %d bad estimate", li+2)
			}
			e := geom.Pt(ex, ey)
			p.Est = &e
		}
		tr = append(tr, p)
	}
	return tr, nil
}

// WriteJSON emits the trace as a JSON array.
func (tr Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// ReadJSON parses a JSON trace.
func ReadJSON(r io.Reader) (Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	return tr, nil
}

// Errors returns the per-point errors of the points that carry estimates.
func (tr Trace) Errors() []float64 {
	var errs []float64
	for _, p := range tr {
		if p.Est != nil {
			errs = append(errs, p.Err())
		}
	}
	return errs
}

// ParseXYLines parses the simple "t x y" line format (one position per
// line; blank lines and lines starting with '#' are skipped) — the
// stdin format of cmd/fttt-track.
func ParseXYLines(r io.Reader) (Trace, error) {
	var out Trace
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var t, x, y float64
		if _, err := fmt.Sscan(text, &t, &x, &y); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		out = append(out, Point{T: t, True: geom.Pt(x, y)})
	}
	return out, sc.Err()
}

// VelocityEstimate is a finite-difference speed estimate at one instant.
type VelocityEstimate struct {
	T     float64
	Speed float64  // m/s
	Dir   geom.Vec // unit direction (zero when stationary)
}

// EstimateVelocities derives target velocity from the estimated (or, if
// absent, true) positions using central differences over a smoothing
// window of 2·halfWindow+1 points — the simple velocity estimator the
// model-based related work builds into its filters [4][5]. halfWindow
// must be ≥ 1; fewer than 2·halfWindow+1 points yield no estimates.
func (tr Trace) EstimateVelocities(halfWindow int) []VelocityEstimate {
	if halfWindow < 1 {
		panic(fmt.Sprintf("trace: halfWindow must be ≥ 1, got %d", halfWindow))
	}
	pos := func(p Point) geom.Point {
		if p.Est != nil {
			return *p.Est
		}
		return p.True
	}
	var out []VelocityEstimate
	for i := halfWindow; i < len(tr)-halfWindow; i++ {
		a, b := tr[i-halfWindow], tr[i+halfWindow]
		dt := b.T - a.T
		if dt <= 0 {
			continue
		}
		d := pos(b).Sub(pos(a))
		speed := d.Len() / dt
		out = append(out, VelocityEstimate{
			T:     tr[i].T,
			Speed: speed,
			Dir:   d.Unit(),
		})
	}
	return out
}
