package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fttt/internal/geom"
)

func estPt(x, y float64) *geom.Point {
	p := geom.Pt(x, y)
	return &p
}

func sample() Trace {
	return Trace{
		{T: 0, True: geom.Pt(1, 2), Est: estPt(1.5, 2.5)},
		{T: 0.5, True: geom.Pt(2, 3)},
		{T: 1, True: geom.Pt(3, 4), Est: estPt(3, 4)},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("got %d points", len(got))
	}
	for i := range tr {
		if got[i].T != tr[i].T || !got[i].True.Eq(tr[i].True) {
			t.Fatalf("point %d mismatch: %+v vs %+v", i, got[i], tr[i])
		}
		if (got[i].Est == nil) != (tr[i].Est == nil) {
			t.Fatalf("point %d estimate presence mismatch", i)
		}
		if got[i].Est != nil && !got[i].Est.Eq(*tr[i].Est) {
			t.Fatalf("point %d estimate mismatch", i)
		}
	}
}

func TestCSVNoEstimates(t *testing.T) {
	tr := Trace{{T: 0, True: geom.Pt(1, 1)}, {T: 1, True: geom.Pt(2, 2)}}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "est_x") {
		t.Error("pure truth trace should not emit estimate columns")
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Est != nil {
		t.Error("no estimate expected")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"x,y\n1,2\n",
		"t,true_x,true_y\nnope,1,2\n",
		"t,true_x,true_y,est_x,est_y,err\n0,1,2,bad,5,0\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Est == nil || got[1].Est != nil {
		t.Fatalf("round trip broken: %+v", got)
	}
	if !got[0].Est.Eq(*tr[0].Est) {
		t.Error("estimate lost")
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON should fail")
	}
}

func TestErrAndErrors(t *testing.T) {
	tr := sample()
	if got := tr[0].Err(); math.Abs(got-math.Sqrt(0.5)) > 1e-9 {
		t.Errorf("Err = %v", got)
	}
	if got := tr[1].Err(); got != -1 {
		t.Errorf("missing estimate Err = %v, want -1", got)
	}
	errs := tr.Errors()
	if len(errs) != 2 {
		t.Fatalf("Errors len = %d", len(errs))
	}
	if errs[1] != 0 {
		t.Errorf("exact estimate error = %v", errs[1])
	}
}

func TestEstimateVelocities(t *testing.T) {
	// Constant velocity (3,4)/s → speed 5.
	var tr Trace
	for i := 0; i <= 10; i++ {
		t0 := float64(i) * 0.5
		tr = append(tr, Point{T: t0, True: geom.Pt(3*t0, 4*t0)})
	}
	vs := tr.EstimateVelocities(2)
	if len(vs) != len(tr)-4 {
		t.Fatalf("got %d estimates", len(vs))
	}
	for _, v := range vs {
		if math.Abs(v.Speed-5) > 1e-9 {
			t.Fatalf("speed = %v, want 5", v.Speed)
		}
		if math.Abs(v.Dir.X-0.6) > 1e-9 || math.Abs(v.Dir.Y-0.8) > 1e-9 {
			t.Fatalf("dir = %v", v.Dir)
		}
	}
}

func TestEstimateVelocitiesUsesEstimates(t *testing.T) {
	// Estimates present: velocities derive from them, not the truth.
	tr := Trace{
		{T: 0, True: geom.Pt(0, 0), Est: estPt(0, 0)},
		{T: 1, True: geom.Pt(100, 0), Est: estPt(1, 0)},
		{T: 2, True: geom.Pt(200, 0), Est: estPt(2, 0)},
	}
	vs := tr.EstimateVelocities(1)
	if len(vs) != 1 {
		t.Fatalf("got %d estimates", len(vs))
	}
	if math.Abs(vs[0].Speed-1) > 1e-9 {
		t.Errorf("speed from estimates = %v, want 1", vs[0].Speed)
	}
}

func TestEstimateVelocitiesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("halfWindow=0 should panic")
		}
	}()
	Trace{}.EstimateVelocities(0)
}

func TestEstimateVelocitiesShortTrace(t *testing.T) {
	tr := Trace{{T: 0, True: geom.Pt(0, 0)}, {T: 1, True: geom.Pt(1, 1)}}
	if vs := tr.EstimateVelocities(1); len(vs) != 0 {
		t.Errorf("short trace should yield none, got %d", len(vs))
	}
}

func TestEstimateVelocitiesSkipsZeroDt(t *testing.T) {
	tr := Trace{
		{T: 0, True: geom.Pt(0, 0)},
		{T: 0, True: geom.Pt(1, 0)},
		{T: 0, True: geom.Pt(2, 0)},
	}
	if vs := tr.EstimateVelocities(1); len(vs) != 0 {
		t.Errorf("zero-dt windows should be skipped, got %d", len(vs))
	}
}

func TestParseXYLines(t *testing.T) {
	in := "# comment\n0 10 20\n\n0.5  12.5 21\n# trailing\n1 15 22\n"
	tr, err := ParseXYLines(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3 {
		t.Fatalf("got %d points", len(tr))
	}
	if tr[1].T != 0.5 || !tr[1].True.Eq(geom.Pt(12.5, 21)) {
		t.Errorf("point 1 = %+v", tr[1])
	}
}

func TestParseXYLinesErrors(t *testing.T) {
	if _, err := ParseXYLines(strings.NewReader("0 10\n")); err == nil {
		t.Error("short line should fail")
	}
	if _, err := ParseXYLines(strings.NewReader("zero 1 2\n")); err == nil {
		t.Error("non-numeric should fail")
	}
	tr, err := ParseXYLines(strings.NewReader(""))
	if err != nil || len(tr) != 0 {
		t.Errorf("empty input should parse to empty trace: %v %v", tr, err)
	}
}
