package pipeline

import (
	"math"
	"testing"

	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/filter"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/wsnnet"
)

var fieldRect = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

func buildService(t testing.TB, smoother filter.Smoother, wakeRadius float64) *Service {
	t.Helper()
	dep := deploy.Grid(fieldRect, 16)
	net, err := wsnnet.New(wsnnet.Config{
		Nodes:        dep.Positions(),
		BaseStation:  geom.Pt(5, 5),
		Model:        rf.Default(),
		SensingRange: 40,
		CommRange:    50,
		HopLoss:      0.02,
		HopDelay:     0.002,
		ReportBits:   256,
		Epsilon:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.New(core.Config{
		Field: fieldRect, Nodes: dep.Positions(), Model: rf.Default(),
		Epsilon: 1, SamplingTimes: 5, Range: 40, CellSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{
		Net: net, Tracker: tr, Smoother: smoother,
		Period: 0.5, K: 5, WakeRadius: wakeRadius,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing Net/Tracker should fail")
	}
	svc := buildService(t, nil, 0)
	bad := svc.cfg
	bad.Period = 0
	if _, err := New(bad); err == nil {
		t.Error("zero period should fail")
	}
	bad = svc.cfg
	bad.K = 0
	if _, err := New(bad); err == nil {
		t.Error("K=0 should fail")
	}
}

func TestRunProducesGridOfUpdates(t *testing.T) {
	svc := buildService(t, nil, 0)
	mob := mobility.RandomWaypoint(fieldRect, 1, 5, 10, randx.New(1))
	updates := svc.Run(mob, 10, randx.New(2))
	if len(updates) != 21 {
		t.Fatalf("got %d updates, want 21", len(updates))
	}
	prev := -1.0
	for _, u := range updates {
		if u.T <= prev {
			t.Fatalf("timestamps not increasing: %v after %v", u.T, prev)
		}
		prev = u.T
		if !fieldRect.Contains(u.Final) {
			t.Fatalf("estimate %v outside field", u.Final)
		}
		if u.Error != u.Final.Dist(u.True) {
			t.Fatal("Error field inconsistent")
		}
	}
	if me := MeanError(updates); me <= 0 || me > 40 {
		t.Errorf("mean error %v implausible", me)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() []Update {
		svc := buildService(t, nil, 0)
		mob := mobility.RandomWaypoint(fieldRect, 1, 5, 8, randx.New(3))
		return svc.Run(mob, 8, randx.New(4))
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Final != b[i].Final {
			t.Fatal("pipeline not reproducible")
		}
	}
}

func TestSmootherApplied(t *testing.T) {
	kf, _ := filter.NewKalman(2, 6)
	svc := buildService(t, kf, 0)
	mob := mobility.Waypoints([]geom.Point{geom.Pt(20, 50), geom.Pt(80, 50)}, 3)
	updates := svc.Run(mob, 15, randx.New(5))
	diff := 0
	for _, u := range updates[1:] {
		if u.Final != u.Raw {
			diff++
		}
	}
	if diff == 0 {
		t.Error("smoother never changed an estimate")
	}
}

func TestWakeRadiusSleepsNodes(t *testing.T) {
	svc := buildService(t, nil, 45)
	mob := mobility.Waypoints([]geom.Point{geom.Pt(30, 30), geom.Pt(70, 70)}, 3)
	updates := svc.Run(mob, 15, randx.New(6))
	asleep := 0
	for _, u := range updates[1:] { // first round is always-on (no focus yet)
		asleep += u.Stats.Asleep
	}
	if asleep == 0 {
		t.Error("expected some duty-cycled sleeps")
	}
}

func TestStreamDeliversAndCloses(t *testing.T) {
	svc := buildService(t, nil, 0)
	mob := mobility.RandomWaypoint(fieldRect, 1, 5, 5, randx.New(7))
	ch := svc.Stream(mob, 5, randx.New(8))
	count := 0
	for u := range ch {
		if math.IsNaN(u.Error) {
			t.Fatal("NaN error")
		}
		count++
	}
	if count != 11 {
		t.Errorf("streamed %d updates, want 11", count)
	}
}

func TestMeanErrorEmpty(t *testing.T) {
	if MeanError(nil) != 0 {
		t.Error("MeanError(nil) should be 0")
	}
	if m, ok := MeanErrorOK(nil); ok || m != 0 {
		t.Errorf("MeanErrorOK(nil) = %v, %v, want 0, false", m, ok)
	}
	if m, ok := MeanErrorOK([]Update{{Error: 2}, {Error: 4}}); !ok || m != 3 {
		t.Errorf("MeanErrorOK = %v, %v, want 3, true", m, ok)
	}
}

func TestStreamDeliversDuringRun(t *testing.T) {
	// Stream must deliver each Update from inside its localization round,
	// not batch them after the run: when the consumer receives the first
	// Update, almost all round spans are still unclosed. (The old
	// implementation collected every Update first and replayed them, so
	// all spans were closed before the first receive.)
	svc := buildService(t, nil, 0)
	tracer := &obs.CountingTracer{}
	svc.cfg.Tracer = tracer
	mob := mobility.RandomWaypoint(fieldRect, 1, 5, 10, randx.New(1))

	const wantRounds = 21 // duration 10 / period 0.5 + 1
	ch := svc.Stream(mob, 10, randx.New(2))
	first, ok := <-ch
	if !ok {
		t.Fatal("stream closed without updates")
	}
	if first.T != 0 {
		t.Errorf("first update at t=%v, want 0", first.T)
	}
	// Round 0's span closes only after this receive; the producer may
	// have closed it (and at most started round 1) by now, but the bulk
	// of the run must still be ahead of us.
	if closed := tracer.Spans("pipeline", "round"); closed >= wantRounds {
		t.Fatalf("all %d round spans closed at first update: stream is batching, not streaming", closed)
	}
	got := 1
	for range ch {
		got++
	}
	if got != wantRounds {
		t.Errorf("received %d updates, want %d", got, wantRounds)
	}
	if closed := tracer.Spans("pipeline", "round"); closed != wantRounds {
		t.Errorf("%d spans closed after drain, want %d", closed, wantRounds)
	}
}

func TestStreamMatchesRun(t *testing.T) {
	// The streaming path is the same computation as Run: identical
	// updates, in order, for the same seed.
	mob := mobility.RandomWaypoint(fieldRect, 1, 5, 6, randx.New(3))
	want := buildService(t, nil, 0).Run(mob, 6, randx.New(4))
	var got []Update
	for u := range buildService(t, nil, 0).Stream(mob, 6, randx.New(4)) {
		got = append(got, u)
	}
	if len(got) != len(want) {
		t.Fatalf("stream yielded %d updates, run %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("update %d differs: stream %+v vs run %+v", i, got[i], want[i])
		}
	}
}
