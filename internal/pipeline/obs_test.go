package pipeline

import (
	"testing"

	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/wsnnet"
)

// TestPipelineTelemetry runs a short duty-cycled pipeline with one
// shared registry across all three layers and checks each layer's
// metrics appear — the single-scrape property the telemetry layer
// promises.
func TestPipelineTelemetry(t *testing.T) {
	field := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Grid(field, 16)
	reg := obs.NewRegistry()

	net, err := wsnnet.New(wsnnet.Config{
		Nodes:       dep.Positions(),
		BaseStation: geom.Pt(50, -5),
		Model:       rf.Default(),
		CommRange:   45,
		ReportBits:  256,
		Epsilon:     1,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.New(core.Config{
		Field: field, Nodes: dep.Positions(), Model: rf.Default(),
		Epsilon: 1, SamplingTimes: 5, Range: 40, CellSize: 4,
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{
		Net: net, Tracker: tr, Period: 0.5, K: 5,
		WakeRadius: 50,
		Obs:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	target := mobility.Waypoints([]geom.Point{geom.Pt(20, 20), geom.Pt(80, 80)}, 4)
	updates := svc.Run(target, 5, randx.New(2))
	if len(updates) == 0 {
		t.Fatal("no updates")
	}

	if got := reg.Counter("fttt_pipeline_rounds_total").Value(); got != float64(len(updates)) {
		t.Errorf("pipeline rounds = %v, want %d", got, len(updates))
	}
	if got := reg.Histogram("fttt_pipeline_wake_set_size", nil).Count(); got != uint64(len(updates)) {
		t.Errorf("wake-set histogram count = %d, want %d", got, len(updates))
	}
	if got := reg.Histogram("fttt_pipeline_error_meters", nil).Count(); got != uint64(len(updates)) {
		t.Errorf("error histogram count = %d, want %d", got, len(updates))
	}
	// The same scrape carries all three layers.
	if reg.Counter("fttt_core_localizations_total").Value() != float64(len(updates)) {
		t.Error("core metrics missing from the shared registry")
	}
	if reg.Counter("fttt_net_rounds_total").Value() != float64(len(updates)) {
		t.Error("wsnnet metrics missing from the shared registry")
	}
}
