// Package pipeline assembles the full online tracking system the paper's
// outdoor deployment ran: a WSN substrate collecting grouping samplings
// over the radio, the FTTT tracker matching them, and an optional output
// smoother — all driven by the discrete-event virtual clock, with a
// channel-based streaming interface for consumers that want estimates as
// they are produced.
package pipeline

import (
	"fmt"
	"time"

	"fttt/internal/core"
	"fttt/internal/filter"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/sampling"
	"fttt/internal/wsnnet"
)

// Config assembles a Service.
type Config struct {
	// Net carries the reports (required).
	Net *wsnnet.Network
	// Tracker localizes each collected group (required).
	Tracker *core.Tracker
	// Smoother optionally filters the raw estimates.
	Smoother filter.Smoother
	// Period is the time between localization rounds in seconds.
	Period float64
	// K is the grouping sampling times per round.
	K int
	// WakeRadius, when positive, duty-cycles the collection: only nodes
	// within this radius of the previous estimate stay awake.
	WakeRadius float64
	// RetryBackoff is the virtual-time pause before a degraded round's
	// re-collection (seconds). The retry itself is armed by the
	// tracker's Config.StarFractionLimit; a round whose sampling vector
	// exceeds it waits RetryBackoff on the virtual clock — giving
	// transient faults a chance to clear — and collects once more, with
	// both collections' RoundStats merged into the Update.
	RetryBackoff float64
	// Obs, when non-nil, receives the pipeline's metrics (rounds, wall
	// round duration, raw-vs-smoothed residual, wake-set size —
	// DESIGN.md §"Telemetry"). Attach the same registry to the Net and
	// Tracker configs to see all three layers in one scrape.
	Obs *obs.Registry
	// Tracer, when non-nil, receives a span per localization round.
	Tracer obs.Tracer
}

// Update is one localization round's outcome.
type Update struct {
	T     float64
	True  geom.Point
	Raw   geom.Point
	Final geom.Point // smoothed, or Raw when no smoother is configured
	Error float64    // |Final - True|
	Stats wsnnet.RoundStats
	// Degraded/Retried/Extrapolated mirror the tracker's degradation
	// policy for this round (core.Estimate, DESIGN.md §9): too many
	// silent pairs, the bounded re-collection fired, the position came
	// from mobility extrapolation rather than the matcher.
	Degraded     bool
	Retried      bool
	Extrapolated bool
}

// Service is a ready-to-run online tracking pipeline.
type Service struct {
	cfg     Config
	prev    geom.Point
	have    bool
	metrics *serviceMetrics
}

// serviceMetrics caches the pipeline metric handles, resolved at New.
type serviceMetrics struct {
	rounds   *obs.Counter
	duration *obs.Histogram
	residual *obs.Histogram
	errors   *obs.Histogram
	wakeSet  *obs.Histogram
}

func newServiceMetrics(r *obs.Registry) *serviceMetrics {
	return &serviceMetrics{
		rounds:   r.Counter("fttt_pipeline_rounds_total"),
		duration: r.Histogram("fttt_pipeline_round_duration_seconds", obs.ExpBuckets(1e-5, 2, 18)),
		residual: r.Histogram("fttt_pipeline_smoothing_residual_meters", obs.ExpBuckets(0.125, 2, 10)),
		errors:   r.Histogram("fttt_pipeline_error_meters", obs.ExpBuckets(0.25, 2, 10)),
		wakeSet:  r.Histogram("fttt_pipeline_wake_set_size", obs.LinearBuckets(0, 4, 16)),
	}
}

// New validates and assembles a Service.
func New(cfg Config) (*Service, error) {
	if cfg.Net == nil || cfg.Tracker == nil {
		return nil, fmt.Errorf("pipeline: Net and Tracker are required")
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("pipeline: Period must be positive, got %v", cfg.Period)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("pipeline: K must be ≥ 1, got %d", cfg.K)
	}
	s := &Service{cfg: cfg}
	if cfg.Obs != nil {
		s.metrics = newServiceMetrics(cfg.Obs)
	}
	return s, nil
}

// Run tracks the target for duration virtual seconds, producing one
// Update per localization round, scheduled on the network's virtual
// clock. It is deterministic given rng.
func (s *Service) Run(target mobility.Model, duration float64, rng *randx.Stream) []Update {
	rounds := int(duration/s.cfg.Period) + 1
	updates := make([]Update, 0, rounds)
	s.RunFunc(target, duration, rng, func(u Update) { updates = append(updates, u) })
	return updates
}

// RunFunc tracks the target for duration virtual seconds, invoking fn
// with each Update as soon as its localization round completes — before
// the next round is scheduled, so a blocking fn holds the virtual clock
// still. Run and Stream are built on it. It is deterministic given rng.
func (s *Service) RunFunc(target mobility.Model, duration float64, rng *randx.Stream, fn func(Update)) {
	engine := s.cfg.Net.Engine()
	rounds := int(duration/s.cfg.Period) + 1

	var round func(i int)
	round = func(i int) {
		endSpan := obs.StartSpan(s.cfg.Tracer, "pipeline", "round")
		var wallStart time.Time
		if s.metrics != nil {
			wallStart = time.Now()
		}
		t := engine.Now()
		truth := target.At(t)
		collect := func(r *randx.Stream) (*sampling.Group, wsnnet.RoundStats) {
			if s.cfg.WakeRadius > 0 && s.have {
				return s.cfg.Net.CollectRoundFocused(truth, s.prev, s.cfg.WakeRadius, s.cfg.K, r)
			}
			return s.cfg.Net.CollectRound(truth, s.cfg.K, r)
		}
		roundRng := rng.SplitN("round", i)
		gg, st := collect(roundRng)
		// The recollect hook only fires when the tracker's star-fraction
		// policy declares the round degraded; it pauses the virtual
		// clock for the backoff (the target is treated as stationary
		// over it — backoff ≪ Period) and folds the second collection's
		// stats into the round's.
		est := s.cfg.Tracker.LocalizeGroupRetry(gg, func() *sampling.Group {
			if s.cfg.RetryBackoff > 0 {
				engine.ScheduleIn(s.cfg.RetryBackoff, func() {})
				engine.Run()
			}
			g2, st2 := collect(roundRng.Split("retry"))
			st.Accumulate(st2)
			return g2
		})
		raw := est.Pos
		s.prev, s.have = raw, true

		final := raw
		if s.cfg.Smoother != nil {
			dt := s.cfg.Period
			if i == 0 {
				dt = 0
			}
			endSmooth := obs.StartSpan(s.cfg.Tracer, "filter", "smooth")
			final = s.cfg.Smoother.Update(raw, dt)
			endSmooth()
			obs.Emit(s.cfg.Tracer, "filter", "residual", raw.Dist(final))
		}
		fn(Update{
			T:            t,
			True:         truth,
			Raw:          raw,
			Final:        final,
			Error:        final.Dist(truth),
			Stats:        st,
			Degraded:     est.Degraded,
			Retried:      est.Retried,
			Extrapolated: est.Extrapolated,
		})
		if m := s.metrics; m != nil {
			m.rounds.Inc()
			m.duration.Observe(time.Since(wallStart).Seconds())
			m.residual.Observe(raw.Dist(final))
			m.errors.Observe(final.Dist(truth))
			m.wakeSet.Observe(float64(st.Heard - st.Asleep))
		}
		endSpan()
		if i+1 < rounds {
			// CollectRound may have advanced the clock past the
			// delivery latency; schedule relative to the round grid.
			next := float64(i+1) * s.cfg.Period
			if next < engine.Now() {
				next = engine.Now()
			}
			engine.Schedule(next, func() { round(i + 1) })
		}
	}
	engine.Schedule(engine.Now(), func() { round(0) })
	engine.Run()
}

// Stream runs the pipeline in a goroutine and delivers Updates on the
// returned channel, which is closed when the run completes. Each Update
// is sent from inside its localization round (RunFunc), so the channel —
// unbuffered — makes the pipeline advance at the consumer's pace: the
// virtual clock does not move past a round until its Update is received.
func (s *Service) Stream(target mobility.Model, duration float64, rng *randx.Stream) <-chan Update {
	ch := make(chan Update)
	go func() {
		defer close(ch)
		s.RunFunc(target, duration, rng, func(u Update) { ch <- u })
	}()
	return ch
}

// MeanError summarises a run. An empty run yields the sentinel 0, not
// NaN; use MeanErrorOK to distinguish "no updates" from a genuinely
// zero mean.
func MeanError(updates []Update) float64 {
	m, _ := MeanErrorOK(updates)
	return m
}

// MeanErrorOK is MeanError with an explicit emptiness signal: ok is
// false (and the mean 0) when there are no updates to average.
func MeanErrorOK(updates []Update) (mean float64, ok bool) {
	if len(updates) == 0 {
		return 0, false
	}
	var sum float64
	for _, u := range updates {
		sum += u.Error
	}
	return sum / float64(len(updates)), true
}
