package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds matched on %d/100 draws", same)
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a := New(7)
	childBefore := a.Split("mobility").Float64()
	b := New(7)
	for i := 0; i < 50; i++ {
		b.Float64() // consume parent draws
	}
	childAfter := b.Split("mobility").Float64()
	if childBefore != childAfter {
		t.Error("Split should be independent of parent consumption")
	}
}

func TestSplitLabelsDistinct(t *testing.T) {
	root := New(7)
	x := root.Split("noise").Float64()
	y := root.Split("deploy").Float64()
	if x == y {
		t.Error("different labels should give different streams")
	}
}

func TestSplitNDistinct(t *testing.T) {
	root := New(9)
	seen := map[float64]int{}
	for i := 0; i < 64; i++ {
		v := root.SplitN("node", i).Float64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("SplitN(%d) collided with SplitN(%d)", i, prev)
		}
		seen[v] = i
	}
}

func TestSplitNReproducible(t *testing.T) {
	if New(3).SplitN("node", 5).Float64() != New(3).SplitN("node", 5).Float64() {
		t.Error("SplitN not reproducible")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 8)
		if v < -3 || v >= 8 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("mean = %v, want ≈5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("stddev = %v, want ≈2", math.Sqrt(variance))
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(4)
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.01 {
		t.Errorf("exponential mean = %v, want ≈0.25", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exponential(0) should panic")
		}
	}()
	New(1).Exponential(0)
}

func TestBernoulli(t *testing.T) {
	s := New(19)
	if s.Bernoulli(0) {
		t.Error("p=0 must be false")
	}
	if !s.Bernoulli(1) {
		t.Error("p=1 must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("empirical p = %v, want ≈0.3", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(23).Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want NaN", got)
	}
}

func TestMixBijectiveSample(t *testing.T) {
	// mix must not collide on a small sample (it is bijective in theory).
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 10000; i++ {
		m := mix(i)
		if prev, ok := seen[m]; ok {
			t.Fatalf("mix collision: mix(%d) == mix(%d)", i, prev)
		}
		seen[m] = i
	}
}
