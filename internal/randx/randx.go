// Package randx provides deterministic, splittable random number streams
// for reproducible simulation experiments.
//
// Every experiment in this repository takes a single root seed. The root
// seed is split into independent substreams — one per sensor node, one for
// the mobility model, one for deployment, and so on — so that changing the
// number of nodes, or reordering the construction of one component, does
// not perturb the random draws seen by the others. Splitting is done by
// hashing the parent seed with a stream label (SplitMix64 finalisation),
// which is cheap, collision-resistant for our purposes, and fully
// deterministic.
package randx

import (
	"math"
	"math/rand"
)

// Stream is a deterministic random stream. It wraps math/rand with a
// seeded source plus convenience samplers used by the simulator. A Stream
// is not safe for concurrent use; split one substream per goroutine.
type Stream struct {
	seed uint64
	rng  *rand.Rand
}

// New returns a stream rooted at seed.
func New(seed uint64) *Stream {
	return &Stream{seed: seed, rng: rand.New(rand.NewSource(int64(mix(seed))))}
}

// Seed returns the seed this stream was created with.
func (s *Stream) Seed() uint64 { return s.seed }

// Split derives an independent child stream identified by label. Splitting
// is a pure function of (parent seed, label): the same pair always yields
// the same child, regardless of how many values the parent has produced.
func (s *Stream) Split(label string) *Stream {
	h := s.seed
	for _, b := range []byte(label) {
		h = mix(h ^ uint64(b))
	}
	return New(mix(h ^ 0x9e3779b97f4a7c15))
}

// SplitN derives an independent child stream identified by an integer
// index, e.g. one stream per sensor node.
func (s *Stream) SplitN(label string, n int) *Stream {
	c := s.Split(label)
	return New(mix(c.seed ^ mix(uint64(n)+0x632be59bd9b4e019)))
}

// Float64 returns a uniform sample in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int { return s.rng.Intn(n) }

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// Exponential returns an exponential sample with the given rate (mean
// 1/rate). It panics if rate <= 0.
func (s *Stream) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("randx: non-positive exponential rate")
	}
	return s.rng.ExpFloat64() / rate
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomises the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// mix is the SplitMix64 finalizer: a bijective avalanche function on
// uint64 used to decorrelate derived seeds.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mean of a sample slice; convenience for tests.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
