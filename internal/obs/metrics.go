package obs

import (
	"math"
	"sync/atomic"
)

// atomicFloat is a float64 updated through CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value (float64 so physical
// quantities like joules accumulate exactly as spent).
type Counter struct {
	v atomicFloat
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add increases the counter by v; negative deltas are a caller bug and
// are ignored to keep the counter monotone.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.v.add(v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.load() }

func (c *Counter) kind() string { return "counter" }
func (c *Counter) reset()       { c.v.store(0) }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomicFloat
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add increments the gauge by v (may be negative).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) reset()       { g.v.store(0) }

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds (ascending); an implicit +Inf bucket catches the tail, so every
// observation lands somewhere.
type Histogram struct {
	bounds []float64       // upper bounds, ascending, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
	total  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Mean returns the mean observation, or 0 before any observation.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket containing the target rank — the same estimate
// Prometheus' histogram_quantile computes. Observations in the +Inf
// bucket clamp to the highest finite bound. Returns 0 before any
// observation.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank || i == len(h.counts)-1 {
			if i >= len(h.bounds) {
				// +Inf bucket: clamp to the last finite bound.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*((rank-cum)/c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) kind() string { return "histogram" }

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.store(0)
	h.total.Store(0)
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start·factor, start·factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
