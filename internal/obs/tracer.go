package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer receives span and event callbacks from instrumented components.
// Implementations must be safe for concurrent use. A nil Tracer means
// "tracing off": every instrumented call site checks for nil before
// invoking, so the disabled cost is one pointer comparison.
type Tracer interface {
	// Event records an instantaneous occurrence — a matcher fallback, a
	// dropped packet — with an optional numeric value.
	Event(component, name string, value float64)
	// Span marks the start of operation name inside component and
	// returns the function that ends it. Implementations typically
	// timestamp both edges.
	Span(component, name string) (end func())
}

// StartSpan opens a span on t, tolerating a nil tracer: the returned
// end function is a shared no-op, so call sites read
//
//	defer obs.StartSpan(t, "core", "localize")()
func StartSpan(t Tracer, component, name string) func() {
	if t == nil {
		return nopEnd
	}
	return t.Span(component, name)
}

// Emit reports an event on t, tolerating a nil tracer.
func Emit(t Tracer, component, name string, value float64) {
	if t != nil {
		t.Event(component, name, value)
	}
}

func nopEnd() {}

// WriterTracer logs every span and event as one line on W — the
// debugging tracer used by the examples and tests. Lines look like
//
//	span  core/localize 412µs
//	event wsnnet/packet_lost 1
type WriterTracer struct {
	mu sync.Mutex
	W  io.Writer
}

// Event implements Tracer.
func (t *WriterTracer) Event(component, name string, value float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.W, "event %s/%s %g\n", component, name, value)
}

// Span implements Tracer.
func (t *WriterTracer) Span(component, name string) func() {
	start := time.Now()
	return func() {
		d := time.Since(start)
		t.mu.Lock()
		defer t.mu.Unlock()
		fmt.Fprintf(t.W, "span  %s/%s %v\n", component, name, d)
	}
}

// CountingTracer counts spans and events per component/name key —
// the assertion helper the tests use.
type CountingTracer struct {
	mu     sync.Mutex
	spans  map[string]int
	events map[string]int
}

// Event implements Tracer.
func (t *CountingTracer) Event(component, name string, _ float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.events == nil {
		t.events = make(map[string]int)
	}
	t.events[component+"/"+name]++
}

// Span implements Tracer.
func (t *CountingTracer) Span(component, name string) func() {
	return func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		if t.spans == nil {
			t.spans = make(map[string]int)
		}
		t.spans[component+"/"+name]++
	}
}

// Spans returns how many spans closed under component/name.
func (t *CountingTracer) Spans(component, name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans[component+"/"+name]
}

// Events returns how many events fired under component/name.
func (t *CountingTracer) Events(component, name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events[component+"/"+name]
}
