package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Server exposes a registry over HTTP for live inspection of a running
// simulation:
//
//	/metrics      Prometheus text format (the registry snapshot)
//	/debug/vars   expvar JSON (Go runtime memstats etc.)
//	/debug/pprof/ CPU/heap/goroutine profiles
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts serving reg on addr (e.g. ":9090" or "127.0.0.1:0") in a
// background goroutine and returns immediately. Close shuts it down.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	Register(mux, reg)
	s := &Server{srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Register installs the debug endpoints — /metrics, /debug/vars and
// /debug/pprof/ — on mux, for callers that already run an HTTP server
// (e.g. the fttt-serve daemon mounting them next to its API routes).
func Register(mux *http.ServeMux, reg *Registry) {
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns the /metrics handler alone, for callers that already
// run an HTTP server.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WriteTo(w) //nolint:errcheck // best-effort scrape
	})
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
