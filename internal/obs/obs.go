// Package obs is the zero-dependency telemetry layer: named counters,
// gauges and fixed-bucket histograms in a concurrency-safe Registry,
// plus a lightweight span/event Tracer hook that instrumented components
// (core, wsnnet, pipeline) invoke when one is attached.
//
// Design rules:
//
//   - Nil is off. Every instrumented component treats a nil *Registry or
//     nil Tracer as "telemetry disabled" and skips all bookkeeping; the
//     nil fast path is a pointer check (BenchmarkLocalizeInstrumented
//     proves < 5% overhead on the localization hot path).
//   - Metric handles are resolved once, at component construction, never
//     per operation: the hot path only touches atomics.
//   - Export is pull-based: Snapshot() captures a consistent view that
//     WriteTo renders in the Prometheus text exposition format, and
//     Serve exposes it over HTTP together with expvar and pprof.
//
// Metric names follow the Prometheus convention
// fttt_<component>_<quantity>_<unit>; an optional {label="value"} suffix
// on the name creates a labelled series within the same family (used for
// per-mote energy). DESIGN.md §"Telemetry" indexes every metric the
// tree emits and maps each to the paper figure it reproduces.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is a named collection of metrics. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// metric is the union of the three instrument kinds.
type metric interface {
	// kind is the Prometheus TYPE of the metric ("counter", "gauge",
	// "histogram").
	kind() string
	// reset zeroes the metric's observations, keeping its identity.
	reset()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// Counter returns the counter registered under name, creating it on
// first use. It panics if name is already registered as another kind —
// metric names are a package-level namespace, so a clash is a
// programming error.
func (r *Registry) Counter(name string) *Counter {
	m := r.getOrCreate(name, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as a %s", name, m.kind()))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Panics on a kind clash, like Counter.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.getOrCreate(name, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as a %s", name, m.kind()))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds (ascending; +Inf is implicit) on
// first use. Later calls ignore buckets and return the existing
// histogram. Panics on a kind clash, like Counter.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	m := r.getOrCreate(name, func() metric { return newHistogram(buckets) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as a %s", name, m.kind()))
	}
	return h
}

func (r *Registry) getOrCreate(name string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// Reset zeroes every registered metric's observations while keeping the
// metrics themselves (handles held by instrumented components stay
// valid). cmd/fttt-bench uses it to isolate per-figure dumps.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		m.reset()
	}
}

// names returns the registered metric names sorted for deterministic
// export.
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// get returns the metric registered under name, or nil.
func (r *Registry) get(name string) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[name]
}
