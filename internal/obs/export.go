package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Trace exporters: JSONL (one Record per line — the native recording
// format fttt-trace reads) and the Chrome trace-event format that
// chrome://tracing and https://ui.perfetto.dev load directly.

// WriteJSONL writes records as one JSON object per line.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("obs: record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL recording (blank lines are skipped).
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return out, nil
}

// chromeEvent is one entry of the Chrome trace-event JSON array.
// Timestamps and durations are microseconds; tid carries the trace ID
// so each causal tree renders as its own track.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace converts records into the Chrome trace-event format
// ({"traceEvents": [...]}): spans become complete ("X") events, events
// and links become instants ("i"), and every trace ID gets its own
// thread track. The output loads directly in Perfetto.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	events := make([]chromeEvent, 0, len(recs)+2)
	events = append(events, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]any{"name": "fttt"},
	})
	seenTraces := map[TraceID]bool{}
	for _, rec := range recs {
		if !seenTraces[rec.Trace] {
			seenTraces[rec.Trace] = true
			events = append(events, chromeEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: uint64(rec.Trace),
				Args: map[string]any{"name": fmt.Sprintf("trace %d", rec.Trace)},
			})
		}
		ev := chromeEvent{
			Name: rec.Component + "/" + rec.Name,
			Cat:  rec.Component,
			TS:   float64(rec.Start.UnixNano()) / 1e3,
			PID:  1,
			TID:  uint64(rec.Trace),
		}
		args := map[string]any{"span": rec.Span}
		if rec.Parent != 0 {
			args["parent"] = rec.Parent
		}
		switch rec.Kind {
		case KindSpan:
			ev.Phase = "X"
			ev.Dur = float64(rec.Dur.Nanoseconds()) / 1e3
			if ev.Dur <= 0 {
				ev.Dur = 0.001 // zero-width slices are dropped by some viewers
			}
			for _, a := range rec.Attrs {
				if a.Str != "" {
					args[a.Key] = a.Str
				} else {
					args[a.Key] = a.Num
				}
			}
		case KindEvent:
			ev.Phase = "i"
			ev.Scope = "t"
			args["value"] = rec.Value
		case KindLink:
			ev.Phase = "i"
			ev.Scope = "p"
			ev.Name = "link → trace " + strconv.FormatUint(uint64(rec.LinkTrace), 10)
			args["linkTrace"] = rec.LinkTrace
			args["linkSpan"] = rec.LinkSpan
		default:
			continue
		}
		ev.Args = args
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
