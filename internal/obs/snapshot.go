package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Snapshot is a consistent point-in-time copy of a registry's values,
// ready to render. Taking a snapshot is cheap; instrumented components
// keep running while it is written out.
type Snapshot struct {
	series []series
}

// series is one exported metric with its values copied out.
type series struct {
	base   string // metric family name (labels stripped)
	labels string // `key="value",...` without braces; "" when unlabelled
	typ    string
	// counter / gauge value:
	value float64
	// histogram payload:
	bounds []float64
	counts []uint64 // cumulative per bound, then +Inf
	sum    float64
	total  uint64
}

// splitName separates an optional {label="value"} suffix from the
// family name.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	for _, name := range r.names() {
		m := r.get(name)
		if m == nil {
			continue
		}
		base, labels := splitName(name)
		s := series{base: base, labels: labels, typ: m.kind()}
		switch v := m.(type) {
		case *Counter:
			s.value = v.Value()
		case *Gauge:
			s.value = v.Value()
		case *Histogram:
			s.bounds = v.bounds
			s.counts = make([]uint64, len(v.counts))
			var cum uint64
			for i := range v.counts {
				cum += v.counts[i].Load()
				s.counts[i] = cum
			}
			s.sum = v.Sum()
			s.total = v.Count()
		}
		snap.series = append(snap.series, s)
	}
	return snap
}

// WriteTo renders the snapshot in the Prometheus text exposition format
// (version 0.0.4). It implements io.WriterTo.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	lastFamily := ""
	for _, se := range s.series {
		if se.base != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", se.base, se.typ)
			lastFamily = se.base
		}
		switch se.typ {
		case "counter", "gauge":
			b.WriteString(se.base)
			if se.labels != "" {
				b.WriteString("{" + se.labels + "}")
			}
			b.WriteString(" " + formatValue(se.value) + "\n")
		case "histogram":
			for i := range se.counts {
				le := "+Inf"
				if i < len(se.bounds) {
					le = formatValue(se.bounds[i])
				}
				b.WriteString(se.base + "_bucket{")
				if se.labels != "" {
					b.WriteString(se.labels + ",")
				}
				fmt.Fprintf(&b, "le=%q} %d\n", le, se.counts[i])
			}
			suffix := ""
			if se.labels != "" {
				suffix = "{" + se.labels + "}"
			}
			b.WriteString(se.base + "_sum" + suffix + " " + formatValue(se.sum) + "\n")
			b.WriteString(se.base + "_count" + suffix + " " + strconv.FormatUint(se.total, 10) + "\n")
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
