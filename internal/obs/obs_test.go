package obs

import (
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fttt_test_total")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("fttt_test_total"); again != c {
		t.Fatal("Counter should return the registered instance")
	}
	g := r.Gauge("fttt_test_gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("fttt_clash")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering a gauge over a counter")
		}
	}()
	r.Gauge("fttt_clash")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fttt_test_seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 105 {
		t.Fatalf("sum = %v, want 105", h.Sum())
	}
	if got := h.Mean(); math.Abs(got-26.25) > 1e-9 {
		t.Fatalf("mean = %v, want 26.25", got)
	}
	// Median rank 2 falls at the end of the (1,2] bucket.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("median = %v, want within (1,2]", q)
	}
	// The +Inf bucket clamps to the last finite bound.
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("q1 = %v, want 4", q)
	}
	if q := h.Quantile(0.5); q <= 0 {
		t.Fatalf("quantile should be positive, got %v", q)
	}
	var empty Histogram
	if q := (&empty).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestSnapshotPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("fttt_core_localizations_total").Add(3)
	r.Gauge("fttt_net_dead_motes").Set(2)
	h := r.Histogram("fttt_core_localize_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	r.Gauge(`fttt_net_mote_energy_joules{mote="0"}`).Set(1.5)
	r.Gauge(`fttt_net_mote_energy_joules{mote="1"}`).Set(2.5)

	var b strings.Builder
	if _, err := r.Snapshot().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wants := []string{
		"# TYPE fttt_core_localizations_total counter",
		"fttt_core_localizations_total 3",
		"# TYPE fttt_core_localize_seconds histogram",
		`fttt_core_localize_seconds_bucket{le="0.001"} 1`,
		`fttt_core_localize_seconds_bucket{le="+Inf"} 2`,
		"fttt_core_localize_seconds_sum 0.5005",
		"fttt_core_localize_seconds_count 2",
		"# TYPE fttt_net_dead_motes gauge",
		`fttt_net_mote_energy_joules{mote="0"} 1.5`,
		`fttt_net_mote_energy_joules{mote="1"} 2.5`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q\n--- got ---\n%s", want, out)
		}
	}
	// One TYPE line per family even with several labelled series.
	if n := strings.Count(out, "# TYPE fttt_net_mote_energy_joules"); n != 1 {
		t.Errorf("mote energy family has %d TYPE lines, want 1", n)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fttt_reset_total")
	h := r.Histogram("fttt_reset_hist", []float64{1})
	c.Inc()
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset left values: counter=%v hist count=%d sum=%v",
			c.Value(), h.Count(), h.Sum())
	}
	if r.Counter("fttt_reset_total") != c {
		t.Fatal("reset must keep metric identity")
	}
}

// TestConcurrent hammers every metric kind from many goroutines while
// snapshots are taken; run with -race this is the data-race gate for the
// whole package.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("fttt_conc_total")
			g := r.Gauge("fttt_conc_gauge")
			h := r.Histogram("fttt_conc_hist", []float64{1, 10, 100})
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 150))
				if i%500 == 0 {
					r.Snapshot().WriteTo(io.Discard)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("fttt_conc_total").Value(); got != workers*iters {
		t.Fatalf("counter = %v, want %d", got, workers*iters)
	}
	if got := r.Histogram("fttt_conc_hist", nil).Count(); got != workers*iters {
		t.Fatalf("hist count = %d, want %d", got, workers*iters)
	}
}

func TestTracers(t *testing.T) {
	var ct CountingTracer
	end := StartSpan(&ct, "core", "localize")
	end()
	Emit(&ct, "core", "fallback", 1)
	if ct.Spans("core", "localize") != 1 || ct.Events("core", "fallback") != 1 {
		t.Fatalf("counting tracer: spans=%d events=%d",
			ct.Spans("core", "localize"), ct.Events("core", "fallback"))
	}
	// Nil tracer must be a no-op, not a panic.
	StartSpan(nil, "x", "y")()
	Emit(nil, "x", "y", 0)

	var b strings.Builder
	wt := &WriterTracer{W: &b}
	wt.Span("net", "round")()
	wt.Event("net", "lost", 2)
	if !strings.Contains(b.String(), "span  net/round") ||
		!strings.Contains(b.String(), "event net/lost 2") {
		t.Fatalf("writer tracer output:\n%s", b.String())
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("fttt_http_total").Add(9)
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "fttt_http_total 9") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "memstats") {
		t.Errorf("/debug/vars missing memstats")
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Errorf("/debug/pprof/ index missing goroutine profile")
	}
}
