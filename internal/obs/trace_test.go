package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRecorderSpanTree(t *testing.T) {
	rec := NewRecorder(64)
	root := rec.Start(SpanRef{}, "serve", "request")
	root.AttrStr("target", "t1")
	root.Attr("seq", 3)
	child := rec.Start(root.Ref(), "core", "localize")
	rec.RecordEvent(child.Ref(), "faults", "report_dropped", 7)
	child.End()
	root.End()

	recs := rec.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Records publish at End: event, child span, root span.
	ev, cs, rs := recs[0], recs[1], recs[2]
	if ev.Kind != KindEvent || cs.Kind != KindSpan || rs.Kind != KindSpan {
		t.Fatalf("kinds = %s/%s/%s", ev.Kind, cs.Kind, rs.Kind)
	}
	if rs.Parent != 0 {
		t.Errorf("root parent = %d, want 0", rs.Parent)
	}
	if cs.Parent != rs.Span || cs.Trace != rs.Trace {
		t.Errorf("child parent/trace = %d/%d, want %d/%d", cs.Parent, cs.Trace, rs.Span, rs.Trace)
	}
	if ev.Parent != cs.Span || ev.Trace != cs.Trace {
		t.Errorf("event parent/trace = %d/%d, want %d/%d", ev.Parent, ev.Trace, cs.Span, cs.Trace)
	}
	if ev.Value != 7 {
		t.Errorf("event value = %v, want 7", ev.Value)
	}
	wantAttrs := map[string]Attr{"target": {Key: "target", Str: "t1"}, "seq": {Key: "seq", Num: 3}}
	if len(rs.Attrs) != 2 {
		t.Fatalf("root attrs = %v", rs.Attrs)
	}
	for _, a := range rs.Attrs {
		if a != wantAttrs[a.Key] {
			t.Errorf("attr %q = %+v, want %+v", a.Key, a, wantAttrs[a.Key])
		}
	}
}

func TestRecorderRingKeepsLastN(t *testing.T) {
	rec := NewRecorder(8)
	for i := 0; i < 20; i++ {
		rec.RecordEvent(SpanRef{}, "test", "tick", float64(i))
	}
	recs := rec.Records()
	if len(recs) != 8 {
		t.Fatalf("got %d records, want 8", len(recs))
	}
	for i, r := range recs {
		if want := uint64(12 + i); r.Seq != want {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, want)
		}
		if want := float64(12 + i); r.Value != want {
			t.Errorf("record %d value = %v, want %v", i, r.Value, want)
		}
	}
	if got := rec.Dropped(); got != 12 {
		t.Errorf("Dropped() = %d, want 12", got)
	}
	if got := rec.Appended(); got != 20 {
		t.Errorf("Appended() = %d, want 20", got)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	sp := rec.Start(SpanRef{}, "c", "n")
	if sp.Active() {
		t.Error("span from nil recorder is active")
	}
	if sp.Ref().Valid() {
		t.Error("span from nil recorder has a valid ref")
	}
	sp.Attr("k", 1)
	sp.AttrStr("k", "v")
	sp.Flag("f", true)
	sp.End()
	rec.RecordEvent(SpanRef{}, "c", "n", 1)
	rec.Link(SpanRef{Trace: 1, Span: 1}, SpanRef{Trace: 2, Span: 2})
	if rec.Records() != nil || rec.Cap() != 0 || rec.Dropped() != 0 {
		t.Error("nil recorder leaked state")
	}
	// And through the legacy Tracer interface helpers.
	end := StartSpan(nil, "c", "n")
	end()
	Emit(nil, "c", "n", 1)
}

func TestRecorderEndIdempotent(t *testing.T) {
	rec := NewRecorder(8)
	sp := rec.Start(SpanRef{}, "c", "n")
	sp.End()
	sp.End()
	if got := len(rec.Records()); got != 1 {
		t.Errorf("double End published %d records, want 1", got)
	}
}

func TestRecorderLegacyTracer(t *testing.T) {
	rec := NewRecorder(8)
	var tr Tracer = rec
	end := tr.Span("wsnnet", "collect")
	tr.Event("wsnnet", "packet_lost", 1)
	end()
	recs := rec.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Kind != KindEvent || recs[0].Component != "wsnnet" {
		t.Errorf("legacy event recorded as %+v", recs[0])
	}
	if recs[1].Kind != KindSpan || recs[1].Parent != 0 {
		t.Errorf("legacy span recorded as %+v", recs[1])
	}
}

func TestRecorderLink(t *testing.T) {
	rec := NewRecorder(8)
	a := rec.Start(SpanRef{}, "core", "localize_batch")
	b := rec.Start(SpanRef{}, "serve", "request")
	aref, bref := a.Ref(), b.Ref()
	rec.Link(aref, bref)
	rec.Link(SpanRef{}, bref) // invalid from: dropped
	a.End()
	b.End()
	recs := rec.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (invalid link dropped)", len(recs))
	}
	link := recs[0]
	if link.Kind != KindLink || link.Span != aref.Span || link.LinkSpan != bref.Span {
		t.Errorf("link = %+v", link)
	}
}

func TestMultiTracerFanOut(t *testing.T) {
	ct := &CountingTracer{}
	rec := NewRecorder(8)
	mt := NewMultiTracer(nil, ct, nil, rec)
	end := StartSpan(mt, "core", "localize")
	Emit(mt, "core", "degraded", 0.5)
	end()
	if got := ct.Spans("core", "localize"); got != 1 {
		t.Errorf("counting tracer saw %d spans, want 1", got)
	}
	if got := ct.Events("core", "degraded"); got != 1 {
		t.Errorf("counting tracer saw %d events, want 1", got)
	}
	if got := len(rec.Records()); got != 2 {
		t.Errorf("recorder captured %d records, want 2", got)
	}
}

func TestMultiTracerCollapses(t *testing.T) {
	if got := NewMultiTracer(nil, nil); got != nil {
		t.Errorf("NewMultiTracer(nil, nil) = %v, want nil", got)
	}
	ct := &CountingTracer{}
	if got := NewMultiTracer(nil, ct); got != Tracer(ct) {
		t.Errorf("single-sink MultiTracer not collapsed: %v", got)
	}
	// Nested multis flatten.
	rec := NewRecorder(8)
	outer := NewMultiTracer(NewMultiTracer(ct, rec), nil)
	m, ok := outer.(*MultiTracer)
	if !ok || len(m.Unwrap()) != 2 {
		t.Fatalf("nested MultiTracer did not flatten: %#v", outer)
	}
}

func TestRecorderOfAndWithoutRecorder(t *testing.T) {
	ct := &CountingTracer{}
	rec := NewRecorder(8)
	mt := NewMultiTracer(ct, rec)

	if got := RecorderOf(mt); got != rec {
		t.Errorf("RecorderOf(multi) = %v, want the recorder", got)
	}
	if got := RecorderOf(rec); got != rec {
		t.Errorf("RecorderOf(recorder) = %v, want itself", got)
	}
	if got := RecorderOf(ct); got != nil {
		t.Errorf("RecorderOf(counting) = %v, want nil", got)
	}
	if got := RecorderOf(nil); got != nil {
		t.Errorf("RecorderOf(nil) = %v, want nil", got)
	}

	if got := WithoutRecorder(mt); got != Tracer(ct) {
		t.Errorf("WithoutRecorder(multi) = %v, want the counting tracer", got)
	}
	if got := WithoutRecorder(rec); got != nil {
		t.Errorf("WithoutRecorder(recorder) = %v, want nil", got)
	}
	if got := WithoutRecorder(ct); got != Tracer(ct) {
		t.Errorf("WithoutRecorder(counting) = %v, want itself", got)
	}
	if got := WithoutRecorder(nil); got != nil {
		t.Errorf("WithoutRecorder(nil) = %v, want nil", got)
	}
}

func TestRecorderConcurrentWriters(t *testing.T) {
	rec := NewRecorder(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := rec.Start(SpanRef{}, "test", "op")
				sp.Attr("worker", float64(w))
				rec.RecordEvent(sp.Ref(), "test", "tick", float64(i))
				sp.End()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent reader racing the writers
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = rec.Records()
		}
	}()
	wg.Wait()
	<-done
	recs := rec.Records()
	if len(recs) != 128 {
		t.Fatalf("ring holds %d records, want 128", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
	if got := rec.Appended(); got != 8*200*2 {
		t.Errorf("Appended() = %d, want %d", got, 8*200*2)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rec := NewRecorder(16)
	sp := rec.Start(SpanRef{}, "core", "localize")
	sp.Attr("star_fraction", 0.25)
	sp.AttrStr("target", "t7")
	rec.RecordEvent(sp.Ref(), "faults", "report_dropped", 3)
	sp.End()

	var buf bytes.Buffer
	recs := rec.Records()
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round-trip %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		a, b := recs[i], back[i]
		// time.Time survives RFC3339 with nanoseconds; compare fields.
		if a.Seq != b.Seq || a.Kind != b.Kind || a.Trace != b.Trace ||
			a.Span != b.Span || a.Parent != b.Parent || a.Value != b.Value ||
			a.Component != b.Component || a.Name != b.Name || !a.Start.Equal(b.Start) {
			t.Errorf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, b, a)
		}
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	rec := NewRecorder(32)
	root := rec.Start(SpanRef{}, "serve", "request")
	child := rec.Start(root.Ref(), "core", "localize")
	child.Attr("similarity", 1.5)
	rec.RecordEvent(child.Ref(), "faults", "report_dropped", 2)
	batch := rec.Start(SpanRef{}, "core", "localize_batch")
	rec.Link(batch.Ref(), root.Ref())
	child.End()
	root.End()
	batch.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec.Records()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome export is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "i":
			instant++
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("event %v missing numeric ts", ev["name"])
		}
	}
	if complete != 3 {
		t.Errorf("chrome export has %d complete events, want 3 spans", complete)
	}
	if instant != 2 { // the fault event + the link
		t.Errorf("chrome export has %d instants, want 2", instant)
	}
}

func TestChromeTraceSanitizesNonFinite(t *testing.T) {
	rec := NewRecorder(8)
	sp := rec.Start(SpanRef{}, "match", "match")
	sp.Attr("similarity", infinity())
	sp.End()
	rec.RecordEvent(SpanRef{}, "test", "nan", nan())
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, rec.Records()); err != nil {
		t.Fatalf("JSONL export failed on non-finite input: %v", err)
	}
	if strings.Contains(buf.String(), "Inf") || strings.Contains(buf.String(), "NaN") {
		t.Errorf("export leaked non-finite literals:\n%s", buf.String())
	}
}

func infinity() float64 { x := 1.0; return x / (x - 1) }
func nan() float64      { x := 0.0; return x / x }

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.Version == "" || b.GoVersion == "" || b.Revision == "" {
		t.Errorf("Build() left empty fields: %+v", b)
	}
	if s := b.String(); !strings.Contains(s, "go=") {
		t.Errorf("BuildInfo.String() = %q", s)
	}
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	var buf bytes.Buffer
	if _, err := reg.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fttt_build_info{") || !strings.Contains(out, `goversion="`) {
		t.Errorf("snapshot missing build-info gauge:\n%s", out)
	}
}
